// Package pulse implements control-pulse synthesis for superconducting
// qubits: envelope generation (Gaussian and DRAG), IQ quantization to the
// 16-bit DAC format, packing into the 640-bit .pulse cache entries of
// Table 2, and the SerDes framing that feeds two 2 GHz DACs per qubit.
//
// The paper treats its Pulse Generation Units as black boxes with a fixed
// 1000-cycle latency; we keep that timing contract but also make the PGU
// functional, so that the Skip Lookup Table's claim — identical (gate
// type, quantized angle) always yields an identical pulse — is a testable
// property rather than an assumption.
package pulse

import (
	"fmt"
	"math"

	"qtenon/internal/circuit"
)

// DAC and entry geometry from §5.2 of the paper.
const (
	DACBits        = 16            // per-sample resolution
	DACRateHz      = 2_000_000_000 // 2 GHz sample clock
	DACsPerQubit   = 2             // I and Q channels
	EntryBits      = 640           // one .pulse cache entry
	WordsPerEntry  = EntryBits / 64
	SamplesPerWord = 64 / (DACBits * DACsPerQubit) // 2 IQ pairs per 64-bit word
	// SamplesPerEntry is the number of IQ sample pairs a 640-bit entry
	// carries: 640 / 32 = 20 pairs, i.e. 10 ns of drive at 2 GS/s.
	SamplesPerEntry = EntryBits / (DACBits * DACsPerQubit)
)

// BandwidthBitsPerNs is the per-qubit ADI output requirement:
// 16 bit × 2 DACs × 2 GHz = 64 bit/ns (8 GB/s), as derived in §5.2.
const BandwidthBitsPerNs = DACBits * DACsPerQubit * (DACRateHz / 1_000_000_000)

// IQ is one complex drive sample quantized to the DAC range.
type IQ struct {
	I int16
	Q int16
}

// Waveform is a sequence of IQ samples at the DAC rate.
type Waveform []IQ

// Params controls envelope synthesis.
type Params struct {
	SampleRateHz float64 // DAC rate
	Sigma        float64 // Gaussian width in seconds
	DRAGLambda   float64 // DRAG correction weight
	Amplitude    float64 // peak drive, 0..1 of full scale
}

// DefaultParams returns typical transmon drive settings: 20 ns gates with
// σ = duration/4 and a standard DRAG coefficient.
func DefaultParams() Params {
	return Params{
		SampleRateHz: DACRateHz,
		Sigma:        5e-9,
		DRAGLambda:   0.5,
		Amplitude:    0.8,
	}
}

// Synthesize renders the drive waveform for a gate of the given kind and
// rotation angle lasting `durationNs` nanoseconds. The envelope is a
// Gaussian scaled by angle/π (a linear-response calibration), with a DRAG
// derivative component on the quadrature channel for X/Y-type rotations.
// Z-type rotations are virtual (frame updates) but still emit a frame
// marker entry so downstream accounting sees one pulse per gate, matching
// the paper's pulse-count model.
func Synthesize(kind circuit.Kind, theta float64, durationNs float64, p Params) Waveform {
	n := int(durationNs * p.SampleRateHz / 1e9)
	if n <= 0 {
		n = 1
	}
	wf := make(Waveform, n)
	scale := p.Amplitude * normalizedAngle(theta) / math.Pi
	center := float64(n-1) / 2
	sigmaSamples := p.Sigma * p.SampleRateHz
	if sigmaSamples <= 0 {
		sigmaSamples = float64(n) / 4
	}
	phase := drivePhase(kind)
	for i := range wf {
		t := (float64(i) - center) / sigmaSamples
		env := math.Exp(-t * t / 2)
		denv := -t / sigmaSamples * env * p.DRAGLambda
		// Rotate (env, denv) by the drive phase to select X vs Y axis.
		iVal := scale * (env*math.Cos(phase) - denv*math.Sin(phase))
		qVal := scale * (env*math.Sin(phase) + denv*math.Cos(phase))
		wf[i] = IQ{I: quantize(iVal), Q: quantize(qVal)}
	}
	return wf
}

// normalizedAngle folds an angle into (-π, π] so that physically
// equivalent rotations produce identical drives.
func normalizedAngle(theta float64) float64 {
	t := math.Mod(theta, 2*math.Pi)
	if t > math.Pi {
		t -= 2 * math.Pi
	}
	if t <= -math.Pi {
		t += 2 * math.Pi
	}
	return t
}

// drivePhase maps a gate kind to its IQ drive axis.
func drivePhase(kind circuit.Kind) float64 {
	switch kind {
	case circuit.RY, circuit.Y:
		return math.Pi / 2
	case circuit.H:
		return math.Pi / 4 // composite X+Z drive approximation
	default:
		return 0
	}
}

func quantize(v float64) int16 {
	const full = math.MaxInt16
	x := math.Round(v * full)
	if x > full {
		x = full
	}
	if x < -full-1 {
		x = -full - 1
	}
	return int16(x)
}

// Entry is a packed 640-bit .pulse cache line: ten 64-bit words, each
// carrying two IQ pairs, the exact layout the ten parallel 64-bit output
// buffers consume (§5.2).
type Entry [WordsPerEntry]uint64

// PackEntries packs a waveform into consecutive 640-bit entries, zero
// padding the tail.
func PackEntries(wf Waveform) []Entry {
	n := (len(wf) + SamplesPerEntry - 1) / SamplesPerEntry
	if n == 0 {
		n = 1
	}
	out := make([]Entry, n)
	for i, s := range wf {
		word := (i % SamplesPerEntry) / SamplesPerWord
		slot := i % SamplesPerWord
		packed := uint64(uint16(s.I)) | uint64(uint16(s.Q))<<16
		out[i/SamplesPerEntry][word] |= packed << (32 * slot)
	}
	return out
}

// UnpackEntries reverses PackEntries; n is the original sample count.
func UnpackEntries(entries []Entry, n int) Waveform {
	wf := make(Waveform, n)
	for i := range wf {
		e := entries[i/SamplesPerEntry]
		word := (i % SamplesPerEntry) / SamplesPerWord
		slot := i % SamplesPerWord
		packed := e[word] >> (32 * slot)
		wf[i] = IQ{I: int16(uint16(packed)), Q: int16(uint16(packed >> 16))}
	}
	return wf
}

// SerDes models the serializer between the 200 MHz SRAM read port and the
// 2 GHz DACs: each 640-bit entry is latched into ten parallel 64-bit
// buffers and shifted out one 64-bit word per DAC tick pair. Its only
// architectural property is rate matching, which Verify checks.
type SerDes struct {
	SRAMHz int64
	DACHz  int64
}

// NewSerDes returns the paper's configuration (200 MHz SRAM, 2 GHz DAC).
func NewSerDes() SerDes { return SerDes{SRAMHz: 200_000_000, DACHz: DACRateHz} }

// Verify checks that one entry per SRAM cycle sustains the DAC demand:
// entry bits × SRAM rate ≥ required bit rate.
func (s SerDes) Verify() error {
	supply := float64(EntryBits) * float64(s.SRAMHz)
	demand := float64(DACBits*DACsPerQubit) * float64(s.DACHz)
	if supply < demand {
		return fmt.Errorf("pulse: SerDes underrun: supply %.0f bit/s < demand %.0f bit/s", supply, demand)
	}
	return nil
}

// Serialize flattens entries into the 64-bit word stream sent to the DAC
// pair, in output order.
func (s SerDes) Serialize(entries []Entry) []uint64 {
	out := make([]uint64, 0, len(entries)*WordsPerEntry)
	for _, e := range entries {
		out = append(out, e[:]...)
	}
	return out
}

// PGU is a pulse generation unit: a fixed-function synthesizer with the
// paper's enforced 1000-cycle latency. Busy tracking belongs to the
// pipeline model; PGU itself is purely functional plus a latency constant.
type PGU struct {
	Params       Params
	LatencyCycle int64
}

// NewPGU returns a PGU with default synthesis parameters and the paper's
// 1000-cycle latency (§7.1).
func NewPGU() *PGU { return &PGU{Params: DefaultParams(), LatencyCycle: 1000} }

// Generate synthesizes and packs the pulse for one gate instance.
// durationNs follows the gate-timing model (20 ns 1q / 40 ns 2q).
func (p *PGU) Generate(kind circuit.Kind, theta float64, durationNs float64) []Entry {
	return PackEntries(Synthesize(kind, theta, durationNs, p.Params))
}
