package pulse

import (
	"math"
	"testing"
)

func TestReadoutShape(t *testing.T) {
	p := DefaultReadoutParams()
	wf := SynthesizeReadout(p)
	if len(wf) != 1200 { // 600 ns × 2 GS/s
		t.Fatalf("len = %d, want 1200", len(wf))
	}
	// Edges start at (near) zero; the flat top sustains amplitude.
	mag := func(s IQ) float64 {
		return math.Hypot(float64(s.I), float64(s.Q))
	}
	if mag(wf[0]) > 0.02*float64(math.MaxInt16) {
		t.Errorf("pulse does not ramp from zero: %v", wf[0])
	}
	mid := mag(wf[len(wf)/2])
	want := p.Amplitude * float64(math.MaxInt16)
	if math.Abs(mid-want) > 0.02*want {
		t.Errorf("flat-top magnitude = %v, want ≈%v", mid, want)
	}
	// Envelope symmetric: last sample also near zero.
	if mag(wf[len(wf)-1]) > 0.05*float64(math.MaxInt16) {
		t.Errorf("pulse does not ramp to zero: %v", wf[len(wf)-1])
	}
}

func TestReadoutToneOscillates(t *testing.T) {
	// The IF tone rotates through IQ space: I changes sign over a half
	// period (10 ns at 50 MHz = 20 samples).
	wf := SynthesizeReadout(DefaultReadoutParams())
	c := len(wf) / 2
	if (wf[c].I > 0) == (wf[c+20].I > 0) {
		t.Errorf("no IF oscillation: I[%d]=%d I[%d]=%d", c, wf[c].I, c+20, wf[c+20].I)
	}
}

func TestReadoutEntriesBudget(t *testing.T) {
	// 600 ns at 2 GS/s = 1200 samples = 60 entries of 20 samples.
	if got := ReadoutEntries(DefaultReadoutParams()); got != 60 {
		t.Errorf("ReadoutEntries = %d, want 60", got)
	}
}

func TestReadoutDegenerate(t *testing.T) {
	p := DefaultReadoutParams()
	p.DurationNs = 0
	if wf := SynthesizeReadout(p); len(wf) != 1 {
		t.Errorf("zero duration len = %d", len(wf))
	}
	p = DefaultReadoutParams()
	p.RampNs = 10000 // longer than the pulse: clamp to half
	wf := SynthesizeReadout(p)
	if len(wf) != 1200 {
		t.Errorf("len = %d", len(wf))
	}
}
