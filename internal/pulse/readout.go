package pulse

import "math"

// Readout pulse synthesis. Measurement drives are not PGU products — the
// paper keeps them out of the .pulse path as fixed waveforms (compiled
// entries carry StatusValid) — but the waveform itself still has to
// exist to budget the ADI. A dispersive readout tone is a flat-top pulse
// at the resonator frequency: ramp up, hold, ramp down.

// ReadoutParams configures the measurement tone.
type ReadoutParams struct {
	SampleRateHz float64
	DurationNs   float64 // total pulse length (paper: 600 ns window)
	RampNs       float64 // cosine ramp at each end
	Amplitude    float64 // 0..1 of full scale
	IFHz         float64 // intermediate frequency of the tone
}

// DefaultReadoutParams returns a 600 ns flat-top tone with 50 ns ramps
// at a 50 MHz intermediate frequency — typical dispersive readout.
func DefaultReadoutParams() ReadoutParams {
	return ReadoutParams{
		SampleRateHz: DACRateHz,
		DurationNs:   600,
		RampNs:       50,
		Amplitude:    0.5,
		IFHz:         50e6,
	}
}

// SynthesizeReadout renders the readout tone.
func SynthesizeReadout(p ReadoutParams) Waveform {
	n := int(p.DurationNs * p.SampleRateHz / 1e9)
	if n <= 0 {
		n = 1
	}
	ramp := int(p.RampNs * p.SampleRateHz / 1e9)
	if 2*ramp > n {
		ramp = n / 2
	}
	wf := make(Waveform, n)
	for i := range wf {
		env := 1.0
		switch {
		case i < ramp && ramp > 0:
			env = 0.5 * (1 - math.Cos(math.Pi*float64(i)/float64(ramp)))
		case i >= n-ramp && ramp > 0:
			env = 0.5 * (1 - math.Cos(math.Pi*float64(n-1-i)/float64(ramp)))
		}
		phase := 2 * math.Pi * p.IFHz * float64(i) / p.SampleRateHz
		wf[i] = IQ{
			I: quantize(p.Amplitude * env * math.Cos(phase)),
			Q: quantize(p.Amplitude * env * math.Sin(phase)),
		}
	}
	return wf
}

// ReadoutEntries reports how many 640-bit pulse entries a readout tone
// occupies — why it lives in a dedicated waveform buffer rather than the
// per-qubit .pulse chunks (a 600 ns tone is 60 entries; 1024-entry
// chunks would be dominated by readout otherwise).
func ReadoutEntries(p ReadoutParams) int {
	return len(PackEntries(SynthesizeReadout(p)))
}
