package pulse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qtenon/internal/circuit"
)

func TestGeometryConstants(t *testing.T) {
	// The derivation in §5.2: 16 bit × 2 DACs × 2 GHz = 64 bit/ns.
	if BandwidthBitsPerNs != 64 {
		t.Errorf("BandwidthBitsPerNs = %d, want 64", BandwidthBitsPerNs)
	}
	if WordsPerEntry != 10 {
		t.Errorf("WordsPerEntry = %d, want 10 (ten parallel 64-bit buffers)", WordsPerEntry)
	}
	if SamplesPerEntry != 20 {
		t.Errorf("SamplesPerEntry = %d, want 20", SamplesPerEntry)
	}
}

func TestSynthesizeShape(t *testing.T) {
	wf := Synthesize(circuit.RX, math.Pi, 20, DefaultParams())
	if len(wf) != 40 { // 20 ns at 2 GS/s
		t.Fatalf("len = %d, want 40", len(wf))
	}
	// Envelope peaks near the center and decays toward the edges.
	center := len(wf) / 2
	if abs16(wf[center].I) <= abs16(wf[0].I) {
		t.Errorf("envelope not peaked: center %d edge %d", wf[center].I, wf[0].I)
	}
	if abs16(wf[0].I) > abs16(wf[center].I)/2 {
		t.Errorf("edges not attenuated: edge %d center %d", wf[0].I, wf[center].I)
	}
}

func abs16(v int16) int16 {
	if v < 0 {
		return -v
	}
	return v
}

func TestSynthesizeAngleScaling(t *testing.T) {
	p := DefaultParams()
	half := Synthesize(circuit.RX, math.Pi/2, 20, p)
	full := Synthesize(circuit.RX, math.Pi, 20, p)
	c := len(half) / 2
	ratio := float64(full[c].I) / float64(half[c].I)
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("amplitude ratio π/(π/2) = %v, want ≈2", ratio)
	}
}

func TestSynthesizeAxisSelection(t *testing.T) {
	p := DefaultParams()
	p.DRAGLambda = 0 // isolate the carrier axis
	rx := Synthesize(circuit.RX, math.Pi, 20, p)
	ry := Synthesize(circuit.RY, math.Pi, 20, p)
	c := len(rx) / 2
	if rx[c].Q != 0 {
		t.Errorf("RX has Q component %d at peak", rx[c].Q)
	}
	if ry[c].I != 0 {
		t.Errorf("RY has I component %d at peak", ry[c].I)
	}
	if ry[c].Q == 0 {
		t.Error("RY missing Q drive")
	}
}

func TestAngleNormalizationEquivalence(t *testing.T) {
	p := DefaultParams()
	a := Synthesize(circuit.RX, 0.5, 20, p)
	b := Synthesize(circuit.RX, 0.5+2*math.Pi, 20, p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs for equivalent angles: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := DefaultParams()
	a := Synthesize(circuit.RY, 1.2345, 20, p)
	b := Synthesize(circuit.RY, 1.2345, 20, p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("synthesis not deterministic")
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(100)
		wf := make(Waveform, n)
		for i := range wf {
			wf[i] = IQ{I: int16(rng.Int()), Q: int16(rng.Int())}
		}
		entries := PackEntries(wf)
		wantEntries := (n + SamplesPerEntry - 1) / SamplesPerEntry
		if len(entries) != wantEntries {
			t.Fatalf("n=%d: %d entries, want %d", n, len(entries), wantEntries)
		}
		back := UnpackEntries(entries, n)
		for i := range wf {
			if wf[i] != back[i] {
				t.Fatalf("n=%d sample %d: %v != %v", n, i, wf[i], back[i])
			}
		}
	}
}

// Property: pack/unpack round-trips arbitrary int16 IQ data.
func TestPackRoundTripProperty(t *testing.T) {
	f := func(is, qs []int16) bool {
		n := min(len(is), len(qs))
		if n == 0 {
			return true
		}
		wf := make(Waveform, n)
		for i := 0; i < n; i++ {
			wf[i] = IQ{I: is[i], Q: qs[i]}
		}
		back := UnpackEntries(PackEntries(wf), n)
		for i := range wf {
			if wf[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSerDesRateMatch(t *testing.T) {
	s := NewSerDes()
	if err := s.Verify(); err != nil {
		t.Errorf("paper configuration fails rate check: %v", err)
	}
	// 200 MHz × 640 bit = 128 Gb/s ≥ 64 Gb/s demand: exactly 2× headroom.
	slow := SerDes{SRAMHz: 50_000_000, DACHz: DACRateHz}
	if err := slow.Verify(); err == nil {
		t.Error("underrun configuration passed Verify")
	}
}

func TestSerDesSerializeOrder(t *testing.T) {
	entries := []Entry{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {11, 12, 13, 14, 15, 16, 17, 18, 19, 20}}
	words := NewSerDes().Serialize(entries)
	if len(words) != 20 {
		t.Fatalf("len = %d", len(words))
	}
	for i, w := range words {
		if w != uint64(i+1) {
			t.Fatalf("word %d = %d, want %d", i, w, i+1)
		}
	}
}

func TestPGUGenerate(t *testing.T) {
	pgu := NewPGU()
	if pgu.LatencyCycle != 1000 {
		t.Errorf("PGU latency = %d cycles, want 1000 (paper §7.1)", pgu.LatencyCycle)
	}
	entries := pgu.Generate(circuit.RX, math.Pi/4, 20)
	if len(entries) != 2 { // 40 samples → 2 entries of 20
		t.Errorf("20ns pulse entries = %d, want 2", len(entries))
	}
	// Identical inputs give identical packed pulses — the property the SLT
	// relies on to skip regeneration.
	again := pgu.Generate(circuit.RX, math.Pi/4, 20)
	for i := range entries {
		if entries[i] != again[i] {
			t.Fatal("PGU not reproducible for identical inputs")
		}
	}
}

func TestZeroDurationClamps(t *testing.T) {
	wf := Synthesize(circuit.RZ, 1, 0, DefaultParams())
	if len(wf) != 1 {
		t.Errorf("zero-duration waveform len = %d, want clamped 1", len(wf))
	}
}
