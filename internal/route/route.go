// Package route selects a simulation method for each circuit — the
// automatic technique switching that lets the system models run past
// the dense statevector's 24-qubit wall (DESIGN.md §12). A circuit
// analyzer classifies a bound circuit by its gate content and width;
// the Router maps the class to one of three engines:
//
//   - dense: the contiguous SoA statevector (exact, ≤ the router's
//     DenseLimit qubits)
//   - sharded: the chunked statevector (exact, dense-equivalent
//     bit-for-bit, ≤ shard.MaxQubits qubits) — ClassHuge's dense-exact
//     window past the contiguous limit
//   - clifford: the CHP stabilizer tableau (exact, Clifford-only,
//     thousands of qubits)
//   - product: the mean-field surrogate (approximate, O(n), any width)
//
// The routing rules preserve the pre-router behavior bit-for-bit on
// every dense-window workload: chips at or below the dense limit route
// dense with an unchanged RNG stream. Fully Clifford circuits route to
// the tableau at any width; generic circuits past the dense limit route
// to the sharded engine up to shard.MaxQubits and to the product
// surrogate beyond. Mid-circuit measurement forces the dense engine
// (the only one wired for collapse inside system trajectories).
package route

import (
	"fmt"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
	"qtenon/internal/qsim/engine"
	"qtenon/internal/qsim/shard"
	"qtenon/internal/qsim/tableau"
)

// Method identifies a simulation engine (or automatic selection).
type Method uint8

// The selectable methods. Auto is the zero value: let the router decide.
const (
	Auto Method = iota
	Dense
	Clifford
	Product
	Sharded
	NumMethods // array-sizing sentinel, not a method
)

var methodNames = [NumMethods]string{
	Auto: "auto", Dense: "dense", Clifford: "clifford", Product: "product",
	Sharded: "sharded",
}

// String returns the CLI/metrics name of the method.
func (m Method) String() string {
	if int(m) < len(methodNames) {
		return methodNames[m]
	}
	return fmt.Sprintf("method(%d)", uint8(m))
}

// ParseMethod maps a CLI name to its Method.
func ParseMethod(name string) (Method, error) {
	for m, n := range methodNames {
		if n == name {
			return Method(m), nil
		}
	}
	return Auto, fmt.Errorf("route: unknown method %q (want auto|dense|clifford|product|sharded)", name)
}

// Class is the analyzer's circuit classification.
type Class uint8

// The circuit classes, ordered by how much structure the circuit offers
// a specialised engine.
const (
	// ClassClifford: every gate is exactly Clifford — tableau-simulable
	// at any width.
	ClassClifford Class = iota
	// ClassCliffordDominated: ≤ 10% non-Clifford gates (but at least
	// one). Today this routes like dense/huge; the class is recorded so
	// benches and future gadget-based engines can see the structure.
	ClassCliffordDominated
	// ClassSmallDense: generic circuit within the dense window.
	ClassSmallDense
	// ClassHuge: generic circuit past the dense window.
	ClassHuge
)

var classNames = [...]string{
	ClassClifford:          "clifford",
	ClassCliffordDominated: "clifford-dominated",
	ClassSmallDense:        "small-dense",
	ClassHuge:              "huge",
}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// DefaultDenseLimit is the widest register the router sends to the
// contiguous dense engine — quantum.ExactLimit's pre-router value, kept
// here so the split survives the Chip refactor. Generic circuits past
// it route to the sharded engine (up to DefaultShardedLimit), then the
// product surrogate.
const DefaultDenseLimit = 16

// DefaultShardedLimit is the widest register the router sends to the
// sharded dense engine: the effective dense-exact window is ~28 qubits
// (4 GiB of amplitudes across shards) rather than the contiguous
// engine's monolithic-allocation wall.
const DefaultShardedLimit = shard.MaxQubits

// Analysis is what the analyzer learned about one circuit.
type Analysis struct {
	Class       Class
	NQubits     int
	Gates       int // total gate count, Measure included
	NonClifford int // gates the tableau cannot apply (unbound rotations count)
	MidMeasure  bool
}

// Analyze classifies a circuit. Width classes use DefaultDenseLimit;
// the Router's limit governs actual method choice. A Measure is
// mid-circuit when a later non-Measure gate touches the same qubit.
func Analyze(c *circuit.Circuit) Analysis {
	a := Analysis{NQubits: c.NQubits, Gates: len(c.Gates)}
	lastOp := make(map[int]int, 8) // qubit → index of its last non-Measure gate
	for i, g := range c.Gates {
		if g.Kind == circuit.Measure {
			continue
		}
		lastOp[g.Qubit] = i
		if g.Kind.Arity() == 2 {
			lastOp[g.Qubit2] = i
		}
	}
	for i, g := range c.Gates {
		if g.Kind == circuit.Measure {
			if last, ok := lastOp[g.Qubit]; ok && last > i {
				a.MidMeasure = true
			}
			continue
		}
		if !tableau.IsClifford(g) {
			a.NonClifford++
		}
	}
	switch {
	case a.NonClifford == 0:
		a.Class = ClassClifford
	case a.NonClifford*10 <= a.Gates:
		a.Class = ClassCliffordDominated
	case a.NQubits <= DefaultDenseLimit:
		a.Class = ClassSmallDense
	default:
		a.Class = ClassHuge
	}
	return a
}

// Router maps circuits to methods.
type Router struct {
	// DenseLimit is the widest register routed to the contiguous dense
	// engine; 0 means DefaultDenseLimit.
	DenseLimit int
	// ShardedLimit is the widest register routed to the sharded dense
	// engine; 0 means DefaultShardedLimit.
	ShardedLimit int
	// Force pins every circuit to one method (non-Auto); selection fails
	// with an error when the forced method cannot run the circuit.
	Force Method
}

// Default returns the stock router.
func Default() Router { return Router{} }

func (r Router) denseLimit() int {
	if r.DenseLimit > 0 {
		return r.DenseLimit
	}
	return DefaultDenseLimit
}

func (r Router) shardedLimit() int {
	if r.ShardedLimit > 0 {
		return r.ShardedLimit
	}
	return DefaultShardedLimit
}

// Select chooses a method for a bound circuit using the circuit's own
// width. Chips should use SelectWidth with their register width so a
// narrow circuit on a wide chip routes like the chip (the pre-router
// exact/surrogate split keyed on chip width).
func (r Router) Select(c *circuit.Circuit) (Method, Analysis, error) {
	return r.SelectWidth(c, c.NQubits)
}

// SelectWidth chooses a method for a bound circuit executing on a
// register of the given width (≥ the circuit's own width).
func (r Router) SelectWidth(c *circuit.Circuit, width int) (Method, Analysis, error) {
	if width < c.NQubits {
		width = c.NQubits
	}
	a := Analyze(c)
	if r.Force != Auto {
		if err := r.feasible(r.Force, a, width); err != nil {
			return Auto, a, err
		}
		return r.Force, a, nil
	}
	switch {
	case a.MidMeasure:
		// Only the dense engine participates in mid-circuit collapse
		// (qsim.RunTrajectory); no width fallback exists past its limit.
		if width > qsim.MaxQubits {
			return Auto, a, fmt.Errorf("route: mid-circuit measurement on %d qubits exceeds the dense limit %d", width, qsim.MaxQubits)
		}
		return Dense, a, nil
	case a.Class == ClassClifford:
		return Clifford, a, nil
	case width <= r.denseLimit():
		return Dense, a, nil
	case width <= r.shardedLimit():
		// ClassHuge (and wide Clifford-dominated) circuits stay
		// dense-exact on the sharded engine up to its window.
		return Sharded, a, nil
	default:
		return Product, a, nil
	}
}

// feasible reports whether a forced method can run the analyzed
// circuit. Forcing dense pins the *contiguous* engine and respects the
// router's contiguous window: past DenseLimit the dense-exact path is
// the sharded engine, so a forced-dense 24-qubit run fails loudly
// rather than silently allocating a monolithic statevector the router
// would never choose (mid-circuit measurement keeps the wider
// qsim.MaxQubits allowance — there dense is the only collapse-capable
// engine, exactly as in automatic selection).
func (r Router) feasible(m Method, a Analysis, width int) error {
	switch m {
	case Dense:
		limit := r.denseLimit()
		if a.MidMeasure {
			limit = qsim.MaxQubits
		}
		if width > limit {
			return fmt.Errorf("route: dense forced on %d qubits, contiguous limit %d", width, limit)
		}
	case Clifford:
		if a.NonClifford > 0 {
			return fmt.Errorf("route: clifford forced on a circuit with %d non-Clifford gates", a.NonClifford)
		}
		if width > tableau.MaxQubits {
			return fmt.Errorf("route: clifford forced on %d qubits, limit %d", width, tableau.MaxQubits)
		}
	case Sharded:
		if a.MidMeasure {
			return fmt.Errorf("route: sharded engine cannot collapse mid-circuit measurements")
		}
		if width > shard.MaxQubits {
			return fmt.Errorf("route: sharded forced on %d qubits, limit %d", width, shard.MaxQubits)
		}
	case Product:
		if a.MidMeasure {
			return fmt.Errorf("route: product engine cannot collapse mid-circuit measurements")
		}
	default:
		return fmt.Errorf("route: cannot force method %v", m)
	}
	return nil
}

// NewSimulator constructs the engine for a resolved (non-Auto) method.
func NewSimulator(m Method, n int) (engine.Simulator, error) {
	switch m {
	case Dense:
		return engine.NewDense(n)
	case Clifford:
		return engine.NewClifford(n)
	case Product:
		return engine.NewProduct(n)
	case Sharded:
		return engine.NewSharded(n)
	default:
		return nil, fmt.Errorf("route: no engine for method %v", m)
	}
}
