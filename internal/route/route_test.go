package route

import (
	"math"
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
	"qtenon/internal/qsim/shard"
)

func sel(t *testing.T, r Router, c *circuit.Circuit) (Method, Analysis) {
	t.Helper()
	m, a, err := r.Select(c)
	if err != nil {
		t.Fatal(err)
	}
	return m, a
}

func TestMethodNames(t *testing.T) {
	for m := Method(0); m < NumMethods; m++ {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = (%v,%v)", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("statevector"); err == nil {
		t.Error("ParseMethod accepted an unknown name")
	}
}

func TestCliffordCircuitRoutesTableau(t *testing.T) {
	c := circuit.NewBuilder(30).H(0).CX(0, 1).RZ(2, math.Pi).MeasureAll().MustBuild()
	m, a := sel(t, Default(), c)
	if a.Class != ClassClifford || m != Clifford {
		t.Fatalf("class %v method %v, want clifford/clifford", a.Class, m)
	}
}

func TestGenericSmallRoutesDense(t *testing.T) {
	c := circuit.NewBuilder(8).RY(0, 0.3).MeasureAll().MustBuild()
	if m, _ := sel(t, Default(), c); m != Dense {
		t.Fatalf("routed %v, want dense", m)
	}
}

func TestGenericHugeRoutesProduct(t *testing.T) {
	b := circuit.NewBuilder(64)
	for q := 0; q < 64; q++ {
		b.RY(q, 0.1*float64(q+1))
	}
	c := b.MeasureAll().MustBuild()
	m, a := sel(t, Default(), c)
	if m != Product {
		t.Fatalf("routed %v, want product", m)
	}
	if a.Class != ClassHuge {
		t.Fatalf("class %v, want huge", a.Class)
	}
}

// Satellite: a 0-parameter circuit (nothing bound, nothing to bind)
// routes normally — the Clifford graph state is the canonical case, and
// an empty circuit is the degenerate one (identity ⇒ Clifford).
func TestZeroParameterCircuits(t *testing.T) {
	graph := circuit.NewBuilder(26)
	for q := 0; q < 26; q++ {
		graph.H(q)
	}
	for q := 0; q+1 < 26; q++ {
		graph.CZ(q, q+1)
	}
	c := graph.MeasureAll().MustBuild()
	if c.NumParams != 0 {
		t.Fatal("graph state has parameters")
	}
	m, a := sel(t, Default(), c)
	if m != Clifford {
		t.Fatalf("0-param 26q Clifford circuit routed %v, want clifford", m)
	}
	if a.NonClifford != 0 {
		t.Fatalf("NonClifford = %d", a.NonClifford)
	}

	empty := circuit.New(4)
	if m, _ := sel(t, Default(), empty); m != Clifford {
		t.Fatalf("empty circuit routed %v, want clifford (identity)", m)
	}
}

// Satellite: an unbound parameterized circuit is conservatively
// non-Clifford (angles unknown until Bind).
func TestUnboundParamsAreNonClifford(t *testing.T) {
	c := circuit.NewBuilder(4).H(0).RXP(1, 0).MeasureAll().MustBuild()
	_, a := sel(t, Default(), c)
	if a.NonClifford != 1 {
		t.Fatalf("NonClifford = %d, want 1 (unbound RX)", a.NonClifford)
	}
}

// Satellite: mid-circuit measurement forces the dense fallback even when
// the gates are all Clifford or the register exceeds the dense limit.
func TestMidMeasureForcesDense(t *testing.T) {
	b := circuit.NewBuilder(20)
	b.H(0).Measure(0).X(0) // X after the measure ⇒ mid-circuit
	c := b.MustBuild()
	m, a := sel(t, Default(), c)
	if !a.MidMeasure {
		t.Fatal("mid-circuit measurement not detected")
	}
	if m != Dense {
		t.Fatalf("mid-measure 20q routed %v, want dense (20 > DenseLimit still fits MaxQubits)", m)
	}

	// Terminal measures are NOT mid-circuit.
	term := circuit.NewBuilder(2).H(0).MeasureAll().MustBuild()
	if _, a := sel(t, Default(), term); a.MidMeasure {
		t.Fatal("terminal measure flagged mid-circuit")
	}

	// Past the dense window there is no engine that can collapse.
	wide := circuit.NewBuilder(qsim.MaxQubits + 1)
	wide.H(0).Measure(0).X(0)
	if _, _, err := Default().Select(wide.MustBuild()); err == nil {
		t.Error("mid-measure past MaxQubits did not error")
	}
}

// Satellite: one T gate demotes an otherwise-Clifford circuit to
// Clifford-dominated, and the method falls back to dense/product.
func TestSingleTGateDemotes(t *testing.T) {
	b := circuit.NewBuilder(8)
	for q := 0; q < 8; q++ {
		b.H(q)
	}
	for q := 0; q+1 < 8; q++ {
		b.CZ(q, q+1)
	}
	b.T(3)
	c := b.MeasureAll().MustBuild()
	m, a := sel(t, Default(), c)
	if a.Class != ClassCliffordDominated {
		t.Fatalf("class %v, want clifford-dominated (1 T in %d gates)", a.Class, a.Gates)
	}
	if a.NonClifford != 1 {
		t.Fatalf("NonClifford = %d, want 1", a.NonClifford)
	}
	if m != Dense {
		t.Fatalf("8q Clifford+T routed %v, want dense", m)
	}

	// Same structure on 64 qubits: too wide for dense ⇒ product.
	wb := circuit.NewBuilder(64)
	for q := 0; q < 64; q++ {
		wb.H(q)
	}
	for q := 0; q+1 < 64; q++ {
		wb.CZ(q, q+1)
	}
	wb.T(3)
	if m, _ := sel(t, Default(), wb.MeasureAll().MustBuild()); m != Product {
		t.Fatalf("64q Clifford+T routed %v, want product", m)
	}
}

func TestSelectWidthUsesChipWidth(t *testing.T) {
	// A narrow generic circuit on a wide chip routes like the chip
	// (pre-router surrogate behavior preserved).
	c := circuit.NewBuilder(4).RY(0, 0.3).MeasureAll().MustBuild()
	r := Router{DenseLimit: 16}
	m, _, err := r.SelectWidth(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m != Product {
		t.Fatalf("narrow circuit on 64q chip routed %v, want product", m)
	}
	m, _, err = r.SelectWidth(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m != Dense {
		t.Fatalf("narrow circuit on 8q chip routed %v, want dense", m)
	}
}

// ClassHuge → sharded: generic circuits past the contiguous dense
// window stay dense-exact on the sharded engine up to shard.MaxQubits,
// and hand off to the product surrogate beyond it.
func TestGenericWideRoutesSharded(t *testing.T) {
	wide := func(n int) *circuit.Circuit {
		b := circuit.NewBuilder(n)
		for q := 0; q < n; q++ {
			b.RY(q, 0.1*float64(q+1))
		}
		return b.MeasureAll().MustBuild()
	}
	for _, n := range []int{DefaultDenseLimit + 1, 24, shard.MaxQubits} {
		m, a := sel(t, Default(), wide(n))
		if m != Sharded {
			t.Fatalf("%dq generic routed %v, want sharded", n, m)
		}
		if n > 24 && a.Class != ClassHuge {
			t.Fatalf("%dq class %v, want huge", n, a.Class)
		}
	}
	if m, _ := sel(t, Default(), wide(shard.MaxQubits+1)); m != Product {
		t.Fatalf("%dq generic routed %v, want product", shard.MaxQubits+1, m)
	}
	// The chip-width rule applies to the sharded window too: a narrow
	// generic circuit on a 24-qubit chip routes sharded.
	narrow := circuit.NewBuilder(4).RY(0, 0.3).MeasureAll().MustBuild()
	m, _, err := Default().SelectWidth(narrow, 24)
	if err != nil {
		t.Fatal(err)
	}
	if m != Sharded {
		t.Fatalf("narrow circuit on 24q chip routed %v, want sharded", m)
	}
}

// Forcing the sharded engine obeys its own window and the no-collapse
// restriction; forcing dense past the contiguous window errors even
// though the monolithic statevector could technically allocate (the
// dense-exact path there is the sharded engine).
func TestShardedForceFeasibility(t *testing.T) {
	generic24 := func() *circuit.Circuit {
		b := circuit.NewBuilder(24)
		for q := 0; q < 24; q++ {
			b.RY(q, 0.2)
		}
		return b.MeasureAll().MustBuild()
	}()
	if m, _, err := (Router{Force: Sharded}).Select(generic24); err != nil || m != Sharded {
		t.Errorf("force sharded on 24q = (%v,%v)", m, err)
	}
	if _, _, err := (Router{Force: Dense}).Select(generic24); err == nil {
		t.Error("forced dense on 24 qubits (past the contiguous window) did not error")
	}
	tooWide := circuit.NewBuilder(shard.MaxQubits+2).RY(0, 0.3).MeasureAll().MustBuild()
	if _, _, err := (Router{Force: Sharded}).Select(tooWide); err == nil {
		t.Error("forced sharded past shard.MaxQubits did not error")
	}
	mid := circuit.NewBuilder(4)
	mid.H(0).Measure(0).X(0)
	if _, _, err := (Router{Force: Sharded}).Select(mid.MustBuild()); err == nil {
		t.Error("forced sharded on a mid-measure circuit did not error")
	}
	// Mid-circuit measurement keeps forced dense's wider allowance: it
	// is the only collapse-capable engine, exactly as in auto selection.
	mid20 := circuit.NewBuilder(20)
	mid20.H(0).Measure(0).X(0)
	if m, _, err := (Router{Force: Dense}).Select(mid20.MustBuild()); err != nil || m != Dense {
		t.Errorf("forced dense on 20q mid-measure = (%v,%v), want dense", m, err)
	}
}

func TestForceFeasibility(t *testing.T) {
	clifford := circuit.NewBuilder(4).H(0).CX(0, 1).MeasureAll().MustBuild()
	generic := circuit.NewBuilder(4).RY(0, 0.3).MeasureAll().MustBuild()

	if m, _, err := (Router{Force: Dense}).Select(clifford); err != nil || m != Dense {
		t.Errorf("force dense = (%v,%v)", m, err)
	}
	if m, _, err := (Router{Force: Product}).Select(generic); err != nil || m != Product {
		t.Errorf("force product = (%v,%v)", m, err)
	}
	if _, _, err := (Router{Force: Clifford}).Select(generic); err == nil {
		t.Error("forced clifford on a generic circuit did not error")
	}
	wide := circuit.NewBuilder(qsim.MaxQubits + 2).H(0).MeasureAll().MustBuild()
	if _, _, err := (Router{Force: Dense}).Select(wide); err == nil {
		t.Error("forced dense past MaxQubits did not error")
	}
}

func TestNewSimulator(t *testing.T) {
	for _, m := range []Method{Dense, Clifford, Product, Sharded} {
		s, err := NewSimulator(m, 4)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if s.NQubits() != 4 {
			t.Fatalf("%v: NQubits = %d", m, s.NQubits())
		}
	}
	if _, err := NewSimulator(Auto, 4); err == nil {
		t.Error("NewSimulator accepted auto")
	}
	if _, err := NewSimulator(Dense, qsim.MaxQubits+1); err == nil {
		t.Error("dense simulator past MaxQubits")
	}
}
