package system

import (
	"testing"

	"qtenon/internal/host"
	"qtenon/internal/vqa"
)

// evaluateAllocCeiling bounds the allocations one warmed Evaluate may
// make. The arena work brought the 12-qubit/100-shot evaluation from
// ~2000 allocs down to under 100 (fresh Outcomes, per-block RNGs and
// batch planning remain by design); the ceiling sits well above normal
// jitter but far below the pre-arena figure, so losing any scratch
// buffer (statevector, alias table, regfile image, diff plan, RBQ data)
// trips it.
const evaluateAllocCeiling = 400

// BenchmarkEvaluateAllocRegression fails the build when a warmed-up cost
// evaluation starts allocating like the arenas are gone. CI runs it via
// `-bench=Alloc -benchtime=1x`.
func BenchmarkEvaluateAllocRegression(b *testing.B) {
	w, err := vqa.New(vqa.VQE, 12)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(host.BoomL())
	cfg.Shots = 100
	s, err := New(cfg, w)
	if err != nil {
		b.Fatal(err)
	}
	params := append([]float64(nil), w.InitialParams...)
	eval := func() {
		params[0] += 1e-3
		if _, err := s.Evaluate(params); err != nil {
			b.Fatal(err)
		}
	}
	eval() // warm every arena (statevector, sampler, image, diff, RBQ)
	eval()
	for i := 0; i < b.N; i++ {
		if avg := testing.AllocsPerRun(5, eval); avg > evaluateAllocCeiling {
			b.Fatalf("warmed Evaluate allocates %.0f times per call, ceiling %d — a hot-path arena regressed",
				avg, evaluateAllocCeiling)
		}
	}
}
