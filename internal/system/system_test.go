package system

import (
	"testing"

	"qtenon/internal/backend"
	"qtenon/internal/baseline"
	"qtenon/internal/host"
	"qtenon/internal/opt"
	"qtenon/internal/report"
	"qtenon/internal/sched"
	"qtenon/internal/sim"
	"qtenon/internal/vqa"
)

func smallQAOA(t *testing.T) *vqa.Workload {
	t.Helper()
	w, err := vqa.NewQAOA(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// runQtenon drives a full optimization through the shared backend run
// loop on a factory-minted Qtenon system.
func runQtenon(t *testing.T, cfg Config, w *vqa.Workload, spsa bool, o opt.Options) report.RunResult {
	t.Helper()
	alg := backend.GD
	if spsa {
		alg = backend.SPSA
	}
	res, err := backend.Run(Factory{Cfg: cfg}, w, alg, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runBase is the same loop on the decoupled baseline.
func runBase(t *testing.T, cfg baseline.Config, w *vqa.Workload, spsa bool, o opt.Options) report.RunResult {
	t.Helper()
	alg := backend.GD
	if spsa {
		alg = backend.SPSA
	}
	res, err := backend.Run(baseline.Factory{Cfg: cfg}, w, alg, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	w := smallQAOA(t)
	cfg := DefaultConfig(host.Rocket())
	cfg.Shots = 0
	if _, err := New(cfg, w); err == nil {
		t.Error("accepted zero shots")
	}
	cfg = DefaultConfig(host.Rocket())
	cfg.ControllerHz = 0
	if _, err := New(cfg, w); err == nil {
		t.Error("accepted zero controller clock")
	}
}

func TestEvaluateProducesCostAndAccounting(t *testing.T) {
	w := smallQAOA(t)
	cfg := DefaultConfig(host.Rocket())
	cfg.Shots = 100
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := s.Evaluate(w.InitialParams)
	if err != nil {
		t.Fatal(err)
	}
	if cost > 0 {
		t.Errorf("MaxCut cost = %v, want ≤ 0", cost)
	}
	res := s.Result()
	b := res.Breakdown
	if b.Quantum <= 0 {
		t.Error("no quantum time")
	}
	if b.Total() <= b.Quantum {
		t.Error("no classical time at all")
	}
	if res.Evaluations != 1 || res.InstructionCount < 4 {
		t.Errorf("evals=%d instrs=%d", res.Evaluations, res.InstructionCount)
	}
	// First evaluation generates every pulse once.
	if res.PulsesGenerated == 0 {
		t.Error("no pulses generated on first evaluation")
	}
}

func TestIncrementalSecondEvalIsCheap(t *testing.T) {
	w := smallQAOA(t)
	cfg := DefaultConfig(host.Rocket())
	cfg.Shots = 100
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(w.InitialParams); err != nil {
		t.Fatal(err)
	}
	first := s.Result()
	firstPulses := first.PulsesGenerated
	firstClassical := first.Breakdown.Classical()

	// Shift one parameter (the GD pattern).
	params := append([]float64(nil), w.InitialParams...)
	params[0] += 0.5
	if _, err := s.Evaluate(params); err != nil {
		t.Fatal(err)
	}
	second := s.Result()
	secondPulses := second.PulsesGenerated - firstPulses
	secondClassical := second.Breakdown.Classical() - firstClassical
	// Only the gates bound to parameter 0 regenerate: far fewer than the
	// full program.
	if secondPulses >= firstPulses/2 {
		t.Errorf("second eval regenerated %d of %d pulses; SLT/incremental path broken", secondPulses, firstPulses)
	}
	if secondClassical >= firstClassical {
		t.Errorf("second eval classical %v ≥ first %v", secondClassical, firstClassical)
	}
	// Repeating identical parameters: zero q_update traffic and zero new
	// pulses.
	before := s.Result().PulsesGenerated
	if _, err := s.Evaluate(params); err != nil {
		t.Fatal(err)
	}
	if s.Result().PulsesGenerated != before {
		t.Error("identical parameters regenerated pulses")
	}
}

func TestCommBreakdownPopulated(t *testing.T) {
	w := smallQAOA(t)
	cfg := DefaultConfig(host.Rocket())
	cfg.Shots = 64
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(w.InitialParams); err != nil {
		t.Fatal(err)
	}
	params := append([]float64(nil), w.InitialParams...)
	params[1] += 0.3
	if _, err := s.Evaluate(params); err != nil {
		t.Fatal(err)
	}
	c := s.Result().Comm
	if c.QSet <= 0 {
		t.Error("no q_set time recorded")
	}
	if c.QUpdate <= 0 {
		t.Error("no q_update time recorded")
	}
	if c.QAcquire <= 0 {
		t.Error("no q_acquire time recorded")
	}
	// q_update is single-cycle RoCC traffic: by far the cheapest class
	// per operation.
	if c.QUpdate >= c.QSet {
		t.Errorf("q_update %v ≥ q_set %v; datapath ❶ should be cheap", c.QUpdate, c.QSet)
	}
}

func TestFineGrainedBeatsFENCEEndToEnd(t *testing.T) {
	w := smallQAOA(t)
	o := opt.DefaultOptions()
	o.Iterations = 2
	run := func(mode sched.SyncMode) sim.Time {
		cfg := DefaultConfig(host.Rocket())
		cfg.Shots = 100
		cfg.Sync = mode
		return runQtenon(t, cfg, w, true, o).Breakdown.Total()
	}
	fence, fine := run(sched.FENCE), run(sched.FineGrained)
	if fine >= fence {
		t.Errorf("fine-grained %v not below FENCE %v", fine, fence)
	}
}

func TestBatchingReducesHostActivity(t *testing.T) {
	// Figure 16(b): batching amortizes per-delivery handling, shrinking
	// host computation time (activity, including overlapped work).
	w := smallQAOA(t)
	o := opt.DefaultOptions()
	o.Iterations = 2
	run := func(batching bool) (sim.Time, sim.Time) {
		cfg := DefaultConfig(host.Rocket())
		cfg.Shots = 200
		cfg.Batching = batching
		res := runQtenon(t, cfg, w, true, o)
		return res.HostActivity, res.CommActivity
	}
	bHost, bComm := run(true)
	uHost, uComm := run(false)
	if bHost >= uHost {
		t.Errorf("batched host activity %v not below per-shot %v", bHost, uHost)
	}
	if bComm >= uComm {
		t.Errorf("batched comm activity %v not below per-shot %v", bComm, uComm)
	}
}

func TestHardwareOnlySlowerThanFull(t *testing.T) {
	w := smallQAOA(t)
	o := opt.DefaultOptions()
	o.Iterations = 2
	full := runQtenon(t, DefaultConfig(host.Rocket()), w, true, o)
	hw := runQtenon(t, HardwareOnlyConfig(host.Rocket()), w, true, o)
	if full.Breakdown.Total() >= hw.Breakdown.Total() {
		t.Errorf("full Qtenon %v not below hardware-only %v", full.Breakdown.Total(), hw.Breakdown.Total())
	}
	if full.Breakdown.Quantum != hw.Breakdown.Quantum {
		t.Errorf("quantum time differs between configs: %v vs %v", full.Breakdown.Quantum, hw.Breakdown.Quantum)
	}
}

func TestInstructionEconomyVsBaseline(t *testing.T) {
	w := smallQAOA(t)
	o := opt.DefaultOptions()
	o.Iterations = 2
	qres := runQtenon(t, DefaultConfig(host.Rocket()), w, false, o)
	bres := runBase(t, baseline.DefaultConfig(), w, false, o)
	if qres.InstructionCount*10 > bres.InstructionCount {
		t.Errorf("Qtenon %d instrs vs baseline %d: advantage < 10×",
			qres.InstructionCount, bres.InstructionCount)
	}
}

// The headline integration check (Figure 13 shape at reduced scale plus
// the real 64-qubit point): Qtenon end-to-end beats the baseline and
// flips the breakdown from communication-dominated to quantum-dominated.
func TestEndToEndSpeedupShape64q(t *testing.T) {
	if testing.Short() {
		t.Skip("64-qubit end-to-end run")
	}
	w, err := vqa.New(vqa.VQE, 64)
	if err != nil {
		t.Fatal(err)
	}
	o := opt.DefaultOptions() // 10 iterations, the paper's setting
	base := runBase(t, baseline.DefaultConfig(), w, true, o)
	qt := runQtenon(t, DefaultConfig(host.BoomL()), w, true, o)
	speedup := float64(base.Breakdown.Total()) / float64(qt.Breakdown.Total())
	// Paper: 11.5× for 64q VQE under SPSA. Accept the right regime.
	if speedup < 5 || speedup > 25 {
		t.Errorf("end-to-end speedup = %.1f×, want ≈11× (5–25 acceptable)\nbaseline: %v\nqtenon: %v",
			speedup, base.Breakdown, qt.Breakdown)
	}
	// Quantum time is identical physics on both systems (same seed/chip).
	ratio := float64(base.Breakdown.Quantum) / float64(qt.Breakdown.Quantum)
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("quantum time mismatch: baseline %v vs qtenon %v", base.Breakdown.Quantum, qt.Breakdown.Quantum)
	}
	// Baseline: communication dominates. Qtenon: quantum dominates (≈90%
	// in the paper; require > 60%).
	if bp := base.Breakdown.Percent(); bp[1] < bp[0] {
		t.Errorf("baseline breakdown not comm-dominated: %v", base.Breakdown)
	}
	if qp := qt.Breakdown.Percent(); qp[0] < 60 {
		t.Errorf("Qtenon quantum share = %.1f%%, want > 60%%: %v", qp[0], qt.Breakdown)
	}
}
