package system

import (
	"testing"

	"qtenon/internal/host"
	"qtenon/internal/opt"
	"qtenon/internal/vqa"
)

// Instruction accounting follows the ISA contract: setup issues one
// q_set; every evaluation issues q_gen + q_run + q_acquire plus one
// q_update per changed register.
func TestInstructionAccounting(t *testing.T) {
	w, err := vqa.New(vqa.QAOA, 8) // 10 parameters
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(host.Rocket())
	cfg.Shots = 50
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// First eval: q_set + q_gen + q_run + q_acquire = 4.
	if _, err := s.Evaluate(w.InitialParams); err != nil {
		t.Fatal(err)
	}
	if n := s.Result().InstructionCount; n != 4 {
		t.Errorf("after setup eval: %d instructions, want 4", n)
	}
	// Second eval with 1 changed parameter: +1 q_update +3 control = +4.
	p := append([]float64(nil), w.InitialParams...)
	p[3] += 0.7
	if _, err := s.Evaluate(p); err != nil {
		t.Fatal(err)
	}
	if n := s.Result().InstructionCount; n != 8 {
		t.Errorf("after delta eval: %d instructions, want 8", n)
	}
	// Third eval with nothing changed: only the 3 control instructions.
	if _, err := s.Evaluate(p); err != nil {
		t.Fatal(err)
	}
	if n := s.Result().InstructionCount; n != 11 {
		t.Errorf("after no-op eval: %d instructions, want 11", n)
	}
}

// SLT statistics surface through the system and reflect the GD pattern:
// parameter-shift sweeps revisit angles, so the hit rate climbs.
func TestSLTStatsExposed(t *testing.T) {
	w, err := vqa.New(vqa.QAOA, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(host.Rocket())
	cfg.Shots = 50
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	o := opt.DefaultOptions()
	o.Iterations = 2
	if _, err := opt.GradientDescent(s.Evaluate, w.InitialParams, o); err != nil {
		t.Fatal(err)
	}
	st := s.bank.TotalStats()
	if st.Lookups == 0 {
		t.Fatal("no SLT lookups recorded")
	}
	if st.Hits+st.QSpaceHits == 0 {
		t.Error("GD parameter-shift produced zero SLT reuse")
	}
	if st.Allocs == 0 {
		t.Error("no allocations recorded")
	}
}

// q_update quantization dedupe: a parameter change below the 24-bit
// angle quantum generates no traffic at all.
func TestSubQuantumUpdateIsFree(t *testing.T) {
	w, err := vqa.New(vqa.QAOA, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(host.Rocket())
	cfg.Shots = 50
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(w.InitialParams); err != nil {
		t.Fatal(err)
	}
	before := s.Result()
	p := append([]float64(nil), w.InitialParams...)
	p[0] += 1e-9 // below the 2π/2^24 ≈ 3.7e-7 rad quantum
	if _, err := s.Evaluate(p); err != nil {
		t.Fatal(err)
	}
	after := s.Result()
	if got := after.InstructionCount - before.InstructionCount; got != 3 {
		t.Errorf("sub-quantum update issued %d instructions, want 3 (no q_update)", got)
	}
	if after.PulsesGenerated != before.PulsesGenerated {
		t.Error("sub-quantum update regenerated pulses")
	}
}
