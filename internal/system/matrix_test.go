package system

import (
	"fmt"
	"testing"

	"qtenon/internal/host"
	"qtenon/internal/opt"
	"qtenon/internal/sched"
	"qtenon/internal/vqa"
)

// Exhaustive configuration matrix: every combination of sync mode,
// batching, SLT, incremental compilation, and core must run cleanly and
// respect the global invariants — quantum time invariant, breakdown
// consistency, cost-history invariance (architecture never changes
// physics), and the full configuration dominating every ablation.
func TestConfigurationMatrix(t *testing.T) {
	w, err := vqa.New(vqa.VQE, 8)
	if err != nil {
		t.Fatal(err)
	}
	o := opt.DefaultOptions()
	o.Iterations = 2

	type variant struct {
		name string
		cfg  Config
	}
	var variants []variant
	for _, sync := range []sched.SyncMode{sched.FENCE, sched.FineGrained} {
		for _, batching := range []bool{false, true} {
			for _, slt := range []bool{false, true} {
				for _, incr := range []bool{false, true} {
					cfg := DefaultConfig(host.Rocket())
					cfg.Shots = 100
					cfg.Sync = sync
					cfg.Batching = batching
					cfg.UseSLT = slt
					cfg.Incremental = incr
					variants = append(variants, variant{
						name: fmt.Sprintf("sync=%v batch=%v slt=%v incr=%v", sync, batching, slt, incr),
						cfg:  cfg,
					})
				}
			}
		}
	}

	fullIdx := -1
	for i, v := range variants {
		if v.cfg.Sync == sched.FineGrained && v.cfg.Batching && v.cfg.UseSLT && v.cfg.Incremental {
			fullIdx = i
		}
	}
	var refHistory []float64
	var refQuantum int64
	results := make([]int64, len(variants))
	for i, v := range variants {
		res := runQtenon(t, v.cfg, w, true, o)
		b := res.Breakdown
		if b.Quantum <= 0 || b.Total() < b.Quantum {
			t.Errorf("%s: inconsistent breakdown %v", v.name, b)
		}
		if got := b.Quantum + b.Comm + b.PulseGen + b.HostComp; got != b.Total() {
			t.Errorf("%s: categories do not sum to total", v.name)
		}
		if refHistory == nil {
			refHistory = res.History
			refQuantum = int64(b.Quantum)
		} else {
			for k := range refHistory {
				if res.History[k] != refHistory[k] {
					t.Errorf("%s: cost history diverged at %d", v.name, k)
					break
				}
			}
			if int64(b.Quantum) != refQuantum {
				t.Errorf("%s: quantum time %d != reference %d", v.name, b.Quantum, refQuantum)
			}
		}
		results[i] = int64(b.Total())
	}
	// The full configuration is the fastest to within 1%: batching
	// legitimately trades a slightly longer exposed tail (its final batch
	// is larger) for lower bus and host activity, so a sub-percent win
	// for the unbatched variant on wall-clock is a modeled effect, not a
	// bug.
	for i, total := range results {
		if float64(total) < float64(results[fullIdx])*0.99 {
			t.Errorf("%s (%d) beat the full configuration (%d) by >1%%", variants[i].name, total, results[fullIdx])
		}
	}
}
