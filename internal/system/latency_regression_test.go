package system

import (
	"os"
	"sort"
	"testing"
	"time"

	"qtenon/internal/host"
	"qtenon/internal/vqa"
)

// evaluateNsCeiling bounds the median latency of one warmed 12-qubit /
// 100-shot Evaluate. The SoA kernel rework (DESIGN.md §11) brought the
// call from ~681µs to ~270µs on the reference container; the ceiling
// sits at ~1.8× the measured figure — generous against machine jitter
// and CPU-generation spread, but well below the pre-SoA latency, so
// losing the SoA kernels, the tiled sweep, or the sign/phase term split
// trips it. Slow or heavily shared machines can skip the gate with
// -short or QTENON_SKIP_PERF_GATES=1.
const evaluateNsCeiling = 500 * time.Microsecond

// BenchmarkEvaluateLatencyRegression fails the build when the warmed
// evaluation hot path regresses past the ns/op ceiling. CI runs it via
// `-bench='Alloc|Latency' -benchtime=1x` alongside the alloc gates.
func BenchmarkEvaluateLatencyRegression(b *testing.B) {
	if testing.Short() {
		b.Skip("latency gate skipped in -short mode")
	}
	if os.Getenv("QTENON_SKIP_PERF_GATES") != "" {
		b.Skip("latency gate skipped: QTENON_SKIP_PERF_GATES set")
	}
	w, err := vqa.New(vqa.VQE, 12)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(host.BoomL())
	cfg.Shots = 100
	s, err := New(cfg, w)
	if err != nil {
		b.Fatal(err)
	}
	params := append([]float64(nil), w.InitialParams...)
	eval := func() {
		params[0] += 1e-3
		if _, err := s.Evaluate(params); err != nil {
			b.Fatal(err)
		}
	}
	eval() // warm every arena before timing
	eval()
	for i := 0; i < b.N; i++ {
		// Median of batch means: robust to one GC pause or scheduler
		// hiccup without hiding a systematic regression.
		const batches, perBatch = 5, 20
		means := make([]time.Duration, batches)
		for j := range means {
			start := time.Now()
			for k := 0; k < perBatch; k++ {
				eval()
			}
			means[j] = time.Since(start) / perBatch
		}
		sort.Slice(means, func(a, c int) bool { return means[a] < means[c] })
		if med := means[batches/2]; med > evaluateNsCeiling {
			b.Fatalf("warmed Evaluate median latency %v exceeds ceiling %v — the SoA/tiled hot path regressed (skip with -short or QTENON_SKIP_PERF_GATES=1 on slow machines)",
				med, evaluateNsCeiling)
		}
	}
}
