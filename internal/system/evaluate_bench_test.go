package system

import (
	"testing"

	"qtenon/internal/host"
	"qtenon/internal/vqa"
)

// BenchmarkEvaluate measures one full cost evaluation on the Qtenon
// machine — the unit of work the optimizer loop repeats (2P+1)× per
// iteration. B/op is the tracked number: the hot-path memory-discipline
// work (engine event queue, statevector arena, regfile/diff/bind
// scratch) shows up here as a drop in bytes allocated per evaluation.
func BenchmarkEvaluate(b *testing.B) {
	w, err := vqa.New(vqa.VQE, 12)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(host.BoomL())
	cfg.Shots = 100
	s, err := New(cfg, w)
	if err != nil {
		b.Fatal(err)
	}
	params := append([]float64(nil), w.InitialParams...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Perturb one parameter so the incremental path (Diff + q_update)
		// stays live, as it is under gradient descent.
		params[i%len(params)] += 1e-3
		if _, err := s.Evaluate(params); err != nil {
			b.Fatal(err)
		}
	}
}
