package system

import (
	"testing"

	"qtenon/internal/host"
	"qtenon/internal/opt"
	"qtenon/internal/quantum"
	"qtenon/internal/trace"
	"qtenon/internal/vqa"
)

func TestNoisyExecutionRunsAndDiverges(t *testing.T) {
	w, err := vqa.New(vqa.QAOA, 8)
	if err != nil {
		t.Fatal(err)
	}
	o := opt.DefaultOptions()
	o.Iterations = 2
	clean := DefaultConfig(host.Rocket())
	clean.Shots = 300
	noisy := clean
	noisy.Noise = quantum.Noise{Readout: 0.2}

	cres := runQtenon(t, clean, w, true, o)
	nres := runQtenon(t, noisy, w, true, o)
	// Heavy readout noise changes the observed costs...
	same := true
	for i := range cres.History {
		if cres.History[i] != nres.History[i] {
			same = false
		}
	}
	if same {
		t.Error("noisy run identical to clean run")
	}
	// ...but not the architecture timing: quantum time is pinned by the
	// circuit schedule, noise or not.
	if cres.Breakdown.Quantum != nres.Breakdown.Quantum {
		t.Errorf("noise changed quantum time: %v vs %v",
			cres.Breakdown.Quantum, nres.Breakdown.Quantum)
	}
	if _, err := New(func() Config { c := clean; c.Noise = quantum.Noise{Readout: 2}; return c }(), w); err == nil {
		t.Error("invalid noise accepted")
	}
}

func TestTraceRecordsEvaluationSpans(t *testing.T) {
	w, err := vqa.New(vqa.QAOA, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(host.Rocket())
	cfg.Shots = 100
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	s.SetTrace(rec)
	if _, err := s.Evaluate(w.InitialParams); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(w.InitialParams); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	// The quantum lane's busy time matches the accounted quantum time.
	if got, want := rec.Busy("quantum"), s.Result().Breakdown.Quantum; got != want {
		t.Errorf("trace quantum busy %v != accounted %v", got, want)
	}
	// The virtual clock equals the total accounted time.
	if s.Now() != s.Result().Breakdown.Total() {
		t.Errorf("Now %v != breakdown total %v", s.Now(), s.Result().Breakdown.Total())
	}
	// Disabling the tracer stops recording.
	s.SetTrace(nil)
	n := rec.Len()
	if _, err := s.Evaluate(w.InitialParams); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != n {
		t.Error("spans recorded after SetTrace(nil)")
	}
}
