// Package system assembles the full Qtenon machine: a RISC-V host core
// with the RoCC-attached quantum controller (unified memory hierarchy,
// SLT, four-stage pulse pipeline), the TileLink system bus with RBQ/WBQ,
// the soft memory barrier, the quantum chip behind the ADI, and the
// software stack (incremental compilation, batched transmission,
// fine-grained synchronization).
//
// Each cost evaluation executes the paper's instruction sequence —
// q_update* → q_gen → q_run ∥ q_acquire — with cycle-level component
// models supplying the latencies and the sched timeline computing what
// overlaps the quantum shadow. Accounting follows the critical path:
// exposed classical time is attributed to communication, pulse
// generation, or host computation exactly as Figures 13–16 report it.
package system

import (
	"fmt"

	"qtenon/internal/circuit"
	"qtenon/internal/compiler"
	"qtenon/internal/host"
	"qtenon/internal/mapper"
	"qtenon/internal/opt"
	"qtenon/internal/pipeline"
	"qtenon/internal/qcc"
	"qtenon/internal/quantum"
	"qtenon/internal/report"
	"qtenon/internal/rocc"
	"qtenon/internal/sched"
	"qtenon/internal/sim"
	"qtenon/internal/slt"
	"qtenon/internal/tilelink"
	"qtenon/internal/trace"
	"qtenon/internal/vqa"
)

// Config assembles a Qtenon system.
type Config struct {
	Core  host.Core
	Costs host.Costs
	Bus   tilelink.Config
	ADI   quantum.ADI
	Shots int
	Seed  int64
	// Sync selects FENCE vs fine-grained synchronization (§6.2).
	Sync sched.SyncMode
	// Batching enables Algorithm 1's batched transmission (§6.3).
	Batching bool
	// Incremental enables dynamic incremental compilation; disabling it
	// recompiles and re-ships the whole program every evaluation
	// ("Qtenon hardware without software", Figure 13(b)).
	Incremental bool
	// UseSLT enables the skip lookup table (ablation hook).
	UseSLT bool
	// PGUs / PGULatency configure the pulse pipeline (paper: 8 × 1000).
	PGUs       int
	PGULatency int64
	// ControllerHz clocks the quantum controller (1 GHz, same as core).
	ControllerHz int64
	// Noise selects the chip error model; the zero value is ideal.
	Noise quantum.Noise
	// Coupling, when non-nil, routes the workload circuit onto the given
	// physical connectivity (SWAP insertion via internal/mapper) before
	// compilation — the transpilation step real hardware requires. Nil
	// assumes all-to-all connectivity, the paper's implicit setting.
	Coupling *mapper.Coupling
}

// DefaultConfig returns the paper's full Qtenon configuration on the
// given host core.
func DefaultConfig(core host.Core) Config {
	return Config{
		Core:         core,
		Costs:        host.DefaultCosts(),
		Bus:          tilelink.DefaultConfig(),
		ADI:          quantum.DefaultADI(),
		Shots:        500,
		Seed:         1,
		Sync:         sched.FineGrained,
		Batching:     true,
		Incremental:  true,
		UseSLT:       true,
		PGUs:         8,
		PGULatency:   1000,
		ControllerHz: 1_000_000_000,
	}
}

// HardwareOnlyConfig returns "Qtenon w/o software" (Figure 13(b)): the
// tightly coupled hardware with naive software — FENCE synchronization,
// immediate per-shot transmission, and no fine-grained scheduling.
// Incremental compilation stays on: it is a property of the .regfile
// hardware and the program format.
func HardwareOnlyConfig(core host.Core) Config {
	c := DefaultConfig(core)
	c.Sync = sched.FENCE
	c.Batching = false
	return c
}

// System is a Qtenon machine bound to one workload.
type System struct {
	cfg      Config
	workload *vqa.Workload

	cacheCfg qcc.Config
	cache    *qcc.Cache
	bank     *slt.Bank
	pipe     *pipeline.Pipeline
	chip     quantum.Executor
	bus      *tilelink.Bus
	rbq      *tilelink.RBQ
	barrier  *tilelink.Barrier
	prog     *compiler.Program

	controller sim.Clock
	cur        []float64
	loaded     bool

	// exec is the circuit actually executed (routed when Coupling is
	// set); layout maps logical → physical qubits for outcome remapping.
	exec   *circuit.Circuit
	layout []int

	breakdown    report.Breakdown
	comm         report.CommBreakdown
	instrs       int
	evals        int
	pulsesGen    int64
	hostActivity sim.Time
	commActivity sim.Time

	// tracer, when set, records per-resource spans on the virtual
	// timeline (now advances by each evaluation's wall time).
	tracer *trace.Recorder
	now    sim.Time

	// measureCursor walks the .measure ring as shots land.
	measureCursor int
	// hostResultBase is the host-memory address results synchronize to.
	hostResultBase uint64
}

// New builds a Qtenon system for the workload.
func New(cfg Config, w *vqa.Workload) (*System, error) {
	if cfg.Shots <= 0 {
		return nil, fmt.Errorf("system: non-positive shot count")
	}
	if err := cfg.Costs.Validate(); err != nil {
		return nil, err
	}
	if cfg.ControllerHz <= 0 {
		return nil, fmt.Errorf("system: non-positive controller clock")
	}
	exec := w.Circuit
	var layout []int
	if cfg.Coupling != nil {
		routed, err := mapper.Route(w.Circuit, cfg.Coupling)
		if err != nil {
			return nil, err
		}
		exec = routed.Circuit
		layout = routed.Layout
	}
	cacheCfg := qcc.DefaultConfig(exec.NQubits)
	cache, err := qcc.NewCache(cacheCfg)
	if err != nil {
		return nil, err
	}
	bank := slt.NewBank(w.NQubits(), cacheCfg.PulseEntries)
	pcfg := pipeline.Config{
		PGUs:       cfg.PGUs,
		PGULatency: cfg.PGULatency,
		UseSLT:     cfg.UseSLT,
		Timing:     circuit.DefaultTiming(),
	}
	pipe, err := pipeline.New(pcfg, cache, bank)
	if err != nil {
		return nil, err
	}
	var chip quantum.Executor
	if cfg.Noise.Enabled() {
		chip, err = quantum.NewNoisyChip(exec.NQubits, cfg.Seed, cfg.Noise)
	} else {
		chip, err = quantum.NewChip(exec.NQubits, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	busCfg := cfg.Bus
	busCfg.Seed = cfg.Seed
	bus, err := tilelink.NewBus(busCfg)
	if err != nil {
		return nil, err
	}
	prog, err := compiler.Compile(exec, cacheCfg)
	if err != nil {
		return nil, err
	}
	return &System{
		cfg:            cfg,
		workload:       w,
		cacheCfg:       cacheCfg,
		cache:          cache,
		bank:           bank,
		pipe:           pipe,
		chip:           chip,
		bus:            bus,
		rbq:            tilelink.NewRBQ(busCfg.Tags, 8, 1<<20),
		barrier:        tilelink.NewBarrier(),
		prog:           prog,
		exec:           exec,
		layout:         layout,
		controller:     sim.NewClock(cfg.ControllerHz),
		hostResultBase: 0x9000_0000,
	}, nil
}

// Program exposes the compiled program (for the harness).
func (s *System) Program() *compiler.Program { return s.prog }

// SLTStats exposes aggregate skip-lookup-table statistics.
func (s *System) SLTStats() slt.Stats { return s.bank.TotalStats() }

// transferCycles runs a real bus transfer of `beats` beats and returns
// its cycle count.
func (s *System) transferCycles(beats int, write bool) (int64, error) {
	if beats <= 0 {
		return 0, nil
	}
	var data []uint64
	if write {
		data = make([]uint64, beats)
	}
	res, err := tilelink.Transfer(s.bus, s.rbq, s.hostResultBase, beats, write, data)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// setup performs the one-time program upload (q_set) and returns its
// communication time.
func (s *System) setup(params []float64) (sim.Time, error) {
	if err := s.prog.Load(s.cache, params); err != nil {
		return 0, err
	}
	bytes := s.prog.TotalEntries() * 9 // 65-bit entries on the wire
	beats := (bytes + s.cfg.Bus.BeatBytes - 1) / s.cfg.Bus.BeatBytes
	cycles, err := s.transferCycles(beats, true)
	if err != nil {
		return 0, err
	}
	s.instrs++ // one bulk q_set
	t := s.controller.Cycles(cycles)
	s.comm.QSet += t
	s.cur = append([]float64(nil), params...)
	s.loaded = true
	return t, nil
}

// Evaluate runs one cost evaluation with full Qtenon accounting. It is an
// opt.Evaluator.
func (s *System) Evaluate(params []float64) (float64, error) {
	s.evals++
	nq := s.exec.NQubits

	var hostPrep, commPrep sim.Time
	if !s.loaded {
		t, err := s.setup(params)
		if err != nil {
			return 0, err
		}
		commPrep += t
		hostPrep += s.cfg.Core.Time(s.cfg.Costs.IncrementalCompile(len(params)))
	} else if s.cfg.Incremental {
		deltas, err := s.prog.Diff(s.cur, params)
		if err != nil {
			return 0, err
		}
		hostPrep += s.cfg.Core.Time(s.cfg.Costs.IncrementalCompile(len(deltas)))
		if err := compiler.ApplyDeltas(s.cache, deltas); err != nil {
			return 0, err
		}
		// q_update: one single-cycle RoCC op per changed register
		// (datapath ❶).
		t := sim.Time(len(deltas)) * s.controller.Cycles(host.RoCCIssueCycles)
		commPrep += t
		s.comm.QUpdate += t
		s.instrs += len(deltas)
		s.cur = append(s.cur[:0], params...)
	} else {
		// Software disabled: full recompile + full q_set re-upload.
		hostPrep += s.cfg.Core.Time(s.cfg.Costs.JITCompile(s.prog.Gates))
		if err := s.prog.Load(s.cache, params); err != nil {
			return 0, err
		}
		bytes := s.prog.TotalEntries() * 9
		beats := (bytes + s.cfg.Bus.BeatBytes - 1) / s.cfg.Bus.BeatBytes
		cycles, err := s.transferCycles(beats, true)
		if err != nil {
			return 0, err
		}
		t := s.controller.Cycles(cycles)
		commPrep += t
		s.comm.QSet += t
		s.instrs++
		s.cur = append(s.cur[:0], params...)
	}

	// q_gen: the four-stage pipeline walks the program.
	pipeRes, err := s.pipe.Run(s.prog.Items)
	if err != nil {
		return 0, err
	}
	s.instrs++
	s.pulsesGen += int64(pipeRes.Generated)
	pulsePrep := s.controller.Cycles(pipeRes.Cycles)

	// q_run: execute shots; q_acquire: stream results.
	bound := s.exec.Bind(params)
	ex, err := s.chip.Execute(bound, s.cfg.Shots)
	if err != nil {
		return 0, err
	}
	s.instrs += 2 // q_run + q_acquire

	k := 1
	if s.cfg.Batching {
		k = sched.BatchInterval(s.cfg.Bus.BeatBytes*8, nq)
	}
	batches := sched.PlanBatches(s.cfg.Shots, k)

	// Deposit outcomes in .measure and mark the barrier per batch; time a
	// representative batch transfer on the real bus.
	wordsPerShot := (nq + 63) / 64
	for i, o := range ex.Outcomes {
		idx := (s.measureCursor + i*wordsPerShot) % s.cacheCfg.MeasureEntries
		if err := s.cache.WriteMeasure(idx, o, qcc.HardwareAccess); err != nil {
			return 0, err
		}
	}
	s.measureCursor = (s.measureCursor + len(ex.Outcomes)*wordsPerShot) % s.cacheCfg.MeasureEntries
	batchBytes := k * wordsPerShot * 8
	beats := (batchBytes + s.cfg.Bus.BeatBytes - 1) / s.cfg.Bus.BeatBytes
	cycles, err := s.transferCycles(beats, true)
	if err != nil {
		return 0, err
	}
	transferPerBatch := s.controller.Cycles(cycles)
	s.barrier.MarkRange(s.hostResultBase, len(batches), uint64(batchBytes))

	tl := sched.Compute(sched.TimelineInput{
		Mode:             s.cfg.Sync,
		HostPrep:         hostPrep,
		CommPrep:         commPrep,
		PulsePrep:        pulsePrep,
		ShotTime:         ex.ShotTime + s.cfg.ADI.RoundTrip(),
		Batches:          batches,
		TransferPerBatch: transferPerBatch,
		HostPerShot:      s.cfg.Core.Time(s.cfg.Costs.PostProcess(1, nq)),
		HostPerBatch:     s.cfg.Core.Time(s.cfg.Costs.HostPerDelivery),
		HostTail:         s.cfg.Core.Time(s.cfg.Costs.ParamUpdate(s.workload.NumParams())),
	})

	s.breakdown.Quantum += tl.Quantum
	s.breakdown.PulseGen += tl.ExposedPulse
	s.breakdown.HostComp += tl.ExposedHost
	s.breakdown.Comm += tl.ExposedComm
	s.hostActivity += tl.HostActivity
	s.commActivity += tl.CommActivity

	if s.tracer != nil {
		t0 := s.now
		s.tracer.Add("host", "prep", t0, t0+hostPrep)
		s.tracer.Add("rocc/bus", "q_update/q_set", t0+hostPrep, t0+hostPrep+commPrep)
		s.tracer.Add("pipeline", "q_gen", t0+hostPrep+commPrep, t0+hostPrep+commPrep+pulsePrep)
		qStart := t0 + hostPrep + commPrep + pulsePrep
		qEnd := qStart + tl.Quantum
		s.tracer.Add("quantum", "q_run", qStart, qEnd)
		if tail := tl.Total - (hostPrep + commPrep + pulsePrep + tl.Quantum); tail > 0 {
			s.tracer.Add("host", "post+update", qEnd, qEnd+tail)
		}
	}
	s.now += tl.Total
	// The q_acquire share of exposed communication is whatever was not
	// prep traffic (q_set/q_update).
	if tail := tl.ExposedComm - commPrep; tail > 0 {
		s.comm.QAcquire += tail
	}

	outcomes := ex.Outcomes
	if s.layout != nil {
		outcomes = mapper.RemapOutcomes(outcomes, s.layout)
	}
	return s.workload.Cost(outcomes), nil
}

// Breakdown returns accumulated end-to-end accounting.
func (s *System) Breakdown() report.Breakdown { return s.breakdown }

// Comm returns the per-instruction communication breakdown.
func (s *System) Comm() report.CommBreakdown { return s.comm }

// Evaluations reports the number of cost evaluations run.
func (s *System) Evaluations() int { return s.evals }

// Instructions reports issued Qtenon ISA operations (Table 1).
func (s *System) Instructions() int { return s.instrs }

// PulsesGenerated reports total PGU syntheses (Table 5's computation
// requirement).
func (s *System) PulsesGenerated() int64 { return s.pulsesGen }

// SetTrace attaches a span recorder; pass nil to disable. Spans are laid
// out on a virtual timeline that advances by each evaluation's duration.
func (s *System) SetTrace(r *trace.Recorder) { s.tracer = r }

// Now reports the virtual timeline position (total simulated time of all
// evaluations so far).
func (s *System) Now() sim.Time { return s.now }

// HostActivity reports total host busy time including work overlapped
// with quantum execution — Figure 16(b)'s "host computation time".
func (s *System) HostActivity() sim.Time { return s.hostActivity }

// CommActivity reports total transmission occupancy including overlapped
// transfers.
func (s *System) CommActivity() sim.Time { return s.commActivity }

// Run executes a full optimization on a fresh system.
func Run(cfg Config, w *vqa.Workload, useSPSA bool, o opt.Options) (report.RunResult, error) {
	s, err := New(cfg, w)
	if err != nil {
		return report.RunResult{}, err
	}
	var res opt.Result
	if useSPSA {
		res, err = opt.SPSA(s.Evaluate, w.InitialParams, o)
	} else {
		res, err = opt.GradientDescent(s.Evaluate, w.InitialParams, o)
	}
	if err != nil {
		return report.RunResult{}, err
	}
	return report.RunResult{
		Breakdown:        s.breakdown,
		Comm:             s.comm,
		History:          res.History,
		Evaluations:      res.Evaluations,
		InstructionCount: s.instrs,
		HostActivity:     s.hostActivity,
		CommActivity:     s.commActivity,
		PulsesGenerated:  s.pulsesGen,
		SLTHitRate:       s.bank.TotalStats().HitRate(),
	}, nil
}

// Sanity hook: the RoCC encodings must stay consistent with the ISA the
// compiler/scheduler assume. This is compile-time documentation more
// than runtime behaviour.
var _ = rocc.FnQRun
