// Package system assembles the full Qtenon machine: a RISC-V host core
// with the RoCC-attached quantum controller (unified memory hierarchy,
// SLT, four-stage pulse pipeline), the TileLink system bus with RBQ/WBQ,
// the soft memory barrier, the quantum chip behind the ADI, and the
// software stack (incremental compilation, batched transmission,
// fine-grained synchronization).
//
// Each cost evaluation executes the paper's instruction sequence —
// q_update* → q_gen → q_run ∥ q_acquire — with cycle-level component
// models supplying the latencies and the sched timeline computing what
// overlaps the quantum shadow. Accounting follows the critical path:
// exposed classical time is attributed to communication, pulse
// generation, or host computation exactly as Figures 13–16 report it.
package system

import (
	"fmt"

	"qtenon/internal/backend"
	"qtenon/internal/circuit"
	"qtenon/internal/compiler"
	"qtenon/internal/host"
	"qtenon/internal/mapper"
	"qtenon/internal/metrics"
	"qtenon/internal/pipeline"
	"qtenon/internal/qcc"
	"qtenon/internal/quantum"
	"qtenon/internal/report"
	"qtenon/internal/rocc"
	"qtenon/internal/route"
	"qtenon/internal/sched"
	"qtenon/internal/sim"
	"qtenon/internal/slt"
	"qtenon/internal/tilelink"
	"qtenon/internal/trace"
	"qtenon/internal/vqa"
)

// Config assembles a Qtenon system.
type Config struct {
	Core  host.Core
	Costs host.Costs
	Bus   tilelink.Config
	ADI   quantum.ADI
	Shots int
	Seed  int64
	// Sync selects FENCE vs fine-grained synchronization (§6.2).
	Sync sched.SyncMode
	// Batching enables Algorithm 1's batched transmission (§6.3).
	Batching bool
	// Incremental enables dynamic incremental compilation; disabling it
	// recompiles and re-ships the whole program every evaluation
	// ("Qtenon hardware without software", Figure 13(b)).
	Incremental bool
	// UseSLT enables the skip lookup table (ablation hook).
	UseSLT bool
	// PGUs / PGULatency configure the pulse pipeline (paper: 8 × 1000).
	PGUs       int
	PGULatency int64
	// ControllerHz clocks the quantum controller (1 GHz, same as core).
	ControllerHz int64
	// Noise selects the chip error model; the zero value is ideal.
	Noise quantum.Noise
	// Coupling, when non-nil, routes the workload circuit onto the given
	// physical connectivity (SWAP insertion via internal/mapper) before
	// compilation — the transpilation step real hardware requires. Nil
	// assumes all-to-all connectivity, the paper's implicit setting.
	Coupling *mapper.Coupling
	// Method pins the chip's simulation method (route.Dense/Clifford/
	// Product); the zero value route.Auto keeps automatic routing.
	Method route.Method
}

// DefaultConfig returns the paper's full Qtenon configuration on the
// given host core.
func DefaultConfig(core host.Core) Config {
	return Config{
		Core:         core,
		Costs:        host.DefaultCosts(),
		Bus:          tilelink.DefaultConfig(),
		ADI:          quantum.DefaultADI(),
		Shots:        500,
		Seed:         1,
		Sync:         sched.FineGrained,
		Batching:     true,
		Incremental:  true,
		UseSLT:       true,
		PGUs:         8,
		PGULatency:   1000,
		ControllerHz: 1_000_000_000,
	}
}

// HardwareOnlyConfig returns "Qtenon w/o software" (Figure 13(b)): the
// tightly coupled hardware with naive software — FENCE synchronization,
// immediate per-shot transmission, and no fine-grained scheduling.
// Incremental compilation stays on: it is a property of the .regfile
// hardware and the program format.
func HardwareOnlyConfig(core host.Core) Config {
	c := DefaultConfig(core)
	c.Sync = sched.FENCE
	c.Batching = false
	return c
}

// System is a Qtenon machine bound to one workload.
type System struct {
	cfg      Config
	workload *vqa.Workload

	cacheCfg qcc.Config
	cache    *qcc.Cache
	bank     *slt.Bank
	pipe     *pipeline.Pipeline
	chip     quantum.Executor
	bus      *tilelink.Bus
	rbq      *tilelink.RBQ
	barrier  *tilelink.Barrier
	prog     *compiler.Program

	controller sim.Clock
	cur        []float64
	loaded     bool

	// exec is the circuit actually executed (routed when Coupling is
	// set); layout maps logical → physical qubits for outcome remapping.
	exec   *circuit.Circuit
	layout []int

	breakdown    report.Breakdown
	comm         report.CommBreakdown
	instrs       int
	evals        int
	pulsesGen    int64
	hostActivity sim.Time
	commActivity sim.Time
	// method is the simulation method the chip's router resolved on the
	// most recent evaluation (route.Auto before the first one).
	method route.Method

	// tracer, when set, records per-resource spans on the virtual
	// timeline (now advances by each evaluation's wall time).
	tracer *trace.Recorder
	now    sim.Time
	// engine drives each evaluation's timeline as discrete events at
	// absolute simulated times, so the simulation kernel's own metrics
	// (events executed, heap depth) are live during real runs.
	engine sim.Engine

	// measureCursor walks the .measure ring as shots land.
	measureCursor int
	// hostResultBase is the host-memory address results synchronize to.
	hostResultBase uint64

	// Per-evaluation scratch, recycled across Evaluate calls so the
	// steady-state hot path stops allocating: the q_update delta plan,
	// the bus-transfer write payload and retired-data storage, and the
	// bound-circuit shadow handed to the chip.
	deltaScratch []compiler.Delta
	beatScratch  []uint64
	dataScratch  []uint64
	boundScratch *circuit.Circuit

	// reg is this instance's private metrics registry; m holds the
	// handles the system itself updates (components below the system —
	// bus, RBQ, SLT bank, pipeline, engine — hold their own handles into
	// the same registry).
	reg *metrics.Registry
	m   sysInstruments
}

// sysInstruments are the system-level registry handles: the controller
// instruction mix (Table 1 ops the run issues), host-side timers, and
// run/quantum totals.
type sysInstruments struct {
	qSet, qUpdate, qGen, qRun, qAcquire *metrics.Counter
	hostPrep, hostPost                  *metrics.Timer
	evaluations                         *metrics.Counter
	shots                               *metrics.Counter
	shotTime                            *metrics.Timer
	// methods counts evaluations per routed simulation method, indexed
	// by route.Method ("quantum.method.dense" etc.; Auto never fires).
	methods [route.NumMethods]*metrics.Counter
}

func resolveSysInstruments(reg *metrics.Registry) sysInstruments {
	si := sysInstruments{
		qSet:        reg.Counter("controller.instr.q_set"),
		qUpdate:     reg.Counter("controller.instr.q_update"),
		qGen:        reg.Counter("controller.instr.q_gen"),
		qRun:        reg.Counter("controller.instr.q_run"),
		qAcquire:    reg.Counter("controller.instr.q_acquire"),
		hostPrep:    reg.Timer("host.prep_ps"),
		hostPost:    reg.Timer("host.post_ps"),
		evaluations: reg.Counter("system.evaluations"),
		shots:       reg.Counter("quantum.shots"),
		shotTime:    reg.Timer("quantum.shot_time_ps"),
	}
	for m := route.Method(0); m < route.NumMethods; m++ {
		si.methods[m] = reg.Counter("quantum.method." + m.String())
	}
	return si
}

// New builds a Qtenon system for the workload.
func New(cfg Config, w *vqa.Workload) (*System, error) {
	if cfg.Shots <= 0 {
		return nil, fmt.Errorf("system: non-positive shot count")
	}
	if err := cfg.Costs.Validate(); err != nil {
		return nil, err
	}
	if cfg.ControllerHz <= 0 {
		return nil, fmt.Errorf("system: non-positive controller clock")
	}
	exec := w.Circuit
	var layout []int
	if cfg.Coupling != nil {
		routed, err := mapper.Route(w.Circuit, cfg.Coupling)
		if err != nil {
			return nil, err
		}
		exec = routed.Circuit
		layout = routed.Layout
	}
	cacheCfg := qcc.DefaultConfig(exec.NQubits)
	cache, err := qcc.NewCache(cacheCfg)
	if err != nil {
		return nil, err
	}
	bank := slt.NewBank(w.NQubits(), cacheCfg.PulseEntries)
	pcfg := pipeline.Config{
		PGUs:       cfg.PGUs,
		PGULatency: cfg.PGULatency,
		UseSLT:     cfg.UseSLT,
		Timing:     circuit.DefaultTiming(),
	}
	pipe, err := pipeline.New(pcfg, cache, bank)
	if err != nil {
		return nil, err
	}
	var chip quantum.Executor
	if cfg.Noise.Enabled() {
		chip, err = quantum.NewNoisyChip(exec.NQubits, cfg.Seed, cfg.Noise)
	} else {
		chip, err = quantum.NewChip(exec.NQubits, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	quantum.ForceMethodOn(chip, cfg.Method)
	busCfg := cfg.Bus
	busCfg.Seed = cfg.Seed
	bus, err := tilelink.NewBus(busCfg)
	if err != nil {
		return nil, err
	}
	prog, err := compiler.Compile(exec, cacheCfg)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:            cfg,
		workload:       w,
		cacheCfg:       cacheCfg,
		cache:          cache,
		bank:           bank,
		pipe:           pipe,
		chip:           chip,
		bus:            bus,
		rbq:            tilelink.NewRBQ(busCfg.Tags, 8, 1<<20),
		barrier:        tilelink.NewBarrier(),
		prog:           prog,
		exec:           exec,
		layout:         layout,
		controller:     sim.NewClock(cfg.ControllerHz),
		hostResultBase: 0x9000_0000,
		reg:            metrics.NewRegistry(),
	}
	// One private registry per instance: every layer reports into it, so
	// a snapshot covers the whole machine while concurrently-owned
	// instances (factory-minted sweep points) stay isolated.
	s.engine.Instrument(s.reg)
	s.bus.Instrument(s.reg)
	s.rbq.Instrument(s.reg)
	s.barrier.Instrument(s.reg)
	s.pipe.Instrument(s.reg)
	s.m = resolveSysInstruments(s.reg)
	return s, nil
}

// Metrics exposes the instance's metrics registry — live counters from
// every layer of the machine, snapshot-able at any point of a run.
func (s *System) Metrics() *metrics.Registry { return s.reg }

// Program exposes the compiled program (for the harness).
func (s *System) Program() *compiler.Program { return s.prog }

// transferCycles runs a real bus transfer of `beats` beats and returns
// its cycle count.
func (s *System) transferCycles(beats int, write bool) (int64, error) {
	if beats <= 0 {
		return 0, nil
	}
	var data []uint64
	if write {
		if cap(s.beatScratch) < beats {
			s.beatScratch = make([]uint64, beats)
		}
		data = s.beatScratch[:beats]
		for i := range data {
			data[i] = 0
		}
	}
	res, err := tilelink.TransferReuse(s.bus, s.rbq, s.hostResultBase, beats, write, data, s.dataScratch[:0])
	s.dataScratch = res.Data
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// setup performs the one-time program upload (q_set) and returns its
// communication time.
func (s *System) setup(params []float64) (sim.Time, error) {
	if err := s.prog.Load(s.cache, params); err != nil {
		return 0, err
	}
	bytes := s.prog.TotalEntries() * 9 // 65-bit entries on the wire
	beats := (bytes + s.cfg.Bus.BeatBytes - 1) / s.cfg.Bus.BeatBytes
	cycles, err := s.transferCycles(beats, true)
	if err != nil {
		return 0, err
	}
	s.instrs++ // one bulk q_set
	s.m.qSet.Inc()
	t := s.controller.Cycles(cycles)
	s.comm.QSet += t
	s.cur = append([]float64(nil), params...)
	s.loaded = true
	return t, nil
}

// EvaluateBatch evaluates every parameter vector in batch order —
// backend.Batcher. A machine's evaluations are inherently serial events
// on one accounting timeline (each one advances the incremental-compile
// diff state, the engine clock and the metrics registry), so the batch
// is exactly the serial sequence and the accounting is identical to
// per-call Evaluate; what the batch form buys is the optimizer-side
// amortization (one call per gradient, shared shifted-vector storage).
func (s *System) EvaluateBatch(sets [][]float64, out []float64) error {
	for k, p := range sets {
		v, err := s.Evaluate(p)
		if err != nil {
			return err
		}
		out[k] = v
	}
	return nil
}

// Evaluate runs one cost evaluation with full Qtenon accounting. It is an
// opt.Evaluator.
func (s *System) Evaluate(params []float64) (float64, error) {
	s.evals++
	s.m.evaluations.Inc()
	nq := s.exec.NQubits

	var hostPrep, commPrep sim.Time
	if !s.loaded {
		t, err := s.setup(params)
		if err != nil {
			return 0, err
		}
		commPrep += t
		hostPrep += s.cfg.Core.Time(s.cfg.Costs.IncrementalCompile(len(params)))
	} else if s.cfg.Incremental {
		deltas, err := s.prog.AppendDiff(s.deltaScratch[:0], s.cur, params)
		s.deltaScratch = deltas
		if err != nil {
			return 0, err
		}
		hostPrep += s.cfg.Core.Time(s.cfg.Costs.IncrementalCompile(len(deltas)))
		if err := compiler.ApplyDeltas(s.cache, deltas); err != nil {
			return 0, err
		}
		// q_update: one single-cycle RoCC op per changed register
		// (datapath ❶).
		t := sim.Time(len(deltas)) * s.controller.Cycles(host.RoCCIssueCycles)
		commPrep += t
		s.comm.QUpdate += t
		s.instrs += len(deltas)
		s.m.qUpdate.Add(int64(len(deltas)))
		s.cur = append(s.cur[:0], params...)
	} else {
		// Software disabled: full recompile + full q_set re-upload.
		hostPrep += s.cfg.Core.Time(s.cfg.Costs.JITCompile(s.prog.Gates))
		if err := s.prog.Load(s.cache, params); err != nil {
			return 0, err
		}
		bytes := s.prog.TotalEntries() * 9
		beats := (bytes + s.cfg.Bus.BeatBytes - 1) / s.cfg.Bus.BeatBytes
		cycles, err := s.transferCycles(beats, true)
		if err != nil {
			return 0, err
		}
		t := s.controller.Cycles(cycles)
		commPrep += t
		s.comm.QSet += t
		s.instrs++
		s.m.qSet.Inc()
		s.cur = append(s.cur[:0], params...)
	}

	// q_gen: the four-stage pipeline walks the program.
	pipeRes, err := s.pipe.Run(s.prog.Items)
	if err != nil {
		return 0, err
	}
	s.instrs++
	s.m.qGen.Inc()
	s.pulsesGen += int64(pipeRes.Generated)
	pulsePrep := s.controller.Cycles(pipeRes.Cycles)

	// q_run: execute shots; q_acquire: stream results. The bound shadow
	// circuit is scratch: Execute consumes it synchronously and never
	// retains it.
	bound := s.exec.BindInto(s.boundScratch, params)
	s.boundScratch = bound
	ex, err := s.chip.Execute(bound, s.cfg.Shots)
	if err != nil {
		return 0, err
	}
	s.instrs += 2 // q_run + q_acquire
	s.m.qRun.Inc()
	s.m.qAcquire.Inc()
	s.m.shots.Add(int64(s.cfg.Shots))
	s.m.shotTime.Observe(int64(ex.ShotTime))
	if m, ok := quantum.MethodOf(s.chip); ok {
		s.method = m
		s.m.methods[m].Inc()
	}

	k := 1
	if s.cfg.Batching {
		k = sched.BatchInterval(s.cfg.Bus.BeatBytes*8, nq)
	}
	batches := sched.PlanBatches(s.cfg.Shots, k)

	// Deposit outcomes in .measure and mark the barrier per batch; time a
	// representative batch transfer on the real bus.
	wordsPerShot := (nq + 63) / 64
	for i, o := range ex.Outcomes {
		idx := (s.measureCursor + i*wordsPerShot) % s.cacheCfg.MeasureEntries
		if err := s.cache.WriteMeasure(idx, o, qcc.HardwareAccess); err != nil {
			return 0, err
		}
	}
	s.measureCursor = (s.measureCursor + len(ex.Outcomes)*wordsPerShot) % s.cacheCfg.MeasureEntries
	batchBytes := k * wordsPerShot * 8
	beats := (batchBytes + s.cfg.Bus.BeatBytes - 1) / s.cfg.Bus.BeatBytes
	cycles, err := s.transferCycles(beats, true)
	if err != nil {
		return 0, err
	}
	transferPerBatch := s.controller.Cycles(cycles)
	s.barrier.MarkRange(s.hostResultBase, len(batches), uint64(batchBytes))

	tl := sched.Compute(sched.TimelineInput{
		Mode:             s.cfg.Sync,
		HostPrep:         hostPrep,
		CommPrep:         commPrep,
		PulsePrep:        pulsePrep,
		ShotTime:         ex.ShotTime + s.cfg.ADI.RoundTrip(),
		Batches:          batches,
		TransferPerBatch: transferPerBatch,
		HostPerShot:      s.cfg.Core.Time(s.cfg.Costs.PostProcess(1, nq)),
		HostPerBatch:     s.cfg.Core.Time(s.cfg.Costs.HostPerDelivery),
		HostTail:         s.cfg.Core.Time(s.cfg.Costs.ParamUpdate(s.workload.NumParams())),
	})

	s.breakdown.Quantum += tl.Quantum
	s.breakdown.PulseGen += tl.ExposedPulse
	s.breakdown.HostComp += tl.ExposedHost
	s.breakdown.Comm += tl.ExposedComm
	s.hostActivity += tl.HostActivity
	s.commActivity += tl.CommActivity

	s.m.hostPrep.Observe(int64(hostPrep))
	tail := tl.Total - (hostPrep + commPrep + pulsePrep + tl.Quantum)
	if tail > 0 {
		s.m.hostPost.Observe(int64(tail))
	}

	// Lay the evaluation out on the event engine at absolute simulated
	// times: each phase of the q_update* → q_gen → q_run ∥ q_acquire
	// sequence becomes one event that records its span (the recorder is
	// nil-safe, so untraced runs schedule the same timeline). FIFO order
	// within a timestamp keeps span insertion order stable even for
	// zero-length phases.
	t0 := s.now
	qStart := t0 + hostPrep + commPrep + pulsePrep
	qEnd := qStart + tl.Quantum
	s.engine.At(t0, func() { s.tracer.Add("host", "prep", t0, t0+hostPrep) })
	s.engine.At(t0+hostPrep, func() {
		s.tracer.Add("rocc/bus", "q_update/q_set", t0+hostPrep, t0+hostPrep+commPrep)
	})
	s.engine.At(t0+hostPrep+commPrep, func() { s.tracer.Add("pipeline", "q_gen", t0+hostPrep+commPrep, qStart) })
	s.engine.At(qStart, func() { s.tracer.Add("quantum", "q_run", qStart, qEnd) })
	end := t0 + tl.Total
	if tail > 0 {
		s.engine.At(qEnd, func() { s.tracer.Add("host", "post+update", qEnd, qEnd+tail) })
	}
	if end < qEnd {
		end = qEnd
	}
	s.engine.At(end, func() {}) // end-of-evaluation marker
	s.now = s.engine.Run()
	// The q_acquire share of exposed communication is whatever was not
	// prep traffic (q_set/q_update).
	if tail := tl.ExposedComm - commPrep; tail > 0 {
		s.comm.QAcquire += tail
	}

	outcomes := ex.Outcomes
	if s.layout != nil {
		outcomes = mapper.RemapOutcomes(outcomes, s.layout)
	}
	return s.workload.Cost(outcomes), nil
}

// SetTrace attaches a span recorder; pass nil to disable. Spans are laid
// out on a virtual timeline that advances by each evaluation's duration.
func (s *System) SetTrace(r *trace.Recorder) { s.tracer = r }

// Now reports the virtual timeline position (total simulated time of all
// evaluations so far).
func (s *System) Now() sim.Time { return s.now }

// Result reports everything accumulated so far as one report.RunResult —
// the Backend accounting surface. History is the optimizer's to fill
// (backend.RunOn overwrites it); Evaluations here counts Evaluate calls,
// which agrees with the optimizer on a fresh instance.
func (s *System) Result() report.RunResult {
	var method string
	if s.evals > 0 {
		method = s.method.String()
	}
	return report.RunResult{
		Breakdown:        s.breakdown,
		Comm:             s.comm,
		Evaluations:      s.evals,
		InstructionCount: s.instrs,
		HostActivity:     s.hostActivity,
		CommActivity:     s.commActivity,
		PulsesGenerated:  s.pulsesGen,
		SLTHitRate:       s.bank.TotalStats().HitRate(),
		Method:           method,
	}
}

// Factory mints independent Qtenon systems from one configuration — the
// backend.Factory for the tightly coupled machine. Each instance owns
// its full hardware stack and metrics registry, so factory-spawned
// systems can be evaluated concurrently.
type Factory struct {
	Cfg Config
}

// New implements backend.Factory.
func (f Factory) New(w *vqa.Workload) (backend.Backend, error) { return New(f.Cfg, w) }

// Interface conformance.
var (
	_ backend.Backend      = (*System)(nil)
	_ backend.Instrumented = (*System)(nil)
	_ backend.Factory      = Factory{}
)

// Sanity hook: the RoCC encodings must stay consistent with the ISA the
// compiler/scheduler assume. This is compile-time documentation more
// than runtime behaviour.
var _ = rocc.FnQRun
