package system

import (
	"testing"

	"qtenon/internal/baseline"
	"qtenon/internal/host"
	"qtenon/internal/opt"
	"qtenon/internal/vqa"
)

// The two machines differ only in architecture, not physics: with the
// same seed they must produce identical measurement statistics and thus
// identical optimizer trajectories. This pins down that every speedup
// the harness reports is architectural, never a workload divergence.
func TestSystemsComputeIdenticalTrajectories(t *testing.T) {
	for _, kind := range vqa.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			w, err := vqa.New(kind, 8)
			if err != nil {
				t.Fatal(err)
			}
			o := opt.DefaultOptions()
			o.Iterations = 3
			qcfg := DefaultConfig(host.Rocket())
			qcfg.Shots = 200
			bcfg := baseline.DefaultConfig()
			bcfg.Shots = 200
			qres := runQtenon(t, qcfg, w, true, o)
			bres := runBase(t, bcfg, w, true, o)
			if len(qres.History) != len(bres.History) {
				t.Fatalf("history lengths differ: %d vs %d", len(qres.History), len(bres.History))
			}
			for i := range qres.History {
				if qres.History[i] != bres.History[i] {
					t.Errorf("iteration %d: qtenon %v vs baseline %v", i, qres.History[i], bres.History[i])
				}
			}
		})
	}
}

// Quantum time must be bit-identical between configurations of the SAME
// system too (sync mode, batching, SLT do not touch the chip).
func TestQuantumTimeInvariantAcrossConfigs(t *testing.T) {
	w, err := vqa.New(vqa.QNN, 8)
	if err != nil {
		t.Fatal(err)
	}
	o := opt.DefaultOptions()
	o.Iterations = 2
	mk := func(mut func(*Config)) int64 {
		cfg := DefaultConfig(host.Rocket())
		cfg.Shots = 100
		mut(&cfg)
		return int64(runQtenon(t, cfg, w, true, o).Breakdown.Quantum)
	}
	ref := mk(func(*Config) {})
	variants := map[string]func(*Config){
		"fence":       func(c *Config) { c.Sync = 0 },
		"no-batching": func(c *Config) { c.Batching = false },
		"no-slt":      func(c *Config) { c.UseSLT = false },
		"1-pgu":       func(c *Config) { c.PGUs = 1 },
		"boom":        func(c *Config) { c.Core = host.BoomL() },
	}
	for name, mut := range variants {
		if got := mk(mut); got != ref {
			t.Errorf("%s: quantum time %d != reference %d", name, got, ref)
		}
	}
}

// Optimizers actually optimize through the full architecture: final cost
// beats initial cost for each workload on Qtenon.
func TestOptimizationProgressEndToEnd(t *testing.T) {
	for _, kind := range vqa.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			w, err := vqa.New(kind, 8)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(host.BoomL())
			cfg.Shots = 400
			s, err := New(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			o := opt.DefaultOptions()
			o.Iterations = 15
			res, err := opt.SPSA(s.Evaluate, w.InitialParams, o)
			if err != nil {
				t.Fatal(err)
			}
			first, err := s.Evaluate(w.InitialParams)
			if err != nil {
				t.Fatal(err)
			}
			best := res.History[0]
			for _, c := range res.History {
				if c < best {
					best = c
				}
			}
			if best >= first {
				t.Errorf("no optimization progress: initial %v, best %v", first, best)
			}
		})
	}
}
