package system

import (
	"testing"

	"qtenon/internal/host"
	"qtenon/internal/mapper"
	"qtenon/internal/vqa"
)

// Routing onto a line: the system runs the SWAP-inserted circuit, pays
// for the extra gates, and still computes the same kind of cost.
func TestSystemWithCouplingMap(t *testing.T) {
	w, err := vqa.New(vqa.QAOA, 8)
	if err != nil {
		t.Fatal(err)
	}
	allToAll := DefaultConfig(host.Rocket())
	allToAll.Shots = 200
	routed := allToAll
	routed.Coupling = mapper.Line(8)

	sa, err := New(allToAll, w)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := New(routed, w)
	if err != nil {
		t.Fatal(err)
	}
	costA, err := sa.Evaluate(w.InitialParams)
	if err != nil {
		t.Fatal(err)
	}
	costR, err := sr.Evaluate(w.InitialParams)
	if err != nil {
		t.Fatal(err)
	}
	// Both are valid MaxCut costs (non-positive); the routed one is
	// sampled from an equivalent state so it is statistically similar,
	// but shot noise and the different RNG consumption prevent equality.
	if costA > 0 || costR > 0 {
		t.Errorf("costs = %v, %v; want ≤ 0", costA, costR)
	}
	// Routing adds gates → more pulses generated and longer quantum time.
	if sr.Result().PulsesGenerated <= sa.Result().PulsesGenerated {
		t.Errorf("routed pulses %d not above all-to-all %d", sr.Result().PulsesGenerated, sa.Result().PulsesGenerated)
	}
	if sr.Result().Breakdown.Quantum <= sa.Result().Breakdown.Quantum {
		t.Errorf("routed quantum %v not above all-to-all %v", sr.Result().Breakdown.Quantum, sa.Result().Breakdown.Quantum)
	}
}

// The routed cost converges to the unrouted cost in expectation: with
// many shots the two differ by only sampling noise.
func TestRoutedCostStatisticallyConsistent(t *testing.T) {
	w, err := vqa.New(vqa.QAOA, 6)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(coupled bool) float64 {
		cfg := DefaultConfig(host.Rocket())
		cfg.Shots = 4000
		if coupled {
			cfg.Coupling = mapper.Line(6)
		}
		s, err := New(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Evaluate(w.InitialParams)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, r := mk(false), mk(true)
	diff := a - r
	if diff < 0 {
		diff = -diff
	}
	// Costs are O(edge count) ≈ 9; sampling σ at 4000 shots is ≈ 0.05
	// per edge term. Allow a generous window.
	if diff > 0.6 {
		t.Errorf("routed cost %v vs all-to-all %v differ by %v", r, a, diff)
	}
}
