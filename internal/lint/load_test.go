package lint

import (
	"go/token"
	"strings"
	"testing"
)

// newModuleResolver builds a resolver over the real module for the
// packages the fallback tests steer through.
func newModuleResolver(t *testing.T) *Resolver {
	t.Helper()
	moduleDir, err := ModuleDir(".")
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := NewResolver(token.NewFileSet(), moduleDir, []string{"./internal/sim"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// checkFromSource type-checks one module package through the resolver,
// the way LoadPackages would.
func checkFromSource(t *testing.T, r *Resolver, path string) *Package {
	t.Helper()
	lp, ok := r.srcs[path]
	if !ok {
		t.Fatalf("go list closure is missing %s", path)
	}
	p, err := r.Check(lp.ImportPath, lp.Dir, lp.GoFiles)
	if err != nil {
		t.Fatalf("checking %s: %v", path, err)
	}
	return p
}

// TestSourceFallback simulates a cold build cache: export data for a
// dependency is missing from the go list closure, so importing it must
// type-check it from its source files instead. The deleted entries form
// a chain (sim → metrics → san), so the fallback also has to recurse —
// the source check of metrics itself imports san through the resolver.
func TestSourceFallback(t *testing.T) {
	r := newModuleResolver(t)
	for _, dep := range []string{"qtenon/internal/metrics", "qtenon/internal/san"} {
		if _, ok := r.exports[dep]; !ok {
			t.Fatalf("go list -export produced no export data for %s; the fallback test needs a warm entry to delete", dep)
		}
		delete(r.exports, dep)
	}

	p := checkFromSource(t, r, "qtenon/internal/sim")
	if p.Types == nil || p.Types.Path() != "qtenon/internal/sim" {
		t.Fatalf("checked package has wrong types: %+v", p.Types)
	}
	for _, dep := range []string{"qtenon/internal/metrics", "qtenon/internal/san"} {
		if _, ok := r.loaded[dep]; !ok {
			t.Errorf("source fallback did not register %s in the resolver", dep)
		}
	}
}

// TestSourceFallbackSharesOneCopy pins the identity property the
// resolution order exists for: every import of a fallback-checked
// package must observe the same *types.Package, or type identities
// would split between importers.
func TestSourceFallbackSharesOneCopy(t *testing.T) {
	r := newModuleResolver(t)
	delete(r.exports, "qtenon/internal/san")

	first, err := r.Import("qtenon/internal/san")
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Import("qtenon/internal/san")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("two imports of a fallback-checked package returned distinct *types.Package values")
	}

	// A later source check of an importer resolves against that same
	// copy, not a fresh one.
	p := checkFromSource(t, r, "qtenon/internal/metrics")
	if got := importedPackage(p, "qtenon/internal/san"); got != first {
		t.Fatalf("metrics resolved san to a different *types.Package than a direct import")
	}
}

func importedPackage(p *Package, path string) interface{ Path() string } {
	for _, imp := range p.Types.Imports() {
		if imp.Path() == path {
			return imp
		}
	}
	return nil
}

// TestSourceFallbackSkipsStdlib: standard-library packages never take
// the source fallback — their export data ships with the toolchain, and
// checking them from source would drag in the runtime. With the export
// entry gone, the import must fail with the export importer's error,
// not silently source-check fmt.
func TestSourceFallbackSkipsStdlib(t *testing.T) {
	r := newModuleResolver(t)
	if _, ok := r.srcs["fmt"]; !ok {
		t.Fatal("go list closure is missing fmt")
	}
	delete(r.exports, "fmt")

	_, err := r.Import("fmt")
	if err == nil {
		t.Fatal("importing a stdlib package without export data should fail, not fall back to source")
	}
	if !strings.Contains(err.Error(), "no export data") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, ok := r.loaded["fmt"]; ok {
		t.Fatal("stdlib package was source-checked despite the Standard guard")
	}
}

// TestSourceFallbackCycleGuard: the loading map must turn an import
// cycle reached through the fallback into an error instead of infinite
// recursion. A real cycle cannot exist in a compiling module, so the
// guard is exercised directly: mark a package in-flight, then import it
// with its export data removed.
func TestSourceFallbackCycleGuard(t *testing.T) {
	r := newModuleResolver(t)
	delete(r.exports, "qtenon/internal/san")
	r.loading["qtenon/internal/san"] = true

	_, err := r.Import("qtenon/internal/san")
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("expected an import-cycle error, got %v", err)
	}
}
