// Package linttest is the fixture harness for the qtenon-lint analyzers
// — a self-contained, offline stand-in for
// golang.org/x/tools/go/analysis/analysistest with the same fixture
// convention: a comment
//
//	// want `regex`
//
// on a source line asserts that the analyzer reports a diagnostic on
// that line whose message matches the regex. Several backquoted
// patterns may follow one want comment when a line legitimately earns
// several diagnostics. Lines with no want comment must stay clean.
//
// Each fixture directory under testdata/ is type-checked as one
// package. Fixtures may import real qtenon packages (and the stdlib);
// imports resolve through the same `go list -export` closure the
// qtenon-lint driver uses. By default a fixture at
// testdata/determinism/bad is checked under the import path
// "qtenon/fixture/determinism/bad", which puts it inside the module's
// path prefix so path-scoped rules apply; a fixture can opt out (or
// into another path) with a magic comment anywhere in its first file:
//
//	//lintfixture:path example.com/outside
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"qtenon/internal/lint"
)

var (
	loadOnce sync.Once
	shared   *lint.Resolver
	loadErr  error
)

// extraPatterns are stdlib packages fixtures may import beyond the
// module's own dependency closure.
var extraPatterns = []string{"time", "math/rand", "math/rand/v2", "sort", "slices", "fmt", "strings", "sync", "context"}

// sharedResolver runs `go list -export` once for all fixture tests.
func sharedResolver(t *testing.T) *lint.Resolver {
	t.Helper()
	// Duplicate test goroutines wait behind one `go list -export` run;
	// the run is finite and the test binary owns the whole process.
	//lint:ignore ctxflow memoized fixture load in a test harness — finite, offline, process-owned (DESIGN.md §15.4)
	loadOnce.Do(func() {
		moduleDir, err := lint.ModuleDir(".")
		if err != nil {
			loadErr = err
			return
		}
		shared, _, loadErr = lint.NewResolver(token.NewFileSet(), moduleDir, []string{"./..."}, extraPatterns)
	})
	if loadErr != nil {
		t.Fatalf("linttest: loading export data: %v", loadErr)
	}
	return shared
}

const pathDirective = "//lintfixture:path "

// loadFixture type-checks the fixture package in dir and returns it
// with the parsed want expectations.
func loadFixture(t *testing.T, dir string) (*lint.Package, map[wantKey][]*wantPattern) {
	t.Helper()
	r := sharedResolver(t)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			abs, err := filepath.Abs(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatalf("linttest: %v", err)
			}
			files = append(files, abs)
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no .go files in %s", dir)
	}

	pkgPath := "qtenon/fixture/" + filepath.ToSlash(strings.TrimPrefix(dir, "testdata"+string(filepath.Separator)))
	wants := map[wantKey][]*wantPattern{}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if p, ok := strings.CutPrefix(strings.TrimSpace(line), pathDirective); ok {
				pkgPath = strings.TrimSpace(p)
				continue
			}
			for _, pat := range parseWants(t, f, i+1, line) {
				k := wantKey{filepath.Base(f), i + 1}
				wants[k] = append(wants[k], pat)
			}
		}
	}

	pkg, err := r.Check(pkgPath, dir, files)
	if err != nil {
		t.Fatalf("linttest: type-checking fixture %s: %v", dir, err)
	}
	return pkg, wants
}

// Load type-checks a fixture package for tests that assert on the
// diagnostics programmatically instead of through want comments (e.g.
// the malformed-directive test, whose diagnostic lands on the directive
// line itself where no want comment can sit).
func Load(t *testing.T, dir string) *lint.Package {
	t.Helper()
	pkg, _ := loadFixture(t, dir)
	return pkg
}

// Run type-checks the fixture package in dir (relative to the calling
// test's package directory, e.g. "testdata/determinism/bad"), applies
// analyzer a through lint.Run — so //lint:ignore suppression and
// malformed-directive reporting are in effect, exactly as in the
// driver — and matches the resulting diagnostics against the fixture's
// want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, wants := loadFixture(t, dir)
	diags, err := lint.Run(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: running %s on %s: %v", a.Name, dir, err)
	}
	matchWants(t, diags, wants)
}

// matchWants checks the diagnostics off against the want expectations,
// reporting both unmet wants and unexpected diagnostics.
func matchWants(t *testing.T, diags []lint.Diagnostic, wants map[wantKey][]*wantPattern) {
	t.Helper()
	matched := make([]bool, len(diags))
	keys := make([]wantKey, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, pat := range wants[k] {
			found := false
			for i, d := range diags {
				if matched[i] || filepath.Base(d.Pos.Filename) != k.file || d.Pos.Line != k.line {
					continue
				}
				if pat.re.MatchString(d.Message) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, pat.re)
			}
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
}

// RunMulti type-checks a multi-package fixture module: every immediate
// subdirectory of dir holding .go files becomes one package, loaded in
// lexicographic order — name subdirectories so dependencies sort before
// their importers (alib before buse). All packages run under ONE
// interprocedural program via lint.RunProgram, which is what makes
// cross-package summary fixtures (the interprocedural goldens)
// expressible; want comments may sit in any of the packages, matched by
// file basename, so basenames must be unique across the fixture.
func RunMulti(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var pkgs []*lint.Package
	wants := map[wantKey][]*wantPattern{}
	basenames := map[string]string{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		hasGo := false
		subEntries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for _, se := range subEntries {
			if !se.IsDir() && strings.HasSuffix(se.Name(), ".go") {
				hasGo = true
				if prev, dup := basenames[se.Name()]; dup {
					t.Fatalf("linttest: duplicate basename %s in %s and %s — RunMulti matches wants by basename", se.Name(), prev, sub)
				}
				basenames[se.Name()] = sub
			}
		}
		if !hasGo {
			continue
		}
		pkg, w := loadFixture(t, sub)
		pkgs = append(pkgs, pkg)
		for k, pats := range w {
			wants[k] = append(wants[k], pats...)
		}
	}
	if len(pkgs) == 0 {
		t.Fatalf("linttest: no fixture packages under %s", dir)
	}
	diags, err := lint.RunProgram(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: running %s on %s: %v", a.Name, dir, err)
	}
	matchWants(t, diags, wants)
}

type wantKey struct {
	file string
	line int
}

type wantPattern struct {
	re *regexp.Regexp
}

var (
	wantComment = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantChunk   = regexp.MustCompile("`([^`]+)`")
)

// parseWants extracts the backquoted patterns of a want comment, if the
// line carries one.
func parseWants(t *testing.T, file string, lineNo int, line string) []*wantPattern {
	m := wantComment.FindStringSubmatch(line)
	if m == nil {
		return nil
	}
	chunks := wantChunk.FindAllStringSubmatch(m[1], -1)
	if len(chunks) == 0 {
		t.Fatalf("%s:%d: want comment with no backquoted pattern", filepath.Base(file), lineNo)
	}
	pats := make([]*wantPattern, 0, len(chunks))
	for _, c := range chunks {
		re, err := regexp.Compile(c[1])
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", filepath.Base(file), lineNo, c[1], err)
		}
		pats = append(pats, &wantPattern{re: re})
	}
	return pats
}

// Clean asserts the analyzer reports nothing on an already-loaded
// package — used by the self-test that runs the suite over the real
// module tree.
func Clean(t *testing.T, a *lint.Analyzer, pkg *lint.Package) {
	t.Helper()
	diags, err := lint.Run(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s", fmt.Sprint(d.Pos), d.Message)
	}
}
