package lint

import (
	"go/ast"
	"strings"
)

// ShardSafety is parsafety's stricter dialect for the sharded
// statevector (internal/qsim/shard, DESIGN.md §13, §14.3): a
// shard-parallel closure may write only its assigned chunk — or the
// paired `s1 = s0|bit` chunk inside a cross-shard butterfly, which the
// derived-index growth pass already treats as a partition index.
// Compared to parsafety it:
//
//   - drops the integer-steering exemption: handing the whole chunk
//     table to a callee alongside a partition index is exactly the
//     cross-chunk-write bug class this analyzer exists to catch;
//   - flags writes to package-level state regardless of indexing —
//     no partition of a global escapes the race;
//   - consults the v3 write-target summaries, so a callee that stores
//     to package-level state one call deep is rejected at the call.
var ShardSafety = &Analyzer{
	Name:   "shardsafety",
	Doc:    "prove shard-parallel closures write only their assigned (or butterfly-paired) chunk",
	Design: "§14.3",
	Run:    runShardSafety,
}

const shardSafetyRule = "shard closures may only write their assigned chunk (or the butterfly-paired s|bit chunk)"

func runShardSafety(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") || !strings.HasSuffix(pass.Pkg.Path(), "/shard") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					newPartitionScope(pass, lit, "go statement", shardSafetyRule, true).walk()
				}
			case *ast.CallExpr:
				name, ok := parExecutorCall(pass, n)
				if !ok {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						newPartitionScope(pass, lit, "par."+name, shardSafetyRule, true).walk()
					}
				}
			}
			return true
		})
	}
	return nil
}
