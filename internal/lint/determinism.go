package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismAllowed lists the packages exempt from the determinism
// rules: the two sanctioned seams. internal/rng is the only place
// math/rand streams may be constructed; internal/wallclock is the only
// place host time may be read.
var DeterminismAllowed = map[string]bool{
	"qtenon/internal/rng":       true,
	"qtenon/internal/wallclock": true,
}

// forbiddenTimeFuncs are the wall-clock reads that break run
// reproducibility. time.Duration arithmetic and constants stay legal —
// only observing the host clock is forbidden.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// Determinism enforces the reproducible-run invariant: golden RunResults
// must be bit-for-bit identical across hosts, runs and GOMAXPROCS
// settings (DESIGN.md §9.1). Three sources of hidden nondeterminism are
// forbidden in every qtenon package outside the sanctioned seams:
//
//  1. wall-clock reads (time.Now/Since/Until) — use sim.Engine's virtual
//     clock, or internal/wallclock in operational tooling;
//  2. math/rand and math/rand/v2 package-level functions, including
//     rand.New/rand.NewSource — every stream must come from
//     internal/rng so it is explicitly seeded;
//  3. order-sensitive iteration over maps — iterate a sorted key slice,
//     or keep the loop body order-insensitive (integer accumulation, map
//     inserts/deletes, or collect-then-sort).
var Determinism = &Analyzer{
	Name:   "determinism",
	Design: "§9",
	Doc:    "forbid wall-clock reads, unseeded global RNG streams, and order-sensitive map iteration",
	Run:    runDeterminism,
}

func runDeterminism(pass *Pass) error {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, "qtenon") || DeterminismAllowed[path] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	pkg, name, ok := pass.PkgFunc(call)
	if !ok {
		return
	}
	switch pkg {
	case "time":
		if forbiddenTimeFuncs[name] {
			pass.Reportf(call.Pos(),
				"time.%s reads the host clock and breaks run reproducibility; use the sim.Engine virtual clock, or qtenon/internal/wallclock in operational tooling", name)
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(),
			"rand.%s constructs or draws from a stream outside the sanctioned seam; obtain seeded streams from qtenon/internal/rng", name)
	}
}

// checkMapRange flags `for … range m` over a map unless every statement
// in the body is order-insensitive. The analyzer understands the
// collect-then-sort idiom: appending to a slice that is sorted later in
// the same function is order-insensitive.
func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	enclosing := enclosingFuncBody(pass, file, rs)
	if bad := orderSensitiveStmt(pass, rs, enclosing, rs.Body); bad != nil {
		pass.Reportf(bad.Pos(),
			"map iteration order is random: this statement makes the loop's effect depend on it; iterate sorted keys, or keep the body order-insensitive (integer accumulation, map insert/delete, collect-then-sort)")
	}
}

// enclosingFuncBody returns the body of the innermost function enclosing
// n (declaration or literal), or nil.
func enclosingFuncBody(pass *Pass, file *ast.File, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(m ast.Node) bool {
		// Preorder visits outer functions before nested ones, so the last
		// containing body recorded is the innermost.
		switch f := m.(type) {
		case *ast.FuncDecl:
			if f.Body != nil && f.Body.Pos() <= n.Pos() && n.End() <= f.Body.End() {
				body = f.Body
			}
		case *ast.FuncLit:
			if f.Body.Pos() <= n.Pos() && n.End() <= f.Body.End() {
				body = f.Body
			}
		}
		return true
	})
	return body
}

// orderSensitiveStmt returns the first statement in the map-range body
// whose effect depends on iteration order, or nil if the whole body is
// order-insensitive.
//
// Order-insensitive forms:
//   - declarations of, and assignments to, variables scoped inside the
//     loop body (per-iteration temporaries);
//   - m[k] = v map-index stores and delete(m, k);
//   - integer-typed compound assignment and ++/-- (commutative exact
//     accumulation; float/complex/string accumulation is order-sensitive
//     because it is non-associative or concatenating);
//   - x = append(x, …) when x is sorted later in the enclosing function
//     (collect-then-sort);
//   - control flow (if/switch/for/block/continue/break) whose nested
//     statements are themselves order-insensitive;
//   - returns that do not mention the iteration variables (uniform
//     early exit).
func orderSensitiveStmt(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt, body *ast.BlockStmt) ast.Stmt {
	var walk func(stmts []ast.Stmt) ast.Stmt
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	declaredInBody := func(id *ast.Ident) bool {
		obj := pass.ObjectOf(id)
		return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
	}
	walk = func(stmts []ast.Stmt) ast.Stmt {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.DeclStmt, *ast.EmptyStmt:
			case *ast.BranchStmt:
				// continue/break/goto: uniform control flow.
			case *ast.ReturnStmt:
				if mentionsObjects(pass, s, loopVars) {
					return s
				}
			case *ast.IncDecStmt:
				if !isIntExpr(pass, s.X) {
					return s
				}
			case *ast.AssignStmt:
				if bad := orderSensitiveAssign(pass, rs, enclosing, s, declaredInBody); bad {
					return s
				}
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return s
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
					if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
						continue
					}
				}
				return s
			case *ast.IfStmt:
				if bad := walkIf(pass, rs, enclosing, s, walk); bad != nil {
					return bad
				}
			case *ast.BlockStmt:
				if bad := walk(s.List); bad != nil {
					return bad
				}
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if bad := walk(c.(*ast.CaseClause).Body); bad != nil {
						return bad
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if bad := walk(c.(*ast.CaseClause).Body); bad != nil {
						return bad
					}
				}
			case *ast.ForStmt:
				if bad := walk(s.Body.List); bad != nil {
					return bad
				}
			case *ast.RangeStmt:
				if bad := walk(s.Body.List); bad != nil {
					return bad
				}
			default:
				return s
			}
		}
		return nil
	}
	return walk(body.List)
}

func walkIf(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt, s *ast.IfStmt, walk func([]ast.Stmt) ast.Stmt) ast.Stmt {
	if bad := walk(s.Body.List); bad != nil {
		return bad
	}
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		return walk(e.List)
	case *ast.IfStmt:
		return walkIf(pass, rs, enclosing, e, walk)
	}
	return nil
}

// orderSensitiveAssign classifies one assignment inside a map-range body.
func orderSensitiveAssign(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt, s *ast.AssignStmt, declaredInBody func(*ast.Ident) bool) bool {
	// Short declarations introduce per-iteration temporaries: safe.
	if s.Tok == token.DEFINE {
		return false
	}
	// Compound assignment: exact (integer) accumulation commutes.
	if s.Tok != token.ASSIGN {
		return !isIntExpr(pass, s.Lhs[0])
	}
	for i, lhs := range s.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" || declaredInBody(l) {
				continue
			}
			// x = append(x, …) collected for a later sort?
			if i < len(s.Rhs) && isCollectThenSort(pass, rs, enclosing, l, s.Rhs[i]) {
				continue
			}
			return true
		case *ast.IndexExpr:
			// m[k] = v: map stores commute across distinct keys.
			if t := pass.TypeOf(l.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					continue
				}
			}
			return true
		default:
			return true
		}
	}
	return false
}

// isCollectThenSort reports whether `lhs = append(lhs, …)` feeds a slice
// that a sort call consumes after the range loop in the same function.
func isCollectThenSort(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt, lhs *ast.Ident, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || pass.ObjectOf(first) != pass.ObjectOf(lhs) {
		return false
	}
	if enclosing == nil {
		return false
	}
	obj := pass.ObjectOf(lhs)
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() < rs.End() {
			return !sorted
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pass.PkgFunc(c)
		if !ok {
			return true
		}
		isSort := pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range c.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				sorted = true
			}
			// sort.Slice(x, func…) style: x may appear under & or slice.
			if id, ok := ast.Unparen(sliceBase(arg)).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// mentionsObjects reports whether any identifier under n denotes one of
// the given objects.
func mentionsObjects(pass *Pass, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isIntExpr reports whether e has integer type (signed or unsigned).
func isIntExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
