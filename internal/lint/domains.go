package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Unit-domain inference for the unitflow analyzer (DESIGN.md §10). The
// simulation treats sim.Time as picoseconds and derives it from cycle
// counts only through sim.Clock; a raw int64 carries no unit, so the
// analyzer reconstructs one from how the value is produced and named.
//
// The lattice is flat with a conflict top:
//
//	Unknown  <  {Cycles, Hz, Picoseconds}  <  conflict
//
// Conflicting evidence collapses to Unknown at the accessors — the
// analyzer only acts on uncontested domains, trading recall for zero
// false positives on genuinely polymorphic helpers.

// Domain classifies what unit an integer (or float) value carries.
type Domain uint8

const (
	DomainUnknown Domain = iota
	DomainCycles
	DomainHz
	DomainPicoseconds
	domainConflict // conflicting evidence; surfaces as Unknown
)

func (d Domain) String() string {
	switch d {
	case DomainCycles:
		return "cycles"
	case DomainHz:
		return "Hz"
	case DomainPicoseconds:
		return "picoseconds"
	default:
		return "unknown"
	}
}

// concrete collapses conflict to Unknown; analyzers act only on
// uncontested evidence.
func (d Domain) concrete() Domain {
	if d == domainConflict {
		return DomainUnknown
	}
	return d
}

// domainJoin is the lattice join.
func domainJoin(a, b Domain) Domain {
	switch {
	case a == b:
		return a
	case a == DomainUnknown:
		return b
	case b == DomainUnknown:
		return a
	default:
		return domainConflict
	}
}

// domainOfName is the naming-convention heuristic, the weakest evidence
// tier. It keys on the repository's documented vocabulary (DESIGN.md
// §2): "cycle" for clock ticks, "hz"/"freq" for rates. Bare "ps" is
// accepted, but a "ps" suffix is not — "beats", "ops" and "steps" are
// counts, not picoseconds.
func domainOfName(name string) Domain {
	n := strings.ToLower(name)
	switch {
	case strings.Contains(n, "cycle"):
		return DomainCycles
	case n == "hz" || strings.HasSuffix(n, "hz") || strings.Contains(n, "freq"):
		return DomainHz
	case n == "ps" || strings.Contains(n, "picosecond"):
		return DomainPicoseconds
	}
	return DomainUnknown
}

// isSimTime reports whether t is (an alias of) qtenon's sim.Time.
func isSimTime(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == simPkgPath
}

// isNumericBasic reports whether t is a basic integer or float type —
// the carriers a unit domain attaches to. sim.Time itself is excluded:
// it already has a type-level unit.
func isNumericBasic(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	if _, named := t.(*types.Named); named {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsFloat) != 0
}

// clockMethod returns the sim.Clock method a call invokes, or "".
func clockMethod(info *types.Info, call *ast.CallExpr) string {
	f := calleeIn(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != simPkgPath {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Clock" {
		return ""
	}
	return f.Name()
}

// domainScope evaluates unit domains inside one function body.
type domainScope struct {
	prog *Program
	pkg  *Package
	// vars carries domains for parameters (seeded from the summary) and
	// locals (inferred from their assignments).
	vars map[types.Object]Domain
}

func newDomainScope(prog *Program, pkg *Package) *domainScope {
	return &domainScope{prog: prog, pkg: pkg, vars: map[types.Object]Domain{}}
}

// seedParams maps fi's parameter objects to the domains already in sum.
// A nil sum (curated-inert function) seeds nothing.
func (dc *domainScope) seedParams(fi *FuncInfo, sum *FuncSummary) {
	if sum == nil {
		return
	}
	idx := 0
	seed := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, name := range f.Names {
				if obj := fi.Pkg.Info.Defs[name]; obj != nil {
					if idx < len(sum.paramDomain) {
						dc.vars[obj] = sum.paramDomain[idx]
					}
				}
				idx++
			}
		}
	}
	seed(fi.Decl.Recv)
	seed(fi.Decl.Type.Params)
}

// inferLocals scans assignments, giving locals the joined domain of
// their right-hand sides. Two passes let chains settle.
func (dc *domainScope) inferLocals(body *ast.BlockStmt) {
	info := dc.pkg.Info
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(body, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok || len(a.Lhs) != len(a.Rhs) {
				return true
			}
			for i, lhs := range a.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := objectIn(info, id)
				if obj == nil || !isNumericBasic(obj.Type()) {
					continue
				}
				if d := dc.exprDomain(a.Rhs[i]); d != DomainUnknown {
					dc.vars[obj] = domainJoin(dc.vars[obj], d)
				}
			}
			return true
		})
	}
}

// exprDomain computes the unit domain of a numeric expression. It may
// return domainConflict; callers wanting actionable evidence go through
// concrete().
func (dc *domainScope) exprDomain(e ast.Expr) Domain {
	if e == nil {
		return DomainUnknown
	}
	info := dc.pkg.Info
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := objectIn(info, x)
		if obj == nil {
			return DomainUnknown
		}
		if d, ok := dc.vars[obj]; ok && d != DomainUnknown {
			return d
		}
		if !isNumericBasic(obj.Type()) {
			return DomainUnknown
		}
		return domainOfName(obj.Name())
	case *ast.SelectorExpr:
		// A struct field's domain follows its name (e.g. cfg.HostHz).
		if obj := objectIn(info, x.Sel); obj != nil && isNumericBasic(obj.Type()) {
			return domainOfName(x.Sel.Name)
		}
		return DomainUnknown
	case *ast.CallExpr:
		return dc.callDomain(x)
	case *ast.BinaryExpr:
		return dc.binaryDomain(x)
	case *ast.UnaryExpr:
		return dc.exprDomain(x.X)
	}
	return DomainUnknown
}

// callDomain handles the producer forms: conversions of sim.Time to a
// basic numeric (→ picoseconds), sim.Clock accessors, and summarized
// callees with an inferred result domain or a "…Cycles" name.
func (dc *domainScope) callDomain(call *ast.CallExpr) Domain {
	info := dc.pkg.Info
	if isConversion(info, call) && len(call.Args) == 1 {
		if tv, ok := info.Types[call]; ok && isNumericBasic(tv.Type) {
			if isSimTime(typeOfIn(info, call.Args[0])) {
				return DomainPicoseconds
			}
		}
		return dc.exprDomain(call.Args[0])
	}
	switch clockMethod(info, call) {
	case "CyclesIn", "CyclesCeil":
		return DomainCycles
	case "Hz":
		return DomainHz
	}
	callee := calleeIn(info, call)
	if callee == nil {
		return DomainUnknown
	}
	// Domains attach to raw numerics only: a call returning sim.Time
	// (e.g. Clock.Cycles) already carries its unit in the type.
	if tv, ok := info.Types[call]; ok && !isNumericBasic(tv.Type) {
		return DomainUnknown
	}
	if sum := dc.prog.Summary(callee); sum != nil {
		if d := sum.ResultDomain(); d != DomainUnknown {
			return d
		}
	}
	if strings.HasSuffix(callee.Name(), "Cycles") {
		return DomainCycles
	}
	return DomainUnknown
}

// binaryDomain: additive operators preserve a shared domain and
// propagate a single known side (adding a literal slack to a cycle
// count keeps it a cycle count); multiplying two known, different
// domains yields a product unit this lattice cannot name — conflict.
func (dc *domainScope) binaryDomain(b *ast.BinaryExpr) Domain {
	switch b.Op.String() {
	case "+", "-", "%":
		return domainJoin(dc.exprDomain(b.X), dc.exprDomain(b.Y))
	case "*", "/":
		dx, dy := dc.exprDomain(b.X).concrete(), dc.exprDomain(b.Y).concrete()
		switch {
		case dx == DomainUnknown:
			return dy
		case dy == DomainUnknown:
			return dx
		default:
			return domainConflict
		}
	}
	return DomainUnknown
}

func typeOfIn(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := objectIn(info, id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// summarizeDomains infers fi's parameter and result domains from four
// evidence tiers: how callees consume the parameters, which conversions
// they feed, how they are named, and what the function returns. Joins
// are monotone, so the enclosing fixpoint terminates. Reports growth.
func summarizeDomains(p *Program, fi *FuncInfo, sum *FuncSummary) bool {
	if fi.Pkg.Path == simPkgPath {
		// The Clock seam converts counts to Time by design; inferring
		// from its bodies would mislabel Cycles' parameter as
		// picoseconds. Its contracts are hard-coded in clockMethod and
		// the unitflow rules instead.
		return false
	}
	info := fi.Pkg.Info
	// Receiver-first parameter objects, mirroring the bitset indexing.
	// ordered keeps declaration order for deterministic iteration.
	paramIdx := map[types.Object]int{}
	var ordered []types.Object
	idx := 0
	index := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					paramIdx[obj] = idx
					ordered = append(ordered, obj)
				}
				idx++
			}
		}
	}
	index(fi.Decl.Recv)
	index(fi.Decl.Type.Params)

	changed := false
	joinParam := func(i int, d Domain) {
		if d == DomainUnknown || i < 0 || i >= len(sum.paramDomain) {
			return
		}
		if nd := domainJoin(sum.paramDomain[i], d); nd != sum.paramDomain[i] {
			sum.paramDomain[i] = nd
			changed = true
		}
	}
	// joinUsage records usage evidence (tiers 1 and 2) for a parameter —
	// but only when the parameter's name is unit-silent. A declared name
	// like busCycles outranks how the body consumes the value; otherwise
	// the very bug unitflow exists to catch (feeding a cycle count into
	// sim.Time) would count as evidence the parameter holds picoseconds,
	// conflict with the name, and suppress its own diagnostic.
	joinUsage := func(e ast.Expr, d Domain) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := objectIn(info, id)
		if obj == nil || !isNumericBasic(obj.Type()) {
			return
		}
		i, ok := paramIdx[obj]
		if !ok || domainOfName(obj.Name()) != DomainUnknown {
			return
		}
		joinParam(i, d)
	}

	// Tier 3 first (cheapest): parameter names.
	for _, obj := range ordered {
		if isNumericBasic(obj.Type()) {
			joinParam(paramIdx[obj], domainOfName(obj.Name()))
		}
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Tier 2: a parameter fed straight into sim.Time(…) is raw
		// picoseconds; fed into Clock.Cycles/CyclesFloat it is a count.
		if isConversion(info, call) && len(call.Args) == 1 {
			if isSimTime(typeOfIn(info, call)) {
				joinUsage(call.Args[0], DomainPicoseconds)
			}
			return true
		}
		switch clockMethod(info, call) {
		case "Cycles", "CyclesFloat":
			if len(call.Args) == 1 {
				joinUsage(call.Args[0], DomainCycles)
			}
			return true
		}
		// Tier 1: the callee's own summary names the unit it expects.
		callee := calleeIn(info, call)
		if callee == nil {
			return true
		}
		csum := p.Summary(callee)
		if csum == nil {
			return true
		}
		for ai, arg := range call.Args {
			joinUsage(arg, csum.ArgDomain(ai))
		}
		return true
	})

	// Tier 4: result domain, from returns and the "…Cycles" suffix.
	sig := fi.Func.Type().(*types.Signature)
	if sig.Results().Len() > 0 && isNumericBasic(sig.Results().At(0).Type()) {
		rd := sum.resultDomain
		if strings.HasSuffix(fi.Func.Name(), "Cycles") {
			rd = domainJoin(rd, DomainCycles)
		}
		dc := newDomainScope(p, fi.Pkg)
		dc.seedParams(fi, sum)
		dc.inferLocals(fi.Decl.Body)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // literals return from their own frame
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) == 0 {
				return true
			}
			if d := dc.exprDomain(ret.Results[0]); d != DomainUnknown {
				rd = domainJoin(rd, d)
			}
			return true
		})
		if rd != sum.resultDomain {
			sum.resultDomain = rd
			changed = true
		}
	}
	return changed
}
