package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"qtenon/internal/lint"
)

// sectionRef matches a DESIGN.md invariant citation like "§9.4" or
// "§10"; every live //lint:ignore reason must carry one, tying each
// suppression to the documented invariant it excepts.
var sectionRef = regexp.MustCompile(`§(\d+)(\.\d+)?`)

// TestDirectiveReasonsCiteDesign walks every non-fixture .go file in
// the module and asserts each //lint:ignore directive's reason cites a
// DESIGN.md section that actually exists. A suppression whose cited
// section disappears in a DESIGN.md reorganisation — or that never
// cited one — fails here, which is what keeps the suppression set from
// going stale.
func TestDirectiveReasonsCiteDesign(t *testing.T) {
	moduleDir, err := lint.ModuleDir(".")
	if err != nil {
		t.Fatal(err)
	}
	design, err := os.ReadFile(filepath.Join(moduleDir, "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	sectionExists := func(major, minor string) bool {
		if minor != "" {
			// Subsections appear literally, e.g. "§9.4".
			return strings.Contains(string(design), "§"+major+minor)
		}
		// Top-level sections are markdown headers, e.g. "## 9.".
		return strings.Contains(string(design), "\n## "+major+".")
	}

	// Every live directive must name real analyzers: a typo'd name
	// suppresses nothing and rots silently, so the audit catches it.
	validNames := map[string]bool{"lintdirective": true}
	for _, a := range lint.All() {
		validNames[a.Name] = true
	}

	found := 0
	visitedGoFiles := map[string]int{} // top-level dir → .go files walked
	err = filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Fixtures deliberately exercise malformed directives; the
			// audit governs only the live tree.
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		if rel, err := filepath.Rel(moduleDir, path); err == nil {
			top, _, _ := strings.Cut(rel, string(filepath.Separator))
			visitedGoFiles[top]++
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			text := strings.TrimSpace(line)
			if !strings.HasPrefix(text, "//lint:ignore") {
				continue
			}
			found++
			rel, _ := filepath.Rel(moduleDir, path)
			where := fmt.Sprintf("%s:%d", rel, i+1)

			// Directive shape: //lint:ignore <analyzers> <reason>
			fields := strings.SplitN(strings.TrimPrefix(text, "//lint:ignore"), " ", 3)
			if len(fields) < 3 || strings.TrimSpace(fields[2]) == "" {
				t.Errorf("%s: directive has no reason", where)
				continue
			}
			names := strings.TrimSpace(fields[1])
			for _, n := range strings.Split(names, ",") {
				if !validNames[strings.TrimSpace(n)] {
					t.Errorf("%s: directive names analyzer %q, which is not in the suite — the suppression is inert", where, strings.TrimSpace(n))
				}
			}

			reason := fields[2]
			m := sectionRef.FindStringSubmatch(reason)
			if m == nil {
				t.Errorf("%s: reason %q does not cite a DESIGN.md invariant section (§N or §N.M)", where, reason)
				continue
			}
			if !sectionExists(m[1], m[2]) {
				t.Errorf("%s: reason cites %s, which does not exist in DESIGN.md", where, m[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if found == 0 {
		t.Fatal("walked the module without finding any //lint:ignore directive; the known suppression in internal/qsim/fusion.go should exist — did the audit's file walk break?")
	}

	// Coverage guard: the audit is only worth anything if the walk
	// actually reaches the whole module. A refactor that narrows the
	// walk to internal/ would leave cmd/ and examples/ ungoverned.
	for _, top := range []string{"cmd", "examples", "internal"} {
		if visitedGoFiles[top] == 0 {
			t.Errorf("audit walk visited no .go files under %s/ — the directive audit no longer covers the full module", top)
		}
	}
}
