package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// partitionScope carries the index-partition reasoning shared by
// parsafety and shardsafety: given one concurrently-executed closure, it
// tracks which identifiers are partition indices (the closure's int
// parameters plus closure-locals computed from them), walks write
// targets to their roots, and decides whether each write is confined to
// the closure's partition.
//
// Two dialects run on top of the same machinery:
//
//   - parsafety (strict=false): the module-wide rule for internal/par
//     fan-out, with the documented integer-steering exemption for
//     `set(out, i, v)`-shaped callees.
//   - shardsafety (strict=true): the internal/qsim/shard rule. The
//     steering exemption is dropped (a shard closure handing a whole
//     captured chunk table to a callee is exactly the bug class), writes
//     to package-level state are flagged regardless of indexing, and
//     callee write-target summaries (WritesGlobal) are consulted so a
//     global store can't hide one call deep.
//
// The butterfly pairing `s1 := s0 | bit` needs no special case: s1 is a
// closure-local integer computed from the derived s0, so the derived-set
// growth pass makes it a partition index too.
type partitionScope struct {
	pass    *Pass
	lit     *ast.FuncLit
	where   string // launch site, for diagnostics ("par.For", "go statement")
	rule    string // trailing clause appended to every diagnostic
	strict  bool
	derived map[types.Object]bool
	seen    map[token.Pos]bool
}

func newPartitionScope(pass *Pass, lit *ast.FuncLit, where, rule string, strict bool) *partitionScope {
	sc := &partitionScope{
		pass:    pass,
		lit:     lit,
		where:   where,
		rule:    rule,
		strict:  strict,
		derived: map[types.Object]bool{},
		seen:    map[token.Pos]bool{},
	}
	// derived starts as the closure's int parameters (the partition
	// indices) and grows with closure-locals computed from them — the
	// chunk idiom `for k := lo; k < hi; k++ { out[k] = … }` makes k a
	// partition index too.
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, name := range f.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					sc.derived[obj] = true
				}
			}
		}
	}
	// Grow the derived set: a closure-local integer assigned from an
	// expression mentioning a derived index is itself a partition index.
	// Two passes settle chains (k := lo; j := k).
	for pass2 := 0; pass2 < 2; pass2++ {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range a.Lhs {
				if len(a.Rhs) != len(a.Lhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil || !sc.isLitLocal(obj) || sc.derived[obj] {
					continue
				}
				if b, ok := obj.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
					continue
				}
				if sc.mentionsDerived(a.Rhs[i]) {
					sc.derived[obj] = true
				}
			}
			return true
		})
	}
	return sc
}

func (sc *partitionScope) isLitLocal(obj types.Object) bool {
	return obj != nil && obj.Pos() >= sc.lit.Pos() && obj.Pos() <= sc.lit.End()
}

// mentionsDerived reports whether e references any partition index.
func (sc *partitionScope) mentionsDerived(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := sc.pass.ObjectOf(id); obj != nil && sc.derived[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// freeRoot walks a write target to its base object and reports it if
// that base is captured from outside the closure.
func (sc *partitionScope) freeRoot(e ast.Expr) (types.Object, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := sc.pass.ObjectOf(x)
			if obj == nil || sc.isLitLocal(obj) {
				return nil, false
			}
			return obj, true
		case *ast.SelectorExpr:
			// A qualified identifier (pkg.Var) roots at the var; a field
			// access roots at its receiver chain.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := sc.pass.ObjectOf(id).(*types.PkgName); isPkg {
					obj := sc.pass.ObjectOf(x.Sel)
					if obj == nil || sc.isLitLocal(obj) {
						return nil, false
					}
					return obj, true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// anyIndexDerived reports whether some index step between the write
// target and its root mentions a partition index.
func (sc *partitionScope) anyIndexDerived(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			if sc.mentionsDerived(x.Index) {
				return true
			}
			e = x.X
		case *ast.SliceExpr:
			if sc.mentionsDerived(x.Low) || sc.mentionsDerived(x.High) || sc.mentionsDerived(x.Max) {
				return true
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// isMapStore reports whether the innermost index step of the write
// target indexes a map — always a race under concurrent writers,
// partition index or not.
func (sc *partitionScope) isMapStore(e ast.Expr) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := sc.pass.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

func (sc *partitionScope) reportf(pos token.Pos, format string, args ...any) {
	if sc.seen[pos] {
		return
	}
	sc.seen[pos] = true
	sc.pass.Reportf(pos, "%s closure %s; %s", sc.where, fmt.Sprintf(format, args...), sc.rule)
}

func (sc *partitionScope) checkWrite(target ast.Expr, isDefine bool) {
	switch ast.Unparen(target).(type) {
	case *ast.Ident:
		if isDefine {
			return
		}
		obj, free := sc.freeRoot(target)
		if free {
			sc.reportf(target.Pos(), "writes captured variable %q", obj.Name())
		}
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr, *ast.SliceExpr:
		obj, free := sc.freeRoot(target)
		if !free {
			return
		}
		if sc.strict {
			if v, ok := obj.(*types.Var); ok && isPkgLevelVar(v) {
				sc.reportf(target.Pos(), "writes package-level %q (escapes every chunk partition)", obj.Name())
				return
			}
		}
		if sc.isMapStore(target) {
			sc.reportf(target.Pos(), "writes captured map %q (concurrent map writes race even when keys are partitioned)", obj.Name())
			return
		}
		if !sc.anyIndexDerived(target) {
			sc.reportf(target.Pos(), "writes through captured %q without a partition index", obj.Name())
		}
	}
}

// checkCall is the interprocedural leg: a captured value handed to a
// callee that mutates it is a write from inside the closure. In the
// parsafety dialect the call is exempt when the argument itself is
// narrowed to a partition (fill(buf[lo:hi])) or the callee is steered by
// a partition index through an integer argument (set(out, i, v)); the
// shard dialect keeps only the first exemption and additionally rejects
// callees whose write-target summary shows a package-level store.
func (sc *partitionScope) checkCall(call *ast.CallExpr) {
	callee := sc.pass.CalleeFunc(call)
	if callee == nil {
		return
	}
	sum := sc.pass.Prog.Summary(callee)
	if sum == nil {
		return
	}
	if sc.strict && sum.WritesGlobal() {
		sc.reportf(call.Pos(), "calls %s, whose write-target summary shows a package-level store (%s)", callee.Name(), sum.GlobalWriteSite())
	}
	intArgSteered := func() bool {
		if sc.strict {
			return false
		}
		for _, arg := range call.Args {
			t := sc.pass.TypeOf(arg)
			if t == nil {
				continue
			}
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 && sc.mentionsDerived(arg) {
				return true
			}
		}
		return false
	}
	flagArg := func(e ast.Expr, what string) {
		obj, free := sc.freeRoot(e)
		if !free {
			return
		}
		if sc.anyIndexDerived(e) || intArgSteered() {
			return
		}
		sc.reportf(e.Pos(), "passes captured %q to %s, which its summary shows %s", obj.Name(), callee.Name(), what)
	}
	if sum.RecvMutated() {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			flagArg(sel.X, "mutates its receiver")
		}
	}
	for i, arg := range call.Args {
		if !sum.ArgMutated(i) {
			continue
		}
		t := sc.pass.TypeOf(arg)
		if t != nil && !typeAliases(t, 0) {
			continue // value copy; the callee mutates its own copy
		}
		flagArg(arg, "writes through that parameter")
	}
}

// walk runs the write checks over the closure body.
func (sc *partitionScope) walk() {
	ast.Inspect(sc.lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sc.checkWrite(lhs, n.Tok == token.DEFINE)
			}
		case *ast.IncDecStmt:
			sc.checkWrite(n.X, false)
		case *ast.CallExpr:
			sc.checkCall(n)
		}
		return true
	})
}
