package lint_test

import (
	"os"
	"strings"
	"testing"

	"qtenon/internal/lint"
	"qtenon/internal/lint/linttest"
)

func TestDeterminismFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good", "outside"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.Determinism, "testdata/determinism/"+dir) })
	}
}

func TestScratchArenaFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.ScratchArena, "testdata/scratcharena/"+dir) })
	}
}

func TestMetricsDisciplineFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.MetricsDiscipline, "testdata/metricsdiscipline/"+dir) })
	}
}

func TestFloatCompareFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.FloatCompare, "testdata/floatcompare/"+dir) })
	}
}

func TestEventRetentionFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.EventRetention, "testdata/eventretention/"+dir) })
	}
}

func TestParSafetyFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.ParSafety, "testdata/parsafety/"+dir) })
	}
	t.Run("multipkg", func(t *testing.T) { linttest.RunMulti(t, lint.ParSafety, "testdata/parsafety/multipkg") })
}

func TestUnitFlowFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.UnitFlow, "testdata/unitflow/"+dir) })
	}
	t.Run("multipkg", func(t *testing.T) { linttest.RunMulti(t, lint.UnitFlow, "testdata/unitflow/multipkg") })
}

func TestDeepScratchFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.DeepScratch, "testdata/deepscratch/"+dir) })
	}
	t.Run("multipkg", func(t *testing.T) { linttest.RunMulti(t, lint.DeepScratch, "testdata/deepscratch/multipkg") })
}

func TestHotPathFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.HotPath, "testdata/hotpath/"+dir) })
	}
	t.Run("multipkg", func(t *testing.T) { linttest.RunMulti(t, lint.HotPath, "testdata/hotpath/multipkg") })
}

func TestBitExactFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.BitExact, "testdata/bitexact/"+dir) })
	}
}

func TestShardSafetyFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.ShardSafety, "testdata/shardsafety/"+dir) })
	}
}

func TestRoutePurityFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good", "engine"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.RoutePurity, "testdata/routepurity/"+dir) })
	}
}

func TestGoroutineLifecycleFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.GoroutineLifecycle, "testdata/goroutinelifecycle/"+dir) })
	}
	t.Run("multipkg", func(t *testing.T) {
		linttest.RunMulti(t, lint.GoroutineLifecycle, "testdata/goroutinelifecycle/multipkg")
	})
}

func TestChanDisciplineFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.ChanDiscipline, "testdata/chandiscipline/"+dir) })
	}
	t.Run("multipkg", func(t *testing.T) { linttest.RunMulti(t, lint.ChanDiscipline, "testdata/chandiscipline/multipkg") })
}

func TestLockOrderFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.LockOrder, "testdata/lockorder/"+dir) })
	}
	t.Run("multipkg", func(t *testing.T) { linttest.RunMulti(t, lint.LockOrder, "testdata/lockorder/multipkg") })
}

func TestCtxFlowFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "good"} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, lint.CtxFlow, "testdata/ctxflow/"+dir) })
	}
	t.Run("multipkg", func(t *testing.T) { linttest.RunMulti(t, lint.CtxFlow, "testdata/ctxflow/multipkg") })
}

// TestDirectives drives the //lint:ignore machinery programmatically:
// the malformed-directive diagnostic lands on the directive's own line,
// where a want comment cannot sit.
func TestDirectives(t *testing.T) {
	const fixture = "testdata/directives/directives.go"
	pkg := linttest.Load(t, "testdata/directives")
	diags, err := lint.Run(pkg, []*lint.Analyzer{lint.FloatCompare})
	if err != nil {
		t.Fatal(err)
	}

	var floatDiags, directiveDiags int
	for _, d := range diags {
		switch d.Analyzer {
		case "floatcompare":
			floatDiags++
		case "lintdirective":
			directiveDiags++
			if !strings.Contains(d.Message, "missing reason") {
				t.Errorf("malformed-directive diagnostic should name the defect, got %q", d.Message)
			}
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d.Message)
		}
	}
	// wrongName and missingReason each leak one float comparison; the
	// reason-less directive is itself reported.
	if floatDiags != 2 || directiveDiags != 1 {
		t.Errorf("got %d floatcompare + %d lintdirective diagnostics, want 2 + 1:\n%v", floatDiags, directiveDiags, diags)
	}

	// The well-formed directive must silence the comparison on the line
	// below it.
	suppressedLine := lineContaining(t, fixture, "calibrated against golden fixtures") + 1
	for _, d := range diags {
		if d.Pos.Line == suppressedLine {
			t.Errorf("line %d is governed by a well-formed //lint:ignore but was reported: %s", suppressedLine, d.Message)
		}
	}
}

// lineContaining returns the 1-based line of the first occurrence of
// substr in file.
func lineContaining(t *testing.T, file, substr string) int {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, substr) {
			return i + 1
		}
	}
	t.Fatalf("%s: no line contains %q", file, substr)
	return 0
}

// TestSuiteCleanOnModule runs the full suite over the real module tree
// — the same gate CI applies with `go run ./cmd/qtenon-lint ./...`.
// Reverting any of the determinism/scratch sweeps makes this fail.
func TestSuiteCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	moduleDir, err := lint.ModuleDir(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadPackages(moduleDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern ./... should cover the module", len(pkgs))
	}
	// One program across all packages, exactly as the driver runs — the
	// interprocedural analyzers see whole-module summaries.
	diags, err := lint.RunProgram(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
