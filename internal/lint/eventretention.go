package lint

import (
	"go/ast"
	"go/types"
)

const simPkgPath = "qtenon/internal/sim"

// schedulingMethods are the sim.Engine entry points that enqueue a
// closure for later execution.
var schedulingMethods = map[string]bool{
	"Schedule": true, "At": true,
}

// EventRetention checks closures handed to sim.Engine's Schedule/At
// (DESIGN.md §9.5). A scheduled closure runs long after the scheduling
// frame has moved on, so it must not capture:
//
//   - loop variables of an enclosing for/range statement — the engine
//     pins popped-slot clearing precisely so executed events retain
//     nothing; a loop-variable capture retains per-iteration state for
//     the queue's lifetime and, for map ranges, bakes random iteration
//     order into the event's payload. Bind the value through a
//     parameter or a dedicated local instead.
//   - scratch-backed slices from the Append*/*Reuse arenas — the event
//     fires after the arena has been recycled, so the closure reads
//     whatever evaluation overwrote it (the leak class the engine's
//     finalizer test pins).
var EventRetention = &Analyzer{
	Name:   "eventretention",
	Design: "§7, §9",
	Doc:    "flag scheduled sim.Engine closures that capture loop variables or scratch",
	Run:    runEventRetention,
}

func runEventRetention(pass *Pass) error {
	for _, f := range pass.Files {
		// Map every loop-variable object to its loop statement.
		loopVars := collectLoopVars(pass, f)
		scratchVars := collectScratchVars(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSchedulingCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				checkScheduledClosure(pass, lit, loopVars, scratchVars)
			}
			return true
		})
	}
	return nil
}

// isSchedulingCall reports whether call invokes
// (*sim.Engine).Schedule or (*sim.Engine).At.
func isSchedulingCall(pass *Pass, call *ast.CallExpr) bool {
	f := pass.CalleeFunc(call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != simPkgPath || !schedulingMethods[f.Name()] {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Engine"
}

// collectLoopVars indexes objects declared as for/range loop variables.
func collectLoopVars(pass *Pass, f *ast.File) map[types.Object]ast.Node {
	vars := map[types.Object]ast.Node{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						vars[obj] = n
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							vars[obj] = n
						}
					}
				}
			}
		}
		return true
	})
	return vars
}

// collectScratchVars indexes variables bound to scratch-producer results
// with a recycled (non-fresh) destination — the same producer set the
// scratcharena analyzer tracks.
func collectScratchVars(pass *Pass, f *ast.File) map[types.Object]string {
	vars := map[types.Object]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, dstIdx, ok := scratchProducer(pass, call)
		if !ok || isNilOrFresh(pass, call.Args[dstIdx]) {
			return true
		}
		if len(assign.Lhs) > 0 {
			if id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.ObjectOf(id); obj != nil {
					vars[obj] = fn.Name()
				}
			}
		}
		return true
	})
	return vars
}

func checkScheduledClosure(pass *Pass, lit *ast.FuncLit, loopVars map[types.Object]ast.Node, scratchVars map[types.Object]string) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		// Only free variables: the object must be declared outside the
		// literal.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		if loop, isLoop := loopVars[obj]; isLoop {
			// The capture only retains if the loop encloses the closure
			// (capturing a loop var after its loop, via shadowing games, is
			// out of scope).
			if loop.Pos() <= lit.Pos() && lit.End() <= loop.End() {
				reported[obj] = true
				pass.Reportf(id.Pos(),
					"scheduled closure captures loop variable %q: the event outlives the iteration; bind the value through a local or parameter", id.Name)
			}
			return true
		}
		if producer, isScratch := scratchVars[obj]; isScratch {
			reported[obj] = true
			pass.Reportf(id.Pos(),
				"scheduled closure captures %q, a scratch-backed slice from %s: the arena is recycled before the event fires; copy the data or capture a fresh slice", id.Name, producer)
		}
		return true
	})
}
