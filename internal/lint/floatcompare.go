package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatCompareApproved names functions allowed to compare floats
// exactly: the tolerance helpers themselves and NaN/sentinel utilities.
// Everything else either goes through one of these or carries a
// //lint:ignore floatcompare directive with a reason.
var floatCompareApproved = map[string]bool{
	"ApproxEqual": true, "approxEqual": true,
	"AlmostEqual": true, "almostEqual": true,
	"WithinTol": true, "withinTol": true,
}

// FloatCompare flags == and != between floating-point or complex
// operands (DESIGN.md §9.4). Exact float equality is almost always a
// latent bug in simulation code — two mathematically equal quantities
// computed along different paths differ in the last ulp, and the
// comparison silently flips with gate-fusion order, GOMAXPROCS
// reduction shape, or compiler FMA choices. Compare against a tolerance
// (math.Abs(a-b) <= eps) or use an approved helper.
//
// The self-comparison NaN idiom (x != x), constant-only comparisons,
// and the bodies of approved tolerance helpers are exempt.
var FloatCompare = &Analyzer{
	Name:   "floatcompare",
	Design: "§9",
	Doc:    "flag ==/!= on floating-point or complex values outside tolerance helpers",
	Run:    runFloatCompare,
}

func runFloatCompare(pass *Pass) error {
	for _, f := range pass.Files {
		var funcStack []string
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				funcStack = append(funcStack, n.Name.Name)
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.BinaryExpr:
				checkFloatCompare(pass, n, funcStack)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

func checkFloatCompare(pass *Pass, be *ast.BinaryExpr, funcStack []string) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if len(funcStack) > 0 && floatCompareApproved[funcStack[len(funcStack)-1]] {
		return
	}
	xt, yt := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
	if !isFloatish(xt.Type) && !isFloatish(yt.Type) {
		return
	}
	// Both sides compile-time constants: the comparison is exact by
	// construction.
	if xt.Value != nil && yt.Value != nil {
		return
	}
	// x != x / x == x is the portable NaN test.
	if sameSimpleExpr(be.X, be.Y) {
		return
	}
	kind := "floating-point"
	if isComplexish(xt.Type) || isComplexish(yt.Type) {
		kind = "complex"
	}
	pass.Reportf(be.OpPos,
		"exact %s %s comparison: equality flips with evaluation order and fusion; compare math.Abs(a-b) against a tolerance, use an approved helper, or suppress with //lint:ignore and a reason", kind, be.Op)
}

func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isComplexish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsComplex != 0
}

// sameSimpleExpr reports whether two expressions are the identical
// identifier/selector/index chain.
func sameSimpleExpr(a, b ast.Expr) bool {
	sa, sb := exprString(a), exprString(b)
	return sa != "" && sa == sb
}
