package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RoutePurity proves method selection side-effect-free on globals
// (DESIGN.md §12, §14.4): route.Analyze/Select/SelectWidth and every
// engine constructor run before — and sometimes instead of — a
// simulation, so if selection consumed an RNG stream, read the wall
// clock, bumped a metrics counter, or wrote package-level state, merely
// *considering* an engine would perturb seeded reproducibility and the
// goldens. The proof rides the v3 write-target and seam summaries:
//
//   - in packages ending in /route: every function must have an empty
//     global-write and seam summary;
//   - in packages ending in /engine: every New* constructor likewise.
//
// Flagged transitively — a constructor calling a helper that calls
// metrics.Inc is rejected at the constructor, with the witness chain in
// the message.
var RoutePurity = &Analyzer{
	Name:   "routepurity",
	Doc:    "prove route selection and engine constructors side-effect-free on globals",
	Design: "§14.4",
	Run:    runRoutePurity,
}

func runRoutePurity(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	path := pass.Pkg.Path()
	isRoute := strings.HasSuffix(path, "/route")
	isEngine := strings.HasSuffix(path, "/engine")
	if !isRoute && !isEngine {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isEngine && !strings.HasPrefix(fd.Name.Name, "New") {
				continue // engine packages: constructors only
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sum := pass.Prog.Summary(obj)
			if sum == nil {
				continue
			}
			what := "selection path"
			if isEngine {
				what = "engine constructor"
			}
			if sum.WritesGlobal() {
				pass.Reportf(fd.Name.Pos(), "%s %s writes package-level state: %s", what, fd.Name.Name, sum.GlobalWriteSite())
			}
			if site := sum.SeamSite(); site != "" {
				pass.Reportf(fd.Name.Pos(), "%s %s reaches a global-effect seam: %s", what, fd.Name.Name, site)
			}
		}
	}
	return nil
}
