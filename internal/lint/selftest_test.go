package lint_test

import (
	"testing"

	"qtenon/internal/lint"
	"qtenon/internal/lint/linttest"
)

// TestAnalyzersFireOnViolations is the vacuity guard for the v3
// analyzers: each bad fixture must produce at least one diagnostic from
// the analyzer under test, with a real position inside the fixture. The
// want-comment harness alone cannot catch an analyzer whose scope check
// silently excludes the fixture package — every line without a want
// comment "passes", so a fully inert analyzer sails through Run. This
// test fails instead.
func TestAnalyzersFireOnViolations(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		fixture  string
		minDiags int
	}{
		{lint.HotPath, "testdata/hotpath/bad", 10},
		{lint.BitExact, "testdata/bitexact/bad", 4},
		{lint.ShardSafety, "testdata/shardsafety/bad", 4},
		{lint.RoutePurity, "testdata/routepurity/bad", 4},
		{lint.GoroutineLifecycle, "testdata/goroutinelifecycle/bad", 3},
		{lint.ChanDiscipline, "testdata/chandiscipline/bad", 5},
		{lint.LockOrder, "testdata/lockorder/bad", 2},
		{lint.CtxFlow, "testdata/ctxflow/bad", 4},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkg := linttest.Load(t, tc.fixture)
			diags, err := lint.Run(pkg, []*lint.Analyzer{tc.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) < tc.minDiags {
				t.Fatalf("analyzer %s produced %d diagnostics on its bad fixture, want >= %d — the analyzer has gone inert",
					tc.analyzer.Name, len(diags), tc.minDiags)
			}
			for _, d := range diags {
				if d.Analyzer != tc.analyzer.Name {
					t.Errorf("diagnostic attributed to %q, want %q: %s", d.Analyzer, tc.analyzer.Name, d.Message)
				}
				if !d.Pos.IsValid() || d.Pos.Line <= 0 || d.Pos.Filename == "" {
					t.Errorf("diagnostic without a usable position: %+v", d)
				}
				if d.Message == "" {
					t.Error("diagnostic with empty message")
				}
			}
		})
	}
}

// TestAnalyzersSilentOnCleanFixtures is the inverse guard: the good
// fixtures must stay diagnostic-free when run programmatically, proving
// the exemption machinery (cold ranges, partition narrowing, pairing
// parens) actually engages rather than the analyzer flagging everything
// and wants absorbing the noise.
func TestAnalyzersSilentOnCleanFixtures(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		fixture  string
	}{
		{lint.HotPath, "testdata/hotpath/good"},
		{lint.BitExact, "testdata/bitexact/good"},
		{lint.ShardSafety, "testdata/shardsafety/good"},
		{lint.RoutePurity, "testdata/routepurity/good"},
		{lint.GoroutineLifecycle, "testdata/goroutinelifecycle/good"},
		{lint.ChanDiscipline, "testdata/chandiscipline/good"},
		{lint.LockOrder, "testdata/lockorder/good"},
		{lint.CtxFlow, "testdata/ctxflow/good"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkg := linttest.Load(t, tc.fixture)
			diags, err := lint.Run(pkg, []*lint.Analyzer{tc.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("unexpected diagnostic on clean fixture: %s", d)
			}
		})
	}
}
