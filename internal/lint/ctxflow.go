package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow requires every function that may block indefinitely to thread
// a cancellation seam (DESIGN.md §15.4). The coming qtenon-serve layer
// sheds load by cancelling in-flight work; a blocking wait with no
// cancellation path is work the daemon can never reclaim. The v4
// blocking summary is transitive, so the contract binds at every public
// surface, not just the function that owns the channel:
//
//   - a function whose summary carries a block witness and whose
//     signature has no context.Context-shaped parameter and no
//     done-channel parameter is flagged: it blocks and nobody can stop
//     it;
//   - a function that *does* advertise a seam but still carries a block
//     witness is flagged too — the seam must actually guard the op
//     (select with a done-case), not just decorate the signature.
//
// Receives from cancellation channels and selects with a done-case (or
// a default) never count as block witnesses, so the fix — guard the op
// with the seam — also clears the diagnostic. Audited roots (a wg.Wait
// whose bound is structural, like the par dispatch join) carry a
// //lint:ignore ctxflow directive at the op, which both suppresses the
// diagnostic and stops the witness from tainting callers.
var CtxFlow = &Analyzer{
	Name:   "ctxflow",
	Doc:    "transitively-blocking functions must thread a cancellation seam (context-shaped or done-channel parameter)",
	Design: "§15.4",
	Run:    runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sum := pass.Prog.Summary(obj)
			if sum == nil || !sum.Blocks() {
				continue
			}
			if hasCancellationParam(obj.Type().(*types.Signature)) {
				pass.Reportf(fd.Name.Pos(), "%s advertises a cancellation seam but may still block outside it: %s — guard the op with a select on the seam",
					fd.Name.Name, sum.BlockSite())
			} else {
				pass.Reportf(fd.Name.Pos(), "%s may block indefinitely and threads no cancellation seam (context-shaped or done-channel parameter): %s",
					fd.Name.Name, sum.BlockSite())
			}
		}
	}
	return nil
}
