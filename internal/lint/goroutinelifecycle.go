package lint

import (
	"go/ast"
	"strings"
)

// GoroutineLifecycle requires every `go` statement to carry a
// termination witness (DESIGN.md §15.1): the spawned body must join
// (sync.WaitGroup.Done), wind down under cancellation (a select with a
// done-case, a receive from a cancellation channel, a range over a
// channel some in-program function closes or that returns on a
// sentinel), or be bounded outright (no loops, no blocking ops). A
// fire-and-forget goroutine with none of those is exactly the leak that
// accumulates in a long-running daemon until the scheduler drowns; the
// diagnostic names the leak path so the fix is mechanical.
//
// Named spawn targets are judged through their v4 summary
// (TermSeam/LeakSite, computed transitively); closure literals are
// classified in place. Spawns of functions outside the program (no
// summary) follow the optimistic-inert stance of the aliasing
// dimensions — the full-module CI run sees every qtenon summary, which
// is where the gate binds.
var GoroutineLifecycle = &Analyzer{
	Name:   "goroutinelifecycle",
	Doc:    "every go statement must reach a join or termination witness; leaks flagged with the leak path named",
	Design: "§15.1",
	Run:    runGoroutineLifecycle,
}

func runGoroutineLifecycle(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				if _, leak := goroutineTermination(pass.Prog, pass.TypesInfo, pass.Fset, lit.Body); leak != "" {
					pass.Reportf(g.Pos(), "goroutine has no termination witness — %s", leak)
				}
				return true
			}
			callee := pass.CalleeFunc(g.Call)
			if callee == nil {
				return true // spawn through a function value: judged at the literal's definition
			}
			sum := pass.Prog.Summary(callee)
			if sum == nil {
				return true // external or curated-inert callee
			}
			if leak := sum.LeakSite(); leak != "" {
				pass.Reportf(g.Pos(), "go %s has no termination witness — %s", callee.Name(), leak)
			}
			return true
		})
	}
	return nil
}
