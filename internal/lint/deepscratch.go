package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeepScratch is the interprocedural completion of scratcharena
// (DESIGN.md §9.2, §10). scratcharena catches a scratch-backed slice
// escaping the producing frame directly — returned, stored into foreign
// state, captured by a scheduled closure. What it cannot see is the
// same escape one call deep: the scratch handed to a callee that looks
// inert from the call site but whose body stores its parameter into a
// global, a field, a map, a channel, or a goroutine. With the Program's
// function summaries that callee is no longer opaque: passing a tracked
// scratch value (or anything reachable from it, e.g. res.Data) to a
// parameter the summary marks retained is flagged at the call site.
//
// Values that merely flow through a callee into its result
// (ArgFlowsToResult) stay tracked in the caller, so wrap(res) escaping
// later is caught too. Calls to other scratch producers are links in
// the recycling chain and exempt, as are the bodies of scratch APIs
// themselves.
var DeepScratch = &Analyzer{
	Name:   "deepscratch",
	Design: "§8, §10",
	Doc:    "flag scratch buffers passed to callees whose summaries retain them",
	Run:    runDeepScratch,
}

func runDeepScratch(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Body == nil {
				return false
			}
			name := fd.Name.Name
			if isScratchAPIName(name) || strings.HasPrefix(name, "append") {
				return false // links in a recycling chain hand dst to their caller
			}
			checkDeepScratchFunc(pass, fd.Body)
			return false
		})
	}
	return nil
}

// checkDeepScratchFunc tracks scratch-producer results (with recycled,
// non-fresh destinations) through one function — including its nested
// literals, whose captures refer to the same frame — and flags each
// retained hand-off.
func checkDeepScratchFunc(pass *Pass, body *ast.BlockStmt) {
	// tracked maps a local to the rendered scratch dst it aliases.
	tracked := map[types.Object]string{}

	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		pass.Reportf(pos, format, args...)
	}

	// trackedSet reports whether e is (or is reachable from) a tracked
	// value, returning the dst description.
	trackedSet := func(e ast.Expr) (string, types.Object) {
		return trackedRoot(pass, tracked, e)
	}

	// resultAliases reports whether call's result aliases a tracked value
	// (producer recycling, or a summarized callee flowing an argument to
	// its result), with the dst description. aliasOf resolves either a
	// rooted value or a nested call — together they follow chains like
	// wrap(st.AppendProbabilities(buf)).
	var resultAliases func(call *ast.CallExpr) (string, bool)
	aliasOf := func(e ast.Expr) (string, bool) {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			return resultAliases(call)
		}
		if base, obj := trackedSet(e); obj != nil {
			return base, true
		}
		return "", false
	}
	resultAliases = func(call *ast.CallExpr) (string, bool) {
		if _, dstIdx, ok := scratchProducer(pass, call); ok {
			dst := call.Args[dstIdx]
			if !isNilOrFresh(pass, dst) {
				return exprString(sliceBase(dst)), true
			}
			return "", false
		}
		if isBuiltinIn(pass.TypesInfo, call, "append") && len(call.Args) > 0 {
			return aliasOf(call.Args[0])
		}
		if isConversion(pass.TypesInfo, call) && len(call.Args) == 1 {
			return aliasOf(call.Args[0])
		}
		callee := pass.CalleeFunc(call)
		if callee == nil {
			return "", false
		}
		sum := pass.Prog.Summary(callee)
		if sum == nil {
			return "", false
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sum.hasRecv && sum.flows&paramBit(0) != 0 {
			if base, ok := aliasOf(sel.X); ok {
				return base, true
			}
		}
		for i, arg := range call.Args {
			if !sum.ArgFlowsToResult(i) {
				continue
			}
			if base, ok := aliasOf(arg); ok {
				return base, true
			}
		}
		return "", false
	}

	// checkCall flags tracked values handed to retaining parameters.
	checkCall := func(call *ast.CallExpr) {
		if _, _, ok := scratchProducer(pass, call); ok {
			return // recycling chain; scratcharena owns the dst rules
		}
		callee := pass.CalleeFunc(call)
		if callee == nil {
			return
		}
		sum := pass.Prog.Summary(callee)
		if sum == nil {
			return
		}
		if sum.RecvRetained() {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if base, ok := aliasOf(sel.X); ok && isAliasType(pass, sel.X) {
					report(sel.X.Pos(), "scratch-backed value %s (recycling %s) used as receiver of %s, which retains its receiver beyond the call; the arena overwrites this storage on the next reuse — copy first",
						renderTarget(sel.X), quoted(base), callee.Name())
				}
			}
		}
		for i, arg := range call.Args {
			if !sum.ArgRetained(i) {
				continue
			}
			base, ok := aliasOf(arg)
			if !ok || !isAliasType(pass, arg) {
				continue
			}
			report(arg.Pos(), "scratch-backed value %s (recycling %s) passed to %s, which retains that parameter beyond the call; the arena overwrites this storage on the next reuse — copy it or let the callee borrow, not keep",
				renderTarget(arg), quoted(base), callee.Name())
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 && i == 0 {
					rhs = n.Rhs[0] // res, err := producer(...): value is Lhs[0]
				}
				if rhs == nil {
					continue
				}
				delete(tracked, obj)
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if base, aliases := resultAliases(call); aliases {
						tracked[obj] = base
						continue
					}
				}
				if base, robj := trackedSet(rhs); robj != nil && isAliasType(pass, rhs) {
					tracked[obj] = base
				}
			}
		case *ast.CallExpr:
			checkCall(n)
		}
		return true
	})
}
