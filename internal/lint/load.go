package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Resolver resolves import paths for the type-checker, shared by every
// type-check in one load so dependency packages are materialized once.
// Resolution order:
//
//  1. export data from the `go list -export` closure (the fast path —
//     and mandatory when present: mixing a source-checked copy of a
//     package with export-data references to it would split its type
//     identities);
//  2. packages already type-checked from source in this load (each
//     Check registers its result, which is how multi-package fixture
//     modules — which have no export data — import one another);
//  3. fallback: type-check the dependency from source, when go list
//     reported its file list but produced no export data (a cold or
//     poisoned build cache). Standard-library packages never take the
//     fallback — their export data is part of the toolchain, and
//     checking them from source would drag in the runtime.
type Resolver struct {
	fset    *token.FileSet
	exports map[string]string   // import path → export data file
	srcs    map[string]*listPkg // import path → source location (fallback)
	loaded  map[string]*types.Package
	loading map[string]bool // cycle guard for the source fallback
	expImp  types.Importer  // gc export-data importer
}

// Import implements types.Importer over the three-step resolution order.
func (r *Resolver) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := r.exports[path]; ok {
		return r.expImp.Import(path)
	}
	if p, ok := r.loaded[path]; ok {
		return p, nil
	}
	if lp, ok := r.srcs[path]; ok && !lp.Standard && len(lp.GoFiles) > 0 {
		if r.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %q in source fallback", path)
		}
		p, err := r.Check(path, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("lint: source fallback for %q: %w", path, err)
		}
		return p.Types, nil
	}
	// Last resort: the export importer's own error message names the
	// missing package.
	return r.expImp.Import(path)
}

// NewResolver builds a resolver over a `go list -export` run. extra
// lists import paths (typically stdlib) that must be resolvable even if
// nothing in patterns depends on them — the test-fixture harness uses
// this for packages only fixtures import.
func NewResolver(fset *token.FileSet, moduleDir string, patterns, extra []string) (*Resolver, map[string]*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Error"}, patterns...)
	args = append(args, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	pkgs := map[string]*listPkg{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		q := p
		pkgs[p.ImportPath] = &q
	}
	r := &Resolver{
		fset:    fset,
		exports: map[string]string{},
		srcs:    pkgs,
		loaded:  map[string]*types.Package{},
		loading: map[string]bool{},
	}
	for path, p := range pkgs {
		if p.Export != "" {
			r.exports[path] = p.Export
		}
	}
	r.expImp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := r.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (not in the go list -export closure)", path)
		}
		return os.Open(exp)
	})
	return r, pkgs, nil
}

// NewExportResolver builds a resolver over a caller-supplied export-data
// lookup — the vettool path, where go vet's config already maps import
// paths to export files. There is no source fallback: go vet guarantees
// export data for the whole dependency closure.
func NewExportResolver(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) *Resolver {
	return &Resolver{
		fset:    fset,
		loaded:  map[string]*types.Package{},
		loading: map[string]bool{},
		expImp:  importer.ForCompiler(fset, "gc", lookup),
	}
}

// Check parses and type-checks one package's files against the
// resolver's dependency closure. path is the import path the package is
// checked under (analyzers scope rules by it). The checked package is
// registered with the resolver, so later Checks in the same load can
// import it from source — the multi-package fixture mechanism.
func (r *Resolver) Check(path, dir string, fileNames []string) (*Package, error) {
	if r.loading == nil {
		r.loading = map[string]bool{}
	}
	if r.loaded == nil {
		r.loaded = map[string]*types.Package{}
	}
	r.loading[path] = true
	defer delete(r.loading, path)
	var files []*ast.File
	for _, name := range fileNames {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(r.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var tErrs []error
	conf := types.Config{
		Importer: r,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { tErrs = append(tErrs, err) },
	}
	tpkg, _ := conf.Check(path, r.fset, files, info)
	if len(tErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, tErrs[0])
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	r.loaded[path] = tpkg
	return &Package{Path: path, Name: name, Dir: dir, Fset: r.fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadPackages loads every package matched by patterns (relative to
// moduleDir, e.g. "./...") from source, resolving imports through the
// build cache's export data — an offline, stdlib-only stand-in for
// golang.org/x/tools/go/packages. Test files are not loaded: the
// invariants govern shipped code, and tests routinely (and legitimately)
// construct ad-hoc streams and compare exact floats.
func LoadPackages(moduleDir string, patterns ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	r, pkgs, err := NewResolver(fset, moduleDir, patterns, nil)
	if err != nil {
		return nil, err
	}
	var out []*Package
	var paths []string
	for path, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		paths = append(paths, path)
	}
	// Deterministic load order → deterministic diagnostic order (and a
	// deterministic choice of which list error surfaces first).
	sort.Strings(paths)
	for _, path := range paths {
		p := pkgs[path]
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", path, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		lp, err := r.Check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// ModuleDir walks up from dir to the enclosing go.mod directory.
func ModuleDir(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
