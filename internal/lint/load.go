package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Resolver resolves import paths to export data, shared by every
// type-check in one load so dependency packages are materialized once.
type Resolver struct {
	fset    *token.FileSet
	exports map[string]string // import path → export data file
	imp     types.Importer
}

// NewResolver builds a resolver over a `go list -export` run. extra
// lists import paths (typically stdlib) that must be resolvable even if
// nothing in patterns depends on them — the test-fixture harness uses
// this for packages only fixtures import.
func NewResolver(fset *token.FileSet, moduleDir string, patterns, extra []string) (*Resolver, map[string]*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Error"}, patterns...)
	args = append(args, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	pkgs := map[string]*listPkg{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		q := p
		pkgs[p.ImportPath] = &q
	}
	r := &Resolver{fset: fset, exports: map[string]string{}}
	for path, p := range pkgs {
		if p.Export != "" {
			r.exports[path] = p.Export
		}
	}
	r.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := r.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (not in the go list -export closure)", path)
		}
		return os.Open(exp)
	})
	return r, pkgs, nil
}

// NewExportResolver builds a resolver over a caller-supplied export-data
// lookup — the vettool path, where go vet's config already maps import
// paths to export files.
func NewExportResolver(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) *Resolver {
	return &Resolver{fset: fset, imp: importer.ForCompiler(fset, "gc", lookup)}
}

// Check parses and type-checks one package's files against the
// resolver's dependency closure. path is the import path the package is
// checked under (analyzers scope rules by it).
func (r *Resolver) Check(path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(r.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var tErrs []error
	conf := types.Config{
		Importer: r.imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { tErrs = append(tErrs, err) },
	}
	tpkg, _ := conf.Check(path, r.fset, files, info)
	if len(tErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, tErrs[0])
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{Path: path, Name: name, Dir: dir, Fset: r.fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadPackages loads every package matched by patterns (relative to
// moduleDir, e.g. "./...") from source, resolving imports through the
// build cache's export data — an offline, stdlib-only stand-in for
// golang.org/x/tools/go/packages. Test files are not loaded: the
// invariants govern shipped code, and tests routinely (and legitimately)
// construct ad-hoc streams and compare exact floats.
func LoadPackages(moduleDir string, patterns ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	r, pkgs, err := NewResolver(fset, moduleDir, patterns, nil)
	if err != nil {
		return nil, err
	}
	var out []*Package
	var paths []string
	for path, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		paths = append(paths, path)
	}
	// Deterministic load order → deterministic diagnostic order (and a
	// deterministic choice of which list error surfaces first).
	sort.Strings(paths)
	for _, path := range paths {
		p := pkgs[path]
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", path, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		lp, err := r.Check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// ModuleDir walks up from dir to the enclosing go.mod directory.
func ModuleDir(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
