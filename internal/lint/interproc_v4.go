package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the v4 extension of the interprocedural layer (DESIGN.md
// §15): the concurrency-liveness summary dimensions behind the
// goroutinelifecycle, chandiscipline, lockorder and ctxflow analyzers,
// computed inside the same monotone fixpoint as the earlier dimensions.
//
//   - blocking: may this function block indefinitely — an unguarded
//     channel send/receive, a select with neither default nor
//     cancellation case, sync.WaitGroup.Wait / sync.Cond.Wait /
//     sync.Once.Do, or a call to a callee that may — transitively
//     through its in-program callees? Receives from cancellation-shaped
//     channels (chan struct{}, ctx.Done()) are the seam itself, never a
//     block witness. ctxflow consumes the fact.
//   - termination: when this function is spawned with `go`, does it
//     provably finish or provably wind down — a sync.WaitGroup.Done
//     join, a select with a cancellation case, a receive from a
//     cancellation channel, a range over a channel with a sentinel
//     return or over a channel some in-program function closes, or a
//     body with no loops and no blocking ops at all? goroutinelifecycle
//     consumes both the seam and the leak witness.
//   - channel roles: which parameters may this function send on or
//     close, transitively? chandiscipline consumes the close bits to see
//     a send-after-close through a helper call.
//   - lock order: which lock classes (package-level mutexes, mutex
//     fields of named types) may this function acquire, and in what
//     order? Every "acquires B while holding A" observation lands in the
//     Program-level lockEdges graph; lockorder reports the cycles.
//
// Flood control: a blocking op whose line carries a well-formed
// //lint:ignore directive naming ctxflow is declared bounded — the
// directive is the audited proof (directive_audit_test ties its reason
// to a DESIGN.md section), so callers do not inherit a block witness
// that a human already discharged at the root. The lock-order scan is
// flow-insensitive within a function (events are replayed in source
// order; branches are merged), which can invent a held-pair across
// exclusive branches — accepted: the module's locking is simple enough
// that the only pairs the graph ever sees are real, and a false pair is
// visible in the reported witness chain.

// Blocks reports whether the function may block indefinitely,
// transitively through its in-program callees.
func (s *FuncSummary) Blocks() bool { return s != nil && s.blockSite != "" }

// BlockSite describes the first blocking witness ("" when bounded).
func (s *FuncSummary) BlockSite() string {
	if s == nil {
		return ""
	}
	return s.blockSite
}

// TermSeam describes the proof this function terminates (or winds down
// under cancellation) when spawned as a goroutine; "" when none found.
func (s *FuncSummary) TermSeam() string {
	if s == nil {
		return ""
	}
	return s.termSeam
}

// LeakSite describes why this function leaks when spawned as a
// goroutine; "" when it has a termination seam or is bounded.
func (s *FuncSummary) LeakSite() string {
	if s == nil {
		return ""
	}
	return s.leakSite
}

// ArgChanSent reports whether the callee may send on the i'th call
// argument (a channel), transitively.
func (s *FuncSummary) ArgChanSent(i int) bool {
	if s == nil {
		return false
	}
	i = s.argIndex(i)
	return i >= 0 && s.chanSends&paramBit(i) != 0
}

// ArgChanClosed reports whether the callee may close the i'th call
// argument (a channel), transitively.
func (s *FuncSummary) ArgChanClosed(i int) bool {
	if s == nil {
		return false
	}
	i = s.argIndex(i)
	return i >= 0 && s.chanCloses&paramBit(i) != 0
}

// LockSet returns the lock classes the function may acquire,
// transitively, in sorted order.
func (s *FuncSummary) LockSet() []string {
	if s == nil || len(s.locks) == 0 {
		return nil
	}
	ids := make([]string, 0, len(s.locks))
	for id := range s.locks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// lockPair is a directed edge (from held to newly acquired) in the
// program's lock-acquisition order graph.
type lockPair struct{ from, to string }

// lockEdge is the first witness of one acquisition ordering. pos is
// valid in the FileSet of the package named by pkg, which is where
// lockorder reports it — exactly once module-wide.
type lockEdge struct {
	pos     token.Pos
	pkg     string
	witness string
}

// ignoreFor lazily parses and caches pkg's //lint:ignore index.
func (p *Program) ignoreFor(pkg *Package) ignoreIndex {
	if ix, ok := p.ignores[pkg]; ok {
		return ix
	}
	ix, _ := parseDirectives(pkg.Fset, pkg.Files)
	if p.ignores == nil {
		p.ignores = map[*Package]ignoreIndex{}
	}
	p.ignores[pkg] = ix
	return ix
}

// boundedByDirective reports whether pos sits on a line governed by a
// well-formed //lint:ignore directive naming analyzer — the audited
// escape hatch that declares a blocking op bounded at its root instead
// of flooding every transitive caller with the witness.
func (p *Program) boundedByDirective(pkg *Package, pos token.Pos, analyzer string) bool {
	posn := pkg.Fset.Position(pos)
	d := p.ignoreFor(pkg)[fmt.Sprintf("%s:%d", posn.Filename, posn.Line)]
	return d != nil && d.malformed == "" && d.analyzers[analyzer]
}

// summarizeV4 folds the liveness facts into sum; reports whether the
// summary (or the program-level fact tables) grew.
func summarizeV4(p *Program, fi *FuncInfo, sum *FuncSummary) bool {
	changed := false
	if sum.blockSite == "" {
		skip := func(pos token.Pos) bool {
			return p.boundedByDirective(fi.Pkg, pos, "ctxflow")
		}
		if pos, desc, ok := firstBlockingOp(p, fi.Pkg.Info, fi.Decl.Body, skip); ok {
			sum.blockSite = fmt.Sprintf("%s: %s", shortPos(fi.Pkg.Fset, pos), desc)
			changed = true
		}
	}
	// Termination is recomputed each round rather than set once: a range
	// over a channel is a leak until some later-summarized function's
	// close lands in closedChans, at which point it flips (monotonically)
	// to a seam.
	seam, leak := goroutineTermination(p, fi.Pkg.Info, fi.Pkg.Fset, fi.Decl.Body)
	if seam != sum.termSeam || leak != sum.leakSite {
		sum.termSeam, sum.leakSite = seam, leak
		changed = true
	}
	v := &liveScan{prog: p, fi: fi, sum: sum, info: fi.Pkg.Info, fset: fi.Pkg.Fset, changed: &changed}
	v.bindParams()
	v.scanChanFacts()
	v.lockStream(fi.Decl.Body)
	return changed
}

// ---- blocking-op detection ----

// selectGuards marks the comm statements (and their receive operands)
// of every select in body: channel ops there are judged at the select,
// not as bare blocking ops.
func selectGuards(body ast.Node) map[ast.Node]bool {
	g := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			g[cc.Comm] = true
			switch s := cc.Comm.(type) {
			case *ast.ExprStmt:
				g[ast.Unparen(s.X)] = true
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					g[ast.Unparen(r)] = true
				}
			}
		}
		return true
	})
	return g
}

// recvOperand returns the channel operand when stmt is a receive comm
// clause statement; nil otherwise.
func recvOperand(stmt ast.Stmt) ast.Expr {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

func typeIn(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := objectIn(info, id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	t := typeIn(info, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// doneShaped reports whether e denotes a cancellation channel: a call
// to a method named Done (context.Context.Done and its look-alikes), or
// any channel whose element type is the empty struct.
func doneShaped(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	t := typeIn(info, e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isDoneChanType reports whether t is a cancellation-channel type.
func isDoneChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isContextType reports whether t is context.Context-shaped: a named
// interface type called Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Context" {
		return false
	}
	_, ok = named.Underlying().(*types.Interface)
	return ok
}

// hasCancellationParam reports whether sig threads a cancellation seam:
// a context.Context-shaped parameter or a done-channel parameter.
func hasCancellationParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) || isDoneChanType(t) {
			return true
		}
	}
	return false
}

// syncBlockDesc describes call when it is one of the sync primitives
// that can block its caller indefinitely; "" otherwise. Mutex locking
// is deliberately excluded — lock waits are lockorder's domain, and
// flagging every Lock would drown ctxflow's signal.
func syncBlockDesc(info *types.Info, call *ast.CallExpr) string {
	f := calleeIn(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return ""
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	switch namedTypeName(recv.Type()) + "." + f.Name() {
	case "WaitGroup.Wait":
		return "sync.WaitGroup.Wait may block indefinitely"
	case "Cond.Wait":
		return "sync.Cond.Wait may block indefinitely"
	case "Once.Do":
		return "sync.Once.Do may block behind another caller's in-flight run"
	}
	return ""
}

// namedTypeName returns the bare name of t's named type (through one
// pointer); "" when unnamed.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// firstBlockingOp walks body (nested function literals excluded) in
// source order and reports the first operation that may block
// indefinitely. skip filters positions the caller has already audited.
func firstBlockingOp(prog *Program, info *types.Info, body ast.Node, skip func(token.Pos) bool) (token.Pos, string, bool) {
	guarded := selectGuards(body)
	var pos token.Pos
	var desc string
	found := func(p token.Pos, format string, args ...any) bool {
		if skip != nil && skip(p) {
			return true // audited at the root: keep scanning for others
		}
		pos, desc = p, fmt.Sprintf(format, args...)
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its liveness is judged where it is spawned or called
		case *ast.SendStmt:
			if !guarded[n] {
				return found(n.Pos(), "channel send outside select")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !guarded[n] && !doneShaped(info, n.X) {
				return found(n.Pos(), "channel receive outside select")
			}
		case *ast.RangeStmt:
			if isChanExpr(info, n.X) && !doneShaped(info, n.X) {
				return found(n.Pos(), "ranges over a channel, blocking between values")
			}
		case *ast.SelectStmt:
			hasDefault, hasCancel := false, false
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				if op := recvOperand(cc.Comm); op != nil && doneShaped(info, op) {
					hasCancel = true
				}
			}
			if !hasDefault && !hasCancel {
				return found(n.Pos(), "select with no default and no cancellation case")
			}
		case *ast.CallExpr:
			if d := syncBlockDesc(info, n); d != "" {
				return found(n.Pos(), "%s", d)
			}
			if callee := calleeIn(info, n); callee != nil {
				if csum := prog.Summary(callee); csum != nil && csum.blockSite != "" {
					return found(n.Pos(), "calls %s, which may block (%s)", callee.Name(), csum.blockSite)
				}
			}
		}
		return true
	})
	return pos, desc, pos.IsValid()
}

// ---- goroutine termination classification ----

// goroutineTermination classifies a body spawned with `go`:
//
//	seam != ""  — provably terminates or winds down under cancellation
//	leak != ""  — provably at risk: the named leak path
//	both ""     — bounded: no loops, no blocking ops, runs off the end
//
// Precedence: an unbounded loop with no exit path, or a range over a
// channel no in-program function closes, is a leak no matter what else
// the body contains — a WaitGroup.Done after (or deferred around) a
// loop that never ends is never reached.
func goroutineTermination(prog *Program, info *types.Info, fset *token.FileSet, body ast.Node) (seam, leak string) {
	// 1. Unbounded `for { … }` with no return/break/goto.
	var loopPos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if loopPos.IsValid() {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil && !stmtExits(f.Body, true) {
			loopPos = f.Pos()
			return false
		}
		return true
	})
	if loopPos.IsValid() {
		return "", fmt.Sprintf("%s: for-loop with no exit path", shortPos(fset, loopPos))
	}

	// 2. Ranges over channels: a sentinel return or a program-wide close
	// witness makes each one a seam; one without either is a leak.
	var rangeSeam, rangeLeak string
	ast.Inspect(body, func(n ast.Node) bool {
		if rangeLeak != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		r, ok := n.(*ast.RangeStmt)
		if !ok || !isChanExpr(info, r.X) || doneShaped(info, r.X) {
			return true
		}
		switch {
		case stmtExits(r.Body, false):
			if rangeSeam == "" {
				rangeSeam = fmt.Sprintf("%s: ranges over %s with a sentinel return", shortPos(fset, r.Pos()), exprString(r.X))
			}
		default:
			id := stableIDOf(info, r.X)
			if w, ok := prog.closedChans[id]; ok && id != "" {
				if rangeSeam == "" {
					rangeSeam = fmt.Sprintf("%s: ranges over %s, which is closed elsewhere (%s)", shortPos(fset, r.Pos()), exprString(r.X), w)
				}
			} else {
				rangeLeak = fmt.Sprintf("%s: ranges over channel %s, which no in-program function closes and whose body never returns", shortPos(fset, r.Pos()), exprString(r.X))
			}
		}
		return true
	})
	if rangeLeak != "" {
		return "", rangeLeak
	}

	// 3. Explicit seams: a WaitGroup.Done join, a select with a
	// cancellation case, a receive from a cancellation channel.
	ast.Inspect(body, func(n ast.Node) bool {
		if seam != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := calleeIn(info, n); f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync" &&
				f.Name() == "Done" && namedTypeName(recvType(f)) == "WaitGroup" {
				seam = fmt.Sprintf("%s: joins via sync.WaitGroup.Done", shortPos(fset, n.Pos()))
			}
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if op := recvOperand(cc.Comm); op != nil && doneShaped(info, op) {
					seam = fmt.Sprintf("%s: selects on cancellation channel %s", shortPos(fset, n.Pos()), exprString(op))
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && doneShaped(info, n.X) {
				seam = fmt.Sprintf("%s: receives from cancellation channel %s", shortPos(fset, n.Pos()), exprString(n.X))
			}
		}
		return true
	})
	if seam == "" {
		seam = rangeSeam
	}
	if seam != "" {
		return seam, ""
	}

	// 4. No seam: any blocking op (or blocking callee) is a leak.
	if pos, desc, ok := firstBlockingOp(prog, info, body, nil); ok {
		return "", fmt.Sprintf("%s: no join, and %s", shortPos(fset, pos), desc)
	}
	return "", "" // bounded
}

func recvType(f *types.Func) types.Type {
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	return recv.Type()
}

// stmtExits reports whether executing s can leave the enclosing bare
// loop: a return, a goto or labeled branch, or (when breakBinds) a
// break. Function literals do not count — their control flow is their
// own.
func stmtExits(s ast.Stmt, breakBinds bool) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		if s.Tok == token.GOTO || s.Label != nil {
			return true
		}
		return s.Tok == token.BREAK && breakBinds
	case *ast.BlockStmt:
		for _, t := range s.List {
			if stmtExits(t, breakBinds) {
				return true
			}
		}
	case *ast.IfStmt:
		return stmtExits(s.Body, breakBinds) || stmtExits(s.Else, breakBinds)
	case *ast.ForStmt:
		return stmtExits(s.Body, false) // break binds to the inner loop
	case *ast.RangeStmt:
		return stmtExits(s.Body, false)
	case *ast.LabeledStmt:
		return stmtExits(s.Stmt, breakBinds)
	case *ast.SwitchStmt:
		return stmtExits(s.Body, false) // break binds to the switch
	case *ast.TypeSwitchStmt:
		return stmtExits(s.Body, false)
	case *ast.SelectStmt:
		return stmtExits(s.Body, false)
	case *ast.CaseClause:
		for _, t := range s.Body {
			if stmtExits(t, breakBinds) {
				return true
			}
		}
	case *ast.CommClause:
		for _, t := range s.Body {
			if stmtExits(t, breakBinds) {
				return true
			}
		}
	}
	return false
}

// ---- stable identities ----

// trimModulePath shortens a package path for witness rendering.
func trimModulePath(path string) string {
	return strings.TrimPrefix(path, "qtenon/")
}

// stableIDOf computes a module-wide stable identity for a lock or
// channel expression: "pkg.var" for a package-level variable,
// "pkg.Type.field" for a field of a named type (any instance — the
// identity names the lock/channel *class*). "" when the expression has
// no stable identity (locals, map entries, …).
func stableIDOf(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := objectIn(info, x).(*types.Var); ok && isPkgLevelVar(v) {
			return trimModulePath(v.Pkg().Path()) + "." + v.Name()
		}
	case *ast.SelectorExpr:
		v, ok := objectIn(info, x.Sel).(*types.Var)
		if !ok {
			return ""
		}
		if isPkgLevelVar(v) {
			return trimModulePath(v.Pkg().Path()) + "." + v.Name()
		}
		if v.IsField() {
			t := typeIn(info, x.X)
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
				return trimModulePath(n.Obj().Pkg().Path()) + "." + n.Obj().Name() + "." + v.Name()
			}
		}
	}
	return ""
}

// ---- channel-role and lock-order scanning ----

// liveScan folds one function's channel-role bits and lock events into
// its summary and the program-level fact tables.
type liveScan struct {
	prog    *Program
	fi      *FuncInfo
	sum     *FuncSummary
	info    *types.Info
	fset    *token.FileSet
	params  map[types.Object]bitset
	changed *bool
}

func (v *liveScan) bindParams() {
	v.params = map[types.Object]bitset{}
	idx := 0
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, name := range f.Names {
				if obj := v.info.Defs[name]; obj != nil {
					v.params[obj] = paramBit(idx)
				}
				idx++
			}
		}
	}
	add(v.fi.Decl.Recv)
	add(v.fi.Decl.Type.Params)
}

func (v *liveScan) paramBitOf(e ast.Expr) bitset {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0
	}
	return v.params[objectIn(v.info, id)]
}

// scanChanFacts records which parameters the function may send on or
// close (function literals included — these are may-facts) and
// registers program-wide close witnesses for stably-identified
// channels.
func (v *liveScan) scanChanFacts() {
	info := v.info
	ast.Inspect(v.fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			v.noteChanSend(n.Chan)
		case *ast.CallExpr:
			if isBuiltinIn(info, n, "close") && len(n.Args) == 1 {
				v.noteChanClose(n.Args[0], n.Pos())
				return true
			}
			callee := calleeIn(info, n)
			if callee == nil {
				return true
			}
			csum := v.prog.Summary(callee)
			if csum == nil {
				return true
			}
			for i, arg := range n.Args {
				if csum.ArgChanClosed(i) {
					v.noteChanClose(arg, n.Pos())
				}
				if csum.ArgChanSent(i) {
					v.noteChanSend(arg)
				}
			}
		}
		return true
	})
}

func (v *liveScan) noteChanSend(ch ast.Expr) {
	if b := v.paramBitOf(ch); b != 0 && v.sum.chanSends&b != b {
		v.sum.chanSends |= b
		*v.changed = true
	}
}

func (v *liveScan) noteChanClose(ch ast.Expr, pos token.Pos) {
	if b := v.paramBitOf(ch); b != 0 && v.sum.chanCloses&b != b {
		v.sum.chanCloses |= b
		*v.changed = true
	}
	if id := stableIDOf(v.info, ch); id != "" {
		if _, ok := v.prog.closedChans[id]; !ok {
			v.prog.closedChans[id] = fmt.Sprintf("%s: closed by %s", shortPos(v.fset, pos), v.fi.Func.Name())
			*v.changed = true
		}
	}
}

// mutexOp classifies f as a lock or unlock on sync.Mutex/RWMutex.
func mutexOp(f *types.Func) string {
	if f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return ""
	}
	switch namedTypeName(recvType(f)) {
	case "Mutex", "RWMutex":
	default:
		return ""
	}
	switch f.Name() {
	case "Lock", "RLock":
		return "lock"
	case "Unlock", "RUnlock":
		return "unlock"
	}
	return ""
}

const (
	lockEv = iota
	unlockEv
	callEv
)

type lockEvent struct {
	pos      token.Pos
	kind     int
	id       string
	deferred bool
	callee   *types.Func
}

type heldLock struct {
	id  string
	pos token.Pos
}

// lockStream replays body's lock events in source order against a held
// stack, recording acquisition-order edges and the function's
// transitive lock set. Each function literal is its own stream (it runs
// on its own goroutine or at defer time, with its own empty stack).
func (v *liveScan) lockStream(body ast.Node) {
	var evs []lockEvent
	var lits []*ast.FuncLit
	deferred := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			callee := calleeIn(v.info, n)
			if callee == nil {
				return true
			}
			if op := mutexOp(callee); op != "" {
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id := lockTargetID(v.info, sel.X)
				if id == "" {
					return true
				}
				kind := lockEv
				if op == "unlock" {
					kind = unlockEv
				}
				evs = append(evs, lockEvent{pos: n.Pos(), kind: kind, id: id, deferred: deferred[n]})
				return true
			}
			if csum := v.prog.Summary(callee); csum != nil && len(csum.locks) > 0 {
				evs = append(evs, lockEvent{pos: n.Pos(), kind: callEv, callee: callee})
			}
		}
		return true
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })

	fname := v.fi.Func.Name()
	var held []heldLock
	for _, e := range evs {
		switch e.kind {
		case lockEv:
			for _, h := range held {
				if h.id != e.id {
					v.addLockEdge(h.id, e.id, e.pos, fmt.Sprintf(
						"%s: %s acquires %s while holding %s (held since %s)",
						shortPos(v.fset, e.pos), fname, e.id, h.id, shortPos(v.fset, h.pos)))
				}
			}
			held = append(held, heldLock{e.id, e.pos})
			v.noteLockAcq(e.id, fmt.Sprintf("%s: acquired by %s", shortPos(v.fset, e.pos), fname))
		case unlockEv:
			if e.deferred {
				continue // released at return: held for the rest of the stream
			}
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].id == e.id {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case callEv:
			csum := v.prog.Summary(e.callee)
			if csum == nil {
				continue
			}
			for _, id := range csum.LockSet() {
				v.noteLockAcq(id, fmt.Sprintf("%s: %s calls %s, which acquires %s (%s)",
					shortPos(v.fset, e.pos), fname, e.callee.Name(), id, csum.locks[id]))
				alreadyHeld := false
				for _, h := range held {
					if h.id == id {
						alreadyHeld = true
					}
				}
				if alreadyHeld {
					continue
				}
				for _, h := range held {
					v.addLockEdge(h.id, id, e.pos, fmt.Sprintf(
						"%s: %s calls %s, which acquires %s (%s), while holding %s (held since %s)",
						shortPos(v.fset, e.pos), fname, e.callee.Name(), id, csum.locks[id], h.id, shortPos(v.fset, h.pos)))
				}
			}
		}
	}
	for _, lit := range lits {
		v.lockStream(lit.Body)
	}
}

// lockTargetID resolves the receiver expression of a Lock/Unlock call
// to a stable lock-class identity; embedded mutexes promote to the
// embedding named type.
func lockTargetID(info *types.Info, e ast.Expr) string {
	if id := stableIDOf(info, e); id != "" {
		return id
	}
	// s.Lock() on an embedded sync.Mutex: identify by the embedding type.
	t := typeIn(info, e)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() != "sync" {
		return trimModulePath(n.Obj().Pkg().Path()) + "." + n.Obj().Name()
	}
	return ""
}

func (v *liveScan) noteLockAcq(id, witness string) {
	if v.sum.locks == nil {
		v.sum.locks = map[string]string{}
	}
	if _, ok := v.sum.locks[id]; !ok {
		v.sum.locks[id] = witness
		*v.changed = true
	}
}

func (v *liveScan) addLockEdge(from, to string, pos token.Pos, witness string) {
	key := lockPair{from, to}
	if _, ok := v.prog.lockEdges[key]; ok {
		return
	}
	v.prog.lockEdges[key] = &lockEdge{pos: pos, pkg: v.fi.Pkg.Path, witness: witness}
	*v.changed = true
}
