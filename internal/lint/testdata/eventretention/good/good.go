// Package fixture holds the sanctioned scheduling idioms: none of these
// lines may be flagged.
package fixture

import (
	"qtenon/internal/qsim"
	"qtenon/internal/sim"
)

// Binding the loop value through a per-iteration local is the
// sanctioned pattern.
func scheduleAll(e *sim.Engine, deadlines []sim.Time) {
	for i, d := range deadlines {
		idx := i
		e.At(d, func() {
			record(idx)
		})
	}
}

// Capturing a scalar derived from scratch copies the value out of the
// arena before the event fires.
func scheduleValue(e *sim.Engine, st *qsim.State, buf []float64) {
	probs := st.AppendProbabilities(buf)
	total := 0.0
	for _, p := range probs {
		total += p
	}
	e.Schedule(4, func() {
		report(total)
	})
}

// A nil destination allocates caller-owned storage, so the closure may
// keep it.
func scheduleFresh(e *sim.Engine, st *qsim.State) {
	probs := st.AppendProbabilities(nil)
	e.Schedule(4, func() {
		use(probs)
	})
}

func record(int)     {}
func report(float64) {}
func use([]float64)  {}
