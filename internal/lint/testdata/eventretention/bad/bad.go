// Package fixture exercises the scheduled-closure retention rules:
// events enqueued on sim.Engine must not capture loop variables or
// scratch-backed slices.
package fixture

import (
	"qtenon/internal/qsim"
	"qtenon/internal/sim"
)

func scheduleAll(e *sim.Engine, deadlines []sim.Time) {
	for i, d := range deadlines {
		e.At(d, func() {
			record(i) // want `scheduled closure captures loop variable "i"`
		})
	}
}

func scheduleCounted(e *sim.Engine, n int) {
	for k := 0; k < n; k++ {
		e.Schedule(1, func() {
			record(k) // want `scheduled closure captures loop variable "k"`
		})
	}
}

func schedulePending(e *sim.Engine, pending map[uint64]sim.Time) {
	for addr := range pending {
		e.Schedule(1, func() {
			touch(addr) // want `scheduled closure captures loop variable "addr"`
		})
	}
}

func scheduleScratch(e *sim.Engine, st *qsim.State, buf []float64) {
	probs := st.AppendProbabilities(buf)
	e.Schedule(4, func() {
		use(probs) // want `captures "probs", a scratch-backed slice from AppendProbabilities`
	})
}

func record(int)    {}
func touch(uint64)  {}
func use([]float64) {}
