// Package good threads its cancellation seams properly: every
// potentially-blocking op sits under a select that includes the seam,
// or carries a default arm that makes it best-effort (DESIGN.md §15.4).
package good

import "context"

// RecvGuarded blocks only under a select that includes the context's
// done channel.
func RecvGuarded(ctx context.Context, c chan int) int {
	select {
	case v := <-c:
		return v
	case <-ctx.Done():
		return 0
	}
}

// RecvDone winds down through a done-channel parameter — the
// channel-shaped spelling of the same seam.
func RecvDone(done chan struct{}, c chan int) int {
	select {
	case v := <-c:
		return v
	case <-done:
		return 0
	}
}

// TrySend never blocks: the default arm makes the send best-effort.
func TrySend(c chan int, v int) bool {
	select {
	case c <- v:
		return true
	default:
		return false
	}
}

// WaitDone parks on the seam itself, which is never a block witness.
func WaitDone(done chan struct{}) {
	<-done
}
