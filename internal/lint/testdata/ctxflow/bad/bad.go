// Package bad seeds the cancellation-seam violations ctxflow flags
// (DESIGN.md §15.4): blocking with no seam in the signature, blocking
// inherited through a callee's summary, and the worse half — a
// signature that advertises a seam the blocking op ignores.
package bad

import "context"

// RecvNoSeam blocks on a bare receive and nobody can stop it.
func RecvNoSeam(c chan int) int { // want `RecvNoSeam may block indefinitely and threads no cancellation seam`
	return <-c
}

// CallerInherits blocks only through its callee's summary — the
// witness chain names the path.
func CallerInherits(c chan int) int { // want `CallerInherits may block indefinitely and threads no cancellation seam .*calls RecvNoSeam, which may block`
	return RecvNoSeam(c)
}

// DecoratedSeam takes a context but still blocks outside it — callers
// believe cancellation works.
func DecoratedSeam(ctx context.Context, c chan int) int { // want `DecoratedSeam advertises a cancellation seam but may still block outside it`
	_ = ctx
	return <-c
}

// NakedSelect has neither a default nor a cancellation case.
func NakedSelect(a, b chan int) int { // want `NakedSelect may block indefinitely and threads no cancellation seam`
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
