// Package alib is the dependency side of the cross-package ctxflow
// fixture: Blocker's block witness reaches the sibling package only
// through its summary.
package alib

// Blocker parks on a bare receive with no seam.
func Blocker(c chan int) int { // want `Blocker may block indefinitely and threads no cancellation seam`
	return <-c
}
