// Package buse exercises ctxflow's interprocedural leg: Caller never
// touches a channel op itself, yet inherits alib.Blocker's block
// witness through the cross-package summary.
package buse

import "qtenon/fixture/ctxflow/multipkg/alib"

// Caller blocks one call deep.
func Caller(c chan int) int { // want `Caller may block indefinitely and threads no cancellation seam .*calls Blocker, which may block`
	return alib.Blocker(c)
}
