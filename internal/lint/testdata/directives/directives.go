// Package fixture exercises the //lint:ignore directive machinery. It
// is driven by a programmatic test (not want comments) because the
// malformed-directive diagnostic lands on the directive's own line,
// where no want comment can sit.
package fixture

// suppressed: a well-formed directive naming the analyzer silences the
// line below it.
func suppressed(a, b float64) bool {
	//lint:ignore floatcompare calibrated against golden fixtures
	return a == b
}

// wrongName: a well-formed directive naming a different analyzer does
// not suppress this one.
func wrongName(a, b float64) bool {
	//lint:ignore determinism reason aimed at another analyzer
	return a == b
}

// missingReason: the reason is mandatory; the directive is reported as
// malformed and suppresses nothing.
func missingReason(a, b float64) bool {
	//lint:ignore floatcompare
	return a == b
}
