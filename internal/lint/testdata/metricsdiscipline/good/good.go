// Package fixture holds the sanctioned metrics idioms: pointer handles
// obtained from a Registry. None of these lines may be flagged.
package fixture

import "qtenon/internal/metrics"

type stats struct {
	hits *metrics.Counter
	lat  *metrics.Timer
}

func wire(r *metrics.Registry) *stats {
	return &stats{
		hits: r.Counter("cache.hits"),
		lat:  r.Timer("decode"),
	}
}

// A nil registry hands out nil instruments whose methods are no-ops, so
// instrumented code never nil-checks.
func observe(s *stats) {
	s.hits.Inc()
	s.lat.Observe(42)
}
