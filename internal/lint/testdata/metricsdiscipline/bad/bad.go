// Package fixture exercises the metrics-instrument discipline: raw
// construction and value-typed instruments bypass the registry.
package fixture

import "qtenon/internal/metrics"

type stats struct {
	hits metrics.Counter // want `field of value type metrics\.Counter`
}

var depth metrics.Gauge // want `variable of value type metrics\.Gauge`

func literals() {
	c := &metrics.Counter{} // want `metrics\.Counter constructed as a raw literal`
	t := new(metrics.Timer) // want `new\(metrics\.Timer\) bypasses the registry`
	c.Inc()
	t.Observe(1)
}
