// Package alib is the dependency side of the cross-package parsafety
// fixture: its summaries — not its source proximity — are what the
// analyzer consults at call sites in the sibling package.
package alib

// Fill writes every element of dst; the mutation is visible in Fill's
// summary across the package boundary.
func Fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// Sum only reads its argument.
func Sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
