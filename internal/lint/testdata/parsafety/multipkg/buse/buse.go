// Package buse exercises parsafety's interprocedural leg across a
// package boundary: alib.Fill's parameter mutation is known only
// through its function summary.
package buse

import (
	"qtenon/fixture/parsafety/multipkg/alib"
	"qtenon/internal/par"
)

// Every worker hands the whole shared slice to a mutating callee.
func Bad(shared []float64) {
	par.Do(len(shared), func(i int) {
		alib.Fill(shared, 1) // want `passes captured "shared" to Fill, which its summary shows writes through that parameter`
	})
}

// Narrowing the argument to the worker's own partition is the
// sanctioned shape.
func Partitioned(shared []float64) {
	par.Do(len(shared), func(i int) {
		alib.Fill(shared[i:i+1], 1)
	})
}

// Read-only callees need no partitioning at all.
func ReadOnly(shared []float64) []float64 {
	out := make([]float64, 4)
	par.Do(4, func(i int) {
		out[i] = alib.Sum(shared)
	})
	return out
}
