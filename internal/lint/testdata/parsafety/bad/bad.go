// Package fixture exercises every write class the parsafety analyzer
// reports: concurrent closures touching state that is not partitioned
// by their own index parameters.
package fixture

import "qtenon/internal/par"

var global int

// An unsynchronized scalar accumulation is the classic nondeterministic
// reduction.
func captureScalar(out, vals []float64) {
	sum := 0.0
	par.For(len(vals), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			sum += vals[k] // want `writes captured variable "sum"`
		}
	})
	out[0] = sum
}

// Writing a fixed element from every worker races even though it is a
// slice store.
func fixedIndex(out []float64) {
	par.Do(len(out), func(i int) {
		out[0] = float64(i) // want `writes through captured "out" without a partition index`
	})
}

// Concurrent map writes race regardless of key partitioning.
func mapWrite(m map[int]int) {
	par.Do(8, func(i int) {
		m[i] = i // want `writes captured map "m"`
	})
}

// A bare go statement is held to the same discipline as the par
// executors.
func goStmtWrite(done chan struct{}) {
	total := 0
	go func() {
		total++ // want `writes captured variable "total"`
		close(done)
	}()
	<-done
	_ = total
}

// Package-level state is captured state too.
func globalWrite() {
	par.Do(4, func(i int) {
		global = i // want `writes captured variable "global"`
	})
}

// scale writes every element of dst; its summary carries the mutation
// to the call site inside the closure.
func scale(dst []float64, f float64) {
	for i := range dst {
		dst[i] *= f
	}
}

// Handing the whole captured slice to a mutating callee is an
// un-partitioned write one call deep.
func wholeSliceToMutator(out []float64) {
	par.Do(len(out), func(i int) {
		scale(out, 2) // want `passes captured "out" to scale, which its summary shows writes through that parameter`
	})
}
