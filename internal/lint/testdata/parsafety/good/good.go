// Package fixture holds the sanctioned concurrent-write idioms the
// parsafety analyzer must stay silent on.
package fixture

import "qtenon/internal/par"

// The chunk idiom: k is derived from the partition bounds, so out[k] is
// a partitioned write.
func partitioned(out, vals []float64) {
	par.For(len(vals), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out[k] = vals[k] * 2
		}
	})
}

// Chunk-local accumulation merged by the executor's deterministic
// reduction.
func chunkLocal(vals []float64) float64 {
	return par.SumFloat64(len(vals), func(lo, hi int) float64 {
		acc := 0.0
		for k := lo; k < hi; k++ {
			acc += vals[k]
		}
		return acc
	})
}

// An index derived through a local still partitions.
func derivedIndex(out []float64) {
	par.Do(len(out), func(i int) {
		j := i + 1
		out[j-1] = 1
	})
}

// DoScratch's slot parameter partitions the scratch table; rebinding a
// slot's buffer to a closure-local and writing through it is the
// documented scratch idiom.
func slotScratch(scratch [][]float64, vals []float64) {
	par.DoScratch(len(vals), len(scratch), func(slot, i int) {
		buf := scratch[slot]
		buf[0] += vals[i]
	})
}

func fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

func set(dst []float64, i int, v float64) { dst[i] = v }

// A mutating callee is fine when its argument is narrowed to the
// closure's partition…
func partitionedCallee(out []float64) {
	par.For(len(out), func(lo, hi int) {
		fill(out[lo:hi], 1)
	})
}

// …or when the callee is steered by the partition index itself.
func steeredCallee(out []float64) {
	par.Do(len(out), func(i int) {
		set(out, i, 1)
	})
}

// The slot-parameter go idiom: each writer owns the index it was
// launched with.
func pairEval(eval func() float64) (float64, float64) {
	var vals [2]float64
	done := make(chan struct{})
	go func(slot int) {
		vals[slot] = eval()
		close(done)
	}(0)
	vals[1] = eval()
	<-done
	return vals[0], vals[1]
}
