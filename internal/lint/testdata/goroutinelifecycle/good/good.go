// Package good carries the sanctioned goroutine shapes: Done-balanced
// joins, cancellation selects, sentinel returns, ranges over channels
// the owner closes, and bounded bodies — each a termination witness
// goroutinelifecycle accepts (DESIGN.md §15.1).
package good

import "sync"

// queue is closed by its owner at shutdown, which is what gives
// PumpAll's range its seam.
var queue = make(chan int, 8)

// FanOut joins every spawn through the WaitGroup.
func FanOut(n int, out []float64) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = float64(i)
		}(i)
	}
	//lint:ignore ctxflow bounded join — every spawned body Dones unconditionally via defer (DESIGN.md §15.4)
	wg.Wait()
}

// Watch winds down through the cancellation case.
func Watch(done chan struct{}, events chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case e := <-events:
				_ = e
			}
		}
	}()
}

// Drain stops on the sentinel value.
func Drain(c chan int) {
	go func() {
		for v := range c {
			if v < 0 {
				return
			}
		}
	}()
}

// PumpAll ranges over the package-level queue, which CloseQueue closes
// — the program-wide close witness is the seam.
func PumpAll() {
	go func() {
		for v := range queue {
			_ = v
		}
	}()
}

// CloseQueue is the owner-side shutdown that terminates PumpAll.
func CloseQueue() {
	close(queue)
}

// FireBounded spawns a body with no loops and no blocking ops: it runs
// off the end, which is its own witness.
func FireBounded() {
	go func() {
		_ = 1 + 1
	}()
}

// tick is bounded, so spawning it by name is fine too.
func tick() {}

// FireNamed spawns a bounded named callee.
func FireNamed() {
	go tick()
}
