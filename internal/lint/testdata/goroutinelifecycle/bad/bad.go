// Package bad seeds the goroutine-leak shapes goroutinelifecycle
// exists to flag: a fire-and-forget range over a channel nothing
// closes, a spin loop with no exit, and a bare blocking receive with no
// join — each the daemon-drowning leak DESIGN.md §15.1 describes.
package bad

// SpawnWorker leaks: the worker ranges over jobs, no in-program
// function ever closes jobs, and the body never returns.
func SpawnWorker(jobs chan int) {
	go func() { // want `goroutine has no termination witness — .*ranges over channel jobs, which no in-program function closes`
		for j := range jobs {
			_ = j
		}
	}()
}

// SpinForever leaks through the named callee's summary.
func SpinForever() {
	go spin() // want `go spin has no termination witness — .*for-loop with no exit path`
}

// spin never exits; whether that is a leak is judged at the spawn.
func spin() {
	for {
	}
}

// WaitForever leaks: a bare receive with no join and no seam.
func WaitForever(c chan int) {
	go func() { // want `goroutine has no termination witness — .*no join, and channel receive outside select`
		<-c
	}()
}
