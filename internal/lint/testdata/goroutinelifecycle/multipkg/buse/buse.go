// Package buse exercises goroutinelifecycle's interprocedural leg: the
// spawned callee's termination verdict comes only from alib's
// summaries.
package buse

import "qtenon/fixture/goroutinelifecycle/multipkg/alib"

// SpawnBad leaks: Worker's summary carries the leak witness.
func SpawnBad(jobs chan int) {
	go alib.Worker(jobs) // want `go Worker has no termination witness — .*ranges over channel jobs, which no in-program function closes`
}

// SpawnGood is clean: Sentinel's summary carries a seam.
func SpawnGood(jobs chan int) {
	go alib.Sentinel(jobs)
}
