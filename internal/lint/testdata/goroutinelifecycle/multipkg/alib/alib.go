// Package alib is the dependency side of the cross-package
// goroutinelifecycle fixture: whether a worker leaks is judged at the
// spawn site in the sibling package, through the summary alone.
package alib

// Worker drains jobs with no termination seam of its own; the verdict
// belongs to whoever spawns it.
func Worker(jobs chan int) {
	for j := range jobs {
		_ = j
	}
}

// Sentinel stops on a negative value — a termination seam visible in
// its summary across the package boundary.
func Sentinel(jobs chan int) {
	for j := range jobs {
		if j < 0 {
			return
		}
	}
}
