// Package fixture holds the scratch hand-off shapes deepscratch must
// accept: borrowing callees, explicit copies, and fresh allocations.
package fixture

import "qtenon/internal/qsim"

var kept [][]float64

func sink(p []float64) { kept = append(kept, p) }

// borrow only reads its argument.
func borrow(p []float64) float64 {
	t := 0.0
	for _, v := range p {
		t += v
	}
	return t
}

// Lending scratch to a read-only callee is the whole point of the
// arena.
func goodBorrow(st *qsim.State, buf []float64) float64 {
	p := st.AppendProbabilities(buf)
	return borrow(p)
}

// An explicit copy may escape; the scratch storage stays behind.
func goodCopy(st *qsim.State, buf []float64) {
	p := st.AppendProbabilities(buf)
	c := append([]float64(nil), p...)
	sink(c)
}

// A nil dst makes the producer allocate fresh storage the caller owns
// outright — free to escape.
func goodFresh(st *qsim.State) {
	p := st.AppendProbabilities(nil)
	sink(p)
}
