// Package alib is the dependency side of the cross-package deepscratch
// fixture: whether Keep retains its parameter is visible to the sibling
// package only through Keep's summary.
package alib

var retained [][]uint64

// Keep stores s for later inspection.
func Keep(s []uint64) { retained = append(retained, s) }

// Scan only reads.
func Scan(s []uint64) int {
	n := 0
	for _, w := range s {
		n += int(w)
	}
	return n
}
