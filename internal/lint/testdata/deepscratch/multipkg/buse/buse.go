// Package buse exercises deepscratch across a package boundary: the
// sample scratch escapes through alib.Keep, whose retention is known
// only from its summary.
package buse

import (
	"math/rand"

	"qtenon/fixture/deepscratch/multipkg/alib"
	"qtenon/internal/qsim"
)

func Bad(st *qsim.State, buf []uint64, r *rand.Rand) {
	s := st.AppendSample(buf, 16, r)
	alib.Keep(s) // want `passed to Keep, which retains that parameter`
}

func Good(st *qsim.State, buf []uint64, r *rand.Rand) int {
	s := st.AppendSample(buf, 16, r)
	return alib.Scan(s)
}
