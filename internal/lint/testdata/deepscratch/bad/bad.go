// Package fixture exercises the deepscratch analyzer: scratch-backed
// buffers handed to callees whose summaries show they retain the
// parameter beyond the call.
package fixture

import "qtenon/internal/qsim"

var kept [][]float64

// sink retains its argument in package-level state.
func sink(p []float64) {
	kept = append(kept, p)
}

type holder struct{ last []float64 }

// keep retains its argument in its receiver.
func (h *holder) keep(p []float64) { h.last = p }

// publish retains its argument on a channel.
func publish(ch chan []float64, p []float64) { ch <- p }

func badGlobal(st *qsim.State, buf []float64) {
	p := st.AppendProbabilities(buf)
	sink(p) // want `passed to sink, which retains that parameter`
}

func badReceiver(h *holder, st *qsim.State, buf []float64) {
	p := st.AppendProbabilities(buf)
	h.keep(p) // want `passed to keep, which retains that parameter`
}

func badChannel(st *qsim.State, buf []float64, ch chan []float64) {
	p := st.AppendProbabilities(buf)
	publish(ch, p) // want `passed to publish, which retains that parameter`
}

// first flows its argument to its result, so w still aliases the
// scratch storage two hops from the producer.
func first(p []float64) []float64 { return p }

func badFlow(st *qsim.State, buf []float64) {
	w := first(st.AppendProbabilities(buf))
	sink(w) // want `passed to sink, which retains that parameter`
}

// A producer result passed straight into the retaining callee, no
// intermediate local.
func badDirect(st *qsim.State, buf []float64) {
	sink(st.AppendProbabilities(buf)) // want `passed to sink, which retains that parameter`
}
