// Package fixture reproduces the determinism violations the repo sweep
// removed; every flagged line must stay flagged.
package fixture

import (
	"math/rand"
	"time"
)

type config struct{ Seed int64 }

type bus struct{ rng *rand.Rand }

// newBus reproduces internal/tilelink/bus.go as it stood before the
// sweep onto qtenon/internal/rng.
func newBus(cfg config) *bus {
	return &bus{
		rng: rand.New(rand.NewSource(cfg.Seed)), // want `rand\.New constructs` `rand\.NewSource constructs`
	}
}

func draw() int {
	return rand.Int() // want `rand\.Int constructs or draws`
}

func stamp() time.Duration {
	start := time.Now()      // want `time\.Now reads the host clock`
	return time.Since(start) // want `time\.Since reads the host clock`
}

// Float accumulation over map order is non-associative: the sum's last
// ulp depends on iteration order.
func sumWeights(m map[string]float64) float64 {
	var total float64
	for _, w := range m {
		total += w // want `map iteration order is random`
	}
	return total
}

// Collecting keys without a later sort bakes random order into the
// slice.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration order is random`
	}
	return out
}
