// Package fixture holds the sanctioned counterparts of every
// determinism violation: none of these lines may be flagged.
package fixture

import (
	"sort"
	"time"

	"qtenon/internal/rng"
)

// Duration arithmetic and constants are legal; only observing the host
// clock is forbidden.
const tick = 10 * time.Millisecond

// Streams come from the internal/rng seam, explicitly seeded.
func seeded(seed int64) int {
	r := rng.New(seed)
	return r.Intn(10)
}

// Collect-then-sort: random iteration order is erased by the sort.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Map-index stores commute across distinct keys.
func histogram(samples map[string][]float64) map[string]int {
	counts := make(map[string]int, len(samples))
	for k, v := range samples {
		counts[k] = len(v)
	}
	return counts
}

// Integer accumulation is exact and commutative.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// delete(m, k) during iteration is order-insensitive.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Per-iteration temporaries are scoped to the body.
func anyNegative(m map[string]int) bool {
	for _, v := range m {
		neg := v < 0
		if neg {
			return true
		}
	}
	return false
}
