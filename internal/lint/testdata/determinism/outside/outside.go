//lintfixture:path example.com/outside

// Package fixture shows the determinism rules are scoped to the
// module's "qtenon" path prefix: external code checked under another
// import path is not governed, so nothing here is flagged.
package fixture

import (
	"math/rand"
	"time"
)

func now() time.Time { return time.Now() }

func draw() int { return rand.Int() }
