// Package fixture exercises the exact-float-comparison rule.
package fixture

func equalEnergy(a, b float64) bool {
	return a == b // want `exact floating-point == comparison`
}

func drifted(prev, cur float64) bool {
	return cur != prev // want `exact floating-point != comparison`
}

func sameAmplitude(x, y complex128) bool {
	return x == y // want `exact complex == comparison`
}

// One float operand is enough: the untyped constant converts.
func isUnit(norm float64) bool {
	return norm == 1.0 // want `exact floating-point == comparison`
}
