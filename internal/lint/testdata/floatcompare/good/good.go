// Package fixture holds the sanctioned float-comparison idioms: none of
// these lines may be flagged.
package fixture

import "math"

const eps = 1e-12

// approxEqual is an approved tolerance helper: its body may compare
// exactly (the a == b fast path is the helper's own business).
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= eps
}

// Self-comparison is the portable NaN test.
func isNaN(x float64) bool {
	return x != x
}

// Both sides compile-time constants: exact by construction.
func epsIsPositive() bool {
	return eps != 0
}

// Integer comparisons are untouched.
func sameShot(a, b int) bool {
	return a == b
}

// Callers go through the helper instead of comparing inline.
func converged(prev, cur float64) bool {
	return approxEqual(prev, cur)
}
