// Package fixture exercises routepurity on a /route package path:
// selection logic must not write globals or reach effect seams.
//
//lintfixture:path qtenon/fixture/routepurity/route
package fixture

import (
	"math/rand"
	"time"
)

var selections int

func Analyze(n int) int { // want `selection path Analyze writes package-level state`
	selections++
	return n * 2
}

func SelectWidth(n int) int { // want `selection path SelectWidth reaches a global-effect seam`
	if time.Now().UnixNano()%2 == 0 {
		return n
	}
	return n + 1
}

func Jitter(n int) int { // want `selection path Jitter reaches a global-effect seam`
	return n + rand.Intn(3)
}

var routeCache map[int]int

// The write-target summary carries the store through a helper.
func Cached(n int) int { // want `selection path Cached writes package-level state`
	remember(n)
	return n
}

func remember(n int) { // want `selection path remember writes package-level state`
	routeCache[n] = n
}
