// Package fixture exercises routepurity's engine dialect: only New*
// constructors are in scope, and they must be reproducible — no effect
// seams, no global writes.
//
//lintfixture:path qtenon/fixture/routepurity/engine
package fixture

import "time"

type Sim struct {
	n    int
	seed int64
}

// A constructor that derives everything from its arguments passes.
func NewSim(n int, seed int64) *Sim {
	return &Sim{n: n, seed: seed}
}

func NewSeeded(n int) *Sim { // want `engine constructor NewSeeded reaches a global-effect seam`
	return &Sim{n: n, seed: time.Now().UnixNano()}
}

var constructed int

// Non-constructor functions are out of the engine dialect's scope even
// when they write globals; other analyzers own that surface.
func Reset() {
	constructed = 0
}
