// Package fixture holds pure selection shapes: decisions computed only
// from inputs, scratch kept local. No diagnostics expected.
//
//lintfixture:path qtenon/fixture/routepurity/route
package fixture

// Pure arithmetic over the inputs.
func Analyze(gates, qubits int) int {
	if qubits < 12 {
		return 0
	}
	return gates / qubits
}

// Local scratch is fine; only package-level state is off-limits.
func SelectWidth(widths []int, budget int) int {
	best := -1
	for _, w := range widths {
		if w <= budget && w > best {
			best = w
		}
	}
	return best
}

// Reading package-level configuration is allowed; writing it is not.
var defaultWidth = 8

func Fallback(n int) int {
	if n <= 0 {
		return defaultWidth
	}
	return n
}
