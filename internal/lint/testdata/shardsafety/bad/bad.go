// Package fixture exercises the shard dialect's stricter rules. The
// path directive places it under a /shard package path, the analyzer's
// scope.
//
//lintfixture:path qtenon/fixture/shardsafety/shard
package fixture

import "qtenon/internal/par"

// A constant chunk index escapes the closure's partition.
func crossChunk(chunks [][]float64) {
	par.Do(len(chunks), func(sh int) {
		chunks[0][0] = 1 // want `writes through captured "chunks" without a partition index`
	})
}

// parsafety would exempt this call because the partition index rides
// along as an integer argument; the shard dialect drops that exemption —
// handing the whole chunk table to a mutating callee is exactly the
// cross-chunk-write bug class.
func steered(chunks [][]float64) {
	par.Do(len(chunks), func(sh int) {
		scaleAll(chunks, sh) // want `passes captured "chunks" to scaleAll, which its summary shows writes through that parameter`
	})
}

func scaleAll(chunks [][]float64, sh int) {
	for j := range chunks {
		for i := range chunks[j] {
			chunks[j][i] *= 2
		}
	}
}

var counts []int

// Package-level state escapes every chunk partition, partition index or
// not — parsafety would accept the derived index here.
func globalIndexed(chunks [][]float64) {
	par.Do(len(chunks), func(sh int) {
		counts[sh] = sh // want `writes package-level "counts"`
	})
}

var calls int

func bump() { calls++ }

// The write-target summary rejects a package-level store one call deep.
func viaCallee(chunks [][]float64) {
	par.Do(len(chunks), func(sh int) {
		bump() // want `calls bump, whose write-target summary shows a package-level store`
	})
}
