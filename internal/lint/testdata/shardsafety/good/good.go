// Package fixture holds the sanctioned shard-parallel shapes: per-chunk
// writes, butterfly chunk pairs, and partition-narrowed callee
// arguments. No diagnostics expected.
//
//lintfixture:path qtenon/fixture/shardsafety/shard
package fixture

import "qtenon/internal/par"

// Each worker writes only its own chunk.
func perChunk(chunks [][]float64, v float64) {
	par.Do(len(chunks), func(sh int) {
		c := chunks[sh]
		for i := range c {
			c[i] = v
		}
	})
}

// The cross-shard butterfly: s and s1 = s|bit are both computed from
// the partition index, so the pair of chunks is the worker's partition.
func butterfly(chunks [][]float64, bit int) {
	par.Do(len(chunks)/2, func(s0 int) {
		low := s0 & (bit - 1)
		s := low | (s0&^(bit-1))<<1
		s1 := s | bit
		a, b := chunks[s], chunks[s1]
		for i := range a {
			a[i], b[i] = b[i], a[i]
		}
	})
}

// Narrowing the argument to the worker's own chunk keeps the mutating
// callee inside the partition.
func narrowed(chunks [][]float64) {
	par.Do(len(chunks), func(sh int) {
		fill(chunks[sh], 1)
	})
}

func fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// Chunk-local partial sums folded after the join are the deterministic
// reduction shape.
func expectation(chunks [][]float64, partial []float64) float64 {
	par.Do(len(chunks), func(sh int) {
		var e float64
		for _, v := range chunks[sh] {
			e += v * v
		}
		partial[sh] = e
	})
	var sum float64
	for _, v := range partial {
		sum += v
	}
	return sum
}
