package fixture

import "math"

// This file carries no //qtenon:hotpath function, so bitexact does not
// apply to it: FMA in cold analysis code is legitimate.
func coldFMA(a, b, c float64) float64 { return math.FMA(a, b, c) }
