// Package fixture holds the sanctioned bit-exact shapes: recorded
// product pairings, chunk-ordered reductions, deterministic iteration.
// No diagnostics expected.
package fixture

import "qtenon/internal/par"

//qtenon:hotpath
func kernel(re, im []float64, c, s float64) {
	for i := range re {
		re[i], im[i] = (c*re[i] - s*im[i]), (c*im[i] + s*re[i])
	}
}

// The recorded expression shape: products paired in explicit
// parentheses, so the association is pinned in the source.
func paired(a, b, c, d, e, f, g, h float64) float64 {
	return (a*b - c*d) + (e*f - g*h)
}

// Chunk-ordered reduction through par is the deterministic fold.
func reduced(vals []float64) float64 {
	return par.SumFloat64(len(vals), func(lo, hi int) float64 {
		var t float64
		for i := lo; i < hi; i++ {
			t += vals[i]
		}
		return t
	})
}

// Slice iteration order is deterministic; accumulating over it is fine.
func sliceAccum(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum
}
