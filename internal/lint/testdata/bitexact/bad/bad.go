// Package fixture exercises every construct bitexact flags inside a
// kernel file (the //qtenon:hotpath annotation below puts this file in
// scope).
package fixture

import (
	"math"

	"qtenon/internal/par"
)

//qtenon:hotpath
func kernel(re, im []float64, c, s float64) {
	for i := range re {
		re[i], im[i] = (c*re[i] - s*im[i]), (c*im[i] + s*re[i])
	}
}

func fused(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want `math.FMA fuses the multiply-add rounding step`
}

func mapAccum(weights map[int]float64) float64 {
	var sum float64
	for _, w := range weights {
		sum += w // want `float accumulation over map iteration`
	}
	return sum
}

func schedOrdered(vals []float64) float64 {
	var total float64
	par.For(len(vals), func(lo, hi int) {
		var t float64
		for i := lo; i < hi; i++ {
			t += vals[i]
		}
		total += t // want `float reduction inside a par.For closure`
	})
	return total
}

func reassociated(a, b, c, d, e, f float64) float64 {
	return a*b - c*d + e*f // want `additive chain over 3 multiplicative terms`
}
