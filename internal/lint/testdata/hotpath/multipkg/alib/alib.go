// Package alib is the dependency side of the cross-package hotpath
// fixture: whether its functions allocate is known to the sibling
// package only through their allocation summaries.
package alib

// Scale multiplies in place; provably allocation-free.
func Scale(dst []float64, v float64) {
	for i := range dst {
		dst[i] *= v
	}
}

// Copied returns a fresh copy — an allocation the summary records.
func Copied(src []float64) []float64 {
	out := make([]float64, len(src))
	copy(out, src)
	return out
}
