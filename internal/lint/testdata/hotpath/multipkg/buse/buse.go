// Package buse exercises hotpath's interprocedural leg across a
// package boundary: alib's allocation behaviour is visible only through
// its function summaries.
package buse

import "qtenon/fixture/hotpath/multipkg/alib"

//qtenon:hotpath
func Good(dst []float64) {
	alib.Scale(dst, 2)
}

//qtenon:hotpath
func Bad(src []float64) []float64 {
	return alib.Copied(src) // want `calls Copied, which is not allocation-free`
}
