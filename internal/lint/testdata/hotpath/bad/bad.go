// Package fixture exercises every allocation class the hotpath
// analyzer reports inside //qtenon:hotpath-annotated functions.
package fixture

import "fmt"

var sink func()

//qtenon:hotpath
func makes(n int) []float64 {
	return make([]float64, n) // want `make allocates`
}

//qtenon:hotpath
func news() *int {
	return new(int) // want `new allocates`
}

//qtenon:hotpath
func localSelfAppend(dst []float64, v float64) []float64 {
	dst = append(dst, v) // want `growing append may reallocate the backing array`
	return dst
}

//qtenon:hotpath
func mapStore(m map[int]int, k int) {
	m[k] = 1 // want `map assignment allocates buckets`
}

//qtenon:hotpath
func sliceLit() []int {
	s := []int{1, 2, 3} // want `composite literal allocates backing storage`
	return s
}

type pair struct{ a, b float64 }

//qtenon:hotpath
func addrLit(x float64) *pair {
	return &pair{a: x} // want `address-taken composite literal allocates`
}

//qtenon:hotpath
func escapes(x int) {
	sink = func() { _ = x } // want `function literal escapes the frame`
}

//qtenon:hotpath
func launches(ch chan int) {
	go func() { ch <- 1 }() // want `go statement allocates a goroutine`
}

//qtenon:hotpath
func converts(b []byte) string {
	return string(b) // want `string/byte-slice conversion copies and allocates`
}

//qtenon:hotpath
func concats(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//qtenon:hotpath
func boxesReturn(v float64) any {
	return v // want `interface boxing: returning float64`
}

//qtenon:hotpath
func boxesArg(v float64) {
	fmt.Println(v) // want `interface boxing: passing float64` `calls Println, which has no alloc-free summary`
}

func helper(n int) []int { return make([]int, n) }

//qtenon:hotpath
func callsAllocating(n int) {
	_ = helper(n) // want `calls helper, which is not allocation-free`
}
