// Package fixture holds hot-path shapes the analyzer must accept: the
// arena idiom's cold-path exemptions, stack-allocatable constructs, and
// calls with alloc-free summaries. No diagnostics expected.
package fixture

import (
	"fmt"
	"math"

	"qtenon/internal/par"
)

type arena struct{ buf []float64 }

// Field-rooted self-append is the arena-recycle idiom: amortized growth
// of owned scratch.
//
//qtenon:hotpath
func (a *arena) push(v float64) {
	a.buf = append(a.buf, v)
}

// The growFloat64 shape: everything after a cap-guarded early return is
// the cold reallocation path.
//
//qtenon:hotpath
func capGuardedGrow(dst []float64, n int) []float64 {
	if n <= cap(dst) {
		return dst[:n]
	}
	return make([]float64, n)
}

// A nil-guarded block is first-use initialization, not steady state.
//
//qtenon:hotpath
func nilGuarded(s []float64) []float64 {
	if s == nil {
		s = make([]float64, 8)
	}
	return s
}

// Plain float kernel: in-place, branch-free, provably alloc-free.
//
//qtenon:hotpath
func kernel(re, im []float64, c, s float64) {
	for i := range re {
		re[i], im[i] = (c*re[i] - s*im[i]), (c*im[i] + s*re[i])
	}
}

// Array literals live on the stack; only slice/map literals allocate.
//
//qtenon:hotpath
func stackArray(x float64) float64 {
	u := [4]float64{x, 0, 0, x}
	return u[0] + u[3]
}

// Calling a proven-alloc-free sibling inherits its summary.
//
//qtenon:hotpath
func callsProven(re, im []float64, c, s float64) {
	kernel(re, im, c, s)
}

// math is on the external alloc-free allowlist.
//
//qtenon:hotpath
func usesMath(x float64) float64 { return math.Sqrt(x) }

// The par executors are the sanctioned fan-out: their closure argument
// does not escape and their bounded dispatch cost is curated.
//
//qtenon:hotpath
func fansOut(out []float64) {
	par.For(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i)
		}
	})
}

//qtenon:hotpath
func reduces(vals []float64) float64 {
	return par.SumFloat64(len(vals), func(lo, hi int) float64 {
		var t float64
		for i := lo; i < hi; i++ {
			t += vals[i]
		}
		return t
	})
}

// Operands returned in error-typed result positions are the failing
// path; their construction is not hot-path work.
//
//qtenon:hotpath
func errPath(dst []float64, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("hotpath fixture: negative length %d", n)
	}
	return dst[:0], nil
}

// Panic arguments are the crash path.
//
//qtenon:hotpath
func guarded(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("hotpath fixture: bad length %d", n))
	}
	return n
}
