// Package fixture exercises every escape class the scratcharena
// analyzer reports: scratch-API results with recycled destinations
// leaving the calling frame.
package fixture

import (
	"math/rand"

	"qtenon/internal/qsim"
)

type cache struct {
	probs []float64
	last  []float64
}

// Returning the producer call directly hands recycled storage to the
// caller.
func escapeReturn(st *qsim.State, buf []float64) []float64 {
	return st.AppendProbabilities(buf) // want `returned from escapeReturn \(produced by AppendProbabilities\)`
}

// Returning a variable bound to scratch is the same escape one hop
// later.
func escapeVar(st *qsim.State, buf []float64) []float64 {
	p := st.AppendProbabilities(buf)
	return p // want `returned from escapeVar \(aliases "buf"\)`
}

// Storing the result over a different field aliases two fields to one
// backing array.
func escapeField(c *cache, st *qsim.State) {
	c.last = st.AppendProbabilities(c.probs[:0]) // want `stored into "c\.last" which is not its recycled destination "c\.probs"`
}

// A closure that captures scratch outlives the frame that owns it.
func escapeClosure(st *qsim.State, buf []uint64, r *rand.Rand, run func(func())) {
	s := st.AppendSample(buf, 8, r)
	run(func() { // want `captured by a function literal \(aliases "buf"\)`
		_ = s[0]
	})
}

// Sending scratch on a channel publishes it to another goroutine's
// timeline.
func escapeChannel(st *qsim.State, buf []float64, ch chan []float64) {
	p := st.AppendProbabilities(buf)
	ch <- p // want `sent on a channel`
}
