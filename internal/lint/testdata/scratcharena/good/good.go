// Package fixture holds the sanctioned scratch-buffer idioms: none of
// these lines may be flagged.
package fixture

import "qtenon/internal/qsim"

type cache struct {
	probs []float64
}

// Store-back: recycling a slice over its own destination is the
// repo-wide idiom the analyzer blesses.
func storeBack(c *cache, st *qsim.State) {
	c.probs = st.AppendProbabilities(c.probs[:0])
}

// A nil destination allocates fresh, caller-owned storage.
func fresh(st *qsim.State) []float64 {
	return st.AppendProbabilities(nil)
}

// So does an explicit make.
func freshMake(st *qsim.State) []float64 {
	return st.AppendProbabilities(make([]float64, 0, 64))
}

// Consuming scratch locally and returning a scalar derived from it is
// fine: scalars do not alias the arena.
func consume(st *qsim.State, buf []float64) float64 {
	p := st.AppendProbabilities(buf)
	var sum float64
	for _, v := range p {
		sum += v
	}
	return sum
}

// Overwriting the variable with a copy ends the aliasing.
func rebindCopy(st *qsim.State, buf []float64) []float64 {
	p := st.AppendProbabilities(buf)
	use(p)
	p = append([]float64(nil), p...)
	return p
}

// Functions that are themselves links in a recycling chain (append* /
// *Reuse naming) hand the dst contract to their caller.
func appendNormalized(dst []float64, st *qsim.State) []float64 {
	return st.AppendProbabilities(dst)
}

func use([]float64) {}
