// Package fixture holds the sanctioned unit-bridging idioms the
// unitflow analyzer must stay silent on.
package fixture

import "qtenon/internal/sim"

// Cycle counts cross into time through the Clock bridges.
func goodCycles(clk sim.Clock, d sim.Time) sim.Time {
	return clk.Cycles(clk.CyclesIn(d))
}

// Fractional counts (instructions over IPC) go through CyclesFloat.
func goodFloat(clk sim.Clock, instructions int64, ipc float64) sim.Time {
	return clk.CyclesFloat(float64(instructions) / ipc)
}

// A dimensionless count scaling a duration is ordinary arithmetic.
func goodCount(n int) sim.Time {
	return sim.Time(n) * sim.Nanosecond
}

// Wall-clock literals enter through FromNanoseconds.
func goodNs() sim.Time {
	return sim.FromNanoseconds(12.5)
}

func wait(ps int64) sim.Time { return sim.Time(ps) }

// Picoseconds into a picosecond parameter.
func goodCall(t sim.Time) sim.Time {
	return wait(int64(t))
}
