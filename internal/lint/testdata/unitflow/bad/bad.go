// Package fixture exercises the unitflow analyzer's three rules: raw
// cycle counts reinterpreted as picoseconds, arithmetic mixing unit
// domains, and call arguments whose domain contradicts the callee's.
package fixture

import "qtenon/internal/sim"

// A cycle count obtained from the clock, fed straight back into
// sim.Time — off by a factor of the clock period.
func badConvert(clk sim.Clock, d sim.Time) sim.Time {
	cycles := clk.CyclesIn(d)
	return sim.Time(cycles) // want `sim\.Time\(cycles\) reinterprets a cycles value as picoseconds`
}

// The name alone declares the unit; usage evidence must not talk the
// analyzer out of the diagnostic.
func badName(busCycles int64) sim.Time {
	return sim.Time(busCycles) // want `reinterprets a cycles value as picoseconds`
}

// Adding a tick count to a rate has no unit this code can name.
func badMix(clk sim.Clock, d sim.Time) int64 {
	return clk.CyclesIn(d) + clk.Hz() // want `mixes .* \(cycles\) with .* \(Hz\)`
}

// Scaling a fractional cycle count by the period by hand — the shape
// Clock.CyclesFloat exists to replace.
func badScale(clk sim.Clock, instructions int64, ipc float64) sim.Time {
	cycles := float64(instructions) / ipc
	return sim.Time(cycles * float64(clk.Period())) // want `mixes .* \(cycles\) with .* \(picoseconds\)`
}

// Feeding a frequency into the cycle bridge.
func badBridge(clk sim.Clock) sim.Time {
	return clk.Cycles(clk.Hz()) // want `Clock\.Cycles expects a cycle count but .* carries Hz`
}

// wait's parameter is picoseconds by name; its summary carries that
// contract to call sites.
func wait(ps int64) sim.Time { return sim.Time(ps) }

func badCall(clk sim.Clock, d sim.Time) sim.Time {
	return wait(clk.CyclesIn(d)) // want `wait expects picoseconds for this parameter but .* carries cycles`
}
