// Package buse exercises unitflow across a package boundary: the cycle
// result of alib.SpanCycles meeting the picosecond parameter of
// alib.Wait is visible only through their summaries.
package buse

import (
	"qtenon/fixture/unitflow/multipkg/alib"
	"qtenon/internal/sim"
)

func Bad(clk sim.Clock, d sim.Time) sim.Time {
	return alib.Wait(alib.SpanCycles(clk, d)) // want `Wait expects picoseconds for this parameter but .* carries cycles`
}

func Good(t sim.Time) sim.Time {
	return alib.Wait(int64(t))
}
