// Package alib is the dependency side of the cross-package unitflow
// fixture: the unit contracts of its exported functions travel to the
// sibling package only through their summaries.
package alib

import "qtenon/internal/sim"

// Wait converts a raw picosecond count — the unit its parameter name
// declares — to sim.Time.
func Wait(ps int64) sim.Time { return sim.Time(ps) }

// SpanCycles reports how many ticks of clk fit in d; both its name and
// its body mark the result as a cycle count.
func SpanCycles(clk sim.Clock, d sim.Time) int64 { return clk.CyclesIn(d) }
