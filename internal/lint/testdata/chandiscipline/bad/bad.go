// Package bad seeds the channel-ownership violations chandiscipline
// flags (DESIGN.md §15.2): helper-side closes, send-after-close and
// double-close panics — direct and through a callee's summary — and an
// unguarded hot-path send on an unbuffered channel.
package bad

// CloseParam closes a channel it does not own.
func CloseParam(out chan int) {
	close(out) // want `close of channel parameter "out": channels are closed by their owner, not by helpers`
}

// SendAfterClose panics at the send.
func SendAfterClose() {
	c := make(chan int, 1)
	close(c)
	c <- 1 // want `send on channel "c", which closed at bad.go:\d+: send on closed channel panics`
}

// DoubleClose panics at the second close.
func DoubleClose() {
	c := make(chan int)
	close(c)
	close(c) // want `channel "c" closed twice \(already closed at bad.go:\d+\): double close panics`
}

// SendAfterHelperClose sees the close only through CloseParam's
// summary.
func SendAfterHelperClose() {
	c := make(chan int, 1)
	CloseParam(c)
	c <- 2 // want `send on channel "c", which may be closed by the call to CloseParam at bad.go:\d+: send on closed channel panics`
}

// KernelSend is annotated hot, so the unguarded send on a channel of
// unknown capacity is a latent kernel stall.
//
//qtenon:hotpath
func KernelSend(out chan int) {
	out <- 1 // want `hot path sends on "out" outside a select, and the channel is not provably buffered`
}
