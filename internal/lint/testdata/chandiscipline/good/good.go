// Package good carries the sanctioned channel shapes: owners closing
// their own channels after the last send, completion signalled by a
// send rather than a helper close, and hot-path sends that are either
// select-guarded or provably buffered (DESIGN.md §15.2).
package good

// OwnerCloses makes, fills, and closes its own channel — the canonical
// ownership shape.
func OwnerCloses() chan int {
	c := make(chan int, 4)
	c <- 1
	close(c)
	return c
}

// Signal reports completion with a send; the owner keeps the close.
func Signal(done chan struct{}) {
	done <- struct{}{}
}

// KernelBuffered sends on a channel traced to a positive constant
// capacity, so the hot-path send cannot stall.
//
//qtenon:hotpath
func KernelBuffered() {
	c := make(chan int, 8)
	c <- 1
	close(c)
}

// KernelSelectSend guards the hot-path send with a default arm.
//
//qtenon:hotpath
func KernelSelectSend(out chan int) {
	select {
	case out <- 1:
	default:
	}
}
