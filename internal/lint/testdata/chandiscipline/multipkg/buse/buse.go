// Package buse exercises chandiscipline's interprocedural leg: the
// send-after-close is visible only because alib.CloseIt's summary says
// it may close its argument.
package buse

import "qtenon/fixture/chandiscipline/multipkg/alib"

// SendAfter panics at the send if CloseIt ran.
func SendAfter() {
	c := make(chan int, 1)
	alib.CloseIt(c)
	c <- 1 // want `send on channel "c", which may be closed by the call to CloseIt at buse.go:\d+: send on closed channel panics`
}

// ReadAfter only receives, which drains fine after a close.
func ReadAfter() int {
	c := make(chan int, 1)
	c <- 7
	alib.CloseIt(c)
	return <-c
}
