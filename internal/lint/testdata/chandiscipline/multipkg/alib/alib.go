// Package alib is the dependency side of the cross-package
// chandiscipline fixture: CloseIt's close effect travels to the sibling
// package only through its chanCloses summary bit.
package alib

// CloseIt closes its argument on behalf of the caller — the ownership
// inversion chandiscipline exists to flag.
func CloseIt(ch chan int) {
	close(ch) // want `close of channel parameter "ch": channels are closed by their owner, not by helpers`
}
