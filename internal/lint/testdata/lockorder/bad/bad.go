// Package bad seeds the AB/BA deadlock lockorder exists to catch
// (DESIGN.md §15.3): two functions acquiring the same package-level
// mutexes in opposite orders.
package bad

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// ABPath acquires muB while holding muA.
func ABPath() {
	muA.Lock()
	muB.Lock() // want `lock order cycle between fixture/lockorder/bad.muA and fixture/lockorder/bad.muB`
	muB.Unlock()
	muA.Unlock()
}

// BAPath acquires muA while holding muB — the reverse ordering that
// closes the cycle.
func BAPath() {
	muB.Lock()
	muA.Lock() // want `lock order cycle between fixture/lockorder/bad.muB and fixture/lockorder/bad.muA`
	muA.Unlock()
	muB.Unlock()
}
