// Package buse closes the lock cycle across the package boundary: it
// holds alib.MuA while calling a function whose summary acquires
// alib.MuB — an edge no single-package view can see.
package buse

import "qtenon/fixture/lockorder/multipkg/alib"

// AThenCall holds MuA across a call that (transitively) takes MuB.
func AThenCall() {
	alib.MuA.Lock()
	alib.BThenA() // want `lock order cycle between fixture/lockorder/multipkg/alib.MuA and fixture/lockorder/multipkg/alib.MuB`
	alib.MuA.Unlock()
}
