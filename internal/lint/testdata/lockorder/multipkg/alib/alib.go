// Package alib is the dependency side of the cross-package lockorder
// fixture: it encodes the B-before-A ordering, and exports both locks
// so the sibling package can close the cycle from the other direction.
package alib

import "sync"

var (
	// MuA and MuB are the shared lock classes of the fixture.
	MuA sync.Mutex
	MuB sync.Mutex
)

// BThenA acquires MuA while holding MuB — one half of the cycle,
// witnessed inside this package.
func BThenA() {
	MuB.Lock()
	MuA.Lock() // want `lock order cycle between fixture/lockorder/multipkg/alib.MuB and fixture/lockorder/multipkg/alib.MuA`
	MuA.Unlock()
	MuB.Unlock()
}
