// Package good keeps a consistent acquisition order, so the lock graph
// stays acyclic no matter how many functions touch the locks
// (DESIGN.md §15.3).
package good

import "sync"

var (
	outer sync.Mutex
	inner sync.Mutex
)

// registry shows the named-field lock class: every instance shares one
// identity, and the order against the package locks stays consistent.
type registry struct {
	mu    sync.Mutex
	items map[string]int
}

// Nested always takes outer before inner.
func Nested() {
	outer.Lock()
	defer outer.Unlock()
	inner.Lock()
	defer inner.Unlock()
}

// NestedAgain repeats the same order — same edge, no cycle.
func NestedAgain() int {
	outer.Lock()
	defer outer.Unlock()
	inner.Lock()
	defer inner.Unlock()
	return 1
}

// InnerAlone takes the inner lock without the outer — no edge at all.
func InnerAlone() {
	inner.Lock()
	inner.Unlock()
}

// Add orders the field lock after the package locks, consistently.
func (r *registry) Add(k string, v int) {
	outer.Lock()
	defer outer.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.items == nil {
		r.items = map[string]int{}
	}
	r.items[k] = v
}
