package lint

import (
	"go/ast"
	"go/types"
)

const metricsPkgPath = "qtenon/internal/metrics"

// instrumentTypes are the metrics handles whose nil-safety contract
// (DESIGN.md §9.3) depends on construction through a Registry: code
// holds *Counter/*Gauge/*Timer obtained from Registry.Counter et al.,
// where a nil registry hands out nil handles and every method is a
// nil-safe no-op. A raw struct literal or value-typed instrument
// sidesteps the registry, so the instrument is invisible to Snapshot and
// the "instrumented code never nil-checks" discipline silently erodes.
var instrumentTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Timer": true,
}

// MetricsDiscipline requires metrics instruments to come from registry
// constructors: outside the metrics package itself it flags composite
// literals (metrics.Counter{}, &metrics.Timer{…}), new(metrics.Gauge),
// and value-typed instrument variables or struct fields.
var MetricsDiscipline = &Analyzer{
	Name:   "metricsdiscipline",
	Design: "§7, §9",
	Doc:    "require metrics instruments to be obtained from a Registry, never raw literals",
	Run:    runMetricsDiscipline,
}

func runMetricsDiscipline(pass *Pass) error {
	if pass.Pkg.Path() == metricsPkgPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if name, ok := instrumentNamed(pass.TypeOf(n)); ok {
					pass.Reportf(n.Pos(),
						"metrics.%s constructed as a raw literal bypasses the registry: obtain it from (*metrics.Registry).%s so it is named, snapshotted, and nil-safe", name, name)
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
						if name, ok := instrumentNamed(pass.TypeOf(n.Args[0])); ok {
							pass.Reportf(n.Pos(),
								"new(metrics.%s) bypasses the registry: obtain the instrument from (*metrics.Registry).%s", name, name)
						}
					}
				}
			case *ast.Field:
				checkInstrumentDecl(pass, n.Type, "field")
			case *ast.ValueSpec:
				if n.Type != nil {
					checkInstrumentDecl(pass, n.Type, "variable")
				}
			}
			return true
		})
	}
	return nil
}

// checkInstrumentDecl flags declarations whose type is a value (not
// pointer) instrument.
func checkInstrumentDecl(pass *Pass, typeExpr ast.Expr, kind string) {
	t := pass.TypeOf(typeExpr)
	if t == nil {
		return
	}
	if name, ok := instrumentNamed(t); ok {
		pass.Reportf(typeExpr.Pos(),
			"%s of value type metrics.%s cannot be registry-managed: declare *metrics.%s and attach it from a Registry (nil handles are valid no-ops)", kind, name, name)
	}
}

// instrumentNamed reports whether t is (exactly) one of the metrics
// instrument named types — not a pointer to one.
func instrumentNamed(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != metricsPkgPath || !instrumentTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}
