package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BitExact guards the bit-for-bit cross-engine equivalence contract
// (DESIGN.md §11–§13, §14.2) inside kernel files — files containing at
// least one //qtenon:hotpath function. Every engine is fuzzed `==`
// against the dense reference, so a kernel rewrite that is merely
// mathematically equivalent (but rounds differently) breaks goldens and
// the shard/tableau equivalence suites. Flagged constructs:
//
//   - math.FMA: fuses the multiply-add rounding step, diverging from
//     the separately-rounded expression every other engine evaluates;
//   - float/complex accumulation over map iteration: map order is
//     randomized per run, and float addition does not commute in bits;
//   - float/complex accumulation into captured state inside a par.For /
//     par.Do closure: the reduction order follows goroutine scheduling;
//     route reductions through par.SumFloat64/SumComplex, whose
//     chunk-ordered fold is deterministic;
//   - unparenthesized additive chains over ≥3 multiplicative terms
//     (a*b − c*d + e*f …): the recorded kernel shape pairs the re/im
//     products explicitly — (a*b − c*d) + (e*f − g*h) — so a rewrite
//     that reassociates is visible in the diff. Adding the explicit
//     parentheses matching Go's left-associative evaluation is
//     bit-identical and silences the finding.
var BitExact = &Analyzer{
	Name:   "bitexact",
	Doc:    "flag rounding- and order-sensitive constructs in hotpath kernel files",
	Design: "§14.2",
	Run:    runBitExact,
}

func runBitExact(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	for _, file := range pass.Files {
		if !hotpathFile(file) {
			continue
		}
		be := &bitExact{pass: pass, chains: map[ast.Node]bool{}}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkg, name, ok := pass.PkgFunc(n); ok && pkg == "math" && name == "FMA" {
					pass.Reportf(n.Pos(), "math.FMA fuses the multiply-add rounding step; kernels must round like the dense reference (DESIGN.md §14.2)")
				}
				if name, ok := parExecutorCall(pass, n); ok && (name == "For" || name == "Do" || name == "DoScratch") {
					for _, arg := range n.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							be.checkClosureAccum(lit, "par."+name)
						}
					}
				}
			case *ast.RangeStmt:
				be.checkMapRangeAccum(n)
			case *ast.BinaryExpr:
				be.checkChain(n)
			}
			return true
		})
	}
	return nil
}

type bitExact struct {
	pass *Pass
	// chains marks BinaryExprs already counted as part of a maximal
	// additive chain, so nested sub-chains report once.
	chains map[ast.Node]bool
}

func (be *bitExact) isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// floatAccum reports whether stmt accumulates into a float/complex
// lvalue: `x += e`, `x -= e`, or `x = x + e`-shaped self-reference.
func (be *bitExact) floatAccum(stmt ast.Stmt) (token.Pos, bool) {
	a, ok := stmt.(*ast.AssignStmt)
	if !ok || len(a.Lhs) != 1 {
		return token.NoPos, false
	}
	if !be.isFloatish(be.pass.TypeOf(a.Lhs[0])) {
		return token.NoPos, false
	}
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return a.Pos(), true
	case token.ASSIGN:
		lhs := exprString(a.Lhs[0])
		if lhs == "" || len(a.Rhs) != 1 {
			return token.NoPos, false
		}
		bin, ok := ast.Unparen(a.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return token.NoPos, false
		}
		if exprString(bin.X) == lhs {
			return a.Pos(), true
		}
	}
	return token.NoPos, false
}

// checkMapRangeAccum flags float accumulation whose iteration order is
// the randomized map order.
func (be *bitExact) checkMapRangeAccum(r *ast.RangeStmt) {
	t := be.pass.TypeOf(r.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if stmt, ok := n.(ast.Stmt); ok {
			if pos, acc := be.floatAccum(stmt); acc {
				be.pass.Reportf(pos, "float accumulation over map iteration: map order is randomized, so the sum's bit pattern varies run to run (DESIGN.md §14.2)")
			}
		}
		return true
	})
}

// checkClosureAccum flags float accumulation into non-closure-local
// state inside a concurrently-executed par.For/Do closure — a reduction
// whose order follows goroutine scheduling instead of par's
// chunk-ordered fold.
func (be *bitExact) checkClosureAccum(lit *ast.FuncLit, where string) {
	isLitLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		pos, acc := be.floatAccum(stmt)
		if !acc {
			return true
		}
		a := stmt.(*ast.AssignStmt)
		// Root the accumulator: only captured targets are schedule-ordered.
		root := a.Lhs[0]
		for {
			switch x := ast.Unparen(root).(type) {
			case *ast.IndexExpr:
				root = x.X
				continue
			case *ast.SelectorExpr:
				root = x.X
				continue
			case *ast.StarExpr:
				root = x.X
				continue
			}
			break
		}
		if id, ok := ast.Unparen(root).(*ast.Ident); ok {
			if isLitLocal(be.pass.ObjectOf(id)) {
				return true // chunk-local partial: the sanctioned shape
			}
		}
		be.pass.Reportf(pos, "float reduction inside a %s closure follows goroutine scheduling; route it through par.SumFloat64/SumComplex's chunk-ordered fold (DESIGN.md §14.2)", where)
		return true
	})
}

// checkChain flags a maximal additive float/complex chain with ≥3 bare
// multiplicative leaves: the recorded kernel expression shape pairs
// products in explicit parentheses, so an unparenthesized chain is
// either a new kernel (write the pairing down) or a reassociating
// rewrite of an old one.
func (be *bitExact) checkChain(bin *ast.BinaryExpr) {
	if be.chains[bin] {
		return
	}
	if bin.Op != token.ADD && bin.Op != token.SUB {
		return
	}
	if !be.isFloatish(be.pass.TypeOf(bin)) {
		return
	}
	leaves := 0
	var mark func(e ast.Expr)
	mark = func(e ast.Expr) {
		// Deliberately do NOT unwrap ParenExpr: parentheses are the
		// recorded pairing and stop the chain.
		switch x := e.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.ADD, token.SUB:
				be.chains[x] = true
				mark(x.X)
				mark(x.Y)
				return
			case token.MUL, token.QUO:
				leaves++
				return
			}
		}
	}
	mark(bin)
	if leaves >= 3 {
		be.pass.Reportf(bin.Pos(), "additive chain over %d multiplicative terms without recorded pairing; parenthesize the (a*b − c*d) pairs so reassociation is visible (DESIGN.md §11, §14.2)", leaves)
	}
}
