package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const parPkgPath = "qtenon/internal/par"

// parExecutors are the internal/par entry points that run their closure
// argument concurrently. Their closures receive index-partition
// parameters: Do(n, func(i)), For/Sum*(n, func(lo, hi)),
// DoScratch(n, w, func(slot, i)).
var parExecutors = map[string]bool{
	"For": true, "Do": true, "DoScratch": true,
	"SumFloat64": true, "SumComplex": true,
}

// ParSafety enforces the deterministic-reduction idiom (DESIGN.md §6,
// §10): a closure handed to an internal/par executor — or launched with
// a bare go statement — runs concurrently with its siblings, so every
// write it performs must land in state partitioned by the closure's own
// index parameters (out[i] = …, chunk-local accumulation over [lo,hi))
// or in storage the closure itself created. Writes to captured
// variables, captured aggregates indexed by anything else, or captured
// maps are data races and, even when "benign", make the reduction order
// (and therefore the bit pattern of float results) depend on goroutine
// scheduling.
//
// The check is interprocedural: passing a captured value to a callee
// whose summary says it mutates that parameter is a write too, and is
// flagged unless the argument is sliced/indexed down to a partition
// (fill(buf[lo:hi], …)) or the callee is steered by a partition index
// through another argument (set(out, i, v)).
var ParSafety = &Analyzer{
	Name: "parsafety",
	Doc:  "flag concurrent closures writing non-index-partitioned captured state",
	Run:  runParSafety,
}

func runParSafety(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	if pass.Pkg.Path() == parPkgPath {
		return nil // the executors' own internals are the trusted seam
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkParClosure(pass, lit, "go statement")
				}
			case *ast.CallExpr:
				name, ok := parExecutorCall(pass, n)
				if !ok {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkParClosure(pass, lit, "par."+name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// parExecutorCall reports whether call invokes one of the internal/par
// executors, returning its name.
func parExecutorCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	pkgPath, name, ok := pass.PkgFunc(call)
	if !ok || pkgPath != parPkgPath || !parExecutors[name] {
		return "", false
	}
	return name, true
}

// checkParClosure analyzes one concurrently-executed closure. where
// names the launch site ("par.For", "go statement") for diagnostics.
func checkParClosure(pass *Pass, lit *ast.FuncLit, where string) {
	// derived starts as the closure's int parameters (the partition
	// indices) and grows with closure-locals computed from them — the
	// chunk idiom `for k := lo; k < hi; k++ { out[k] = … }` makes k a
	// partition index too.
	derived := map[types.Object]bool{}
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, name := range f.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					derived[obj] = true
				}
			}
		}
	}
	isLitLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}
	mentionsDerived := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil && derived[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// Grow the derived set: a closure-local integer assigned from an
	// expression mentioning a derived index is itself a partition index.
	// Two passes settle chains (k := lo; j := k).
	for pass2 := 0; pass2 < 2; pass2++ {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range a.Lhs {
				if len(a.Rhs) != len(a.Lhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil || !isLitLocal(obj) || derived[obj] {
					continue
				}
				if b, ok := obj.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
					continue
				}
				if mentionsDerived(a.Rhs[i]) {
					derived[obj] = true
				}
			}
			return true
		})
	}

	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		pass.Reportf(pos, "%s closure %s; concurrent closures may only write index-partitioned or closure-local state", where, fmt.Sprintf(format, args...))
	}

	// freeRoot walks a write target to its base object and reports it if
	// that base is captured from outside the closure.
	freeRoot := func(e ast.Expr) (types.Object, bool) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj := pass.ObjectOf(x)
				if obj == nil || isLitLocal(obj) {
					return nil, false
				}
				return obj, true
			case *ast.SelectorExpr:
				// A qualified identifier (pkg.Var) roots at the var; a field
				// access roots at its receiver chain.
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if _, isPkg := pass.ObjectOf(id).(*types.PkgName); isPkg {
						obj := pass.ObjectOf(x.Sel)
						if obj == nil || isLitLocal(obj) {
							return nil, false
						}
						return obj, true
					}
				}
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return nil, false
			}
		}
	}

	// anyIndexDerived reports whether some index step between the write
	// target and its root mentions a partition index.
	anyIndexDerived := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				if mentionsDerived(x.Index) {
					return true
				}
				e = x.X
			case *ast.SliceExpr:
				if mentionsDerived(x.Low) || mentionsDerived(x.High) || mentionsDerived(x.Max) {
					return true
				}
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return false
			}
		}
	}

	// isMapStore reports whether the innermost index step of the write
	// target indexes a map — always a race under concurrent writers,
	// partition index or not.
	isMapStore := func(e ast.Expr) bool {
		ix, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok {
			return false
		}
		t := pass.TypeOf(ix.X)
		if t == nil {
			return false
		}
		_, isMap := t.Underlying().(*types.Map)
		return isMap
	}

	checkWrite := func(target ast.Expr, isDefine bool) {
		switch ast.Unparen(target).(type) {
		case *ast.Ident:
			if isDefine {
				return
			}
			obj, free := freeRoot(target)
			if free {
				report(target.Pos(), "writes captured variable %q", obj.Name())
			}
		case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr, *ast.SliceExpr:
			obj, free := freeRoot(target)
			if !free {
				return
			}
			if isMapStore(target) {
				report(target.Pos(), "writes captured map %q (concurrent map writes race even when keys are partitioned)", obj.Name())
				return
			}
			if !anyIndexDerived(target) {
				report(target.Pos(), "writes through captured %q without a partition index", obj.Name())
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs, n.Tok == token.DEFINE)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X, false)
		case *ast.CallExpr:
			checkParCall(pass, n, freeRoot, anyIndexDerived, mentionsDerived, report)
		}
		return true
	})
}

// checkParCall is the interprocedural leg: a captured value handed to a
// callee that mutates it is a write from inside the closure. The call
// is exempt when the argument itself is narrowed to a partition
// (fill(buf[lo:hi])) or the callee receives a partition index through
// an integer argument (set(out, i, v)) — the repo's two documented
// fan-out shapes.
func checkParCall(pass *Pass, call *ast.CallExpr,
	freeRoot func(ast.Expr) (types.Object, bool),
	anyIndexDerived func(ast.Expr) bool,
	mentionsDerived func(ast.Expr) bool,
	report func(token.Pos, string, ...any),
) {
	callee := pass.CalleeFunc(call)
	if callee == nil {
		return
	}
	sum := pass.Prog.Summary(callee)
	if sum == nil {
		return
	}
	intArgSteered := func() bool {
		for _, arg := range call.Args {
			t := pass.TypeOf(arg)
			if t == nil {
				continue
			}
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 && mentionsDerived(arg) {
				return true
			}
		}
		return false
	}
	flagArg := func(e ast.Expr, what string) {
		obj, free := freeRoot(e)
		if !free {
			return
		}
		if anyIndexDerived(e) || intArgSteered() {
			return
		}
		report(e.Pos(), "passes captured %q to %s, which its summary shows %s", obj.Name(), callee.Name(), what)
	}
	if sum.RecvMutated() {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			flagArg(sel.X, "mutates its receiver")
		}
	}
	for i, arg := range call.Args {
		if !sum.ArgMutated(i) {
			continue
		}
		t := pass.TypeOf(arg)
		if t != nil && !typeAliases(t, 0) {
			continue // value copy; the callee mutates its own copy
		}
		flagArg(arg, "writes through that parameter")
	}
}
