package lint

import (
	"go/ast"
	"strings"
)

const parPkgPath = "qtenon/internal/par"

// parExecutors are the internal/par entry points that run their closure
// argument concurrently. Their closures receive index-partition
// parameters: Do(n, func(i)), For/Sum*(n, func(lo, hi)),
// DoScratch(n, w, func(slot, i)).
var parExecutors = map[string]bool{
	"For": true, "Do": true, "DoScratch": true,
	"SumFloat64": true, "SumComplex": true,
}

// ParSafety enforces the deterministic-reduction idiom (DESIGN.md §6,
// §10): a closure handed to an internal/par executor — or launched with
// a bare go statement — runs concurrently with its siblings, so every
// write it performs must land in state partitioned by the closure's own
// index parameters (out[i] = …, chunk-local accumulation over [lo,hi))
// or in storage the closure itself created. Writes to captured
// variables, captured aggregates indexed by anything else, or captured
// maps are data races and, even when "benign", make the reduction order
// (and therefore the bit pattern of float results) depend on goroutine
// scheduling.
//
// The check is interprocedural: passing a captured value to a callee
// whose summary says it mutates that parameter is a write too, and is
// flagged unless the argument is sliced/indexed down to a partition
// (fill(buf[lo:hi], …)) or the callee is steered by a partition index
// through another argument (set(out, i, v)).
//
// The index-partition machinery itself lives in partitionScope
// (partition.go), shared with shardsafety's stricter shard dialect.
var ParSafety = &Analyzer{
	Name:   "parsafety",
	Doc:    "flag concurrent closures writing non-index-partitioned captured state",
	Design: "§6, §10",
	Run:    runParSafety,
}

const parSafetyRule = "concurrent closures may only write index-partitioned or closure-local state"

func runParSafety(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	if pass.Pkg.Path() == parPkgPath {
		return nil // the executors' own internals are the trusted seam
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					newPartitionScope(pass, lit, "go statement", parSafetyRule, false).walk()
				}
			case *ast.CallExpr:
				name, ok := parExecutorCall(pass, n)
				if !ok {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						newPartitionScope(pass, lit, "par."+name, parSafetyRule, false).walk()
					}
				}
			}
			return true
		})
	}
	return nil
}

// parExecutorCall reports whether call invokes one of the internal/par
// executors, returning its name.
func parExecutorCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	pkgPath, name, ok := pass.PkgFunc(call)
	if !ok || pkgPath != parPkgPath || !parExecutors[name] {
		return "", false
	}
	return name, true
}
