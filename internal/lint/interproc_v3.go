package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// This file is the v3 extension of the interprocedural layer (DESIGN.md
// §14): two further per-function summary dimensions computed inside the
// same monotone fixpoint as the retain/mutate/flow bitsets.
//
//   - allocation: may this function heap-allocate in steady state,
//     transitively through its in-program callees? The hotpath analyzer
//     proves //qtenon:hotpath-annotated functions allocation-free with
//     it. Unlike the aliasing dimensions, the optimistic-inert stance
//     inverts here: an unknown callee (stdlib, export-data-only) is
//     assumed to allocate unless it is on the curated allowlists below,
//     because "probably fine" is exactly how allocations creep into a
//     hot loop.
//   - write-target: where do this function's stores land? The existing
//     mutates bitset already answers "which parameter"; the v3 fact adds
//     the bucket that escapes every partition — package-level state —
//     which shardsafety (a concurrent closure must confine writes to its
//     chunk) and routepurity (selection must not perturb any global)
//     both consume. Alongside it rides the seam dimension: transitive
//     calls into internal/rng, internal/wallclock, internal/metrics,
//     time.Now, or a math/rand package-level stream, which routepurity
//     forbids on the selection path outright.
//
// Steady-state, not literally-never: the repository's arena idiom grows
// scratch capacity on first use and recycles it forever after. The
// allocation scan therefore exempts cold-path shapes the idiom is built
// from (see coldRanges) — an if-block guarded by a nil/len/cap test or a
// build-gated boolean constant, the code after a cap-guarded early
// return, panic arguments, error-typed return operands, and the
// field-rooted self-append `x.f = append(x.f, …)`. Everything
// unconditional is an allocation site.

// allocFreePkgs are external packages whose functions are trusted not to
// heap-allocate: pure float/bit math. Everything else outside the
// program is assumed to allocate.
var allocFreePkgs = map[string]bool{
	"math":       true,
	"math/bits":  true,
	"math/cmplx": true,
}

// allocFreeFuncs are in-module functions the allocation dimension
// accepts by fiat. The internal/par executors allocate one job header
// per parallel dispatch and one partials buffer per reduction — a
// bounded, amortized-across-2¹³-element cost that is the sanctioned way
// for a hot path to fan out (DESIGN.md §6, §14); summarizing their
// bodies honestly would make every kernel "allocating" and drown the
// signal.
var allocFreeFuncs = map[string]bool{
	"qtenon/internal/par.For":        true,
	"qtenon/internal/par.Do":         true,
	"qtenon/internal/par.DoScratch":  true,
	"qtenon/internal/par.SumFloat64": true,
	"qtenon/internal/par.SumComplex": true,
	"qtenon/internal/par.Workers":    true,
}

// seamPkgs maps a package path to why calling into it taints the caller
// for routepurity.
var seamPkgs = map[string]string{
	"qtenon/internal/rng":       "the seeded-RNG seam",
	"qtenon/internal/wallclock": "the wall-clock seam",
	"qtenon/internal/metrics":   "the metrics registry",
}

// summarizeV3 folds the allocation and write-target/seam facts into
// sum; reports whether it grew. Each fact is set-once (monotone), so a
// function already proven allocating is never rescanned.
func summarizeV3(p *Program, fi *FuncInfo, sum *FuncSummary) bool {
	changed := false
	if sum.allocSite == "" {
		scanAllocSites(p, fi, func(pos token.Pos, msg string) bool {
			sum.allocSite = fmt.Sprintf("%s: %s", shortPos(fi.Pkg.Fset, pos), msg)
			changed = true
			return false // first witness is enough for the summary
		})
	}
	if sum.globalSite == "" || sum.seamSite == "" {
		scanEffects(p, fi, sum, &changed)
	}
	return changed
}

// shortPos renders pos as "file.go:line" for embedding in summaries and
// diagnostics.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// ---- allocation scanning ----

type posRange struct{ lo, hi token.Pos }

// scanAllocSites walks fi's body and reports every steady-state
// heap-allocation site: direct allocations, constructs that force one
// (interface boxing, string conversions, escaping closures, goroutines),
// and calls to callees without an alloc-free summary. Cold-path shapes
// (coldRanges) are skipped. report returns false to stop the walk.
// Shared by the summarizer (first witness) and the hotpath analyzer
// (every witness).
func scanAllocSites(prog *Program, fi *FuncInfo, report func(pos token.Pos, msg string) bool) {
	sc := &allocScan{
		prog:    prog,
		fi:      fi,
		info:    fi.Pkg.Info,
		fset:    fi.Pkg.Fset,
		exempt:  coldRanges(fi),
		allowed: map[*ast.FuncLit]bool{},
		handled: map[ast.Node]bool{},
	}
	sc.markAllowedLits(fi.Decl.Body)
	stop := false
	sc.report = func(pos token.Pos, format string, args ...any) bool {
		if !report(pos, fmt.Sprintf(format, args...)) {
			stop = true
		}
		return !stop
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if stop || n == nil {
			return false
		}
		if sc.inExempt(n.Pos()) {
			return false
		}
		return sc.visit(n)
	})
}

type allocScan struct {
	prog   *Program
	fi     *FuncInfo
	info   *types.Info
	fset   *token.FileSet
	exempt []posRange
	// allowed marks function literals that stay in the caller's frame:
	// arguments to non-retaining callees (the par executors above all),
	// deferred calls, and immediately-invoked literals.
	allowed map[*ast.FuncLit]bool
	// handled suppresses double reports: a composite literal inside &T{…}
	// is reported at the address-of site, an append inside the
	// self-append idiom is exempt.
	handled map[ast.Node]bool
	report  func(pos token.Pos, format string, args ...any) bool
}

func (sc *allocScan) inExempt(pos token.Pos) bool {
	for _, r := range sc.exempt {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}

func (sc *allocScan) typeOf(e ast.Expr) types.Type {
	if tv, ok := sc.info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := objectIn(sc.info, id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// markAllowedLits records which closure literals never outlive the
// frame. A literal handed to a callee whose summary does not retain
// that parameter (the par executors are curated non-retainers) is
// stack-allocatable; retained literals, and literals bound to variables,
// escape.
func (sc *allocScan) markAllowedLits(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				sc.allowed[lit] = true // runs inside the frame
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				sc.allowed[lit] = true // the go statement itself is the report
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				sc.allowed[lit] = true // immediately invoked
			}
			callee := calleeIn(sc.info, n)
			var sum *FuncSummary
			if callee != nil {
				sum = sc.prog.Summary(callee)
			}
			for i, arg := range n.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				if callee == nil {
					continue // through a function value: may retain
				}
				if sum != nil && sum.ArgRetained(i) {
					continue // provably escapes
				}
				// Non-retaining in-program callee, curated executor, or an
				// unknown callee (which the call check flags on its own).
				sc.allowed[lit] = true
			}
		}
		return true
	})
}

// visit classifies one node; returns whether to descend into it.
func (sc *allocScan) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.GoStmt:
		return sc.report(n.Pos(), "go statement allocates a goroutine; hot paths fan out through internal/par") && false
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				sc.handled[lit] = true
				return sc.report(n.Pos(), "address-taken composite literal allocates")
			}
		}
	case *ast.CompositeLit:
		if sc.handled[n] {
			return true
		}
		if t := sc.typeOf(n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				return sc.report(n.Pos(), "composite literal allocates backing storage")
			}
		}
	case *ast.FuncLit:
		if !sc.allowed[n] {
			return sc.report(n.Pos(), "function literal escapes the frame (closure capture allocates)") && false
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := sc.typeOf(n); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return sc.report(n.Pos(), "string concatenation allocates")
				}
			}
		}
	case *ast.AssignStmt:
		return sc.visitAssign(n)
	case *ast.ReturnStmt:
		sc.checkReturnBoxing(n)
	case *ast.CallExpr:
		return sc.visitCall(n)
	}
	return true
}

func (sc *allocScan) visitAssign(a *ast.AssignStmt) bool {
	// Field-rooted self-append `x.f = append(x.f, …)` (optionally with an
	// inline [:0] reset) is the arena-recycle idiom: amortized growth of
	// owned scratch, exempt. A plain-local self-append still flags — that
	// is exactly the seeded-violation shape the gate must catch.
	if len(a.Lhs) == 1 && len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok &&
			isBuiltinIn(sc.info, call, "append") && len(call.Args) > 0 {
			lhs := exprString(a.Lhs[0])
			dst := exprString(sliceBase(call.Args[0]))
			if lhs != "" && lhs == dst && containsDot(lhs) {
				sc.handled[call] = true
			}
		}
	}
	for i, lhs := range a.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := sc.typeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if !sc.report(lhs.Pos(), "map assignment allocates buckets") {
						return false
					}
					continue
				}
			}
		}
		// Interface boxing through assignment: a concrete non-pointer value
		// stored into an interface-typed location heap-allocates its box.
		var rhs ast.Expr
		if len(a.Rhs) == len(a.Lhs) {
			rhs = a.Rhs[i]
		}
		if rhs == nil {
			continue
		}
		if lt, rt := sc.typeOf(lhs), sc.typeOf(rhs); boxes(lt, rt) {
			if !sc.report(rhs.Pos(), "interface boxing: %s stored into %s allocates", rt, lt) {
				return false
			}
		}
	}
	return true
}

func (sc *allocScan) checkReturnBoxing(ret *ast.ReturnStmt) {
	sig := sc.fi.Func.Type().(*types.Signature)
	res := sig.Results()
	if res == nil || len(ret.Results) != res.Len() {
		return
	}
	for i, r := range ret.Results {
		if sc.inExempt(r.Pos()) {
			continue
		}
		if declT := res.At(i).Type(); boxes(declT, sc.typeOf(r)) {
			if !sc.report(r.Pos(), "interface boxing: returning %s as %s allocates", sc.typeOf(r), declT) {
				return
			}
		}
	}
}

func (sc *allocScan) visitCall(call *ast.CallExpr) bool {
	info := sc.info
	if isConversion(info, call) && len(call.Args) == 1 {
		from, to := sc.typeOf(call.Args[0]), sc.typeOf(call)
		switch {
		case stringSliceConv(from, to):
			return sc.report(call.Pos(), "string/byte-slice conversion copies and allocates")
		case boxes(to, from):
			return sc.report(call.Pos(), "interface boxing: converting %s to %s allocates", from, to)
		}
		return true
	}
	switch {
	case isBuiltinIn(info, call, "make"):
		return sc.report(call.Pos(), "make allocates")
	case isBuiltinIn(info, call, "new"):
		return sc.report(call.Pos(), "new allocates")
	case isBuiltinIn(info, call, "append"):
		if sc.handled[call] {
			return true
		}
		return sc.report(call.Pos(), "growing append may reallocate the backing array")
	case isBuiltinIn(info, call, "panic"):
		return false // crash path: its argument construction is not hot-path work
	}
	callee := calleeIn(info, call)
	if callee == nil {
		// Builtins handled above; calls through function values are
		// assumed inert like the aliasing dimensions' unknown callees —
		// the closures threaded through hot paths (opt.BatchEvaluator)
		// are themselves annotated or summarized at their definitions.
		return true
	}
	sc.checkCallBoxing(call, callee)
	if desc, alloc := calleeAllocSite(sc.prog, callee); alloc {
		return sc.report(call.Pos(), "calls %s, %s", callee.Name(), desc)
	}
	return true
}

// checkCallBoxing flags concrete non-pointer arguments passed into
// interface-typed parameters of a resolved callee.
func (sc *allocScan) checkCallBoxing(call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	np := sig.Params().Len()
	if np == 0 {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if pi >= np {
			if !sig.Variadic() {
				break
			}
			pi = np - 1
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == np-1 {
			if s, ok := pt.(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if boxes(pt, sc.typeOf(arg)) {
			if !sc.report(arg.Pos(), "interface boxing: passing %s as %s allocates", sc.typeOf(arg), pt) {
				return
			}
		}
	}
}

// calleeAllocSite reports whether calling f may allocate, with a
// description. In-program callees answer through their summaries;
// external callees are assumed to allocate unless allowlisted — the
// inverse of the aliasing dimensions' inert stance.
func calleeAllocSite(prog *Program, f *types.Func) (string, bool) {
	if o := f.Origin(); o != nil {
		f = o
	}
	name := qualifiedName(f)
	if allocFreeFuncs[name] {
		return "", false
	}
	if sum := prog.Summary(f); sum != nil {
		if sum.allocSite != "" {
			return fmt.Sprintf("which is not allocation-free (%s)", sum.allocSite), true
		}
		return "", false
	}
	if prog.Info(f) != nil {
		return "", false // curated-inert in-program callee (allocFreeFuncs/inertFuncs)
	}
	pkg := f.Pkg()
	if pkg == nil || allocFreePkgs[pkg.Path()] {
		return "", false
	}
	// An in-module callee with no summary means its package was not
	// loaded into this program (vet's one-package-per-invocation mode,
	// or a narrowed pattern). Degrade optimistically, matching the
	// aliasing dimensions' inert stance — the full-program CI run is the
	// gate that sees every qtenon summary. External packages keep the
	// pessimistic default: they never get summaries, so an unknown call
	// there is a genuine proof hole.
	if strings.HasPrefix(pkg.Path(), "qtenon") {
		return "", false
	}
	return fmt.Sprintf("which has no alloc-free summary (external package %s)", pkg.Path()), true
}

// boxes reports whether storing a value of concrete type rt into a
// location of declared type lt forces an interface box: lt is an
// interface, rt is a concrete non-pointer type. Pointers (and nil) ride
// in the interface word without allocating.
func boxes(lt, rt types.Type) bool {
	if lt == nil || rt == nil {
		return false
	}
	if _, ok := lt.Underlying().(*types.Interface); !ok {
		return false
	}
	switch rt.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return false
	case *types.Basic:
		if rt.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

// stringSliceConv reports whether a conversion crosses the
// string ↔ []byte/[]rune boundary, which copies the contents.
func stringSliceConv(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isSlice := func(t types.Type) bool {
		_, ok := t.Underlying().(*types.Slice)
		return ok
	}
	if from == nil || to == nil {
		return false
	}
	return (isStr(from) && isSlice(to)) || (isSlice(from) && isStr(to))
}

func containsDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}

// coldRanges computes the source ranges the allocation scan skips: the
// amortized-growth and cold-start shapes the arena idiom is built from.
//
//   - an if (or else) body whose condition tests nil, len, cap, or a
//     boolean constant (build-gated debug blocks like san.Enabled);
//   - everything after a cap-guarded early return — the growFloat64
//     shape `if tot <= cap(dst) { return dst[:tot] }; make(…)`;
//   - panic arguments (crash paths);
//   - return operands in declared error-typed result positions (the
//     failing return constructs its error off the hot path).
func coldRanges(fi *FuncInfo) []posRange {
	info := fi.Pkg.Info
	body := fi.Decl.Body
	var out []posRange
	add := func(n ast.Node) {
		if n != nil {
			out = append(out, posRange{n.Pos(), n.End()})
		}
	}
	sig := fi.Func.Type().(*types.Signature)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			guard, capGuard := guardCond(info, n.Cond)
			if !guard {
				return true
			}
			add(n.Body)
			if n.Else != nil {
				add(n.Else)
			}
			if capGuard && endsInReturn(n.Body) {
				out = append(out, posRange{n.End(), body.End()})
			}
		case *ast.CallExpr:
			if isBuiltinIn(info, n, "panic") {
				add(n)
			}
		case *ast.ReturnStmt:
			res := sig.Results()
			if res == nil || len(n.Results) != res.Len() {
				return true
			}
			for i, r := range n.Results {
				if isErrorType(res.At(i).Type()) {
					add(r)
				}
			}
		}
		return true
	})
	return out
}

// guardCond reports whether cond is a cold-path guard (mentions nil, a
// len/cap builtin call, or a boolean constant), and separately whether
// it mentions cap — the only guard strong enough to exempt the code
// after an early return.
func guardCond(info *types.Info, cond ast.Expr) (guard, capGuard bool) {
	if cond == nil {
		return false, false
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "nil" {
				guard = true
			}
			if c, ok := objectIn(info, n).(*types.Const); ok && isBoolType(c.Type()) {
				guard = true // build-gated block: if san.Enabled { … }
			}
		case *ast.CallExpr:
			if isBuiltinIn(info, n, "cap") {
				guard, capGuard = true, true
			}
			if isBuiltinIn(info, n, "len") {
				guard = true
			}
		}
		return true
	})
	return guard, capGuard
}

func endsInReturn(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// ---- write-target / seam effect scanning ----

// scanEffects folds global-write and seam-call facts into sum.
func scanEffects(p *Program, fi *FuncInfo, sum *FuncSummary, changed *bool) {
	info := fi.Pkg.Info
	fset := fi.Pkg.Fset
	setGlobal := func(pos token.Pos, format string, args ...any) {
		if sum.globalSite == "" {
			sum.globalSite = fmt.Sprintf("%s: %s", shortPos(fset, pos), fmt.Sprintf(format, args...))
			*changed = true
		}
	}
	setSeam := func(pos token.Pos, format string, args ...any) {
		if sum.seamSite == "" {
			sum.seamSite = fmt.Sprintf("%s: %s", shortPos(fset, pos), fmt.Sprintf(format, args...))
			*changed = true
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if sum.globalSite != "" && sum.seamSite != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := pkgLevelRoot(info, lhs); v != nil {
					setGlobal(lhs.Pos(), "stores to package-level %q", v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := pkgLevelRoot(info, n.X); v != nil {
				setGlobal(n.X.Pos(), "updates package-level %q", v.Name())
			}
		case *ast.CallExpr:
			if (isBuiltinIn(info, n, "copy") || isBuiltinIn(info, n, "append") || isBuiltinIn(info, n, "delete")) && len(n.Args) > 0 {
				if v := pkgLevelRoot(info, n.Args[0]); v != nil {
					setGlobal(n.Pos(), "writes package-level %q", v.Name())
				}
				return true
			}
			callee := calleeIn(info, n)
			if callee == nil {
				return true
			}
			if desc := seamCallDesc(callee); desc != "" {
				setSeam(n.Pos(), "calls %s", desc)
			}
			csum := p.Summary(callee)
			if csum == nil {
				return true
			}
			if csum.globalSite != "" {
				setGlobal(n.Pos(), "calls %s, which writes package-level state (%s)", callee.Name(), csum.globalSite)
			}
			if csum.seamSite != "" {
				setSeam(n.Pos(), "calls %s, which reaches a seam (%s)", callee.Name(), csum.seamSite)
			}
			if csum.RecvMutated() {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if v := pkgLevelRoot(info, sel.X); v != nil {
						setGlobal(n.Pos(), "calls %s, mutating package-level %q", callee.Name(), v.Name())
					}
				}
			}
			for i, arg := range n.Args {
				if csum.ArgMutated(i) {
					if v := pkgLevelRoot(info, arg); v != nil {
						setGlobal(arg.Pos(), "passes package-level %q to %s, which writes through it", v.Name(), callee.Name())
					}
				}
			}
		}
		return true
	})
}

// seamCallDesc describes f when it belongs to a global-effect seam:
// internal/rng, internal/wallclock, internal/metrics (any function or
// method), time's clock reads, or a math/rand package-level stream.
func seamCallDesc(f *types.Func) string {
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if why, ok := seamPkgs[path]; ok {
		return fmt.Sprintf("%s.%s (%s)", pkg.Name(), f.Name(), why)
	}
	isMethod := f.Type().(*types.Signature).Recv() != nil
	switch path {
	case "time":
		if !isMethod && (f.Name() == "Now" || f.Name() == "Since" || f.Name() == "Until") {
			return "time." + f.Name() + " (wall clock)"
		}
	case "math/rand", "math/rand/v2":
		if !isMethod {
			return path + "." + f.Name() + " (global RNG stream)"
		}
	}
	return ""
}

// pkgLevelRoot walks a store target to its base object and returns that
// object when it is a package-level variable (directly, or through a
// pkg.Var qualified reference); nil otherwise.
func pkgLevelRoot(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			if v, ok := objectIn(info, x).(*types.Var); ok && isPkgLevelVar(v) {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := objectIn(info, id).(*types.PkgName); isPkg {
					if v, ok := objectIn(info, x.Sel).(*types.Var); ok && isPkgLevelVar(v) {
						return v
					}
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPkgLevelVar(v *types.Var) bool {
	return v != nil && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
