// Package lint is qtenon-lint: a suite of static analyzers that
// machine-check the repository's determinism, aliasing and
// instrumentation invariants (DESIGN.md §9). The invariants were
// previously enforced only by tests and review; these analyzers encode
// them so every PR is checked mechanically:
//
//   - determinism: no wall-clock reads, no math/rand package-level
//     streams outside internal/rng, no order-sensitive map iteration in
//     simulation/bench/report code.
//   - scratcharena: slices produced by the Append*/*Reuse scratch APIs
//     must not outlive the caller's frame (the aliasing-bug class the
//     zero-allocation PR introduced).
//   - metricsdiscipline: metrics instruments come from registry
//     constructors, never raw struct literals, preserving nil-safety.
//   - floatcompare: no ==/!= on floating-point or complex values outside
//     the approved tolerance helpers.
//   - eventretention: closures scheduled on sim.Engine must not capture
//     loop variables or scratch-backed slices.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can migrate onto the upstream framework
// verbatim once the dependency is available; the container this grows in
// is offline, so the driver and test harness are self-contained over the
// standard library's go/ast, go/types and `go list -export`.
//
// Diagnostics are suppressed, one site at a time, with a staticcheck
// style directive on the offending line or the line above it:
//
//	//lint:ignore floatcompare exact zero check selects a kernel
//
// The analyzer name(s) are comma-separated and the trailing reason is
// mandatory; a malformed directive is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary.
	Doc string
	// Design names the DESIGN.md section(s) documenting the invariant
	// this analyzer enforces (e.g. "§14.1"). The JSON output mode uses it
	// to render the suggested //lint:ignore directive, since every ignore
	// must cite the section it is overriding.
	Design string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole-program interprocedural view (call graph +
	// function summaries) shared by every package in a RunProgram load.
	// Under the single-package entry points it still exists but covers
	// only this package, so summaries of cross-package callees degrade to
	// nil (assumed inert).
	Prog *Program

	report func(Diagnostic)
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object denoted by id, consulting Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Defs[id]
}

// CalleeFunc resolves a call to the *types.Func it invokes (package-level
// function or method), or nil for calls through function values,
// builtins and type conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.ObjectOf(fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// PkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now) — not a method, and not a local
// function value that shadows the package qualifier.
func (p *Pass) PkgFunc(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	f := p.CalleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return "", "", false
	}
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		return "", "", false
	}
	return f.Pkg().Path(), f.Name(), true
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzers map[string]bool
	pos       token.Position
	malformed string // non-empty: why the directive could not be parsed
}

// ignoreIndex maps "file:line" to the directive governing that line.
type ignoreIndex map[string]*directive

const directivePrefix = "//lint:ignore"

// parseDirectives indexes every //lint:ignore directive in the files.
// A directive governs the line it appears on and, when it is the only
// thing on its line, the line below it.
func parseDirectives(fset *token.FileSet, files []*ast.File) (ignoreIndex, []*directive) {
	idx := ignoreIndex{}
	var all []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{analyzers: map[string]bool{}, pos: pos}
				all = append(all, d)
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				switch {
				case names == "":
					d.malformed = "missing analyzer name"
				case strings.TrimSpace(reason) == "":
					d.malformed = "missing reason"
				default:
					for _, n := range strings.Split(names, ",") {
						d.analyzers[strings.TrimSpace(n)] = true
					}
				}
				idx[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = d
				idx[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = d
			}
		}
	}
	return idx, all
}

// Run applies the analyzers to one loaded package and returns the
// surviving diagnostics sorted by position. The interprocedural Program
// is built over this package alone, so cross-package summaries degrade
// to the inert assumption; multi-package loads should prefer RunProgram.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runPackage(pkg, NewProgram([]*Package{pkg}), analyzers)
}

// RunProgram builds one interprocedural Program over all the packages
// and applies the analyzers to each, returning diagnostics grouped by
// package (in the given package order) and sorted by position within
// each. This is the whole-module entry point: summaries of callees in
// sibling packages are real, not assumed inert.
func RunProgram(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runPackage(pkg, prog, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}

// runPackage applies the analyzers to one package under a shared
// Program. Diagnostics on a line governed by a well-formed //lint:ignore
// directive naming the analyzer are dropped; malformed directives are
// reported as diagnostics of the pseudo-analyzer "lintdirective".
func runPackage(pkg *Package, prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx, all := parseDirectives(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Prog:      prog,
		}
		pass.report = func(d Diagnostic) {
			key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
			if dir, ok := idx[key]; ok && dir.malformed == "" && dir.analyzers[d.Analyzer] {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	for _, d := range all {
		if d.malformed != "" {
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "lintdirective",
				Message:  fmt.Sprintf("malformed %s directive: %s (want %q)", directivePrefix, d.malformed, directivePrefix+" <analyzer>[,<analyzer>] <reason>"),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// exprString renders a simple expression (identifier / selector / index /
// slice chains) to a canonical string for aliasing comparisons, e.g.
// "s.probScratch[:0]" → callers strip slicing with sliceBase first.
// Unrenderable expressions yield "".
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		switch idx := ast.Unparen(e.Index).(type) {
		case *ast.BasicLit:
			return base + "[" + idx.Value + "]"
		default:
			if s := exprString(e.Index); s != "" {
				return base + "[" + s + "]"
			}
		}
		return ""
	}
	return ""
}

// sliceBase strips slice expressions and unary & from e: the expression
// whose backing storage e aliases. s.buf[:0] → s.buf.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return e
			}
			e = x.X
		default:
			return e
		}
	}
}

// isNilOrFresh reports whether the expression passed as a scratch dst
// argument denotes freshly owned storage: nil, a make/new call, a
// composite literal, or an append of one of those.
func isNilOrFresh(p *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make", "new":
				// Only the builtins, not shadowing functions.
				if _, isBuiltin := p.ObjectOf(id).(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	}
	return false
}
