package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitFlow enforces the time-unit discipline (DESIGN.md §10): sim.Time
// is picoseconds, cycle counts are dimensionless ticks of a specific
// sim.Clock, and the only sanctioned bridges between them are the Clock
// methods (Cycles/CyclesFloat/CyclesIn/CyclesCeil) and
// sim.FromNanoseconds. A raw int64 carries no unit, so the analyzer
// reconstructs one interprocedurally (domains.go): from the Clock
// producers, from conversions of sim.Time, from callee summaries, and —
// weakest tier — from the repo's naming conventions.
//
// Three rules, all acting only on uncontested evidence:
//
//  1. sim.Time(x) where x is known to be cycles or Hz — a cycle count
//     reinterpreted as picoseconds silently rescales every downstream
//     latency by the clock period; convert through Clock.Cycles (or
//     CyclesFloat for fractional counts).
//  2. arithmetic mixing two different known domains (cycles + Hz,
//     cycles * picoseconds, …) — the product/sum has a unit this code
//     has no type for; inside internal/sim the Clock does this on
//     purpose, so that package is the one exemption.
//  3. a call argument whose known domain differs from the domain the
//     callee's summary infers for that parameter.
var UnitFlow = &Analyzer{
	Name:   "unitflow",
	Design: "§9, §10",
	Doc:    "flag cycle/Hz/picosecond unit mixing outside the Clock seam",
	Run:    runUnitFlow,
}

func runUnitFlow(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	if pass.Pkg.Path() == simPkgPath {
		return nil // the Clock seam multiplies cycles by period by design
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUnitFlowFunc(pass, fd)
		}
	}
	return nil
}

func checkUnitFlowFunc(pass *Pass, fd *ast.FuncDecl) {
	dc := newDomainScope(pass.Prog, &Package{
		Path:  pass.Pkg.Path(),
		Fset:  pass.Fset,
		Types: pass.Pkg,
		Info:  pass.TypesInfo,
	})
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		if fi := pass.Prog.Info(obj); fi != nil {
			dc.seedParams(fi, pass.Prog.Summary(obj))
		}
	}
	dc.inferLocals(fd.Body)

	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		pass.Reportf(pos, format, args...)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkUnitMix(dc, n, report)
		case *ast.CallExpr:
			checkUnitCall(pass, dc, n, report)
		}
		return true
	})
}

// binary operators whose operands must share a unit.
var unitMixOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.LSS: true, token.GTR: true, token.LEQ: true,
	token.GEQ: true, token.EQL: true, token.NEQ: true,
}

func checkUnitMix(dc *domainScope, b *ast.BinaryExpr, report func(token.Pos, string, ...any)) {
	if !unitMixOps[b.Op] {
		return
	}
	dx := dc.exprDomain(b.X).concrete()
	dy := dc.exprDomain(b.Y).concrete()
	if dx == DomainUnknown || dy == DomainUnknown || dx == dy {
		return
	}
	report(b.OpPos, "%q mixes %s (%s) with %s (%s); bridge units through sim.Clock (Cycles/CyclesFloat/CyclesIn) instead of raw arithmetic",
		b.Op.String(), renderExpr(b.X), dx, renderExpr(b.Y), dy)
}

func checkUnitCall(pass *Pass, dc *domainScope, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	// Rule 1: sim.Time(x) over a known cycle/Hz value.
	if isConversion(info, call) && len(call.Args) == 1 {
		if isSimTime(typeOfIn(info, call)) {
			d := dc.exprDomain(call.Args[0]).concrete()
			if d == DomainCycles || d == DomainHz {
				report(call.Pos(), "sim.Time(%s) reinterprets a %s value as picoseconds; convert cycle counts with Clock.Cycles or Clock.CyclesFloat",
					renderExpr(call.Args[0]), d)
			}
		}
		return
	}
	// Rule 3a: the Clock bridges themselves take cycle counts.
	switch clockMethod(info, call) {
	case "Cycles", "CyclesFloat":
		if len(call.Args) == 1 {
			d := dc.exprDomain(call.Args[0]).concrete()
			if d != DomainUnknown && d != DomainCycles {
				report(call.Args[0].Pos(), "Clock.%s expects a cycle count but %s carries %s",
					calleeIn(info, call).Name(), renderExpr(call.Args[0]), d)
			}
		}
		return
	}
	// Rule 3b: callee summaries.
	callee := calleeIn(info, call)
	if callee == nil {
		return
	}
	sum := pass.Prog.Summary(callee)
	if sum == nil {
		return
	}
	for i, arg := range call.Args {
		want := sum.ArgDomain(i)
		if want == DomainUnknown {
			continue
		}
		got := dc.exprDomain(arg).concrete()
		if got == DomainUnknown || got == want {
			continue
		}
		report(arg.Pos(), "%s expects %s for this parameter but %s carries %s",
			callee.Name(), want, renderExpr(arg), got)
	}
}

// renderExpr gives a short printable form of an expression for
// diagnostics, falling back to a generic noun for complex shapes.
func renderExpr(e ast.Expr) string {
	if s := exprString(e); s != "" {
		return s
	}
	return "this expression"
}
