package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ChanDiscipline enforces the channel ownership contract (DESIGN.md
// §15.2) that keeps "send on closed channel" — a panic, not an error —
// out of the serving layer:
//
//   - close-by-owner: a function must not close a channel it received
//     as a parameter; the owner (the function that made the channel)
//     closes it, callees signal completion some other way. Helpers
//     whose entire purpose is closing carry a //lint:ignore with the
//     documented reason.
//   - no send-after-close: within a function, a send on a channel that
//     an earlier statement closed — directly, or through a callee whose
//     v4 summary says it may close that argument — is flagged with the
//     close witness named. Double closes are flagged the same way.
//   - hot-path sends: inside //qtenon:hotpath-annotated functions, a
//     send outside a select on a channel not provably buffered (traced
//     to a make with a positive constant capacity) is a latent stall
//     and is flagged.
//
// The send-after-close check replays each function body in source
// order, one stream per function literal (a closure runs on its own
// schedule; ordering across the boundary is not claimed).
var ChanDiscipline = &Analyzer{
	Name:   "chandiscipline",
	Doc:    "close-by-owner, no send on a possibly-closed channel, no unbuffered sends in non-select hot paths",
	Design: "§15.2",
	Run:    runChanDiscipline,
}

func runChanDiscipline(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &chanCheck{pass: pass, fd: fd, params: map[types.Object]bool{}}
			if fd.Type.Params != nil {
				for _, f := range fd.Type.Params.List {
					for _, name := range f.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							c.params[obj] = true
						}
					}
				}
			}
			c.hot = hotpathAnnotated(fd)
			c.stream(fd.Body)
		}
	}
	return nil
}

type chanCheck struct {
	pass   *Pass
	fd     *ast.FuncDecl
	params map[types.Object]bool
	hot    bool
}

type closeRec struct {
	pos token.Pos
	why string
}

// stream replays one body (function literals excluded, then recursed
// into as their own streams) in source order, tracking which channel
// expressions have been closed.
func (c *chanCheck) stream(body ast.Node) {
	type chanEvent struct {
		pos   token.Pos
		close bool
		ch    ast.Expr
		why   string // close witness for indirect (callee) closes
		send  *ast.SendStmt
	}
	var evs []chanEvent
	var lits []*ast.FuncLit
	guarded := selectGuards(body)
	info := c.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.SendStmt:
			evs = append(evs, chanEvent{pos: n.Pos(), ch: n.Chan, send: n})
		case *ast.CallExpr:
			if isBuiltinIn(info, n, "close") && len(n.Args) == 1 {
				evs = append(evs, chanEvent{pos: n.Pos(), close: true, ch: n.Args[0],
					why: fmt.Sprintf("closed at %s", shortPos(c.pass.Fset, n.Pos()))})
				return true
			}
			callee := c.pass.CalleeFunc(n)
			if callee == nil {
				return true
			}
			sum := c.pass.Prog.Summary(callee)
			if sum == nil {
				return true
			}
			for i, arg := range n.Args {
				if sum.ArgChanClosed(i) && isChanExpr(info, arg) {
					evs = append(evs, chanEvent{pos: n.Pos(), close: true, ch: arg,
						why: fmt.Sprintf("may be closed by the call to %s at %s", callee.Name(), shortPos(c.pass.Fset, n.Pos()))})
				}
			}
		}
		return true
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })

	closed := map[string]closeRec{}
	for _, e := range evs {
		name := exprString(e.ch)
		if e.close {
			if id, ok := ast.Unparen(e.ch).(*ast.Ident); ok && c.params[c.pass.ObjectOf(id)] {
				c.pass.Reportf(e.pos, "close of channel parameter %q: channels are closed by their owner, not by helpers — signal completion another way", name)
			}
			if prev, ok := closed[name]; ok {
				c.pass.Reportf(e.pos, "channel %q closed twice (already %s): double close panics", name, prev.why)
				continue
			}
			if name != "" {
				closed[name] = closeRec{pos: e.pos, why: e.why}
			}
			continue
		}
		if prev, ok := closed[name]; ok {
			c.pass.Reportf(e.pos, "send on channel %q, which %s: send on closed channel panics", name, prev.why)
		}
		if c.hot && !guarded[e.send] && !c.provablyBuffered(e.ch) {
			c.pass.Reportf(e.pos, "hot path sends on %q outside a select, and the channel is not provably buffered: a slow receiver stalls the kernel", name)
		}
	}
	for _, lit := range lits {
		c.stream(lit.Body)
	}
}

// provablyBuffered reports whether ch traces to a local
// `make(chan T, n)` with a positive constant capacity inside this
// function.
func (c *chanCheck) provablyBuffered(ch ast.Expr) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	info := c.pass.TypesInfo
	buffered := false
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		if buffered {
			return false
		}
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, lhs := range a.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || c.pass.ObjectOf(lid) != obj {
				continue
			}
			call, ok := ast.Unparen(a.Rhs[i]).(*ast.CallExpr)
			if !ok || !isBuiltinIn(info, call, "make") || len(call.Args) < 2 {
				continue
			}
			if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil &&
				tv.Value.Kind() == constant.Int && constant.Sign(tv.Value) > 0 {
				buffered = true
			}
		}
		return true
	})
	return buffered
}
