package lint

import (
	"sort"
	"strings"
)

// LockOrder proves the module's lock-acquisition order acyclic
// (DESIGN.md §15.3). The v4 summaries feed a program-wide directed
// graph: an edge (A, B) is the first witness of any function —
// transitively through its callees — acquiring lock class B while
// holding A. A cycle in that graph is a latent deadlock: two goroutines
// entering the cycle from different edges stall forever, which no test
// and no -race run will catch until production traffic interleaves just
// so. Every edge that can reach its own tail is reported, carrying both
// witness chains — its own and a shortest conflicting path back.
//
// Lock classes are stable identities (package-level mutexes, mutex
// fields of named types — see stableIDOf); function-local mutexes never
// produce edges. Each edge is reported exactly once module-wide, in the
// package whose source produced the witness.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "interprocedural lock-acquisition graph must be acyclic; cycles reported with both witness chains",
	Design: "§15.3",
	Run:    runLockOrder,
}

func runLockOrder(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	prog := pass.Prog
	if prog == nil || len(prog.lockEdges) == 0 {
		return nil
	}
	keys := make([]lockPair, 0, len(prog.lockEdges))
	for pair := range prog.lockEdges {
		keys = append(keys, pair)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	adj := map[string][]string{}
	for _, pair := range keys {
		adj[pair.from] = append(adj[pair.from], pair.to)
	}
	for _, k := range keys {
		e := prog.lockEdges[k]
		if e.pkg != pass.Pkg.Path() {
			continue // reported in the package that owns the witness
		}
		path := lockPath(adj, k.to, k.from)
		if path == nil {
			continue
		}
		witnesses := make([]string, 0, len(path))
		for _, p := range path {
			witnesses = append(witnesses, prog.lockEdges[p].witness)
		}
		pass.Reportf(e.pos, "lock order cycle between %s and %s: %s — conflicting with the reverse chain: %s",
			k.from, k.to, e.witness, strings.Join(witnesses, "; then "))
	}
	return nil
}

// lockPath finds a shortest edge path from → to in the acquisition
// graph (BFS, deterministic because adjacency lists are sorted); nil
// when unreachable.
func lockPath(adj map[string][]string, from, to string) []lockPair {
	if from == to {
		return nil
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == to {
				var path []lockPair
				for n := to; n != from; n = prev[n] {
					path = append([]lockPair{{prev[n], n}}, path...)
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}
