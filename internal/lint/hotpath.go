package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose body (and transitive
// in-program callees) must be proven free of steady-state heap
// allocation. It goes on the doc comment:
//
//	//qtenon:hotpath
//	func (s *State) ApplyRZ(q int, theta float64) { … }
//
// Anything after the directive on the same line is a free-form note.
const hotpathDirective = "//qtenon:hotpath"

// hotpathAnnotated reports whether fd carries the //qtenon:hotpath
// directive in its doc comment.
func hotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// hotpathFile reports whether file contains at least one
// //qtenon:hotpath-annotated function — the "kernel file" scope shared
// with bitexact.
func hotpathFile(file *ast.File) bool {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && hotpathAnnotated(fd) {
			return true
		}
	}
	return false
}

// HotPath proves //qtenon:hotpath-annotated functions heap-allocation-
// free, transitively through the allocation dimension of the v3
// interprocedural summaries (DESIGN.md §14.1). Inside an annotated body
// it flags every allocation witness: make/new, growing append, map
// stores and literals, slice/map composite literals, address-taken
// composites, escaping closures, go statements, string↔[]byte
// conversions, string concatenation, interface boxing at assignments /
// call arguments / returns, and calls to callees without an alloc-free
// summary (unknown external callees are assumed to allocate — the
// inverse of the aliasing dimensions' optimistic stance). Cold-path
// shapes — nil/len/cap-guarded blocks, build-gated constant blocks, the
// code after a cap-guarded early return, panic arguments, error-return
// operands, and the field-rooted self-append arena idiom — are exempt,
// because "allocation-free" here means steady-state: scratch may grow
// once and be recycled forever.
var HotPath = &Analyzer{
	Name:   "hotpath",
	Doc:    "prove //qtenon:hotpath functions transitively heap-allocation-free",
	Design: "§14.1",
	Run:    runHotPath,
}

func runHotPath(pass *Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "qtenon") {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hotpathAnnotated(fd) {
				continue
			}
			if fd.Body == nil {
				pass.Reportf(fd.Name.Pos(), "//qtenon:hotpath on a bodyless declaration proves nothing")
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := pass.Prog.Info(obj)
			if fi == nil {
				continue
			}
			name := fd.Name.Name
			scanAllocSites(pass.Prog, fi, func(pos token.Pos, msg string) bool {
				pass.Reportf(pos, "hot path %s must stay allocation-free: %s", name, msg)
				return true // report every witness, not just the first
			})
		}
	}
	return nil
}
