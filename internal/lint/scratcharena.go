package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// scratchPackages are the packages whose Append*/*Reuse APIs hand out
// storage aliased with caller- or receiver-owned scratch.
var scratchPackages = map[string]bool{
	"qtenon/internal/qsim":     true,
	"qtenon/internal/compiler": true,
	"qtenon/internal/circuit":  true,
	"qtenon/internal/tilelink": true,
}

// scratchDstArg maps scratch producers to the index of their recycled
// destination argument (receiver excluded). Producers not listed use
// argument 0 — the Append*(dst, …) / *Reuse(st, …) convention.
var scratchDstArg = map[string]int{
	"TransferReuse": 6, // (bus, rbq, addr, beats, write, data, dataBuf)
}

// ScratchArena enforces the scratch-buffer ownership contract
// (DESIGN.md §9.2): a slice produced by one of the Append*/*Reuse/
// BindInto scratch APIs with a recycled (non-nil) destination aliases
// the destination's backing array and is only valid until the next call
// that recycles it. Such a slice may be consumed locally, passed down a
// call, or stored back over the destination it recycles — but it must
// not escape the caller's frame: returning it, storing it into a
// different field or a map, or capturing it in a closure re-creates the
// aliasing-bug class the zero-allocation PR introduced.
//
// Calls whose destination is nil, a make(...), or a literal allocate
// fresh storage and are exempt, as are the bodies of scratch APIs
// themselves (functions named Append*/*Reuse/BindInto are links in a
// recycling chain and hand their dst contract to their caller).
var ScratchArena = &Analyzer{
	Name:   "scratcharena",
	Design: "§8, §9",
	Doc:    "flag scratch-API result slices that escape the calling frame",
	Run:    runScratchArena,
}

// isScratchAPIName reports whether a function is itself a scratch
// producer by the repo's naming convention.
func isScratchAPIName(name string) bool {
	return strings.HasPrefix(name, "Append") || strings.HasSuffix(name, "Reuse") || name == "BindInto"
}

// scratchProducer resolves call to a scratch API and returns its dst
// argument index.
func scratchProducer(pass *Pass, call *ast.CallExpr) (fn *types.Func, dstIdx int, ok bool) {
	f := pass.CalleeFunc(call)
	if f == nil || f.Pkg() == nil || !scratchPackages[f.Pkg().Path()] || !isScratchAPIName(f.Name()) {
		return nil, 0, false
	}
	idx := 0
	if i, found := scratchDstArg[f.Name()]; found {
		idx = i
	}
	if idx >= len(call.Args) {
		return nil, 0, false
	}
	return f, idx, true
}

func runScratchArena(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkScratchInFunc(pass, fn.Name.Name, fn.Body)
				}
				return false
			case *ast.FuncLit:
				checkScratchInFunc(pass, "", fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// checkScratchInFunc analyzes one function body for escaping scratch.
// funcName is "" for literals. Nested function literals are analyzed by
// their own invocation of this walk (the Inspect above stops at function
// boundaries), except that capturing an outer tracked value is checked
// here.
func checkScratchInFunc(pass *Pass, funcName string, body *ast.BlockStmt) {
	// Unexported append*/…Reuse helpers are links in the same recycling
	// chains as the exported APIs.
	inScratchAPI := funcName != "" && (isScratchAPIName(funcName) || strings.HasPrefix(funcName, "append"))

	// tracked maps a local variable object to the rendered base
	// expression of the scratch dst it aliases.
	tracked := map[types.Object]string{}

	var walkStmts func(stmts []ast.Stmt)
	var walkStmt func(s ast.Stmt)

	// Statements are revisited when block recursion and closure scanning
	// overlap; dedupe so each escape reports once.
	seen := map[string]bool{}
	reportEscape := func(pos token.Pos, how string) {
		key := pass.Fset.Position(pos).String() + how
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Reportf(pos, "scratch-backed slice %s: it aliases recycled storage and is only valid until the next reuse; copy it, or recycle it back over its own destination", how)
	}

	// handleCallValue inspects one producer call and the statement that
	// consumes its value.
	handleProducer := func(call *ast.CallExpr, parent ast.Stmt) {
		fn, dstIdx, ok := scratchProducer(pass, call)
		if !ok {
			return
		}
		dst := call.Args[dstIdx]
		if isNilOrFresh(pass, dst) {
			return
		}
		dstBase := exprString(sliceBase(dst))
		switch p := parent.(type) {
		case *ast.ReturnStmt:
			if !inScratchAPI {
				reportEscape(call.Pos(), "returned from "+describeFunc(funcName)+" (produced by "+fn.Name()+")")
			}
		case *ast.AssignStmt:
			// Find the LHS receiving the call's first value.
			if len(p.Rhs) == 1 && ast.Unparen(p.Rhs[0]) == call && len(p.Lhs) > 0 {
				switch l := ast.Unparen(p.Lhs[0]).(type) {
				case *ast.Ident:
					if l.Name == "_" {
						return
					}
					if obj := pass.ObjectOf(l); obj != nil {
						tracked[obj] = dstBase
					}
				case *ast.SelectorExpr, *ast.IndexExpr:
					target := exprString(sliceBase(p.Lhs[0]))
					if target == "" || target != dstBase {
						reportEscape(call.Pos(), "stored into "+renderTarget(p.Lhs[0])+" which is not its recycled destination "+quoted(dstBase))
					}
				}
			}
		}
	}

	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			// First settle what each LHS receives: overwriting a tracked
			// variable ends its tracking; receiving a tracked value hands
			// the tracking off; storing a tracked value into anything but
			// its own recycled destination is an escape.
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				var base string
				var robj types.Object
				if rhs != nil {
					base, robj = trackedRoot(pass, tracked, rhs)
				}
				aliasing := robj != nil && isAliasType(pass, rhs)
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if l.Name == "_" {
						continue
					}
					if obj := pass.ObjectOf(l); obj != nil {
						delete(tracked, obj)
						if aliasing {
							tracked[obj] = base
						}
					}
				case *ast.SelectorExpr, *ast.IndexExpr:
					if aliasing {
						if target := exprString(sliceBase(lhs)); target != base {
							reportEscape(rhs.Pos(), "stored into "+renderTarget(lhs)+" which is not its recycled destination "+quoted(base))
						}
					}
					_ = l
				}
			}
			// Then register any scratch producers on the RHS (this may
			// re-establish tracking for an LHS just cleared above).
			for _, rhs := range s.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					handleProducer(call, s)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
					handleProducer(call, s)
				}
				if inScratchAPI {
					continue
				}
				if base, obj := trackedRoot(pass, tracked, res); obj != nil && isAliasType(pass, res) {
					reportEscape(res.Pos(), "returned from "+describeFunc(funcName)+" (aliases "+quoted(base)+")")
				}
			}
		case *ast.GoStmt:
			checkClosureCapture(pass, tracked, s.Call, reportEscape)
		case *ast.DeferStmt:
			checkClosureCapture(pass, tracked, s.Call, reportEscape)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				handleProducer(call, s)
				checkClosureCapture(pass, tracked, call, reportEscape)
			}
		case *ast.SendStmt:
			if _, obj := trackedRoot(pass, tracked, s.Value); obj != nil {
				reportEscape(s.Value.Pos(), "sent on a channel")
			}
		}
	}

	// checkLits flags function literals anywhere under n that capture a
	// currently tracked scratch value. Escapes via closures scheduled or
	// stored later than this statement are caught because tracking is
	// checked in source order as the walk proceeds.
	checkLits := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			lit, ok := m.(*ast.FuncLit)
			if !ok {
				return true
			}
			for _, obj := range sortedTracked(tracked) {
				if capturesObject(pass, lit, obj) {
					reportEscape(lit.Pos(), "captured by a function literal (aliases "+quoted(tracked[obj])+")")
				}
			}
			return false
		})
	}

	walkStmts = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			walkStmt(s)
			checkLits(s)
			switch s := s.(type) {
			case *ast.BlockStmt:
				walkStmts(s.List)
			case *ast.IfStmt:
				walkStmts(s.Body.List)
				if s.Else != nil {
					walkStmts([]ast.Stmt{s.Else})
				}
			case *ast.ForStmt:
				walkStmts(s.Body.List)
			case *ast.RangeStmt:
				walkStmts(s.Body.List)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					walkStmts(c.(*ast.CaseClause).Body)
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					walkStmts(c.(*ast.CaseClause).Body)
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					walkStmts(c.(*ast.CommClause).Body)
				}
			case *ast.LabeledStmt:
				walkStmts([]ast.Stmt{s.Stmt})
			}
		}
	}
	walkStmts(body.List)
}

// trackedRoot reports whether e is a tracked variable or a selector
// rooted at one, returning the scratch base it aliases.
func trackedRoot(pass *Pass, tracked map[types.Object]string, e ast.Expr) (string, types.Object) {
	if e == nil {
		return "", nil
	}
	cur := ast.Unparen(sliceBase(e))
	for {
		switch x := cur.(type) {
		case *ast.Ident:
			if obj := pass.ObjectOf(x); obj != nil {
				if base, ok := tracked[obj]; ok {
					return base, obj
				}
			}
			return "", nil
		case *ast.SelectorExpr:
			cur = ast.Unparen(sliceBase(x.X))
		case *ast.IndexExpr:
			cur = ast.Unparen(sliceBase(x.X))
		default:
			return "", nil
		}
	}
}

// isAliasType reports whether e's type can alias backing storage worth
// tracking: slices, pointers, maps, and structs containing them. Scalars
// (res.Cycles int64) extracted from a tracked struct are not escapes.
func isAliasType(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return true // unknown: be conservative
	}
	return typeAliases(t, 0)
}

func typeAliases(t types.Type, depth int) bool {
	if depth > 4 {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeAliases(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return typeAliases(u.Elem(), depth+1)
	default:
		return false
	}
}

// checkClosureCapture flags function-literal arguments that capture
// tracked scratch values.
func checkClosureCapture(pass *Pass, tracked map[types.Object]string, call *ast.CallExpr, report func(token.Pos, string)) {
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		for _, obj := range sortedTracked(tracked) {
			if capturesObject(pass, lit, obj) {
				report(lit.Pos(), "captured by a function literal (aliases "+quoted(tracked[obj])+")")
			}
		}
	}
}

// sortedTracked returns the tracked objects in declaration order so
// diagnostics are emitted deterministically.
func sortedTracked(tracked map[types.Object]string) []types.Object {
	objs := make([]types.Object, 0, len(tracked))
	for obj := range tracked {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	return objs
}

// capturesObject reports whether the function literal references obj
// from its enclosing scope.
func capturesObject(pass *Pass, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func usesObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func describeFunc(name string) string {
	if name == "" {
		return "a function literal"
	}
	return name
}

func renderTarget(e ast.Expr) string {
	if s := exprString(sliceBase(e)); s != "" {
		return quoted(s)
	}
	return "another location"
}

func quoted(s string) string { return "\"" + s + "\"" }
