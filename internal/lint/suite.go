package lint

// All returns the full qtenon-lint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		ScratchArena,
		MetricsDiscipline,
		FloatCompare,
		EventRetention,
		ParSafety,
		UnitFlow,
		DeepScratch,
		HotPath,
		BitExact,
		ShardSafety,
		RoutePurity,
		GoroutineLifecycle,
		ChanDiscipline,
		LockOrder,
		CtxFlow,
	}
}

// ByName resolves a comma-separated analyzer selection; unknown names
// return nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
