package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural layer of qtenon-lint (DESIGN.md §10):
// a module-local call graph over go/types plus one conservative summary
// per declared function, computed as a monotone fixpoint so mutually
// recursive functions (call-graph SCCs) converge. The parsafety,
// unitflow and deepscratch analyzers consume the summaries through
// Pass.Prog; the intra-procedural analyzers ignore it.
//
// The summaries answer three questions about a call the caller's frame
// cannot see into:
//
//   - retention: may the callee store this argument (or memory reachable
//     from it) somewhere that outlives the call — a global, a field of
//     its receiver or another parameter, a map, a channel, a goroutine,
//     an escaping closure?
//   - mutation: may the callee write through this argument (slice
//     element, pointed-to field, map entry)?
//   - aliasing: may a result of the callee alias this argument?
//
// plus the unit-domain question of domains.go (is this int parameter a
// cycle count, a frequency, or raw picoseconds?).
//
// Precision stance: the analysis is deliberately unsound in one
// direction — callees whose source is not part of the program (stdlib,
// export-data-only imports) are assumed inert. Soundness there would
// flood every fmt-formatting call with false positives; the analyzers
// trade recall for a clean, trustworthy signal. The one place an
// optimistic assumption would be wrong inside this module — the
// internal/par executors, which do briefly store their closure argument
// but join before returning — is captured by the curated inertFuncs
// list below.

// A Program is the interprocedural view over every package loaded in
// one lint run.
type Program struct {
	Pkgs      []*Package
	infos     map[*types.Func]*FuncInfo
	order     []*FuncInfo // deterministic: sorted by (package path, position)
	summaries map[*types.Func]*FuncSummary
	// byName maps types.Func.FullName() to the source-checked (canonical)
	// object. Module packages are loaded with export data present, so a
	// callee referenced from another package is a *different* types.Func
	// than the one registered when its defining package was checked from
	// source; FullName (which renders receiver types with full package
	// paths) bridges the two identities so summaries resolve
	// cross-package.
	byName map[string]*types.Func

	// v4 whole-program liveness facts (DESIGN.md §15), grown monotonically
	// inside the same fixpoint as the per-function summaries.
	//
	// closedChans maps a stable channel identity (package-level variable
	// or field of a named type, see stableIDOf) to the witness of the
	// close that some in-program function performs on it — the proof a
	// worker ranging over that channel terminates.
	closedChans map[string]string
	// lockEdges is the interprocedural lock-acquisition order graph: an
	// edge (A, B) records the first witness of some function acquiring B
	// while holding A. lockorder reports every edge that sits on a cycle.
	lockEdges map[lockPair]*lockEdge
	// ignores caches each package's parsed //lint:ignore index so the
	// summarizer can honor audited boundedness directives (a wg.Wait whose
	// line carries a well-formed ctxflow suppression is declared bounded
	// and does not taint its callers).
	ignores map[*Package]ignoreIndex
}

// FuncInfo ties a declared function to its syntax and package.
type FuncInfo struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// bitset indexes receiver-first parameters; parameter 63 and beyond
// share the last bit (no qtenon function has 63 parameters).
type bitset uint64

func paramBit(i int) bitset {
	if i > 63 {
		i = 63
	}
	return 1 << uint(i)
}

// FuncSummary is one function's interprocedural contract. Parameter
// indices are receiver-first internally; the Arg* accessors take call
// argument positions (receiver excluded) and handle variadics.
type FuncSummary struct {
	Func     *types.Func
	hasRecv  bool
	nparams  int // including the receiver slot
	variadic bool

	retains bitset
	mutates bitset
	flows   bitset // parameter may alias a result

	paramDomain  []Domain // receiver-first, like the bitsets
	resultDomain Domain   // domain of the first result, when int-typed

	// v3 dimensions (DESIGN.md §14). Each is a set-once fact holding a
	// rendered "file.go:line: what" description of the first witness, ""
	// while unproven; monotone like the bitsets, so the fixpoint
	// propagates them transitively through the call graph.
	allocSite  string // first heap-allocation site (or call to a non-alloc-free callee)
	globalSite string // first write landing in package-level state
	seamSite   string // first call into a global-effect seam (rng/wallclock/metrics, time, math/rand)

	// v4 liveness dimensions (DESIGN.md §15), same witness grammar.
	blockSite  string            // first op that may block indefinitely, transitively (ctxflow)
	termSeam   string            // proof the function terminates when spawned as a goroutine
	leakSite   string            // why the function leaks when spawned ("" when seam or bounded)
	chanSends  bitset            // params the function may send on, transitively
	chanCloses bitset            // params the function may close, transitively
	locks      map[string]string // lock id → first acquisition witness, transitively (lockorder)
}

// AllocFree reports whether the function is proven free of steady-state
// heap allocation, transitively through its in-program callees. A nil
// summary is NOT alloc-free: for allocation the optimistic-inert stance
// inverts — an unknown callee may allocate — so hotpath consumers must
// go through calleeAllocSite, which consults the curated allowlists.
func (s *FuncSummary) AllocFree() bool { return s != nil && s.allocSite == "" }

// AllocSite describes the first allocation witness ("" when alloc-free).
func (s *FuncSummary) AllocSite() string { return s.allocSite }

// WritesGlobal reports whether the function (transitively) stores to
// package-level state — the write-target dimension's "escapes every
// partition" bucket consumed by shardsafety and routepurity.
func (s *FuncSummary) WritesGlobal() bool { return s != nil && s.globalSite != "" }

// GlobalWriteSite describes the first package-level write witness.
func (s *FuncSummary) GlobalWriteSite() string { return s.globalSite }

// SeamSite describes the function's first (transitive) call into a
// global-effect seam — internal/rng, internal/wallclock,
// internal/metrics, time.Now, or a math/rand package-level stream —
// "" when it touches none. Consumed by routepurity.
func (s *FuncSummary) SeamSite() string {
	if s == nil {
		return ""
	}
	return s.seamSite
}

// argIndex maps a call argument position to the summary's receiver-first
// parameter index, clamping variadic overflow onto the last parameter.
func (s *FuncSummary) argIndex(i int) int {
	if s.hasRecv {
		i++
	}
	if i >= s.nparams {
		if s.variadic {
			i = s.nparams - 1
		} else {
			return -1
		}
	}
	return i
}

// ArgRetained reports whether the i'th call argument (0-based, receiver
// not counted) may be stored beyond the callee's frame.
func (s *FuncSummary) ArgRetained(i int) bool {
	if s == nil {
		return false
	}
	i = s.argIndex(i)
	return i >= 0 && s.retains&paramBit(i) != 0
}

// ArgMutated reports whether the callee may write through the i'th call
// argument.
func (s *FuncSummary) ArgMutated(i int) bool {
	if s == nil {
		return false
	}
	i = s.argIndex(i)
	return i >= 0 && s.mutates&paramBit(i) != 0
}

// ArgFlowsToResult reports whether a result of the callee may alias the
// i'th call argument.
func (s *FuncSummary) ArgFlowsToResult(i int) bool {
	if s == nil {
		return false
	}
	i = s.argIndex(i)
	return i >= 0 && s.flows&paramBit(i) != 0
}

// RecvRetained reports whether the callee may store its receiver (or
// memory reachable from it) beyond the call.
func (s *FuncSummary) RecvRetained() bool {
	return s != nil && s.hasRecv && s.retains&paramBit(0) != 0
}

// RecvMutated reports whether the callee may write through its receiver.
func (s *FuncSummary) RecvMutated() bool {
	return s != nil && s.hasRecv && s.mutates&paramBit(0) != 0
}

// ArgDomain reports the unit domain the callee expects for the i'th
// call argument; DomainUnknown when the evidence is absent or
// conflicting.
func (s *FuncSummary) ArgDomain(i int) Domain {
	if s == nil {
		return DomainUnknown
	}
	i = s.argIndex(i)
	if i < 0 || i >= len(s.paramDomain) {
		return DomainUnknown
	}
	return s.paramDomain[i].concrete()
}

// ResultDomain reports the unit domain of the callee's first result.
func (s *FuncSummary) ResultDomain() Domain {
	if s == nil {
		return DomainUnknown
	}
	return s.resultDomain.concrete()
}

// inertFuncs is the curated override list: functions whose
// synchronization discipline the summary analysis cannot see. The
// internal/par executors do store their closure argument (into a job
// sent on the worker channel) but join on every chunk before returning,
// so nothing escapes the caller's frame; without the override every
// closure-capturing par.For call would look like a retention.
var inertFuncs = map[string]bool{
	"qtenon/internal/par.For":        true,
	"qtenon/internal/par.Do":         true,
	"qtenon/internal/par.DoScratch":  true,
	"qtenon/internal/par.SumFloat64": true,
	"qtenon/internal/par.SumComplex": true,
}

func qualifiedName(f *types.Func) string {
	if f.Pkg() == nil {
		return f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}

// maxSummaryRounds bounds the global fixpoint. Summaries only grow, so
// the loop terminates on its own; the cap is a backstop against a bug,
// not a tuning knob.
const maxSummaryRounds = 64

// NewProgram builds the call graph and computes every summary to a
// fixpoint. Functions are processed callee-first where the acyclic part
// of the call graph allows; cycles converge through the outer rounds.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:        pkgs,
		infos:       map[*types.Func]*FuncInfo{},
		summaries:   map[*types.Func]*FuncSummary{},
		byName:      map[string]*types.Func{},
		closedChans: map[string]string{},
		lockEdges:   map[lockPair]*lockEdge{},
		ignores:     map[*Package]ignoreIndex{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Func: obj, Decl: fd, Pkg: pkg}
				p.infos[obj] = fi
				p.byName[obj.FullName()] = obj
				p.order = append(p.order, fi)
			}
		}
	}
	sort.SliceStable(p.order, func(i, j int) bool {
		a, b := p.order[i], p.order[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	for _, fi := range p.order {
		p.summaries[fi.Func] = newSummary(fi.Func)
	}
	ordered := p.bottomUpOrder()
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, fi := range ordered {
			if summarize(p, fi) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return p
}

// Summary returns f's summary, or nil when f's source is not part of
// the program (stdlib, export-data-only dependency) or f is on the
// curated inert list. Instantiated generics resolve to their origin.
func (p *Program) Summary(f *types.Func) *FuncSummary {
	if p == nil || f == nil {
		return nil
	}
	if o := f.Origin(); o != nil {
		f = o
	}
	if inertFuncs[qualifiedName(f)] {
		return nil
	}
	return p.summaries[p.canonical(f)]
}

// canonical resolves f — possibly an export-data identity seen from an
// importing package — to the source-checked object the summary maps are
// keyed by.
func (p *Program) canonical(f *types.Func) *types.Func {
	if _, ok := p.infos[f]; ok {
		return f
	}
	if c, ok := p.byName[f.FullName()]; ok {
		return c
	}
	return f
}

// Info returns the declaration info for f, or nil.
func (p *Program) Info(f *types.Func) *FuncInfo {
	if p == nil || f == nil {
		return nil
	}
	if o := f.Origin(); o != nil {
		f = o
	}
	return p.infos[p.canonical(f)]
}

func newSummary(f *types.Func) *FuncSummary {
	sig := f.Type().(*types.Signature)
	s := &FuncSummary{
		Func:     f,
		hasRecv:  sig.Recv() != nil,
		variadic: sig.Variadic(),
	}
	s.nparams = sig.Params().Len()
	if s.hasRecv {
		s.nparams++
	}
	s.paramDomain = make([]Domain, s.nparams)
	return s
}

// bottomUpOrder approximates reverse-topological (callee-first) order:
// a depth-first postorder over the static call graph, deterministic
// because roots and edges are visited in p.order / source order. Cycles
// are handled by the enclosing fixpoint loop, not here.
func (p *Program) bottomUpOrder() []*FuncInfo {
	visited := map[*types.Func]bool{}
	var out []*FuncInfo
	var visit func(fi *FuncInfo)
	visit = func(fi *FuncInfo) {
		if visited[fi.Func] {
			return
		}
		visited[fi.Func] = true
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeIn(fi.Pkg.Info, call); callee != nil {
				if ci := p.Info(callee); ci != nil {
					visit(ci)
				}
			}
			return true
		})
		out = append(out, fi)
	}
	for _, fi := range p.order {
		visit(fi)
	}
	return out
}

// ---- shared type-info helpers (usable outside a Pass) ----

func objectIn(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// calleeIn resolves a call to the *types.Func it statically invokes,
// unwrapping generic instantiation syntax; nil for calls through
// function values, builtins and type conversions.
func calleeIn(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(x.X) // f[T](…)
	case *ast.IndexListExpr:
		fun = ast.Unparen(x.X) // f[T1, T2](…)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if f, ok := objectIn(info, fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := objectIn(info, fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isConversion reports whether call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// isBuiltinIn reports whether call invokes the named builtin.
func isBuiltinIn(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := objectIn(info, id).(*types.Builtin)
	return isBuiltin
}

// ---- per-function summarization ----

// summarizer analyzes one function body against the current summaries
// and folds new facts into its (shared, monotone) summary.
type summarizer struct {
	prog *Program
	fi   *FuncInfo
	sum  *FuncSummary

	// paramBits seeds the receiver and each named parameter with its bit.
	paramBits map[types.Object]bitset
	// aliases maps locals (and local aggregates stored through) to the
	// parameter bits their values may alias. Monotone within a pass.
	aliases map[types.Object]bitset

	changed bool
}

// summarize recomputes fi's summary facts; reports whether it grew.
func summarize(p *Program, fi *FuncInfo) bool {
	s := &summarizer{
		prog:      p,
		fi:        fi,
		sum:       p.summaries[fi.Func],
		paramBits: map[types.Object]bitset{},
		aliases:   map[types.Object]bitset{},
	}
	idx := 0
	addParams := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			if len(f.Names) == 0 {
				idx++ // unnamed parameter still occupies a slot
				continue
			}
			for _, name := range f.Names {
				if obj := fi.Pkg.Info.Defs[name]; obj != nil {
					s.paramBits[obj] = paramBit(idx)
				}
				idx++
			}
		}
	}
	addParams(fi.Decl.Recv)
	addParams(fi.Decl.Type.Params)

	// The alias map grows as the scan discovers flows; a few passes let
	// facts propagate backwards through loops.
	grew := false
	for pass := 0; pass < 3; pass++ {
		s.changed = false
		s.scan(fi.Decl.Body)
		grew = grew || s.changed
		if !s.changed {
			break
		}
	}
	if summarizeDomains(p, fi, s.sum) {
		grew = true
	}
	if summarizeV3(p, fi, s.sum) {
		grew = true
	}
	if summarizeV4(p, fi, s.sum) {
		grew = true
	}
	return grew
}

func (s *summarizer) retain(b bitset) {
	if b != 0 && s.sum.retains&b != b {
		s.sum.retains |= b
		s.changed = true
	}
}

func (s *summarizer) mutate(b bitset) {
	if b != 0 && s.sum.mutates&b != b {
		s.sum.mutates |= b
		s.changed = true
	}
}

func (s *summarizer) flow(b bitset) {
	if b != 0 && s.sum.flows&b != b {
		s.sum.flows |= b
		s.changed = true
	}
}

// isLocal reports whether obj is declared inside this function.
func (s *summarizer) isLocal(obj types.Object) bool {
	return obj != nil && obj.Pos() >= s.fi.Decl.Pos() && obj.Pos() <= s.fi.Decl.End()
}

// setOf computes the parameter bits the value of e may alias.
func (s *summarizer) setOf(e ast.Expr) bitset {
	if e == nil {
		return 0
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := objectIn(s.fi.Pkg.Info, x)
		if obj == nil {
			return 0
		}
		return s.paramBits[obj] | s.aliases[obj]
	case *ast.SelectorExpr:
		return s.setOf(x.X)
	case *ast.IndexExpr:
		return s.setOf(x.X)
	case *ast.IndexListExpr:
		return s.setOf(x.X)
	case *ast.SliceExpr:
		return s.setOf(x.X)
	case *ast.StarExpr:
		return s.setOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return s.setOf(x.X)
		}
		return 0
	case *ast.CompositeLit:
		var b bitset
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			b |= s.setOf(elt)
		}
		return b
	case *ast.CallExpr:
		return s.callResultSet(x)
	case *ast.TypeAssertExpr:
		return s.setOf(x.X)
	case *ast.FuncLit:
		return s.captureSet(x)
	}
	return 0
}

// callResultSet reports the parameter bits a call's result may alias:
// append flows its first argument plus any alias-capable elements (the
// appended headers reference their backing arrays from the result, so
// `global = append(global, p)` retains p), conversions flow their
// operand, and known callees flow the arguments their summary marks
// ArgFlowsToResult.
func (s *summarizer) callResultSet(call *ast.CallExpr) bitset {
	info := s.fi.Pkg.Info
	if isConversion(info, call) && len(call.Args) == 1 {
		return s.setOf(call.Args[0])
	}
	if isBuiltinIn(info, call, "append") && len(call.Args) > 0 {
		b := s.setOf(call.Args[0])
		for _, arg := range call.Args[1:] {
			b |= s.setOf(arg)
		}
		return b
	}
	callee := calleeIn(info, call)
	if callee == nil {
		return 0
	}
	sum := s.prog.Summary(callee)
	if sum == nil {
		return 0
	}
	var b bitset
	if sum.hasRecv && sum.flows&paramBit(0) != 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			b |= s.setOf(sel.X)
		}
	}
	for i, arg := range call.Args {
		if sum.ArgFlowsToResult(i) {
			b |= s.setOf(arg)
		}
	}
	return b
}

// captureSet reports the parameter bits a function literal captures.
func (s *summarizer) captureSet(lit *ast.FuncLit) bitset {
	info := s.fi.Pkg.Info
	var b bitset
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || (obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()) {
			return true
		}
		b |= s.paramBits[obj] | s.aliases[obj]
		return true
	})
	return b
}

// rootOf walks a store target to its base object and the bits of
// everything dereferenced on the way there.
func (s *summarizer) rootOf(e ast.Expr) (types.Object, bitset) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := objectIn(s.fi.Pkg.Info, x)
			if obj == nil {
				return nil, 0
			}
			return obj, s.paramBits[obj] | s.aliases[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, s.setOf(e)
		}
	}
}

// scan walks the body once, recording retention/mutation/flow facts.
func (s *summarizer) scan(body *ast.BlockStmt) {
	info := s.fi.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			s.assign(n)
		case *ast.RangeStmt:
			// for k, v := range p: v's values alias p's elements.
			src := s.setOf(n.X)
			if src != 0 && n.Tok == token.DEFINE {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					id, ok := e.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if obj := info.Defs[id]; obj != nil && isAliasCapable(obj.Type()) {
						s.join(obj, src)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				s.flow(s.setOf(res))
			}
		case *ast.SendStmt:
			s.retain(s.setOf(n.Value))
		case *ast.GoStmt:
			// The goroutine may outlive the frame: the function value's
			// captures and every argument escape.
			s.retain(s.setOf(n.Call.Fun))
			for _, arg := range n.Call.Args {
				s.retain(s.setOf(arg))
			}
			s.call(n.Call)
		case *ast.DeferStmt:
			s.call(n.Call) // runs inside the frame; only the call's own effects
		case *ast.CallExpr:
			s.call(n)
		}
		return true
	})
}

// join adds bits to a local's alias set.
func (s *summarizer) join(obj types.Object, b bitset) {
	if b == 0 || obj == nil {
		return
	}
	if s.aliases[obj]&b != b {
		s.aliases[obj] |= b
		s.changed = true
	}
}

// assign classifies each LHS of an assignment.
func (s *summarizer) assign(a *ast.AssignStmt) {
	for i, lhs := range a.Lhs {
		var rhs ast.Expr
		if len(a.Rhs) == len(a.Lhs) {
			rhs = a.Rhs[i]
		} else if len(a.Rhs) == 1 {
			rhs = a.Rhs[0] // multi-value call: every LHS may alias any flow
		}
		rset := s.setOf(rhs)
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := objectIn(s.fi.Pkg.Info, l)
			if obj == nil || !isAliasCapable(obj.Type()) {
				continue
			}
			if s.paramBits[obj] != 0 {
				// Reassigned parameter variable: its later flows now cover
				// the new value too.
				s.join(obj, rset)
				continue
			}
			if s.isLocal(obj) {
				s.join(obj, rset)
			} else {
				s.retain(rset) // package-level variable
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			root, rootBits := s.rootOf(lhs)
			s.mutate(rootBits)
			if rset == 0 {
				continue
			}
			if root != nil && rootBits == 0 && s.isLocal(root) {
				// Stored into a purely local aggregate: the aggregate now
				// carries the bits; if it escapes later the bits follow.
				s.join(root, rset)
			} else {
				s.retain(rset)
			}
		}
	}
}

// call applies a callee's summary to the arguments at this site.
func (s *summarizer) call(call *ast.CallExpr) {
	info := s.fi.Pkg.Info
	if isConversion(info, call) {
		return
	}
	if isBuiltinIn(info, call, "copy") && len(call.Args) == 2 {
		s.mutate(s.setOf(call.Args[0]))
		return
	}
	if isBuiltinIn(info, call, "append") && len(call.Args) > 0 {
		// Appended elements live in the destination's backing array;
		// appending parameter memory into another parameter's storage is
		// a retention. Where the result escapes is callResultSet's job.
		dst := s.setOf(call.Args[0])
		s.mutate(dst)
		if dst != 0 {
			for _, arg := range call.Args[1:] {
				s.retain(s.setOf(arg))
			}
		}
		return
	}
	callee := calleeIn(info, call)
	if callee == nil {
		return
	}
	sum := s.prog.Summary(callee)
	if sum == nil {
		return // unknown or curated-inert callee: assumed inert
	}
	if sum.hasRecv {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			rb := s.setOf(sel.X)
			if sum.retains&paramBit(0) != 0 {
				s.retain(rb)
			}
			if sum.mutates&paramBit(0) != 0 {
				s.mutate(rb)
			}
		}
	}
	for i, arg := range call.Args {
		ab := s.setOf(arg)
		if ab == 0 {
			continue
		}
		if sum.ArgRetained(i) {
			s.retain(ab)
		}
		if sum.ArgMutated(i) {
			s.mutate(ab)
		}
	}
}

// isAliasCapable reports whether values of t can carry aliases of
// parameter memory (reuses the scratcharena type walk).
func isAliasCapable(t types.Type) bool {
	if t == nil {
		return true
	}
	return typeAliases(t, 0)
}
