package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/vqa"
)

// Figure1 reproduces the motivation figure: on the decoupled baseline,
// (a) the quantum share of end-to-end time for QAOA, VQE, and QNN, and
// (b) the detailed breakdown for the VQE workload.
func Figure1(sc Scale) (string, error) {
	nq := sc.HeadlineQubits()
	var sb strings.Builder
	sb.WriteString(header("Figure 1: motivation — decoupled baseline time shares"))

	tb := newTable("workload", "qubits", "quantum %", "classical %", "paper quantum %")
	paperQ := map[vqa.Kind]string{vqa.QAOA: "7.9 (64q)", vqa.VQE: "7.0 (56q)", vqa.QNN: "6.3 (64q)"}
	var vqeDetail string
	for _, k := range vqa.Kinds() {
		res, err := runBaseline(k, nq, true, sc) // SPSA, as in Figure 13(a)
		if err != nil {
			return "", err
		}
		p := res.Breakdown.Percent()
		tb.AddRow(k.String(), nq, fmt.Sprintf("%.1f", p[0]), fmt.Sprintf("%.1f", 100-p[0]), paperQ[k])
		if k == vqa.VQE {
			vqeDetail = fmt.Sprintf(
				"(b) %d-qubit VQE breakdown: quantum %.1f%%, comm %.1f%%, pulse %.1f%%, host %.1f%% (total %v)\n"+
					"    paper: quantum 7.9%%, comm 65.1%%, pulse 4.4%%, host 9%% (plus compile) of 204.3 ms\n",
				nq, p[0], p[1], p[2], p[3], res.Breakdown.Total())
		}
	}
	sb.WriteString(tb.String())
	sb.WriteString(vqeDetail)
	return sb.String(), nil
}
