package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/qcc"
)

// Table2 reproduces the quantum controller cache design table: per-
// segment entry geometry and sizes for the 64-qubit configuration,
// computed from the implemented address map and bit-packed entry
// formats.
func Table2(Scale) (string, error) {
	cfg := qcc.DefaultConfig(64)
	type row struct {
		seg   qcc.Segment
		desc  string
		paper string
	}
	rows := []row{
		{qcc.SegProgram, "64 set × 1024 entry × 65 b (type4+reg1+data27+status3+qaddr30)", "520 KB"},
		{qcc.SegPulse, "64 set × 1024 entry × 640 b", "5 MB"},
		{qcc.SegMeasure, "5120 entry × 64 b", "40 KB"},
		{qcc.SegSLT, "64 set × 2 way × 128 entry × 56 b (tag20+qaddr30+valid1+count5)", "112 KB"},
		{qcc.SegRegfile, "1024 entry × 32 b", "4 KB"},
	}
	tb := newTable("segment", "geometry", "measured", "paper")
	for _, r := range rows {
		tb.AddRow(r.seg.String(), r.desc, formatBytes(cfg.SegmentBytes(r.seg)), r.paper)
	}
	var sb strings.Builder
	sb.WriteString(header("Table 2: quantum controller cache design (64 qubits)"))
	sb.WriteString(tb.String())
	fmt.Fprintf(&sb, "total: %s (paper: 5.66 MB)\n", formatBytes(cfg.TotalBytes()))
	fmt.Fprintf(&sb, "scalability check: 256 qubits → %s (paper §7.5: 22.63 MB)\n",
		formatBytes(qcc.DefaultConfig(256).TotalBytes()))
	return sb.String(), nil
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%d KB", b/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
