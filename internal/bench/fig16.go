package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/host"
	"qtenon/internal/report"
	"qtenon/internal/sched"
	"qtenon/internal/system"
	"qtenon/internal/vqa"
)

// Figure16 reproduces the software-optimization ablations:
// (a) memory consistency — quantum-host transmission time under the
// RISC-V default FENCE synchronization vs Qtenon's fine-grained barrier;
// (b) instruction scheduling — host computation time with and without
// batched transmission (Algorithm 1).
func Figure16(sc Scale) (string, error) {
	nq := sc.HeadlineQubits()
	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Figure 16: software optimizations, %d qubits", nq)))

	sb.WriteString("(a) synchronization: exposed quantum-host transmission time\n")
	for _, spsa := range []bool{false, true} {
		tb := newTable("workload", "FENCE (RISC-V default)", "fine-grained", "speedup")
		for _, k := range vqa.Kinds() {
			fence := system.DefaultConfig(host.BoomL())
			fence.Sync = sched.FENCE
			fres, err := runQtenonCfg(fence, k, nq, spsa, sc)
			if err != nil {
				return "", err
			}
			fine, err := runQtenonCfg(system.DefaultConfig(host.BoomL()), k, nq, spsa, sc)
			if err != nil {
				return "", err
			}
			fenceComm := fres.Breakdown.Comm + fres.Breakdown.HostComp
			fineComm := fine.Breakdown.Comm + fine.Breakdown.HostComp
			tb.AddRow(k.String(), fenceComm.String(), fineComm.String(),
				fmt.Sprintf("%.1f", report.Speedup(fenceComm, fineComm)))
		}
		fmt.Fprintf(&sb, "-- %s --\n%s", optimizerName(spsa), tb.String())
	}
	sb.WriteString("paper (a): QAOA speedups 2.7× (GD) / 2.5× (SPSA); larger for VQE/QNN under GD\n\n")

	sb.WriteString("(b) scheduling: host computation time (activity) with/without batching\n")
	for _, spsa := range []bool{false, true} {
		tb := newTable("workload", "w/o schedule", "w/ schedule", "speedup")
		for _, k := range vqa.Kinds() {
			unbatched := system.DefaultConfig(host.BoomL())
			unbatched.Batching = false
			ures, err := runQtenonCfg(unbatched, k, nq, spsa, sc)
			if err != nil {
				return "", err
			}
			bres, err := runQtenonCfg(system.DefaultConfig(host.BoomL()), k, nq, spsa, sc)
			if err != nil {
				return "", err
			}
			tb.AddRow(k.String(), ures.HostActivity.String(), bres.HostActivity.String(),
				fmt.Sprintf("%.1f", report.Speedup(ures.HostActivity, bres.HostActivity)))
		}
		fmt.Fprintf(&sb, "-- %s --\n%s", optimizerName(spsa), tb.String())
	}
	sb.WriteString("paper (b): GD 4.4×/10.1×/3.4×; SPSA 6.6×/3.5×/2.6× (QAOA/VQE/QNN)\n")
	return sb.String(), nil
}
