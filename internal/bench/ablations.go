package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/host"
	"qtenon/internal/opt"
	"qtenon/internal/quantum"
	"qtenon/internal/report"
	"qtenon/internal/sched"
	"qtenon/internal/system"
	"qtenon/internal/tilelink"
	"qtenon/internal/vqa"
)

// Ablations runs the design-choice studies DESIGN.md calls out beyond
// the paper's own figures: SLT on/off, PGU count sweep, bus tag (RBQ
// depth) sweep, and the batch-interval sensitivity.
func Ablations(sc Scale) (string, error) {
	nq := sc.HeadlineQubits()
	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Ablations, %d-qubit VQE, SPSA (Boom core)", nq)))

	// SLT on/off.
	withSLT, err := runQtenonCfg(system.DefaultConfig(host.BoomL()), vqa.VQE, nq, true, sc)
	if err != nil {
		return "", err
	}
	noSLTCfg := system.DefaultConfig(host.BoomL())
	noSLTCfg.UseSLT = false
	noSLT, err := runQtenonCfg(noSLTCfg, vqa.VQE, nq, true, sc)
	if err != nil {
		return "", err
	}
	tb := newTable("config", "pulses generated", "pulse-gen time", "end-to-end")
	tb.AddRow("with SLT", withSLT.PulsesGenerated, withSLT.Breakdown.PulseGen.String(), withSLT.Breakdown.Total().String())
	tb.AddRow("without SLT", noSLT.PulsesGenerated, noSLT.Breakdown.PulseGen.String(), noSLT.Breakdown.Total().String())
	sb.WriteString("SLT ablation:\n" + tb.String())
	fmt.Fprintf(&sb, "SLT saves %.1f%% of pulse syntheses\n\n",
		100*(1-float64(withSLT.PulsesGenerated)/float64(noSLT.PulsesGenerated)))

	// PGU count sweep.
	tb = newTable("PGUs", "pulse-gen time", "speedup vs 1")
	var onePGU report.RunResult
	for _, pgus := range []int{1, 2, 4, 8, 16} {
		cfg := system.DefaultConfig(host.BoomL())
		cfg.PGUs = pgus
		res, err := runQtenonCfg(cfg, vqa.VQE, nq, true, sc)
		if err != nil {
			return "", err
		}
		if pgus == 1 {
			onePGU = res
		}
		tb.AddRow(pgus, res.Breakdown.PulseGen.String(),
			fmt.Sprintf("%.2f", report.Speedup(onePGU.Breakdown.PulseGen, res.Breakdown.PulseGen)))
	}
	sb.WriteString("PGU sweep (paper uses 8):\n" + tb.String() + "\n")

	// Bus tag sweep: effect of outstanding-request budget on the q_set
	// upload of a large program.
	tb = newTable("tags", "q_set upload cycles (1000 beats)")
	for _, tags := range []int{2, 4, 8, 16, 32} {
		cfg := tilelink.DefaultConfig()
		cfg.Tags = tags
		bus, err := tilelink.NewBus(cfg)
		if err != nil {
			return "", err
		}
		rbq := tilelink.NewRBQ(tags, 8, 1<<16)
		res, err := tilelink.Transfer(bus, rbq, 0, 1000, false, nil)
		if err != nil {
			return "", err
		}
		tb.AddRow(tags, res.Cycles)
	}
	sb.WriteString("TileLink tag sweep (paper uses 32, 5-bit):\n" + tb.String() + "\n")

	// Batch interval sensitivity: host activity vs K.
	tb = newTable("batch K", "host activity", "comm activity")
	for _, k := range []int{1, 2, 4, 8, 16} {
		in := sched.TimelineInput{
			Mode:             sched.FineGrained,
			ShotTime:         1100, // ps units irrelevant for the ratio
			Batches:          sched.PlanBatches(sc.Shots(), k),
			TransferPerBatch: 20,
			HostPerShot:      140,
			HostPerBatch:     100,
		}
		tl := sched.Compute(in)
		tb.AddRow(k, tl.HostActivity.String(), tl.CommActivity.String())
	}
	sb.WriteString("batch-interval sweep (Algorithm 1 picks K=⌊bus/N⌋):\n" + tb.String() + "\n")

	// NISQ-noise robustness: optimizer progress under realistic error
	// rates (exact 10-qubit backend so noise is the only difference).
	w, err := vqa.New(vqa.QAOA, 10)
	if err != nil {
		return "", err
	}
	o := sc.options()
	o.Iterations = max(o.Iterations, 5)
	tb = newTable("chip", "initial cost", "best cost", "improvement")
	for _, noisy := range []bool{false, true} {
		cfg := system.DefaultConfig(host.BoomL())
		cfg.Shots = sc.Shots()
		label := "ideal"
		if noisy {
			cfg.Noise = quantum.TypicalNISQ()
			label = "typical NISQ"
		}
		sys, err := system.New(cfg, w)
		if err != nil {
			return "", err
		}
		initial, err := sys.Evaluate(w.InitialParams)
		if err != nil {
			return "", err
		}
		res, err := opt.SPSA(sys.Evaluate, w.InitialParams, o)
		if err != nil {
			return "", err
		}
		best := res.History[0]
		for _, c := range res.History {
			if c < best {
				best = c
			}
		}
		tb.AddRow(label, fmt.Sprintf("%.3f", initial), fmt.Sprintf("%.3f", best),
			fmt.Sprintf("%.3f", initial-best))
	}
	sb.WriteString("NISQ-noise robustness (10-qubit QAOA, SPSA):\n" + tb.String())
	return sb.String(), nil
}
