package bench

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"qtenon/internal/baseline"
	"qtenon/internal/host"
	"qtenon/internal/report"
	"qtenon/internal/route"
	"qtenon/internal/system"
	"qtenon/internal/vqa"
)

// TestRunCacheExactlyOnce hammers one key from many goroutines and
// checks the run body executed exactly once, with every caller seeing
// the same result.
func TestRunCacheExactlyOnce(t *testing.T) {
	var c runCache
	var executions atomic.Int64
	const callers = 16
	results := make([]report.RunResult, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.do("k", func() (report.RunResult, error) {
				executions.Add(1)
				return report.RunResult{Evaluations: 7, History: []float64{1, 2}}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if n := executions.Load(); n != 1 {
		t.Fatalf("run body executed %d times, want exactly 1", n)
	}
	if h, m := c.hits.Load(), c.misses.Load(); m != 1 || h != callers-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", h, m, callers-1)
	}
	for i, res := range results {
		if res.Evaluations != 7 || !reflect.DeepEqual(res.History, []float64{1, 2}) {
			t.Fatalf("caller %d saw %+v", i, res)
		}
	}
}

// TestRunCacheHistoryIsolated checks a caller mutating its History copy
// cannot corrupt the cached run.
func TestRunCacheHistoryIsolated(t *testing.T) {
	var c runCache
	run := func() (report.RunResult, error) {
		return report.RunResult{History: []float64{1, 2, 3}}, nil
	}
	a, _ := c.do("k", run)
	a.History[0] = 99
	b, _ := c.do("k", run)
	if b.History[0] != 1 {
		t.Fatalf("cached History corrupted by caller mutation: %v", b.History)
	}
}

// TestRunCacheKeysDiscriminate checks that every knob that changes a
// run's behaviour lands in the key: same-looking configurations must
// share, different ones must not.
func TestRunCacheKeysDiscriminate(t *testing.T) {
	base := system.DefaultConfig(host.BoomL())
	o := QuickScale.options()
	k0 := qtenonKey(base, vqa.VQE, 8, true, o)
	if k1 := qtenonKey(base, vqa.VQE, 8, true, o); k1 != k0 {
		t.Fatalf("identical configs produced different keys:\n%s\n%s", k0, k1)
	}
	mutants := []system.Config{}
	for _, mut := range []func(*system.Config){
		func(c *system.Config) { c.Shots++ },
		func(c *system.Config) { c.Seed++ },
		func(c *system.Config) { c.Batching = !c.Batching },
		func(c *system.Config) { c.Incremental = !c.Incremental },
		func(c *system.Config) { c.UseSLT = !c.UseSLT },
		func(c *system.Config) { c.PGUs++ },
		func(c *system.Config) { c.Noise.Readout = 0.01 },
		func(c *system.Config) { c.Core = host.Rocket() },
		func(c *system.Config) { c.Method = route.Dense },
		func(c *system.Config) { c.Method = route.Sharded },
	} {
		c := base
		mut(&c)
		mutants = append(mutants, c)
	}
	seen := map[string]int{k0: -1}
	for i, c := range mutants {
		k := qtenonKey(c, vqa.VQE, 8, true, o)
		if prev, dup := seen[k]; dup {
			t.Fatalf("mutant %d collides with %d: %s", i, prev, k)
		}
		seen[k] = i
	}
	if k := qtenonKey(base, vqa.QAOA, 8, true, o); seen[k] == -1 {
		t.Fatal("workload kind missing from key")
	}
	if k := qtenonKey(base, vqa.VQE, 10, true, o); seen[k] == -1 {
		t.Fatal("qubit count missing from key")
	}
	if k := qtenonKey(base, vqa.VQE, 8, false, o); seen[k] == -1 {
		t.Fatal("algorithm missing from key")
	}
}

// TestMethodPinnedRunsDoNotShareCache is the end-to-end shape of the
// original bug: the run-memoization keys predate method routing, so two
// runs differing only in the pinned engine could be served one cached
// result. They must execute as two unique runs.
func TestMethodPinnedRunsDoNotShareCache(t *testing.T) {
	ResetCache()
	defer ResetCache()
	var results [2]report.RunResult
	for i, sc := range [2]Scale{
		{Quick: true},
		{Quick: true, Method: route.Dense},
	} {
		res, err := runQtenon(vqa.VQE, 4, host.BoomL(), true, sc)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if _, misses := CacheStats(); misses != 2 {
		t.Fatalf("unique runs executed = %d, want 2 (auto and forced-dense must not share a key)", misses)
	}
	if results[1].Method != "dense" {
		t.Fatalf("forced-dense run reported method %q", results[1].Method)
	}
	bk := func(m route.Method) string {
		cfg := baseline.DefaultConfig()
		cfg.Method = m
		return baselineKey(cfg, vqa.VQE, 8, true, QuickScale.options())
	}
	if bk(route.Auto) == bk(route.Product) {
		t.Error("baselineKey ignores Config.Method")
	}
}

// TestFiguresShareRuns regenerates two figures that contain the same
// underlying run and checks the cache deduplicated it, while a cold
// cache executes every unique run as a miss.
func TestFiguresShareRuns(t *testing.T) {
	ResetCache()
	defer ResetCache()
	if _, err := Figure13(QuickScale); err != nil {
		t.Fatal(err)
	}
	_, missesAfter13 := CacheStats()
	if missesAfter13 == 0 {
		t.Fatal("figure 13 executed no runs")
	}
	// Figure 14 includes the BoomL VQE SPSA run Figure 13 already did.
	if _, err := Figure14(QuickScale); err != nil {
		t.Fatal(err)
	}
	hits, _ := CacheStats()
	if hits == 0 {
		t.Fatal("figures 13 and 14 share runs, but the cache recorded no hits")
	}
	// Rerunning a whole figure must be all hits, no new executions.
	_, missesBefore := CacheStats()
	if _, err := Figure13(QuickScale); err != nil {
		t.Fatal(err)
	}
	if _, misses := CacheStats(); misses != missesBefore {
		t.Fatalf("rerun executed %d new runs, want 0", misses-missesBefore)
	}
}
