package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/host"
	"qtenon/internal/report"
	"qtenon/internal/vqa"
)

// Table5 reproduces the pulse-generation comparison: Qtenon's speedup in
// pulse generation time over the baseline FPGA, and the reduction in
// computation requirement (pulses actually synthesized) enabled by
// dynamic incremental compilation plus the SLT.
func Table5(sc Scale) (string, error) {
	nq := sc.HeadlineQubits()
	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Table 5: pulse generation, %d qubits", nq)))
	for _, spsa := range []bool{false, true} {
		tb := newTable("workload", "baseline pulses", "Qtenon pulses", "reduction %",
			"SLT hit %", "baseline time", "Qtenon time", "speedup")
		for _, k := range vqa.Kinds() {
			base, err := runBaseline(k, nq, spsa, sc)
			if err != nil {
				return "", err
			}
			qt, err := runQtenon(k, nq, host.BoomL(), spsa, sc)
			if err != nil {
				return "", err
			}
			reduction := 100 * (1 - float64(qt.PulsesGenerated)/float64(base.PulsesGenerated))
			tb.AddRow(k.String(), base.PulsesGenerated, qt.PulsesGenerated,
				fmt.Sprintf("%.1f", reduction),
				fmt.Sprintf("%.1f", 100*qt.SLTHitRate),
				base.Breakdown.PulseGen.String(), qt.Breakdown.PulseGen.String(),
				fmt.Sprintf("%.1f", report.Speedup(base.Breakdown.PulseGen, qt.Breakdown.PulseGen)))
		}
		fmt.Fprintf(&sb, "-- %s --\n%s", optimizerName(spsa), tb.String())
	}
	sb.WriteString("paper (GD):   speedup 204.2×/339.0×/647.9×, reduction 96.8%/98.3%/98.9%\n")
	sb.WriteString("paper (SPSA): speedup 23.3×/13.5×/27.8×,   reduction 61.3%/55.7%/72.1%\n")
	return sb.String(), nil
}
