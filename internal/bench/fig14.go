package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/host"
	"qtenon/internal/report"
	"qtenon/internal/vqa"
)

// Figure14 reproduces the quantum-host communication analysis: total
// communication time on the baseline vs Qtenon (Boom core, §7.3) for GD
// and SPSA, plus Qtenon's breakdown by instruction class
// (q_set / q_update / q_acquire).
func Figure14(sc Scale) (string, error) {
	nq := sc.HeadlineQubits()
	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Figure 14: quantum-host communication, %d qubits (Boom core)", nq)))

	for _, spsa := range []bool{false, true} {
		tb := newTable("workload", "baseline comm", "Qtenon comm", "speedup",
			"q_set %", "q_update %", "q_acquire %")
		for _, k := range vqa.Kinds() {
			base, err := runBaseline(k, nq, spsa, sc)
			if err != nil {
				return "", err
			}
			qt, err := runQtenon(k, nq, host.BoomL(), spsa, sc)
			if err != nil {
				return "", err
			}
			cp := qt.Comm.Percent()
			tb.AddRow(k.String(), base.Breakdown.Comm.String(), qt.Breakdown.Comm.String(),
				fmt.Sprintf("%.0f", report.Speedup(base.Breakdown.Comm, qt.Breakdown.Comm)),
				fmt.Sprintf("%.1f", cp[0]), fmt.Sprintf("%.1f", cp[1]), fmt.Sprintf("%.1f", cp[2]))
		}
		fmt.Fprintf(&sb, "-- %s --\n%s", optimizerName(spsa), tb.String())
	}
	sb.WriteString("paper (GD): baseline QAOA 94.3 ms / QNN 2.7 s; Qtenon QAOA 14.2 µs / QNN 456 µs\n")
	sb.WriteString("            (5921× and 6647×); q_acquire 85.2% (QAOA) / 98.1% (QNN)\n")
	sb.WriteString("paper (SPSA): baseline 18.4 ms for all; Qtenon dominated by q_set/q_update\n")
	return sb.String(), nil
}
