package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/backend"
	"qtenon/internal/host"
	"qtenon/internal/opt"
	"qtenon/internal/sched"
	"qtenon/internal/system"
	"qtenon/internal/trace"
	"qtenon/internal/vqa"
)

// Figure9 reproduces the synchronization timing diagram: the same
// workload run under FENCE and under fine-grained synchronization, drawn
// as resource timelines. Under FENCE the host lane is empty while the
// quantum lane runs (the paper's t_STALL); under fine-grained sync the
// classical lanes tuck under the quantum shadow.
func Figure9(sc Scale) (string, error) {
	nq := sc.HeadlineQubits()
	if nq > 16 {
		nq = 16 // a short run keeps the diagram readable
	}
	w, err := vqa.New(vqa.QAOA, nq)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(header("Figure 9: synchronization timing (rendered from the trace recorder)"))
	for _, mode := range []sched.SyncMode{sched.FENCE, sched.FineGrained} {
		cfg := system.DefaultConfig(host.BoomL())
		cfg.Shots = 60
		cfg.Sync = mode
		sys, err := system.New(cfg, w)
		if err != nil {
			return "", err
		}
		rec := &trace.Recorder{}
		sys.SetTrace(rec)
		o := opt.DefaultOptions()
		o.Iterations = 1
		if _, err := backend.RunOn(sys, w.InitialParams, backend.SPSA, o); err != nil {
			return "", err
		}
		bd := sys.Result().Breakdown
		fmt.Fprintf(&sb, "-- %v --\n%s", mode, rec.Render(96))
		fmt.Fprintf(&sb, "exposed classical: %v of %v total\n\n",
			bd.Classical(), bd.Total())
	}
	sb.WriteString("paper: Figure 9(a) FENCE stalls the host until quantum completes;\n")
	sb.WriteString("       9(b) fine-grained sync overlaps transmission and post-processing.\n")
	return sb.String(), nil
}
