package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qtenon/internal/baseline"
	"qtenon/internal/opt"
	"qtenon/internal/report"
	"qtenon/internal/system"
	"qtenon/internal/vqa"
)

// Run memoization. The figures share runs heavily — the full-Qtenon VQE
// SPSA point of Figure 13 is the same run Figure 14's first row and the
// ablation tables execute — and every run is deterministic: a fixed
// (configuration, workload, algorithm, options) tuple always produces
// the same RunResult. Regenerating all figures therefore executes each
// unique run exactly once; repeats are served from this cache.
//
// Keys are content-hashed from the full configuration (the coupling map
// is rendered by structure, never by pointer), so two sweep points that
// merely look alike but differ in any knob never collide. Concurrent
// requests for the same key (sweep points fan out across the worker
// pool) block on one sync.Once, preserving the exactly-once guarantee.

// runCache memoizes completed runs by content key.
type runCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits, misses atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	res  report.RunResult
	err  error
}

// do returns the cached result for key, executing run (exactly once per
// key, even under concurrency) on first request. The returned result's
// History is a fresh copy, so callers may mutate it freely.
func (c *runCache) do(key string, run func() (report.RunResult, error)) (report.RunResult, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[string]*cacheEntry)
	}
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	first := false
	// A duplicate caller waits behind the first run of a batch experiment
	// generator, not a serving request; the run is finite by construction
	// and there is no cancellation story for half-computed RunResults.
	//lint:ignore ctxflow memoized batch experiment — the guarded run is finite and offline, not on a serving path (DESIGN.md §15.4)
	e.once.Do(func() {
		first = true
		e.res, e.err = run()
	})
	if first {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	res := e.res
	res.History = append([]float64(nil), e.res.History...)
	return res, e.err
}

// cache is the package-level run cache shared by every generator.
var cache runCache

// CacheStats reports the run cache's hit/miss counters: misses count
// unique runs actually executed, hits count runs served from memory.
func CacheStats() (hits, misses int64) {
	return cache.hits.Load(), cache.misses.Load()
}

// ResetCache drops all cached runs and zeroes the counters (tests, and
// any caller that wants a cold regeneration).
func ResetCache() {
	cache.mu.Lock()
	cache.entries = nil
	cache.mu.Unlock()
	cache.hits.Store(0)
	cache.misses.Store(0)
}

// CacheStatsLine renders the counters for report footers and logs.
func CacheStatsLine() string {
	h, m := CacheStats()
	return fmt.Sprintf("run cache: %d unique runs executed, %d served from cache", m, h)
}

// qtenonKey renders a full-Qtenon run configuration as a content key.
// system.Config is a value struct except for the coupling pointer, which
// is replaced by its structural fingerprint.
func qtenonKey(cfg system.Config, kind vqa.Kind, nq int, spsa bool, o opt.Options) string {
	coup := ""
	if cfg.Coupling != nil {
		coup = cfg.Coupling.Fingerprint()
	}
	flat := cfg
	flat.Coupling = nil
	// Method gets its own component: the original keys predate method
	// routing, and a forced-method run must never be served a cached
	// result that executed on a different engine.
	return fmt.Sprintf("qtenon|cfg=%+v|coupling=%s|method=%s|kind=%d|nq=%d|spsa=%t|opt=%+v",
		flat, coup, cfg.Method, kind, nq, spsa, o)
}

// baselineKey renders a decoupled-baseline run configuration as a
// content key (baseline.Config is a pure value struct).
func baselineKey(cfg baseline.Config, kind vqa.Kind, nq int, spsa bool, o opt.Options) string {
	return fmt.Sprintf("baseline|cfg=%+v|method=%s|kind=%d|nq=%d|spsa=%t|opt=%+v",
		cfg, cfg.Method, kind, nq, spsa, o)
}
