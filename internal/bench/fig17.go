package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/host"
	"qtenon/internal/report"
	"qtenon/internal/sim"
	"qtenon/internal/vqa"
)

// ScaleRow is one point of the Figure 17 scalability sweep.
type ScaleRow struct {
	Workload vqa.Kind
	Qubits   int
	Comm     sim.Time
	Host     sim.Time
}

// scalePoints enumerates the Figure 17 grid in output order.
func scalePoints(sc Scale) (kinds []vqa.Kind, qubits []int) {
	return []vqa.Kind{vqa.QAOA, vqa.VQE}, sc.ScaleQubits()
}

// runScaleGrid executes every (workload × qubit-count) point of the
// Figure 17 sweep across the worker pool, returning results indexed in
// kind-major grid order.
func runScaleGrid(sc Scale) ([]report.RunResult, error) {
	kinds, qubits := scalePoints(sc)
	results := make([]report.RunResult, len(kinds)*len(qubits))
	err := forEachPoint(len(results), func(i int) error {
		k := kinds[i/len(qubits)]
		nq := qubits[i%len(qubits)]
		var err error
		results[i], err = runQtenon(k, nq, host.BoomL(), true, sc)
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ScaleRows computes the Figure 17 data points (SPSA, Boom core).
func ScaleRows(sc Scale) ([]ScaleRow, error) {
	kinds, qubits := scalePoints(sc)
	results, err := runScaleGrid(sc)
	if err != nil {
		return nil, err
	}
	var rows []ScaleRow
	for ki, k := range kinds {
		for qi, nq := range qubits {
			res := results[ki*len(qubits)+qi]
			rows = append(rows, ScaleRow{Workload: k, Qubits: nq, Comm: res.Breakdown.Comm, Host: res.HostActivity})
		}
	}
	return rows, nil
}

// ScaleCSV renders the scalability sweep as CSV.
func ScaleCSV(rows []ScaleRow) string {
	var sb strings.Builder
	sb.WriteString("workload,qubits,comm_ns,host_ns\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%d,%.3f,%.3f\n", r.Workload, r.Qubits, r.Comm.Nanoseconds(), r.Host.Nanoseconds())
	}
	return sb.String()
}

// Figure17 reproduces the scalability study: Qtenon's quantum-host
// communication time and host (classical computation) time for QAOA and
// VQE under SPSA as qubits grow from 64 to 320, relative to the 64-qubit
// point, plus the full breakdown at 256 qubits.
func Figure17(sc Scale) (string, error) {
	var sb strings.Builder
	sb.WriteString(header("Figure 17: scalability (SPSA, Boom core)"))

	kinds, qubits := scalePoints(sc)
	results, err := runScaleGrid(sc)
	if err != nil {
		return "", err
	}
	base := map[vqa.Kind][2]sim.Time{}
	var detailAt int
	if len(qubits) >= 4 {
		detailAt = qubits[3] // 256 in the full sweep
	} else {
		detailAt = qubits[len(qubits)-1]
	}
	var detail string
	tb := newTable("workload", "qubits", "comm time", "rel", "host time", "rel")
	for ki, k := range kinds {
		for qi, nq := range qubits {
			res := results[ki*len(qubits)+qi]
			comm := res.Breakdown.Comm
			hostT := res.HostActivity
			if _, ok := base[k]; !ok {
				base[k] = [2]sim.Time{comm, hostT}
			}
			b := base[k]
			tb.AddRow(k.String(), nq, comm.String(),
				fmt.Sprintf("%.2f", float64(comm)/float64(b[0])),
				hostT.String(),
				fmt.Sprintf("%.2f", float64(hostT)/float64(b[1])))
			if nq == detailAt && k == vqa.VQE {
				p := res.Breakdown.Percent()
				detail = fmt.Sprintf(
					"(c) %d-qubit VQE breakdown: quantum %.1f%%, comm %.2f%%, pulse %.1f%%, host %.1f%%\n"+
						"    paper @256q: quantum 76%%, comm 0.03–0.1%%, pulse ~16%%, host ~8%%\n",
					nq, p[0], p[1], p[2], p[3])
			}
		}
	}
	sb.WriteString(tb.String())
	sb.WriteString(detail)
	sb.WriteString("paper: comm and host time scale near-linearly; @320q VQE comm 34.4 µs, QAOA 12.5 µs;\n")
	sb.WriteString("       host time 6.4 ms (VQE) / 11.8 ms (QAOA) — quantum execution still dominates.\n")
	return sb.String(), nil
}
