package bench

import (
	"strings"
	"testing"
)

// All generators must run cleanly at Quick scale and emit their paper
// reference lines.
func TestAllGeneratorsQuick(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := Run(name, QuickScale)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, "==") {
				t.Errorf("missing header in output:\n%s", out)
			}
			if len(out) < 100 {
				t.Errorf("suspiciously short report:\n%s", out)
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", QuickScale); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestScaleParameters(t *testing.T) {
	if Full.Iterations() != 10 || Full.Shots() != 500 {
		t.Error("full scale must match the paper: 10 iterations, 500 shots")
	}
	if got := Full.SweepQubits(); len(got) != 8 || got[0] != 8 || got[7] != 64 {
		t.Errorf("full sweep = %v, want 8..64 step 8", got)
	}
	if got := Full.ScaleQubits(); len(got) != 5 || got[4] != 320 {
		t.Errorf("scalability sweep = %v, want 64..320", got)
	}
	if QuickScale.Iterations() >= Full.Iterations() {
		t.Error("quick scale not smaller")
	}
	if Full.HeadlineQubits() != 64 {
		t.Error("headline register must be 64 qubits at full scale")
	}
}

// Table 2 is scale-independent and must state the exact paper sizes.
func TestTable2Content(t *testing.T) {
	out, err := Table2(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"520 KB", "5.00 MB", "40 KB", "112 KB", "4 KB", "5.66 MB", "22.6"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

// Table 1's measured instruction-count ordering must hold at any scale.
func TestTable1Ordering(t *testing.T) {
	out, err := Table1(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TileLink & RoCC", "interleaved", "Instruction count"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}
