package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/host"
	"qtenon/internal/report"
	"qtenon/internal/vqa"
)

// SweepRow is one point of the Figure 11/12 speedup sweep.
type SweepRow struct {
	Workload  vqa.Kind
	Qubits    int
	Core      string
	Classical float64 // classical-execution-time speedup over baseline
	EndToEnd  float64 // end-to-end speedup over baseline
}

// Figure11 reproduces the GD sweep: classical-execution-time speedup and
// end-to-end speedup of Qtenon (Rocket and Boom-L) over the decoupled
// baseline, for 8–64 qubits across the three workloads.
func Figure11(sc Scale) (string, error) {
	rows, err := SweepRows(sc, false)
	if err != nil {
		return "", err
	}
	return formatSweep(rows, false), nil
}

// Figure12 is the same sweep under SPSA.
func Figure12(sc Scale) (string, error) {
	rows, err := SweepRows(sc, true)
	if err != nil {
		return "", err
	}
	return formatSweep(rows, true), nil
}

// SweepRows computes the Figure 11/12 data points. The (workload ×
// qubit-count) grid points are independent full optimizations, so they
// fan out across the worker pool; rows are assembled by grid index, so
// the output order matches the serial sweep exactly.
func SweepRows(sc Scale, spsa bool) ([]SweepRow, error) {
	cores := []host.Core{host.Rocket(), host.BoomL()}
	type point struct {
		k  vqa.Kind
		nq int
	}
	var points []point
	for _, k := range vqa.Kinds() {
		for _, nq := range sc.SweepQubits() {
			points = append(points, point{k, nq})
		}
	}
	perPoint := make([][]SweepRow, len(points))
	err := forEachPoint(len(points), func(i int) error {
		pt := points[i]
		base, err := runBaseline(pt.k, pt.nq, spsa, sc)
		if err != nil {
			return err
		}
		for _, core := range cores {
			qt, err := runQtenon(pt.k, pt.nq, core, spsa, sc)
			if err != nil {
				return err
			}
			perPoint[i] = append(perPoint[i], SweepRow{
				Workload:  pt.k,
				Qubits:    pt.nq,
				Core:      core.Name,
				Classical: report.Speedup(base.Breakdown.Classical(), qt.Breakdown.Classical()),
				EndToEnd:  report.Speedup(base.Breakdown.Total(), qt.Breakdown.Total()),
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []SweepRow
	for _, pr := range perPoint {
		rows = append(rows, pr...)
	}
	return rows, nil
}

// SweepCSV renders the sweep as CSV for plotting.
func SweepCSV(rows []SweepRow) string {
	var sb strings.Builder
	sb.WriteString("workload,qubits,core,classical_speedup,end_to_end_speedup\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%d,%s,%.4f,%.4f\n", r.Workload, r.Qubits, r.Core, r.Classical, r.EndToEnd)
	}
	return sb.String()
}

func formatSweep(rows []SweepRow, spsa bool) string {
	var sb strings.Builder
	figure := "Figure 11 (GD)"
	paperNote := "paper @64q end-to-end: QAOA 14.7×, VQE 11.7×, QNN 6.9×; classical avg: 354×/376×/222×"
	if spsa {
		figure = "Figure 12 (SPSA)"
		paperNote = "paper @64q end-to-end: QAOA 14.9×, VQE 11.5×, QNN 6.9×; classical avg: 167×/132×/125×"
	}
	sb.WriteString(header(figure + ": speedup over the decoupled baseline"))
	tb := newTable("workload", "qubits", "core", "classical ×", "end-to-end ×")
	sums := map[vqa.Kind]float64{}
	counts := map[vqa.Kind]int{}
	for _, r := range rows {
		tb.AddRow(r.Workload.String(), r.Qubits, r.Core,
			fmt.Sprintf("%.1f", r.Classical), fmt.Sprintf("%.2f", r.EndToEnd))
		sums[r.Workload] += r.Classical
		counts[r.Workload]++
	}
	sb.WriteString(tb.String())
	for _, k := range vqa.Kinds() {
		if counts[k] > 0 {
			fmt.Fprintf(&sb, "average classical speedup %s: %.1f×\n", k, sums[k]/float64(counts[k]))
		}
	}
	sb.WriteString(paperNote + "\n")
	return sb.String()
}
