package bench

import (
	"testing"

	"qtenon/internal/host"
	"qtenon/internal/system"
	"qtenon/internal/vqa"
)

// Shape regression guards: the paper's qualitative claims must hold even
// at Quick scale. A refactor that silently flips who wins should fail
// here, not in a manual reading of the full harness output.

func TestShapeSweepSpeedupsAboveOne(t *testing.T) {
	for _, spsa := range []bool{false, true} {
		rows, err := SweepRows(QuickScale, spsa)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatal("empty sweep")
		}
		for _, r := range rows {
			if r.EndToEnd <= 1 {
				t.Errorf("spsa=%v %s@%dq %s: end-to-end speedup %.2f ≤ 1",
					spsa, r.Workload, r.Qubits, r.Core, r.EndToEnd)
			}
			if r.Classical <= 10 {
				t.Errorf("spsa=%v %s@%dq %s: classical speedup %.1f ≤ 10",
					spsa, r.Workload, r.Qubits, r.Core, r.Classical)
			}
		}
	}
}

func TestShapeFigure13Ordering(t *testing.T) {
	// baseline > hw-only ≥ full Qtenon on total time; quantum dominance
	// flips from baseline (minor) to Qtenon (major).
	sc := QuickScale
	nq := sc.HeadlineQubits()
	base, err := runBaseline(vqa.VQE, nq, true, sc)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := runQtenonCfg(system.HardwareOnlyConfig(host.BoomL()), vqa.VQE, nq, true, sc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := runQtenonCfg(system.DefaultConfig(host.BoomL()), vqa.VQE, nq, true, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !(base.Breakdown.Total() > hw.Breakdown.Total() && hw.Breakdown.Total() >= full.Breakdown.Total()) {
		t.Errorf("ordering broken: baseline %v, hw-only %v, full %v",
			base.Breakdown.Total(), hw.Breakdown.Total(), full.Breakdown.Total())
	}
	if bp := base.Breakdown.Percent(); bp[0] > 50 {
		t.Errorf("baseline quantum share %.1f%% not minor", bp[0])
	}
	if fp := full.Breakdown.Percent(); fp[0] < 50 {
		t.Errorf("Qtenon quantum share %.1f%% not major", fp[0])
	}
}

func TestShapeTable5Reductions(t *testing.T) {
	// Incremental compilation + SLT always reduce pulse computation, and
	// GD (single-parameter updates) reduces it more than SPSA (all
	// parameters update).
	sc := QuickScale
	nq := sc.HeadlineQubits()
	reduction := func(spsa bool) float64 {
		base, err := runBaseline(vqa.VQE, nq, spsa, sc)
		if err != nil {
			t.Fatal(err)
		}
		qt, err := runQtenon(vqa.VQE, nq, host.BoomL(), spsa, sc)
		if err != nil {
			t.Fatal(err)
		}
		return 1 - float64(qt.PulsesGenerated)/float64(base.PulsesGenerated)
	}
	gd, spsa := reduction(false), reduction(true)
	if gd <= 0 || spsa <= 0 {
		t.Fatalf("non-positive reductions: gd=%v spsa=%v", gd, spsa)
	}
	if gd <= spsa {
		t.Errorf("GD reduction %.3f not above SPSA %.3f", gd, spsa)
	}
}

func TestShapeCommDominatedByAcquireUnderGD(t *testing.T) {
	res, err := runQtenon(vqa.VQE, QuickScale.HeadlineQubits(), host.BoomL(), false, QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Comm.Percent()
	if p[2] < p[0] || p[2] < p[1] {
		t.Errorf("GD comm breakdown q_set/q_update/q_acquire = %.1f/%.1f/%.1f; q_acquire should dominate", p[0], p[1], p[2])
	}
}
