package bench

import (
	"fmt"
	"sort"
)

// Generator produces one experiment's report.
type Generator func(Scale) (string, error)

// Experiments maps experiment ids (DESIGN.md §3) to their generators.
var Experiments = map[string]Generator{
	"table1":    Table1,
	"table2":    Table2,
	"table5":    Table5,
	"fig1":      Figure1,
	"fig9":      Figure9,
	"fig11":     Figure11,
	"fig12":     Figure12,
	"fig13":     Figure13,
	"fig14":     Figure14,
	"fig15":     Figure15,
	"fig16":     Figure16,
	"fig17":     Figure17,
	"ablations": Ablations,
	"router":    Router,
	"sharded":   Sharded,
}

// Names lists experiment ids in a stable order.
func Names() []string {
	names := make([]string, 0, len(Experiments))
	for n := range Experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by id.
func Run(name string, sc Scale) (string, error) {
	g, ok := Experiments[name]
	if !ok {
		return "", fmt.Errorf("bench: unknown experiment %q (have %v)", name, Names())
	}
	return g(sc)
}
