// Package bench regenerates every table and figure of the paper's
// evaluation section (§7). Each generator runs the actual system models
// — no canned numbers except the embedded paper-reference values printed
// alongside for comparison — and renders a text report.
//
// Generators accept a Scale: Full reproduces the paper's parameters
// (500 shots, 10 iterations, 8–64-qubit sweeps); Quick shrinks them for
// CI and `go test -bench`.
package bench

import (
	"fmt"

	"qtenon/internal/backend"
	"qtenon/internal/baseline"
	"qtenon/internal/host"
	"qtenon/internal/opt"
	"qtenon/internal/par"
	"qtenon/internal/report"
	"qtenon/internal/route"
	"qtenon/internal/system"
	"qtenon/internal/vqa"
)

// Scale selects experiment size. Method optionally pins every run's
// simulation engine (qtenon-bench -method); the route.Auto zero value
// lets each chip's router choose per circuit.
type Scale struct {
	Quick  bool
	Method route.Method
}

// Full is the paper-faithful scale; Quick is the CI scale.
var (
	Full       = Scale{Quick: false}
	QuickScale = Scale{Quick: true}
)

// Iterations returns the optimizer iteration count (paper: 10).
func (s Scale) Iterations() int {
	if s.Quick {
		return 2
	}
	return 10
}

// Shots returns the per-circuit shot count (paper: 500).
func (s Scale) Shots() int {
	if s.Quick {
		return 100
	}
	return 500
}

// SweepQubits returns the Figure 11/12 qubit sweep (paper: 8–64).
// Quick stays below the exact-simulation threshold at sizes where the
// statevector is small.
func (s Scale) SweepQubits() []int {
	if s.Quick {
		return []int{8, 12}
	}
	return []int{8, 16, 24, 32, 40, 48, 56, 64}
}

// ScaleQubits returns the Figure 17 sweep (paper: 64–320).
func (s Scale) ScaleQubits() []int {
	if s.Quick {
		return []int{64, 128}
	}
	return []int{64, 128, 192, 256, 320}
}

// HeadlineQubits is the paper's headline register size, shrunk under
// Quick.
func (s Scale) HeadlineQubits() int {
	if s.Quick {
		return 12
	}
	return 64
}

func (s Scale) options() opt.Options {
	o := opt.DefaultOptions()
	o.Iterations = s.Iterations()
	return o
}

func algorithm(spsa bool) backend.Algorithm {
	if spsa {
		return backend.SPSA
	}
	return backend.GD
}

// runQtenon executes a full optimization on the Qtenon system.
func runQtenon(kind vqa.Kind, nq int, core host.Core, spsa bool, sc Scale) (report.RunResult, error) {
	return runQtenonCfg(system.DefaultConfig(core), kind, nq, spsa, sc)
}

func runQtenonCfg(cfg system.Config, kind vqa.Kind, nq int, spsa bool, sc Scale) (report.RunResult, error) {
	cfg.Shots = sc.Shots()
	if sc.Method != route.Auto {
		cfg.Method = sc.Method
	}
	o := sc.options()
	return cache.do(qtenonKey(cfg, kind, nq, spsa, o), func() (report.RunResult, error) {
		w, err := vqa.New(kind, nq)
		if err != nil {
			return report.RunResult{}, err
		}
		return backend.Run(system.Factory{Cfg: cfg}, w, algorithm(spsa), o)
	})
}

// runBaseline executes a full optimization on the decoupled baseline.
func runBaseline(kind vqa.Kind, nq int, spsa bool, sc Scale) (report.RunResult, error) {
	cfg := baseline.DefaultConfig()
	cfg.Shots = sc.Shots()
	if sc.Method != route.Auto {
		cfg.Method = sc.Method
	}
	o := sc.options()
	return cache.do(baselineKey(cfg, kind, nq, spsa, o), func() (report.RunResult, error) {
		w, err := vqa.New(kind, nq)
		if err != nil {
			return report.RunResult{}, err
		}
		return backend.Run(baseline.Factory{Cfg: cfg}, w, algorithm(spsa), o)
	})
}

// forEachPoint evaluates fn(i) for every sweep point, fanning the
// independent points across the worker pool. Each point builds its own
// workload and system, so points share no state; callers store results
// by index, which keeps output row order deterministic regardless of
// completion order. The first error (by point index) is returned.
func forEachPoint(n int, fn func(i int) error) error {
	errs := make([]error, n)
	par.Do(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func optimizerName(spsa bool) string {
	if spsa {
		return "SPSA"
	}
	return "GD"
}

func header(title string) string {
	return fmt.Sprintf("== %s ==\n", title)
}

// table aliases the report table builder for brevity inside generators.
type table = report.Table

func newTable(cols ...string) *table { return report.NewTable(cols...) }
