package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/host"
	"qtenon/internal/report"
	"qtenon/internal/system"
	"qtenon/internal/vqa"
)

// Figure13 reproduces the end-to-end breakdown of the VQE workload under
// SPSA on three machines: the decoupled baseline, Qtenon hardware without
// the software optimizations (FENCE + per-shot transmission), and full
// Qtenon.
func Figure13(sc Scale) (string, error) {
	nq := sc.HeadlineQubits()
	base, err := runBaseline(vqa.VQE, nq, true, sc)
	if err != nil {
		return "", err
	}
	hw, err := runQtenonCfg(system.HardwareOnlyConfig(host.BoomL()), vqa.VQE, nq, true, sc)
	if err != nil {
		return "", err
	}
	full, err := runQtenonCfg(system.DefaultConfig(host.BoomL()), vqa.VQE, nq, true, sc)
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Figure 13: end-to-end breakdown, %d-qubit VQE, SPSA", nq)))
	tb := newTable("system", "total", "quantum %", "comm %", "pulse %", "host %")
	add := func(name string, r report.RunResult) {
		p := r.Breakdown.Percent()
		tb.AddRow(name, r.Breakdown.Total().String(),
			fmt.Sprintf("%.1f", p[0]), fmt.Sprintf("%.1f", p[1]),
			fmt.Sprintf("%.1f", p[2]), fmt.Sprintf("%.1f", p[3]))
	}
	add("(a) baseline", base)
	add("(b) Qtenon w/o software", hw)
	add("(c) Qtenon", full)
	sb.WriteString(tb.String())
	fmt.Fprintf(&sb, "speedups: baseline→(b) %.2f×, baseline→(c) %.2f×\n",
		report.Speedup(base.Breakdown.Total(), hw.Breakdown.Total()),
		report.Speedup(base.Breakdown.Total(), full.Breakdown.Total()))
	sb.WriteString("paper: (a) 204.3 ms (quantum 7.9%, comm 65.1%), (b) 22.1 ms (quantum 74.5%),\n")
	sb.WriteString("       (c) 18.1 ms (quantum 89.2%, comm 0.03%)\n")
	return sb.String(), nil
}
