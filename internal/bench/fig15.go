package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/host"
	"qtenon/internal/report"
	"qtenon/internal/vqa"
)

// Figure15 reproduces the host execution time comparison: baseline vs
// Qtenon with the Boom and Rocket cores, per workload and optimizer.
// Host time on Qtenon is host activity (including work overlapped with
// quantum execution), matching the figure's per-component profiling.
func Figure15(sc Scale) (string, error) {
	nq := sc.HeadlineQubits()
	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Figure 15: host execution time, %d qubits", nq)))

	for _, spsa := range []bool{false, true} {
		tb := newTable("workload", "baseline", "Qtenon-Boom", "Qtenon-Rocket", "speedup (Boom)")
		for _, k := range vqa.Kinds() {
			base, err := runBaseline(k, nq, spsa, sc)
			if err != nil {
				return "", err
			}
			boom, err := runQtenon(k, nq, host.BoomL(), spsa, sc)
			if err != nil {
				return "", err
			}
			rocket, err := runQtenon(k, nq, host.Rocket(), spsa, sc)
			if err != nil {
				return "", err
			}
			tb.AddRow(k.String(), base.Breakdown.HostComp.String(),
				boom.HostActivity.String(), rocket.HostActivity.String(),
				fmt.Sprintf("%.0f", report.Speedup(base.Breakdown.HostComp, boom.HostActivity)))
		}
		fmt.Fprintf(&sb, "-- %s --\n%s", optimizerName(spsa), tb.String())
	}
	sb.WriteString("paper: Boom-core speedups GD 308.7×/357.9×/175.0×, SPSA 461.4×/123.8×/132.8×;\n")
	sb.WriteString("       the two RISC-V cores are nearly identical.\n")
	return sb.String(), nil
}
