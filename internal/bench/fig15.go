package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/host"
	"qtenon/internal/report"
	"qtenon/internal/vqa"
)

// Figure15 reproduces the host execution time comparison: baseline vs
// Qtenon with the Boom and Rocket cores, per workload and optimizer.
// Host time on Qtenon is host activity (including work overlapped with
// quantum execution), matching the figure's per-component profiling.
func Figure15(sc Scale) (string, error) {
	nq := sc.HeadlineQubits()
	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Figure 15: host execution time, %d qubits", nq)))

	// The (optimizer × workload) cells are independent runs: compute
	// them across the worker pool, then render in the fixed order.
	type cell struct {
		base, boom, rocket report.RunResult
	}
	optimizers := []bool{false, true}
	kinds := vqa.Kinds()
	cells := make([]cell, len(optimizers)*len(kinds))
	err := forEachPoint(len(cells), func(i int) error {
		spsa := optimizers[i/len(kinds)]
		k := kinds[i%len(kinds)]
		var err error
		if cells[i].base, err = runBaseline(k, nq, spsa, sc); err != nil {
			return err
		}
		if cells[i].boom, err = runQtenon(k, nq, host.BoomL(), spsa, sc); err != nil {
			return err
		}
		cells[i].rocket, err = runQtenon(k, nq, host.Rocket(), spsa, sc)
		return err
	})
	if err != nil {
		return "", err
	}
	for oi, spsa := range optimizers {
		tb := newTable("workload", "baseline", "Qtenon-Boom", "Qtenon-Rocket", "speedup (Boom)")
		for ki, k := range kinds {
			c := cells[oi*len(kinds)+ki]
			tb.AddRow(k.String(), c.base.Breakdown.HostComp.String(),
				c.boom.HostActivity.String(), c.rocket.HostActivity.String(),
				fmt.Sprintf("%.0f", report.Speedup(c.base.Breakdown.HostComp, c.boom.HostActivity)))
		}
		fmt.Fprintf(&sb, "-- %s --\n%s", optimizerName(spsa), tb.String())
	}
	sb.WriteString("paper: Boom-core speedups GD 308.7×/357.9×/175.0×, SPSA 461.4×/123.8×/132.8×;\n")
	sb.WriteString("       the two RISC-V cores are nearly identical.\n")
	return sb.String(), nil
}
