package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/backend"
	"qtenon/internal/host"
	"qtenon/internal/report"
	"qtenon/internal/route"
	"qtenon/internal/system"
	"qtenon/internal/vqa"
)

// ShardedQubits returns the (contiguous-window, beyond-contiguous)
// register pair the sharded experiment exercises: the small size runs on
// both dense engines for a like-for-like comparison; the wide size
// exceeds the router's contiguous window, so forced-dense must refuse it
// and only the sharded engine keeps the run exact.
func (s Scale) ShardedQubits() (small, wide int) {
	if s.Quick {
		return 10, 18
	}
	return 12, 24
}

// ShardedIterations caps the optimizer for this experiment: the wide
// register sweeps 2^24 amplitudes per gate, so the full scale trims the
// paper's 10 iterations to keep a single-host regeneration in seconds
// per point. Convergence is not the point here — capability and method
// reporting are.
func (s Scale) ShardedIterations() int {
	if s.Quick {
		return 2
	}
	return 3
}

// Sharded demonstrates the sharded dense statevector (DESIGN.md §13) on
// a generic (non-Clifford) VQE workload: within the contiguous window
// the forced-dense and auto runs agree; beyond it the contiguous engine
// is impossible — the router refuses a forced dense — while the auto run
// routes to the sharded engine and completes exactly. This is the
// "beyond 20 qubits" capability for circuits the tableau cannot touch.
func Sharded(sc Scale) (string, error) {
	small, wide := sc.ShardedQubits()

	type row struct {
		workload string
		method   route.Method
		res      report.RunResult
		err      error
	}
	cells := []struct {
		nq     int
		method route.Method // forced; Auto lets the chip's router pick
	}{
		{small, route.Dense},
		{small, route.Auto},
		{wide, route.Dense},
		{wide, route.Auto},
		{wide, route.Sharded},
	}
	rows := make([]row, len(cells))
	err := forEachPoint(len(cells), func(i int) error {
		cfg := system.DefaultConfig(host.BoomL())
		cfg.Method = cells[i].method
		res, err := runShardedVQE(cfg, cells[i].nq, sc)
		rows[i] = row{
			workload: fmt.Sprintf("VQE-%dq", cells[i].nq),
			method:   cells[i].method,
			res:      res,
			err:      err,
		}
		// Infeasible cells are the experiment's point, not a failure:
		// the contiguous engine is expected to refuse the wide register.
		return nil
	})
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Sharded statevector: generic VQE across engines (%dq contiguous window, %dq beyond)", small, wide)))
	tb := newTable("workload", "requested", "ran", "status", "total", "evals", "final cost")
	for _, r := range rows {
		req := r.method.String()
		if r.err != nil {
			tb.AddRow(r.workload, req, "-", "impossible", "-", "-", "-")
			continue
		}
		final := "-"
		if len(r.res.History) > 0 {
			final = fmt.Sprintf("%.3f", r.res.History[len(r.res.History)-1])
		}
		tb.AddRow(r.workload, req, r.res.Method, "completed",
			r.res.Breakdown.Total().String(), r.res.Evaluations, final)
	}
	sb.WriteString(tb.String())
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintf(&sb, "infeasible %s under %s: %v\n", r.workload, r.method, r.err)
		}
	}
	sb.WriteString("the VQE ansatz is non-Clifford, so the tableau never applies; past the contiguous\n")
	sb.WriteString(fmt.Sprintf("window the auto rows route to the sharded engine (exact to %d qubits, bit-for-bit\n", route.DefaultShardedLimit))
	sb.WriteString("dense-equivalent), where a forced contiguous dense run is refused.\n")
	return sb.String(), nil
}

// runShardedVQE executes the generic VQE workload under an explicit
// method pin with the experiment's capped iteration count, through the
// shared run cache.
func runShardedVQE(cfg system.Config, nq int, sc Scale) (report.RunResult, error) {
	cfg.Shots = sc.Shots()
	o := sc.options()
	o.Iterations = sc.ShardedIterations()
	return cache.do(qtenonKey(cfg, vqa.VQE, nq, true, o), func() (report.RunResult, error) {
		w, err := vqa.New(vqa.VQE, nq)
		if err != nil {
			return report.RunResult{}, err
		}
		return backend.Run(system.Factory{Cfg: cfg}, w, backend.SPSA, o)
	})
}
