package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/backend"
	"qtenon/internal/host"
	"qtenon/internal/qsim"
	"qtenon/internal/report"
	"qtenon/internal/route"
	"qtenon/internal/system"
	"qtenon/internal/vqa"
)

// RouterQubits returns the (dense-window, beyond-dense) register pair
// the router experiment exercises: the small size runs on both engines
// for a like-for-like comparison; the wide size exceeds qsim.MaxQubits
// so only the stabilizer tableau can execute it.
func (s Scale) RouterQubits() (small, wide int) {
	if s.Quick {
		return 10, 26
	}
	return 12, 26
}

// Router demonstrates the simulation-method router (DESIGN.md §12) on
// the Clifford-only Stabilizer workload: within the dense window the
// forced-dense and auto (→ tableau) runs report identical modeled
// timing and shot-noise-level cost agreement; beyond the 24-qubit dense
// window the dense engine is impossible and only the routed tableau run
// completes. The wide row is the "beyond 20 qubits" capability the
// dense-only stack could never produce.
func Router(sc Scale) (string, error) {
	small, wide := sc.RouterQubits()

	type row struct {
		workload string
		method   route.Method
		res      report.RunResult
		err      error
	}
	cells := []struct {
		nq     int
		method route.Method // forced; Auto lets the chip's router pick
	}{
		{small, route.Dense},
		{small, route.Auto},
		{wide, route.Dense},
		{wide, route.Auto},
	}
	rows := make([]row, len(cells))
	err := forEachPoint(len(cells), func(i int) error {
		cfg := system.DefaultConfig(host.BoomL())
		cfg.Method = cells[i].method
		res, err := runStabilizer(cfg, cells[i].nq, sc)
		rows[i] = row{
			workload: fmt.Sprintf("Stabilizer-%dq", cells[i].nq),
			method:   cells[i].method,
			res:      res,
			err:      err,
		}
		// Infeasible cells are the experiment's point, not a failure:
		// the dense engine is expected to refuse the wide register.
		return nil
	})
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Router: Clifford workload across engines (%dq dense window, %dq beyond)", small, wide)))
	tb := newTable("workload", "requested", "ran", "status", "total", "evals", "final cost")
	for _, r := range rows {
		req := r.method.String()
		if r.err != nil {
			tb.AddRow(r.workload, req, "-", "impossible", "-", "-", "-")
			continue
		}
		final := "-"
		if len(r.res.History) > 0 {
			final = fmt.Sprintf("%.3f", r.res.History[len(r.res.History)-1])
		}
		tb.AddRow(r.workload, req, r.res.Method, "completed",
			r.res.Breakdown.Total().String(), r.res.Evaluations, final)
	}
	sb.WriteString(tb.String())
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintf(&sb, "infeasible %s under %s: %v\n", r.workload, r.method, r.err)
		}
	}
	sb.WriteString("the auto rows route Clifford-only circuits to the stabilizer tableau at any width;\n")
	sb.WriteString(fmt.Sprintf("the %dq register exceeds the %d-qubit dense window, so only the routed run completes.\n", wide, qsim.MaxQubits))
	return sb.String(), nil
}

// runStabilizer executes the Clifford scaling workload on the Qtenon
// system under an explicit method pin, through the shared run cache.
func runStabilizer(cfg system.Config, nq int, sc Scale) (report.RunResult, error) {
	cfg.Shots = sc.Shots()
	o := sc.options()
	return cache.do(qtenonKey(cfg, vqa.Stabilizer, nq, false, o), func() (report.RunResult, error) {
		w, err := vqa.New(vqa.Stabilizer, nq)
		if err != nil {
			return report.RunResult{}, err
		}
		return backend.Run(system.Factory{Cfg: cfg}, w, backend.GD, o)
	})
}
