package bench

import (
	"fmt"
	"strings"

	"qtenon/internal/baseline"
	"qtenon/internal/host"
	"qtenon/internal/isa"
	"qtenon/internal/sim"
	"qtenon/internal/vqa"
)

// Table1 reproduces the architecture comparison of Table 1: data
// interfaces, communication latency, instruction counts for the 64-qubit
// five-layer QAOA benchmark (10 iterations, GD), and recompilation
// overhead. Latencies are measured from the models; instruction counts
// follow the table's per-iteration convention.
func Table1(sc Scale) (string, error) {
	nq := sc.HeadlineQubits()
	w, err := vqa.NewQAOA(nq, 5)
	if err != nil {
		return "", err
	}
	ct := w.Circuit.Count()
	shape := isa.WorkloadShape{
		Gates:      ct.OneQubit + ct.TwoQubit,
		TwoQubit:   ct.TwoQubit,
		Measures:   ct.Measure,
		Params:     w.NumParams(),
		Iterations: sc.Iterations(),
	}

	// Communication latencies: one small transfer on each architecture.
	link := baseline.DefaultLink()
	decoupledLat := link.MessageTime(64)
	// Qtenon datapath ❶: single-cycle RoCC at 1 GHz; datapath ❷: one
	// cache-line TileLink round trip at ~20 cycles.
	roccLat := sim.Nanosecond
	tlLat := 20 * sim.Nanosecond

	// Recompilation overhead.
	costs := host.DefaultCosts()
	jit := host.I9().Time(costs.JITCompile(shape.Gates))
	incr := host.Rocket().Time(costs.IncrementalCompile(1))

	tb := report1()
	tb.AddRow("Unified memory", "no", "no", "yes")
	tb.AddRow("Memory consistency", "no", "no", "yes (soft barrier)")
	tb.AddRow("Data interface", "USB", "Ethernet", "TileLink & RoCC")
	tb.AddRow("Q-H comm. support", "no", "no", "yes")
	tb.AddRow("Comm. latency", "~1ms", fmt.Sprintf("%v (measured)", decoupledLat),
		fmt.Sprintf("%v–%v (measured)", roccLat, tlLat))
	tb.AddRow("Instruction count",
		fmt.Sprintf("%d", isa.EQASMCount(shape)),
		fmt.Sprintf("%d", isa.HiSEPQCount(shape)),
		fmt.Sprintf("%d", isa.QtenonCount(shape, shape.Params)))
	tb.AddRow("Recompile overhead", fmt.Sprintf("%v (JIT)", jit), fmt.Sprintf("%v (JIT)", jit),
		fmt.Sprintf("%v (incremental)", incr))
	tb.AddRow("Execution", "sequential", "sequential", "interleaved")

	var sb strings.Builder
	sb.WriteString(header("Table 1: architecture comparison (measured where applicable)"))
	fmt.Fprintf(&sb, "workload: %s, %d layers, %d iterations, GD\n", w.Name, 5, shape.Iterations)
	sb.WriteString(tb.String())
	sb.WriteString("paper reference: decoupled ~1–10ms latency, ~3e4 instructions, 1–100ms recompile;\n")
	sb.WriteString("                 Qtenon 10–100ns latency, ~285 instructions, 10–100ns recompile.\n")
	return sb.String(), nil
}

func report1() *table { return newTable("property", "eQASM-like", "HiSEP-Q-like", "Qtenon") }
