package host

import (
	"testing"

	"qtenon/internal/sim"
)

func TestCoreTime(t *testing.T) {
	r := Rocket()
	// 800 instructions at IPC 0.8 on 1 GHz = 1000 cycles = 1 µs.
	if got := r.Time(800); got != sim.Microsecond {
		t.Errorf("Rocket.Time(800) = %v, want 1µs", got)
	}
	if got := r.Time(0); got != 0 {
		t.Errorf("Time(0) = %v", got)
	}
	if got := r.Time(-5); got != 0 {
		t.Errorf("Time(-5) = %v", got)
	}
	b := BoomL()
	if b.Time(1_000_000) >= r.Time(1_000_000) {
		t.Error("Boom-L not faster than Rocket")
	}
	i9 := I9()
	if i9.Time(1_000_000) >= b.Time(1_000_000) {
		t.Error("i9 not faster than Boom-L")
	}
}

func TestCoreConfigsMatchPaper(t *testing.T) {
	if Rocket().Clock.Hz() != 1_000_000_000 {
		t.Error("Rocket not at 1 GHz (Table 4)")
	}
	if BoomL().Clock.Hz() != 1_000_000_000 {
		t.Error("Boom-L not at 1 GHz (Table 4)")
	}
}

func TestDefaultCostsValidate(t *testing.T) {
	if err := DefaultCosts().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCosts()
	bad.JITPerGate = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted zero JITPerGate")
	}
}

func TestJITVsIncrementalRange(t *testing.T) {
	c := DefaultCosts()
	i9 := I9()
	// Baseline full recompilation of a 64-qubit QAOA-class circuit
	// (≈1000 gates) must land in the paper's 1–100 ms window.
	jit := i9.Time(c.JITCompile(1000))
	if jit < sim.Millisecond || jit > 100*sim.Millisecond {
		t.Errorf("JIT recompile = %v, want within 1–100 ms", jit)
	}
	// Qtenon incremental recompilation of one parameter on Rocket must be
	// tens of ns (paper: 10–100 ns).
	inc := Rocket().Time(c.IncrementalCompile(1))
	if inc < 10*sim.Nanosecond || inc > 100*sim.Nanosecond {
		t.Errorf("incremental recompile = %v, want within 10–100 ns", inc)
	}
}

func TestCostScaling(t *testing.T) {
	c := DefaultCosts()
	if c.PostProcess(1000, 64) <= c.PostProcess(500, 64) {
		t.Error("PostProcess not monotone in shots")
	}
	// Word-granular: 8..64 qubits cost the same, 65+ costs more.
	if c.PostProcess(500, 64) != c.PostProcess(500, 8) {
		t.Error("PostProcess not word-granular within 64 qubits")
	}
	if c.PostProcess(500, 128) <= c.PostProcess(500, 64) {
		t.Error("PostProcess not monotone in measurement words")
	}
	if c.ParamUpdate(128) != 2*c.ParamUpdate(64) {
		t.Error("ParamUpdate not linear")
	}
	if c.IncrementalCompile(10) != 10*c.IncrementalCompile(1) {
		t.Error("IncrementalCompile not linear")
	}
	if c.JITCompile(2000) <= c.JITCompile(100) {
		t.Error("JITCompile not monotone in gates")
	}
}

func TestMemHierarchyOrdering(t *testing.T) {
	m := DefaultMem()
	if !(m.L1Cycles < m.L2Cycles && m.L2Cycles < m.DRAMCycles) {
		t.Errorf("memory latencies not ordered: %+v", m)
	}
}
