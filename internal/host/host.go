// Package host models the classical processors on both sides of the
// comparison: Qtenon's RISC-V cores (Rocket in-order and Boom-Large
// out-of-order, both at 1 GHz, Table 4) and the baseline's Intel
// i9-14900K. Cores are characterized by clock and effective IPC, and
// classical work is expressed as instruction counts through the Costs
// model, so core choice changes latency exactly the way §7.3 measures.
package host

import (
	"fmt"

	"qtenon/internal/sim"
)

// Core is a processor timing model.
type Core struct {
	Name  string
	Clock sim.Clock
	IPC   float64 // sustained instructions per cycle on this workload mix
}

// Rocket returns the in-order RISC-V Rocket configuration (Table 4).
func Rocket() Core { return Core{Name: "Rocket", Clock: sim.NewClock(1_000_000_000), IPC: 0.8} }

// BoomL returns the Boom-Large out-of-order configuration (Table 4).
func BoomL() Core { return Core{Name: "Boom-L", Clock: sim.NewClock(1_000_000_000), IPC: 1.9} }

// I9 returns the baseline host: an i9-14900K-class core (§7.1). The
// high clock and wide issue make the baseline's host computation fast —
// its problem is communication and recompilation, not raw compute.
func I9() Core { return Core{Name: "i9-14900K", Clock: sim.NewClock(5_000_000_000), IPC: 4} }

// Time converts an instruction count to latency on this core.
func (c Core) Time(instructions int64) sim.Time {
	if instructions <= 0 {
		return 0
	}
	return c.Clock.CyclesFloat(float64(instructions) / c.IPC)
}

// MemHierarchy carries the load-to-use latencies of Table 4's memory
// system, in core cycles.
type MemHierarchy struct {
	L1Cycles   int64
	L2Cycles   int64
	DRAMCycles int64
}

// DefaultMem returns typical latencies for the Rocket-chip memory system
// (16 KB L1, 512 KB 8-bank L2, DDR3).
func DefaultMem() MemHierarchy {
	return MemHierarchy{L1Cycles: 2, L2Cycles: 20, DRAMCycles: 100}
}

// Costs expresses the classical tasks of a hybrid iteration as
// instruction counts. The constants are calibrated so the derived
// latencies land in the ranges the paper reports (JIT recompilation
// 1–100 ms on the baseline; incremental recompilation tens of ns on
// Qtenon; see DESIGN.md §4).
type Costs struct {
	// PostProcessPerShot is the per-shot cost of folding one measurement
	// into the running cost estimate, plus PostProcessPerWordShot per
	// 64-bit measurement word (parity extraction is popcount-based, so
	// the host works on packed words, not individual qubits).
	PostProcessPerShot     int64
	PostProcessPerWordShot int64
	// ParamUpdatePerParam is the optimizer arithmetic per parameter.
	ParamUpdatePerParam int64
	// JITFixed and JITPerGate model full-circuit recompilation through a
	// Qiskit-class Python stack (baseline, every iteration).
	JITFixed   int64
	JITPerGate int64
	// IncrementalPerParam models Qtenon's runtime incremental compilation:
	// quantize the new angle and issue a q_update.
	IncrementalPerParam int64
	// DriverPerMessage is host-side network-stack work per UDP message on
	// the decoupled baseline.
	DriverPerMessage int64
	// HostPerDelivery is Qtenon-side handling per measurement delivery
	// (barrier query + pointer chase); batching divides how often it is
	// paid (§6.3).
	HostPerDelivery int64
}

// DefaultCosts returns the calibrated model.
func DefaultCosts() Costs {
	return Costs{
		PostProcessPerShot:     12,
		PostProcessPerWordShot: 10,
		ParamUpdatePerParam:    60,
		JITFixed:               12_000_000, // framework fixed overhead
		JITPerGate:             10_000,     // per-gate transpile cost
		IncrementalPerParam:    40,         // quantize + pack one register
		DriverPerMessage:       9_000,      // syscall + UDP/IP stack
		HostPerDelivery:        100,        // barrier query + buffer bookkeeping
	}
}

// PostProcess is the instruction count to digest `shots` outcomes over
// `nqubits` qubits (packed into 64-bit words).
func (c Costs) PostProcess(shots, nqubits int) int64 {
	words := int64((nqubits + 63) / 64)
	return int64(shots) * (c.PostProcessPerShot + words*c.PostProcessPerWordShot)
}

// ParamUpdate is the optimizer update cost for nparams parameters.
func (c Costs) ParamUpdate(nparams int) int64 {
	return int64(nparams) * c.ParamUpdatePerParam
}

// JITCompile is the full-recompilation cost for a circuit of `gates`
// gates (baseline path).
func (c Costs) JITCompile(gates int) int64 {
	return c.JITFixed + int64(gates)*c.JITPerGate
}

// IncrementalCompile is Qtenon's recompilation cost when only `changed`
// parameters moved.
func (c Costs) IncrementalCompile(changed int) int64 {
	return int64(changed) * c.IncrementalPerParam
}

// Validate rejects non-positive cost entries.
func (c Costs) Validate() error {
	if c.PostProcessPerShot <= 0 || c.ParamUpdatePerParam <= 0 || c.JITPerGate <= 0 ||
		c.IncrementalPerParam <= 0 || c.DriverPerMessage <= 0 {
		return fmt.Errorf("host: non-positive cost in %+v", c)
	}
	return nil
}

// RoCCIssueCycles is the single-cycle RoCC command latency of datapath ❶.
const RoCCIssueCycles = 1
