// Package qsim is a from-scratch statevector simulator of an ideal quantum
// processor. It substitutes for the Qiskit backend the paper uses to
// produce "simulator data ... for the quantum chip input and output"
// (§7.1): it executes bound circuits exactly and samples measurement
// outcomes.
//
// The state of n qubits is a dense vector of 2^n complex128 amplitudes.
// Qubit 0 is the least-significant bit of the basis-state index (the same
// convention OpenQASM uses for its classical registers). Exact simulation
// is practical to roughly 20 qubits; larger experiments use the surrogate
// sampler in internal/quantum, which this package also underpins at small
// scale for cross-validation.
//
// # Parallel execution
//
// Gate kernels, reductions and sampling partition the amplitude array
// across the internal/par worker pool; statevectors below par's serial
// threshold (2^14 amplitudes) run inline with no synchronization.
// Reductions use fixed chunking, and sampling uses fixed-size shot
// blocks with derived RNG sub-streams, so all results are deterministic
// for a fixed seed regardless of GOMAXPROCS.
//
// Concurrency contract: a *State is not safe for concurrent use — the
// internal parallelism is invisible to callers. The *rand.Rand passed to
// Sample / MeasureQubit must not be shared with other goroutines while
// the call runs: math/rand sources are not concurrency-safe, and the
// samplers deliberately derive independent sub-stream seeds from the
// caller's RNG (a handful of serial draws) rather than locking one
// shared source across workers.
package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qtenon/internal/circuit"
	"qtenon/internal/par"
	"qtenon/internal/san"
)

// MaxQubits bounds exact simulation; 2^24 amplitudes (256 MiB) is the
// practical ceiling for tests on a development machine.
const MaxQubits = 24

// State is a normalized statevector over n qubits.
type State struct {
	n   int
	amp []complex128
	// sampler caches the alias-method table for Sample; any mutating
	// operation invalidates it, so repeated sampling of an unchanged
	// state pays the O(2^n) build exactly once.
	sampler *aliasTable
	// samplerShared records that a Clone may also reference the cached
	// table; a shared table must never be recycled. spareTable holds the
	// most recently retired unshared table so rebuilds after a mutation
	// reuse its prob/alias storage.
	samplerShared bool
	spareTable    *aliasTable
	// probScratch, buildScratch, seedScratch and fuseScratch are reusable
	// working memory for the sampler and fusion paths. They never escape
	// the State and are excluded from Clone, so reuse is safe even when
	// clones share a cached sampler.
	probScratch  []float64
	buildScratch aliasBuildScratch
	seedScratch  []int64
	fuseScratch  fuser
}

// NewState returns |0...0⟩ over n qubits.
func NewState(n int) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("qsim: qubit count %d outside (0,%d]", n, MaxQubits))
	}
	s := &State{n: n, amp: make([]complex128, 1<<n)}
	s.amp[0] = 1
	return s
}

// NQubits reports the register width.
func (s *State) NQubits() int { return s.n }

// Amplitudes returns the underlying amplitude slice. Callers must not
// modify it; it is exposed for tests and expectation computations.
func (s *State) Amplitudes() []complex128 { return s.amp }

// Clone returns an independent copy. The cached sampler, if any, is
// shared: alias tables are immutable once built, and each copy
// invalidates only its own reference on mutation.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp)), sampler: s.sampler}
	if s.sampler != nil {
		// Both sides now reference the table; neither may recycle it.
		s.samplerShared = true
		c.samplerShared = true
	}
	copy(c.amp, s.amp)
	return c
}

// invalidate drops the cached sampler; every mutating kernel calls it.
// An unshared table retires into spareTable so the next rebuild reuses
// its storage instead of allocating 2^n table entries.
func (s *State) invalidate() {
	if s.sampler != nil && !s.samplerShared {
		s.spareTable = s.sampler
	}
	s.sampler = nil
}

// Reset returns the state to |0…0⟩ in place, keeping the amplitude
// storage. A Reset state is indistinguishable from a fresh NewState of
// the same width — this is the arena primitive that lets one statevector
// be reused across the optimizer's thousands of circuit executions
// instead of allocating 2^n complex amplitudes per evaluation.
func (s *State) Reset() {
	s.invalidate()
	amp := s.amp
	par.For(len(amp), func(lo, hi int) {
		a := amp[lo:hi]
		for i := range a {
			a[i] = 0
		}
	})
	s.amp[0] = 1
}

// Norm returns the 2-norm of the state (1 for any valid state).
func (s *State) Norm() float64 {
	amp := s.amp
	sum := par.SumFloat64(len(amp), func(lo, hi int) float64 {
		var t float64
		for _, a := range amp[lo:hi] {
			t += real(a)*real(a) + imag(a)*imag(a)
		}
		return t
	})
	return math.Sqrt(sum)
}

// Fidelity returns |⟨s|o⟩|².
func (s *State) Fidelity(o *State) float64 {
	if s.n != o.n {
		panic("qsim: fidelity between different register sizes")
	}
	a, b := s.amp, o.amp
	dot := par.SumComplex(len(a), func(lo, hi int) complex128 {
		var t complex128
		for i := lo; i < hi; i++ {
			t += cmplx.Conj(a[i]) * b[i]
		}
		return t
	})
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}

// apply1Q applies the 2×2 unitary {{u00,u01},{u10,u11}} to qubit q.
// The pair index k enumerates the 2^(n-1) amplitude pairs; each pair is
// touched by exactly one range, so partitioning is race-free. Within a
// range the pair index is decoded once per contiguous run (a run ends at
// a stride block or the range boundary, whichever is first), keeping the
// inner loop as tight as the serial kernel.
func (s *State) apply1Q(q int, u00, u01, u10, u11 complex128) {
	s.invalidate()
	amp := s.amp
	stride := 1 << q
	mask := stride - 1
	par.For(len(amp)>>1, func(lo, hi int) {
		for k := lo; k < hi; {
			run := stride - k&mask
			if run > hi-k {
				run = hi - k
			}
			i := (k&^mask)<<1 | k&mask
			for end := i + run; i < end; i++ {
				a0, a1 := amp[i], amp[i+stride]
				amp[i] = u00*a0 + u01*a1
				amp[i+stride] = u10*a0 + u11*a1
			}
			k += run
		}
	})
}

// applyCZ applies a controlled-Z between qubits a and b.
func (s *State) applyCZ(a, b int) {
	s.invalidate()
	amp := s.amp
	m := 1<<a | 1<<b
	par.For(len(amp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&m == m {
				amp[i] = -amp[i]
			}
		}
	})
}

// applyCX applies a CNOT with the given control and target. Each index
// with control set and target clear owns its swap partner, so ranges
// never write the same element.
func (s *State) applyCX(control, target int) {
	s.invalidate()
	amp := s.amp
	mc, mt := 1<<control, 1<<target
	par.For(len(amp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&mc != 0 && i&mt == 0 {
				j := i | mt
				amp[i], amp[j] = amp[j], amp[i]
			}
		}
	})
}

// applyRZZ applies exp(-i θ/2 Z_a Z_b), which is diagonal.
func (s *State) applyRZZ(a, b int, theta float64) {
	s.invalidate()
	amp := s.amp
	ma, mb := 1<<a, 1<<b
	ePlus := cmplx.Exp(complex(0, -theta/2)) // ZZ eigenvalue +1
	eMinus := cmplx.Exp(complex(0, theta/2)) // ZZ eigenvalue -1
	par.For(len(amp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if (i&ma != 0) == (i&mb != 0) {
				amp[i] *= ePlus
			} else {
				amp[i] *= eMinus
			}
		}
	})
}

// gateMatrix1Q returns the 2×2 unitary of a single-qubit gate as
// {u00, u01, u10, u11}; ok is false for kinds that are not one-qubit
// unitaries.
func gateMatrix1Q(g circuit.Gate) (m [4]complex128, ok bool) {
	invSqrt2 := complex(1/math.Sqrt2, 0)
	switch g.Kind {
	case circuit.I:
		return [4]complex128{1, 0, 0, 1}, true
	case circuit.X:
		return [4]complex128{0, 1, 1, 0}, true
	case circuit.Y:
		return [4]complex128{0, complex(0, -1), complex(0, 1), 0}, true
	case circuit.Z:
		return [4]complex128{1, 0, 0, -1}, true
	case circuit.H:
		return [4]complex128{invSqrt2, invSqrt2, invSqrt2, -invSqrt2}, true
	case circuit.S:
		return [4]complex128{1, 0, 0, complex(0, 1)}, true
	case circuit.T:
		return [4]complex128{1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))}, true
	case circuit.RX:
		c, sn := math.Cos(g.Theta/2), math.Sin(g.Theta/2)
		return [4]complex128{complex(c, 0), complex(0, -sn), complex(0, -sn), complex(c, 0)}, true
	case circuit.RY:
		c, sn := math.Cos(g.Theta/2), math.Sin(g.Theta/2)
		return [4]complex128{complex(c, 0), complex(-sn, 0), complex(sn, 0), complex(c, 0)}, true
	case circuit.RZ:
		return [4]complex128{cmplx.Exp(complex(0, -g.Theta/2)), 0, 0, cmplx.Exp(complex(0, g.Theta/2))}, true
	default:
		return m, false
	}
}

// Apply executes one gate. Measure gates are ignored here; use Sample or
// MeasureQubit for readout.
func (s *State) Apply(g circuit.Gate) {
	switch g.Kind {
	case circuit.I, circuit.Measure:
		// Identity; readout is handled by Sample/MeasureQubit — terminal
		// measurement gates do not change the pre-measurement state.
	case circuit.CZ:
		s.applyCZ(g.Qubit, g.Qubit2)
	case circuit.CX:
		s.applyCX(g.Qubit, g.Qubit2)
	case circuit.RZZ:
		s.applyRZZ(g.Qubit, g.Qubit2, g.Theta)
	default:
		m, ok := gateMatrix1Q(g)
		if !ok {
			panic(fmt.Sprintf("qsim: unsupported gate kind %v", g.Kind))
		}
		s.apply1Q(g.Qubit, m[0], m[1], m[2], m[3])
	}
}

// Run executes a fully bound circuit starting from |0…0⟩ and returns the
// final (pre-measurement) state. Gates are run through the fusion pass
// (see fusion.go): runs of single-qubit gates collapse into one 2×2
// apply and batches of diagonal gates into one phase sweep.
func Run(c *circuit.Circuit) (*State, error) {
	return RunReuse(nil, c)
}

// RunReuse is Run over recycled storage: when st is non-nil and matches
// the circuit's register width, its amplitude array (and sampler
// scratch) are reset and reused instead of allocating a fresh 2^n
// statevector; otherwise a new State is allocated. The returned state is
// numerically identical to Run's either way. Callers own st exclusively:
// the previous contents (including any cached sampler) are destroyed.
func RunReuse(st *State, c *circuit.Circuit) (*State, error) {
	if c.NumParams != 0 {
		return nil, fmt.Errorf("qsim: circuit has %d unbound parameters", c.NumParams)
	}
	if c.NQubits > MaxQubits {
		return nil, fmt.Errorf("qsim: %d qubits exceeds exact-simulation limit %d", c.NQubits, MaxQubits)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if st == nil || st.n != c.NQubits {
		st = NewState(c.NQubits)
	} else {
		st.Reset()
	}
	st.applyFused(fuse(c.Gates, &st.fuseScratch))
	return st, nil
}

// Probabilities returns the measurement distribution over all basis
// states.
func (s *State) Probabilities() []float64 {
	return s.AppendProbabilities(nil)
}

// AppendProbabilities appends the measurement distribution over all
// basis states to dst and returns the extended slice — the reuse-friendly
// form of Probabilities (pass dst[:0] to recycle a prior snapshot's
// storage).
func (s *State) AppendProbabilities(dst []float64) []float64 {
	if san.Enabled {
		san.Verify("qsim.State.AppendProbabilities", dst)
	}
	amp := s.amp
	start := len(dst)
	dst = growFloat64(dst, len(amp))
	p := dst[start:]
	par.For(len(amp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := amp[i]
			p[i] = real(a)*real(a) + imag(a)*imag(a)
		}
	})
	if san.Enabled {
		san.Plant("qsim.State.AppendProbabilities", dst)
	}
	return dst
}

// growFloat64 extends dst by n elements, reusing capacity when
// available. The extension's contents are unspecified; callers must
// overwrite every element.
func growFloat64(dst []float64, n int) []float64 {
	if tot := len(dst) + n; tot <= cap(dst) {
		return dst[:tot]
	}
	next := make([]float64, len(dst)+n)
	copy(next, dst)
	return next
}

// MeasureQubit projects qubit q, returning the outcome bit and collapsing
// the state. It is used by tests of mid-circuit behaviour. The rng must
// not be shared with other goroutines while the call runs.
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	s.invalidate()
	amp := s.amp
	m := 1 << q
	p1 := par.SumFloat64(len(amp), func(lo, hi int) float64 {
		var t float64
		for i := lo; i < hi; i++ {
			if i&m != 0 {
				a := amp[i]
				t += real(a)*real(a) + imag(a)*imag(a)
			}
		}
		return t
	})
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	var norm float64
	if outcome == 1 {
		norm = math.Sqrt(p1)
	} else {
		norm = math.Sqrt(1 - p1)
	}
	par.For(len(amp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if (i&m != 0) != (outcome == 1) {
				amp[i] = 0
			} else if norm > 0 {
				amp[i] /= complex(norm, 0)
			}
		}
	})
	return outcome
}

// ExpectationZ returns ⟨Z_q⟩ for a single qubit.
func (s *State) ExpectationZ(q int) float64 {
	amp := s.amp
	m := 1 << q
	return par.SumFloat64(len(amp), func(lo, hi int) float64 {
		var e float64
		for i := lo; i < hi; i++ {
			a := amp[i]
			p := real(a)*real(a) + imag(a)*imag(a)
			if i&m == 0 {
				e += p
			} else {
				e -= p
			}
		}
		return e
	})
}

// ExpectationZZ returns ⟨Z_a Z_b⟩.
func (s *State) ExpectationZZ(a, b int) float64 {
	amp := s.amp
	ma, mb := 1<<a, 1<<b
	return par.SumFloat64(len(amp), func(lo, hi int) float64 {
		var e float64
		for i := lo; i < hi; i++ {
			x := amp[i]
			p := real(x)*real(x) + imag(x)*imag(x)
			if (i&ma != 0) == (i&mb != 0) {
				e += p
			} else {
				e -= p
			}
		}
		return e
	})
}
