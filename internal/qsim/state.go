// Package qsim is a from-scratch statevector simulator of an ideal quantum
// processor. It substitutes for the Qiskit backend the paper uses to
// produce "simulator data ... for the quantum chip input and output"
// (§7.1): it executes bound circuits exactly and samples measurement
// outcomes.
//
// The state of n qubits is a dense vector of 2^n amplitudes. Qubit 0 is
// the least-significant bit of the basis-state index (the same
// convention OpenQASM uses for its classical registers). Exact simulation
// is practical to roughly 20 qubits; larger experiments use the surrogate
// sampler in internal/quantum, which this package also underpins at small
// scale for cross-validation.
//
// # Memory layout
//
// Amplitudes are stored structure-of-arrays: separate re/im []float64
// slices rather than one []complex128 (DESIGN.md §11). The gate kernels
// are plain float loops over the two arrays, which keeps them branch-free,
// lets matrices with exactly-zero imaginary parts take halved-flop real
// kernels, and reduces ±1 phase batches to integer parity sweeps. The
// complex128 view is still available through Amplitudes(), which
// materializes (and caches) a conversion snapshot.
//
// # Parallel execution
//
// Gate kernels, reductions and sampling partition the amplitude arrays
// across the internal/par worker pool; statevectors below par's serial
// threshold (2^14 amplitudes) run inline with no synchronization.
// Reductions use fixed chunking, and sampling uses fixed-size shot
// blocks with derived RNG sub-streams, so all results are deterministic
// for a fixed seed regardless of GOMAXPROCS.
//
// Concurrency contract: a *State is not safe for concurrent use — the
// internal parallelism is invisible to callers. The *rand.Rand passed to
// Sample / MeasureQubit must not be shared with other goroutines while
// the call runs: math/rand sources are not concurrency-safe, and the
// samplers deliberately derive independent sub-stream seeds from the
// caller's RNG (a handful of serial draws) rather than locking one
// shared source across workers.
package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qtenon/internal/circuit"
	"qtenon/internal/par"
	"qtenon/internal/san"
)

// MaxQubits bounds exact simulation; 2^24 amplitudes (256 MiB) is the
// practical ceiling for tests on a development machine.
const MaxQubits = 24

// State is a normalized statevector over n qubits, stored as separate
// real and imaginary float64 arrays (structure-of-arrays).
type State struct {
	n      int
	re, im []float64
	// view is the cached complex128 conversion snapshot Amplitudes()
	// hands out; any mutating operation invalidates it alongside the
	// sampler. It never feeds back into the kernels.
	view      []complex128
	viewValid bool
	// sampler caches the alias-method table for Sample; any mutating
	// operation invalidates it, so repeated sampling of an unchanged
	// state pays the O(2^n) build exactly once.
	sampler *aliasTable
	// samplerShared records that a Clone may also reference the cached
	// table; a shared table must never be recycled. spareTable holds the
	// most recently retired unshared table so rebuilds after a mutation
	// reuse its prob/alias storage.
	samplerShared bool
	spareTable    *aliasTable
	// probScratch, buildScratch, seedScratch, fuseScratch and execScratch
	// are reusable working memory for the sampler, fusion and tiled-
	// execution paths. They never escape the State and are excluded from
	// Clone, so reuse is safe even when clones share a cached sampler.
	probScratch  []float64
	buildScratch aliasBuildScratch
	seedScratch  []int64
	fuseScratch  fuser
	execScratch  execScratch
}

// NewState returns |0...0⟩ over n qubits.
func NewState(n int) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("qsim: qubit count %d outside (0,%d]", n, MaxQubits))
	}
	s := &State{n: n, re: make([]float64, 1<<n), im: make([]float64, 1<<n)}
	s.re[0] = 1
	return s
}

// NQubits reports the register width.
func (s *State) NQubits() int { return s.n }

// Amplitudes returns the amplitudes as one complex128 slice — a cached
// conversion view over the structure-of-arrays storage. Callers must not
// modify it; it is exposed for tests and expectation computations, and is
// valid until the next mutating operation. Hot paths should prefer ReIm,
// which is allocation- and conversion-free.
func (s *State) Amplitudes() []complex128 {
	if !s.viewValid {
		if cap(s.view) < len(s.re) {
			s.view = make([]complex128, len(s.re))
		}
		s.view = s.view[:len(s.re)]
		re, im, view := s.re, s.im, s.view
		par.For(len(re), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				view[i] = complex(re[i], im[i])
			}
		})
		s.viewValid = true
	}
	return s.view
}

// ReIm exposes the structure-of-arrays amplitude storage: re[i] + i·im[i]
// is the amplitude of basis state i. Callers must not modify the slices;
// they alias the live state and are the zero-cost read path expectation
// computations use.
func (s *State) ReIm() (re, im []float64) { return s.re, s.im }

// Clone returns an independent copy. The cached sampler, if any, is
// shared: alias tables are immutable once built, and each copy
// invalidates only its own reference on mutation.
func (s *State) Clone() *State {
	c := &State{n: s.n, re: make([]float64, len(s.re)), im: make([]float64, len(s.im)), sampler: s.sampler}
	if s.sampler != nil {
		// Both sides now reference the table; neither may recycle it.
		s.samplerShared = true
		c.samplerShared = true
	}
	copy(c.re, s.re)
	copy(c.im, s.im)
	return c
}

// invalidate drops the cached sampler and conversion view; every mutating
// kernel calls it. An unshared table retires into spareTable so the next
// rebuild reuses its storage instead of allocating 2^n table entries.
func (s *State) invalidate() {
	if s.sampler != nil && !s.samplerShared {
		s.spareTable = s.sampler
	}
	s.sampler = nil
	s.viewValid = false
}

// Reset returns the state to |0…0⟩ in place, keeping the amplitude
// storage. A Reset state is indistinguishable from a fresh NewState of
// the same width — this is the arena primitive that lets one statevector
// be reused across the optimizer's thousands of circuit executions
// instead of allocating 2^n amplitudes per evaluation.
func (s *State) Reset() {
	s.invalidate()
	re, im := s.re, s.im
	par.For(len(re), func(lo, hi int) {
		r, m := re[lo:hi], im[lo:hi]
		for i := range r {
			r[i] = 0
		}
		for i := range m {
			m[i] = 0
		}
	})
	s.re[0] = 1
}

// Norm returns the 2-norm of the state (1 for any valid state).
//
//qtenon:hotpath
func (s *State) Norm() float64 {
	re, im := s.re, s.im
	sum := par.SumFloat64(len(re), func(lo, hi int) float64 {
		var t float64
		for i := lo; i < hi; i++ {
			t += re[i]*re[i] + im[i]*im[i]
		}
		return t
	})
	return math.Sqrt(sum)
}

// Fidelity returns |⟨s|o⟩|².
func (s *State) Fidelity(o *State) float64 {
	if s.n != o.n {
		panic("qsim: fidelity between different register sizes")
	}
	ar, ai, br, bi := s.re, s.im, o.re, o.im
	dot := par.SumComplex(len(ar), func(lo, hi int) complex128 {
		var tr, ti float64
		for i := lo; i < hi; i++ {
			tr += ar[i]*br[i] + ai[i]*bi[i]
			ti += ar[i]*bi[i] + (-ai[i])*br[i]
		}
		return complex(tr, ti)
	})
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}

// matIsReal gates the halved-flop real-matrix kernels: only matrices
// whose imaginary parts are bit-for-bit zero qualify (RY/H/X products and
// friends). The exact ==0 test is intentional — a tolerance would change
// numerics by routing nearly-real matrices through the real kernel.
//
//lint:ignore floatcompare exact zero check selects a kernel; a tolerance would change numerics (DESIGN.md §11.2)
func matIsReal(u *[4]complex128) bool {
	//lint:ignore floatcompare exact zero check selects a kernel; a tolerance would change numerics (DESIGN.md §11.2)
	return imag(u[0]) == 0 && imag(u[1]) == 0 && imag(u[2]) == 0 && imag(u[3]) == 0
}

// apply1Q applies the 2×2 unitary {{u00,u01},{u10,u11}} to qubit q.
// The pair index k enumerates the 2^(n-1) amplitude pairs; each pair is
// touched by exactly one range, so partitioning is race-free. Matrices
// with exactly-zero imaginary parts take the real kernel (half the
// flops); the complex kernel reproduces complex128 arithmetic term for
// term, so both match the historical kernel bit-for-bit up to the sign
// of zeros.
//
//qtenon:hotpath
func (s *State) apply1Q(q int, u00, u01, u10, u11 complex128) {
	s.invalidate()
	re, im := s.re, s.im
	stride := 1 << q
	u := [4]complex128{u00, u01, u10, u11}
	if matIsReal(&u) {
		r := [4]float64{real(u00), real(u01), real(u10), real(u11)}
		par.For(len(re)>>1, func(lo, hi int) {
			apply1QRealPairs(re, im, stride, r, lo, hi)
		})
		return
	}
	par.For(len(re)>>1, func(lo, hi int) {
		apply1QCmplxPairs(re, im, stride, &u, lo, hi)
	})
}

// apply1QRealPairs applies a real 2×2 matrix over the pair-index range
// [lo, hi). Within a range the pair index is decoded once per contiguous
// run (a run ends at a stride block or the range boundary, whichever is
// first), keeping the inner loop a branch-free four-multiply float sweep.
//
//qtenon:hotpath
func apply1QRealPairs(re, im []float64, stride int, u [4]float64, lo, hi int) {
	u00, u01, u10, u11 := u[0], u[1], u[2], u[3]
	if stride == 1 {
		// Pairs are adjacent: one contiguous window, two amplitudes per
		// step, no run decode at all.
		r := re[2*lo : 2*hi]
		m := im[2*lo : 2*hi]
		for x := 0; x+1 < len(r); x += 2 {
			a0r, a0i := r[x], m[x]
			a1r, a1i := r[x+1], m[x+1]
			r[x] = u00*a0r + u01*a1r
			m[x] = u00*a0i + u01*a1i
			r[x+1] = u10*a0r + u11*a1r
			m[x+1] = u10*a0i + u11*a1i
		}
		return
	}
	mask := stride - 1
	for k := lo; k < hi; {
		run := stride - k&mask
		if run > hi-k {
			run = hi - k
		}
		i := (k&^mask)<<1 | k&mask
		// Equal-length windows over the run let the compiler drop the
		// bounds checks from the inner loop.
		r0 := re[i:][:run]
		m0 := im[i:][:run]
		r1 := re[i+stride:][:run]
		m1 := im[i+stride:][:run]
		for x := 0; x < run; x++ {
			a0r, a0i := r0[x], m0[x]
			a1r, a1i := r1[x], m1[x]
			r0[x] = u00*a0r + u01*a1r
			m0[x] = u00*a0i + u01*a1i
			r1[x] = u10*a0r + u11*a1r
			m1[x] = u10*a0i + u11*a1i
		}
		k += run
	}
}

// apply1QCmplxPairs is the general complex kernel over the pair-index
// range [lo, hi), written as explicit float arithmetic in exactly the
// association order complex128 multiplication uses.
//
//qtenon:hotpath
func apply1QCmplxPairs(re, im []float64, stride int, u *[4]complex128, lo, hi int) {
	u00r, u00i := real(u[0]), imag(u[0])
	u01r, u01i := real(u[1]), imag(u[1])
	u10r, u10i := real(u[2]), imag(u[2])
	u11r, u11i := real(u[3]), imag(u[3])
	mask := stride - 1
	for k := lo; k < hi; {
		run := stride - k&mask
		if run > hi-k {
			run = hi - k
		}
		i := (k&^mask)<<1 | k&mask
		r0 := re[i:][:run]
		m0 := im[i:][:run]
		r1 := re[i+stride:][:run]
		m1 := im[i+stride:][:run]
		for x := 0; x < run; x++ {
			a0r, a0i := r0[x], m0[x]
			a1r, a1i := r1[x], m1[x]
			r0[x] = (u00r*a0r - u00i*a0i) + (u01r*a1r - u01i*a1i)
			m0[x] = (u00r*a0i + u00i*a0r) + (u01r*a1i + u01i*a1r)
			r1[x] = (u10r*a0r - u10i*a0i) + (u11r*a1r - u11i*a1i)
			m1[x] = (u10r*a0i + u10i*a0r) + (u11r*a1i + u11i*a1r)
		}
		k += run
	}
}

// applyCZ applies a controlled-Z between qubits a and b.
//
//qtenon:hotpath
func (s *State) applyCZ(a, b int) {
	s.invalidate()
	re, im := s.re, s.im
	m := 1<<a | 1<<b
	par.For(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&m == m {
				re[i] = -re[i]
				im[i] = -im[i]
			}
		}
	})
}

// applyCX applies a CNOT with the given control and target. Each index
// with control set and target clear owns its swap partner, so ranges
// never write the same element.
//
//qtenon:hotpath
func (s *State) applyCX(control, target int) {
	s.invalidate()
	re, im := s.re, s.im
	mc, mt := 1<<control, 1<<target
	par.For(len(re), func(lo, hi int) {
		applyCXRange(re, im, mc, mt, lo, hi)
	})
}

// applyCXRange swaps target pairs over the amplitude range [lo, hi). It
// is safe for any range whose indices own their partners (the j = i|mt
// partner of every i with control set, target clear lies in the same
// aligned range whenever mt < hi-lo and lo is mt-aligned, and in the
// full range always).
//
//qtenon:hotpath
func applyCXRange(re, im []float64, mc, mt, lo, hi int) {
	for i := lo; i < hi; i++ {
		if i&mc != 0 && i&mt == 0 {
			j := i | mt
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// applyRZZ applies exp(-i θ/2 Z_a Z_b), which is diagonal.
//
//qtenon:hotpath
func (s *State) applyRZZ(a, b int, theta float64) {
	s.invalidate()
	re, im := s.re, s.im
	ma, mb := 1<<a, 1<<b
	ePlus := cmplx.Exp(complex(0, -theta/2)) // ZZ eigenvalue +1
	eMinus := cmplx.Exp(complex(0, theta/2)) // ZZ eigenvalue -1
	pr, pi := real(ePlus), imag(ePlus)
	mr, mi := real(eMinus), imag(eMinus)
	par.For(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r, m := re[i], im[i]
			if (i&ma != 0) == (i&mb != 0) {
				re[i] = r*pr - m*pi
				im[i] = r*pi + m*pr
			} else {
				re[i] = r*mr - m*mi
				im[i] = r*mi + m*mr
			}
		}
	})
}

// gateMatrix1Q returns the 2×2 unitary of a single-qubit gate as
// {u00, u01, u10, u11}; ok is false for kinds that are not one-qubit
// unitaries.
func gateMatrix1Q(g circuit.Gate) (m [4]complex128, ok bool) {
	return gateMatrix1QTheta(g.Kind, g.Theta)
}

// gateMatrix1QTheta is gateMatrix1Q over an explicit angle — the form
// plan binding uses, where the angle comes from the parameter vector
// rather than the gate.
func gateMatrix1QTheta(k circuit.Kind, theta float64) (m [4]complex128, ok bool) {
	invSqrt2 := complex(1/math.Sqrt2, 0)
	switch k {
	case circuit.I:
		return [4]complex128{1, 0, 0, 1}, true
	case circuit.X:
		return [4]complex128{0, 1, 1, 0}, true
	case circuit.Y:
		return [4]complex128{0, complex(0, -1), complex(0, 1), 0}, true
	case circuit.Z:
		return [4]complex128{1, 0, 0, -1}, true
	case circuit.H:
		return [4]complex128{invSqrt2, invSqrt2, invSqrt2, -invSqrt2}, true
	case circuit.S:
		return [4]complex128{1, 0, 0, complex(0, 1)}, true
	case circuit.T:
		return [4]complex128{1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))}, true
	case circuit.RX:
		c, sn := math.Cos(theta/2), math.Sin(theta/2)
		return [4]complex128{complex(c, 0), complex(0, -sn), complex(0, -sn), complex(c, 0)}, true
	case circuit.RY:
		c, sn := math.Cos(theta/2), math.Sin(theta/2)
		return [4]complex128{complex(c, 0), complex(-sn, 0), complex(sn, 0), complex(c, 0)}, true
	case circuit.RZ:
		return [4]complex128{cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2))}, true
	default:
		return m, false
	}
}

// Apply executes one gate. Measure gates are ignored here; use Sample or
// MeasureQubit for readout.
//
//qtenon:hotpath
func (s *State) Apply(g circuit.Gate) {
	switch g.Kind {
	case circuit.I, circuit.Measure:
		// Identity; readout is handled by Sample/MeasureQubit — terminal
		// measurement gates do not change the pre-measurement state.
	case circuit.CZ:
		s.applyCZ(g.Qubit, g.Qubit2)
	case circuit.CX:
		s.applyCX(g.Qubit, g.Qubit2)
	case circuit.RZZ:
		s.applyRZZ(g.Qubit, g.Qubit2, g.Theta)
	default:
		m, ok := gateMatrix1Q(g)
		if !ok {
			panic(fmt.Sprintf("qsim: unsupported gate kind %v", g.Kind))
		}
		s.apply1Q(g.Qubit, m[0], m[1], m[2], m[3])
	}
}

// Run executes a fully bound circuit starting from |0…0⟩ and returns the
// final (pre-measurement) state. Gates are run through the fusion pass
// (see fusion.go): runs of single-qubit gates collapse into one 2×2
// apply and batches of diagonal gates into one phase sweep.
func Run(c *circuit.Circuit) (*State, error) {
	return RunReuse(nil, c)
}

// RunReuse is Run over recycled storage: when st is non-nil and matches
// the circuit's register width, its amplitude arrays (and sampler
// scratch) are reset and reused instead of allocating a fresh 2^n
// statevector; otherwise a new State is allocated. The returned state is
// numerically identical to Run's either way. Callers own st exclusively:
// the previous contents (including any cached sampler) are destroyed.
func RunReuse(st *State, c *circuit.Circuit) (*State, error) {
	if c.NumParams != 0 {
		return nil, fmt.Errorf("qsim: circuit has %d unbound parameters", c.NumParams)
	}
	if c.NQubits > MaxQubits {
		return nil, fmt.Errorf("qsim: %d qubits exceeds exact-simulation limit %d", c.NQubits, MaxQubits)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if st == nil || st.n != c.NQubits {
		st = NewState(c.NQubits)
	} else {
		st.Reset()
	}
	st.applyFused(fuse(c.Gates, &st.fuseScratch))
	return st, nil
}

// Probabilities returns the measurement distribution over all basis
// states.
func (s *State) Probabilities() []float64 {
	return s.AppendProbabilities(nil)
}

// AppendProbabilities appends the measurement distribution over all
// basis states to dst and returns the extended slice — the reuse-friendly
// form of Probabilities (pass dst[:0] to recycle a prior snapshot's
// storage).
func (s *State) AppendProbabilities(dst []float64) []float64 {
	if san.Enabled {
		san.Verify("qsim.State.AppendProbabilities", dst)
	}
	re, im := s.re, s.im
	start := len(dst)
	dst = growFloat64(dst, len(re))
	p := dst[start:]
	par.For(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p[i] = re[i]*re[i] + im[i]*im[i]
		}
	})
	if san.Enabled {
		san.Plant("qsim.State.AppendProbabilities", dst)
	}
	return dst
}

// growFloat64 extends dst by n elements, reusing capacity when
// available. The extension's contents are unspecified; callers must
// overwrite every element.
func growFloat64(dst []float64, n int) []float64 {
	if tot := len(dst) + n; tot <= cap(dst) {
		return dst[:tot]
	}
	next := make([]float64, len(dst)+n)
	copy(next, dst)
	return next
}

// MeasureQubit projects qubit q, returning the outcome bit and collapsing
// the state. It is used by tests of mid-circuit behaviour. The rng must
// not be shared with other goroutines while the call runs.
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	s.invalidate()
	re, im := s.re, s.im
	m := 1 << q
	p1 := par.SumFloat64(len(re), func(lo, hi int) float64 {
		var t float64
		for i := lo; i < hi; i++ {
			if i&m != 0 {
				t += re[i]*re[i] + im[i]*im[i]
			}
		}
		return t
	})
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	var norm float64
	if outcome == 1 {
		norm = math.Sqrt(p1)
	} else {
		norm = math.Sqrt(1 - p1)
	}
	par.For(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if (i&m != 0) != (outcome == 1) {
				re[i] = 0
				im[i] = 0
			} else if norm > 0 {
				re[i] /= norm
				im[i] /= norm
			}
		}
	})
	return outcome
}

// ExpectationZ returns ⟨Z_q⟩ for a single qubit.
//
//qtenon:hotpath
func (s *State) ExpectationZ(q int) float64 {
	re, im := s.re, s.im
	m := 1 << q
	return par.SumFloat64(len(re), func(lo, hi int) float64 {
		var e float64
		for i := lo; i < hi; i++ {
			p := re[i]*re[i] + im[i]*im[i]
			if i&m == 0 {
				e += p
			} else {
				e -= p
			}
		}
		return e
	})
}

// ExpectationZZ returns ⟨Z_a Z_b⟩.
//
//qtenon:hotpath
func (s *State) ExpectationZZ(a, b int) float64 {
	re, im := s.re, s.im
	ma, mb := 1<<a, 1<<b
	return par.SumFloat64(len(re), func(lo, hi int) float64 {
		var e float64
		for i := lo; i < hi; i++ {
			p := re[i]*re[i] + im[i]*im[i]
			if (i&ma != 0) == (i&mb != 0) {
				e += p
			} else {
				e -= p
			}
		}
		return e
	})
}
