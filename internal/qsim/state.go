// Package qsim is a from-scratch statevector simulator of an ideal quantum
// processor. It substitutes for the Qiskit backend the paper uses to
// produce "simulator data ... for the quantum chip input and output"
// (§7.1): it executes bound circuits exactly and samples measurement
// outcomes.
//
// The state of n qubits is a dense vector of 2^n complex128 amplitudes.
// Qubit 0 is the least-significant bit of the basis-state index (the same
// convention OpenQASM uses for its classical registers). Exact simulation
// is practical to roughly 20 qubits; larger experiments use the surrogate
// sampler in internal/quantum, which this package also underpins at small
// scale for cross-validation.
package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qtenon/internal/circuit"
)

// MaxQubits bounds exact simulation; 2^24 amplitudes (256 MiB) is the
// practical ceiling for tests on a development machine.
const MaxQubits = 24

// State is a normalized statevector over n qubits.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0⟩ over n qubits.
func NewState(n int) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("qsim: qubit count %d outside (0,%d]", n, MaxQubits))
	}
	s := &State{n: n, amp: make([]complex128, 1<<n)}
	s.amp[0] = 1
	return s
}

// NQubits reports the register width.
func (s *State) NQubits() int { return s.n }

// Amplitudes returns the underlying amplitude slice. Callers must not
// modify it; it is exposed for tests and expectation computations.
func (s *State) Amplitudes() []complex128 { return s.amp }

// Clone returns an independent copy.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

// Norm returns the 2-norm of the state (1 for any valid state).
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Fidelity returns |⟨s|o⟩|².
func (s *State) Fidelity(o *State) float64 {
	if s.n != o.n {
		panic("qsim: fidelity between different register sizes")
	}
	var dot complex128
	for i, a := range s.amp {
		dot += cmplx.Conj(a) * o.amp[i]
	}
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}

// apply1Q applies the 2×2 unitary {{u00,u01},{u10,u11}} to qubit q.
func (s *State) apply1Q(q int, u00, u01, u10, u11 complex128) {
	stride := 1 << q
	for base := 0; base < len(s.amp); base += stride << 1 {
		for i := base; i < base+stride; i++ {
			a0, a1 := s.amp[i], s.amp[i+stride]
			s.amp[i] = u00*a0 + u01*a1
			s.amp[i+stride] = u10*a0 + u11*a1
		}
	}
}

// applyCZ applies a controlled-Z between qubits a and b.
func (s *State) applyCZ(a, b int) {
	ma, mb := 1<<a, 1<<b
	for i := range s.amp {
		if i&ma != 0 && i&mb != 0 {
			s.amp[i] = -s.amp[i]
		}
	}
}

// applyCX applies a CNOT with the given control and target.
func (s *State) applyCX(control, target int) {
	mc, mt := 1<<control, 1<<target
	for i := range s.amp {
		if i&mc != 0 && i&mt == 0 {
			j := i | mt
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// applyRZZ applies exp(-i θ/2 Z_a Z_b), which is diagonal.
func (s *State) applyRZZ(a, b int, theta float64) {
	ma, mb := 1<<a, 1<<b
	ePlus := cmplx.Exp(complex(0, -theta/2)) // ZZ eigenvalue +1
	eMinus := cmplx.Exp(complex(0, theta/2)) // ZZ eigenvalue -1
	for i := range s.amp {
		if (i&ma != 0) == (i&mb != 0) {
			s.amp[i] *= ePlus
		} else {
			s.amp[i] *= eMinus
		}
	}
}

// Apply executes one gate. Measure gates are ignored here; use Sample or
// MeasureQubit for readout.
func (s *State) Apply(g circuit.Gate) {
	invSqrt2 := complex(1/math.Sqrt2, 0)
	switch g.Kind {
	case circuit.I:
	case circuit.X:
		s.apply1Q(g.Qubit, 0, 1, 1, 0)
	case circuit.Y:
		s.apply1Q(g.Qubit, 0, complex(0, -1), complex(0, 1), 0)
	case circuit.Z:
		s.apply1Q(g.Qubit, 1, 0, 0, -1)
	case circuit.H:
		s.apply1Q(g.Qubit, invSqrt2, invSqrt2, invSqrt2, -invSqrt2)
	case circuit.S:
		s.apply1Q(g.Qubit, 1, 0, 0, complex(0, 1))
	case circuit.T:
		s.apply1Q(g.Qubit, 1, 0, 0, cmplx.Exp(complex(0, math.Pi/4)))
	case circuit.RX:
		c, sn := math.Cos(g.Theta/2), math.Sin(g.Theta/2)
		s.apply1Q(g.Qubit, complex(c, 0), complex(0, -sn), complex(0, -sn), complex(c, 0))
	case circuit.RY:
		c, sn := math.Cos(g.Theta/2), math.Sin(g.Theta/2)
		s.apply1Q(g.Qubit, complex(c, 0), complex(-sn, 0), complex(sn, 0), complex(c, 0))
	case circuit.RZ:
		s.apply1Q(g.Qubit, cmplx.Exp(complex(0, -g.Theta/2)), 0, 0, cmplx.Exp(complex(0, g.Theta/2)))
	case circuit.CZ:
		s.applyCZ(g.Qubit, g.Qubit2)
	case circuit.CX:
		s.applyCX(g.Qubit, g.Qubit2)
	case circuit.RZZ:
		s.applyRZZ(g.Qubit, g.Qubit2, g.Theta)
	case circuit.Measure:
		// Readout is handled by Sample/MeasureQubit; terminal measurement
		// gates do not change the pre-measurement state we sample from.
	default:
		panic(fmt.Sprintf("qsim: unsupported gate kind %v", g.Kind))
	}
}

// Run executes a fully bound circuit starting from |0…0⟩ and returns the
// final (pre-measurement) state.
func Run(c *circuit.Circuit) (*State, error) {
	if c.NumParams != 0 {
		return nil, fmt.Errorf("qsim: circuit has %d unbound parameters", c.NumParams)
	}
	if c.NQubits > MaxQubits {
		return nil, fmt.Errorf("qsim: %d qubits exceeds exact-simulation limit %d", c.NQubits, MaxQubits)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := NewState(c.NQubits)
	for _, g := range c.Gates {
		s.Apply(g)
	}
	return s, nil
}

// Probabilities returns the measurement distribution over all basis
// states.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.amp))
	for i, a := range s.amp {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// Sample draws `shots` full-register measurement outcomes (basis-state
// indices, qubit 0 in bit 0) without collapsing the state.
func (s *State) Sample(shots int, rng *rand.Rand) []uint64 {
	p := s.Probabilities()
	// Cumulative distribution + binary search keeps sampling O(shots·log N).
	cdf := make([]float64, len(p))
	var acc float64
	for i, v := range p {
		acc += v
		cdf[i] = acc
	}
	out := make([]uint64, shots)
	for k := range out {
		x := rng.Float64() * acc // acc ≈ 1; scaling absorbs rounding
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[k] = uint64(lo)
	}
	return out
}

// MeasureQubit projects qubit q, returning the outcome bit and collapsing
// the state. It is used by tests of mid-circuit behaviour.
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	m := 1 << q
	var p1 float64
	for i, a := range s.amp {
		if i&m != 0 {
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	var norm float64
	if outcome == 1 {
		norm = math.Sqrt(p1)
	} else {
		norm = math.Sqrt(1 - p1)
	}
	for i := range s.amp {
		if (i&m != 0) != (outcome == 1) {
			s.amp[i] = 0
		} else if norm > 0 {
			s.amp[i] /= complex(norm, 0)
		}
	}
	return outcome
}

// ExpectationZ returns ⟨Z_q⟩ for a single qubit.
func (s *State) ExpectationZ(q int) float64 {
	m := 1 << q
	var e float64
	for i, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if i&m == 0 {
			e += p
		} else {
			e -= p
		}
	}
	return e
}

// ExpectationZZ returns ⟨Z_a Z_b⟩.
func (s *State) ExpectationZZ(a, b int) float64 {
	ma, mb := 1<<a, 1<<b
	var e float64
	for i, amp := range s.amp {
		p := real(amp)*real(amp) + imag(amp)*imag(amp)
		if (i&ma != 0) == (i&mb != 0) {
			e += p
		} else {
			e -= p
		}
	}
	return e
}
