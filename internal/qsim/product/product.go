// Package product implements the mean-field product-state surrogate:
// each qubit holds an exact 2-component state; two-qubit gates couple
// qubits through their partner's Z expectation (a mean-field decoupling
// of the interaction). It is exact for single-qubit gates and mean-field
// for entanglers, producing parameter-sensitive measurement statistics
// at O(n) cost — the paper's 64–320-qubit sweeps run on this engine,
// preserving the optimizer traffic patterns that the architecture
// experiments measure (shot counts and parameter counts, not
// entanglement fidelity). The substitution is documented in DESIGN.md.
//
// The package was promoted from quantum.ProductState so it can implement
// qsim/engine.Simulator alongside the dense statevector and the Clifford
// tableau; quantum keeps a type alias for compatibility.
package product

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qtenon/internal/circuit"
)

// State is the mean-field surrogate over n qubits.
type State struct {
	a, b []complex128 // per-qubit amplitudes of |0⟩ and |1⟩
	p1   []float64    // Sample's per-qubit probability scratch
}

// New returns |0…0⟩.
func New(n int) *State {
	ps := &State{a: make([]complex128, n), b: make([]complex128, n)}
	for i := range ps.a {
		ps.a[i] = 1
	}
	return ps
}

// NQubits reports the register width.
func (ps *State) NQubits() int { return len(ps.a) }

// Reset returns the product state to |0…0⟩ in place, keeping its
// storage — the surrogate counterpart of qsim's State.Reset.
func (ps *State) Reset() {
	for i := range ps.a {
		ps.a[i] = 1
		ps.b[i] = 0
	}
}

// Clone returns an independent copy of the state (scratch excluded).
func (ps *State) Clone() *State {
	cp := &State{a: make([]complex128, len(ps.a)), b: make([]complex128, len(ps.b))}
	copy(cp.a, ps.a)
	copy(cp.b, ps.b)
	return cp
}

// P1 returns qubit q's |1⟩ probability.
//
//qtenon:hotpath
func (ps *State) P1(q int) float64 {
	return real(ps.b[q])*real(ps.b[q]) + imag(ps.b[q])*imag(ps.b[q])
}

// ZExp returns ⟨Z_q⟩ = 1 − 2·P1.
func (ps *State) ZExp(q int) float64 { return 1 - 2*ps.P1(q) }

//qtenon:hotpath
func (ps *State) apply1Q(q int, u00, u01, u10, u11 complex128) {
	a, b := ps.a[q], ps.b[q]
	ps.a[q] = u00*a + u01*b
	ps.b[q] = u10*a + u11*b
}

//qtenon:hotpath
func (ps *State) rz(q int, theta float64) {
	ps.apply1Q(q, cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2)))
}

//qtenon:hotpath
func (ps *State) rx(q int, theta float64) {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	ps.apply1Q(q, complex(c, 0), complex(0, -s), complex(0, -s), complex(c, 0))
}

// Apply executes one gate under the mean-field rules.
func (ps *State) Apply(g circuit.Gate) {
	invSqrt2 := complex(1/math.Sqrt2, 0)
	switch g.Kind {
	case circuit.I, circuit.Measure:
	case circuit.X:
		ps.apply1Q(g.Qubit, 0, 1, 1, 0)
	case circuit.Y:
		ps.apply1Q(g.Qubit, 0, complex(0, -1), complex(0, 1), 0)
	case circuit.Z:
		ps.apply1Q(g.Qubit, 1, 0, 0, -1)
	case circuit.H:
		ps.apply1Q(g.Qubit, invSqrt2, invSqrt2, invSqrt2, -invSqrt2)
	case circuit.S:
		ps.apply1Q(g.Qubit, 1, 0, 0, complex(0, 1))
	case circuit.T:
		ps.apply1Q(g.Qubit, 1, 0, 0, cmplx.Exp(complex(0, math.Pi/4)))
	case circuit.RX:
		ps.rx(g.Qubit, g.Theta)
	case circuit.RY:
		c, s := math.Cos(g.Theta/2), math.Sin(g.Theta/2)
		ps.apply1Q(g.Qubit, complex(c, 0), complex(-s, 0), complex(s, 0), complex(c, 0))
	case circuit.RZ:
		ps.rz(g.Qubit, g.Theta)
	case circuit.RZZ:
		// Mean-field: e^{-iθ/2 Z⊗Z} → RZ(θ·⟨Z_b⟩) on a and RZ(θ·⟨Z_a⟩) on b.
		za, zb := ps.ZExp(g.Qubit), ps.ZExp(g.Qubit2)
		ps.rz(g.Qubit, g.Theta*zb)
		ps.rz(g.Qubit2, g.Theta*za)
	case circuit.CZ:
		// CZ = e^{iπ/4(Z⊗Z − Z⊗I − I⊗Z + I)}: mean-field phase kick scaled
		// by the partner's |1⟩ population.
		pa, pb := ps.P1(g.Qubit), ps.P1(g.Qubit2)
		ps.rz(g.Qubit, math.Pi*pb)
		ps.rz(g.Qubit2, math.Pi*pa)
	case circuit.CX:
		// Mean-field CNOT: rotate the target by π weighted by the
		// control's |1⟩ population.
		ps.rx(g.Qubit2, math.Pi*ps.P1(g.Qubit))
	default:
		panic(fmt.Sprintf("product: unsupported gate %v in surrogate", g.Kind))
	}
}

// Run resets the state and applies every gate of a bound circuit.
func (ps *State) Run(c *circuit.Circuit) error {
	if c.NumParams != 0 {
		return fmt.Errorf("product: circuit has unbound parameters")
	}
	if c.NQubits != len(ps.a) {
		return fmt.Errorf("product: circuit needs %d qubits, state has %d", c.NQubits, len(ps.a))
	}
	ps.Reset()
	for _, g := range c.Gates {
		ps.Apply(g)
	}
	return nil
}

// Sample draws independent per-qubit outcomes. Outcome words carry the
// first 64 qubits; wider registers sample all qubits (the RNG stream
// advances identically) but report the 64-qubit cost window — see
// DESIGN.md on >64-qubit cost evaluation.
func (ps *State) Sample(shots int, rng *rand.Rand) []uint64 {
	n := len(ps.a)
	p1 := ps.p1
	if cap(p1) < n {
		p1 = make([]float64, n)
	}
	p1 = p1[:n]
	ps.p1 = p1
	for q := range p1 {
		p1[q] = ps.P1(q)
	}
	out := make([]uint64, shots)
	for s := range out {
		var v uint64
		for q := 0; q < n; q++ {
			if rng.Float64() < p1[q] && q < 64 {
				v |= 1 << q
			}
		}
		out[s] = v
	}
	return out
}

// Probabilities returns the 2^n basis-state distribution implied by the
// product structure (the tensor product of per-qubit marginals). Only
// meaningful for small registers; n is capped to keep the output
// allocatable.
func (ps *State) Probabilities() []float64 {
	n := len(ps.a)
	if n > 24 {
		panic(fmt.Sprintf("product: Probabilities on %d qubits exceeds the 24-qubit dense window", n))
	}
	p1 := make([]float64, n)
	for q := range p1 {
		p1[q] = ps.P1(q)
	}
	out := make([]float64, 1<<n)
	out[0] = 1
	size := 1
	for q := 0; q < n; q++ {
		for i := 0; i < size; i++ {
			v := out[i]
			out[i] = v * (1 - p1[q])
			out[i|size] = v * p1[q]
		}
		size <<= 1
	}
	return out
}
