//go:build simsan

package qsim_test

import (
	"strings"
	"testing"

	"qtenon/internal/qsim"
)

// TestSimsanProbabilitiesAliasReuse drives the scratch canary end to
// end through the public API: an alias retained across
// AppendProbabilities handouts that writes into the arena's spare
// capacity must panic — naming the arena — on the next handout.
func TestSimsanProbabilitiesAliasReuse(t *testing.T) {
	st := qsim.NewState(3)
	// One element of spare capacity gives the sanitizer a canary slot.
	buf := make([]float64, 0, (1<<3)+1)

	p := st.AppendProbabilities(buf)
	// Honest recycling round-trips cleanly.
	p = st.AppendProbabilities(p[:0])

	// The bug: a full-capacity alias kept from the previous borrow
	// writes into storage the arena has reclaimed.
	stale := p[:cap(p)]
	stale[len(stale)-1] = 0.25

	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("expected a simsan panic, got %v", r)
		}
		for _, frag := range []string{"simsan: qsim.State.AppendProbabilities:", "canary", "alias retained"} {
			if !strings.Contains(msg, frag) {
				t.Errorf("panic %q does not contain %q", msg, frag)
			}
		}
	}()
	st.AppendProbabilities(p[:0])
	t.Fatal("clobbered canary was not detected")
}
