package qsim

import (
	"fmt"
	"math/rand"

	"qtenon/internal/circuit"
)

// Trajectory is one stochastic execution of a circuit with mid-circuit
// measurements: each Measure gate collapses the state and records its
// outcome bit in order.
type Trajectory struct {
	Final *State
	// Bits holds measurement outcomes in gate order.
	Bits []int
	// Qubits holds the measured qubit per outcome, aligned with Bits.
	Qubits []int
}

// RunTrajectory executes a bound circuit with real measurement collapse,
// the semantics needed for feed-forward experiments (mid-circuit
// measurement is the QubiC-2.0-class capability the related-work section
// discusses; Qtenon's .measure segment delivers exactly these bits).
func RunTrajectory(c *circuit.Circuit, rng *rand.Rand) (Trajectory, error) {
	if c.NumParams != 0 {
		return Trajectory{}, fmt.Errorf("qsim: circuit has %d unbound parameters", c.NumParams)
	}
	if c.NQubits > MaxQubits {
		return Trajectory{}, fmt.Errorf("qsim: %d qubits exceeds exact limit %d", c.NQubits, MaxQubits)
	}
	if err := c.Validate(); err != nil {
		return Trajectory{}, err
	}
	tr := Trajectory{Final: NewState(c.NQubits)}
	for _, g := range c.Gates {
		if g.Kind == circuit.Measure {
			bit := tr.Final.MeasureQubit(g.Qubit, rng)
			tr.Bits = append(tr.Bits, bit)
			tr.Qubits = append(tr.Qubits, g.Qubit)
			continue
		}
		tr.Final.Apply(g)
	}
	return tr, nil
}

// Bit returns the outcome of the i-th measurement.
func (t Trajectory) Bit(i int) int { return t.Bits[i] }
