package shard

import (
	"math/rand"
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/par"
	"qtenon/internal/qsim"
)

// randomCircuit builds a valid bound circuit over n qubits (the same
// generator the qsim fuzz harness uses, duplicated because it is
// test-internal there).
func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	kinds := []circuit.Kind{
		circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.T,
		circuit.RX, circuit.RY, circuit.RZ, circuit.CZ, circuit.CX, circuit.RZZ,
	}
	c := &circuit.Circuit{NQubits: n}
	for i := 0; i < gates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		g := circuit.Gate{Kind: k, Qubit: rng.Intn(n), Theta: rng.NormFloat64() * 2, Param: circuit.NoParam}
		if k.Arity() == 2 {
			g.Qubit2 = (g.Qubit + 1 + rng.Intn(n-1)) % n
		}
		c.Gates = append(c.Gates, g)
	}
	return c
}

// requireExactMatch compares every sharded amplitude against the
// contiguous engine bit-for-bit: same fused program, same kernels, same
// order ⇒ ==, not ≤1e-12.
func requireExactMatch(t *testing.T, s *State, ref *qsim.State, label string) {
	t.Helper()
	refRe, refIm := ref.ReIm()
	for i := range refRe {
		gr, gi := s.Amp(i)
		if gr != refRe[i] || gi != refIm[i] {
			t.Fatalf("%s: amp[%d] = (%g,%g), dense (%g,%g) — sharded execution must be bit-for-bit identical",
				label, i, gr, gi, refRe[i], refIm[i])
		}
	}
}

func runBoth(t *testing.T, c *circuit.Circuit, shardBits int) (*State, *qsim.State) {
	t.Helper()
	ref, err := qsim.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithShardBits(c.NQubits, shardBits)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	return s, ref
}

// FuzzShardedMatchesDense drives the sharded executor — local-group
// batching, cross-shard butterflies, all four CX placements, base-
// offset diagonal sweeps — against the contiguous engine on random
// circuits and random shard geometry, demanding exact (==) amplitude
// equality. The shard-bits dimension forces registers as small as 2
// qubits through many-shard layouts, so global-qubit paths are hit
// constantly rather than only past 16 qubits.
func FuzzShardedMatchesDense(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(40), uint8(2))
	f.Add(int64(2), uint8(2), uint8(5), uint8(1))
	f.Add(int64(3), uint8(13), uint8(60), uint8(4)) // beyond one 2^12-amp tile
	f.Add(int64(4), uint8(12), uint8(120), uint8(8))
	f.Add(int64(5), uint8(9), uint8(1), uint8(3))
	f.Add(int64(6), uint8(11), uint8(80), uint8(16)) // shardBits > n: single shard
	f.Fuzz(func(t *testing.T, seed int64, nq, gates, bits uint8) {
		n := 2 + int(nq)%13      // 2..14 qubits
		ng := 1 + int(gates)%120 // 1..120 gates
		sb := 1 + int(bits)%16   // 1..16 shard bits (clamped to n inside)
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, n, ng)

		par.SetWorkers(4)
		defer par.SetWorkers(0)
		s, ref := runBoth(t, c, sb)
		requireExactMatch(t, s, ref, "fuzz")

		// Probabilities agree exactly too (same squares of the same
		// floats), and the sharded outcome stream is seed-deterministic.
		gp := s.Probabilities()
		wp := ref.Probabilities()
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("prob[%d] = %g, dense %g", i, gp[i], wp[i])
			}
		}
		a := s.Sample(64, rand.New(rand.NewSource(seed)))
		b := s.Sample(64, rand.New(rand.NewSource(seed)))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seeded sharded samples diverge at %d", i)
			}
		}
	})
}

// TestShardedMatchesDense is the deterministic slice of the fuzz
// property: fixed seeds across a spread of register widths and shard
// geometries, exact equality demanded. CI runs it under -race at
// GOMAXPROCS=4, so the shard-parallel writes (disjoint chunks, paired
// butterflies) are exercised by the race detector rather than hidden by
// a single-core runner.
func TestShardedMatchesDense(t *testing.T) {
	par.SetWorkers(4)
	defer par.SetWorkers(0)
	cases := []struct {
		seed      int64
		n, gates  int
		shardBits int
	}{
		{1, 2, 12, 1},    // minimal register, 2 shards
		{2, 6, 60, 2},    // 16 shards, every qubit global past bit 1
		{3, 10, 90, 4},   // 64 shards
		{4, 13, 120, 6},  // multi-tile chunks
		{5, 14, 150, 10}, // 16 shards of 2^10
		{6, 16, 80, 12},  // 16 shards of one tile each
		{7, 12, 40, 16},  // single shard (pure local path)
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(tc.seed))
		c := randomCircuit(rng, tc.n, tc.gates)
		s, ref := runBoth(t, c, tc.shardBits)
		requireExactMatch(t, s, ref, "table")
	}
}

// TestShardedCXPlacements pins each of the four CX decomposition cases
// (control/target × local/global) and the global-qubit butterfly
// against the dense engine on a geometry small enough to read: 6
// qubits, 4-amplitude shards (qubits 0–1 local, 2–5 global).
func TestShardedCXPlacements(t *testing.T) {
	build := func(f func(b *circuit.Builder)) *circuit.Circuit {
		b := circuit.NewBuilder(6)
		for q := 0; q < 6; q++ {
			b.RY(q, 0.3+0.1*float64(q)) // break symmetry first
		}
		f(b)
		return b.MustBuild()
	}
	cases := map[string]func(b *circuit.Builder){
		"cx-local-local":   func(b *circuit.Builder) { b.CX(0, 1) },
		"cx-local-global":  func(b *circuit.Builder) { b.CX(1, 4) },
		"cx-global-local":  func(b *circuit.Builder) { b.CX(5, 0) },
		"cx-global-global": func(b *circuit.Builder) { b.CX(3, 5) },
		"h-global":         func(b *circuit.Builder) { b.H(4) },
		"cz-mixed":         func(b *circuit.Builder) { b.CZ(1, 5) },
		"rzz-global":       func(b *circuit.Builder) { b.RZZ(2, 5, 0.7) },
	}
	for name, f := range cases {
		c := build(f)
		s, ref := runBoth(t, c, 2)
		requireExactMatch(t, s, ref, name)
	}
}

// TestShardedApplyMatchesRun checks the single-gate Apply path agrees
// with the batch path gate for gate.
func TestShardedApplyMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomCircuit(rng, 8, 50)
	s, err := NewWithShardBits(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gates {
		s.Apply(g)
	}
	ref := qsim.NewState(8)
	for _, g := range c.Gates {
		ref.Apply(g)
	}
	// Gate-at-a-time execution fuses nothing on either side, so the
	// streams stay exact.
	requireExactMatch(t, s, ref, "apply")
}

// TestShardedSamplerDeterminism pins the sampler contract: fixed seed ⇒
// identical outcome stream at any worker count, and outcomes follow the
// state (deterministic circuit ⇒ deterministic outcomes).
func TestShardedSamplerDeterminism(t *testing.T) {
	c := circuit.NewBuilder(8).X(0).X(5).MeasureAll().MustBuild()
	s, err := NewWithShardBits(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	want := uint64(1<<0 | 1<<5)
	par.SetWorkers(1)
	a := s.Sample(9000, rand.New(rand.NewSource(42))) // spans >1 block
	par.SetWorkers(4)
	b := s.Sample(9000, rand.New(rand.NewSource(42)))
	par.SetWorkers(0)
	for i := range a {
		if a[i] != want {
			t.Fatalf("outcome[%d] = %b, want %b", i, a[i], want)
		}
		if a[i] != b[i] {
			t.Fatalf("worker count changed the outcome stream at %d", i)
		}
	}
}

// TestShardedStateSurface covers the remaining engine-contract surface:
// expectations on local and global qubits, Reset, Clone independence,
// and constructor validation.
func TestShardedStateSurface(t *testing.T) {
	c := circuit.NewBuilder(6).X(1).X(4).MeasureAll().MustBuild()
	s, err := NewWithShardBits(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 16 || s.ShardBits() != 2 {
		t.Fatalf("geometry %d shards / %d bits", s.NumShards(), s.ShardBits())
	}
	for q, want := range map[int]float64{0: 1, 1: -1, 3: 1, 4: -1, 5: 1} {
		if z := s.ExpectationZ(q); z != want {
			t.Fatalf("Z[%d] = %g, want %g", q, z, want)
		}
	}
	cl := s.Clone()
	cl.Reset()
	if z := s.ExpectationZ(1); z != -1 {
		t.Fatal("clone Reset mutated the original")
	}
	if z := cl.ExpectationZ(1); z != 1 {
		t.Fatalf("clone after Reset: Z[1] = %g", z)
	}

	if _, err := New(0); err == nil {
		t.Error("New(0) accepted")
	}
	if _, err := New(MaxQubits + 1); err == nil {
		t.Error("New past MaxQubits accepted")
	}
	if _, err := NewWithShardBits(4, 0); err == nil {
		t.Error("shard bits 0 accepted")
	}

	unbound := circuit.NewBuilder(4).RYP(0, 0).MustBuild()
	if err := s.Run(unbound); err == nil {
		t.Error("unbound circuit accepted")
	}
	tooWide := circuit.NewBuilder(8).H(7).MustBuild()
	narrow, _ := NewWithShardBits(4, 2)
	if err := narrow.Run(tooWide); err == nil {
		t.Error("circuit wider than the state accepted")
	}
}

// --- Benchmarks ---------------------------------------------------------
//
// The PR's throughput gate: a 2^20-amplitude Apply1Q sweep on the
// sharded layout must be no slower than the contiguous engine at
// GOMAXPROCS=1 (EXPERIMENTS.md EXP-8 records the measured pair). The
// benchmarks pin par to one worker so layout, not parallelism, is
// measured.

func benchGate(q int) circuit.Gate {
	return circuit.Gate{Kind: circuit.RY, Qubit: q, Theta: 0.3, Param: circuit.NoParam}
}

func BenchmarkApply1QDense20(b *testing.B) {
	par.SetWorkers(1)
	defer par.SetWorkers(0)
	st := qsim.NewState(20)
	g := benchGate(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Apply(g)
	}
}

func BenchmarkApply1QSharded20Local(b *testing.B) {
	par.SetWorkers(1)
	defer par.SetWorkers(0)
	st, err := New(20)
	if err != nil {
		b.Fatal(err)
	}
	g := benchGate(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Apply(g)
	}
}

func BenchmarkApply1QSharded20Global(b *testing.B) {
	par.SetWorkers(1)
	defer par.SetWorkers(0)
	st, err := New(20)
	if err != nil {
		b.Fatal(err)
	}
	g := benchGate(19) // stride spans shards: cross-shard butterfly
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Apply(g)
	}
}

// BenchmarkShardedRun24 is the headline capability point: a 24-qubit
// generic (non-Clifford) layered circuit — impossible on the contiguous
// engine's routing window — executed end to end on the sharded engine.
// Run with -benchtime=1x for a single timed sweep; 256 MiB of state.
func BenchmarkShardedRun24(b *testing.B) {
	bl := circuit.NewBuilder(24)
	for l := 0; l < 3; l++ {
		for q := 0; q < 24; q++ {
			bl.RY(q, 0.1*float64(q+l))
		}
		for q := 0; q+1 < 24; q += 2 {
			bl.CZ(q, q+1)
		}
	}
	c := bl.MeasureAll().MustBuild()
	st, err := New(24)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}
