// Package shard is the sharded dense statevector engine: amplitudes are
// split into fixed 2^k-amplitude shards, each an independently allocated
// re/im chunk pair, and gate sweeps dispatch shard-parallel over
// internal/par (DESIGN.md §13). It breaks the contiguous engine's
// monolithic-allocation wall — 24–28 generic (non-Clifford) qubits run
// where qsim.State stops at 24 — while producing amplitudes bit-for-bit
// identical to the contiguous engine: Run compiles the same fused
// program (qsim.FusedProgram) and executes it through the same kernels
// in the same per-amplitude order, so equality is exact, not
// approximate (the FuzzShardedMatchesDense property test demands ==).
//
// # Local and global qubits
//
// With 2^k amplitudes per shard, qubit q is "local" when q < k: its
// amplitude pairs lie inside one shard, and every shard applies the
// contiguous pair kernel independently — embarrassingly parallel.
// Qubit q ≥ k is "global": bit q of the amplitude index is bit q−k of
// the shard index, so the gate pairs shard i with shard i|2^(q−k) and a
// cross-shard butterfly kernel combines element j of both chunks.
// Diagonal sweeps (CZ/RZZ/Z-chains) never couple amplitudes and stay
// single-pass per shard at any qubit mix; CX decomposes into four exact
// swap cases by where its control and target live (see applyGlobalOp).
//
// Consecutive shard-local ops are grouped: each shard runs the whole
// group over its resident chunk before the sweep moves on, so a 1 MiB
// shard stays cache-warm across the group instead of every op streaming
// the full statevector (the shard-level analogue of qsim's tile
// grouping). Grouping never reorders per-amplitude arithmetic, so it
// cannot perturb results.
//
// # Concurrency and determinism
//
// Shard-parallel dispatch writes disjoint chunks (or disjoint chunk
// pairs), so sweeps are race-free by construction; reductions fold
// per-shard partials in shard-index order and sampling uses the same
// fixed block/seed discipline as the contiguous sampler, so results are
// identical at any GOMAXPROCS. A *State is not safe for concurrent use.
package shard

import (
	"fmt"
	"math/rand"

	"qtenon/internal/circuit"
	"qtenon/internal/par"
	"qtenon/internal/qsim"
	qrng "qtenon/internal/rng"
)

// DefaultShardBits sizes production shards at 2^16 amplitudes: 16 cache
// tiles (qsim.TileAmps = 2^12), 1 MiB of SoA floats per shard — large
// enough to amortize dispatch, small enough to stay L2-resident across
// a grouped sweep.
const DefaultShardBits = 16

// MaxQubits bounds the sharded engine: 2^28 amplitudes (4 GiB of SoA
// floats across 4096 shards) is the practical ceiling for a development
// machine, and the router's hand-off point to the product surrogate.
const MaxQubits = 28

// State is a normalized statevector over n qubits stored as 2^(n−k)
// shards of 2^k amplitudes (k = shardBits; registers narrower than k
// use a single 2^n-amplitude shard).
type State struct {
	n         int
	shardBits int // log2 amplitudes per shard
	re, im    [][]float64

	// prog is the reusable compiled program Run executes; applyProg is a
	// second program used by single-gate Apply so it never clobbers an
	// in-flight Run compilation.
	prog      qsim.FusedProgram
	applyProg qsim.FusedProgram
	applyBuf  [1]circuit.Gate

	// Two-level sampler cache: top picks a shard by its probability
	// mass, sub[s] picks an amplitude within shard s. Invalidated by
	// every mutation; rebuilt storage is recycled across builds.
	samplerValid bool
	top          qsim.Alias
	sub          []qsim.Alias
	topProbs     []float64
	probScratch  [][]float64
	seedScratch  []int64

	// zScratch holds per-shard expectation partials, recycled across
	// ExpectationZ calls so the reduction is allocation-free in steady
	// state. Excluded from Clone like every other scratch field.
	zScratch []float64
}

// New returns |0…0⟩ over n qubits with the production shard size.
func New(n int) (*State, error) {
	return NewWithShardBits(n, DefaultShardBits)
}

// NewWithShardBits returns |0…0⟩ with an explicit shard size of 2^k
// amplitudes — the test/fuzz seam that exercises many-shard geometry on
// small registers. Registers narrower than k get a single shard.
func NewWithShardBits(n, k int) (*State, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("shard: qubit count %d outside (0,%d]", n, MaxQubits)
	}
	if k < 1 {
		return nil, fmt.Errorf("shard: shard bits %d < 1", k)
	}
	if k > n {
		k = n
	}
	s := &State{n: n, shardBits: k}
	numShards := 1 << (n - k)
	chunk := 1 << k
	s.re = make([][]float64, numShards)
	s.im = make([][]float64, numShards)
	for i := range s.re {
		s.re[i] = make([]float64, chunk)
		s.im[i] = make([]float64, chunk)
	}
	s.re[0][0] = 1
	return s, nil
}

// NQubits reports the register width.
func (s *State) NQubits() int { return s.n }

// ShardBits reports log2 of the per-shard amplitude count.
func (s *State) ShardBits() int { return s.shardBits }

// NumShards reports the shard count.
func (s *State) NumShards() int { return len(s.re) }

// Amp returns the amplitude of basis state i as (re, im) — the exact
// SoA storage values, for equivalence tests against the contiguous
// engine.
func (s *State) Amp(i int) (re, im float64) {
	sh := i >> s.shardBits
	j := i & (1<<s.shardBits - 1)
	return s.re[sh][j], s.im[sh][j]
}

// invalidate drops the cached sampler; every mutating path calls it.
func (s *State) invalidate() { s.samplerValid = false }

// growScratch returns dst resized to n, reallocating only when capacity
// is exhausted — the arena shape the hotpath analyzer proves
// steady-state allocation-free.
func growScratch(dst []float64, n int) []float64 {
	if n <= cap(dst) {
		return dst[:n]
	}
	return make([]float64, n)
}

// Reset restores |0…0⟩ in place, keeping all shard storage.
func (s *State) Reset() {
	s.invalidate()
	par.Do(len(s.re), func(sh int) {
		re, im := s.re[sh], s.im[sh]
		for i := range re {
			re[i] = 0
		}
		for i := range im {
			im[i] = 0
		}
	})
	s.re[0][0] = 1
}

// Clone returns an independent deep copy (the sampler cache is not
// carried over; the clone rebuilds on first Sample).
func (s *State) Clone() *State {
	c := &State{n: s.n, shardBits: s.shardBits}
	c.re = make([][]float64, len(s.re))
	c.im = make([][]float64, len(s.im))
	for i := range s.re {
		c.re[i] = append([]float64(nil), s.re[i]...)
		c.im[i] = append([]float64(nil), s.im[i]...)
	}
	return c
}

// Run resets the state and executes a bound circuit through the fused
// program — the same compilation the contiguous engine runs, dispatched
// shard-parallel.
func (s *State) Run(c *circuit.Circuit) error {
	if c.NumParams != 0 {
		return fmt.Errorf("shard: circuit has %d unbound parameters", c.NumParams)
	}
	if c.NQubits > s.n {
		return fmt.Errorf("shard: circuit needs %d qubits, state has %d", c.NQubits, s.n)
	}
	if err := c.Validate(); err != nil {
		return err
	}
	s.Reset()
	s.prog.Compile(c.Gates)
	s.execute(&s.prog)
	return nil
}

// Apply executes one bound gate in place (Measure and identity gates
// are no-ops, matching the contiguous engine's terminal-measurement
// convention).
func (s *State) Apply(g circuit.Gate) {
	s.applyBuf[0] = g
	s.applyProg.Compile(s.applyBuf[:])
	s.execute(&s.applyProg)
}

// execute runs a compiled program: maximal runs of shard-local ops are
// grouped per shard (cache-resident chunk, one parallel dispatch),
// cross-shard ops run between groups.
//
//qtenon:hotpath
func (s *State) execute(p *qsim.FusedProgram) {
	if p.NumOps() == 0 {
		return
	}
	s.invalidate()
	nOps := p.NumOps()
	i := 0
	for i < nOps {
		if s.opShardLocal(p, i) {
			j := i + 1
			for j < nOps && s.opShardLocal(p, j) {
				j++
			}
			s.applyLocalGroup(p, i, j)
			i = j
			continue
		}
		s.applyGlobalOp(p, i)
		i++
	}
}

// opShardLocal reports whether op i writes only within individual
// shards: diagonal batches always do; a 1q matrix does when its qubit
// is local; a CX does when its *target* is local (a global control just
// selects which shards apply the X — still in-shard writes).
func (s *State) opShardLocal(p *qsim.FusedProgram, i int) bool {
	kind, q, q2 := p.OpInfo(i)
	switch kind {
	case qsim.Op1Q:
		return q < s.shardBits
	case qsim.OpCX:
		return q2 < s.shardBits
	default:
		return true
	}
}

// applyLocalGroup runs ops [lo, hi) — all shard-local — over every
// shard: one parallel dispatch, each shard sweeping its chunk through
// the whole group while it is cache-resident. Shards write disjoint
// chunks, so the dispatch is race-free.
//
//qtenon:hotpath
func (s *State) applyLocalGroup(p *qsim.FusedProgram, lo, hi int) {
	par.Do(len(s.re), func(sh int) {
		re, im := s.re[sh], s.im[sh]
		base := sh << s.shardBits
		for k := lo; k < hi; k++ {
			kind, q, q2 := p.OpInfo(k)
			switch kind {
			case qsim.Op1Q:
				p.Apply1QChunk(k, re, im)
			case qsim.OpCX:
				if q < s.shardBits {
					qsim.ApplyCXChunk(re, im, q, q2)
				} else if sh>>(q-s.shardBits)&1 == 1 {
					// Global control: this shard's index carries the
					// control bit set, so the local target flips.
					qsim.ApplyXChunk(re, im, q2)
				}
			default:
				p.ApplyDiagChunk(k, re, im, base)
			}
		}
	})
}

// applyGlobalOp runs one cross-shard op. A global-qubit 1q matrix pairs
// shards (i, i|bit) and butterflies their chunks elementwise; a CX with
// a global target either swaps selected elements across the shard pair
// (local control) or — both operands global — swaps whole chunk
// descriptors in O(1). Every pair is touched by exactly one dispatch
// index, so parallel pairs never overlap.
//
//qtenon:hotpath
func (s *State) applyGlobalOp(p *qsim.FusedProgram, i int) {
	kind, q, q2 := p.OpInfo(i)
	switch kind {
	case qsim.Op1Q:
		bit := 1 << (q - s.shardBits)
		lowMask := bit - 1
		par.Do(len(s.re)/2, func(k int) {
			s0 := (k&^lowMask)<<1 | k&lowMask
			s1 := s0 | bit
			p.Apply1QPairChunks(i, s.re[s0], s.im[s0], s.re[s1], s.im[s1])
		})
	case qsim.OpCX:
		tbit := 1 << (q2 - s.shardBits)
		if q >= s.shardBits {
			cbit := 1 << (q - s.shardBits)
			for sh := range s.re {
				if sh&cbit != 0 && sh&tbit == 0 {
					o := sh | tbit
					s.re[sh], s.re[o] = s.re[o], s.re[sh]
					s.im[sh], s.im[o] = s.im[o], s.im[sh]
				}
			}
			return
		}
		lowMask := tbit - 1
		par.Do(len(s.re)/2, func(k int) {
			s0 := (k&^lowMask)<<1 | k&lowMask
			s1 := s0 | tbit
			qsim.SwapWhereSetChunk(s.re[s0], s.im[s0], s.re[s1], s.im[s1], q)
		})
	}
}

// Probabilities returns the full 2^n basis distribution (small n only —
// the slice is contiguous).
func (s *State) Probabilities() []float64 {
	out := make([]float64, 1<<s.n)
	chunk := 1 << s.shardBits
	par.Do(len(s.re), func(sh int) {
		re, im := s.re[sh], s.im[sh]
		p := out[sh*chunk : sh*chunk+chunk]
		for i := range p {
			p[i] = re[i]*re[i] + im[i]*im[i]
		}
	})
	return out
}

// ExpectationZ returns ⟨Z_q⟩: per-shard partial sums folded in
// shard-index order (deterministic at any GOMAXPROCS). A global qubit's
// sign is constant per shard and read from the shard index.
//
//qtenon:hotpath
func (s *State) ExpectationZ(q int) float64 {
	s.zScratch = growScratch(s.zScratch, len(s.re))
	partial := s.zScratch
	if q < s.shardBits {
		m := 1 << q
		par.Do(len(s.re), func(sh int) {
			re, im := s.re[sh], s.im[sh]
			var e float64
			for i := range re {
				p := re[i]*re[i] + im[i]*im[i]
				if i&m == 0 {
					e += p
				} else {
					e -= p
				}
			}
			partial[sh] = e
		})
	} else {
		sb := 1 << (q - s.shardBits)
		par.Do(len(s.re), func(sh int) {
			re, im := s.re[sh], s.im[sh]
			var e float64
			for i := range re {
				e += re[i]*re[i] + im[i]*im[i]
			}
			if sh&sb != 0 {
				e = -e
			}
			partial[sh] = e
		})
	}
	var sum float64
	for _, v := range partial {
		sum += v
	}
	return sum
}

// ensureSampler builds the two-level alias sampler: a per-shard table
// over the shard's amplitudes plus a top-level table over shard masses.
// Build cost is O(2^n) once per mutation, amortized across shots like
// the contiguous sampler; all table storage is recycled across builds.
func (s *State) ensureSampler() {
	if s.samplerValid {
		return
	}
	numShards := len(s.re)
	if cap(s.sub) < numShards {
		s.sub = make([]qsim.Alias, numShards)
		s.probScratch = make([][]float64, numShards)
		s.topProbs = make([]float64, numShards)
	}
	s.sub = s.sub[:numShards]
	s.probScratch = s.probScratch[:numShards]
	s.topProbs = s.topProbs[:numShards]
	par.Do(numShards, func(sh int) {
		re, im := s.re[sh], s.im[sh]
		probs := s.probScratch[sh]
		if cap(probs) < len(re) {
			probs = make([]float64, len(re))
		}
		probs = probs[:len(re)]
		var mass float64
		for i := range re {
			p := re[i]*re[i] + im[i]*im[i]
			probs[i] = p
			mass += p
		}
		s.probScratch[sh] = probs
		s.topProbs[sh] = mass
		s.sub[sh] = qsim.NewAlias(probs, s.sub[sh])
	})
	s.top = qsim.NewAlias(s.topProbs, s.top)
	s.samplerValid = true
}

// Sample draws shots full-register outcomes without collapsing the
// state: a top-level draw picks the shard, a per-shard draw the
// amplitude. Shots run in fixed qsim.SampleBlock blocks, each seeded by
// one serial draw from the caller's RNG — the contiguous sampler's
// determinism discipline, so outcome streams are GOMAXPROCS-independent
// and rng is only touched on the calling goroutine.
func (s *State) Sample(shots int, rng *rand.Rand) []uint64 {
	if shots <= 0 {
		return nil
	}
	s.ensureSampler()
	out := make([]uint64, shots)
	nblocks := (shots + qsim.SampleBlock - 1) / qsim.SampleBlock
	seeds := s.seedScratch[:0]
	for i := 0; i < nblocks; i++ {
		seeds = append(seeds, rng.Int63())
	}
	s.seedScratch = seeds
	shardBits := uint(s.shardBits)
	par.Do(nblocks, func(b int) {
		sub := qrng.New(seeds[b])
		lo := b * qsim.SampleBlock
		hi := lo + qsim.SampleBlock
		if hi > shots {
			hi = shots
		}
		for k := lo; k < hi; k++ {
			sh := s.top.Draw(sub)
			j := s.sub[sh].Draw(sub)
			out[k] = uint64(sh)<<shardBits | uint64(j)
		}
	})
	return out
}
