package qsim

import (
	"fmt"
	"math/cmplx"

	"qtenon/internal/circuit"
	"qtenon/internal/par"
)

// expI returns e^{ix}.
func expI(x float64) complex128 { return cmplx.Exp(complex(0, x)) }

func panicUnsupported(g circuit.Gate) {
	panic(fmt.Sprintf("qsim: unsupported gate kind %v", g.Kind))
}

// Gate fusion. Run compiles a gate list into a shorter sequence of fused
// operations before touching the statevector:
//
//   - Runs of single-qubit gates on one qubit fold into a single 2×2
//     matrix (one amplitude sweep instead of one per gate). Because
//     single-qubit gates on distinct qubits commute, the folding window
//     for qubit q extends until a multi-qubit gate touches q, not merely
//     until the next gate in program order.
//   - Diagonal gates (CZ, RZZ, and single-qubit runs that reduce to a
//     diagonal matrix, i.e. Z/S/T/RZ chains) batch into one phase sweep
//     that multiplies each amplitude by every applicable phase factor in
//     a single pass over the array.
//
// Commuting reorderings change floating-point evaluation order, so fused
// execution matches gate-by-gate execution to ~1e-12 rather than
// bit-exactly; the fusion_test property test pins that bound. The fused
// program depends only on the gate list — never on worker count — so
// results remain deterministic across GOMAXPROCS.
//
// Execution is cache-blocked (DESIGN.md §11.3): consecutive fused ops
// whose amplitude coupling fits inside a tile of tileAmps amplitudes are
// grouped, and the whole group is applied tile by tile, so a tile's two
// 32 KiB float arrays stay L1/L2-resident across the group instead of
// each op streaming the full statevector through the cache.

// tileAmps is the cache tile: 4096 amplitudes = 2 × 32 KiB of SoA
// floats, sized so a tile's re and im arrays together fit comfortably in
// a 64 KiB L1 slice with room for the matrix constants (DESIGN.md
// §11.3). It must divide par's chunk size (1<<13) so tile boundaries are
// identical whether a chunk runs inline or on a worker — tiling, like
// fusion, never depends on worker count.
const tileAmps = 1 << 12

// diagTerm is one factor of a batched phase sweep. Every diagonal gate
// reduces to the same branchless form: amplitude i is multiplied by
// f[bitA | bitB<<1] where bitA = (i>>sA)&1 and bitB = (i>>sB)&1.
//
//   - diagonal 1q matrix on q: sA = sB = q, f = {f0, f1, f0, f1}
//   - CZ(a,b):                 f = {1, 1, 1, -1}
//   - RZZ(a,b):                f = {f0, f1, f1, f0} (equal bits → f0)
//
// Each table is symmetric under swapping its two bits, so construction
// orders sA ≤ sB; the executor exploits that to hoist the factor out of
// runs of 2^sA consecutive indices.
type diagTerm struct {
	sA, sB int
	f      [4]complex128
}

// fusedOp is one compiled operation.
type fusedOp struct {
	kind  uint8 // op1Q, opCX or opDiag
	q, q2 int
	u     [4]complex128
	terms []diagTerm
}

const (
	op1Q uint8 = iota
	opCX
	opDiag
)

// fuser accumulates the fused program. It doubles as reusable scratch:
// reset recycles the ops slice (including retired per-op term storage)
// and the pending-matrix arrays, so steady-state fusion of same-shaped
// circuits allocates nothing.
type fuser struct {
	ops []fusedOp
	// pendM/pendV hold the not-yet-emitted single-qubit matrix per qubit
	// (value + valid flag, so latching a matrix never allocates).
	pendM [][4]complex128
	pendV []bool
	// pendDiagK tracks whether the pending run is diagonal by gate kind
	// (Z/S/T/RZ/I chains). Numerically it implies isDiagonal of the
	// folded matrix; the recording mode (plan.go) uses it because kind
	// is binding-independent where the numeric test is not.
	pendDiagK []bool
	// batch indexes the open diagonal batch in ops, -1 when none.
	batch int
	// batchQ marks qubits the open batch acts on; batchBlocked marks
	// qubits touched by operations emitted after the batch. A new term
	// on a blocked qubit cannot execute at the batch's position.
	batchQ, batchBlocked uint32
	// rec, when non-nil, records binding provenance for every emitted op
	// (plan compilation); nil for plain bound-circuit fusion.
	rec *planRecorder
}

// reset prepares the fuser for a circuit over nq qubits, keeping storage.
func (f *fuser) reset(nq int) {
	f.ops = f.ops[:0]
	if cap(f.pendM) < nq {
		f.pendM = make([][4]complex128, nq)
		f.pendV = make([]bool, nq)
		f.pendDiagK = make([]bool, nq)
	}
	f.pendM = f.pendM[:nq]
	f.pendV = f.pendV[:nq]
	f.pendDiagK = f.pendDiagK[:nq]
	for i := range f.pendV {
		f.pendV[i] = false
	}
	f.batch = -1
	f.batchQ, f.batchBlocked = 0, 0
	f.rec = nil
}

// appendOp appends a term-free op (op1Q, opCX, or a placeholder),
// reusing slice capacity like append.
func (f *fuser) appendOp(op fusedOp) {
	n := len(f.ops)
	if n < cap(f.ops) {
		f.ops = f.ops[:n+1]
		f.ops[n] = op
		return
	}
	f.ops = append(f.ops, op)
}

// matMul returns a·b for row-major 2×2 matrices {m00,m01,m10,m11}.
func matMul(a, b [4]complex128) [4]complex128 {
	return [4]complex128{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

// isDiagonal gates the batched diagonal-sweep fast path. The exact ==0
// test is intentional: only matrices whose off-diagonal entries are
// bit-for-bit zero may take it, so the check must not widen under a
// tolerance (a near-diagonal matrix through the diagonal kernel would
// silently drop its off-diagonal amplitude flow).
//
//lint:ignore floatcompare exact zero check selects a kernel; a tolerance would change numerics (DESIGN.md §9.4)
func isDiagonal(m [4]complex128) bool { return m[1] == 0 && m[2] == 0 }

// merge1Q folds a single-qubit matrix into the qubit's pending run.
// diagK reports whether the gate's kind guarantees a diagonal matrix;
// the flag survives only if every gate in the run has it.
func (f *fuser) merge1Q(q int, m [4]complex128, diagK bool) {
	if f.pendV[q] {
		f.pendM[q] = matMul(m, f.pendM[q])
		f.pendDiagK[q] = f.pendDiagK[q] && diagK
		return
	}
	f.pendM[q] = m
	f.pendV[q] = true
	f.pendDiagK[q] = diagK
}

// pendIsDiag decides whether qubit q's pending run takes the diagonal
// path. Plain fusion uses the numeric test (catches e.g. RY(θ) folds
// that happen to cancel); recording mode uses the kind-based flag, which
// is binding-independent — a plan's op structure must not change when
// the same plan executes under different parameter values (DESIGN.md
// §11.4). Kind-diagonality implies numeric diagonality, so the recorded
// structure is valid for every binding.
func (f *fuser) pendIsDiag(q int) bool {
	if f.rec != nil {
		return f.pendDiagK[q]
	}
	return isDiagonal(f.pendM[q])
}

// flush emits qubit q's pending matrix, if any. Placement rules, each
// justified by commutation with everything it is reordered across:
//
//   - A diagonal pending joins the open batch as a phase term when q is
//     not blocked (terms evaluate in order within the sweep, and no op
//     after the batch touches q).
//   - A diagonal pending with no usable batch opens one, so trailing
//     rotation-layer chains still share a sweep.
//   - A non-diagonal pending is inserted just before the open batch when
//     the batch and everything after it avoid q, keeping the batch
//     extendable; otherwise it is appended (and blocks q).
func (f *fuser) flush(q int) {
	if !f.pendV[q] {
		return
	}
	p := f.pendM[q]
	f.pendV[q] = false
	bit := uint32(1) << q
	if f.pendIsDiag(q) {
		t := diagTerm{sA: q, sB: q, f: [4]complex128{p[0], p[3], p[0], p[3]}}
		if f.batch >= 0 && f.batchBlocked&bit == 0 {
			f.ops[f.batch].terms = append(f.ops[f.batch].terms, t)
			f.batchQ |= bit
			f.rec.noteDiagTerm(q, f.batch, len(f.ops[f.batch].terms)-1)
			return
		}
		f.openBatch(t, bit)
		f.rec.noteDiagTerm(q, f.batch, 0)
		return
	}
	op := fusedOp{kind: op1Q, q: q, u: p}
	if f.batch >= 0 && (f.batchQ|f.batchBlocked)&bit == 0 {
		f.appendOp(fusedOp{})
		copy(f.ops[f.batch+1:], f.ops[f.batch:])
		f.ops[f.batch] = op
		f.batch++
		f.rec.note1QInserted(q, f.batch-1)
		return
	}
	f.appendOp(op)
	if f.batch >= 0 {
		f.batchBlocked |= bit
	}
	f.rec.note1QAppended(q, len(f.ops)-1)
}

// openBatch appends a fresh diagonal batch holding t. When the ops
// slice's capacity covers the new slot, the retired op there (from a
// previous fuse through this scratch) donates its term storage, so
// re-fusing same-shaped circuits allocates no term slices.
func (f *fuser) openBatch(t diagTerm, qbits uint32) {
	n := len(f.ops)
	if n < cap(f.ops) {
		f.ops = f.ops[:n+1]
		terms := append(f.ops[n].terms[:0], t)
		f.ops[n] = fusedOp{kind: opDiag, terms: terms}
	} else {
		f.ops = append(f.ops, fusedOp{kind: opDiag, terms: []diagTerm{t}})
	}
	f.batch = n
	f.batchQ, f.batchBlocked = qbits, 0
}

// addDiag routes a two-qubit diagonal gate into the open batch when its
// qubits are unblocked, else starts a new batch. It reports the (op,
// term) slot the term landed in, for the recorder.
func (f *fuser) addDiag(t diagTerm, a, b int) (opIdx, termIdx int) {
	f.flush(a)
	f.flush(b)
	bits := uint32(1)<<a | uint32(1)<<b
	if f.batch >= 0 && f.batchBlocked&bits == 0 {
		f.ops[f.batch].terms = append(f.ops[f.batch].terms, t)
		f.batchQ |= bits
		return f.batch, len(f.ops[f.batch].terms) - 1
	}
	f.openBatch(t, bits)
	return f.batch, 0
}

// fuse compiles a bound gate list into fused operations. Measure and
// explicit identity gates are dropped (Run samples the pre-measurement
// state, matching Apply's semantics). f is reusable scratch (nil for a
// one-shot fuse); the returned slice aliases its storage and is valid
// until the next fuse through the same scratch.
func fuse(gates []circuit.Gate, f *fuser) []fusedOp {
	return fuseRec(gates, f, nil)
}

// fuseRec is fuse with an optional provenance recorder (plan
// compilation). With rec non-nil, gates may carry unbound parameter
// references; the emitted numeric matrices are placeholders that
// Plan.refill recomputes per binding, while the op *structure* is exact
// for every binding (kind-based diagonality — see pendIsDiag).
func fuseRec(gates []circuit.Gate, f *fuser, rec *planRecorder) []fusedOp {
	maxQ := 0
	for _, g := range gates {
		if g.Qubit > maxQ {
			maxQ = g.Qubit
		}
		if g.Kind.Arity() == 2 && g.Qubit2 > maxQ {
			maxQ = g.Qubit2
		}
	}
	if f == nil {
		f = &fuser{}
	}
	f.reset(maxQ + 1)
	f.rec = rec
	for _, g := range gates {
		switch g.Kind {
		case circuit.I, circuit.Measure:
		case circuit.CZ:
			lo, hi := minMax(g.Qubit, g.Qubit2)
			opIdx, termIdx := f.addDiag(diagTerm{
				sA: lo, sB: hi,
				f: [4]complex128{1, 1, 1, -1},
			}, g.Qubit, g.Qubit2)
			f.rec.noteTwoQTerm(g, opIdx, termIdx)
		case circuit.RZZ:
			e0, e1 := expI(-g.Theta/2), expI(g.Theta/2)
			lo, hi := minMax(g.Qubit, g.Qubit2)
			opIdx, termIdx := f.addDiag(diagTerm{
				sA: lo, sB: hi,
				f: [4]complex128{e0, e1, e1, e0},
			}, g.Qubit, g.Qubit2)
			f.rec.noteTwoQTerm(g, opIdx, termIdx)
		case circuit.CX:
			f.flush(g.Qubit)
			f.flush(g.Qubit2)
			f.appendOp(fusedOp{kind: opCX, q: g.Qubit, q2: g.Qubit2})
			if f.batch >= 0 {
				f.batchBlocked |= uint32(1)<<g.Qubit | uint32(1)<<g.Qubit2
			}
		default:
			m, ok := gateMatrix1Q(g)
			if !ok {
				// Mirror Apply's behaviour for unknown kinds.
				panicUnsupported(g)
			}
			f.rec.noteMerge(g, !f.pendV[g.Qubit])
			f.merge1Q(g.Qubit, m, kindIsDiag(g.Kind))
		}
	}
	for q := range f.pendV {
		f.flush(q)
	}
	f.rec = nil
	return f.ops
}

// kindIsDiag reports single-qubit kinds whose matrix is diagonal for
// every angle.
func kindIsDiag(k circuit.Kind) bool {
	switch k {
	case circuit.I, circuit.Z, circuit.S, circuit.T, circuit.RZ:
		return true
	}
	return false
}

func minMax(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

// --- Tiled execution ----------------------------------------------------

// opTileable reports whether an op's amplitude coupling is contained in
// a tileAmps-aligned tile: a 1q op pairs i with i+2^q (needs 2^(q+1) ≤
// tileAmps), a CX pairs i with i|2^target (needs 2^target < tileAmps),
// and a diagonal sweep is elementwise (always tileable).
func opTileable(op *fusedOp) bool {
	switch op.kind {
	case op1Q:
		return 1<<(op.q+1) <= tileAmps
	case opCX:
		return 1<<op.q2 < tileAmps
	default:
		return true
	}
}

// signTerm is a diagTerm whose four factors are all exactly ±1 (CZ and
// Z-like chains). Bit p of lut is set when f[p] = −1, so the term's
// whole effect is a conditional negation — no complex arithmetic at all.
type signTerm struct {
	sA, sB uint
	lut    uint8
}

// phaseTerm is a general diagTerm with the complex factors pre-split
// into float components for the SoA kernels.
type phaseTerm struct {
	sA, sB uint
	fr, fi [4]float64
}

// diagPrep indexes one opDiag's classified terms inside execScratch's
// flat arrays.
type diagPrep struct {
	signOff, signLen   int
	phaseOff, phaseLen int
}

// execScratch is the tiled executor's reusable working memory: the
// classified diagonal terms of the current op group. It never escapes
// the State.
type execScratch struct {
	preps  []diagPrep
	signs  []signTerm
	phases []phaseTerm
}

// termIsSign classifies a diagonal factor table: a term is a pure sign
// term only when every factor is bit-for-bit ±1. Exact comparison is
// required — a factor merely close to ±1 must take the phase path or the
// sweep's numerics would change.
//
//lint:ignore floatcompare exact ±1 check selects the parity kernel; a tolerance would change numerics (DESIGN.md §11.2)
func termIsSign(f *[4]complex128) (lut uint8, ok bool) {
	for p := 0; p < 4; p++ {
		//lint:ignore floatcompare exact ±1 check selects the parity kernel; a tolerance would change numerics (DESIGN.md §11.2)
		if imag(f[p]) != 0 {
			return 0, false
		}
		switch real(f[p]) {
		case 1:
		case -1:
			lut |= 1 << p
		default:
			return 0, false
		}
	}
	return lut, true
}

// prepare classifies every opDiag in the group into sign and phase
// terms, preserving relative phase-term order. Reordering the exact ±1
// sign factors after the phase factors is safe: multiplication by ±1 is
// exact, so it commutes bit-for-bit with the other multiplies (up to the
// sign of zeros, which no probability or expectation observes —
// DESIGN.md §11.2).
func (x *execScratch) prepare(ops []fusedOp) []diagPrep {
	if cap(x.preps) < len(ops) {
		x.preps = make([]diagPrep, len(ops))
	}
	x.preps = x.preps[:len(ops)]
	x.signs = x.signs[:0]
	x.phases = x.phases[:0]
	for k := range ops {
		if ops[k].kind != opDiag {
			x.preps[k] = diagPrep{}
			continue
		}
		p := diagPrep{signOff: len(x.signs), phaseOff: len(x.phases)}
		for ti := range ops[k].terms {
			t := &ops[k].terms[ti]
			if lut, ok := termIsSign(&t.f); ok {
				x.signs = append(x.signs, signTerm{sA: uint(t.sA), sB: uint(t.sB), lut: lut})
				continue
			}
			pt := phaseTerm{sA: uint(t.sA), sB: uint(t.sB)}
			for p := 0; p < 4; p++ {
				pt.fr[p] = real(t.f[p])
				pt.fi[p] = imag(t.f[p])
			}
			x.phases = append(x.phases, pt)
		}
		p.signLen = len(x.signs) - p.signOff
		p.phaseLen = len(x.phases) - p.phaseOff
		x.preps[k] = p
	}
	return x.preps
}

// applyFused executes a compiled program. Consecutive tileable ops run
// as one cache-blocked group; ops whose coupling exceeds a tile (high-
// qubit 1q/CX on large registers) run as full-array sweeps between
// groups. Grouping never reorders ops, so results are identical to
// op-at-a-time execution.
//
//qtenon:hotpath
func (s *State) applyFused(ops []fusedOp) {
	i := 0
	for i < len(ops) {
		j := i
		for j < len(ops) && opTileable(&ops[j]) {
			j++
		}
		if j > i {
			s.applyTiled(ops[i:j])
			i = j
			continue
		}
		op := &ops[i]
		switch op.kind {
		case op1Q:
			s.apply1Q(op.q, op.u[0], op.u[1], op.u[2], op.u[3])
		case opCX:
			s.applyCX(op.q, op.q2)
		}
		i++
	}
}

// applyTiled executes a group of tileable ops tile by tile: each
// tileAmps-aligned tile has every op of the group applied to it before
// the sweep moves on, so the tile's SoA arrays stay cache-resident
// across the whole group. par chunks are multiples of tileAmps, so tile
// boundaries — like everything else in execution — are independent of
// worker count.
//
//qtenon:hotpath
func (s *State) applyTiled(ops []fusedOp) {
	s.invalidate()
	preps := s.execScratch.prepare(ops)
	signs, phases := s.execScratch.signs, s.execScratch.phases
	re, im := s.re, s.im
	par.For(len(re), func(lo, hi int) {
		for base := lo; base < hi; base += tileAmps {
			end := base + tileAmps
			if end > hi {
				end = hi
			}
			for k := range ops {
				op := &ops[k]
				switch op.kind {
				case op1Q:
					stride := 1 << op.q
					// base is 2·stride-aligned, so the tile's pairs are
					// exactly pair indices [base/2, end/2).
					if matIsReal(&op.u) {
						r := [4]float64{real(op.u[0]), real(op.u[1]), real(op.u[2]), real(op.u[3])}
						apply1QRealPairs(re, im, stride, r, base>>1, end>>1)
					} else {
						apply1QCmplxPairs(re, im, stride, &op.u, base>>1, end>>1)
					}
				case opCX:
					applyCXRange(re, im, 1<<op.q, 1<<op.q2, base, end)
				case opDiag:
					p := preps[k]
					applyPhaseTermsRange(re, im, phases[p.phaseOff:p.phaseOff+p.phaseLen], base, end)
					applySignTermsRange(re, im, signs[p.signOff:p.signOff+p.signLen], base, end)
				}
			}
		}
	})
}

// applyPhaseTermsRange multiplies amplitudes [lo, hi) by each phase
// term's factors. The factor is constant over runs of 2^sA consecutive
// indices (sA ≤ sB by construction, and lo is run-aligned or the range
// sits inside one run), so each run dispatches once: exact-1 factors
// skip the run, exactly-real factors take the two-multiply scale, and
// the rest the full complex multiply. The specializations change only
// the sign of zeros relative to always-complex multiplication
// (DESIGN.md §11.2).
//
//qtenon:hotpath
func applyPhaseTermsRange(re, im []float64, terms []phaseTerm, lo, hi int) {
	for ti := range terms {
		t := &terms[ti]
		sA, sB := t.sA, t.sB
		step := 1 << sA
		for base := lo; base < hi; base += step {
			p := ((base >> sA) & 1) | (((base >> sB) & 1) << 1)
			cr, ci := t.fr[p], t.fi[p]
			end := base + step
			if end > hi {
				end = hi
			}
			//lint:ignore floatcompare exact 1/0 factor tests select skip/real-scale fast paths; a tolerance would change numerics (DESIGN.md §11.2)
			if ci == 0 {
				//lint:ignore floatcompare exact 1 factor test selects the skip fast path; a tolerance would change numerics (DESIGN.md §11.2)
				if cr == 1 {
					continue
				}
				for i := base; i < end; i++ {
					re[i] *= cr
					im[i] *= cr
				}
				continue
			}
			for i := base; i < end; i++ {
				r, m := re[i], im[i]
				re[i] = r*cr - m*ci
				im[i] = r*ci + m*cr
			}
		}
	}
}

// applySignTermsRange applies pure ±1 terms over [lo, hi): each negative
// lut pattern is visited directly by nested stride loops, so a CZ
// negates exactly a quarter of the amplitudes with no per-run factor
// lookup and no complex arithmetic. lo must be aligned to
// min(2^(sB+1), hi−lo) and hi−lo must be a power of two or end the
// array; tile and chunk bounds guarantee both.
//
//qtenon:hotpath
func applySignTermsRange(re, im []float64, terms []signTerm, lo, hi int) {
	for ti := range terms {
		t := &terms[ti]
		sA, sB := t.sA, t.sB
		lut := t.lut
		if lut == 0 {
			// No negative patterns — an all-ones factor table (e.g. a
			// plan's RZZ rebound to θ=0) is a no-op.
			continue
		}
		if sA == sB {
			// Single-bit term: only patterns 0 (bit clear) and 3 (set)
			// occur.
			negateBit(re, im, sA, lut&1 != 0, lut>>3&1 != 0, lo, hi)
			continue
		}
		stepB := 1 << sB
		if stepB >= hi-lo {
			// Bit sB is constant across the range; select its half of
			// the lut and fall back to the single-bit sweep on sA.
			l := (lut >> (2 * uint((lo>>sB)&1))) & 3
			negateBit(re, im, sA, l&1 != 0, l>>1&1 != 0, lo, hi)
			continue
		}
		stepA := 1 << sA
		if sB == sA+1 && lut&(lut-1) == 0 {
			// Adjacent bits, single negative pattern — the CZ brick
			// case: the inner stride loop has exactly one run per outer
			// block, so flatten to one loop.
			p := uint8(0)
			for lut>>p&1 == 0 {
				p++
			}
			off := int(p&1)<<sA | int(p>>1)<<sB
			for b := lo + off; b < hi; b += stepB << 1 {
				for i := b; i < b+stepA; i++ {
					re[i] = -re[i]
					im[i] = -im[i]
				}
			}
			continue
		}
		for p := uint8(0); p < 4; p++ {
			if lut>>p&1 == 0 {
				continue
			}
			offA := int(p&1) << sA
			offB := int(p>>1) << sB
			for bB := lo + offB; bB < hi; bB += stepB << 1 {
				for b := bB + offA; b < bB+stepB; b += stepA << 1 {
					for i := b; i < b+stepA; i++ {
						re[i] = -re[i]
						im[i] = -im[i]
					}
				}
			}
		}
	}
}

// negateBit negates the [lo, hi) amplitudes whose bit sA is clear
// (neg0) and/or set (neg1). lo must be aligned to min(2^(sA+1), hi−lo).
func negateBit(re, im []float64, sA uint, neg0, neg1 bool, lo, hi int) {
	step := 1 << sA
	if step >= hi-lo {
		set := (lo>>sA)&1 != 0
		if (set && neg1) || (!set && neg0) {
			for i := lo; i < hi; i++ {
				re[i] = -re[i]
				im[i] = -im[i]
			}
		}
		return
	}
	if neg0 {
		for b := lo; b < hi; b += step << 1 {
			for i := b; i < b+step; i++ {
				re[i] = -re[i]
				im[i] = -im[i]
			}
		}
	}
	if neg1 {
		for b := lo + step; b < hi; b += step << 1 {
			for i := b; i < b+step; i++ {
				re[i] = -re[i]
				im[i] = -im[i]
			}
		}
	}
}
