package qsim

import (
	"fmt"
	"math/cmplx"

	"qtenon/internal/circuit"
	"qtenon/internal/par"
)

// expI returns e^{ix}.
func expI(x float64) complex128 { return cmplx.Exp(complex(0, x)) }

func panicUnsupported(g circuit.Gate) {
	panic(fmt.Sprintf("qsim: unsupported gate kind %v", g.Kind))
}

// Gate fusion. Run compiles a gate list into a shorter sequence of fused
// operations before touching the statevector:
//
//   - Runs of single-qubit gates on one qubit fold into a single 2×2
//     matrix (one amplitude sweep instead of one per gate). Because
//     single-qubit gates on distinct qubits commute, the folding window
//     for qubit q extends until a multi-qubit gate touches q, not merely
//     until the next gate in program order.
//   - Diagonal gates (CZ, RZZ, and single-qubit runs that reduce to a
//     diagonal matrix, i.e. Z/S/T/RZ chains) batch into one phase sweep
//     that multiplies each amplitude by every applicable phase factor in
//     a single pass over the array.
//
// Commuting reorderings change floating-point evaluation order, so fused
// execution matches gate-by-gate execution to ~1e-12 rather than
// bit-exactly; the fusion_test property test pins that bound. The fused
// program depends only on the gate list — never on worker count — so
// results remain deterministic across GOMAXPROCS.

// diagTerm is one factor of a batched phase sweep. Every diagonal gate
// reduces to the same branchless form: amplitude i is multiplied by
// f[bitA | bitB<<1] where bitA = (i>>sA)&1 and bitB = (i>>sB)&1. A
// uniform table lookup (instead of per-kind branches) matters: a batch
// interleaves many parity patterns through one loop body, which defeats
// branch prediction if the factor choice branches.
//
//   - diagonal 1q matrix on q: sA = sB = q, f = {f0, f1, f0, f1}
//   - CZ(a,b):                 f = {1, 1, 1, -1}
//   - RZZ(a,b):                f = {f0, f1, f1, f0} (equal bits → f0)
//
// Each table is symmetric under swapping its two bits, so construction
// orders sA ≤ sB; applyDiag exploits that to hoist the factor out of
// runs of 2^sA consecutive indices.
type diagTerm struct {
	sA, sB int
	f      [4]complex128
}

// fusedOp is one compiled operation.
type fusedOp struct {
	kind  uint8 // op1Q, opCX or opDiag
	q, q2 int
	u     [4]complex128
	terms []diagTerm
}

const (
	op1Q uint8 = iota
	opCX
	opDiag
)

// fuser accumulates the fused program. It doubles as reusable scratch:
// reset recycles the ops slice (including retired per-op term storage)
// and the pending-matrix arrays, so steady-state fusion of same-shaped
// circuits allocates nothing.
type fuser struct {
	ops []fusedOp
	// pendM/pendV hold the not-yet-emitted single-qubit matrix per qubit
	// (value + valid flag, so latching a matrix never allocates).
	pendM [][4]complex128
	pendV []bool
	// batch indexes the open diagonal batch in ops, -1 when none.
	batch int
	// batchQ marks qubits the open batch acts on; batchBlocked marks
	// qubits touched by operations emitted after the batch. A new term
	// on a blocked qubit cannot execute at the batch's position.
	batchQ, batchBlocked uint32
}

// reset prepares the fuser for a circuit over nq qubits, keeping storage.
func (f *fuser) reset(nq int) {
	f.ops = f.ops[:0]
	if cap(f.pendM) < nq {
		f.pendM = make([][4]complex128, nq)
		f.pendV = make([]bool, nq)
	}
	f.pendM = f.pendM[:nq]
	f.pendV = f.pendV[:nq]
	for i := range f.pendV {
		f.pendV[i] = false
	}
	f.batch = -1
	f.batchQ, f.batchBlocked = 0, 0
}

// appendOp appends a term-free op (op1Q, opCX, or a placeholder),
// reusing slice capacity like append.
func (f *fuser) appendOp(op fusedOp) {
	n := len(f.ops)
	if n < cap(f.ops) {
		f.ops = f.ops[:n+1]
		f.ops[n] = op
		return
	}
	f.ops = append(f.ops, op)
}

// matMul returns a·b for row-major 2×2 matrices {m00,m01,m10,m11}.
func matMul(a, b [4]complex128) [4]complex128 {
	return [4]complex128{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

// isDiagonal gates the batched diagonal-sweep fast path. The exact ==0
// test is intentional: only matrices whose off-diagonal entries are
// bit-for-bit zero may take it, so the check must not widen under a
// tolerance (a near-diagonal matrix through the diagonal kernel would
// silently drop its off-diagonal amplitude flow).
//
//lint:ignore floatcompare exact zero check selects a kernel; a tolerance would change numerics (DESIGN.md §9.4)
func isDiagonal(m [4]complex128) bool { return m[1] == 0 && m[2] == 0 }

// merge1Q folds a single-qubit matrix into the qubit's pending run.
func (f *fuser) merge1Q(q int, m [4]complex128) {
	if f.pendV[q] {
		f.pendM[q] = matMul(m, f.pendM[q])
		return
	}
	f.pendM[q] = m
	f.pendV[q] = true
}

// flush emits qubit q's pending matrix, if any. Placement rules, each
// justified by commutation with everything it is reordered across:
//
//   - A diagonal pending joins the open batch as a phase term when q is
//     not blocked (terms evaluate in order within the sweep, and no op
//     after the batch touches q).
//   - A diagonal pending with no usable batch opens one, so trailing
//     rotation-layer chains still share a sweep.
//   - A non-diagonal pending is inserted just before the open batch when
//     the batch and everything after it avoid q, keeping the batch
//     extendable; otherwise it is appended (and blocks q).
func (f *fuser) flush(q int) {
	if !f.pendV[q] {
		return
	}
	p := f.pendM[q]
	f.pendV[q] = false
	bit := uint32(1) << q
	if isDiagonal(p) {
		t := diagTerm{sA: q, sB: q, f: [4]complex128{p[0], p[3], p[0], p[3]}}
		if f.batch >= 0 && f.batchBlocked&bit == 0 {
			f.ops[f.batch].terms = append(f.ops[f.batch].terms, t)
			f.batchQ |= bit
			return
		}
		f.openBatch(t, bit)
		return
	}
	op := fusedOp{kind: op1Q, q: q, u: p}
	if f.batch >= 0 && (f.batchQ|f.batchBlocked)&bit == 0 {
		f.appendOp(fusedOp{})
		copy(f.ops[f.batch+1:], f.ops[f.batch:])
		f.ops[f.batch] = op
		f.batch++
		return
	}
	f.appendOp(op)
	if f.batch >= 0 {
		f.batchBlocked |= bit
	}
}

// openBatch appends a fresh diagonal batch holding t. When the ops
// slice's capacity covers the new slot, the retired op there (from a
// previous fuse through this scratch) donates its term storage, so
// re-fusing same-shaped circuits allocates no term slices.
func (f *fuser) openBatch(t diagTerm, qbits uint32) {
	n := len(f.ops)
	if n < cap(f.ops) {
		f.ops = f.ops[:n+1]
		terms := append(f.ops[n].terms[:0], t)
		f.ops[n] = fusedOp{kind: opDiag, terms: terms}
	} else {
		f.ops = append(f.ops, fusedOp{kind: opDiag, terms: []diagTerm{t}})
	}
	f.batch = n
	f.batchQ, f.batchBlocked = qbits, 0
}

// addDiag routes a two-qubit diagonal gate into the open batch when its
// qubits are unblocked, else starts a new batch.
func (f *fuser) addDiag(t diagTerm, a, b int) {
	f.flush(a)
	f.flush(b)
	bits := uint32(1)<<a | uint32(1)<<b
	if f.batch >= 0 && f.batchBlocked&bits == 0 {
		f.ops[f.batch].terms = append(f.ops[f.batch].terms, t)
		f.batchQ |= bits
		return
	}
	f.openBatch(t, bits)
}

// fuse compiles a bound gate list into fused operations. Measure and
// explicit identity gates are dropped (Run samples the pre-measurement
// state, matching Apply's semantics). f is reusable scratch (nil for a
// one-shot fuse); the returned slice aliases its storage and is valid
// until the next fuse through the same scratch.
func fuse(gates []circuit.Gate, f *fuser) []fusedOp {
	maxQ := 0
	for _, g := range gates {
		if g.Qubit > maxQ {
			maxQ = g.Qubit
		}
		if g.Kind.Arity() == 2 && g.Qubit2 > maxQ {
			maxQ = g.Qubit2
		}
	}
	if f == nil {
		f = &fuser{}
	}
	f.reset(maxQ + 1)
	for _, g := range gates {
		switch g.Kind {
		case circuit.I, circuit.Measure:
		case circuit.CZ:
			lo, hi := minMax(g.Qubit, g.Qubit2)
			f.addDiag(diagTerm{
				sA: lo, sB: hi,
				f: [4]complex128{1, 1, 1, -1},
			}, g.Qubit, g.Qubit2)
		case circuit.RZZ:
			e0, e1 := expI(-g.Theta/2), expI(g.Theta/2)
			lo, hi := minMax(g.Qubit, g.Qubit2)
			f.addDiag(diagTerm{
				sA: lo, sB: hi,
				f: [4]complex128{e0, e1, e1, e0},
			}, g.Qubit, g.Qubit2)
		case circuit.CX:
			f.flush(g.Qubit)
			f.flush(g.Qubit2)
			f.appendOp(fusedOp{kind: opCX, q: g.Qubit, q2: g.Qubit2})
			if f.batch >= 0 {
				f.batchBlocked |= uint32(1)<<g.Qubit | uint32(1)<<g.Qubit2
			}
		default:
			m, ok := gateMatrix1Q(g)
			if !ok {
				// Mirror Apply's behaviour for unknown kinds.
				panicUnsupported(g)
			}
			f.merge1Q(g.Qubit, m)
		}
	}
	for q := range f.pendV {
		f.flush(q)
	}
	return f.ops
}

// applyFused executes a compiled program.
func (s *State) applyFused(ops []fusedOp) {
	for _, op := range ops {
		switch op.kind {
		case op1Q:
			s.apply1Q(op.q, op.u[0], op.u[1], op.u[2], op.u[3])
		case opCX:
			s.applyCX(op.q, op.q2)
		case opDiag:
			s.applyDiag(op.terms)
		}
	}
}

func minMax(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

// applyDiag multiplies every amplitude by the batch's phase factors.
// Each term sweeps the chunk once, so the chunk stays cache-resident
// across terms (one memory pass over the state instead of one per
// gate), and the multiplies of different amplitudes overlap instead of
// serializing on one amplitude's factor chain. Within a sweep the
// factor is constant over runs of 2^sA consecutive indices (sA ≤ sB by
// construction), so the inner loop is a constant complex multiply with
// no per-index selection at all. Per amplitude the multiply sequence
// still matches gate order exactly.
func (s *State) applyDiag(terms []diagTerm) {
	s.invalidate()
	amp := s.amp
	par.For(len(amp), func(lo, hi int) {
		for ti := range terms {
			t := &terms[ti]
			f := t.f
			sA, sB := uint(t.sA), uint(t.sB)
			step := 1 << sA
			// Chunk bounds are multiples of the chunk size (or the
			// array ends), so base is always run-aligned: either
			// step divides lo, or the whole chunk sits inside one run.
			for base := lo; base < hi; base += step {
				c := f[((base>>sA)&1)|(((base>>sB)&1)<<1)]
				end := base + step
				if end > hi {
					end = hi
				}
				for i := base; i < end; i++ {
					amp[i] *= c
				}
			}
		}
	})
}
