package qsim

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"qtenon/internal/par"
)

// FuzzFusedSoAMatchesReference drives the full SoA pipeline — fusion,
// cache-blocked tiling, sign/phase term splitting, parallel sweeps —
// against the naive serial complex128 reference on random circuits, and
// checks that fixed-seed sampling is identical across worker counts. The
// seed-derived generator keeps every input valid; the fuzzer explores
// circuit shapes through the (seed, qubits, gates) triple.
func FuzzFusedSoAMatchesReference(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(40))
	f.Add(int64(2), uint8(2), uint8(5))
	f.Add(int64(3), uint8(13), uint8(60))  // beyond one 2^12-amp tile
	f.Add(int64(4), uint8(14), uint8(120)) // multiple par chunks
	f.Add(int64(5), uint8(9), uint8(1))
	f.Add(int64(6), uint8(11), uint8(80))
	f.Fuzz(func(t *testing.T, seed int64, nq, gates uint8) {
		n := 2 + int(nq)%13      // 2..14 qubits
		ng := 1 + int(gates)%120 // 1..120 gates
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, n, ng)

		par.SetWorkers(4)
		defer par.SetWorkers(0)
		got, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}

		ref := make([]complex128, 1<<n)
		ref[0] = 1
		for _, g := range c.Gates {
			refApply(ref, g)
		}
		for i, a := range got.Amplitudes() {
			if cmplx.Abs(a-ref[i]) > 1e-12 {
				t.Fatalf("amp[%d] = %v, reference %v (seed=%d n=%d gates=%d)", i, a, ref[i], seed, n, ng)
			}
		}

		// Fixed-seed sampling must not depend on the worker count.
		want := got.Clone().Sample(256, rand.New(rand.NewSource(seed)))
		par.SetWorkers(1)
		s1 := got.Clone()
		s1.invalidate()
		for i, v := range s1.Sample(256, rand.New(rand.NewSource(seed))) {
			if v != want[i] {
				t.Fatalf("sample %d = %d at workers=1, want %d", i, v, want[i])
			}
		}
	})
}
