package qsim

import (
	"fmt"

	"qtenon/internal/circuit"
)

// A Plan is a parameterized circuit compiled once into the fused-op
// structure, reusable across bindings: Execute refills the angle-
// dependent matrices and phase factors in place and runs the compiled
// program against a recycled statevector. Batched parameter-shift
// evaluation (internal/opt, internal/vqa) executes all 2·P shifted
// bindings of one circuit through a single Plan, paying fusion and plan
// allocation once per batch instead of once per evaluation.
//
// The op structure is binding-independent by construction: compilation
// classifies single-qubit runs as diagonal by gate kind (Z/S/T/RZ/I),
// never by the numeric matrix, so a run that merely evaluates to a
// diagonal matrix at one binding (e.g. RY(0)) still compiles as a
// general 2×2 op valid for every binding (DESIGN.md §11.4). Execute's
// numerics therefore match RunReuse on the bound circuit to fusion
// tolerance (~1e-12), and bit-for-bit except at such degenerate
// bindings, where only the (mathematically equivalent) kernel routing
// differs.
//
// A Plan is immutable after compilation except for the refilled numeric
// fields, so a single Plan must not Execute concurrently with itself;
// clone plans per goroutine if needed.
type Plan struct {
	nq      int
	nparams int
	ops     []fusedOp
	refs    []recOp
	gates   []gateRef
}

// gateRef is one source gate of a fused op: the kind plus either a fixed
// angle or a parameter index.
type gateRef struct {
	kind  circuit.Kind
	theta float64 // fixed angle when param == circuit.NoParam
	param int
}

func (r gateRef) angle(params []float64) float64 {
	if r.param != circuit.NoParam {
		return params[r.param]
	}
	return r.theta
}

// recTerm is the provenance of one diagonal term: a two-qubit diagonal
// gate (CZ/RZZ), or a folded single-qubit diagonal chain referencing
// [gOff, gOff+gLen) of the plan's gates array.
type recTerm struct {
	twoQ       bool
	kind       circuit.Kind // CZ or RZZ when twoQ
	src        gateRef      // angle source when twoQ
	gOff, gLen int
}

// recOp is the provenance of one fused op, parallel to Plan.ops. op1Q
// folds gates [gOff, gOff+gLen) in program order; opDiag owns terms;
// opCX needs nothing.
type recOp struct {
	gOff, gLen int
	terms      []recTerm
}

// planRecorder captures provenance during a recording fuse. It mirrors
// every structural mutation the fuser makes to its ops array.
type planRecorder struct {
	ops []recOp
	// pend collects the source gates of each qubit's pending 1q run.
	pend  [][]gateRef
	gates []gateRef // flat storage pending runs are flushed into
}

func newPlanRecorder(nq int) *planRecorder {
	return &planRecorder{pend: make([][]gateRef, nq)}
}

// grow pads the recorder's op array with empty entries up to n ops.
func (r *planRecorder) grow(n int) {
	for len(r.ops) < n {
		r.ops = append(r.ops, recOp{})
	}
}

// noteMerge records a single-qubit gate joining qubit q's pending run.
// fresh marks the start of a new run (the previous one was flushed).
func (r *planRecorder) noteMerge(g circuit.Gate, fresh bool) {
	if r == nil {
		return
	}
	q := g.Qubit
	if fresh {
		r.pend[q] = r.pend[q][:0]
	}
	r.pend[q] = append(r.pend[q], gateRef{kind: g.Kind, theta: g.Theta, param: g.Param})
}

// take moves qubit q's pending run into the flat gates array and returns
// its span.
func (r *planRecorder) take(q int) (off, n int) {
	off = len(r.gates)
	r.gates = append(r.gates, r.pend[q]...)
	r.pend[q] = r.pend[q][:0]
	return off, len(r.gates) - off
}

// note1QAppended records qubit q's pending run emitted as ops[idx].
func (r *planRecorder) note1QAppended(q, idx int) {
	if r == nil {
		return
	}
	r.grow(idx + 1)
	r.ops[idx].gOff, r.ops[idx].gLen = r.take(q)
}

// note1QInserted records qubit q's pending run inserted at ops[idx]
// (everything from idx on shifted right by one).
func (r *planRecorder) note1QInserted(q, idx int) {
	if r == nil {
		return
	}
	r.grow(idx) // ensure the insertion point exists
	r.ops = append(r.ops, recOp{})
	copy(r.ops[idx+1:], r.ops[idx:])
	gOff, gLen := r.take(q)
	r.ops[idx] = recOp{gOff: gOff, gLen: gLen}
}

// noteDiagTerm records qubit q's pending diagonal run landing as term
// termIdx of ops[opIdx].
func (r *planRecorder) noteDiagTerm(q, opIdx, termIdx int) {
	if r == nil {
		return
	}
	r.grow(opIdx + 1)
	gOff, gLen := r.take(q)
	r.setTerm(opIdx, termIdx, recTerm{gOff: gOff, gLen: gLen})
}

// noteTwoQTerm records a CZ/RZZ landing as term termIdx of ops[opIdx].
func (r *planRecorder) noteTwoQTerm(g circuit.Gate, opIdx, termIdx int) {
	if r == nil {
		return
	}
	r.grow(opIdx + 1)
	r.setTerm(opIdx, termIdx, recTerm{
		twoQ: true,
		kind: g.Kind,
		src:  gateRef{kind: g.Kind, theta: g.Theta, param: g.Param},
	})
}

func (r *planRecorder) setTerm(opIdx, termIdx int, t recTerm) {
	terms := growTerms(r.ops[opIdx].terms, termIdx+1)
	terms[termIdx] = t
	r.ops[opIdx].terms = terms
}

// growTerms extends terms to length n, zero-filling new slots;
// reallocation happens only when capacity is exhausted, so recording
// settles into recycled storage like every other arena in the package.
func growTerms(terms []recTerm, n int) []recTerm {
	if n <= len(terms) {
		return terms
	}
	if n <= cap(terms) {
		grown := terms[:n]
		for i := len(terms); i < n; i++ {
			grown[i] = recTerm{}
		}
		return grown
	}
	grown := make([]recTerm, n, 2*n)
	copy(grown, terms)
	return grown
}

// CompilePlan compiles a (possibly parameterized) circuit into a
// reusable Plan. Fully bound circuits compile too — the plan simply has
// no parameter slots.
func CompilePlan(c *circuit.Circuit) (*Plan, error) {
	if c.NQubits > MaxQubits {
		return nil, fmt.Errorf("qsim: %d qubits exceeds exact-simulation limit %d", c.NQubits, MaxQubits)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rec := newPlanRecorder(c.NQubits)
	f := &fuser{}
	ops := fuseRec(c.Gates, f, rec)
	rec.grow(len(ops))
	p := &Plan{
		nq:      c.NQubits,
		nparams: c.NumParams,
		ops:     append([]fusedOp(nil), ops...),
		refs:    rec.ops,
		gates:   rec.gates,
	}
	// The ops copied out of the fuser alias its term storage; deep-copy
	// terms so the plan owns its numeric fields outright.
	for i := range p.ops {
		p.ops[i].terms = append([]diagTerm(nil), p.ops[i].terms...)
	}
	return p, nil
}

// NumParams reports the plan's parameter count.
func (p *Plan) NumParams() int { return p.nparams }

// NQubits reports the register width.
func (p *Plan) NQubits() int { return p.nq }

// foldGates recomputes a fused 2×2 matrix from its source gates in the
// exact fold order merge1Q uses (acc = m_i · acc in program order), so a
// refilled matrix is bit-identical to fusing the bound circuit.
//
//qtenon:hotpath
func (p *Plan) foldGates(off, n int, params []float64) [4]complex128 {
	g := p.gates[off]
	acc, ok := gateMatrix1QTheta(g.kind, g.angle(params))
	if !ok {
		panic(fmt.Sprintf("qsim: plan references non-1q kind %v", g.kind))
	}
	for _, g := range p.gates[off+1 : off+n] {
		m, ok := gateMatrix1QTheta(g.kind, g.angle(params))
		if !ok {
			panic(fmt.Sprintf("qsim: plan references non-1q kind %v", g.kind))
		}
		acc = matMul(m, acc)
	}
	return acc
}

// refill rebinds every angle-dependent matrix and phase factor in place.
//
//qtenon:hotpath
func (p *Plan) refill(params []float64) {
	for i := range p.ops {
		op := &p.ops[i]
		ref := &p.refs[i]
		switch op.kind {
		case op1Q:
			op.u = p.foldGates(ref.gOff, ref.gLen, params)
		case opDiag:
			for ti := range op.terms {
				t := &ref.terms[ti]
				if t.twoQ {
					switch t.kind {
					case circuit.CZ:
						// Constant {1,1,1,-1}; set at compile time.
					case circuit.RZZ:
						theta := t.src.angle(params)
						e0, e1 := expI(-theta/2), expI(theta/2)
						op.terms[ti].f = [4]complex128{e0, e1, e1, e0}
					}
					continue
				}
				m := p.foldGates(t.gOff, t.gLen, params)
				op.terms[ti].f = [4]complex128{m[0], m[3], m[0], m[3]}
			}
		}
	}
}

// Execute binds params into the plan and runs it from |0…0⟩, reusing
// st's storage when it matches the register width (st may be nil). The
// returned state is numerically identical (to fusion tolerance) to
// RunReuse on the bound circuit. The caller owns st exclusively; its
// previous contents are destroyed.
//
//qtenon:hotpath
func (p *Plan) Execute(st *State, params []float64) (*State, error) {
	if len(params) != p.nparams {
		return nil, fmt.Errorf("qsim: plan executed with %d params, want %d", len(params), p.nparams)
	}
	if st == nil || st.n != p.nq {
		st = NewState(p.nq)
	} else {
		st.Reset()
	}
	p.refill(params)
	st.applyFused(p.ops)
	return st, nil
}
