package tableau

import (
	"math/rand"
	"testing"
)

// FuzzCliffordTableauMatchesDense generates random Clifford-only
// circuits up to 12 qubits and asserts the tableau's basis distribution
// matches the dense statevector's exactly — tableau probabilities are
// dyadic 2^-s values summing to exactly 1, and the dense values snapped
// to the same lattice must agree bit for bit (see checkAgainstDense).
func FuzzCliffordTableauMatchesDense(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(5))
	f.Add(int64(7), uint8(8), uint8(40))
	f.Add(int64(99), uint8(12), uint8(80))
	f.Fuzz(func(t *testing.T, seed int64, qubits, gates uint8) {
		n := 2 + int(qubits)%11 // 2..12
		ngates := 1 + int(gates)%100
		rng := rand.New(rand.NewSource(seed))
		checkAgainstDense(t, randomCliffordCircuit(n, ngates, rng))
	})
}
