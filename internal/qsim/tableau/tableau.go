// Package tableau implements a CHP-style stabilizer simulator
// (Aaronson & Gottesman, "Improved simulation of stabilizer circuits",
// Phys. Rev. A 70, 052328): the state of n qubits under Clifford gates
// is tracked as 2n Pauli generators — n destabilizers and n
// stabilizers — each a row of bit-packed X and Z columns plus a sign
// bit. Gates conjugate the generators in O(n) word operations and
// measurement costs O(n²/64), so Clifford circuits that are impossible
// on the 2^n dense statevector (qsim.MaxQubits = 24) run in microseconds
// at hundreds of qubits.
//
// Supported exactly: I, X, Y, Z, H, S, CX, CZ, and the rotations
// RX/RY/RZ/RZZ whenever the bound angle is a multiple of π/2 (within
// Tolerance) — the router (internal/route) only sends circuits here
// when every gate passes IsClifford. Measurement follows the CHP
// branching rule: deterministic outcomes are read off the tableau
// without consuming randomness; genuinely random outcomes draw one
// bit from the caller's seeded RNG, so runs are reproducible per seed
// exactly like the dense engine (DESIGN.md §12).
package tableau

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"qtenon/internal/circuit"
)

// MaxQubits bounds the register width. The tableau needs (2n+1)·2n bits
// plus signs — 4096 qubits is ~4 MiB, far past anything the paper
// sweeps (320 qubits).
const MaxQubits = 4096

// MaxProbQubits bounds Probabilities, which materialises the full 2^n
// distribution like the dense engine's view.
const MaxProbQubits = 20

// Tolerance is the absolute angle slack within which a rotation counts
// as a Clifford multiple of π/2. Angles produced by π/2-arithmetic
// (QAOA schedules, graph-state constructions) land within 1e-15; 1e-9
// absorbs float noise without ever misclassifying a T gate (π/4 is
// ~0.78 away from the lattice).
const Tolerance = 1e-9

// Tableau is the bit-packed generator matrix. Rows 0..n-1 are
// destabilizers, rows n..2n-1 stabilizers, row 2n the rowsum scratch.
// Row i's X (Z) bits live in x[i·w : (i+1)·w] (z[...]), qubit q at word
// q/64 bit q%64; sign bits are packed in r.
type Tableau struct {
	n, w int // qubits, 64-bit words per row
	x, z []uint64
	r    []uint64 // (2n+1)-bit sign set, bit i = row i's phase (−1)^r

	// sample is the per-shot working copy Sample collapses so the
	// retained state stays pure between Execute calls; lazily built,
	// excluded from Clone.
	sample *Tableau
}

// New returns the |0…0⟩ tableau: destabilizer i = X_i, stabilizer i = Z_i.
func New(n int) (*Tableau, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tableau: non-positive qubit count %d", n)
	}
	if n > MaxQubits {
		return nil, fmt.Errorf("tableau: %d qubits exceeds limit %d", n, MaxQubits)
	}
	w := (n + 63) / 64
	t := &Tableau{
		n: n,
		w: w,
		x: make([]uint64, (2*n+1)*w),
		z: make([]uint64, (2*n+1)*w),
		r: make([]uint64, (2*n+1+63)/64),
	}
	t.Reset()
	return t, nil
}

// NQubits reports the register width.
func (t *Tableau) NQubits() int { return t.n }

// Reset restores |0…0⟩ in place, keeping storage.
func (t *Tableau) Reset() {
	for i := range t.x {
		t.x[i] = 0
	}
	for i := range t.z {
		t.z[i] = 0
	}
	for i := range t.r {
		t.r[i] = 0
	}
	for q := 0; q < t.n; q++ {
		t.x[q*t.w+q>>6] |= 1 << (uint(q) & 63)       // destabilizer q = X_q
		t.z[(t.n+q)*t.w+q>>6] |= 1 << (uint(q) & 63) // stabilizer q = Z_q
	}
}

// Clone returns an independent copy (scratch excluded).
func (t *Tableau) Clone() *Tableau {
	cp := &Tableau{
		n: t.n,
		w: t.w,
		x: make([]uint64, len(t.x)),
		z: make([]uint64, len(t.z)),
		r: make([]uint64, len(t.r)),
	}
	copy(cp.x, t.x)
	copy(cp.z, t.z)
	copy(cp.r, t.r)
	return cp
}

// copyFrom overwrites t with src's generator content; the two tableaux
// must have identical width.
func (t *Tableau) copyFrom(src *Tableau) {
	copy(t.x, src.x)
	copy(t.z, src.z)
	copy(t.r, src.r)
}

func (t *Tableau) sign(i int) uint64 { return t.r[i>>6] >> (uint(i) & 63) & 1 }
func (t *Tableau) flipSign(i int)    { t.r[i>>6] ^= 1 << (uint(i) & 63) }
func (t *Tableau) setSign(i int, v uint64) {
	t.r[i>>6] = t.r[i>>6]&^(1<<(uint(i)&63)) | v<<(uint(i)&63)
}

// H applies a Hadamard on q: X↔Z per row, sign flips where both set.
func (t *Tableau) H(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		xw, zw := &t.x[i*t.w+wq], &t.z[i*t.w+wq]
		xb, zb := *xw&m, *zw&m
		if xb != 0 && zb != 0 {
			t.flipSign(i)
		}
		if (xb != 0) != (zb != 0) {
			*xw ^= m
			*zw ^= m
		}
	}
}

// S applies the phase gate on q: Z ^= X, sign flips where both set.
func (t *Tableau) S(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		xw, zw := t.x[i*t.w+wq], &t.z[i*t.w+wq]
		if xw&m != 0 {
			if *zw&m != 0 {
				t.flipSign(i)
			}
			*zw ^= m
		}
	}
}

// Sdg applies S† = S·Z on q.
func (t *Tableau) Sdg(q int) { t.S(q); t.Z(q) }

// X applies a Pauli X on q: sign flips where Z set.
func (t *Tableau) X(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		if t.z[i*t.w+wq]&m != 0 {
			t.flipSign(i)
		}
	}
}

// Z applies a Pauli Z on q: sign flips where X set.
func (t *Tableau) Z(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		if t.x[i*t.w+wq]&m != 0 {
			t.flipSign(i)
		}
	}
}

// Y applies a Pauli Y on q: sign flips where exactly one of X/Z set.
func (t *Tableau) Y(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		if (t.x[i*t.w+wq]&m != 0) != (t.z[i*t.w+wq]&m != 0) {
			t.flipSign(i)
		}
	}
}

// CX applies a controlled-X with control a, target b.
func (t *Tableau) CX(a, b int) {
	wa, ma := a>>6, uint64(1)<<(uint(a)&63)
	wb, mb := b>>6, uint64(1)<<(uint(b)&63)
	for i := 0; i < 2*t.n; i++ {
		row := i * t.w
		xa, za := t.x[row+wa]&ma != 0, t.z[row+wa]&ma != 0
		xb, zb := t.x[row+wb]&mb != 0, t.z[row+wb]&mb != 0
		// r ^= x_a·z_b·(x_b ⊕ z_a ⊕ 1)
		if xa && zb && xb == za {
			t.flipSign(i)
		}
		if xa {
			t.x[row+wb] ^= mb
		}
		if zb {
			t.z[row+wa] ^= ma
		}
	}
}

// CZ applies a controlled-Z via H(b)·CX(a,b)·H(b).
func (t *Tableau) CZ(a, b int) {
	t.H(b)
	t.CX(a, b)
	t.H(b)
}

// CliffordAngle reports whether theta is a multiple of π/2 within
// Tolerance, returning the multiple normalised to {0,1,2,3}.
func CliffordAngle(theta float64) (k int, ok bool) {
	q := math.Round(theta / (math.Pi / 2))
	if math.Abs(theta-q*(math.Pi/2)) > Tolerance {
		return 0, false
	}
	return int(math.Mod(math.Mod(q, 4)+4, 4)), true
}

// IsClifford reports whether a single bound gate is exactly simulable on
// the tableau. Unbound rotations (Param set) are conservatively
// non-Clifford: their angle is unknown until Bind.
func IsClifford(g circuit.Gate) bool {
	switch g.Kind {
	case circuit.I, circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S,
		circuit.CX, circuit.CZ, circuit.Measure:
		return true
	case circuit.RX, circuit.RY, circuit.RZ, circuit.RZZ:
		if g.Param != circuit.NoParam {
			return false
		}
		_, ok := CliffordAngle(g.Theta)
		return ok
	default: // T and anything future
		return false
	}
}

// rz applies RZ(k·π/2) = S^k up to global phase.
func (t *Tableau) rz(q, k int) {
	for ; k > 0; k-- {
		t.S(q)
	}
}

// Apply executes one bound gate, decomposing π/2-multiple rotations into
// H/S/CZ sequences. Measure gates are ignored (terminal-measurement
// convention, as in qsim.State.Apply); use MeasureQubit or Sample for
// outcomes. Apply panics on a non-Clifford gate — callers route through
// IsClifford first.
func (t *Tableau) Apply(g circuit.Gate) {
	switch g.Kind {
	case circuit.I, circuit.Measure:
	case circuit.X:
		t.X(g.Qubit)
	case circuit.Y:
		t.Y(g.Qubit)
	case circuit.Z:
		t.Z(g.Qubit)
	case circuit.H:
		t.H(g.Qubit)
	case circuit.S:
		t.S(g.Qubit)
	case circuit.CX:
		t.CX(g.Qubit, g.Qubit2)
	case circuit.CZ:
		t.CZ(g.Qubit, g.Qubit2)
	case circuit.RZ:
		k, ok := CliffordAngle(g.Theta)
		if !ok {
			panic(fmt.Sprintf("tableau: non-Clifford RZ(%g)", g.Theta))
		}
		t.rz(g.Qubit, k)
	case circuit.RX:
		// RX(θ) = H·RZ(θ)·H.
		k, ok := CliffordAngle(g.Theta)
		if !ok {
			panic(fmt.Sprintf("tableau: non-Clifford RX(%g)", g.Theta))
		}
		t.H(g.Qubit)
		t.rz(g.Qubit, k)
		t.H(g.Qubit)
	case circuit.RY:
		// RY(θ) = S·RX(θ)·S† (verified on RY(π/2) = (1/√2)[[1,-1],[1,1]]).
		k, ok := CliffordAngle(g.Theta)
		if !ok {
			panic(fmt.Sprintf("tableau: non-Clifford RY(%g)", g.Theta))
		}
		t.Sdg(g.Qubit)
		t.H(g.Qubit)
		t.rz(g.Qubit, k)
		t.H(g.Qubit)
		t.S(g.Qubit)
	case circuit.RZZ:
		// RZZ(π/2) ∝ (S⊗S)·CZ; k applications for k·π/2. All factors are
		// diagonal, so ordering is irrelevant.
		k, ok := CliffordAngle(g.Theta)
		if !ok {
			panic(fmt.Sprintf("tableau: non-Clifford RZZ(%g)", g.Theta))
		}
		for ; k > 0; k-- {
			t.S(g.Qubit)
			t.S(g.Qubit2)
			t.CZ(g.Qubit, g.Qubit2)
		}
	default:
		panic(fmt.Sprintf("tableau: unsupported gate %v", g.Kind))
	}
}

// Run resets the tableau and applies every gate of a bound circuit,
// rejecting non-Clifford gates with an error instead of a panic.
func (t *Tableau) Run(c *circuit.Circuit) error {
	if c.NumParams != 0 {
		return fmt.Errorf("tableau: circuit has unbound parameters")
	}
	if c.NQubits != t.n {
		return fmt.Errorf("tableau: circuit needs %d qubits, tableau has %d", c.NQubits, t.n)
	}
	for _, g := range c.Gates {
		if !IsClifford(g) {
			return fmt.Errorf("tableau: non-Clifford gate %v", g.Kind)
		}
	}
	t.Reset()
	for _, g := range c.Gates {
		t.Apply(g)
	}
	return nil
}

// rowsum left-multiplies row h by row i (h ← i·h) with exact phase
// tracking: the power of i contributed by each qubit position is
// accumulated mod 4 via bit-masked popcounts (the branch-free form of
// CHP's per-column g function).
func (t *Tableau) rowsum(h, i int) {
	rh, ri := h*t.w, i*t.w
	g := 0
	for k := 0; k < t.w; k++ {
		x1, z1 := t.x[ri+k], t.z[ri+k]
		x2, z2 := t.x[rh+k], t.z[rh+k]
		ymask := x1 & z1  // row i has Y here
		xmask := x1 &^ z1 // row i has X here
		zmask := z1 &^ x1 // row i has Z here
		// g = +1 where (Y,Z-only-in-h-missing-x)… per CHP Table: for each
		// qubit, g(x1,z1,x2,z2) ∈ {−1,0,+1}; sum the ±1 positions.
		plus := ymask&z2&^x2 | xmask&z2&x2 | zmask&x2&^z2
		minus := ymask&x2&^z2 | xmask&z2&^x2 | zmask&x2&z2
		g += bits.OnesCount64(plus) - bits.OnesCount64(minus)
		t.x[rh+k] = x1 ^ x2
		t.z[rh+k] = z1 ^ z2
	}
	total := 2*int(t.sign(h)) + 2*int(t.sign(i)) + g
	if v := ((total % 4) + 4) % 4; v == 2 {
		t.setSign(h, 1)
	} else {
		t.setSign(h, 0)
	}
}

// zeroRow clears row i.
func (t *Tableau) zeroRow(i int) {
	base := i * t.w
	for k := 0; k < t.w; k++ {
		t.x[base+k] = 0
		t.z[base+k] = 0
	}
	t.setSign(i, 0)
}

// copyRow copies row src into row dst (including sign).
func (t *Tableau) copyRow(dst, src int) {
	d, s := dst*t.w, src*t.w
	copy(t.x[d:d+t.w], t.x[s:s+t.w])
	copy(t.z[d:d+t.w], t.z[s:s+t.w])
	t.setSign(dst, t.sign(src))
}

// randomStabilizer returns the index (in 0..n-1) of a stabilizer with an
// X bit at qubit q, or -1 when measurement of q is deterministic.
func (t *Tableau) randomStabilizer(q int) int {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < t.n; i++ {
		if t.x[(t.n+i)*t.w+wq]&m != 0 {
			return i
		}
	}
	return -1
}

// deterministicOutcome computes the outcome of measuring q when no
// stabilizer anticommutes with Z_q: Z_q is then a product of stabilizers
// selected by the destabilizers' X bits at q, accumulated in the scratch
// row. The tableau is not modified outside the scratch row.
func (t *Tableau) deterministicOutcome(q int) int {
	scratch := 2 * t.n
	t.zeroRow(scratch)
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < t.n; i++ {
		if t.x[i*t.w+wq]&m != 0 {
			t.rowsum(scratch, t.n+i)
		}
	}
	return int(t.sign(scratch))
}

// collapse forces qubit q to `outcome` through the random-measurement
// branch: stabilizer p (which anticommutes with Z_q) becomes Z_q with
// the outcome's sign, its old value moving to the destabilizer slot, and
// every other anticommuting row is multiplied by it first.
func (t *Tableau) collapse(q, p, outcome int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	ps := t.n + p // stabilizer row index of p
	for i := 0; i < 2*t.n; i++ {
		if i != ps && t.x[i*t.w+wq]&m != 0 {
			t.rowsum(i, ps)
		}
	}
	t.copyRow(p, ps) // old stabilizer becomes destabilizer p
	t.zeroRow(ps)
	t.z[ps*t.w+wq] |= m
	t.setSign(ps, uint64(outcome))
}

// MeasureQubit measures qubit q in the computational basis, collapsing
// the state. Deterministic outcomes consume no randomness; random
// outcomes draw exactly one bit from rng — mid-circuit measurement is
// therefore seed-reproducible.
func (t *Tableau) MeasureQubit(q int, rng *rand.Rand) int {
	p := t.randomStabilizer(q)
	if p < 0 {
		return t.deterministicOutcome(q)
	}
	outcome := int(rng.Int63() & 1)
	t.collapse(q, p, outcome)
	return outcome
}

// ZExpectation returns ⟨Z_q⟩ ∈ {−1, 0, +1}: 0 when the outcome is
// random, ±1 when deterministic. The state is not collapsed.
func (t *Tableau) ZExpectation(q int) float64 {
	if t.randomStabilizer(q) >= 0 {
		return 0
	}
	return 1 - 2*float64(t.deterministicOutcome(q))
}

// ZExpectationMask returns the expectation of the Z-string over the
// qubits in mask (bit q ⇒ Z_q), covering the first 64 qubits — the
// pauli cost window. Stabilizer-state values are exactly {−1, 0, +1}.
func (t *Tableau) ZExpectationMask(mask uint64) float64 {
	if mask == 0 {
		return 1
	}
	// If any stabilizer anticommutes with the Z-string (odd overlap of
	// its X support with mask), the expectation is exactly 0.
	for i := 0; i < t.n; i++ {
		if bits.OnesCount64(t.x[(t.n+i)*t.w]&mask)%2 == 1 {
			return 0
		}
	}
	// Otherwise the string is ± a product of stabilizers, selected by the
	// destabilizers with odd overlap; accumulate it in the scratch row
	// and read the sign.
	scratch := 2 * t.n
	t.zeroRow(scratch)
	for i := 0; i < t.n; i++ {
		if bits.OnesCount64(t.x[i*t.w]&mask)%2 == 1 {
			t.rowsum(scratch, t.n+i)
		}
	}
	return 1 - 2*float64(t.sign(scratch))
}

// Sample draws `shots` outcome words, measuring every qubit of a fresh
// working copy per shot (qubit 0 = bit 0; qubits ≥ 64 are measured —
// advancing the RNG identically for any register width — but fall
// outside the 64-bit outcome window, like the other engines).
func (t *Tableau) Sample(shots int, rng *rand.Rand) []uint64 {
	out := make([]uint64, shots)
	return t.AppendSample(out[:0], shots, rng)
}

// AppendSample appends `shots` outcome words to dst and returns it.
func (t *Tableau) AppendSample(dst []uint64, shots int, rng *rand.Rand) []uint64 {
	wc := t.sample
	if wc == nil || wc.n != t.n {
		wc = &Tableau{
			n: t.n,
			w: t.w,
			x: make([]uint64, len(t.x)),
			z: make([]uint64, len(t.z)),
			r: make([]uint64, len(t.r)),
		}
		t.sample = wc
	}
	for s := 0; s < shots; s++ {
		wc.copyFrom(t)
		var v uint64
		for q := 0; q < t.n; q++ {
			bit := wc.MeasureQubit(q, rng)
			if q < 64 && bit == 1 {
				v |= 1 << uint(q)
			}
		}
		dst = append(dst, v)
	}
	return dst
}

// Probabilities returns the full 2^n computational-basis distribution.
// Stabilizer-state probabilities are exactly dyadic — each nonzero
// entry is 2^-s for the number s of random branches on its path — so
// the returned values are exact binary floats, not 1e-12-rounded
// approximations. Panics above MaxProbQubits (the dense engines share
// the same kind of cap).
func (t *Tableau) Probabilities() []float64 {
	if t.n > MaxProbQubits {
		panic(fmt.Sprintf("tableau: Probabilities on %d qubits exceeds limit %d", t.n, MaxProbQubits))
	}
	p := make([]float64, 1<<uint(t.n))
	t.Clone().appendProbs(p, 0, 0, 1)
	return p
}

// appendProbs walks the measurement tree qubit by qubit: deterministic
// qubits extend the path at full weight, random qubits split the weight
// exactly in half per branch. The receiver is consumed (collapsed).
func (t *Tableau) appendProbs(p []float64, q int, idx uint64, weight float64) {
	if q == t.n {
		p[idx] = weight
		return
	}
	if pr := t.randomStabilizer(q); pr < 0 {
		out := t.deterministicOutcome(q)
		t.appendProbs(p, q+1, idx|uint64(out)<<uint(q), weight)
		return
	}
	zero := t.Clone()
	zero.collapse(q, zero.randomStabilizer(q), 0)
	zero.appendProbs(p, q+1, idx, weight/2)
	t.collapse(q, t.randomStabilizer(q), 1)
	t.appendProbs(p, q+1, idx|1<<uint(q), weight/2)
}
