package tableau

import (
	"math"
	"math/rand"
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
)

func mustNew(t *testing.T, n int) *Tableau {
	t.Helper()
	tb, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("accepted 0 qubits")
	}
	if _, err := New(MaxQubits + 1); err == nil {
		t.Error("accepted width past MaxQubits")
	}
}

func TestZeroStateProbabilities(t *testing.T) {
	tb := mustNew(t, 3)
	p := tb.Probabilities()
	if p[0] != 1 {
		t.Fatalf("P(000) = %v, want exactly 1", p[0])
	}
	for i := 1; i < len(p); i++ {
		if p[i] != 0 {
			t.Fatalf("P(%b) = %v, want 0", i, p[i])
		}
	}
}

func TestBellState(t *testing.T) {
	tb := mustNew(t, 2)
	tb.H(0)
	tb.CX(0, 1)
	p := tb.Probabilities()
	// Dyadic exactness: both outcomes are exactly 2^-1.
	if p[0] != 0.5 || p[3] != 0.5 || p[1] != 0 || p[2] != 0 {
		t.Fatalf("Bell probabilities = %v, want [0.5 0 0 0.5] exactly", p)
	}
	rng := rand.New(rand.NewSource(7))
	for _, o := range tb.Sample(2000, rng) {
		if o == 1 || o == 2 {
			t.Fatalf("Bell sampled uncorrelated outcome %b", o)
		}
	}
}

func TestGHZCorrelations(t *testing.T) {
	const n = 10
	tb := mustNew(t, n)
	tb.H(0)
	for q := 1; q < n; q++ {
		tb.CX(0, q)
	}
	rng := rand.New(rand.NewSource(3))
	all := uint64(1<<n) - 1
	zeros, ones := 0, 0
	for _, o := range tb.Sample(4000, rng) {
		switch o {
		case 0:
			zeros++
		case all:
			ones++
		default:
			t.Fatalf("GHZ sampled %b", o)
		}
	}
	if zeros == 0 || ones == 0 {
		t.Fatalf("GHZ never sampled one branch (zeros=%d ones=%d)", zeros, ones)
	}
}

func TestDeterministicMeasurementConsumesNoRandomness(t *testing.T) {
	tb := mustNew(t, 2)
	tb.X(0)
	rng := rand.New(rand.NewSource(1))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(1))
	if got := tb.MeasureQubit(0, rng); got != 1 {
		t.Fatalf("measured %d after X, want 1", got)
	}
	if got := tb.MeasureQubit(1, rng); got != 0 {
		t.Fatalf("measured %d on |0⟩, want 0", got)
	}
	if rng.Int63() != before {
		t.Fatal("deterministic measurement consumed RNG draws")
	}
}

func TestRandomMeasurementCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 32; trial++ {
		tb := mustNew(t, 1)
		tb.H(0)
		first := tb.MeasureQubit(0, rng)
		for rep := 0; rep < 4; rep++ {
			if got := tb.MeasureQubit(0, rng); got != first {
				t.Fatalf("repeated measurement flipped %d→%d", first, got)
			}
		}
	}
}

func TestZExpectation(t *testing.T) {
	tb := mustNew(t, 2)
	if got := tb.ZExpectation(0); got != 1 {
		t.Fatalf("⟨Z⟩ on |0⟩ = %v, want exactly 1", got)
	}
	tb.X(0)
	if got := tb.ZExpectation(0); got != -1 {
		t.Fatalf("⟨Z⟩ on |1⟩ = %v, want exactly -1", got)
	}
	tb.H(1)
	if got := tb.ZExpectation(1); got != 0 {
		t.Fatalf("⟨Z⟩ on |+⟩ = %v, want exactly 0", got)
	}
}

func TestZExpectationMask(t *testing.T) {
	// Bell state: ⟨Z0⟩ = ⟨Z1⟩ = 0 but ⟨Z0Z1⟩ = +1 exactly.
	tb := mustNew(t, 2)
	tb.H(0)
	tb.CX(0, 1)
	if got := tb.ZExpectationMask(0b01); got != 0 {
		t.Errorf("⟨Z0⟩ = %v, want 0", got)
	}
	if got := tb.ZExpectationMask(0b11); got != 1 {
		t.Errorf("⟨Z0Z1⟩ = %v, want exactly +1", got)
	}
	tb.X(0) // |Ψ+⟩-like: anticorrelated
	if got := tb.ZExpectationMask(0b11); got != -1 {
		t.Errorf("⟨Z0Z1⟩ after X = %v, want exactly -1", got)
	}
	if got := tb.ZExpectationMask(0); got != 1 {
		t.Errorf("⟨I⟩ = %v, want 1", got)
	}
}

func TestCliffordAngle(t *testing.T) {
	cases := []struct {
		theta float64
		k     int
		ok    bool
	}{
		{0, 0, true},
		{math.Pi / 2, 1, true},
		{math.Pi, 2, true},
		{3 * math.Pi / 2, 3, true},
		{2 * math.Pi, 0, true},
		{-math.Pi / 2, 3, true},
		{math.Pi/2 + 1e-12, 1, true},
		{math.Pi / 4, 0, false},
		{0.3, 0, false},
	}
	for _, c := range cases {
		k, ok := CliffordAngle(c.theta)
		if ok != c.ok || (ok && k != c.k) {
			t.Errorf("CliffordAngle(%v) = (%d,%v), want (%d,%v)", c.theta, k, ok, c.k, c.ok)
		}
	}
}

func TestIsClifford(t *testing.T) {
	g := func(k circuit.Kind, theta float64, param int) circuit.Gate {
		return circuit.Gate{Kind: k, Theta: theta, Param: param}
	}
	if !IsClifford(g(circuit.H, 0, circuit.NoParam)) || !IsClifford(g(circuit.CX, 0, circuit.NoParam)) {
		t.Error("H/CX not Clifford")
	}
	if IsClifford(g(circuit.T, 0, circuit.NoParam)) {
		t.Error("T claimed Clifford")
	}
	if !IsClifford(g(circuit.RZ, math.Pi, circuit.NoParam)) {
		t.Error("RZ(π) not Clifford")
	}
	if IsClifford(g(circuit.RZ, math.Pi/4, circuit.NoParam)) {
		t.Error("RZ(π/4) claimed Clifford")
	}
	if IsClifford(g(circuit.RZ, math.Pi, 0)) {
		t.Error("unbound RZ claimed Clifford")
	}
}

// cliffordKinds enumerates the gates the rotation-snap fuzz and
// equivalence tests draw from.
func randomCliffordCircuit(n, gates int, rng *rand.Rand) *circuit.Circuit {
	c := &circuit.Circuit{NQubits: n}
	angles := []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2, -math.Pi / 2, 2 * math.Pi}
	for len(c.Gates) < gates {
		q := rng.Intn(n)
		q2 := rng.Intn(n)
		for q2 == q {
			q2 = rng.Intn(n)
		}
		var g circuit.Gate
		switch rng.Intn(11) {
		case 0:
			g = circuit.Gate{Kind: circuit.H, Qubit: q, Param: circuit.NoParam}
		case 1:
			g = circuit.Gate{Kind: circuit.S, Qubit: q, Param: circuit.NoParam}
		case 2:
			g = circuit.Gate{Kind: circuit.X, Qubit: q, Param: circuit.NoParam}
		case 3:
			g = circuit.Gate{Kind: circuit.Y, Qubit: q, Param: circuit.NoParam}
		case 4:
			g = circuit.Gate{Kind: circuit.Z, Qubit: q, Param: circuit.NoParam}
		case 5:
			g = circuit.Gate{Kind: circuit.CX, Qubit: q, Qubit2: q2, Param: circuit.NoParam}
		case 6:
			g = circuit.Gate{Kind: circuit.CZ, Qubit: q, Qubit2: q2, Param: circuit.NoParam}
		case 7:
			g = circuit.Gate{Kind: circuit.RX, Qubit: q, Theta: angles[rng.Intn(len(angles))], Param: circuit.NoParam}
		case 8:
			g = circuit.Gate{Kind: circuit.RY, Qubit: q, Theta: angles[rng.Intn(len(angles))], Param: circuit.NoParam}
		case 9:
			g = circuit.Gate{Kind: circuit.RZ, Qubit: q, Theta: angles[rng.Intn(len(angles))], Param: circuit.NoParam}
		case 10:
			g = circuit.Gate{Kind: circuit.RZZ, Qubit: q, Qubit2: q2, Theta: angles[rng.Intn(len(angles))], Param: circuit.NoParam}
		}
		c.Gates = append(c.Gates, g)
	}
	return c
}

// checkAgainstDense asserts the tableau's distribution for c equals the
// dense statevector's, exactly: every tableau probability must be a
// dyadic 2^-s value, the distribution must sum to exactly 1, and the
// dense probability snapped to the 2^-n lattice must equal the tableau
// value bit for bit (dense carries ~1e-16 float noise on the same
// lattice points; snapping is the honest "exact, not 1e-12" comparison).
func checkAgainstDense(t *testing.T, c *circuit.Circuit) {
	t.Helper()
	tb, err := New(c.NQubits)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Run(c); err != nil {
		t.Fatal(err)
	}
	st, err := qsim.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got := tb.Probabilities()
	want := st.Probabilities()
	lattice := float64(uint64(1) << uint(c.NQubits))
	var sum float64
	for i := range got {
		sum += got[i]
		if got[i] != 0 {
			if f := math.Log2(got[i]); f != math.Trunc(f) {
				t.Fatalf("index %b: tableau probability %v is not dyadic", i, got[i])
			}
		}
		snapped := math.Round(want[i]*lattice) / lattice
		if snapped != got[i] {
			t.Fatalf("index %b: tableau %v, dense %v (snapped %v)", i, got[i], want[i], snapped)
		}
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("index %b: tableau %v vs dense %v drift", i, got[i], want[i])
		}
	}
	if sum != 1 {
		t.Fatalf("tableau distribution sums to %v, want exactly 1", sum)
	}
}

func TestRotationSnappingMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		checkAgainstDense(t, randomCliffordCircuit(n, 3+rng.Intn(25), rng))
	}
}

func TestSampleSeedDeterminism(t *testing.T) {
	c := randomCliffordCircuit(6, 30, rand.New(rand.NewSource(9)))
	run := func() []uint64 {
		tb := mustNew(t, 6)
		if err := tb.Run(c); err != nil {
			t.Fatal(err)
		}
		return tb.Sample(50, rand.New(rand.NewSource(123)))
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sample not deterministic for fixed seed")
		}
	}
}

func TestSampleDoesNotCollapseState(t *testing.T) {
	tb := mustNew(t, 2)
	tb.H(0)
	tb.CX(0, 1)
	rng := rand.New(rand.NewSource(5))
	tb.Sample(100, rng)
	p := tb.Probabilities()
	if p[0] != 0.5 || p[3] != 0.5 {
		t.Fatalf("state collapsed by Sample: %v", p)
	}
}

func TestWideRegister(t *testing.T) {
	// 130 qubits: 3 words per row, exercises multi-word paths. GHZ over
	// the full register; outcome window carries qubits 0..63.
	const n = 130
	tb := mustNew(t, n)
	tb.H(0)
	for q := 1; q < n; q++ {
		tb.CX(q-1, q)
	}
	rng := rand.New(rand.NewSource(2))
	for _, o := range tb.Sample(50, rng) {
		if o != 0 && o != ^uint64(0) {
			t.Fatalf("wide GHZ window outcome %b", o)
		}
	}
	if got := tb.ZExpectationMask(0b11); got != 1 {
		t.Fatalf("wide GHZ ⟨Z0Z1⟩ = %v, want +1", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	tb := mustNew(t, 3)
	tb.H(0)
	cp := tb.Clone()
	cp.X(1)
	rng := rand.New(rand.NewSource(1))
	cp.MeasureQubit(0, rng)
	if got := tb.ZExpectation(1); got != 1 {
		t.Fatalf("clone mutation leaked: ⟨Z1⟩ = %v", got)
	}
}

func TestRunRejectsNonClifford(t *testing.T) {
	tb := mustNew(t, 2)
	c := circuit.NewBuilder(2).H(0).T(0).MustBuild()
	if err := tb.Run(c); err == nil {
		t.Error("Run accepted a T gate")
	}
	unbound := circuit.NewBuilder(2).RXP(0, 0).MustBuild()
	if err := tb.Run(unbound); err == nil {
		t.Error("Run accepted unbound parameters")
	}
	narrow := circuit.NewBuilder(1).H(0).MustBuild()
	if err := tb.Run(narrow); err == nil {
		t.Error("Run accepted width mismatch")
	}
}

func BenchmarkTableau26qGraphState(b *testing.B) {
	const n = 26
	tb, err := New(n)
	if err != nil {
		b.Fatal(err)
	}
	c := &circuit.Circuit{NQubits: n}
	for q := 0; q < n; q++ {
		c.Gates = append(c.Gates, circuit.Gate{Kind: circuit.H, Qubit: q, Param: circuit.NoParam})
	}
	for q := 0; q+1 < n; q++ {
		c.Gates = append(c.Gates, circuit.Gate{Kind: circuit.CZ, Qubit: q, Qubit2: q + 1, Param: circuit.NoParam})
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tb.Run(c); err != nil {
			b.Fatal(err)
		}
		tb.AppendSample(nil, 10, rng)
	}
}
