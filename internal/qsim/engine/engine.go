// Package engine defines the Simulator interface every simulation
// method implements — the dense SoA statevector (internal/qsim), the
// CHP stabilizer tableau (internal/qsim/tableau), the mean-field
// product surrogate (internal/qsim/product), and the sharded dense
// statevector (internal/qsim/shard) — so quantum.Chip, backend,
// and vqa can request "a simulator" from the method router
// (internal/route) instead of constructing qsim.State directly
// (DESIGN.md §12).
//
// The adapters are thin: each wraps one concrete engine, normalises the
// Run/Sample/Probabilities contracts (fresh outcome slices, identical
// RNG-stream discipline), and exposes the concrete state through an
// accessor for callers that need engine-specific operations (e.g.
// pauli.Hamiltonian.Expectation on the dense state).
package engine

import (
	"fmt"
	"math/rand"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
	"qtenon/internal/qsim/product"
	"qtenon/internal/qsim/shard"
	"qtenon/internal/qsim/tableau"
)

// Simulator is the method-agnostic execution surface. All engines share
// the terminal-measurement convention: Apply ignores Measure gates;
// Sample measures every qubit of the current state without mutating it
// between calls. Outcome words carry qubits 0..63 (bit q = qubit q);
// wider registers advance the RNG identically but report the 64-bit
// cost window.
type Simulator interface {
	// NQubits reports the register width.
	NQubits() int
	// Apply executes one bound gate in place.
	Apply(g circuit.Gate)
	// Run resets the simulator and executes a bound circuit.
	Run(c *circuit.Circuit) error
	// Probabilities returns the full 2^n basis distribution (small n only).
	Probabilities() []float64
	// Sample draws shot outcome words from the caller's seeded RNG.
	Sample(shots int, rng *rand.Rand) []uint64
	// ZExpectation returns ⟨Z_q⟩ of the current state.
	ZExpectation(q int) float64
	// Reset restores |0…0⟩ in place.
	Reset()
	// Clone returns an independent copy of the simulator state.
	Clone() Simulator
}

// Dense wraps the SoA statevector; width is capped at qsim.MaxQubits (24).
type Dense struct {
	st *qsim.State
}

// NewDense allocates a dense statevector engine.
func NewDense(n int) (*Dense, error) {
	if n <= 0 || n > qsim.MaxQubits {
		return nil, fmt.Errorf("engine: qubit count %d outside the dense window (0,%d]", n, qsim.MaxQubits)
	}
	return &Dense{st: qsim.NewState(n)}, nil
}

// State exposes the concrete statevector (for pauli expectations and
// qsim-specific entry points).
func (d *Dense) State() *qsim.State { return d.st }

// NQubits implements Simulator.
func (d *Dense) NQubits() int { return d.st.NQubits() }

// Apply implements Simulator.
//
//qtenon:hotpath
func (d *Dense) Apply(g circuit.Gate) { d.st.Apply(g) }

// Run implements Simulator via qsim.RunReuse, preserving the dense
// path's exact numerical stream: Reset + fused sweep on the same arena.
//
//qtenon:hotpath
func (d *Dense) Run(c *circuit.Circuit) error {
	st, err := qsim.RunReuse(d.st, c)
	if err != nil {
		return err
	}
	d.st = st
	return nil
}

// Probabilities implements Simulator.
func (d *Dense) Probabilities() []float64 { return d.st.Probabilities() }

// Sample implements Simulator.
func (d *Dense) Sample(shots int, rng *rand.Rand) []uint64 { return d.st.Sample(shots, rng) }

// ZExpectation implements Simulator.
func (d *Dense) ZExpectation(q int) float64 { return d.st.ExpectationZ(q) }

// Reset implements Simulator.
func (d *Dense) Reset() { d.st.Reset() }

// Clone implements Simulator.
func (d *Dense) Clone() Simulator { return &Dense{st: d.st.Clone()} }

// Clifford wraps the stabilizer tableau.
type Clifford struct {
	t *tableau.Tableau
}

// NewClifford allocates a tableau engine.
func NewClifford(n int) (*Clifford, error) {
	t, err := tableau.New(n)
	if err != nil {
		return nil, err
	}
	return &Clifford{t: t}, nil
}

// Tableau exposes the concrete tableau (for Z-string expectations).
func (c *Clifford) Tableau() *tableau.Tableau { return c.t }

// NQubits implements Simulator.
func (c *Clifford) NQubits() int { return c.t.NQubits() }

// Apply implements Simulator; panics on non-Clifford gates (the router
// guarantees it is never handed one).
func (c *Clifford) Apply(g circuit.Gate) { c.t.Apply(g) }

// Run implements Simulator.
func (c *Clifford) Run(ct *circuit.Circuit) error { return c.t.Run(ct) }

// Probabilities implements Simulator; values are exactly dyadic.
func (c *Clifford) Probabilities() []float64 { return c.t.Probabilities() }

// Sample implements Simulator.
func (c *Clifford) Sample(shots int, rng *rand.Rand) []uint64 { return c.t.Sample(shots, rng) }

// ZExpectation implements Simulator.
func (c *Clifford) ZExpectation(q int) float64 { return c.t.ZExpectation(q) }

// Reset implements Simulator.
func (c *Clifford) Reset() { c.t.Reset() }

// Clone implements Simulator.
func (c *Clifford) Clone() Simulator { return &Clifford{t: c.t.Clone()} }

// Product wraps the mean-field surrogate.
type Product struct {
	ps *product.State
}

// NewProduct allocates a product-state engine.
func NewProduct(n int) (*Product, error) {
	if n <= 0 {
		return nil, fmt.Errorf("engine: non-positive qubit count %d", n)
	}
	return &Product{ps: product.New(n)}, nil
}

// ProductState exposes the concrete surrogate.
func (p *Product) ProductState() *product.State { return p.ps }

// NQubits implements Simulator.
func (p *Product) NQubits() int { return p.ps.NQubits() }

// Apply implements Simulator.
func (p *Product) Apply(g circuit.Gate) { p.ps.Apply(g) }

// Run implements Simulator.
func (p *Product) Run(c *circuit.Circuit) error { return p.ps.Run(c) }

// Probabilities implements Simulator.
func (p *Product) Probabilities() []float64 { return p.ps.Probabilities() }

// Sample implements Simulator.
func (p *Product) Sample(shots int, rng *rand.Rand) []uint64 { return p.ps.Sample(shots, rng) }

// ZExpectation implements Simulator.
func (p *Product) ZExpectation(q int) float64 { return p.ps.ZExp(q) }

// Reset implements Simulator.
func (p *Product) Reset() { p.ps.Reset() }

// Clone implements Simulator.
func (p *Product) Clone() Simulator { return &Product{ps: p.ps.Clone()} }

// Sharded wraps the chunked statevector (internal/qsim/shard): dense-
// exact amplitudes past the contiguous engine's allocation wall, capped
// at shard.MaxQubits (28).
type Sharded struct {
	st *shard.State
}

// NewSharded allocates a sharded statevector engine.
func NewSharded(n int) (*Sharded, error) {
	st, err := shard.New(n)
	if err != nil {
		return nil, err
	}
	return &Sharded{st: st}, nil
}

// ShardState exposes the concrete sharded statevector.
func (s *Sharded) ShardState() *shard.State { return s.st }

// NQubits implements Simulator.
func (s *Sharded) NQubits() int { return s.st.NQubits() }

// Apply implements Simulator.
//
//qtenon:hotpath
func (s *Sharded) Apply(g circuit.Gate) { s.st.Apply(g) }

// Run implements Simulator. A width mismatch reallocates, mirroring
// qsim.RunReuse; the common chip path always matches and reuses the
// shard arena.
//
//qtenon:hotpath
func (s *Sharded) Run(c *circuit.Circuit) error {
	if c.NQubits != s.st.NQubits() {
		//lint:ignore hotpath width-mismatch rebuild is the documented cold start; the chip path always matches and reuses the shard arena (DESIGN.md §14.1)
		st, err := shard.New(c.NQubits)
		if err != nil {
			return err
		}
		s.st = st
	}
	return s.st.Run(c)
}

// Probabilities implements Simulator.
func (s *Sharded) Probabilities() []float64 { return s.st.Probabilities() }

// Sample implements Simulator.
func (s *Sharded) Sample(shots int, rng *rand.Rand) []uint64 { return s.st.Sample(shots, rng) }

// ZExpectation implements Simulator.
func (s *Sharded) ZExpectation(q int) float64 { return s.st.ExpectationZ(q) }

// Reset implements Simulator.
func (s *Sharded) Reset() { s.st.Reset() }

// Clone implements Simulator.
func (s *Sharded) Clone() Simulator { return &Sharded{st: s.st.Clone()} }

// Interface conformance.
var (
	_ Simulator = (*Dense)(nil)
	_ Simulator = (*Clifford)(nil)
	_ Simulator = (*Product)(nil)
	_ Simulator = (*Sharded)(nil)
)
