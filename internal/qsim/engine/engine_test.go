package engine

import (
	"math/rand"
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
	"qtenon/internal/qsim/shard"
)

func build(t *testing.T, m Method, n int) Simulator {
	t.Helper()
	var (
		s   Simulator
		err error
	)
	switch m {
	case methodDense:
		s, err = NewDense(n)
	case methodClifford:
		s, err = NewClifford(n)
	case methodProduct:
		s, err = NewProduct(n)
	case methodSharded:
		s, err = NewSharded(n)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Method is test-local shorthand for the four concrete engines; the
// routing enum lives in internal/route to keep engine dependency-light.
type Method int

const (
	methodDense Method = iota
	methodClifford
	methodProduct
	methodSharded
)

func (m Method) String() string {
	return [...]string{"dense", "clifford", "product", "sharded"}[m]
}

// TestConformance runs every engine through the shared Simulator surface
// on a circuit all three support (single-qubit X flips are exact in the
// product surrogate too) and checks the common behavioral contract:
// deterministic state, reusable Run, seed-deterministic Sample.
func TestConformance(t *testing.T) {
	c := circuit.NewBuilder(3).X(0).X(2).MeasureAll().MustBuild()
	for _, m := range []Method{methodDense, methodClifford, methodProduct, methodSharded} {
		t.Run(m.String(), func(t *testing.T) {
			s := build(t, m, 3)
			if s.NQubits() != 3 {
				t.Fatalf("NQubits = %d", s.NQubits())
			}
			if err := s.Run(c); err != nil {
				t.Fatal(err)
			}
			probs := s.Probabilities()
			// |101⟩ ⇒ index 0b101 = 5.
			for i, p := range probs {
				want := 0.0
				if i == 5 {
					want = 1
				}
				if p != want {
					t.Fatalf("probs[%d] = %g, want %g", i, p, want)
				}
			}
			if z := s.ZExpectation(0); z != -1 {
				t.Fatalf("ZExpectation(0) = %g, want -1", z)
			}
			if z := s.ZExpectation(1); z != 1 {
				t.Fatalf("ZExpectation(1) = %g, want 1", z)
			}
			a := s.Sample(5, rand.New(rand.NewSource(7)))
			b := s.Sample(5, rand.New(rand.NewSource(7)))
			if len(a) != 5 || len(b) != 5 {
				t.Fatalf("sample lengths %d/%d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seeded samples diverge at %d: %d vs %d", i, a[i], b[i])
				}
				if a[i] != 5 {
					t.Fatalf("sample[%d] = %d, want 5", i, a[i])
				}
			}
			// Run again (reuse) and re-check: engines must reset first.
			if err := s.Run(c); err != nil {
				t.Fatal(err)
			}
			if z := s.ZExpectation(2); z != -1 {
				t.Fatalf("after rerun ZExpectation(2) = %g", z)
			}
			cl := s.Clone()
			cl.Reset()
			if z := s.ZExpectation(0); z != -1 {
				t.Fatal("Reset of a clone mutated the original")
			}
			if z := cl.ZExpectation(0); z != 1 {
				t.Fatalf("clone after Reset: ZExpectation(0) = %g", z)
			}
		})
	}
}

// TestDenseRunMatchesQsim pins Dense.Run to the exact RunReuse numeric
// stream: the adapter must not perturb a single bit of the statevector
// relative to driving qsim directly.
func TestDenseRunMatchesQsim(t *testing.T) {
	c := circuit.NewBuilder(4).
		H(0).RY(1, 0.37).CX(0, 1).RZ(2, 1.1).RZZ(2, 3, 0.5).
		MeasureAll().MustBuild()
	d, err := NewDense(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(c); err != nil {
		t.Fatal(err)
	}
	ref := qsim.NewState(4)
	if _, err := qsim.RunReuse(ref, c); err != nil {
		t.Fatal(err)
	}
	got := d.Probabilities()
	want := ref.Probabilities()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("probs diverge at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewDense(qsim.MaxQubits + 1); err == nil {
		t.Error("NewDense past MaxQubits")
	}
	if _, err := NewDense(0); err == nil {
		t.Error("NewDense(0)")
	}
	if _, err := NewClifford(0); err == nil {
		t.Error("NewClifford(0)")
	}
	if _, err := NewProduct(0); err == nil {
		t.Error("NewProduct(0)")
	}
	if _, err := NewSharded(0); err == nil {
		t.Error("NewSharded(0)")
	}
	if _, err := NewSharded(shard.MaxQubits + 1); err == nil {
		t.Error("NewSharded past shard.MaxQubits")
	}
}

// TestShardedRunMatchesQsim pins Sharded.Run to the dense numeric
// stream through the adapter layer: same fused program, same kernels,
// bit-for-bit equal probabilities (the deep equivalence fuzz lives in
// internal/qsim/shard).
func TestShardedRunMatchesQsim(t *testing.T) {
	c := circuit.NewBuilder(4).
		H(0).RY(1, 0.37).CX(0, 1).RZ(2, 1.1).RZZ(2, 3, 0.5).
		MeasureAll().MustBuild()
	s, err := NewSharded(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	ref := qsim.NewState(4)
	if _, err := qsim.RunReuse(ref, c); err != nil {
		t.Fatal(err)
	}
	got := s.Probabilities()
	want := ref.Probabilities()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("probs diverge at %d: %g vs %g", i, got[i], want[i])
		}
	}
}
