package qsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qtenon/internal/circuit"
)

const eps = 1e-12

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestInitialState(t *testing.T) {
	s := NewState(3)
	if s.NQubits() != 3 {
		t.Errorf("NQubits = %d", s.NQubits())
	}
	amp := s.Amplitudes()
	if len(amp) != 8 || amp[0] != 1 {
		t.Fatalf("initial state wrong: %v", amp)
	}
	if !approx(s.Norm(), 1) {
		t.Errorf("Norm = %v", s.Norm())
	}
}

func TestPauliX(t *testing.T) {
	s := NewState(2)
	s.Apply(circuit.Gate{Kind: circuit.X, Qubit: 1, Param: circuit.NoParam})
	// |10⟩ in qubit order → index 0b10 = 2.
	if a := s.Amplitudes()[2]; !approx(real(a), 1) || !approx(imag(a), 0) {
		t.Errorf("X|00⟩ amp[2] = %v", a)
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s := NewState(1)
	s.Apply(circuit.Gate{Kind: circuit.H, Qubit: 0, Param: circuit.NoParam})
	amp := s.Amplitudes()
	w := 1 / math.Sqrt2
	if !approx(real(amp[0]), w) || !approx(real(amp[1]), w) {
		t.Errorf("H|0⟩ = %v", amp)
	}
	// H is self-inverse.
	s.Apply(circuit.Gate{Kind: circuit.H, Qubit: 0, Param: circuit.NoParam})
	if !approx(real(s.Amplitudes()[0]), 1) {
		t.Errorf("HH|0⟩ = %v", s.Amplitudes())
	}
}

func TestBellState(t *testing.T) {
	c := circuit.NewBuilder(2).H(0).CX(0, 1).MustBuild()
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	amp := s.Amplitudes()
	w := 1 / math.Sqrt2
	if !approx(real(amp[0]), w) || !approx(real(amp[3]), w) ||
		!approx(real(amp[1]), 0) || !approx(real(amp[2]), 0) {
		t.Errorf("Bell state = %v", amp)
	}
	if !approx(s.ExpectationZZ(0, 1), 1) {
		t.Errorf("⟨ZZ⟩ = %v, want 1", s.ExpectationZZ(0, 1))
	}
	if !approx(s.ExpectationZ(0), 0) {
		t.Errorf("⟨Z0⟩ = %v, want 0", s.ExpectationZ(0))
	}
}

func TestRotationAngles(t *testing.T) {
	// RX(π)|0⟩ = -i|1⟩; RY(π)|0⟩ = |1⟩; RZ leaves |0⟩ up to phase.
	s := NewState(1)
	s.Apply(circuit.Gate{Kind: circuit.RX, Qubit: 0, Theta: math.Pi, Param: circuit.NoParam})
	if a := s.Amplitudes()[1]; !approx(imag(a), -1) {
		t.Errorf("RX(π)|0⟩ = %v", s.Amplitudes())
	}
	s = NewState(1)
	s.Apply(circuit.Gate{Kind: circuit.RY, Qubit: 0, Theta: math.Pi, Param: circuit.NoParam})
	if a := s.Amplitudes()[1]; !approx(real(a), 1) {
		t.Errorf("RY(π)|0⟩ = %v", s.Amplitudes())
	}
	s = NewState(1)
	s.Apply(circuit.Gate{Kind: circuit.RZ, Qubit: 0, Theta: 1.3, Param: circuit.NoParam})
	p := s.Probabilities()
	if !approx(p[0], 1) {
		t.Errorf("RZ changed probabilities: %v", p)
	}
}

func TestRYExpectation(t *testing.T) {
	// ⟨Z⟩ after RY(θ)|0⟩ is cos θ.
	for _, theta := range []float64{0, 0.3, 1.1, math.Pi / 2, 2.7, math.Pi} {
		s := NewState(1)
		s.Apply(circuit.Gate{Kind: circuit.RY, Qubit: 0, Theta: theta, Param: circuit.NoParam})
		if got := s.ExpectationZ(0); !approx(got, math.Cos(theta)) {
			t.Errorf("⟨Z⟩ after RY(%v) = %v, want %v", theta, got, math.Cos(theta))
		}
	}
}

func TestCZPhase(t *testing.T) {
	// CZ on |11⟩ flips sign; on others does nothing.
	c := circuit.NewBuilder(2).X(0).X(1).CZ(0, 1).MustBuild()
	s, _ := Run(c)
	if a := s.Amplitudes()[3]; !approx(real(a), -1) {
		t.Errorf("CZ|11⟩ = %v", a)
	}
	c = circuit.NewBuilder(2).X(0).CZ(0, 1).MustBuild()
	s, _ = Run(c)
	if a := s.Amplitudes()[1]; !approx(real(a), 1) {
		t.Errorf("CZ|01⟩ = %v", a)
	}
}

func TestRZZEquivalentToCXRZCX(t *testing.T) {
	// exp(-iθ/2 ZZ) == CX(0,1); RZ(θ) on 1; CX(0,1), up to global phase 0.
	theta := 0.77
	pre := circuit.NewBuilder(2).H(0).RY(1, 0.4)
	c1 := pre.MustBuild().Clone()
	c1.Gates = append(c1.Gates, circuit.Gate{Kind: circuit.RZZ, Qubit: 0, Qubit2: 1, Theta: theta, Param: circuit.NoParam})
	c2 := pre.MustBuild().Clone()
	c2.Gates = append(c2.Gates,
		circuit.Gate{Kind: circuit.CX, Qubit: 0, Qubit2: 1, Param: circuit.NoParam},
		circuit.Gate{Kind: circuit.RZ, Qubit: 1, Theta: theta, Param: circuit.NoParam},
		circuit.Gate{Kind: circuit.CX, Qubit: 0, Qubit2: 1, Param: circuit.NoParam})
	s1, _ := Run(c1)
	s2, _ := Run(c2)
	if f := s1.Fidelity(s2); !approx(f, 1) {
		t.Errorf("RZZ vs CX·RZ·CX fidelity = %v", f)
	}
}

func TestGHZProbabilities(t *testing.T) {
	c := circuit.NewBuilder(3).H(0).CX(0, 1).CX(1, 2).MustBuild()
	s, _ := Run(c)
	p := s.Probabilities()
	if !approx(p[0], 0.5) || !approx(p[7], 0.5) {
		t.Errorf("GHZ probabilities = %v", p)
	}
	for i := 1; i < 7; i++ {
		if p[i] > eps {
			t.Errorf("GHZ leak at %d: %v", i, p[i])
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	c := circuit.NewBuilder(2).H(0).CX(0, 1).MustBuild()
	s, _ := Run(c)
	rng := rand.New(rand.NewSource(42))
	shots := 20000
	samples := s.Sample(shots, rng)
	counts := map[uint64]int{}
	for _, v := range samples {
		counts[v]++
	}
	if counts[1] != 0 || counts[2] != 0 {
		t.Errorf("Bell sample hit impossible outcomes: %v", counts)
	}
	frac := float64(counts[0]) / float64(shots)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("Bell |00⟩ fraction = %v, want ≈0.5", frac)
	}
}

func TestMeasureQubitCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		c := circuit.NewBuilder(2).H(0).CX(0, 1).MustBuild()
		s, _ := Run(c)
		b0 := s.MeasureQubit(0, rng)
		b1 := s.MeasureQubit(1, rng)
		if b0 != b1 {
			t.Fatalf("Bell measurement disagreement: %d vs %d", b0, b1)
		}
		if !approx(s.Norm(), 1) {
			t.Fatalf("post-measurement norm = %v", s.Norm())
		}
	}
}

func TestRunRejects(t *testing.T) {
	unbound := circuit.NewBuilder(1).RXP(0, 0).MustBuild()
	if _, err := Run(unbound); err == nil {
		t.Error("Run accepted unbound circuit")
	}
	invalid := &circuit.Circuit{NQubits: 1, Gates: []circuit.Gate{{Kind: circuit.H, Qubit: 5, Param: circuit.NoParam}}}
	if _, err := Run(invalid); err == nil {
		t.Error("Run accepted invalid circuit")
	}
}

// Property: every gate preserves the norm (unitarity), on random states
// reached by random circuits.
func TestUnitarityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	kinds := []circuit.Kind{circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.T,
		circuit.RX, circuit.RY, circuit.RZ, circuit.CZ, circuit.CX, circuit.RZZ}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		s := NewState(n)
		for g := 0; g < 40; g++ {
			k := kinds[rng.Intn(len(kinds))]
			gate := circuit.Gate{Kind: k, Qubit: rng.Intn(n), Theta: rng.NormFloat64() * 2, Param: circuit.NoParam}
			if k.Arity() == 2 {
				gate.Qubit2 = (gate.Qubit + 1 + rng.Intn(n-1)) % n
			}
			s.Apply(gate)
			if math.Abs(s.Norm()-1) > 1e-9 {
				t.Fatalf("trial %d: norm drifted to %v after %v", trial, s.Norm(), gate)
			}
		}
	}
}

// Property: X is an involution and HZH = X on arbitrary reachable states.
func TestAlgebraicIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		s := NewState(3)
		for i := 0; i < 10; i++ {
			s.Apply(circuit.Gate{Kind: circuit.RY, Qubit: rng.Intn(3), Theta: rng.NormFloat64(), Param: circuit.NoParam})
			s.Apply(circuit.Gate{Kind: circuit.CX, Qubit: rng.Intn(3), Qubit2: (rng.Intn(2) + 1 + rng.Intn(1)) % 3, Param: circuit.NoParam})
		}
		q := rng.Intn(3)
		viaX := s.Clone()
		viaX.Apply(circuit.Gate{Kind: circuit.X, Qubit: q, Param: circuit.NoParam})
		viaHZH := s.Clone()
		viaHZH.Apply(circuit.Gate{Kind: circuit.H, Qubit: q, Param: circuit.NoParam})
		viaHZH.Apply(circuit.Gate{Kind: circuit.Z, Qubit: q, Param: circuit.NoParam})
		viaHZH.Apply(circuit.Gate{Kind: circuit.H, Qubit: q, Param: circuit.NoParam})
		if f := viaX.Fidelity(viaHZH); !approx(f, 1) {
			t.Fatalf("trial %d: HZH≠X, fidelity %v", trial, f)
		}
	}
}

// Property (quick): RZ(a) then RZ(b) equals RZ(a+b).
func TestRZComposition(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 2*math.Pi), math.Mod(b, 2*math.Pi)
		s1 := NewState(1)
		s1.Apply(circuit.Gate{Kind: circuit.H, Qubit: 0, Param: circuit.NoParam})
		s2 := s1.Clone()
		s1.Apply(circuit.Gate{Kind: circuit.RZ, Qubit: 0, Theta: a, Param: circuit.NoParam})
		s1.Apply(circuit.Gate{Kind: circuit.RZ, Qubit: 0, Theta: b, Param: circuit.NoParam})
		s2.Apply(circuit.Gate{Kind: circuit.RZ, Qubit: 0, Theta: a + b, Param: circuit.NoParam})
		return math.Abs(s1.Fidelity(s2)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRun16Qubit(b *testing.B) {
	bld := circuit.NewBuilder(16)
	for q := 0; q < 16; q++ {
		bld.H(q)
	}
	for q := 0; q < 15; q++ {
		bld.CX(q, q+1)
	}
	c := bld.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c); err != nil {
			b.Fatal(err)
		}
	}
}
