package qsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"qtenon/internal/circuit"
	"qtenon/internal/par"
)

// refApply is the pre-parallel, pre-fusion reference kernel: the naive
// serial gate application the seed repository shipped. The parallel
// engine is validated against it gate for gate.
func refApply(amp []complex128, g circuit.Gate) {
	apply1q := func(q int, u00, u01, u10, u11 complex128) {
		stride := 1 << q
		for base := 0; base < len(amp); base += stride << 1 {
			for i := base; i < base+stride; i++ {
				a0, a1 := amp[i], amp[i+stride]
				amp[i] = u00*a0 + u01*a1
				amp[i+stride] = u10*a0 + u11*a1
			}
		}
	}
	switch g.Kind {
	case circuit.I, circuit.Measure:
	case circuit.CZ:
		ma, mb := 1<<g.Qubit, 1<<g.Qubit2
		for i := range amp {
			if i&ma != 0 && i&mb != 0 {
				amp[i] = -amp[i]
			}
		}
	case circuit.CX:
		mc, mt := 1<<g.Qubit, 1<<g.Qubit2
		for i := range amp {
			if i&mc != 0 && i&mt == 0 {
				j := i | mt
				amp[i], amp[j] = amp[j], amp[i]
			}
		}
	case circuit.RZZ:
		ma, mb := 1<<g.Qubit, 1<<g.Qubit2
		eP := cmplx.Exp(complex(0, -g.Theta/2))
		eM := cmplx.Exp(complex(0, g.Theta/2))
		for i := range amp {
			if (i&ma != 0) == (i&mb != 0) {
				amp[i] *= eP
			} else {
				amp[i] *= eM
			}
		}
	default:
		m, ok := gateMatrix1Q(g)
		if !ok {
			panic("refApply: unsupported gate")
		}
		apply1q(g.Qubit, m[0], m[1], m[2], m[3])
	}
}

// randomCircuit builds a valid bound circuit over n qubits.
func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	kinds := []circuit.Kind{
		circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.T,
		circuit.RX, circuit.RY, circuit.RZ, circuit.CZ, circuit.CX, circuit.RZZ,
	}
	c := &circuit.Circuit{NQubits: n}
	for i := 0; i < gates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		g := circuit.Gate{Kind: k, Qubit: rng.Intn(n), Theta: rng.NormFloat64() * 2, Param: circuit.NoParam}
		if k.Arity() == 2 {
			g.Qubit2 = (g.Qubit + 1 + rng.Intn(n-1)) % n
		}
		c.Gates = append(c.Gates, g)
	}
	return c
}

// Property: the fused, parallel engine matches the serial reference
// within 1e-12 on random circuits over 2–16 qubits.
func TestFusedParallelMatchesSerialReference(t *testing.T) {
	par.SetWorkers(4) // exercise the pool even on single-core machines
	defer par.SetWorkers(0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15) // 2..16 qubits
		c := randomCircuit(rng, n, 40)

		got, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		ref := make([]complex128, 1<<n)
		ref[0] = 1
		for _, g := range c.Gates {
			refApply(ref, g)
		}
		for i, a := range got.Amplitudes() {
			if cmplx.Abs(a-ref[i]) > 1e-12 {
				t.Logf("seed %d: amp[%d] = %v, ref %v", seed, i, a, ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: gate-by-gate Apply (parallel kernels, no fusion) matches the
// reference as well — Apply is the path trajectories and tests use.
func TestApplyMatchesSerialReference(t *testing.T) {
	par.SetWorkers(4)
	defer par.SetWorkers(0)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(14)
		c := randomCircuit(rng, n, 30)
		s := NewState(n)
		ref := make([]complex128, 1<<n)
		ref[0] = 1
		for _, g := range c.Gates {
			s.Apply(g)
			refApply(ref, g)
		}
		for i, a := range s.Amplitudes() {
			if cmplx.Abs(a-ref[i]) > 1e-12 {
				t.Fatalf("trial %d: amp[%d] = %v, ref %v", trial, i, a, ref[i])
			}
		}
	}
}

// bigState returns a state wide enough that every parallel path engages.
func bigState(t *testing.T) *State {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	c := randomCircuit(rng, 15, 60)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Fixed-seed sampling and expectation values must be identical at any
// GOMAXPROCS / worker-count setting.
func TestSampleDeterministicAcrossWorkerCounts(t *testing.T) {
	s := bigState(t)
	run := func(workers int) ([]uint64, float64, float64) {
		par.SetWorkers(workers)
		defer par.SetWorkers(0)
		c := s.Clone()
		c.invalidate() // force an alias rebuild under this worker count
		return c.Sample(10000, rand.New(rand.NewSource(99))), c.ExpectationZ(3), c.ExpectationZZ(0, 11)
	}
	wantSamples, wantZ, wantZZ := run(1)
	for _, w := range []int{2, 4, 8} {
		samples, z, zz := run(w)
		if z != wantZ || zz != wantZZ {
			t.Fatalf("workers=%d: expectations differ: (%v,%v) vs (%v,%v)", w, z, zz, wantZ, wantZZ)
		}
		for i := range samples {
			if samples[i] != wantSamples[i] {
				t.Fatalf("workers=%d: sample %d = %d, want %d", w, i, samples[i], wantSamples[i])
			}
		}
	}

	// And across actual GOMAXPROCS changes.
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, p := range []int{1, 4} {
		runtime.GOMAXPROCS(p)
		c := s.Clone()
		c.invalidate()
		samples := c.Sample(10000, rand.New(rand.NewSource(99)))
		for i := range samples {
			if samples[i] != wantSamples[i] {
				t.Fatalf("GOMAXPROCS=%d: sample %d = %d, want %d", p, i, samples[i], wantSamples[i])
			}
		}
	}
}

// The cached sampler must be invalidated by every mutating operation.
func TestSamplerCacheInvalidation(t *testing.T) {
	s := NewState(3) // |000⟩
	rng := rand.New(rand.NewSource(1))
	for _, v := range s.Sample(100, rng) {
		if v != 0 {
			t.Fatalf("sampled %d from |000⟩", v)
		}
	}
	if s.sampler == nil {
		t.Fatal("sampler not cached after Sample")
	}
	s.Apply(circuit.Gate{Kind: circuit.X, Qubit: 1, Param: circuit.NoParam})
	if s.sampler != nil {
		t.Fatal("Apply did not invalidate the cached sampler")
	}
	for _, v := range s.Sample(100, rng) {
		if v != 2 {
			t.Fatalf("sampled %d from |010⟩", v)
		}
	}

	// MeasureQubit mutates too.
	s.Sample(1, rng)
	s.MeasureQubit(0, rng)
	if s.sampler != nil {
		t.Fatal("MeasureQubit did not invalidate the cached sampler")
	}

	// Clones share the (immutable) table but invalidate independently.
	s.Sample(1, rng)
	c := s.Clone()
	if c.sampler != s.sampler {
		t.Fatal("Clone should share the cached sampler")
	}
	c.Apply(circuit.Gate{Kind: circuit.X, Qubit: 0, Param: circuit.NoParam})
	if c.sampler != nil || s.sampler == nil {
		t.Fatal("clone invalidation leaked to the original")
	}
}

// The alias sampler must reproduce the distribution (statistically).
func TestAliasSamplerDistribution(t *testing.T) {
	s := NewState(2)
	s.Apply(circuit.Gate{Kind: circuit.RY, Qubit: 0, Theta: 1.1, Param: circuit.NoParam})
	s.Apply(circuit.Gate{Kind: circuit.RY, Qubit: 1, Theta: 2.3, Param: circuit.NoParam})
	p := s.Probabilities()
	shots := 200000
	counts := make([]int, 4)
	for _, v := range s.Sample(shots, rand.New(rand.NewSource(5))) {
		counts[v]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(shots)
		if math.Abs(frac-p[i]) > 0.01 {
			t.Errorf("outcome %d: sampled %.4f, want %.4f", i, frac, p[i])
		}
	}
}

// Fusion must also hold for the structured ansätze the benchmarks run —
// QAOA-shaped layers exercise the diagonal batching path hardest.
func TestFusionOnStructuredCircuit(t *testing.T) {
	b := circuit.NewBuilder(6)
	for q := 0; q < 6; q++ {
		b.H(q)
	}
	for l := 0; l < 3; l++ {
		for q := 0; q < 6; q++ {
			b.RZZ(q, (q+1)%6, 0.3+0.1*float64(l))
		}
		for q := 0; q < 6; q++ {
			b.RX(q, 0.7-0.05*float64(l))
		}
	}
	for q := 0; q < 5; q++ {
		b.CX(q, q+1)
	}
	for q := 0; q < 6; q++ {
		b.RZ(q, 0.2*float64(q))
		b.T(q)
	}
	c := b.MustBuild()
	got, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]complex128, 1<<6)
	ref[0] = 1
	for _, g := range c.Gates {
		refApply(ref, g)
	}
	for i, a := range got.Amplitudes() {
		if cmplx.Abs(a-ref[i]) > 1e-12 {
			t.Fatalf("amp[%d] = %v, ref %v", i, a, ref[i])
		}
	}
}
