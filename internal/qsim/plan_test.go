package qsim

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"qtenon/internal/circuit"
)

// planCircuit builds a parameterized ansatz exercising every op shape a
// plan can hold: general 1q chains, diagonal runs, CZ/CX bricks, and
// parameterized RZZ terms.
func planCircuit(n int) *circuit.Circuit {
	b := circuit.NewBuilder(n)
	p := 0
	for q := 0; q < n; q++ {
		b.H(q)
		b.RYP(q, p)
		p++
	}
	for q := 0; q < n-1; q++ {
		b.CZ(q, q+1)
		b.RZZP(q, q+1, p)
		p++
	}
	for q := 0; q < n; q++ {
		b.RZP(q, p)
		b.T(q)
		p++
	}
	for q := 0; q < n-1; q += 2 {
		b.CX(q, q+1)
	}
	for q := 0; q < n; q++ {
		b.RXP(q, p)
		p++
	}
	return b.MustBuild()
}

// A compiled plan executed at a binding must match compiling-and-running
// the bound circuit from scratch. The plan's op structure is
// binding-independent (kind-based diagonality, DESIGN.md §11.4), so a
// degenerate binding like RY(0) can route through a general kernel where
// per-binding fusion would specialize — values agree to fusion tolerance.
func TestPlanMatchesRunAcrossBindings(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		c := planCircuit(n)
		plan, err := CompilePlan(c)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NumParams() != c.NumParams || plan.NQubits() != n {
			t.Fatalf("plan shape (%d params, %d qubits), want (%d, %d)",
				plan.NumParams(), plan.NQubits(), c.NumParams, n)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		var st *State
		for trial := 0; trial < 5; trial++ {
			params := make([]float64, c.NumParams)
			for i := range params {
				params[i] = rng.NormFloat64()
			}
			if trial == 4 {
				// Degenerate binding: all-zero angles stress the
				// kind-vs-numeric diagonality divergence hardest.
				for i := range params {
					params[i] = 0
				}
			}
			st, err = plan.Execute(st, params)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(c.Bind(params))
			if err != nil {
				t.Fatal(err)
			}
			got, ref := st.Amplitudes(), want.Amplitudes()
			for i := range ref {
				if cmplx.Abs(got[i]-ref[i]) > 1e-12 {
					t.Fatalf("n=%d trial %d: amp[%d] = %v, want %v", n, trial, i, got[i], ref[i])
				}
			}
		}
	}
}

// Execute must reuse the caller's statevector arena: after the first
// call, no new State is allocated.
func TestPlanExecuteReusesArena(t *testing.T) {
	c := planCircuit(6)
	plan, err := CompilePlan(c)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float64, c.NumParams)
	for i := range params {
		params[i] = 0.1 * float64(i+1)
	}
	st, err := plan.Execute(nil, params)
	if err != nil {
		t.Fatal(err)
	}
	again, err := plan.Execute(st, params)
	if err != nil {
		t.Fatal(err)
	}
	if again != st {
		t.Fatal("Execute allocated a fresh State instead of reusing the arena")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := plan.Execute(st, params); err != nil {
			t.Fatal(err)
		}
	})
	// A handful of parallel-dispatch closures are expected; the 2^n-sized
	// buffers (statevector, scratch, plan terms) must not reallocate.
	if allocs > 4 {
		t.Errorf("Execute allocated %.1f objects per call after warm-up, want ≤4", allocs)
	}
}

// Plans reject inputs Run would reject: wrong binding width, invalid
// circuits.
func TestPlanValidation(t *testing.T) {
	c := planCircuit(3)
	plan, err := CompilePlan(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(nil, make([]float64, c.NumParams+1)); err == nil {
		t.Error("Execute accepted a binding of the wrong width")
	}
	bad := &circuit.Circuit{NQubits: 2, Gates: []circuit.Gate{{Kind: circuit.RX, Qubit: 5, Param: circuit.NoParam}}}
	if _, err := CompilePlan(bad); err == nil {
		t.Error("CompilePlan accepted an invalid circuit")
	}
}

// A fully bound circuit (no free parameters) compiles and executes with
// an empty binding — the plan is then just a reusable fused program.
func TestPlanOnBoundCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := randomCircuit(rng, 7, 30)
	plan, err := CompilePlan(c)
	if err != nil {
		t.Fatal(err)
	}
	st, err := plan.Execute(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got, ref := st.Amplitudes(), want.Amplitudes()
	for i := range ref {
		if cmplx.Abs(got[i]-ref[i]) > 1e-12 {
			t.Fatalf("amp[%d] = %v, want %v", i, got[i], ref[i])
		}
	}
}
