package qsim

import (
	"math"
	"math/rand"
	"testing"

	"qtenon/internal/circuit"
)

func TestTrajectoryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	unbound := circuit.NewBuilder(1).RXP(0, 0).MustBuild()
	if _, err := RunTrajectory(unbound, rng); err == nil {
		t.Error("accepted unbound circuit")
	}
}

func TestTrajectoryRecordsMeasurements(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := circuit.NewBuilder(2).X(0).Measure(0).Measure(1).MustBuild()
	tr, err := RunTrajectory(c, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Bits) != 2 || tr.Bit(0) != 1 || tr.Bit(1) != 0 {
		t.Errorf("bits = %v, want [1 0]", tr.Bits)
	}
	if tr.Qubits[0] != 0 || tr.Qubits[1] != 1 {
		t.Errorf("qubits = %v", tr.Qubits)
	}
}

func TestMidCircuitCollapsePropagates(t *testing.T) {
	// Measure half a Bell pair mid-circuit: the partner qubit's later
	// measurement always agrees.
	rng := rand.New(rand.NewSource(3))
	c := circuit.NewBuilder(2).H(0).CX(0, 1).Measure(0).Measure(1).MustBuild()
	zeros, ones := 0, 0
	for trial := 0; trial < 300; trial++ {
		tr, err := RunTrajectory(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Bit(0) != tr.Bit(1) {
			t.Fatalf("trial %d: Bell halves disagree: %v", trial, tr.Bits)
		}
		if tr.Bit(0) == 0 {
			zeros++
		} else {
			ones++
		}
	}
	if zeros < 100 || ones < 100 {
		t.Errorf("outcome split %d/%d, want ≈150/150", zeros, ones)
	}
}

// Quantum teleportation with feed-forward: the canonical test that
// mid-circuit measurement + classically-controlled correction works.
func TestTeleportation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	theta, phi := 0.7, 1.1 // arbitrary state to teleport

	for trial := 0; trial < 100; trial++ {
		// Prepare |ψ⟩ on q0 (RY then RZ), entangle q1–q2, Bell-measure
		// q0,q1.
		pre := circuit.NewBuilder(3).
			RY(0, theta).RZ(0, phi). // the payload state
			H(1).CX(1, 2).           // shared Bell pair
			CX(0, 1).H(0).
			Measure(0).Measure(1).
			MustBuild()
		tr, err := RunTrajectory(pre, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Feed-forward corrections on q2: X^m1 then Z^m0.
		if tr.Bit(1) == 1 {
			tr.Final.Apply(circuit.Gate{Kind: circuit.X, Qubit: 2, Param: circuit.NoParam})
		}
		if tr.Bit(0) == 1 {
			tr.Final.Apply(circuit.Gate{Kind: circuit.Z, Qubit: 2, Param: circuit.NoParam})
		}
		// q2 must now hold |ψ⟩: compare against a directly prepared copy
		// via ⟨Z⟩ and ⟨X⟩ on the target qubit.
		ref, err := Run(circuit.NewBuilder(1).RY(0, theta).RZ(0, phi).MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := tr.Final.ExpectationZ(2), ref.ExpectationZ(0); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: teleported ⟨Z⟩ = %v, want %v (bits %v)", trial, got, want, tr.Bits)
		}
		// ⟨X⟩ via H-basis check.
		gotX := xExpectation(tr.Final, 2)
		wantX := xExpectation(ref, 0)
		if math.Abs(gotX-wantX) > 1e-9 {
			t.Fatalf("trial %d: teleported ⟨X⟩ = %v, want %v", trial, gotX, wantX)
		}
	}
}

func xExpectation(s *State, q int) float64 {
	c := s.Clone()
	c.Apply(circuit.Gate{Kind: circuit.H, Qubit: q, Param: circuit.NoParam})
	return c.ExpectationZ(q)
}
