package qsim

// Shard-execution support. The sharded statevector engine
// (internal/qsim/shard) stores amplitudes as independently allocated
// 2^k-amplitude chunks but must produce results bit-for-bit identical to
// the contiguous engine (DESIGN.md §13). The only way to guarantee that
// is to run the *same* fused program through the *same* kernels in the
// same per-amplitude order — so this file exports a compiled-program
// facade plus chunk-level kernel entry points, keeping every kernel and
// term type private to qsim while letting the shard package orchestrate
// where each sweep runs.
//
// Alignment invariant: a chunk's global base index is a multiple of the
// chunk length (itself a power of two ≥ 2·TileAmps in production), so
// for any qubit q with 2^q below the chunk length, the low bits of a
// global amplitude index equal the in-chunk index bits. That is what
// lets the contiguous pair/diagonal kernels run unmodified on a chunk:
// the pair decode, run boundaries and factor selection all agree with
// the dense sweep positioned at the chunk's base.

import (
	"math/rand"

	"qtenon/internal/circuit"
)

// TileAmps is the cache-tile size of the contiguous executor, exported
// so the shard package can size chunks as a whole number of tiles.
const TileAmps = tileAmps

// SampleBlock is the per-worker shot granularity of the samplers,
// exported so the sharded sampler uses the identical block/seed
// discipline (one serial seed draw per block ⇒ GOMAXPROCS-independent
// outcome streams).
const SampleBlock = sampleBlock

// OpKind distinguishes the three fused-operation shapes a compiled
// program contains.
type OpKind uint8

// The fused-op kinds, mirroring the private op1Q/opCX/opDiag tags.
const (
	Op1Q OpKind = iota
	OpCX
	OpDiag
)

// FusedProgram is a compiled fused-gate program plus the classified
// diagonal terms the tiled executor would use — the exact op stream
// State.applyFused runs, exposed for out-of-package executors. The
// zero value is ready; Compile recycles all internal storage, so a
// long-lived program is allocation-free in steady state.
type FusedProgram struct {
	fs    fuser
	ops   []fusedOp
	x     execScratch
	preps []diagPrep
}

// Compile fuses a bound gate list and classifies every diagonal batch.
// The program is valid until the next Compile.
func (p *FusedProgram) Compile(gates []circuit.Gate) {
	p.ops = fuse(gates, &p.fs)
	p.preps = p.x.prepare(p.ops)
}

// NumOps reports the compiled operation count.
func (p *FusedProgram) NumOps() int { return len(p.ops) }

// OpInfo reports the i-th op's kind and qubit operands: (q, -1) for a
// single-qubit matrix, (control, target) for a CX, and (-1, -1) for a
// diagonal batch (its per-term qubits stay private; ApplyDiagChunk
// handles them).
func (p *FusedProgram) OpInfo(i int) (kind OpKind, q, q2 int) {
	op := &p.ops[i]
	switch op.kind {
	case op1Q:
		return Op1Q, op.q, -1
	case opCX:
		return OpCX, op.q, op.q2
	default:
		return OpDiag, -1, -1
	}
}

// Apply1QChunk applies op i (which must be Op1Q with 2^(q+1) ≤ chunk
// length) to one amplitude chunk, dispatching the same real/complex
// kernel choice as the contiguous engine over the chunk's pairs.
//
//qtenon:hotpath
func (p *FusedProgram) Apply1QChunk(i int, re, im []float64) {
	op := &p.ops[i]
	stride := 1 << op.q
	if matIsReal(&op.u) {
		r := [4]float64{real(op.u[0]), real(op.u[1]), real(op.u[2]), real(op.u[3])}
		apply1QRealPairs(re, im, stride, r, 0, len(re)>>1)
		return
	}
	apply1QCmplxPairs(re, im, stride, &op.u, 0, len(re)>>1)
}

// Apply1QPairChunks applies op i (Op1Q on a qubit whose stride is the
// distance between the two chunks) as a cross-chunk butterfly: element j
// of chunk 0 pairs with element j of chunk 1. The float expressions are
// the contiguous kernels' inner loops verbatim, so the arithmetic —
// including the real-matrix specialization — is bit-identical.
//
//qtenon:hotpath
func (p *FusedProgram) Apply1QPairChunks(i int, re0, im0, re1, im1 []float64) {
	op := &p.ops[i]
	n := len(re0)
	r0 := re0[:n]
	m0 := im0[:n]
	r1 := re1[:n]
	m1 := im1[:n]
	if matIsReal(&op.u) {
		u00, u01 := real(op.u[0]), real(op.u[1])
		u10, u11 := real(op.u[2]), real(op.u[3])
		for x := 0; x < n; x++ {
			a0r, a0i := r0[x], m0[x]
			a1r, a1i := r1[x], m1[x]
			r0[x] = u00*a0r + u01*a1r
			m0[x] = u00*a0i + u01*a1i
			r1[x] = u10*a0r + u11*a1r
			m1[x] = u10*a0i + u11*a1i
		}
		return
	}
	u00r, u00i := real(op.u[0]), imag(op.u[0])
	u01r, u01i := real(op.u[1]), imag(op.u[1])
	u10r, u10i := real(op.u[2]), imag(op.u[2])
	u11r, u11i := real(op.u[3]), imag(op.u[3])
	for x := 0; x < n; x++ {
		a0r, a0i := r0[x], m0[x]
		a1r, a1i := r1[x], m1[x]
		r0[x] = (u00r*a0r - u00i*a0i) + (u01r*a1r - u01i*a1i)
		m0[x] = (u00r*a0i + u00i*a0r) + (u01r*a1i + u01i*a1r)
		r1[x] = (u10r*a0r - u10i*a0i) + (u11r*a1r - u11i*a1i)
		m1[x] = (u10r*a0i + u10i*a0r) + (u11r*a1i + u11i*a1r)
	}
}

// ApplyDiagChunk applies op i (OpDiag) to one amplitude chunk whose
// global base index is base (a multiple of the chunk length). Diagonal
// sweeps never couple amplitudes, so a chunk is always a complete,
// independent slice of the sweep; factors keyed on bits at or above the
// chunk length are constant across the chunk and resolved from base.
// Phase terms run before sign terms, exactly as in the tiled executor.
//
//qtenon:hotpath
func (p *FusedProgram) ApplyDiagChunk(i int, re, im []float64, base int) {
	pr := p.preps[i]
	applyPhaseTermsChunk(re, im, p.x.phases[pr.phaseOff:pr.phaseOff+pr.phaseLen], base)
	applySignTermsChunk(re, im, p.x.signs[pr.signOff:pr.signOff+pr.signLen], base)
}

// applyPhaseTermsChunk is applyPhaseTermsRange over a chunk at a global
// base offset: the per-run factor selection reads the *global* index
// bits, while the multiplies run on chunk-local storage. Runs whose
// stride meets or exceeds the chunk length collapse to one constant
// factor for the whole chunk.
//
//qtenon:hotpath
func applyPhaseTermsChunk(re, im []float64, terms []phaseTerm, base int) {
	n := len(re)
	for ti := range terms {
		t := &terms[ti]
		sA, sB := t.sA, t.sB
		step := 1 << sA
		if step > n {
			step = n // one run covers the chunk; factor from base below
		}
		for b := 0; b < n; b += step {
			g := base + b
			p := ((g >> sA) & 1) | (((g >> sB) & 1) << 1)
			cr, ci := t.fr[p], t.fi[p]
			end := b + step
			//lint:ignore floatcompare exact 1/0 factor tests select skip/real-scale fast paths; a tolerance would change numerics (DESIGN.md §11.2)
			if ci == 0 {
				//lint:ignore floatcompare exact 1 factor test selects the skip fast path; a tolerance would change numerics (DESIGN.md §11.2)
				if cr == 1 {
					continue
				}
				for j := b; j < end; j++ {
					re[j] *= cr
					im[j] *= cr
				}
				continue
			}
			for j := b; j < end; j++ {
				r, m := re[j], im[j]
				re[j] = r*cr - m*ci
				im[j] = r*ci + m*cr
			}
		}
	}
}

// applySignTermsChunk is applySignTermsRange over a chunk at a global
// base offset. Bits at or above the chunk length are constant across the
// chunk and folded out of the lut (selecting a half, or a single
// negate/skip decision); fully chunk-local terms reuse the contiguous
// sweep unchanged (chunk bounds satisfy its alignment contract).
//
//qtenon:hotpath
func applySignTermsChunk(re, im []float64, terms []signTerm, base int) {
	n := len(re)
	for ti := range terms {
		t := &terms[ti]
		if t.lut == 0 {
			continue
		}
		sA, sB := t.sA, t.sB
		if 1<<sA >= n {
			// Both bits constant (sA ≤ sB): the whole chunk shares one
			// factor pattern.
			p := ((base >> sA) & 1) | (((base >> sB) & 1) << 1)
			if t.lut>>p&1 != 0 {
				for j := 0; j < n; j++ {
					re[j] = -re[j]
					im[j] = -im[j]
				}
			}
			continue
		}
		if 1<<sB >= n {
			// Bit sB constant; select its lut half and sweep bit sA.
			l := (t.lut >> (2 * uint((base>>sB)&1))) & 3
			negateBit(re, im, sA, l&1 != 0, l>>1&1 != 0, 0, n)
			continue
		}
		applySignTermsRange(re, im, terms[ti:ti+1], 0, n)
	}
}

// ApplyCXChunk applies a CX whose control and target are both below the
// chunk length to one chunk — the contiguous swap kernel over the full
// chunk range.
//
//qtenon:hotpath
func ApplyCXChunk(re, im []float64, control, target int) {
	applyCXRange(re, im, 1<<control, 1<<target, 0, len(re))
}

// ApplyXChunk applies an unconditional X on a target below the chunk
// length — the shard-selected half of a CX whose control bit lives in
// the shard index. Pure swaps, hence exact.
//
//qtenon:hotpath
func ApplyXChunk(re, im []float64, target int) {
	mt := 1 << target
	for i := 0; i < len(re); i++ {
		if i&mt == 0 {
			j := i | mt
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// SwapWhereSetChunk swaps element j between two chunks for every j with
// the control bit set — a CX whose control is below the chunk length and
// whose target bit lives in the shard index. Pure swaps, hence exact.
//
//qtenon:hotpath
func SwapWhereSetChunk(re0, im0, re1, im1 []float64, control int) {
	mc := 1 << control
	n := len(re0)
	r0 := re0[:n]
	m0 := im0[:n]
	r1 := re1[:n]
	m1 := im1[:n]
	for b := mc; b < n; b += mc << 1 {
		for j := b; j < b+mc; j++ {
			r0[j], r1[j] = r1[j], r0[j]
			m0[j], m1[j] = m1[j], m0[j]
		}
	}
}

// Alias wraps the private Walker/Vose alias table for out-of-package
// samplers (the sharded engine's two-level sampler). The zero value is
// invalid; NewAlias builds one.
type Alias struct {
	t *aliasTable
}

// NewAlias builds an alias table over an (approximately normalized)
// distribution. When spare holds a retired table of sufficient capacity
// its storage is recycled, so steady-state rebuilds allocate nothing.
func NewAlias(p []float64, spare Alias) Alias {
	return Alias{t: newAliasTable(p, nil, spare.t)}
}

// Valid reports whether the table has been built.
func (a Alias) Valid() bool { return a.t != nil }

// Draw returns one index from the table's distribution: O(1), two RNG
// draws — identical to the contiguous sampler's per-shot cost.
func (a Alias) Draw(rng *rand.Rand) int { return a.t.draw(rng) }
