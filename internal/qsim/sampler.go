package qsim

import (
	"math/rand"
	qrng "qtenon/internal/rng"

	"qtenon/internal/par"
	"qtenon/internal/san"
)

// Measurement sampling. The old implementation rebuilt an O(2^n)
// cumulative distribution on every Sample call and binary-searched it
// per shot. This version builds a Walker/Vose alias table once per state
// (cached on the State, invalidated by any mutating kernel), giving O(1)
// per shot, and draws shots in parallel over fixed-size blocks.
//
// Determinism: each block of sampleBlock shots gets its own RNG seeded
// by one serial draw from the caller's RNG. The block partition depends
// only on the shot count, so a fixed caller seed produces an identical
// outcome stream at any GOMAXPROCS — and no worker ever touches the
// caller's (non-concurrency-safe) *rand.Rand.
//
// Memory discipline: the alias build works out of the owning State's
// scratch arena (probability snapshot, scaling array, worklists), so
// rebuilding the table after a state mutation reuses the previous
// build's storage. Only the table itself (prob/alias) is freshly
// allocated — it outlives the build and may be shared by clones.

// sampleBlock is the per-worker shot granularity.
const sampleBlock = 4096

// aliasTable is an immutable alias-method sampler over basis states.
type aliasTable struct {
	// prob[i] is the probability of keeping slot i when drawn; alias[i]
	// is the outcome used otherwise.
	prob  []float64
	alias []int32
}

// aliasBuildScratch is the reusable working memory of newAliasTable:
// everything the build touches that does not escape into the table.
type aliasBuildScratch struct {
	scaled       []float64
	small, large []int32
}

// newAliasTable builds the table in O(N) from an (approximately
// normalized) distribution. Exact zeros stay impossible: a zero-weight
// slot keeps probability 0 and always forwards to its alias. scratch
// may be nil; when provided, its buffers are recycled across builds.
// spare, when non-nil and unshared, donates its prob/alias storage to
// the new table (every slot is overwritten by the build).
func newAliasTable(p []float64, scratch *aliasBuildScratch, spare *aliasTable) *aliasTable {
	n := len(p)
	total := par.SumFloat64(n, func(lo, hi int) float64 {
		var t float64
		for _, v := range p[lo:hi] {
			t += v
		}
		return t
	})
	if total <= 0 {
		total = 1
	}
	var local aliasBuildScratch
	if scratch == nil {
		scratch = &local
	}
	t := spare
	if t == nil || cap(t.prob) < n {
		t = &aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	} else {
		t.prob = t.prob[:n]
		t.alias = t.alias[:n]
	}
	scaled := growFloat64(scratch.scaled[:0], n)
	small := scratch.small[:0]
	large := scratch.large[:0]
	scale := float64(n) / total
	for i, v := range p {
		scaled[i] = v * scale
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are within rounding of probability 1.
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		t.prob[s] = 1
		t.alias[s] = s
	}
	scratch.scaled = scaled
	scratch.small = small
	scratch.large = large
	return t
}

// draw returns one basis-state index: O(1) — one uniform slot pick plus
// one acceptance test.
func (t *aliasTable) draw(rng *rand.Rand) int {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// ensureSampler returns the cached alias table, building it (through the
// State's scratch arena) if a mutation invalidated it.
func (s *State) ensureSampler() *aliasTable {
	t := s.sampler
	if t == nil {
		s.probScratch = s.AppendProbabilities(s.probScratch[:0])
		t = newAliasTable(s.probScratch, &s.buildScratch, s.spareTable)
		s.spareTable = nil
		s.sampler = t
		s.samplerShared = false
	}
	return t
}

// Sample draws `shots` full-register measurement outcomes (basis-state
// indices, qubit 0 in bit 0) without collapsing the state. The alias
// table is cached on the State, so repeated sampling of an unchanged
// state costs O(shots) after the first call.
//
// rng must not be shared with other goroutines while Sample runs; it is
// consumed only on the calling goroutine (one seed draw per shot block),
// and each block samples from an independent derived sub-stream.
func (s *State) Sample(shots int, rng *rand.Rand) []uint64 {
	if shots <= 0 {
		return nil
	}
	return s.AppendSample(nil, shots, rng)
}

// AppendSample appends `shots` outcomes to dst and returns the extended
// slice — the reuse-friendly form of Sample (pass a recycled dst[:0] to
// make steady-state sampling allocation-free apart from the cached
// table). The outcome stream is identical to Sample's for the same rng
// state.
func (s *State) AppendSample(dst []uint64, shots int, rng *rand.Rand) []uint64 {
	if shots <= 0 {
		return dst
	}
	if san.Enabled {
		san.Verify("qsim.State.AppendSample", dst)
	}
	t := s.ensureSampler()
	start := len(dst)
	if tot := start + shots; tot <= cap(dst) {
		dst = dst[:tot]
	} else {
		next := make([]uint64, tot)
		copy(next, dst)
		dst = next
	}
	out := dst[start:]
	nblocks := (shots + sampleBlock - 1) / sampleBlock
	seeds := s.appendSeeds(nblocks, rng)
	par.Do(nblocks, func(b int) {
		sub := qrng.New(seeds[b])
		lo := b * sampleBlock
		hi := lo + sampleBlock
		if hi > shots {
			hi = shots
		}
		for k := lo; k < hi; k++ {
			out[k] = uint64(t.draw(sub))
		}
	})
	if san.Enabled {
		san.Plant("qsim.State.AppendSample", dst)
	}
	return dst
}

// appendSeeds draws one sub-stream seed per block into a reusable
// State-owned buffer (the draws happen serially on the caller's rng,
// exactly as before).
func (s *State) appendSeeds(nblocks int, rng *rand.Rand) []int64 {
	seeds := s.seedScratch[:0]
	for i := 0; i < nblocks; i++ {
		seeds = append(seeds, rng.Int63())
	}
	s.seedScratch = seeds
	return seeds
}
