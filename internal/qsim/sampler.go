package qsim

import (
	"math/rand"

	"qtenon/internal/par"
)

// Measurement sampling. The old implementation rebuilt an O(2^n)
// cumulative distribution on every Sample call and binary-searched it
// per shot. This version builds a Walker/Vose alias table once per state
// (cached on the State, invalidated by any mutating kernel), giving O(1)
// per shot, and draws shots in parallel over fixed-size blocks.
//
// Determinism: each block of sampleBlock shots gets its own RNG seeded
// by one serial draw from the caller's RNG. The block partition depends
// only on the shot count, so a fixed caller seed produces an identical
// outcome stream at any GOMAXPROCS — and no worker ever touches the
// caller's (non-concurrency-safe) *rand.Rand.

// sampleBlock is the per-worker shot granularity.
const sampleBlock = 4096

// aliasTable is an immutable alias-method sampler over basis states.
type aliasTable struct {
	// prob[i] is the probability of keeping slot i when drawn; alias[i]
	// is the outcome used otherwise.
	prob  []float64
	alias []int32
}

// newAliasTable builds the table in O(N) from an (approximately
// normalized) distribution. Exact zeros stay impossible: a zero-weight
// slot keeps probability 0 and always forwards to its alias.
func newAliasTable(p []float64) *aliasTable {
	n := len(p)
	total := par.SumFloat64(n, func(lo, hi int) float64 {
		var t float64
		for _, v := range p[lo:hi] {
			t += v
		}
		return t
	})
	if total <= 0 {
		total = 1
	}
	t := &aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	scale := float64(n) / total
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, v := range p {
		scaled[i] = v * scale
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are within rounding of probability 1.
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t
}

// draw returns one basis-state index: O(1) — one uniform slot pick plus
// one acceptance test.
func (t *aliasTable) draw(rng *rand.Rand) int {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// Sample draws `shots` full-register measurement outcomes (basis-state
// indices, qubit 0 in bit 0) without collapsing the state. The alias
// table is cached on the State, so repeated sampling of an unchanged
// state costs O(shots) after the first call.
//
// rng must not be shared with other goroutines while Sample runs; it is
// consumed only on the calling goroutine (one seed draw per shot block),
// and each block samples from an independent derived sub-stream.
func (s *State) Sample(shots int, rng *rand.Rand) []uint64 {
	if shots <= 0 {
		return nil
	}
	t := s.sampler
	if t == nil {
		t = newAliasTable(s.Probabilities())
		s.sampler = t
	}
	out := make([]uint64, shots)
	nblocks := (shots + sampleBlock - 1) / sampleBlock
	seeds := make([]int64, nblocks)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	par.Do(nblocks, func(b int) {
		sub := rand.New(rand.NewSource(seeds[b]))
		lo := b * sampleBlock
		hi := lo + sampleBlock
		if hi > shots {
			hi = shots
		}
		for k := lo; k < hi; k++ {
			out[k] = uint64(t.draw(sub))
		}
	})
	return out
}
