package metrics

import (
	"reflect"
	"sync"
	"testing"
)

// Nil registries and nil instruments must be silent no-ops: instrumented
// code attaches handles once and never nil-checks afterwards.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x.count")
	g := r.Gauge("x.gauge")
	tm := r.Timer("x.timer")
	if c != nil || g != nil || tm != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	c.Add(5)
	c.Inc()
	g.Set(9)
	tm.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || g.High() != 0 || tm.Count() != 0 || tm.Total() != 0 {
		t.Error("nil instruments reported non-zero values")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Timers) != 0 {
		t.Error("nil registry produced a non-empty snapshot")
	}
	if got := snap.Components(); len(got) != 0 {
		t.Errorf("nil registry components = %v", got)
	}
}

func TestZeroValueRegistryReady(t *testing.T) {
	var r Registry
	r.Counter("a.n").Add(3)
	if got := r.Counter("a.n").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
}

func TestInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same name resolved to different counters")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("same name resolved to different gauges")
	}
	if r.Timer("x") != r.Timer("x") {
		t.Error("same name resolved to different timers")
	}
}

func TestGaugeHighWater(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("q.depth")
	for _, v := range []int64{3, 7, 2, 5} {
		g.Set(v)
	}
	if g.Value() != 5 {
		t.Errorf("value = %d, want 5 (last set)", g.Value())
	}
	if g.High() != 7 {
		t.Errorf("high = %d, want 7", g.High())
	}
}

func TestTimerAccumulates(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("host.prep")
	tm.Observe(100)
	tm.Observe(250)
	if tm.Count() != 2 || tm.Total() != 350 {
		t.Errorf("timer = (%d, %d), want (2, 350)", tm.Count(), tm.Total())
	}
}

// Snapshots of the same state must be identical, including their JSON
// serialization (encoding/json sorts map keys).
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("slt.hits").Add(10)
		r.Counter("tilelink.beats_issued").Add(4)
		r.Gauge("sim.heap_depth").Set(6)
		r.Timer("host.prep_ps").Observe(1234)
		return r
	}
	a, b := build().Snapshot(), build().Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", a, b)
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("JSON serialization not deterministic:\n%s\n%s", ja, jb)
	}
	wantNames := []string{"host.prep_ps", "sim.heap_depth", "slt.hits", "tilelink.beats_issued"}
	if got := a.Names(); !reflect.DeepEqual(got, wantNames) {
		t.Errorf("Names() = %v, want %v", got, wantNames)
	}
	wantComponents := []string{"host", "sim", "slt", "tilelink"}
	if got := a.Components(); !reflect.DeepEqual(got, wantComponents) {
		t.Errorf("Components() = %v, want %v", got, wantComponents)
	}
}

// Snapshot must not alias live state: mutations after the snapshot stay
// invisible.
func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	snap := r.Snapshot()
	r.Counter("c").Add(41)
	if snap.Counters["c"] != 1 {
		t.Errorf("snapshot tracked later mutation: %d", snap.Counters["c"])
	}
}

// Two registries never share instruments — the isolation contract
// factory-minted backends rely on when sweeps run grid points
// concurrently. Run with -race.
func TestConcurrentInstanceIsolation(t *testing.T) {
	regs := [2]*Registry{NewRegistry(), NewRegistry()}
	var wg sync.WaitGroup
	for i, r := range regs {
		wg.Add(1)
		go func(i int, r *Registry) {
			defer wg.Done()
			n := int64(i+1) * 1000
			for k := int64(0); k < n; k++ {
				r.Counter("shared.name").Inc()
				r.Gauge("shared.gauge").Set(k)
				r.Timer("shared.timer").Observe(1)
			}
		}(i, r)
	}
	wg.Wait()
	for i, r := range regs {
		want := int64(i+1) * 1000
		if got := r.Counter("shared.name").Value(); got != want {
			t.Errorf("registry %d counter = %d, want %d (cross-instance sharing?)", i, got, want)
		}
		if got := r.Timer("shared.timer").Count(); got != want {
			t.Errorf("registry %d timer count = %d, want %d", i, got, want)
		}
		if got := r.Gauge("shared.gauge").High(); got != want-1 {
			t.Errorf("registry %d gauge high = %d, want %d", i, got, want-1)
		}
	}
}

// A single registry's instruments must be race-safe when one machine is
// observed while running (snapshots concurrent with updates).
func TestConcurrentUpdatesOneRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				r.Counter("c").Inc()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 2000 {
		t.Errorf("counter = %d, want 2000", got)
	}
}
