//go:build simsan

package metrics_test

import (
	"strings"
	"testing"

	"qtenon/internal/metrics"
)

func metricsMustPanic(t *testing.T, fragments []string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a simsan panic, got none")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v is not the simsan message string", r)
		}
		for _, frag := range fragments {
			if !strings.Contains(msg, frag) {
				t.Errorf("panic %q does not contain %q", msg, frag)
			}
		}
	}()
	f()
}

func TestSimsanCounterMonotone(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("slt.hits")
	c.Add(3)
	metricsMustPanic(t, []string{"simsan: metrics:", `counter "slt.hits"`, "monotone"}, func() {
		c.Add(-1)
	})
}

func TestSimsanTimerNonNegative(t *testing.T) {
	reg := metrics.NewRegistry()
	tm := reg.Timer("bus.beat_latency")
	tm.Observe(12)
	metricsMustPanic(t, []string{"simsan: metrics:", `timer "bus.beat_latency"`, "negative"}, func() {
		tm.Observe(-4)
	})
}

// Nil instruments stay no-ops under the sanitizer: the nil-sink
// contract outranks the checks.
func TestSimsanNilInstrumentsStayInert(t *testing.T) {
	var c *metrics.Counter
	var tm *metrics.Timer
	c.Add(-5)
	tm.Observe(-5)
}
