package metrics

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestRegistryStress hammers one registry from many goroutines doing
// everything at once — resolving instruments by name (shared and
// per-goroutine), updating them, and snapshotting mid-flight — which is
// the access pattern a scrape endpoint sees over a live machine. Run
// under -race in CI, this is the dynamic check behind the lockorder /
// chandiscipline static story: the registry's internal locking must
// neither race nor deadlock under full contention.
func TestRegistryStress(t *testing.T) {
	const (
		workers = 8
		iters   = 400
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := fmt.Sprintf("worker%d.count", w)
			for k := 0; k < iters; k++ {
				// Shared instruments: resolution races with resolution.
				r.Counter("stress.shared").Inc()
				r.Gauge("stress.depth").Set(int64(k))
				r.Timer("stress.lat").Observe(1)
				// Per-goroutine instrument: resolution races with updates.
				r.Counter(own).Inc()
				if k%16 == 0 {
					// Observation races with everything above.
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("stress.shared").Value(); got != workers*iters {
		t.Errorf("shared counter = %d, want %d", got, workers*iters)
	}
	if got := r.Timer("stress.lat").Count(); got != workers*iters {
		t.Errorf("timer count = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("stress.depth").High(); got != iters-1 {
		t.Errorf("gauge high-water = %d, want %d", got, iters-1)
	}
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("worker%d.count", w)
		if got := r.Counter(name).Value(); got != iters {
			t.Errorf("%s = %d, want %d", name, got, iters)
		}
	}

	// Quiescent snapshots must be deterministic and deep-equal: the
	// mid-flight snapshots above may observe torn cross-instrument
	// states, but once writers join, two observations agree exactly.
	a, b := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("quiescent snapshots differ:\n%+v\n%+v", a, b)
	}
}
