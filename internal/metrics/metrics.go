// Package metrics is the system-wide instrumentation registry: named
// counters, gauges (with high-water marks), and timers that every
// hardware and software layer of the reproduction reports into — the
// simulation kernel, the TileLink bus, the skip lookup table, the pulse
// pipeline, the controller instruction stream, and the host model.
//
// Design rules, mirrored from trace.Recorder:
//
//   - The zero Registry is ready to use; a nil *Registry is a valid
//     no-op sink that hands out nil instruments, and every instrument
//     method is nil-safe, so instrumented code never nil-checks.
//   - Instruments are resolved by name once (at attach time) and then
//     updated through the returned handle, keeping hot paths cheap.
//   - Names follow `component.metric` (e.g. "slt.hits",
//     "tilelink.beats_issued", "controller.instr.q_update"): the
//     component prefix is everything before the first dot, which is how
//     Snapshot.Components groups a run's coverage.
//   - Registries are never shared between machine instances: each
//     factory-minted backend owns its own, so concurrent sweeps stay
//     isolated. Instruments are individually race-safe regardless.
package metrics

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"qtenon/internal/san"
)

// Counter is a monotonically increasing accumulator.
type Counter struct {
	v    atomic.Int64
	name string // registry name, for sanitizer diagnostics
}

// Add increases the counter. Calling on a nil counter is a no-op.
// Counters are monotone; under the simsan build tag a negative delta
// panics naming the instrument.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	if san.Enabled && d < 0 {
		san.Failf("metrics", "counter %q decremented by %d — counters are monotone", c.name, d)
	}
	c.v.Add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the accumulated count; zero on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge tracks an instantaneous level and its high-water mark.
type Gauge struct {
	v, high atomic.Int64
	name    string // registry name, for sanitizer diagnostics
}

// Set records the current level and lifts the high-water mark if the
// level exceeds it. Calling on a nil gauge is a no-op. Under the simsan
// build tag each Set audits that the high-water mark ends at or above
// the level just set.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			break
		}
	}
	if san.Enabled {
		if h := g.high.Load(); h < v {
			san.Failf("metrics", "gauge %q high-water %d below the level %d just set", g.name, h, v)
		}
	}
}

// Value reports the last level set; zero on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High reports the high-water mark; zero on a nil gauge.
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.high.Load()
}

// Timer accumulates durations. The unit is the caller's (Qtenon layers
// observe sim.Time picoseconds); the registry only sums and counts.
type Timer struct {
	count, total atomic.Int64
	name         string // registry name, for sanitizer diagnostics
}

// Observe adds one duration sample. Calling on a nil timer is a no-op.
// Durations are non-negative; under the simsan build tag a negative
// sample panics naming the instrument.
func (t *Timer) Observe(d int64) {
	if t == nil {
		return
	}
	if san.Enabled && d < 0 {
		san.Failf("metrics", "timer %q observed negative duration %d", t.name, d)
	}
	t.count.Add(1)
	t.total.Add(d)
}

// Count reports the number of samples; zero on a nil timer.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total reports the summed durations; zero on a nil timer.
func (t *Timer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// Registry is a named collection of instruments. The zero Registry is
// ready; a nil *Registry hands out nil (no-op) instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter, which is a valid no-op instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use. Nil-safe.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timers == nil {
		r.timers = make(map[string]*Timer)
	}
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{name: name}
		r.timers[name] = t
	}
	return t
}

// GaugeValue is a gauge's state in a snapshot.
type GaugeValue struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// TimerValue is a timer's state in a snapshot.
type TimerValue struct {
	Count int64 `json:"count"`
	Total int64 `json:"total"`
}

// Snapshot is a point-in-time copy of every instrument. Map keys are
// instrument names; JSON marshaling sorts keys, so serialization is
// deterministic.
type Snapshot struct {
	Counters map[string]int64      `json:"counters,omitempty"`
	Gauges   map[string]GaugeValue `json:"gauges,omitempty"`
	Timers   map[string]TimerValue `json:"timers,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields
// the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]GaugeValue, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = GaugeValue{Value: g.Value(), High: g.High()}
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerValue, len(r.timers))
		for n, t := range r.timers {
			s.Timers[n] = TimerValue{Count: t.Count(), Total: t.Total()}
		}
	}
	return s
}

// Names lists every instrument name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Timers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Components lists the distinct component prefixes (the part of each
// name before the first dot), sorted — the coverage summary the
// acceptance harness checks.
func (s Snapshot) Components() []string {
	seen := map[string]bool{}
	for _, n := range s.Names() {
		c := n
		if i := strings.IndexByte(n, '.'); i >= 0 {
			c = n[:i]
		}
		seen[c] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// JSON renders the snapshot as indented JSON with deterministic key
// order (encoding/json sorts map keys).
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }
