package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a pragmatic OpenQASM 2.0 subset — enough to
// round-trip every circuit the workloads generate. The decoupled baseline
// system compiles circuits through this textual form (the paper's baseline
// pipeline is Qiskit → OpenQASM → FPGA binary), so its size and parse cost
// are part of the baseline cost model.

// WriteQASM serializes a fully bound circuit (no free parameters) as
// OpenQASM 2.0.
func WriteQASM(w io.Writer, c *Circuit) error {
	if c.NumParams != 0 {
		return fmt.Errorf("qasm: circuit has %d unbound parameters", c.NumParams)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\ncreg c[%d];\n", c.NQubits, c.NQubits)
	for _, g := range c.Gates {
		switch {
		case g.Kind == Measure:
			fmt.Fprintf(bw, "measure q[%d] -> c[%d];\n", g.Qubit, g.Qubit)
		case g.Kind == I:
			fmt.Fprintf(bw, "id q[%d];\n", g.Qubit)
		case g.Kind.Arity() == 2 && g.Kind.Parameterized():
			fmt.Fprintf(bw, "%s(%s) q[%d],q[%d];\n", g.Kind, formatAngle(g.Theta), g.Qubit, g.Qubit2)
		case g.Kind.Arity() == 2:
			fmt.Fprintf(bw, "%s q[%d],q[%d];\n", g.Kind, g.Qubit, g.Qubit2)
		case g.Kind.Parameterized():
			fmt.Fprintf(bw, "%s(%s) q[%d];\n", g.Kind, formatAngle(g.Theta), g.Qubit)
		default:
			fmt.Fprintf(bw, "%s q[%d];\n", g.Kind, g.Qubit)
		}
	}
	return bw.Flush()
}

func formatAngle(theta float64) string { return strconv.FormatFloat(theta, 'g', 17, 64) }

// QASMString returns the OpenQASM text of c.
func QASMString(c *Circuit) (string, error) {
	var sb strings.Builder
	if err := WriteQASM(&sb, c); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// ParseQASM parses the subset emitted by WriteQASM.
func ParseQASM(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var c *Circuit
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		line = strings.TrimSuffix(line, ";")
		switch {
		case strings.HasPrefix(line, "OPENQASM"), strings.HasPrefix(line, "include"), strings.HasPrefix(line, "creg"):
			continue
		case strings.HasPrefix(line, "qreg"):
			n, err := parseRegSize(line)
			if err != nil {
				return nil, fmt.Errorf("qasm:%d: %v", lineno, err)
			}
			if n <= 0 {
				return nil, fmt.Errorf("qasm:%d: non-positive register size %d", lineno, n)
			}
			c = New(n)
		default:
			if c == nil {
				return nil, fmt.Errorf("qasm:%d: gate before qreg declaration", lineno)
			}
			g, err := parseGateLine(line)
			if err != nil {
				return nil, fmt.Errorf("qasm:%d: %v", lineno, err)
			}
			c.Gates = append(c.Gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration found")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseRegSize(line string) (int, error) {
	open, close := strings.IndexByte(line, '['), strings.IndexByte(line, ']')
	if open < 0 || close < open {
		return 0, fmt.Errorf("malformed register declaration %q", line)
	}
	return strconv.Atoi(line[open+1 : close])
}

func parseGateLine(line string) (Gate, error) {
	if strings.HasPrefix(line, "measure") {
		rest := strings.TrimSpace(strings.TrimPrefix(line, "measure"))
		qpart, _, _ := strings.Cut(rest, "->")
		q, err := parseQubitRef(strings.TrimSpace(qpart))
		if err != nil {
			return Gate{}, err
		}
		return Gate{Kind: Measure, Qubit: q, Param: NoParam}, nil
	}
	name, rest, ok := cutAny(line, " \t")
	if !ok {
		return Gate{}, fmt.Errorf("malformed gate line %q", line)
	}
	theta := 0.0
	if open := strings.IndexByte(name, '('); open >= 0 {
		close := strings.LastIndexByte(name, ')')
		if close < open {
			return Gate{}, fmt.Errorf("malformed angle in %q", line)
		}
		var err error
		theta, err = strconv.ParseFloat(name[open+1:close], 64)
		if err != nil {
			return Gate{}, fmt.Errorf("bad angle in %q: %v", line, err)
		}
		name = name[:open]
	}
	if name == "id" {
		name = "i"
	}
	kind, ok := KindByName(name)
	if !ok {
		return Gate{}, fmt.Errorf("unknown gate %q", name)
	}
	var qubits []int
	for _, ref := range strings.Split(rest, ",") {
		q, err := parseQubitRef(strings.TrimSpace(ref))
		if err != nil {
			return Gate{}, err
		}
		qubits = append(qubits, q)
	}
	g := Gate{Kind: kind, Theta: theta, Param: NoParam}
	if len(qubits) != kind.Arity() {
		return Gate{}, fmt.Errorf("gate %s expects %d qubits, got %d", kind, kind.Arity(), len(qubits))
	}
	g.Qubit = qubits[0]
	if len(qubits) == 2 {
		g.Qubit2 = qubits[1]
	}
	return g, nil
}

func parseQubitRef(ref string) (int, error) {
	open, close := strings.IndexByte(ref, '['), strings.IndexByte(ref, ']')
	if open < 0 || close < open {
		return 0, fmt.Errorf("malformed qubit reference %q", ref)
	}
	return strconv.Atoi(ref[open+1 : close])
}

func cutAny(s, cutset string) (before, after string, found bool) {
	if i := strings.IndexAny(s, cutset); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:]), true
	}
	return s, "", false
}
