// Package circuit defines the quantum circuit intermediate representation
// shared by the whole system: the compiler lowers circuits to .program
// entries, the statevector simulator executes them, the chip timing model
// schedules them, and the VQA workloads build them.
//
// Circuits are parameterized: a gate either carries a fixed angle or
// references a named parameter slot. Binding a parameter vector yields the
// concrete angles; this is the "quantum locality" the paper exploits —
// between optimizer iterations only parameter values change, never the
// circuit structure.
package circuit

import "fmt"

// Kind identifies a gate type. The numeric values double as the 4-bit
// `type` field of a Qtenon .program entry (Table 2), so they must stay
// within 0..15.
type Kind uint8

// The supported gate set. Rotation gates take one angle; fixed gates take
// none. Measure reads out a single qubit in the computational basis.
const (
	I Kind = iota // identity / explicit idle
	X
	Y
	Z
	H
	S
	T
	RX
	RY
	RZ
	CZ  // controlled-Z (symmetric two-qubit)
	CX  // controlled-X (CNOT); Qubit is control, Qubit2 target
	RZZ // exp(-i θ/2 Z⊗Z), the QAOA cost-layer primitive
	Measure
	numKinds
)

var kindNames = [numKinds]string{
	I: "i", X: "x", Y: "y", Z: "z", H: "h", S: "s", T: "t",
	RX: "rx", RY: "ry", RZ: "rz", CZ: "cz", CX: "cx", RZZ: "rzz",
	Measure: "measure",
}

// String returns the lowercase OpenQASM-style mnemonic.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindByName maps a mnemonic back to its Kind. ok is false for unknown
// names.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Arity reports how many qubits the gate acts on (1 or 2).
func (k Kind) Arity() int {
	switch k {
	case CZ, CX, RZZ:
		return 2
	default:
		return 1
	}
}

// Parameterized reports whether the gate carries a rotation angle.
func (k Kind) Parameterized() bool {
	switch k {
	case RX, RY, RZ, RZZ:
		return true
	default:
		return false
	}
}

// NoParam marks a gate whose angle is fixed (Theta) rather than bound to a
// parameter slot.
const NoParam = -1

// Gate is one operation in a circuit.
//
// For two-qubit gates Qubit is the first operand (control for CX) and
// Qubit2 the second. For one-qubit gates Qubit2 is unused. Param is the
// index of the parameter slot whose value supplies the angle, or NoParam
// when Theta is the literal angle.
type Gate struct {
	Kind   Kind
	Qubit  int
	Qubit2 int
	Theta  float64
	Param  int
}

// Angle resolves the gate's rotation angle against a parameter vector.
// Gates with fixed angles ignore params.
func (g Gate) Angle(params []float64) float64 {
	if g.Param == NoParam {
		return g.Theta
	}
	return params[g.Param]
}

// String renders the gate in a compact assembly-like form.
func (g Gate) String() string {
	switch {
	case g.Kind.Arity() == 2 && g.Kind.Parameterized():
		return fmt.Sprintf("%s(%s) q%d,q%d", g.Kind, g.angleString(), g.Qubit, g.Qubit2)
	case g.Kind.Arity() == 2:
		return fmt.Sprintf("%s q%d,q%d", g.Kind, g.Qubit, g.Qubit2)
	case g.Kind.Parameterized():
		return fmt.Sprintf("%s(%s) q%d", g.Kind, g.angleString(), g.Qubit)
	default:
		return fmt.Sprintf("%s q%d", g.Kind, g.Qubit)
	}
}

func (g Gate) angleString() string {
	if g.Param != NoParam {
		return fmt.Sprintf("p%d", g.Param)
	}
	return fmt.Sprintf("%g", g.Theta)
}
