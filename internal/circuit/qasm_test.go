package circuit

import (
	"math/rand"
	"strings"
	"testing"
)

func TestQASMRoundTrip(t *testing.T) {
	c := NewBuilder(3).
		H(0).X(1).CX(0, 1).CZ(1, 2).RX(0, 0.125).RY(1, -2.5).RZ(2, 3.14159).
		RZZ(0, 2, 0.75).MeasureAll().MustBuild()
	text, err := QASMString(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"qreg q[3]", "cx q[0],q[1]", "rx(0.125) q[0]", "measure q[2] -> c[2]"} {
		if !strings.Contains(text, want) {
			t.Errorf("QASM missing %q in:\n%s", want, text)
		}
	}
	back, err := ParseQASM(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseQASM: %v\n%s", err, text)
	}
	if back.NQubits != c.NQubits || len(back.Gates) != len(c.Gates) {
		t.Fatalf("round trip: %d qubits %d gates, want %d/%d", back.NQubits, len(back.Gates), c.NQubits, len(c.Gates))
	}
	for i := range c.Gates {
		a, b := c.Gates[i], back.Gates[i]
		if a.Kind != b.Kind || a.Qubit != b.Qubit || a.Qubit2 != b.Qubit2 || a.Theta != b.Theta {
			t.Errorf("gate %d: %v != %v", i, a, b)
		}
	}
}

func TestQASMRejectsUnbound(t *testing.T) {
	c := NewBuilder(1).RXP(0, 0).MustBuild()
	if _, err := QASMString(c); err == nil {
		t.Error("QASMString accepted unbound circuit")
	}
}

func TestParseQASMErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"no qreg", "OPENQASM 2.0;\nh q[0];"},
		{"unknown gate", "qreg q[1];\nfrobnicate q[0];"},
		{"bad qubit ref", "qreg q[1];\nh q0;"},
		{"arity mismatch", "qreg q[2];\ncx q[0];"},
		{"out of range", "qreg q[1];\nh q[5];"},
	}
	for _, tt := range tests {
		if _, err := ParseQASM(strings.NewReader(tt.src)); err == nil {
			t.Errorf("%s: parse accepted %q", tt.name, tt.src)
		}
	}
}

func TestParseQASMSkipsCommentsAndBlank(t *testing.T) {
	src := "// header\nOPENQASM 2.0;\n\nqreg q[2];\ncreg c[2];\n// a gate\nh q[0];\nid q[1];\n"
	c, err := ParseQASM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 || c.Gates[0].Kind != H || c.Gates[1].Kind != I {
		t.Errorf("parsed gates = %v", c.Gates)
	}
}

// Property: random circuits round-trip through QASM exactly.
func TestQASMRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kinds := []Kind{I, X, Y, Z, H, S, T, RX, RY, RZ, CZ, CX, RZZ, Measure}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		b := NewBuilder(n)
		for g := 0; g < 30; g++ {
			k := kinds[rng.Intn(len(kinds))]
			q := rng.Intn(n)
			gate := Gate{Kind: k, Qubit: q, Param: NoParam}
			if k.Arity() == 2 {
				q2 := (q + 1 + rng.Intn(n-1)) % n
				gate.Qubit2 = q2
			}
			if k.Parameterized() {
				gate.Theta = rng.NormFloat64()
			}
			b.Gate(gate)
		}
		c := b.MustBuild()
		text, err := QASMString(c)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseQASM(strings.NewReader(text))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(back.Gates) != len(c.Gates) {
			t.Fatalf("trial %d: gate count %d != %d", trial, len(back.Gates), len(c.Gates))
		}
		for i := range c.Gates {
			if c.Gates[i] != back.Gates[i] {
				t.Fatalf("trial %d gate %d: %v != %v", trial, i, c.Gates[i], back.Gates[i])
			}
		}
	}
}
