package circuit

import (
	"testing"

	"qtenon/internal/sim"
)

func TestDefaultTiming(t *testing.T) {
	tm := DefaultTiming()
	if tm.OneQubit != 20*sim.Nanosecond || tm.TwoQubit != 40*sim.Nanosecond || tm.Measure != 600*sim.Nanosecond {
		t.Errorf("DefaultTiming = %+v, want paper values 20/40/600ns", tm)
	}
	if d := tm.GateDuration(H); d != 20*sim.Nanosecond {
		t.Errorf("GateDuration(H) = %v", d)
	}
	if d := tm.GateDuration(CX); d != 40*sim.Nanosecond {
		t.Errorf("GateDuration(CX) = %v", d)
	}
	if d := tm.GateDuration(Measure); d != 600*sim.Nanosecond {
		t.Errorf("GateDuration(Measure) = %v", d)
	}
}

func TestScheduleSequentialOnOneQubit(t *testing.T) {
	c := NewBuilder(1).H(0).RX(0, 1).Measure(0).MustBuild()
	s := ScheduleASAP(c, DefaultTiming())
	want := []sim.Time{0, 20 * sim.Nanosecond, 40 * sim.Nanosecond}
	for i, w := range want {
		if s.Start[i] != w {
			t.Errorf("gate %d start = %v, want %v", i, s.Start[i], w)
		}
	}
	if s.Duration != 640*sim.Nanosecond {
		t.Errorf("Duration = %v, want 640ns", s.Duration)
	}
	if s.Depth != 3 {
		t.Errorf("Depth = %d, want 3", s.Depth)
	}
}

func TestScheduleParallelQubits(t *testing.T) {
	// H on q0 and q1 run concurrently; CX must wait for both.
	c := NewBuilder(2).H(0).H(1).CX(0, 1).MustBuild()
	s := ScheduleASAP(c, DefaultTiming())
	if s.Start[0] != 0 || s.Start[1] != 0 {
		t.Errorf("independent gates not parallel: starts %v, %v", s.Start[0], s.Start[1])
	}
	if s.Start[2] != 20*sim.Nanosecond {
		t.Errorf("CX start = %v, want 20ns", s.Start[2])
	}
	if s.Duration != 60*sim.Nanosecond {
		t.Errorf("Duration = %v, want 60ns", s.Duration)
	}
	if s.Depth != 2 {
		t.Errorf("Depth = %d, want 2", s.Depth)
	}
}

func TestScheduleTwoQubitChainDependency(t *testing.T) {
	// CX(0,1) then CX(1,2): second depends on first through q1;
	// CX(3,4) is independent and starts at 0.
	c := NewBuilder(5).CX(0, 1).CX(1, 2).CX(3, 4).MustBuild()
	s := ScheduleASAP(c, DefaultTiming())
	if s.Start[1] != 40*sim.Nanosecond {
		t.Errorf("dependent CX start = %v, want 40ns", s.Start[1])
	}
	if s.Start[2] != 0 {
		t.Errorf("independent CX start = %v, want 0", s.Start[2])
	}
}

func TestDurationScalesWithLayers(t *testing.T) {
	tm := DefaultTiming()
	one := NewBuilder(4)
	two := NewBuilder(4)
	for q := 0; q < 4; q++ {
		one.RX(q, 1)
		two.RX(q, 1)
		two.RX(q, 2)
	}
	d1 := Duration(one.MustBuild(), tm)
	d2 := Duration(two.MustBuild(), tm)
	if d2 != 2*d1 {
		t.Errorf("two layers = %v, want double %v", d2, d1)
	}
}
