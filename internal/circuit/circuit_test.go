package circuit

import (
	"math"
	"testing"
)

func TestKindProperties(t *testing.T) {
	tests := []struct {
		k     Kind
		name  string
		arity int
		param bool
	}{
		{H, "h", 1, false},
		{X, "x", 1, false},
		{RX, "rx", 1, true},
		{RY, "ry", 1, true},
		{RZ, "rz", 1, true},
		{CZ, "cz", 2, false},
		{CX, "cx", 2, false},
		{RZZ, "rzz", 2, true},
		{Measure, "measure", 1, false},
	}
	for _, tt := range tests {
		if tt.k.String() != tt.name {
			t.Errorf("%v.String() = %q, want %q", tt.k, tt.k.String(), tt.name)
		}
		if tt.k.Arity() != tt.arity {
			t.Errorf("%v.Arity() = %d, want %d", tt.k, tt.k.Arity(), tt.arity)
		}
		if tt.k.Parameterized() != tt.param {
			t.Errorf("%v.Parameterized() = %v, want %v", tt.k, tt.k.Parameterized(), tt.param)
		}
		back, ok := KindByName(tt.name)
		if !ok || back != tt.k {
			t.Errorf("KindByName(%q) = %v,%v", tt.name, back, ok)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Error("KindByName accepted unknown name")
	}
	// Program-entry type field is 4 bits (Table 2): all kinds must fit.
	if numKinds > 16 {
		t.Errorf("gate kinds (%d) exceed the 4-bit type field", numKinds)
	}
}

func TestBuilderAndValidate(t *testing.T) {
	c := NewBuilder(3).
		H(0).CX(0, 1).RYP(2, 0).RZZP(0, 2, 1).RZ(1, 0.5).MeasureAll().
		MustBuild()
	if c.NQubits != 3 {
		t.Errorf("NQubits = %d", c.NQubits)
	}
	if c.NumParams != 2 {
		t.Errorf("NumParams = %d, want 2", c.NumParams)
	}
	if len(c.Gates) != 8 {
		t.Errorf("len(Gates) = %d, want 8", len(c.Gates))
	}
	ct := c.Count()
	if ct.OneQubit != 3 || ct.TwoQubit != 2 || ct.Measure != 3 || ct.Param != 2 {
		t.Errorf("Count = %+v", ct)
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name string
		c    *Circuit
	}{
		{"qubit out of range", &Circuit{NQubits: 2, Gates: []Gate{{Kind: H, Qubit: 2, Param: NoParam}}}},
		{"negative qubit", &Circuit{NQubits: 2, Gates: []Gate{{Kind: H, Qubit: -1, Param: NoParam}}}},
		{"duplicate operands", &Circuit{NQubits: 2, Gates: []Gate{{Kind: CX, Qubit: 1, Qubit2: 1, Param: NoParam}}}},
		{"param on fixed gate", &Circuit{NQubits: 2, NumParams: 1, Gates: []Gate{{Kind: H, Qubit: 0, Param: 0}}}},
		{"param out of range", &Circuit{NQubits: 2, NumParams: 1, Gates: []Gate{{Kind: RX, Qubit: 0, Param: 3}}}},
	}
	for _, tt := range tests {
		if err := tt.c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid circuit", tt.name)
		}
	}
}

func TestBind(t *testing.T) {
	c := NewBuilder(2).RXP(0, 0).RYP(1, 1).RX(0, 7).MustBuild()
	b := c.Bind([]float64{0.25, -1.5})
	if b.NumParams != 0 {
		t.Errorf("bound NumParams = %d", b.NumParams)
	}
	angles := []float64{0.25, -1.5, 7}
	for i, g := range b.Gates {
		if g.Param != NoParam {
			t.Errorf("gate %d still has Param %d", i, g.Param)
		}
		if g.Theta != angles[i] {
			t.Errorf("gate %d Theta = %v, want %v", i, g.Theta, angles[i])
		}
	}
	// Original untouched.
	if c.Gates[0].Param != 0 || c.NumParams != 2 {
		t.Error("Bind mutated the source circuit")
	}
}

func TestAngleResolution(t *testing.T) {
	g := Gate{Kind: RX, Param: 1}
	if got := g.Angle([]float64{9, 4}); got != 4 {
		t.Errorf("Angle = %v, want 4", got)
	}
	g = Gate{Kind: RX, Theta: 2.5, Param: NoParam}
	if got := g.Angle(nil); got != 2.5 {
		t.Errorf("fixed Angle = %v, want 2.5", got)
	}
}

func TestParamGates(t *testing.T) {
	c := NewBuilder(2).RXP(0, 0).RYP(1, 1).RZP(0, 0).MustBuild()
	pg := c.ParamGates()
	if len(pg) != 2 {
		t.Fatalf("len(ParamGates) = %d", len(pg))
	}
	if len(pg[0]) != 2 || pg[0][0] != 0 || pg[0][1] != 2 {
		t.Errorf("param 0 gates = %v, want [0 2]", pg[0])
	}
	if len(pg[1]) != 1 || pg[1][0] != 1 {
		t.Errorf("param 1 gates = %v, want [1]", pg[1])
	}
}

func TestGateString(t *testing.T) {
	tests := []struct {
		g    Gate
		want string
	}{
		{Gate{Kind: H, Qubit: 3, Param: NoParam}, "h q3"},
		{Gate{Kind: RX, Qubit: 0, Theta: 0.5, Param: NoParam}, "rx(0.5) q0"},
		{Gate{Kind: RX, Qubit: 0, Param: 4}, "rx(p4) q0"},
		{Gate{Kind: CX, Qubit: 0, Qubit2: 1, Param: NoParam}, "cx q0,q1"},
		{Gate{Kind: RZZ, Qubit: 1, Qubit2: 2, Theta: math.Pi, Param: NoParam}, "rzz(3.141592653589793) q1,q2"},
	}
	for _, tt := range tests {
		if got := tt.g.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c := NewBuilder(2).H(0).MustBuild()
	cl := c.Clone()
	cl.Gates[0].Qubit = 1
	if c.Gates[0].Qubit != 0 {
		t.Error("Clone shares gate storage")
	}
}
