package circuit

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplifyRemovesIdentity(t *testing.T) {
	c := NewBuilder(2).H(0).MustBuild()
	c.Gates = append([]Gate{{Kind: I, Qubit: 1, Param: NoParam}}, c.Gates...)
	s := Simplify(c)
	if len(s.Gates) != 1 || s.Gates[0].Kind != H {
		t.Errorf("gates = %v", s.Gates)
	}
}

func TestSimplifyCancelsSelfInverse(t *testing.T) {
	tests := []struct {
		name string
		c    *Circuit
		want int
	}{
		{"XX", NewBuilder(1).X(0).X(0).MustBuild(), 0},
		{"HH", NewBuilder(1).H(0).H(0).MustBuild(), 0},
		{"ZZ", NewBuilder(1).Z(0).Z(0).MustBuild(), 0},
		{"YY", NewBuilder(1).Y(0).Y(0).MustBuild(), 0},
		{"CXCX", NewBuilder(2).CX(0, 1).CX(0, 1).MustBuild(), 0},
		{"CZCZ swapped operands", NewBuilder(2).CZ(0, 1).CZ(1, 0).MustBuild(), 0},
		{"CX reversed does NOT cancel", NewBuilder(2).CX(0, 1).CX(1, 0).MustBuild(), 2},
		{"XX with H between on same qubit", NewBuilder(1).X(0).H(0).X(0).MustBuild(), 3},
		{"XX with spectator between", NewBuilder(2).X(0).H(1).X(0).MustBuild(), 1},
		{"nested HH XX HH", NewBuilder(1).H(0).X(0).X(0).H(0).MustBuild(), 0},
	}
	for _, tt := range tests {
		if got := len(Simplify(tt.c).Gates); got != tt.want {
			t.Errorf("%s: %d gates, want %d (%v)", tt.name, got, tt.want, Simplify(tt.c).Gates)
		}
	}
}

func TestSimplifyMergesRotations(t *testing.T) {
	c := NewBuilder(1).RZ(0, 0.3).RZ(0, 0.5).MustBuild()
	s := Simplify(c)
	if len(s.Gates) != 1 || math.Abs(s.Gates[0].Theta-0.8) > 1e-12 {
		t.Errorf("gates = %v", s.Gates)
	}
	// Rotations summing to 2π vanish.
	c = NewBuilder(1).RX(0, math.Pi).RX(0, math.Pi).MustBuild()
	if s := Simplify(c); len(s.Gates) != 0 {
		t.Errorf("RX(π)RX(π) not removed: %v", s.Gates)
	}
	// RZZ merges regardless of operand order.
	c = NewBuilder(2).RZZ(0, 1, 0.2).RZZ(1, 0, 0.3).MustBuild()
	s = Simplify(c)
	if len(s.Gates) != 1 || math.Abs(s.Gates[0].Theta-0.5) > 1e-12 {
		t.Errorf("RZZ merge = %v", s.Gates)
	}
}

func TestSimplifyFoldsPhaseGates(t *testing.T) {
	c := NewBuilder(1).S(0).S(0).MustBuild()
	s := Simplify(c)
	if len(s.Gates) != 1 || s.Gates[0].Kind != Z {
		t.Errorf("SS → %v, want Z", s.Gates)
	}
	// TT → S, and then with two more T: TTTT → SS → Z.
	c = NewBuilder(1).T(0).T(0).T(0).T(0).MustBuild()
	s = Simplify(c)
	if len(s.Gates) != 1 || s.Gates[0].Kind != Z {
		t.Errorf("TTTT → %v, want Z", s.Gates)
	}
}

func TestSimplifyPreservesParameterized(t *testing.T) {
	// Parameterized gates never merge — their value is set at runtime.
	c := NewBuilder(1).RXP(0, 0).RXP(0, 0).MustBuild()
	if s := Simplify(c); len(s.Gates) != 2 {
		t.Errorf("parameterized gates merged: %v", s.Gates)
	}
	// But fixed gates around them do.
	c = NewBuilder(1).X(0).X(0).RXP(0, 0).MustBuild()
	if s := Simplify(c); len(s.Gates) != 1 || s.Gates[0].Param != 0 {
		t.Errorf("gates = %v", s.Gates)
	}
}

func TestSimplifyMeasurementBarrier(t *testing.T) {
	c := NewBuilder(1).X(0).Measure(0).X(0).MustBuild()
	if s := Simplify(c); len(s.Gates) != 3 {
		t.Errorf("X·measure·X simplified across the measurement: %v", s.Gates)
	}
}

func TestSimplifyNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		c := randomCircuit(rng, 4, 30)
		s := Simplify(c)
		if len(s.Gates) > len(c.Gates) {
			t.Fatalf("trial %d: grew from %d to %d gates", trial, len(c.Gates), len(s.Gates))
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: invalid output: %v", trial, err)
		}
	}
}

func randomCircuit(rng *rand.Rand, n, gates int) *Circuit {
	kinds := []Kind{X, Y, Z, H, S, T, RX, RY, RZ, CZ, CX, RZZ}
	b := NewBuilder(n)
	for i := 0; i < gates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		g := Gate{Kind: k, Qubit: rng.Intn(n), Param: NoParam}
		if k.Arity() == 2 {
			g.Qubit2 = (g.Qubit + 1 + rng.Intn(n-1)) % n
		}
		if k.Parameterized() {
			// Bias toward repeatable angles so cancellations occur.
			g.Theta = []float64{math.Pi, -math.Pi, 0.5, -0.5, math.Pi / 2}[rng.Intn(5)]
		}
		b.Gate(g)
		// Occasionally duplicate the previous gate to create pairs.
		if rng.Intn(3) == 0 {
			b.Gate(g)
		}
	}
	return b.MustBuild()
}

func TestSimplifyReducesRedundantCircuits(t *testing.T) {
	// A circuit of deliberate redundancy must shrink substantially.
	b := NewBuilder(3)
	for i := 0; i < 10; i++ {
		b.H(0).H(0).X(1).X(1).CX(1, 2).CX(1, 2)
	}
	c := b.MustBuild()
	s := Simplify(c)
	if len(s.Gates) != 0 {
		t.Errorf("fully redundant circuit left %d gates: %v", len(s.Gates), s.Gates)
	}
}
