package circuit

import "math"

// Simplify performs peephole optimization on a circuit, returning a new
// circuit that is semantically identical (same unitary up to global
// phase) with no more gates than the input:
//
//   - identity gates are removed;
//   - adjacent self-inverse pairs cancel (X·X, Y·Y, Z·Z, H·H, and
//     CX/CZ pairs on the same operands);
//   - adjacent same-axis fixed rotations on one qubit merge
//     (RZ(a)·RZ(b) → RZ(a+b)), and merged rotations that are ≈0 mod 2π
//     vanish;
//   - S·S folds to Z, T·T folds to S.
//
// "Adjacent" means no intervening gate touches any operand qubit.
// Parameterized gates (Param != NoParam) are never merged or cancelled —
// their angles are unknown until q_update time — but fixed gates around
// them still simplify. Measurements are barriers on their qubit.
//
// The pass runs to a fixpoint, so cancellations exposed by earlier
// removals are found.
func Simplify(c *Circuit) *Circuit {
	out := c.Clone()
	for {
		before := len(out.Gates)
		out.Gates = simplifyOnce(out.Gates)
		if len(out.Gates) == before {
			return out
		}
	}
}

func simplifyOnce(gates []Gate) []Gate {
	alive := make([]bool, len(gates))
	work := make([]Gate, len(gates))
	copy(work, gates)
	for i := range alive {
		alive[i] = true
	}

	for i := range work {
		if !alive[i] {
			continue
		}
		g := work[i]
		if g.Kind == I {
			alive[i] = false
			continue
		}
		if g.Kind == Measure || g.Param != NoParam {
			continue
		}
		j := nextTouching(work, alive, i)
		if j < 0 {
			continue
		}
		h := work[j]
		if h.Kind == Measure || h.Param != NoParam {
			continue
		}
		switch {
		case cancels(g, h):
			alive[i], alive[j] = false, false
		case mergeableRotation(g, h):
			sum := normalizeAngle(g.Theta + h.Theta)
			if math.Abs(sum) < 1e-12 {
				alive[i], alive[j] = false, false
			} else {
				work[j].Theta = sum
				alive[i] = false
			}
		case g.Kind == S && h.Kind == S && g.Qubit == h.Qubit:
			work[j] = Gate{Kind: Z, Qubit: g.Qubit, Param: NoParam}
			alive[i] = false
		case g.Kind == T && h.Kind == T && g.Qubit == h.Qubit:
			work[j] = Gate{Kind: S, Qubit: g.Qubit, Param: NoParam}
			alive[i] = false
		}
	}

	var out []Gate
	for i, g := range work {
		if alive[i] {
			out = append(out, g)
		}
	}
	return out
}

// nextTouching finds the next alive gate after i that shares a qubit
// with gates[i], but only if NO other gate touches any of gate i's
// qubits in between AND the found gate's qubit set equals overlap needs:
// for cancellation/merging the two gates must have identical operand
// sets, so any partial overlap blocks.
func nextTouching(gates []Gate, alive []bool, i int) int {
	gi := gates[i]
	for j := i + 1; j < len(gates); j++ {
		if !alive[j] {
			continue
		}
		if !sharesQubit(gi, gates[j]) {
			continue
		}
		if sameOperands(gi, gates[j]) {
			return j
		}
		return -1 // partial overlap: blocked
	}
	return -1
}

func sharesQubit(a, b Gate) bool {
	if a.Qubit == b.Qubit {
		return true
	}
	if b.Kind.Arity() == 2 && a.Qubit == b.Qubit2 {
		return true
	}
	if a.Kind.Arity() == 2 {
		if a.Qubit2 == b.Qubit {
			return true
		}
		if b.Kind.Arity() == 2 && a.Qubit2 == b.Qubit2 {
			return true
		}
	}
	return false
}

func sameOperands(a, b Gate) bool {
	if a.Kind.Arity() != b.Kind.Arity() {
		return false
	}
	if a.Kind.Arity() == 1 {
		return a.Qubit == b.Qubit
	}
	direct := a.Qubit == b.Qubit && a.Qubit2 == b.Qubit2
	if a.Kind == CX || b.Kind == CX {
		// CX is direction-sensitive: control/target must match exactly.
		return direct
	}
	swapped := a.Qubit == b.Qubit2 && a.Qubit2 == b.Qubit
	return direct || swapped
}

// cancels reports whether g followed by h is the identity.
func cancels(g, h Gate) bool {
	if g.Kind != h.Kind || !sameOperands(g, h) {
		return false
	}
	switch g.Kind {
	case X, Y, Z, H, CZ:
		return true
	case CX:
		return g.Qubit == h.Qubit && g.Qubit2 == h.Qubit2
	default:
		return false
	}
}

// mergeableRotation reports whether two fixed rotations combine.
func mergeableRotation(g, h Gate) bool {
	if g.Kind != h.Kind || !g.Kind.Parameterized() {
		return false
	}
	if !sameOperands(g, h) {
		return false
	}
	if g.Kind == RZZ {
		return true // symmetric
	}
	return g.Kind.Arity() == 1
}

// normalizeAngle folds into (-π, π].
func normalizeAngle(t float64) float64 {
	t = math.Mod(t, 2*math.Pi)
	if t > math.Pi {
		t -= 2 * math.Pi
	}
	if t <= -math.Pi {
		t += 2 * math.Pi
	}
	return t
}
