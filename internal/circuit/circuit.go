package circuit

import (
	"fmt"
	"math"
)

// Circuit is an ordered list of gates over a fixed qubit register, plus
// the number of parameter slots the gates may reference.
//
// A Circuit is a value-ish type: Builders produce them, and consumers
// treat them as immutable. Clone before mutating a shared circuit.
type Circuit struct {
	NQubits int
	Gates   []Gate
	// NumParams is the size of the parameter vector expected by Bind and
	// Angle. Parameter indices in gates must be < NumParams.
	NumParams int
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: non-positive qubit count %d", n))
	}
	return &Circuit{NQubits: n}
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{NQubits: c.NQubits, NumParams: c.NumParams}
	out.Gates = append([]Gate(nil), c.Gates...)
	return out
}

// Validate checks qubit and parameter indices; it returns the first
// violation found.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		if int(g.Kind) >= int(numKinds) {
			return fmt.Errorf("circuit: gate %d has invalid kind %d", i, g.Kind)
		}
		if g.Qubit < 0 || g.Qubit >= c.NQubits {
			return fmt.Errorf("circuit: gate %d (%s) qubit %d out of range [0,%d)", i, g.Kind, g.Qubit, c.NQubits)
		}
		if g.Kind.Arity() == 2 {
			if g.Qubit2 < 0 || g.Qubit2 >= c.NQubits {
				return fmt.Errorf("circuit: gate %d (%s) qubit2 %d out of range", i, g.Kind, g.Qubit2)
			}
			if g.Qubit2 == g.Qubit {
				return fmt.Errorf("circuit: gate %d (%s) uses the same qubit twice", i, g.Kind)
			}
		}
		if g.Param != NoParam {
			if !g.Kind.Parameterized() {
				return fmt.Errorf("circuit: gate %d (%s) cannot take a parameter", i, g.Kind)
			}
			if g.Param < 0 || g.Param >= c.NumParams {
				return fmt.Errorf("circuit: gate %d references parameter %d, have %d", i, g.Param, c.NumParams)
			}
		}
	}
	return nil
}

// Bind returns a copy of the circuit with every parameter reference
// replaced by its concrete angle from params.
func (c *Circuit) Bind(params []float64) *Circuit {
	return c.BindInto(nil, params)
}

// BindInto is Bind over recycled storage: when dst is non-nil its gate
// slice's capacity is reused instead of allocating a fresh copy, and dst
// itself is returned. The system models call this once per cost
// evaluation with a dedicated scratch circuit, so steady-state binding
// allocates nothing. dst must not alias c, and its previous contents are
// destroyed.
func (c *Circuit) BindInto(dst *Circuit, params []float64) *Circuit {
	if len(params) != c.NumParams {
		panic(fmt.Sprintf("circuit: Bind with %d params, want %d", len(params), c.NumParams))
	}
	if dst == nil {
		dst = &Circuit{}
	}
	dst.NQubits = c.NQubits
	dst.NumParams = 0
	dst.Gates = append(dst.Gates[:0], c.Gates...)
	for i := range dst.Gates {
		g := &dst.Gates[i]
		if g.Param != NoParam {
			g.Theta = params[g.Param]
			g.Param = NoParam
		}
	}
	return dst
}

// CountKind reports how many gates of kind k the circuit contains.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// Counts summarizes the circuit's gate population.
type Counts struct {
	OneQubit int // non-measure single-qubit gates
	TwoQubit int
	Measure  int
	Param    int // gates referencing a parameter slot
	PerQubit []int
}

// Count tallies the circuit.
func (c *Circuit) Count() Counts {
	ct := Counts{PerQubit: make([]int, c.NQubits)}
	for _, g := range c.Gates {
		switch {
		case g.Kind == Measure:
			ct.Measure++
		case g.Kind.Arity() == 2:
			ct.TwoQubit++
			ct.PerQubit[g.Qubit2]++
		default:
			ct.OneQubit++
		}
		ct.PerQubit[g.Qubit]++
		if g.Param != NoParam {
			ct.Param++
		}
	}
	return ct
}

// ParamGates returns, for each parameter slot, the indices of gates bound
// to it. Slots with no users are present as empty slices.
func (c *Circuit) ParamGates() [][]int {
	out := make([][]int, c.NumParams)
	for i, g := range c.Gates {
		if g.Param != NoParam {
			out[g.Param] = append(out[g.Param], i)
		}
	}
	return out
}

// Builder incrementally constructs a circuit with a fluent interface.
type Builder struct {
	c   *Circuit
	err error
}

// NewBuilder starts a circuit over n qubits.
func NewBuilder(n int) *Builder { return &Builder{c: New(n)} }

func (b *Builder) add(g Gate) *Builder {
	b.c.Gates = append(b.c.Gates, g)
	return b
}

// Gate appends an arbitrary gate.
func (b *Builder) Gate(g Gate) *Builder { return b.add(g) }

// H, X, Y, Z, S, T append the corresponding fixed single-qubit gate.
func (b *Builder) H(q int) *Builder { return b.add(Gate{Kind: H, Qubit: q, Param: NoParam}) }
func (b *Builder) X(q int) *Builder { return b.add(Gate{Kind: X, Qubit: q, Param: NoParam}) }
func (b *Builder) Y(q int) *Builder { return b.add(Gate{Kind: Y, Qubit: q, Param: NoParam}) }
func (b *Builder) Z(q int) *Builder { return b.add(Gate{Kind: Z, Qubit: q, Param: NoParam}) }
func (b *Builder) S(q int) *Builder { return b.add(Gate{Kind: S, Qubit: q, Param: NoParam}) }
func (b *Builder) T(q int) *Builder { return b.add(Gate{Kind: T, Qubit: q, Param: NoParam}) }

// RX, RY, RZ append fixed-angle rotations.
func (b *Builder) RX(q int, theta float64) *Builder {
	return b.add(Gate{Kind: RX, Qubit: q, Theta: theta, Param: NoParam})
}
func (b *Builder) RY(q int, theta float64) *Builder {
	return b.add(Gate{Kind: RY, Qubit: q, Theta: theta, Param: NoParam})
}
func (b *Builder) RZ(q int, theta float64) *Builder {
	return b.add(Gate{Kind: RZ, Qubit: q, Theta: theta, Param: NoParam})
}

// RXP, RYP, RZP, RZZP append rotations bound to parameter slot p,
// growing the parameter count as needed.
func (b *Builder) RXP(q, p int) *Builder { return b.param(Gate{Kind: RX, Qubit: q, Param: p}) }
func (b *Builder) RYP(q, p int) *Builder { return b.param(Gate{Kind: RY, Qubit: q, Param: p}) }
func (b *Builder) RZP(q, p int) *Builder { return b.param(Gate{Kind: RZ, Qubit: q, Param: p}) }
func (b *Builder) RZZP(q1, q2, p int) *Builder {
	return b.param(Gate{Kind: RZZ, Qubit: q1, Qubit2: q2, Param: p})
}

func (b *Builder) param(g Gate) *Builder {
	if g.Param >= b.c.NumParams {
		b.c.NumParams = g.Param + 1
	}
	return b.add(g)
}

// CX, CZ append two-qubit gates.
func (b *Builder) CX(control, target int) *Builder {
	return b.add(Gate{Kind: CX, Qubit: control, Qubit2: target, Param: NoParam})
}
func (b *Builder) CZ(q1, q2 int) *Builder {
	return b.add(Gate{Kind: CZ, Qubit: q1, Qubit2: q2, Param: NoParam})
}

// RZZ appends a fixed-angle ZZ rotation.
func (b *Builder) RZZ(q1, q2 int, theta float64) *Builder {
	return b.add(Gate{Kind: RZZ, Qubit: q1, Qubit2: q2, Theta: theta, Param: NoParam})
}

// Measure appends a computational-basis measurement of qubit q.
func (b *Builder) Measure(q int) *Builder {
	return b.add(Gate{Kind: Measure, Qubit: q, Param: NoParam})
}

// MeasureAll measures every qubit in index order.
func (b *Builder) MeasureAll() *Builder {
	for q := 0; q < b.c.NQubits; q++ {
		b.Measure(q)
	}
	return b
}

// Build validates and returns the circuit.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.c.Validate(); err != nil {
		return nil, err
	}
	return b.c, nil
}

// MustBuild is Build for circuits constructed from trusted code paths.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// Pi is shorthand used throughout workload construction.
const Pi = math.Pi
