package circuit

import (
	"strings"
	"testing"
)

// FuzzParseQASM checks the parser never panics and that anything it
// accepts re-serializes and re-parses to the same gate list.
func FuzzParseQASM(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		"qreg q[1];\nrx(1.5) q[0];\nmeasure q[0] -> c[0];\n",
		"qreg q[3];\nrzz(-0.25) q[0],q[2];\nid q[1];",
		"// comment only",
		"qreg q[0];",
		"qreg q[1];\nh q[9];",
		"qreg q[2];\ncx q[0];",
		"qreg q[1];\nrx(nan) q[0];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseQASM(strings.NewReader(src))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted invalid circuit: %v", err)
		}
		text, err := QASMString(c)
		if err != nil {
			// Accepted circuits are always bound, so serialization must
			// work.
			t.Fatalf("accepted circuit failed to serialize: %v", err)
		}
		back, err := ParseQASM(strings.NewReader(text))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n%s", err, text)
		}
		if len(back.Gates) != len(c.Gates) {
			t.Fatalf("round trip changed gate count %d → %d", len(c.Gates), len(back.Gates))
		}
	})
}
