package circuit_test

// External test package: verifies Simplify's semantic contract against
// the statevector simulator (qsim imports circuit, so this must live
// outside package circuit to avoid an import cycle).

import (
	"math"
	"math/rand"
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
)

// Property: Simplify preserves the circuit's action on |0…0⟩ exactly
// (up to global phase), for random circuits engineered to contain
// cancellations.
func TestSimplifySemanticEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	kinds := []circuit.Kind{circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.T,
		circuit.RX, circuit.RY, circuit.RZ, circuit.CZ, circuit.CX, circuit.RZZ}
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(3)
		b := circuit.NewBuilder(n)
		for i := 0; i < 25; i++ {
			k := kinds[rng.Intn(len(kinds))]
			g := circuit.Gate{Kind: k, Qubit: rng.Intn(n), Param: circuit.NoParam}
			if k.Arity() == 2 {
				g.Qubit2 = (g.Qubit + 1 + rng.Intn(n-1)) % n
			}
			if k.Parameterized() {
				g.Theta = []float64{math.Pi, -math.Pi / 2, 0.7, 2 * math.Pi, 0.3}[rng.Intn(5)]
			}
			b.Gate(g)
			if rng.Intn(3) == 0 { // seed explicit pairs
				b.Gate(g)
			}
		}
		c := b.MustBuild()
		s := circuit.Simplify(c)
		orig, err := qsim.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		simp, err := qsim.Run(s)
		if err != nil {
			t.Fatalf("trial %d: simplified circuit invalid: %v", trial, err)
		}
		if f := orig.Fidelity(simp); math.Abs(f-1) > 1e-9 {
			t.Fatalf("trial %d: fidelity %v after simplification\noriginal:   %v\nsimplified: %v",
				trial, f, c.Gates, s.Gates)
		}
	}
}

// Simplify composes with Bind: simplifying then binding equals binding
// then simplifying, semantically.
func TestSimplifyCommutesWithBind(t *testing.T) {
	c := circuit.NewBuilder(2).
		H(0).H(0).RXP(0, 0).X(1).X(1).RZP(1, 1).CX(0, 1).CX(0, 1).
		MustBuild()
	params := []float64{0.4, -0.9}
	a, err := qsim.Run(circuit.Simplify(c).Bind(params))
	if err != nil {
		t.Fatal(err)
	}
	b, err := qsim.Run(circuit.Simplify(c.Bind(params)))
	if err != nil {
		t.Fatal(err)
	}
	if f := a.Fidelity(b); math.Abs(f-1) > 1e-9 {
		t.Errorf("fidelity = %v", f)
	}
}
