package circuit

import "qtenon/internal/sim"

// Timing holds the physical gate durations used to schedule a circuit on
// the quantum chip. Defaults follow §7.1 of the paper: 20 ns single-qubit
// gates, 40 ns two-qubit gates, 600 ns measurement (pulse plus an
// equivalent result-processing window is folded into Measure).
type Timing struct {
	OneQubit sim.Time
	TwoQubit sim.Time
	Measure  sim.Time
}

// DefaultTiming returns the paper's gate times.
func DefaultTiming() Timing {
	return Timing{
		OneQubit: 20 * sim.Nanosecond,
		TwoQubit: 40 * sim.Nanosecond,
		Measure:  600 * sim.Nanosecond,
	}
}

// GateDuration reports how long one gate occupies its qubits.
func (t Timing) GateDuration(k Kind) sim.Time {
	switch {
	case k == Measure:
		return t.Measure
	case k.Arity() == 2:
		return t.TwoQubit
	default:
		return t.OneQubit
	}
}

// Schedule is an ASAP (as-soon-as-possible) schedule of a circuit: each
// gate starts as soon as all its operand qubits are free. This mirrors how
// the timing controller issues pulses from per-qubit timing queues.
type Schedule struct {
	Start    []sim.Time // per gate, aligned with Circuit.Gates
	Duration sim.Time   // end of the last gate (the critical path)
	Depth    int        // number of gate "layers" on the critical path
}

// ScheduleASAP computes the ASAP schedule of c under timing t.
func ScheduleASAP(c *Circuit, t Timing) Schedule {
	free := make([]sim.Time, c.NQubits) // time each qubit becomes free
	depth := make([]int, c.NQubits)
	s := Schedule{Start: make([]sim.Time, len(c.Gates))}
	for i, g := range c.Gates {
		start := free[g.Qubit]
		d := depth[g.Qubit]
		if g.Kind.Arity() == 2 {
			if free[g.Qubit2] > start {
				start = free[g.Qubit2]
			}
			if depth[g.Qubit2] > d {
				d = depth[g.Qubit2]
			}
		}
		dur := t.GateDuration(g.Kind)
		end := start + dur
		s.Start[i] = start
		free[g.Qubit] = end
		depth[g.Qubit] = d + 1
		if g.Kind.Arity() == 2 {
			free[g.Qubit2] = end
			depth[g.Qubit2] = d + 1
		}
		if end > s.Duration {
			s.Duration = end
		}
		if d+1 > s.Depth {
			s.Depth = d + 1
		}
	}
	return s
}

// Duration is a convenience wrapper reporting only the critical-path
// duration of c under t.
func Duration(c *Circuit, t Timing) sim.Time { return ScheduleASAP(c, t).Duration }
