package controller

import (
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qcc"
	"qtenon/internal/rocc"
)

// q_gen with a packed (QAddress, length) range processes only the
// entries inside it; range zero means the whole program.
func TestQGenRange(t *testing.T) {
	m, err := NewMachine(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Two qubits, two distinct fixed gates each.
	c := circuit.NewBuilder(2).
		RX(0, 0.1).RX(0, 0.2).RX(1, 0.3).RX(1, 0.4).MeasureAll().
		MustBuild()
	words, err := m.LoadProgram(c, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	rs2, _ := rocc.PackTransfer(0, uint32(words))
	setRegs(m, map[int]uint64{1: 0x1000, 2: rs2})
	exec(t, m, "q_set x1, x2")

	// Range covering only qubit 0's chunk.
	cfg := qcc.DefaultConfig(2)
	q0range, _ := rocc.PackTransfer(uint64(cfg.ProgramBase(0)), uint32(cfg.ProgramEntries))
	m.Regs[5] = q0range
	exec(t, m, "q_gen x5")

	// Qubit 0's drive entries are valid; qubit 1's remain invalid.
	for i := 0; i < 2; i++ {
		e, _ := m.Cache().ReadProgram(0, i, qcc.HostAccess)
		if e.Status != qcc.StatusValid {
			t.Errorf("q0[%d] status = %d after ranged q_gen", i, e.Status)
		}
		e, _ = m.Cache().ReadProgram(1, i, qcc.HostAccess)
		if e.Status != qcc.StatusInvalid {
			t.Errorf("q1[%d] status = %d; ranged q_gen leaked", i, e.Status)
		}
	}

	// Zero range: process everything.
	m.Regs[5] = 0
	exec(t, m, "q_gen x5")
	for q := 0; q < 2; q++ {
		for i := 0; i < 2; i++ {
			e, _ := m.Cache().ReadProgram(q, i, qcc.HostAccess)
			if e.Status != qcc.StatusValid {
				t.Errorf("q%d[%d] status = %d after full q_gen", q, i, e.Status)
			}
		}
	}
}
