package controller

import (
	"testing"

	"qtenon/internal/rocc"
)

func TestNewMachineRejects(t *testing.T) {
	if _, err := NewMachine(0, 1); err == nil {
		t.Error("accepted zero qubits")
	}
	if _, err := NewMachine(-3, 1); err == nil {
		t.Error("accepted negative qubits")
	}
}

func TestExecAllErrorPaths(t *testing.T) {
	m, err := NewMachine(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Undecodable word.
	if err := m.ExecAll([]uint32{0x00000033}); err == nil {
		t.Error("ExecAll accepted non-custom-0 word")
	}
	// Decodable word whose execution fails (q_gen before q_set).
	w, _ := rocc.QGen(5).Encode()
	if err := m.ExecAll([]uint32{w}); err == nil {
		t.Error("ExecAll masked an execution error")
	}
}

func TestExecUnknownFunct(t *testing.T) {
	m, _ := NewMachine(2, 1)
	if err := m.Exec(rocc.Instruction{Funct: 99}); err == nil {
		t.Error("Exec accepted unknown funct")
	}
}

func TestQSetOddLengthRejected(t *testing.T) {
	m, words := ryMachine(t)
	_ = words
	rs2, _ := rocc.PackTransfer(0, 3) // odd word count: not entry-aligned
	m.Regs[1], m.Regs[2] = 0x1000, rs2
	if err := m.Exec(rocc.QSet(1, 2)); err == nil {
		t.Error("q_set accepted odd word count")
	}
}
