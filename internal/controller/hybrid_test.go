package controller

import (
	"math"
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qcc"
	"qtenon/internal/rocc"
)

// A complete hybrid quantum-classical optimization driven entirely
// through the ISA: every quantum interaction is a q_update / q_gen /
// q_run / q_acquire instruction against the machine, and the host reads
// results from its own memory after the barrier marks them. Minimizes
// ⟨Z⟩ = cos θ of RY(θ)|0⟩ by parameter-shift gradient descent; the
// optimum is θ = π.
func TestHybridLoopAtISALevel(t *testing.T) {
	m, err := NewMachine(1, 77)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.NewBuilder(1).RYP(0, 0).Measure(0).MustBuild()
	words, err := m.LoadProgram(c, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := qcc.DefaultConfig(1)
	const (
		shots   = 400
		hostBuf = 0x8000
		regBase = 3 // x3 = quantum addr, x4 = value, x6 = shots, x9 = token
	)
	_ = regBase

	// q_set once.
	rs2, _ := rocc.PackTransfer(0, uint32(words))
	m.Regs[1], m.Regs[2] = 0x1000, rs2
	if err := m.Exec(rocc.QSet(1, 2)); err != nil {
		t.Fatal(err)
	}

	// evaluate runs one cost evaluation ⟨Z⟩(θ) through the ISA.
	evaluate := func(theta float64) float64 {
		m.Regs[3] = uint64(cfg.RegfileBase())
		m.Regs[4] = uint64(qcc.QuantizeAngle(theta))
		if err := m.Exec(rocc.QUpdate(3, 4)); err != nil {
			t.Fatal(err)
		}
		m.Regs[5] = 0
		if err := m.Exec(rocc.QGen(5)); err != nil {
			t.Fatal(err)
		}
		m.Regs[6] = shots
		if err := m.Exec(rocc.QRun(6, 9)); err != nil {
			t.Fatal(err)
		}
		ac, _ := rocc.PackTransfer(uint64(cfg.MeasureBase()), shots)
		m.Regs[7], m.Regs[8] = hostBuf, ac
		if err := m.Exec(rocc.QAcquire(7, 8)); err != nil {
			t.Fatal(err)
		}
		// Host post-processing: read synchronized host memory.
		var z float64
		for i := 0; i < shots; i++ {
			addr := uint64(hostBuf) + uint64(i)*8
			if !m.Barrier().Query(addr) {
				t.Fatalf("shot %d not synchronized", i)
			}
			if m.ReadHostMem(addr)&1 == 0 {
				z++
			} else {
				z--
			}
		}
		return z / shots
	}

	theta := 0.6 // away from both stationary points
	const lr = 0.8
	for iter := 0; iter < 12; iter++ {
		grad := (evaluate(theta+math.Pi/2) - evaluate(theta-math.Pi/2)) / 2
		theta -= lr * grad
	}
	final := evaluate(theta)
	if final > -0.95 {
		t.Errorf("hybrid loop converged to ⟨Z⟩ = %v at θ = %v, want ≈ -1 at θ ≈ π", final, theta)
	}
	folded := math.Mod(theta, 2*math.Pi)
	if folded < 0 {
		folded += 2 * math.Pi
	}
	if math.Abs(folded-math.Pi) > 0.25 {
		t.Errorf("θ converged to %v, want ≈ π", folded)
	}
	// The ISA-level loop executed a realistic instruction mix.
	// 12 iterations × 2 shift evals × 4 instructions + q_set + final eval.
	if m.Executed < 12*2*4+1+4 {
		t.Errorf("only %d instructions executed", m.Executed)
	}
	if m.Elapsed() <= 0 {
		t.Error("no simulated time accumulated")
	}
}
