package controller

import (
	"math"
	"strings"
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/isa"
	"qtenon/internal/qcc"
	"qtenon/internal/rocc"
	"qtenon/internal/sim"
)

// bellMachine stages a parameterized single-qubit circuit RY(p0) on a
// 2-qubit machine.
func ryMachine(t *testing.T) (*Machine, int) {
	t.Helper()
	m, err := NewMachine(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.NewBuilder(2).RYP(0, 0).MeasureAll().MustBuild()
	words, err := m.LoadProgram(c, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	return m, words
}

// exec runs one assembled instruction.
func exec(t *testing.T, m *Machine, line string) {
	t.Helper()
	in, err := isa.Assemble(line)
	if err != nil {
		t.Fatalf("%q: %v", line, err)
	}
	if err := m.Exec(in); err != nil {
		t.Fatalf("%q: %v", line, err)
	}
}

// setRegs is a helper to preload host registers.
func setRegs(m *Machine, vals map[int]uint64) {
	for r, v := range vals {
		m.Regs[r] = v
	}
}

func TestFullInstructionSequence(t *testing.T) {
	m, words := ryMachine(t)
	cfg := qcc.DefaultConfig(2)

	// q_set: ship the staged image.
	rs2, err := rocc.PackTransfer(0, uint32(words))
	if err != nil {
		t.Fatal(err)
	}
	setRegs(m, map[int]uint64{1: 0x1000, 2: rs2})
	exec(t, m, "q_set x1, x2")

	// q_update: set parameter 0 to π (RY(π)|0⟩ = |1⟩).
	setRegs(m, map[int]uint64{
		3: uint64(cfg.RegfileBase()),
		4: uint64(qcc.QuantizeAngle(math.Pi)),
	})
	exec(t, m, "q_update x3, x4")

	// q_gen then q_run 200 shots.
	exec(t, m, "q_gen x5")
	setRegs(m, map[int]uint64{6: 200})
	exec(t, m, "q_run x9, x6")
	if m.Regs[9] != 200 {
		t.Errorf("q_run token = %d, want 200", m.Regs[9])
	}

	// All outcomes must have qubit 0 = 1 (deterministic RY(π)).
	win, err := m.MeasureWindow(50)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range win {
		if w&1 != 1 {
			t.Fatalf("shot %d: qubit0 = 0 after RY(π); q_update did not reach the physics", i)
		}
	}

	// q_acquire moves results to host memory and marks the barrier.
	ac, _ := rocc.PackTransfer(uint64(cfg.MeasureBase()), 10)
	setRegs(m, map[int]uint64{7: 0x8000, 8: ac})
	exec(t, m, "q_acquire x7, x8")
	if m.ReadHostMem(0x8000)&1 != 1 {
		t.Error("host memory missing acquired result")
	}
	if !m.Barrier().Query(0x8000) {
		t.Error("barrier not marked for acquired address")
	}
	if m.Barrier().Query(0x8000 + 10*8) {
		t.Error("barrier marked beyond the acquired range")
	}
	if m.Elapsed() <= 0 {
		t.Error("no simulated time elapsed")
	}
	if m.Executed != 5 {
		t.Errorf("Executed = %d, want 5", m.Executed)
	}
}

// The headline semantic property: updating one register flips the very
// next run's measurement statistics, with no recompilation in between.
func TestQUpdateChangesPhysics(t *testing.T) {
	m, words := ryMachine(t)
	cfg := qcc.DefaultConfig(2)
	rs2, _ := rocc.PackTransfer(0, uint32(words))
	setRegs(m, map[int]uint64{1: 0x1000, 2: rs2})
	exec(t, m, "q_set x1, x2")

	ones := func(angle float64) int {
		setRegs(m, map[int]uint64{
			3: uint64(cfg.RegfileBase()),
			4: uint64(qcc.QuantizeAngle(angle)),
			6: 400,
		})
		exec(t, m, "q_update x3, x4")
		exec(t, m, "q_gen x5")
		exec(t, m, "q_run x9, x6")
		win, err := m.MeasureWindow(400)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, w := range win {
			n += int(w & 1)
		}
		return n
	}
	if n := ones(0); n != 0 {
		t.Errorf("RY(0): %d ones, want 0", n)
	}
	if n := ones(math.Pi); n != 400 {
		t.Errorf("RY(π): %d ones, want 400", n)
	}
	mid := ones(math.Pi / 2)
	if mid < 140 || mid > 260 {
		t.Errorf("RY(π/2): %d ones of 400, want ≈200", mid)
	}
}

func TestExecAllAssembledProgram(t *testing.T) {
	m, words := ryMachine(t)
	cfg := qcc.DefaultConfig(2)
	rs2, _ := rocc.PackTransfer(0, uint32(words))
	setRegs(m, map[int]uint64{
		1: 0x1000, 2: rs2,
		3: uint64(cfg.RegfileBase()), 4: uint64(qcc.QuantizeAngle(math.Pi)),
		6: 50,
	})
	prog := `
q_set x1, x2
q_update x3, x4
q_gen x5
q_run x9, x6
`
	bin, err := isa.AssembleAll(strings.NewReader(prog))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ExecAll(bin); err != nil {
		t.Fatal(err)
	}
	if m.Regs[9] != 50 {
		t.Errorf("token = %d", m.Regs[9])
	}
}

func TestGuards(t *testing.T) {
	m, err := NewMachine(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// q_gen / q_run / q_set before staging a program.
	if err := m.Exec(rocc.QGen(5)); err == nil {
		t.Error("q_gen before q_set accepted")
	}
	if err := m.Exec(rocc.QRun(6, 9)); err == nil {
		t.Error("q_run before q_set accepted")
	}
	m.Regs[2], _ = rocc.PackTransfer(0, 2)
	if err := m.Exec(rocc.QSet(1, 2)); err == nil {
		t.Error("q_set before LoadProgram accepted")
	}
	// q_update must target .regfile.
	m2, words := ryMachine(t)
	rs2, _ := rocc.PackTransfer(0, uint32(words))
	setRegs(m2, map[int]uint64{1: 0x1000, 2: rs2})
	exec(t, m2, "q_set x1, x2")
	m2.Regs[3] = 0 // .program address, not .regfile
	m2.Regs[4] = 1
	if err := m2.Exec(rocc.QUpdate(3, 4)); err == nil {
		t.Error("q_update into .program accepted")
	}
	// q_acquire must read .measure.
	ac, _ := rocc.PackTransfer(0, 4) // .program address
	m2.Regs[7], m2.Regs[8] = 0x8000, ac
	if err := m2.Exec(rocc.QAcquire(7, 8)); err == nil {
		t.Error("q_acquire from .program accepted")
	}
	// Zero-length transfers.
	z, _ := rocc.PackTransfer(0, 0)
	m2.Regs[8] = z
	if err := m2.Exec(rocc.QAcquire(7, 8)); err == nil {
		t.Error("zero-length q_acquire accepted")
	}
	// Zero shots.
	m2.Regs[6] = 0
	if err := m2.Exec(rocc.QRun(6, 9)); err == nil {
		t.Error("zero-shot q_run accepted")
	}
}

func TestX0HardwiredZero(t *testing.T) {
	m, _ := ryMachine(t)
	m.Regs[0] = 42
	// Any Exec resets x0; use a failing op so no other state changes.
	m.Exec(rocc.QGen(5)) // errors (no q_set yet) but normalizes x0 first
	if m.Regs[0] != 0 {
		t.Errorf("x0 = %d, want 0", m.Regs[0])
	}
}

func TestElapsedAccumulatesQuantumTime(t *testing.T) {
	m, words := ryMachine(t)
	rs2, _ := rocc.PackTransfer(0, uint32(words))
	setRegs(m, map[int]uint64{1: 0x1000, 2: rs2, 6: 100})
	exec(t, m, "q_set x1, x2")
	exec(t, m, "q_gen x5")
	before := m.Elapsed()
	exec(t, m, "q_run x9, x6")
	// 100 shots × (RY 20ns + measure 600ns) = 62 µs of chip time.
	delta := m.Elapsed() - before
	if delta != 100*620*sim.Nanosecond {
		t.Errorf("q_run elapsed = %v, want 62µs", delta)
	}
}

func TestHostMemAlignment(t *testing.T) {
	m, _ := ryMachine(t)
	m.WriteHostMem(0x1003, 99) // misaligned writes normalize to 8 bytes
	if m.ReadHostMem(0x1000) != 99 {
		t.Error("host memory not word-normalized")
	}
}
