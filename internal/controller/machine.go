// Package controller implements an executable Qtenon machine: a RoCC
// instruction interpreter wired to the real hardware models — the
// quantum controller cache, SLT bank, pulse pipeline, TileLink bus, soft
// memory barrier, and quantum chip.
//
// Where internal/system models full optimization runs with critical-path
// accounting, this package executes literal instruction streams (as
// produced by internal/isa's assembler) with architectural side effects:
// q_update writes the .regfile, q_gen runs the pipeline, q_run executes
// the circuit with angles taken from the register file, and
// q_set/q_acquire move data between modeled host memory and the
// controller cache over the bus. It is the reproduction of the paper's
// claim that the quantum program is *computable data*: after q_update
// rewrites a register, the very next q_run produces physically different
// measurement statistics without recompilation.
package controller

import (
	"fmt"

	"qtenon/internal/circuit"
	"qtenon/internal/compiler"
	"qtenon/internal/metrics"
	"qtenon/internal/pipeline"
	"qtenon/internal/qcc"
	"qtenon/internal/quantum"
	"qtenon/internal/rocc"
	"qtenon/internal/sim"
	"qtenon/internal/slt"
	"qtenon/internal/tilelink"
)

// Machine is one host-plus-controller instance.
type Machine struct {
	// Regs is the host integer register file; x0 is hardwired to zero.
	Regs [32]uint64

	cacheCfg qcc.Config
	cache    *qcc.Cache
	bank     *slt.Bank
	pipe     *pipeline.Pipeline
	chip     *quantum.Chip
	bus      *tilelink.Bus
	rbq      *tilelink.RBQ
	wbq      *tilelink.WBQ
	barrier  *tilelink.Barrier
	clock    sim.Clock

	// source is the host-side circuit whose lowered image lives in
	// .program; q_run binds its parameters from the register file.
	source *compiler.Program
	ansatz *circuit.Circuit

	hostMem map[uint64]uint64

	elapsed sim.Time
	shots   int
	// Executed counts interpreted instructions.
	Executed int

	cInstr map[rocc.Funct]*metrics.Counter
}

// Instrument attaches the machine and its full hardware complement —
// bus, RBQ, WBQ, barrier, SLT bank, and pulse pipeline — to one metrics
// registry. The controller itself reports its instruction mix as
// "controller.instr.<name>" counters. Nil registry detaches.
func (m *Machine) Instrument(reg *metrics.Registry) {
	m.cInstr = map[rocc.Funct]*metrics.Counter{
		rocc.FnQUpdate:  reg.Counter("controller.instr.q_update"),
		rocc.FnQSet:     reg.Counter("controller.instr.q_set"),
		rocc.FnQAcquire: reg.Counter("controller.instr.q_acquire"),
		rocc.FnQGen:     reg.Counter("controller.instr.q_gen"),
		rocc.FnQRun:     reg.Counter("controller.instr.q_run"),
	}
	if reg == nil {
		m.cInstr = nil
	}
	m.bus.Instrument(reg)
	m.rbq.Instrument(reg)
	m.wbq.Instrument(reg)
	m.barrier.Instrument(reg)
	m.pipe.Instrument(reg)
}

// NewMachine builds a machine for registers of the given width.
func NewMachine(nqubits int, seed int64) (*Machine, error) {
	cfg := qcc.DefaultConfig(nqubits)
	cache, err := qcc.NewCache(cfg)
	if err != nil {
		return nil, err
	}
	bank := slt.NewBank(nqubits, cfg.PulseEntries)
	pipe, err := pipeline.New(pipeline.DefaultConfig(), cache, bank)
	if err != nil {
		return nil, err
	}
	chip, err := quantum.NewChip(nqubits, seed)
	if err != nil {
		return nil, err
	}
	bus, err := tilelink.NewBus(tilelink.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &Machine{
		cacheCfg: cfg,
		cache:    cache,
		bank:     bank,
		pipe:     pipe,
		chip:     chip,
		bus:      bus,
		rbq:      tilelink.NewRBQ(32, 8, 1<<20),
		wbq:      tilelink.NewWBQ(tilelink.WBQLanes, 16),
		barrier:  tilelink.NewBarrier(),
		clock:    sim.NewClock(1_000_000_000),
		hostMem:  make(map[uint64]uint64),
	}, nil
}

// Elapsed reports the simulated time consumed by executed instructions.
func (m *Machine) Elapsed() sim.Time { return m.elapsed }

// Cache exposes the controller cache (tests and tooling).
func (m *Machine) Cache() *qcc.Cache { return m.cache }

// Barrier exposes the soft memory barrier.
func (m *Machine) Barrier() *tilelink.Barrier { return m.barrier }

// WriteHostMem stores a 64-bit word in modeled host memory.
func (m *Machine) WriteHostMem(addr, v uint64) { m.hostMem[addr&^7] = v }

// ReadHostMem loads a 64-bit word from modeled host memory.
func (m *Machine) ReadHostMem(addr uint64) uint64 { return m.hostMem[addr&^7] }

// LoadProgram compiles a parameterized circuit, stages its wire image in
// host memory at base, and remembers it as the q_run source. It does NOT
// touch the controller: shipping happens through q_set, like real
// software. It returns the number of 64-bit words staged (two per
// program entry: packed-low, packed-high).
func (m *Machine) LoadProgram(c *circuit.Circuit, base uint64) (int, error) {
	prog, err := compiler.Compile(c, m.cacheCfg)
	if err != nil {
		return 0, err
	}
	m.source = prog
	m.ansatz = c
	words := 0
	addr := base
	for q := range prog.Entries {
		for _, e := range prog.Entries[q] {
			hi, lo, err := e.Pack()
			if err != nil {
				return 0, err
			}
			m.WriteHostMem(addr, lo)
			m.WriteHostMem(addr+8, uint64(hi))
			addr += 16
			words += 2
		}
	}
	return words, nil
}

// Exec interprets one instruction.
func (m *Machine) Exec(in rocc.Instruction) error {
	m.Regs[0] = 0
	m.Executed++
	m.cInstr[in.Funct].Inc()
	switch in.Funct {
	case rocc.FnQUpdate:
		return m.execUpdate(in)
	case rocc.FnQSet:
		return m.execSet(in)
	case rocc.FnQAcquire:
		return m.execAcquire(in)
	case rocc.FnQGen:
		return m.execGen(in)
	case rocc.FnQRun:
		return m.execRun(in)
	default:
		return fmt.Errorf("controller: unknown funct %v", in.Funct)
	}
}

// ExecAll interprets an encoded instruction stream.
func (m *Machine) ExecAll(words []uint32) error {
	for i, w := range words {
		in, err := rocc.Decode(w)
		if err != nil {
			return fmt.Errorf("controller: word %d: %w", i, err)
		}
		if err := m.Exec(in); err != nil {
			return fmt.Errorf("controller: word %d (%v): %w", i, in, err)
		}
	}
	return nil
}

// execUpdate: host register → quantum controller cache (datapath ❶,
// single cycle). rs1 holds the quantum address, rs2 the value.
func (m *Machine) execUpdate(in rocc.Instruction) error {
	qaddr := int64(m.Regs[in.RS1])
	loc, err := m.cacheCfg.Resolve(qaddr)
	if err != nil {
		return err
	}
	if loc.Segment != qcc.SegRegfile {
		return fmt.Errorf("controller: q_update targets %v, want .regfile", loc.Segment)
	}
	if err := m.cache.WriteReg(loc.Index, uint32(m.Regs[in.RS2]), qcc.HostAccess); err != nil {
		return err
	}
	m.elapsed += m.clock.Cycles(1)
	return nil
}

// execSet: host memory → controller cache over datapath ❷. rs1 holds
// the classical base address; rs2 packs (quantum address, word count).
func (m *Machine) execSet(in rocc.Instruction) error {
	if m.source == nil {
		return fmt.Errorf("controller: q_set before LoadProgram staged an image")
	}
	src := m.Regs[in.RS1]
	qaddr, length := rocc.UnpackTransfer(m.Regs[in.RS2])
	if length == 0 {
		return fmt.Errorf("controller: q_set with zero length")
	}
	if length%2 != 0 {
		return fmt.Errorf("controller: q_set length %d not entry-aligned (2 words/entry)", length)
	}
	// Time the bulk transfer on the bus.
	beats := (int(length)*8 + 31) / 32
	res, err := tilelink.Transfer(m.bus, m.rbq, src, beats, false, nil)
	if err != nil {
		return err
	}
	m.elapsed += m.clock.Cycles(res.Cycles)

	// Functional copy: pairs of words decode to program entries laid out
	// sequentially from qaddr through the QAddress map. Each 128-bit
	// entry image passes through the Write Buffer Queue's 32-bit lanes —
	// the width adaptation of Figure 5 — before reaching the public
	// cache's write port.
	addr := qaddr
	sindex := 0
	for w := uint32(0); w < length; w += 2 {
		lo := m.ReadHostMem(src + uint64(w)*8)
		hi8 := m.ReadHostMem(src + uint64(w)*8 + 8)
		words32 := []uint32{uint32(lo), uint32(lo >> 32), uint32(hi8), uint32(hi8 >> 32)}
		if !m.wbq.Enqueue(sindex, words32) {
			return fmt.Errorf("controller: WBQ backpressure mid-transfer")
		}
		var drained [4]uint32
		for i := range drained {
			v, ok := m.wbq.DrainLane((sindex + i) % tilelink.WBQLanes)
			if !ok {
				return fmt.Errorf("controller: WBQ lane %d empty on drain", (sindex+i)%tilelink.WBQLanes)
			}
			drained[i] = v
		}
		sindex = (sindex + 4) % tilelink.WBQLanes
		lo = uint64(drained[0]) | uint64(drained[1])<<32
		hi := uint8(uint64(drained[2]) | uint64(drained[3])<<32)
		e := qcc.UnpackEntry(hi, lo)
		loc, err := m.cacheCfg.Resolve(int64(addr))
		if err != nil {
			return err
		}
		if loc.Segment != qcc.SegProgram {
			return fmt.Errorf("controller: q_set targets %v, want .program", loc.Segment)
		}
		if err := m.cache.WriteProgram(loc.Qubit, loc.Index, e, qcc.HostAccess); err != nil {
			return err
		}
		// Advance through the program chunk; wrap to the next qubit's
		// chunk boundary like the sequential layout LoadProgram staged.
		if loc.Index+1 == len(m.source.Entries[loc.Qubit]) && loc.Qubit+1 < m.cacheCfg.NQubits {
			addr = uint64(m.cacheCfg.ProgramBase(loc.Qubit + 1))
		} else {
			addr++
		}
	}
	return nil
}

// execAcquire: controller cache → host memory. rs1 holds the classical
// destination; rs2 packs (quantum address, word count).
func (m *Machine) execAcquire(in rocc.Instruction) error {
	dst := m.Regs[in.RS1]
	qaddr, length := rocc.UnpackTransfer(m.Regs[in.RS2])
	if length == 0 {
		return fmt.Errorf("controller: q_acquire with zero length")
	}
	beats := (int(length)*8 + 31) / 32
	res, err := tilelink.Transfer(m.bus, m.rbq, dst, beats, true, make([]uint64, beats))
	if err != nil {
		return err
	}
	m.elapsed += m.clock.Cycles(res.Cycles)
	for w := uint32(0); w < length; w++ {
		loc, err := m.cacheCfg.Resolve(int64(qaddr) + int64(w))
		if err != nil {
			return err
		}
		if loc.Segment != qcc.SegMeasure {
			return fmt.Errorf("controller: q_acquire reads %v, want .measure", loc.Segment)
		}
		v, err := m.cache.ReadMeasure(loc.Index, qcc.HostAccess)
		if err != nil {
			return err
		}
		a := dst + uint64(w)*8
		m.WriteHostMem(a, v)
		m.barrier.MarkSynced(a)
	}
	return nil
}

// execGen: walk staged program entries through the pulse pipeline. When
// register rs2 is zero the whole program is processed; otherwise rs2
// packs a (QAddress, length) range and only entries inside it are
// generated — the fine-grained control that lets the host regenerate a
// single qubit chunk after a targeted q_update.
func (m *Machine) execGen(in rocc.Instruction) error {
	if m.source == nil {
		return fmt.Errorf("controller: q_gen before any q_set")
	}
	items := m.source.Items
	if rs2 := m.Regs[in.RS2]; rs2 != 0 {
		start, length := rocc.UnpackTransfer(rs2)
		end := int64(start) + int64(length)
		var sub []pipeline.WorkItem
		for _, it := range items {
			qa := m.cacheCfg.ProgramBase(it.Qubit) + int64(it.Index)
			if qa >= int64(start) && qa < end {
				sub = append(sub, it)
			}
		}
		items = sub
	}
	res, err := m.pipe.Run(items)
	if err != nil {
		return err
	}
	m.elapsed += m.clock.Cycles(res.Cycles)
	return nil
}

// execRun: execute the program for Regs[rs1] shots, with rotation angles
// resolved through the live register file, writing outcomes to .measure
// and the completion token to rd.
func (m *Machine) execRun(in rocc.Instruction) error {
	if m.ansatz == nil {
		return fmt.Errorf("controller: q_run before any q_set")
	}
	shots := int(m.Regs[in.RS1])
	if shots <= 0 {
		return fmt.Errorf("controller: q_run with %d shots", shots)
	}
	params := make([]float64, m.ansatz.NumParams)
	for p := range params {
		v, err := m.cache.ReadReg(m.source.ParamReg[p], qcc.HardwareAccess)
		if err != nil {
			return err
		}
		params[p] = qcc.DequantizeAngle(v)
	}
	bound := m.ansatz.Bind(params)
	ex, err := m.chip.Execute(bound, shots)
	if err != nil {
		return err
	}
	wordsPerShot := (m.ansatz.NQubits + 63) / 64
	for i, o := range ex.Outcomes {
		idx := (i * wordsPerShot) % m.cacheCfg.MeasureEntries
		if err := m.cache.WriteMeasure(idx, o, qcc.HardwareAccess); err != nil {
			return err
		}
	}
	m.shots = shots
	m.elapsed += ex.TotalTime()
	if in.XD {
		m.Regs[in.RD] = uint64(shots)
	}
	return nil
}

// MeasureWindow returns the first n .measure words (convenience for
// host-side post-processing in tests and examples).
func (m *Machine) MeasureWindow(n int) ([]uint64, error) {
	out := make([]uint64, n)
	for i := range out {
		v, err := m.cache.ReadMeasure(i, qcc.HostAccess)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
