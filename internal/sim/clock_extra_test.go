package sim

import (
	"testing"
	"testing/quick"
)

// Property: Cycles and CyclesIn are inverse for any cycle count, and
// CyclesCeil(Cycles(n)) == n exactly (no off-by-one at boundaries).
func TestClockInverseProperty(t *testing.T) {
	clocks := []Clock{
		NewClock(1_000_000_000),
		NewClock(2_000_000_000),
		NewClock(200_000_000),
		NewClock(5_000_000_000),
	}
	f := func(nRaw uint32) bool {
		n := int64(nRaw % 1_000_000)
		for _, c := range clocks {
			d := c.Cycles(n)
			if c.CyclesIn(d) != n {
				return false
			}
			if c.CyclesCeil(d) != n {
				return false
			}
			if n > 0 && c.CyclesCeil(d-1) != n {
				return false
			}
			if c.CyclesCeil(d+1) != n+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Time formatting covers negative values (used when printing deltas).
func TestTimeStringNegative(t *testing.T) {
	if got := (-500 * Picosecond).String(); got != "-500ps" {
		t.Errorf("String = %q", got)
	}
	if got := (-3 * Microsecond).String(); got != "-3µs" {
		t.Errorf("String = %q", got)
	}
}

func TestDurationConversion(t *testing.T) {
	if got := (1500 * Nanosecond).Duration().Nanoseconds(); got != 1500 {
		t.Errorf("Duration = %d ns", got)
	}
	// Sub-nanosecond truncates toward zero.
	if got := (500 * Picosecond).Duration().Nanoseconds(); got != 0 {
		t.Errorf("sub-ns Duration = %d", got)
	}
}
