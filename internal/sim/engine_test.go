package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	tests := []struct {
		in   Time
		ns   float64
		text string
	}{
		{500 * Picosecond, 0.5, "500ps"},
		{Nanosecond, 1, "1ns"},
		{20 * Nanosecond, 20, "20ns"},
		{600 * Nanosecond, 600, "600ns"},
		{Microsecond, 1000, "1µs"},
		{Millisecond, 1e6, "1ms"},
		{Second, 1e9, "1s"},
	}
	for _, tt := range tests {
		if got := tt.in.Nanoseconds(); got != tt.ns {
			t.Errorf("%d.Nanoseconds() = %v, want %v", int64(tt.in), got, tt.ns)
		}
		if got := tt.in.String(); got != tt.text {
			t.Errorf("%d.String() = %q, want %q", int64(tt.in), got, tt.text)
		}
	}
}

func TestFromNanoseconds(t *testing.T) {
	if got := FromNanoseconds(1.5); got != 1500*Picosecond {
		t.Errorf("FromNanoseconds(1.5) = %v ps, want 1500", int64(got))
	}
	if got := FromNanoseconds(0.0005); got != Picosecond {
		t.Errorf("FromNanoseconds(0.0005) = %v ps, want 1 (rounded)", int64(got))
	}
}

func TestClockConversions(t *testing.T) {
	tests := []struct {
		hz     int64
		period Time
	}{
		{1_000_000_000, Nanosecond},       // 1 GHz core
		{2_000_000_000, 500 * Picosecond}, // 2 GHz DAC
		{200_000_000, 5 * Nanosecond},     // 200 MHz SRAM
		{50_000_000, 20 * Nanosecond},     // 50 MHz FPGA build
	}
	for _, tt := range tests {
		c := NewClock(tt.hz)
		if c.Period() != tt.period {
			t.Errorf("NewClock(%d).Period() = %v, want %v", tt.hz, c.Period(), tt.period)
		}
		if c.Hz() != tt.hz {
			t.Errorf("NewClock(%d).Hz() = %d", tt.hz, c.Hz())
		}
		if got := c.Cycles(1000); got != 1000*tt.period {
			t.Errorf("Cycles(1000) = %v, want %v", got, 1000*tt.period)
		}
		if got := c.CyclesIn(c.Cycles(17)); got != 17 {
			t.Errorf("CyclesIn(Cycles(17)) = %d, want 17", got)
		}
	}
}

func TestClockCyclesCeil(t *testing.T) {
	c := NewClock(1_000_000_000) // 1 ns period
	if got := c.CyclesCeil(2500 * Picosecond); got != 3 {
		t.Errorf("CyclesCeil(2.5ns) = %d, want 3", got)
	}
	if got := c.CyclesCeil(3 * Nanosecond); got != 3 {
		t.Errorf("CyclesCeil(3ns) = %d, want 3", got)
	}
	if got := c.CyclesCeil(0); got != 0 {
		t.Errorf("CyclesCeil(0) = %d, want 0", got)
	}
}

func TestClockInvalid(t *testing.T) {
	for _, hz := range []int64{0, -5, 3} { // 3 Hz does not divide 1e12 ps
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%d) did not panic", hz)
				}
			}()
			NewClock(hz)
		}()
	}
}

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	e.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	e.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30*Nanosecond {
		t.Errorf("final time = %v, want 30ns", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
}

func TestEngineFIFOWithinTimestamp(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order = %v, want FIFO", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var hits []Time
	e.Schedule(Nanosecond, func() {
		hits = append(hits, e.Now())
		e.Schedule(2*Nanosecond, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != Nanosecond || hits[1] != 3*Nanosecond {
		t.Errorf("hits = %v, want [1ns 3ns]", hits)
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	var count int
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i)*Microsecond, func() { count++ })
	}
	e.RunUntil(3 * Microsecond)
	if count != 3 {
		t.Errorf("events run by 3µs = %d, want 3", count)
	}
	if e.Now() != 3*Microsecond {
		t.Errorf("Now = %v, want 3µs", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if count != 5 {
		t.Errorf("total events = %d, want 5", count)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	e.RunUntil(42 * Nanosecond)
	if e.Now() != 42*Nanosecond {
		t.Errorf("Now = %v, want 42ns", e.Now())
	}
}

func TestEngineHalt(t *testing.T) {
	var e Engine
	var count int
	e.Schedule(Nanosecond, func() { count++; e.Halt() })
	e.Schedule(2*Nanosecond, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("events run = %d, want 1 (halted)", count)
	}
	e.Run() // resume
	if count != 2 {
		t.Errorf("events after resume = %d, want 2", count)
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	var e Engine
	e.Schedule(10*Nanosecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("At(past) did not panic")
		}
	}()
	e.At(5*Nanosecond, func() {})
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("Schedule(-1) did not panic")
		}
	}()
	e.Schedule(-Nanosecond, func() {})
}

func TestEngineAdvance(t *testing.T) {
	var e Engine
	e.Advance(7 * Nanosecond)
	if e.Now() != 7*Nanosecond {
		t.Errorf("Now = %v, want 7ns", e.Now())
	}
	e.Schedule(Nanosecond, func() {})
	defer func() {
		if recover() == nil {
			t.Error("Advance past pending event did not panic")
		}
	}()
	e.Advance(2 * Nanosecond)
}

// Property: any randomly scheduled set of events executes in nondecreasing
// timestamp order, and the engine visits every event exactly once.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		var e Engine
		var seen []Time
		for _, d := range delays {
			e.Schedule(Time(d)*Nanosecond, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		if len(seen) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: executed-event count is exact under nested random scheduling.
func TestEngineNestedCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var e Engine
		want := 0
		var spawn func(depth int)
		spawn = func(depth int) {
			want++
			e.Schedule(Time(rng.Intn(100))*Nanosecond, func() {
				if depth > 0 && rng.Intn(2) == 0 {
					spawn(depth - 1)
				}
			})
		}
		for i := 0; i < 20; i++ {
			spawn(3)
		}
		start := e.Executed()
		e.Run()
		// Nested spawns may have added more; recompute from want which is
		// incremented inside spawn at schedule time.
		if got := e.Executed() - start; got != uint64(want) {
			t.Fatalf("executed %d events, want %d", got, want)
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97)*Nanosecond, func() {})
		}
		e.Run()
	}
}
