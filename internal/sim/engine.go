package sim

import (
	"qtenon/internal/metrics"
	"qtenon/internal/san"
)

// Engine is a discrete-event simulator. Events are closures scheduled at
// absolute virtual times; Run executes them in timestamp order (FIFO
// within a timestamp). Engine is not safe for concurrent use; the entire
// simulation runs single-threaded, which keeps it deterministic.
//
// The zero Engine is ready to use.
//
// # Hot-path memory discipline
//
// The event queue is a hand-rolled 4-ary min-heap over a reusable
// backing slice, fronted by a FIFO bucket holding the events of the
// current minimum timestamp (a one-bucket calendar queue). Events are
// stored by value — nothing is boxed through an interface, so Schedule
// and Step are amortized zero-allocation once the backing storage has
// grown to the simulation's peak simultaneity. Popped slots have their
// closure cleared so executed events do not retain their captures
// through the backing array, and Reset recycles the storage across
// independent simulations.
//
// The bucket front exists for the dense same-timestamp bursts the
// pipeline and tilelink models generate: while events at the current
// minimum timestamp are being drained, newly scheduled events at that
// same timestamp append and pop in O(1) ring operations instead of
// paying two heap sifts each.
type Engine struct {
	now    Time
	heap   fourAryHeap
	bucket eventRing // events at bucketAt, globally FIFO by seq
	seq    uint64
	nexec  uint64
	halted bool

	cEvents *metrics.Counter
	gDepth  *metrics.Gauge
}

// Instrument attaches the engine to a metrics registry: every executed
// event counts into "sim.events_executed" and the event-queue depth is
// tracked by the "sim.heap_depth" gauge (high-water = peak simultaneity).
// A nil registry detaches (nil instruments are no-ops).
func (e *Engine) Instrument(reg *metrics.Registry) {
	e.cEvents = reg.Counter("sim.events_executed")
	e.gDepth = reg.Gauge("sim.heap_depth")
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before orders events by (timestamp, schedule order).
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// fourAryHeap is a 4-ary min-heap of events ordered by (at, seq). The
// wider fan-out halves the tree depth of a binary heap and keeps each
// node's children in one or two cache lines, which wins on the
// sift-down-dominated pop path. The backing slice is reused across
// push/pop cycles; pop clears the vacated slot's fn so the array does
// not retain executed closures.
type fourAryHeap []event

func (h *fourAryHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s[i].before(&s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *fourAryHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // clear the vacated slot: no closure retention
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		min := i
		c0 := 4*i + 1
		last := c0 + 3
		if last >= n {
			last = n - 1
		}
		for c := c0; c <= last; c++ {
			if s[c].before(&s[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// eventRing is a FIFO of events over a reusable ring buffer.
type eventRing struct {
	buf  []event
	head int
	n    int
}

func (r *eventRing) push(ev event) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = ev
	r.n++
}

func (r *eventRing) grow() {
	next := make([]event, 2*len(r.buf)+4)
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = next
	r.head = 0
}

func (r *eventRing) pop() event {
	ev := r.buf[r.head]
	r.buf[r.head] = event{} // clear the slot: no closure retention
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	if r.n == 0 {
		r.head = 0
	}
	return ev
}

func (r *eventRing) peek() *event { return &r.buf[r.head] }

// at returns the i-th queued event in FIFO order (sanitizer audits).
func (r *eventRing) at(i int) *event { return &r.buf[(r.head+i)%len(r.buf)] }

// reset empties the ring, clearing occupied slots so no closures stay
// reachable, and keeps the buffer for reuse.
func (r *eventRing) reset() {
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = event{}
	}
	r.head, r.n = 0, 0
}

func (e *Engine) push(at Time, f func()) {
	e.seq++
	ev := event{at: at, seq: e.seq, fn: f}
	// Calendar front: while the bucket is draining timestamp bucketAt,
	// every new event at that timestamp appends to it in O(1). The heap
	// never holds bucketAt events while the bucket is non-empty (refill
	// drains them all), so FIFO order within the timestamp is global.
	if e.bucket.n > 0 && at == e.bucket.peek().at {
		e.bucket.push(ev)
	} else {
		e.heap.push(ev)
	}
	e.gDepth.Set(int64(e.Pending()))
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.nexec }

// Pending reports the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.heap) + e.bucket.n }

// Schedule runs fn after the given delay. A negative delay panics:
// causality violations are always bugs in the caller.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic("sim: negative event delay")
	}
	e.push(e.now+delay, fn)
}

// At runs fn at the absolute time t, which must not precede Now.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.push(t, fn)
}

// peekNext returns the earliest pending event without removing it, or
// nil when the queue is empty. The bucket holds the minimum timestamp
// whenever it is non-empty, except that the heap may hold events at
// strictly earlier times (scheduled via At below the bucket's
// timestamp); comparing front-vs-root covers that case.
func (e *Engine) peekNext() *event {
	if e.bucket.n == 0 {
		if len(e.heap) == 0 {
			return nil
		}
		return &e.heap[0]
	}
	if len(e.heap) > 0 && e.heap[0].before(e.bucket.peek()) {
		return &e.heap[0]
	}
	return e.bucket.peek()
}

// popNext removes and returns the earliest pending event. When the
// bucket is empty it refills from the heap: every event sharing the
// heap's minimum timestamp moves into the bucket (they come off the
// heap in seq order), so the burst then drains — and extends — in O(1)
// per event.
func (e *Engine) popNext() event {
	if e.bucket.n == 0 {
		// Refill the calendar front with the next timestamp's burst.
		at := e.heap[0].at
		for len(e.heap) > 0 && e.heap[0].at == at {
			e.bucket.push(e.heap.pop())
		}
	} else if len(e.heap) > 0 && e.heap[0].before(e.bucket.peek()) {
		return e.heap.pop()
	}
	return e.bucket.pop()
}

// Step executes the single earliest pending event and reports whether one
// was available.
func (e *Engine) Step() bool {
	if e.Pending() == 0 {
		return false
	}
	ev := e.popNext()
	if san.Enabled {
		e.sanCheckPop(&ev)
	}
	e.now = ev.at
	e.nexec++
	e.cEvents.Inc()
	e.gDepth.Set(int64(e.Pending()))
	ev.fn()
	return true
}

// sanCheckPop audits the event-ordering invariants after each pop; it
// runs only under the simsan build tag (the call site gates on
// san.Enabled, so ordinary builds compile it away along with the call).
// Three invariants: the popped event must not precede the clock
// (causality — executing it would rewind time for its observers), the
// 4-ary heap must satisfy its shape property at every node, and the
// calendar bucket must be FIFO (strictly increasing seq) at a single
// timestamp no later than the heap's minimum.
func (e *Engine) sanCheckPop(ev *event) {
	if ev.at < e.now {
		san.Failf("sim.Engine", "causality violation: popped event at t=%d (seq %d) precedes now=%d", int64(ev.at), ev.seq, int64(e.now))
	}
	for i := 1; i < len(e.heap); i++ {
		if p := (i - 1) / 4; e.heap[i].before(&e.heap[p]) {
			san.Failf("sim.Engine", "heap order violated: child %d (t=%d seq=%d) sorts before parent %d (t=%d seq=%d)",
				i, int64(e.heap[i].at), e.heap[i].seq, p, int64(e.heap[p].at), e.heap[p].seq)
		}
	}
	for i := 1; i < e.bucket.n; i++ {
		prev, cur := e.bucket.at(i-1), e.bucket.at(i)
		if cur.at != prev.at {
			san.Failf("sim.Engine", "calendar bucket mixes timestamps t=%d and t=%d", int64(prev.at), int64(cur.at))
		}
		if cur.seq <= prev.seq {
			san.Failf("sim.Engine", "calendar bucket FIFO violated: seq %d follows seq %d", cur.seq, prev.seq)
		}
	}
	if e.bucket.n > 0 && len(e.heap) > 0 && e.heap[0].at < e.bucket.peek().at {
		// Legal only transiently (At below the bucket's timestamp); the
		// pop path must then have drained from the heap, so by the time we
		// audit, a strictly earlier heap minimum means the popped event
		// came from the wrong queue.
		if ev.at > e.heap[0].at {
			san.Failf("sim.Engine", "popped t=%d while heap minimum t=%d is earlier", int64(ev.at), int64(e.heap[0].at))
		}
	}
}

// Run executes events until the queue drains or Halt is called, and
// returns the final simulated time.
//
// A Halt that arrived before Run (including while the queue was empty)
// is observed here: Run consumes it and returns immediately without
// executing any events. Halts are never silently lost.
func (e *Engine) Run() Time {
	if e.halted {
		e.halted = false
		return e.now
	}
	for e.Step() {
		if e.halted {
			e.halted = false
			break
		}
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to the deadline (even if the queue drained earlier). Equal-time
// ties at the deadline all execute: the boundary is inclusive.
//
// Like Run, a pending Halt is consumed on entry and stops RunUntil
// before any event runs — and before the clock advances: halting means
// "stop where you are".
func (e *Engine) RunUntil(deadline Time) Time {
	if e.halted {
		e.halted = false
		return e.now
	}
	for {
		next := e.peekNext()
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
		if e.halted {
			e.halted = false
			return e.now
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Halt stops Run/RunUntil after the currently executing event returns.
// Pending events remain queued. A Halt issued while no run loop is
// active (even with an empty queue) persists until the next Run or
// RunUntil observes — and consumes — it.
func (e *Engine) Halt() { e.halted = true }

// Advance moves the clock forward by d without running any events.
// It panics if an earlier event is pending — skipping events would break
// causality silently, which is never intended. An event at exactly the
// target time stays pending: Advance's clock move loses the race, and
// the event still executes at its own timestamp.
func (e *Engine) Advance(d Time) {
	t := e.now + d
	if next := e.peekNext(); next != nil && next.at < t {
		panic("sim: Advance would skip pending events")
	}
	e.now = t
}

// Reset returns the engine to its zero state — clock at 0, no pending
// events, counters cleared, any pending Halt discarded — while keeping
// the queue's backing storage (and metrics attachment) for reuse.
// Dropped events have their closures cleared, so a Reset engine retains
// nothing from the previous simulation. Sequence numbering restarts, so
// a reused engine schedules and ties exactly like a fresh one.
func (e *Engine) Reset() {
	for i := range e.heap {
		e.heap[i] = event{}
	}
	e.heap = e.heap[:0]
	e.bucket.reset()
	e.now = 0
	e.seq = 0
	e.nexec = 0
	e.halted = false
	e.gDepth.Set(0)
}
