package sim

import (
	"container/heap"

	"qtenon/internal/metrics"
)

// Engine is a discrete-event simulator. Events are closures scheduled at
// absolute virtual times; Run executes them in timestamp order (FIFO
// within a timestamp). Engine is not safe for concurrent use; the entire
// simulation runs single-threaded, which keeps it deterministic.
//
// The zero Engine is ready to use.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nexec  uint64
	halted bool

	cEvents *metrics.Counter
	gDepth  *metrics.Gauge
}

// Instrument attaches the engine to a metrics registry: every executed
// event counts into "sim.events_executed" and the event-heap depth is
// tracked by the "sim.heap_depth" gauge (high-water = peak simultaneity).
// A nil registry detaches (nil instruments are no-ops).
func (e *Engine) Instrument(reg *metrics.Registry) {
	e.cEvents = reg.Counter("sim.events_executed")
	e.gDepth = reg.Gauge("sim.heap_depth")
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }
func (h eventHeap) empty() bool   { return len(h) == 0 }
func (e *Engine) push(at Time, f func()) {
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, fn: f})
	e.gDepth.Set(int64(len(e.queue)))
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.nexec }

// Pending reports the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after the given delay. A negative delay panics:
// causality violations are always bugs in the caller.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic("sim: negative event delay")
	}
	e.push(e.now+delay, fn)
}

// At runs fn at the absolute time t, which must not precede Now.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.push(t, fn)
}

// Step executes the single earliest pending event and reports whether one
// was available.
func (e *Engine) Step() bool {
	if e.queue.empty() {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.nexec++
	e.cEvents.Inc()
	ev.fn()
	return true
}

// Run executes events until the queue drains or Halt is called, and
// returns the final simulated time.
func (e *Engine) Run() Time {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to the deadline (even if the queue drained earlier).
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for !e.halted && !e.queue.empty() && e.queue.peek().at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Halt stops Run/RunUntil after the currently executing event returns.
// Pending events remain queued.
func (e *Engine) Halt() { e.halted = true }

// Advance moves the clock forward by d without running any events.
// It panics if an earlier event is pending — skipping events would break
// causality silently, which is never intended.
func (e *Engine) Advance(d Time) {
	t := e.now + d
	if !e.queue.empty() && e.queue.peek().at < t {
		panic("sim: Advance would skip pending events")
	}
	e.now = t
}
