package sim

import "testing"

// Alloc-regression benches. CI runs `-bench=Alloc -benchtime=1x`: these
// fail the build (not just report a number) when the engine hot path
// regains an allocation, so a stray closure capture or slice growth in
// Schedule/Step cannot land silently.

// BenchmarkEngineScheduleStepAllocFree asserts the steady-state
// schedule/step cycle of a warmed engine is allocation-free.
func BenchmarkEngineScheduleStepAllocFree(b *testing.B) {
	var e Engine
	fn := func() {}
	cycle := func() {
		for j := 0; j < 512; j++ {
			e.Schedule(Time(j%17)*Nanosecond, fn)
		}
		for e.Step() {
		}
	}
	cycle() // grow heap, bucket and ring to steady-state capacity
	for i := 0; i < b.N; i++ {
		if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
			b.Fatalf("warmed schedule/step cycle allocates %.1f times per run, want 0", avg)
		}
	}
}

// BenchmarkEngineResetAllocFree asserts Reset recycles the engine's
// storage: a full schedule/run/Reset cycle allocates nothing after
// warm-up.
func BenchmarkEngineResetAllocFree(b *testing.B) {
	var e Engine
	fn := func() {}
	cycle := func() {
		for j := 0; j < 256; j++ {
			e.Schedule(Time(j%5)*Nanosecond, fn)
		}
		e.Run()
		e.Reset()
	}
	cycle()
	for i := 0; i < b.N; i++ {
		if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
			b.Fatalf("schedule/run/Reset cycle allocates %.1f times per run, want 0", avg)
		}
	}
}
