package sim

import (
	"math/rand"
	"runtime"
	"testing"
)

// --- Halt semantics -------------------------------------------------------

// A Halt issued while the queue is empty (no run loop active) must not be
// lost: the next Run observes it, consumes it, and executes nothing.
func TestEngineHaltOnEmptyQueuePersists(t *testing.T) {
	var e Engine
	e.Halt() // nothing is running and nothing is queued
	e.Schedule(Nanosecond, func() { t.Error("event ran through a pending Halt") })
	if end := e.Run(); end != 0 {
		t.Errorf("halted Run advanced the clock to %v", end)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (event must stay queued)", e.Pending())
	}
	// The halt was consumed: a second Run executes normally.
	ran := false
	e.heap[0].fn = func() { ran = true }
	if end := e.Run(); end != Nanosecond || !ran {
		t.Errorf("post-halt Run: end=%v ran=%v, want 1ns true", end, ran)
	}
}

func TestEngineHaltBeforeRunUntilStopsWithoutAdvancing(t *testing.T) {
	var e Engine
	e.Schedule(5*Nanosecond, func() { t.Error("event ran through a pending Halt") })
	e.Halt()
	if end := e.RunUntil(10 * Nanosecond); end != 0 {
		t.Errorf("halted RunUntil advanced the clock to %v", end)
	}
	// Consumed: the next RunUntil proceeds to the deadline.
	e.heap[0].fn = func() {}
	if end := e.RunUntil(10 * Nanosecond); end != 10*Nanosecond {
		t.Errorf("RunUntil after consumed halt = %v, want 10ns", end)
	}
}

// Halt inside an event, then Resume via Run: the remaining events run,
// in order, from where the halted run stopped.
func TestEngineHaltInsideEventThenResume(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(1*Nanosecond, func() { order = append(order, 1); e.Halt() })
	e.Schedule(1*Nanosecond, func() { order = append(order, 2) })
	e.Schedule(2*Nanosecond, func() { order = append(order, 3) })
	if end := e.Run(); end != 1*Nanosecond {
		t.Errorf("halted at %v, want 1ns", end)
	}
	if len(order) != 1 {
		t.Fatalf("events before halt = %v, want [1]", order)
	}
	if end := e.Run(); end != 2*Nanosecond {
		t.Errorf("resumed run ended at %v, want 2ns", end)
	}
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestEngineHaltInsideRunUntilThenResume(t *testing.T) {
	var e Engine
	count := 0
	e.Schedule(1*Nanosecond, func() { count++; e.Halt() })
	e.Schedule(2*Nanosecond, func() { count++ })
	if end := e.RunUntil(5 * Nanosecond); end != 1*Nanosecond {
		t.Errorf("halted RunUntil ended at %v, want 1ns (no deadline advance)", end)
	}
	if end := e.RunUntil(5 * Nanosecond); end != 5*Nanosecond || count != 2 {
		t.Errorf("resume: end=%v count=%d, want 5ns 2", end, count)
	}
}

// --- RunUntil boundary ----------------------------------------------------

// Every event tied at exactly the deadline executes (inclusive bound), in
// FIFO order, before the clock settles on the deadline.
func TestEngineRunUntilEqualTimestampTiesAtDeadline(t *testing.T) {
	var e Engine
	var order []int
	deadline := 7 * Nanosecond
	for i := 0; i < 8; i++ {
		i := i
		e.At(deadline, func() { order = append(order, i) })
	}
	e.Schedule(8*Nanosecond, func() { t.Error("event past the deadline ran") })
	if end := e.RunUntil(deadline); end != deadline {
		t.Errorf("end = %v, want %v", end, deadline)
	}
	if len(order) != 8 {
		t.Fatalf("executed %d deadline ties, want 8", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want FIFO", order)
		}
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (the post-deadline event)", e.Pending())
	}
}

// An event scheduled at a deadline tie from within a tie also executes:
// the burst extends while it drains.
func TestEngineRunUntilTieSpawnsTie(t *testing.T) {
	var e Engine
	deadline := 3 * Nanosecond
	count := 0
	e.At(deadline, func() {
		count++
		e.At(deadline, func() { count++ })
	})
	e.RunUntil(deadline)
	if count != 2 {
		t.Errorf("executed %d events, want 2 (spawned tie included)", count)
	}
}

// --- Advance vs same-time events -----------------------------------------

// Advance racing an event at exactly the target time: the clock move is
// allowed (the event is not skipped — it still executes at its own
// timestamp), while an event strictly inside the window panics.
func TestEngineAdvanceRacesSameTimeEvent(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(4*Nanosecond, func() { ran = true })
	e.Advance(4 * Nanosecond) // t == event time: allowed
	if e.Now() != 4*Nanosecond {
		t.Fatalf("Now = %v, want 4ns", e.Now())
	}
	e.Run()
	if !ran {
		t.Error("same-time event was lost by Advance")
	}
	if e.Now() != 4*Nanosecond {
		t.Errorf("Now = %v after running same-time event, want 4ns", e.Now())
	}
}

// The same race through the bucket front: drain part of a burst, halt,
// then Advance to the burst's timestamp — legal — and past it — panic.
func TestEngineAdvancePastBucketedEventPanics(t *testing.T) {
	var e Engine
	e.Schedule(2*Nanosecond, func() { e.Halt() })
	e.Schedule(2*Nanosecond, func() {})
	e.Run() // halts with one 2ns event still bucketed
	e.Advance(0)
	defer func() {
		if recover() == nil {
			t.Error("Advance past a bucketed pending event did not panic")
		}
	}()
	e.Advance(Nanosecond)
}

// --- Reset ----------------------------------------------------------------

// Reset-then-reuse determinism: a reset engine behaves exactly like a
// fresh one — clock at zero, seq ordering restarted, nothing retained.
func TestEngineResetThenReuseDeterminism(t *testing.T) {
	run := func(e *Engine) []int {
		var order []int
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50; i++ {
			i := i
			e.Schedule(Time(rng.Intn(5))*Nanosecond, func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	var fresh Engine
	want := run(&fresh)

	var e Engine
	e.Schedule(3*Nanosecond, func() {})
	e.Schedule(3*Nanosecond, func() { e.Halt() })
	e.Run() // leave residue: halted mid-burst, one event pending
	e.Schedule(9*Nanosecond, func() { t.Error("stale event survived Reset") })
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Executed() != 0 {
		t.Fatalf("Reset left now=%v pending=%d executed=%d", e.Now(), e.Pending(), e.Executed())
	}
	got := run(&e)
	if len(got) != len(want) {
		t.Fatalf("reused engine executed %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reused order %v, want fresh order %v", got, want)
		}
	}
}

// Reset discards a pending Halt.
func TestEngineResetClearsPendingHalt(t *testing.T) {
	var e Engine
	e.Halt()
	e.Reset()
	ran := false
	e.Schedule(Nanosecond, func() { ran = true })
	e.Run()
	if !ran {
		t.Error("Reset did not clear the pending Halt")
	}
}

// --- Closure retention ----------------------------------------------------

// Popped events must not keep their closures reachable through the
// queue's backing arrays: after the events run, the captured allocations
// must be collectable even though the engine (and its storage) lives on.
func TestEngineDoesNotRetainExecutedClosures(t *testing.T) {
	var e Engine
	const n = 64
	collected := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		payload := new([1 << 16]byte)
		runtime.SetFinalizer(payload, func(*[1 << 16]byte) { collected <- struct{}{} })
		e.Schedule(Time(i%3)*Nanosecond, func() { payload[0]++ })
	}
	e.Run()
	// The engine is still alive and still owns its backing slices; only
	// the fn slots were cleared. Give the collector a few cycles.
	got := 0
	for cycle := 0; cycle < 20 && got < n; cycle++ {
		runtime.GC()
		for {
			select {
			case <-collected:
				got++
				continue
			default:
			}
			break
		}
	}
	runtime.KeepAlive(&e)
	if got < n {
		t.Errorf("only %d/%d executed closures were collectable; the queue retains them", got, n)
	}
}

// Reset clears unexecuted events' closures too.
func TestEngineResetReleasesPendingClosures(t *testing.T) {
	var e Engine
	const n = 32
	collected := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		payload := new([1 << 16]byte)
		runtime.SetFinalizer(payload, func(*[1 << 16]byte) { collected <- struct{}{} })
		e.Schedule(Time(i)*Nanosecond, func() { payload[0]++ })
	}
	e.Reset()
	got := 0
	for cycle := 0; cycle < 20 && got < n; cycle++ {
		runtime.GC()
		for {
			select {
			case <-collected:
				got++
				continue
			default:
			}
			break
		}
	}
	runtime.KeepAlive(&e)
	if got < n {
		t.Errorf("only %d/%d dropped closures were collectable after Reset", got, n)
	}
}

// --- Zero-allocation hot path --------------------------------------------

// Schedule and Step are amortized zero-allocation once the backing
// storage has grown: the steady-state schedule/run cycle of a warmed
// engine allocates nothing.
func TestEngineScheduleStepZeroAllocAmortized(t *testing.T) {
	var e Engine
	fn := func() {}
	warm := func() {
		for j := 0; j < 512; j++ {
			e.Schedule(Time(j%17)*Nanosecond, fn)
		}
		for e.Step() {
		}
	}
	warm() // grow heap, bucket and ring to steady-state capacity
	if avg := testing.AllocsPerRun(50, warm); avg != 0 {
		t.Errorf("schedule/step cycle allocates %.1f times per run, want 0", avg)
	}
}

// Reset-recycled engines keep their storage: a full
// schedule/run/Reset cycle is allocation-free after warm-up.
func TestEngineResetRecyclesStorage(t *testing.T) {
	var e Engine
	fn := func() {}
	cycle := func() {
		for j := 0; j < 256; j++ {
			e.Schedule(Time(j%5)*Nanosecond, fn)
		}
		e.Run()
		e.Reset()
	}
	cycle()
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Errorf("schedule/run/Reset cycle allocates %.1f times per run, want 0", avg)
	}
}

// --- Alias for the old property: heavy interleaved load stays ordered ----

func TestEngineInterleavedBurstOrdering(t *testing.T) {
	var e Engine
	rng := rand.New(rand.NewSource(42))
	var last Time
	var lastSeq int
	count := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		at := e.Now() + Time(rng.Intn(3))*Nanosecond
		seq := count
		count++
		e.At(at, func() {
			if e.Now() < last {
				t.Fatalf("time went backwards: %v after %v", e.Now(), last)
			}
			last = e.Now()
			_ = seq
			_ = lastSeq
			if depth > 0 && rng.Intn(3) > 0 {
				spawn(depth - 1) // often lands on the live bucket timestamp
			}
		})
	}
	for i := 0; i < 200; i++ {
		spawn(4)
	}
	start := e.Executed()
	e.Run()
	if got := int(e.Executed() - start); got != count {
		t.Fatalf("executed %d events, want %d", got, count)
	}
}

// --- Benchmarks -----------------------------------------------------------

// BenchmarkEngineSchedule measures the push path alone on a warmed
// engine (0 allocs/op amortized).
func BenchmarkEngineSchedule(b *testing.B) {
	var e Engine
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%97)*Nanosecond, fn)
		if e.Pending() >= 4096 {
			b.StopTimer()
			for e.Step() {
			}
			b.StartTimer()
		}
	}
}

// BenchmarkEngineStep measures the pop/dispatch path (0 allocs/op
// amortized): each iteration schedules and executes one event against a
// standing backlog, touching both the bucket front and the heap.
func BenchmarkEngineStep(b *testing.B) {
	var e Engine
	fn := func() {}
	for j := 0; j < 1024; j++ {
		e.Schedule(Time(j%31)*Nanosecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%31)*Nanosecond, fn)
		e.Step()
	}
}
