// Package sim provides the discrete-event simulation kernel used by every
// timed component in the Qtenon reproduction: a picosecond-resolution
// virtual clock, an event queue, and helpers for converting between clock
// cycles and simulated time.
//
// The kernel is deliberately minimal: components schedule closures at
// absolute or relative virtual times and the engine executes them in
// timestamp order. Determinism is guaranteed by a monotonically increasing
// sequence number that breaks timestamp ties in FIFO order, so repeated
// runs with the same seed produce identical traces.
package sim

import (
	"fmt"
	"time"
)

// Time is a point (or span) of simulated time measured in picoseconds.
//
// Picoseconds are fine enough to represent the 2 GHz DAC clock (500 ps
// period) and the 1 GHz core clock (1 ns period) without rounding, while
// int64 still spans ±106 days — far beyond any experiment in the paper.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a simulated span to a time.Duration (nanosecond
// resolution, rounding toward zero).
func (t Time) Duration() time.Duration { return time.Duration(t/Nanosecond) * time.Nanosecond }

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an auto-selected unit, e.g. "14.2µs".
func (t Time) String() string {
	switch abs := max(t, -t); {
	case abs < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case abs < Microsecond:
		return fmt.Sprintf("%.4gns", t.Nanoseconds())
	case abs < Millisecond:
		return fmt.Sprintf("%.4gµs", t.Microseconds())
	case abs < Second:
		return fmt.Sprintf("%.4gms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// FromNanoseconds converts a floating-point nanosecond count to Time,
// rounding to the nearest picosecond.
func FromNanoseconds(ns float64) Time { return Time(ns*float64(Nanosecond) + 0.5) }

// Clock converts between cycle counts and simulated time for a component
// running at a fixed frequency. The zero Clock is invalid; use NewClock.
type Clock struct {
	period Time // duration of one cycle
	hz     int64
}

// NewClock returns a clock with the given frequency in hertz.
// The frequency must evenly divide one second's worth of picoseconds
// (true for all frequencies used in the paper: 1 GHz, 2 GHz, 200 MHz…).
func NewClock(hz int64) Clock {
	if hz <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock frequency %d", hz))
	}
	if int64(Second)%hz != 0 {
		panic(fmt.Sprintf("sim: clock frequency %d Hz does not divide 1s evenly", hz))
	}
	return Clock{period: Time(int64(Second) / hz), hz: hz}
}

// Hz reports the clock frequency in hertz.
func (c Clock) Hz() int64 { return c.hz }

// Period reports the duration of a single cycle.
func (c Clock) Period() Time { return c.period }

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.period }

// CyclesFloat converts a fractional cycle count to a duration,
// truncating to the enclosing picosecond — the bridge for rate-derived
// counts like instructions/IPC, so callers never multiply raw cycle
// floats by Period themselves.
func (c Clock) CyclesFloat(n float64) Time { return Time(n * float64(c.period)) }

// CyclesIn reports how many full cycles fit in d.
func (c Clock) CyclesIn(d Time) int64 { return int64(d / c.period) }

// CyclesCeil reports the number of cycles needed to cover d, rounding up.
func (c Clock) CyclesCeil(d Time) int64 {
	return int64((d + c.period - 1) / c.period)
}
