//go:build simsan

package sim

import (
	"strings"
	"testing"
)

// These tests corrupt an Engine's internals directly — the only way to
// trip the sanitizer, since every public entry point guards the same
// invariants — and assert the panic names the engine, not just the
// symptom.

func sanMustPanic(t *testing.T, fragments []string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a simsan panic, got none")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v is not the simsan message string", r)
		}
		for _, frag := range fragments {
			if !strings.Contains(msg, frag) {
				t.Errorf("panic %q does not contain %q", msg, frag)
			}
		}
	}()
	f()
}

func TestSimsanCausalityViolation(t *testing.T) {
	var e Engine
	e.heap.push(event{at: 5, seq: 1, fn: func() {}})
	e.now = 10 // corrupt: the clock claims to be past the pending event
	sanMustPanic(t, []string{"simsan: sim.Engine:", "causality violation", "t=5", "now=10"}, func() {
		e.Step()
	})
}

func TestSimsanBucketTimestampMix(t *testing.T) {
	var e Engine
	// Corrupt: the calendar bucket must hold one timestamp, but these
	// mix three. The audit runs after the first pop and sees the 7/9
	// pair still queued.
	e.bucket.push(event{at: 5, seq: 1, fn: func() {}})
	e.bucket.push(event{at: 7, seq: 2, fn: func() {}})
	e.bucket.push(event{at: 9, seq: 3, fn: func() {}})
	sanMustPanic(t, []string{"simsan: sim.Engine:", "mixes timestamps"}, func() {
		e.Step()
	})
}

func TestSimsanBucketFIFOViolation(t *testing.T) {
	var e Engine
	e.bucket.push(event{at: 5, seq: 5, fn: func() {}})
	e.bucket.push(event{at: 5, seq: 9, fn: func() {}})
	e.bucket.push(event{at: 5, seq: 7, fn: func() {}}) // corrupt: out of order
	sanMustPanic(t, []string{"simsan: sim.Engine:", "FIFO violated", "seq 7", "seq 9"}, func() {
		e.Step()
	})
}

// TestSimsanCleanRun pins that an uncorrupted engine passes the audits:
// the sanitizer must not fire on legal schedules, including the
// At-below-bucket path the audit special-cases.
func TestSimsanCleanRun(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(10, func() {
		order = append(order, 1)
		e.At(e.Now(), func() { order = append(order, 2) }) // same-timestamp burst
		e.Schedule(5, func() { order = append(order, 3) })
	})
	e.Run()
	if len(order) != 3 {
		t.Fatalf("executed %v, want 3 events", order)
	}
}
