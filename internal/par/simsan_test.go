//go:build simsan

package par_test

import (
	"os"
	"runtime"
	"testing"

	"qtenon/internal/par"
	"qtenon/internal/san"
)

// TestMain is the package's goroutine leak canary (DESIGN.md §15.5):
// the pool is the module's only persistent goroutine population, so
// after the suite runs and Shutdown drains it, the live count must
// return to the pre-suite baseline. A worker that misses its poison —
// or a test that strands a fan-out goroutine — fails the simsan build
// here, the runtime twin of the goroutinelifecycle analyzer.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	par.Shutdown()
	san.CheckGoroutineLeak("par.pool", baseline)
	os.Exit(code)
}

// Shutdown must be reentrant with respawn: drain, reuse, drain again.
func TestShutdownDrainsPool(t *testing.T) {
	par.SetWorkers(4)
	defer par.SetWorkers(0)

	baseline := runtime.NumGoroutine()
	n := 4 * par.SerialThreshold
	sums := make([]float64, n)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sums[i] = 1
		}
	})
	par.Shutdown()
	san.CheckGoroutineLeak("par.pool", baseline)

	// The next dispatch respawns a fresh pool and still computes.
	got := par.SumFloat64(n, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += sums[i]
		}
		return s
	})
	if got != float64(n) {
		t.Fatalf("post-shutdown sum = %v, want %v", got, float64(n))
	}
}
