package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// covers asserts body visits every index in [0, n) exactly once.
func covers(t *testing.T, n int, launch func(mark func(i int))) {
	t.Helper()
	hits := make([]int32, n)
	launch(func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, chunkSize, chunkSize + 1, SerialThreshold - 1, SerialThreshold, SerialThreshold + 3, 3 * SerialThreshold} {
		covers(t, n, func(mark func(i int)) {
			For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					mark(i)
				}
			})
		})
	}
}

func TestForForcedParallel(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	covers(t, 5*SerialThreshold, func(mark func(i int)) {
		For(5*SerialThreshold, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				mark(i)
			}
		})
	})
}

func TestDoCoversItems(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	for _, n := range []int{0, 1, 2, 9, 100} {
		covers(t, n, func(mark func(i int)) {
			Do(n, mark)
		})
	}
}

func TestSumFloat64MatchesSerial(t *testing.T) {
	n := 2*SerialThreshold + 137
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1 / float64(i+1)
	}
	chunk := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}
	SetWorkers(1)
	serial := SumFloat64(n, chunk)
	SetWorkers(8)
	parallel := SumFloat64(n, chunk)
	SetWorkers(0)
	// The chunked partition depends only on n, so serial and parallel
	// execution produce bit-identical sums.
	if serial != parallel {
		t.Fatalf("SumFloat64 not deterministic across worker counts: %v vs %v", serial, parallel)
	}
}

func TestSumComplexDeterministic(t *testing.T) {
	n := SerialThreshold + chunkSize/2
	chunk := func(lo, hi int) complex128 {
		var s complex128
		for i := lo; i < hi; i++ {
			s += complex(float64(i%13), 1/float64(i+1))
		}
		return s
	}
	SetWorkers(1)
	a := SumComplex(n, chunk)
	SetWorkers(6)
	b := SumComplex(n, chunk)
	SetWorkers(0)
	if a != b {
		t.Fatalf("SumComplex not deterministic: %v vs %v", a, b)
	}
}

// Concurrent For calls from independent goroutines must not interfere —
// this is the shape the optimizer produces (parallel evaluations, each
// running parallel kernels).
func TestConcurrentJobs(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	const n = 2 * SerialThreshold
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sums := make([]float64, n)
			For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sums[i] = float64(i)
				}
			})
			got := SumFloat64(n, func(lo, hi int) float64 {
				var s float64
				for i := lo; i < hi; i++ {
					s += sums[i]
				}
				return s
			})
			want := float64(n) * float64(n-1) / 2
			if got != want {
				t.Errorf("sum = %v, want %v", got, want)
			}
		}()
	}
	wg.Wait()
}

func TestWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if w := Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	SetWorkers(3)
	if w := Workers(); w != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", w)
	}
	SetWorkers(0)
}

// A body panic must cancel the job early (siblings stop claiming
// chunks) and re-raise on the dispatching goroutine — same contract as
// a serial loop.
func TestDoPanicPropagates(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	const n = 64
	var executed atomic.Int32
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		Do(n, func(i int) {
			executed.Add(1)
			if i == 3 {
				panic("poisoned item 3")
			}
		})
	}()
	if recovered != "poisoned item 3" {
		t.Fatalf("recovered %v, want the body's panic value", recovered)
	}
	if got := executed.Load(); got > n {
		t.Fatalf("executed %d items of %d — abort re-ran chunks", got, n)
	}

	// The pool must survive a poisoned job: the panic aborted one job,
	// not the workers, so the next dispatch computes normally.
	covers(t, n, func(mark func(i int)) {
		Do(n, mark)
	})
}

// The serial path (one worker) re-raises the panic identically, so the
// contract does not depend on the pool.
func TestDoPanicSerial(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		Do(4, func(i int) {
			if i == 2 {
				panic("serial poison")
			}
		})
	}()
	if recovered != "serial poison" {
		t.Fatalf("recovered %v, want the body's panic value", recovered)
	}
}

// A panicking For body cancels remaining chunks: with chunk-granular
// claims and an immediate first-chunk panic, the abort flag must stop
// the job well short of grinding through the whole index space on the
// panicking participant alone.
func TestForPanicAborts(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	const n = 8 * SerialThreshold
	var touched atomic.Int64
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		For(n, func(lo, hi int) {
			touched.Add(int64(hi - lo))
			panic("first chunk poison")
		})
	}()
	if recovered == nil {
		t.Fatal("panic did not propagate out of For")
	}
	// Every participant can touch at most one chunk before observing the
	// abort flag; with 4 workers + the caller that bounds the damage far
	// below n.
	if got := touched.Load(); got > int64(8*chunkSize) {
		t.Fatalf("touched %d indices after a first-chunk panic, want early abort (≤ %d)", got, 8*chunkSize)
	}
}
