// Package par is the repository's shared parallel-execution engine: a
// persistent worker pool with chunked parallel-for and deterministic
// reductions, used by the statevector kernels (internal/qsim), the
// optimizer gradient evaluation (internal/opt), and the benchmark sweep
// generators (internal/bench).
//
// Design constraints, in order:
//
//  1. Determinism. Every reduction partitions its index range into
//     fixed-size chunks (independent of worker count) and combines the
//     per-chunk partials in chunk order, so the result is bit-identical
//     at any GOMAXPROCS — including 1. Elementwise loops are trivially
//     deterministic.
//  2. No regression on small inputs. Loops shorter than SerialThreshold
//     run inline on the calling goroutine with zero synchronization.
//  3. No deadlocks under composition. The caller always participates in
//     its own job, so a job completes even when every pool worker is
//     busy; workers never block on anything but the job queue.
//
// The pool is lazily spawned and persists for the life of the process.
// Workers pull jobs from a shared queue; a job is a bag of chunks drained
// through one atomic counter, which gives dynamic load balancing without
// per-chunk goroutines.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SerialThreshold is the loop length below which For runs inline on the
// calling goroutine. 2^14 amplitudes keeps small statevectors (< 14
// qubits) and short loops free of synchronization overhead.
const SerialThreshold = 1 << 14

// chunkSize is the fixed chunk length loops and reductions are
// partitioned on. It depends only on the input length — never on the
// worker count — which is what makes reductions deterministic across
// GOMAXPROCS settings.
const chunkSize = 1 << 13

// maxWorkers overrides the pool width when positive; 0 means "use
// runtime.GOMAXPROCS(0) at call time". Set via SetWorkers (tests and
// benchmarks).
var maxWorkers atomic.Int32

// spawned counts pool goroutines already started.
var spawned atomic.Int32

// work is the shared job queue. Sends are non-blocking: if the queue is
// full the caller simply gets less help and runs more chunks itself.
var work = make(chan *job, 128)

// job is one parallel loop: chunks are claimed through the next counter
// by the caller and by every worker that received the job.
type job struct {
	fn    func(lo, hi int)
	n     int
	chunk int
	next  atomic.Int64
	wg    sync.WaitGroup
	// aborted stops further chunk claims after a body panic; panicked
	// holds the first recovered panic value, re-raised on the dispatching
	// goroutine once every participant has drained. Both stay untouched
	// (two relaxed loads per chunk) on the non-panicking path.
	aborted  atomic.Bool
	panicked atomic.Pointer[any]
}

// run drains chunks until the job is exhausted or aborted. A panic in
// the body is captured (first one wins) and aborts the job: siblings
// stop claiming new chunks, so a poisoned loop cancels early instead of
// grinding through the remaining index space.
func (j *job) run() {
	defer func() {
		if r := recover(); r != nil {
			j.panicked.CompareAndSwap(nil, &r)
			j.aborted.Store(true)
		}
	}()
	for {
		if j.aborted.Load() {
			return
		}
		c := int(j.next.Add(1)) - 1
		lo := c * j.chunk
		if lo >= j.n {
			return
		}
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
	}
}

// Workers reports the current parallelism width: the SetWorkers override
// when set, else GOMAXPROCS.
func Workers() int {
	if w := int(maxWorkers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the pool width: 1 forces every call serial
// (benchmarking baselines, bisecting), 0 restores the GOMAXPROCS
// default. The persistent pool never shrinks; the override only limits
// how many helpers a job recruits.
func SetWorkers(w int) { maxWorkers.Store(int32(w)) }

// ensureSpawned grows the persistent pool to at least n workers.
func ensureSpawned(n int) {
	for {
		cur := spawned.Load()
		if int(cur) >= n {
			return
		}
		if spawned.CompareAndSwap(cur, cur+1) {
			go func() {
				for j := range work {
					if j == nil {
						return // Shutdown poison: the pool is winding down
					}
					j.run()
					j.wg.Done()
				}
			}()
		}
	}
}

// Shutdown winds the persistent pool down to zero goroutines: every
// live worker is handed a nil poison job and the spawn count resets, so
// the next parallel call respawns a fresh pool. It is a quiescence seam
// for tests and the simsan goroutine-leak canary, not a serving-path
// operation; the caller must ensure no dispatch is in flight.
func Shutdown() {
	n := int(spawned.Swap(0))
	for i := 0; i < n; i++ {
		// The queue's capacity exceeds any real worker count and, by the
		// quiescence precondition, workers are parked receiving on it, so
		// poison delivery is bounded.
		//lint:ignore ctxflow poison send into a buffered queue whose receivers are idle by precondition (DESIGN.md §15.4)
		work <- nil
	}
}

// dispatch runs the job with up to helpers pool workers assisting the
// calling goroutine, and returns when every chunk has completed.
func dispatch(j *job, helpers int) {
	if max := (j.n - 1) / j.chunk; helpers > max {
		helpers = max // no point recruiting more workers than extra chunks
	}
	ensureSpawned(helpers)
	for i := 0; i < helpers; i++ {
		j.wg.Add(1)
		select {
		case work <- j:
		default:
			j.wg.Done()
			i = helpers // queue full: run the rest ourselves
		}
	}
	j.run()
	// The join is structurally bounded: every worker holding a wg slot is
	// running chunks of this same finite job (or skipping them after an
	// abort), so Wait cannot outlive the job — the caller participates
	// rather than parks, which is the sanctioned fan-out shape.
	//lint:ignore ctxflow bounded join — helpers finish their claimed chunks of a finite job and Done unconditionally (DESIGN.md §15.4)
	j.wg.Wait()
	if p := j.panicked.Load(); p != nil {
		// Re-raise the body's panic on the calling goroutine, after every
		// participant has stopped touching the job — the same contract as a
		// serial loop, minus the chunks cancelled by the abort.
		panic(*p)
	}
}

// For executes body over a partition of [0, n): body(lo, hi) is called
// with disjoint ranges covering [0, n) exactly once. Ranges run
// concurrently when n ≥ SerialThreshold and more than one worker is
// available; body must therefore be safe for disjoint-range concurrency
// (pure elementwise updates are).
func For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if n < SerialThreshold || w == 1 {
		body(0, n)
		return
	}
	j := &job{fn: body, n: n, chunk: chunkSize}
	dispatch(j, w-1)
}

// Do executes body(i) for every i in [0, n), in parallel when more than
// one worker is available. Unlike For it parallelizes at item
// granularity regardless of n, so it suits small collections of heavy
// tasks (sample blocks, sweep points).
func Do(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if n == 1 || w == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	j := &job{
		fn: func(lo, hi int) {
			for i := lo; i < hi; i++ {
				body(i)
			}
		},
		n:     n,
		chunk: 1,
	}
	dispatch(j, w-1)
}

// DoScratch executes body(slot, i) for every i in [0, n) with at most
// `width` concurrent participants (capped by the pool width). slot
// identifies the participant: 0 ≤ slot < width, and no two concurrent
// calls ever share a slot, so callers can thread per-worker scratch
// buffers through it — the allocation-free alternative to a fresh
// buffer per item. Items are claimed dynamically, so the slot→item
// assignment is nondeterministic; like Do, callers must assemble
// results by index for determinism.
func DoScratch(n, width int, body func(slot, i int)) {
	if n <= 0 {
		return
	}
	if w := Workers(); width > w {
		width = w
	}
	if width > n {
		width = n
	}
	if n == 1 || width <= 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	// Each of the job's `width` unit chunks is one participant slot; the
	// slot's loop drains items through a shared counter. A participant
	// that picks up several slots (e.g. the caller, when the queue is
	// full) runs them sequentially, which keeps the no-shared-slot
	// guarantee.
	var next atomic.Int64
	j := &job{
		fn: func(lo, hi int) {
			for slot := lo; slot < hi; slot++ {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						break
					}
					body(slot, i)
				}
			}
		},
		n:     width,
		chunk: 1,
	}
	dispatch(j, width-1)
}

// reduce partitions [0, n) into fixed chunkSize ranges, evaluates chunk
// on each (in parallel when large enough), and folds the partials in
// chunk order. The partition and fold order depend only on n, so the
// result is bit-identical at any worker count.
func reduce[T any](n int, chunk func(lo, hi int) T, add func(a, b T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	nchunks := (n + chunkSize - 1) / chunkSize
	if nchunks == 1 {
		return chunk(0, n)
	}
	partials := make([]T, nchunks)
	eval := func(lo, hi int) {
		for c := lo; c < hi; c++ {
			clo := c * chunkSize
			chi := clo + chunkSize
			if chi > n {
				chi = n
			}
			partials[c] = chunk(clo, chi)
		}
	}
	if w := Workers(); n < SerialThreshold || w == 1 {
		eval(0, nchunks)
	} else {
		j := &job{fn: eval, n: nchunks, chunk: 1}
		dispatch(j, w-1)
	}
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = add(acc, p)
	}
	return acc
}

// SumFloat64 reduces chunk partial sums over [0, n) deterministically:
// the chunking and combination order are fixed by n alone.
func SumFloat64(n int, chunk func(lo, hi int) float64) float64 {
	return reduce(n, chunk, func(a, b float64) float64 { return a + b })
}

// SumComplex is SumFloat64 for complex128 partials.
func SumComplex(n int, chunk func(lo, hi int) complex128) complex128 {
	return reduce(n, chunk, func(a, b complex128) complex128 { return a + b })
}
