package pipeline

import (
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qcc"
)

// TestQSpaceHitStallsStage2 drives the Figure 7 path where the SLT
// evicts a parameter and a later lookup recovers it from QSpace: that
// lookup must pay the datapath-❸ latency, visible as QSpaceCycles.
func TestQSpaceHitStallsStage2(t *testing.T) {
	cfg := DefaultConfig()
	p, cache, bank := rig(t, 1, cfg)

	// Three parameters that collide in one SLT set (same type, same low
	// 4 data bits) overflow the 2 ways and evict the first.
	angleFor := func(tag uint32) float64 {
		// data = tag<<4 exactly (within 24 bits) → distinct tags, same
		// index.
		return qcc.DequantizeAngle(tag << 4)
	}
	for i, tag := range []uint32{1, 2, 3} {
		loadGate(t, cache, 0, i, circuit.RX, angleFor(tag))
	}
	res, err := p.Run([]WorkItem{{0, 0}, {0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 3 {
		t.Fatalf("initial generation = %d, want 3", res.Generated)
	}
	if res.QSpaceCycles != 0 {
		t.Fatalf("allocations stalled on QSpace: %d cycles", res.QSpaceCycles)
	}
	if bank.Qubit(0).Stats.Evictions == 0 {
		t.Fatal("no eviction; the conflict set did not overflow")
	}

	// Re-query the evicted parameter from a FRESH entry (the original
	// entry is status-valid and skips the SLT entirely).
	loadGate(t, cache, 0, 3, circuit.RX, angleFor(1))
	res2, err := p.Run([]WorkItem{{0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Generated != 0 {
		t.Fatalf("QSpace-recovered parameter regenerated its pulse")
	}
	if res2.QSpaceCycles != cfg.QSpaceLatency {
		t.Errorf("QSpaceCycles = %d, want %d (one DRAM access)", res2.QSpaceCycles, cfg.QSpaceLatency)
	}
	if res2.Cycles < cfg.QSpaceLatency {
		t.Errorf("total cycles %d below the QSpace stall %d", res2.Cycles, cfg.QSpaceLatency)
	}
}

func TestQSpaceLatencyZeroDisablesStall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QSpaceLatency = 0
	p, cache, _ := rig(t, 1, cfg)
	for i, tag := range []uint32{1, 2, 3} {
		loadGate(t, cache, 0, i, circuit.RX, qcc.DequantizeAngle(tag<<4))
	}
	if _, err := p.Run([]WorkItem{{0, 0}, {0, 1}, {0, 2}}); err != nil {
		t.Fatal(err)
	}
	loadGate(t, cache, 0, 3, circuit.RX, qcc.DequantizeAngle(uint32(1)<<4))
	res, err := p.Run([]WorkItem{{0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.QSpaceCycles != 0 {
		t.Errorf("QSpaceCycles = %d with zero latency configured", res.QSpaceCycles)
	}
}
