// Package pipeline implements the four-stage pulse-computation pipeline
// of §5.3 / Figure 6, cycle-accurately:
//
//	Stage 1  read the circuit definition from the Program Index Buffer
//	Stage 2  decode; fetch Regfile if R=1; query the SLT when Status=0
//	Stage 3  dispatch to a free PGU via priority encoder (stall S1/S2
//	         when all PGUs are busy; S4 is decoupled by ready/valid)
//	Stage 4  arbitrate PGU completions and write pulses to the pulse cache
//
// The model executes one cycle per step with real data flowing through:
// program entries are read from and written back to the quantum
// controller cache, SLT lookups hit the slt.Bank, and completed PGUs
// store genuine synthesized pulse entries.
package pipeline

import (
	"fmt"

	"qtenon/internal/circuit"
	"qtenon/internal/hw"
	"qtenon/internal/metrics"
	"qtenon/internal/pulse"
	"qtenon/internal/qcc"
	"qtenon/internal/slt"
)

// WorkItem names one program entry to process.
type WorkItem struct {
	Qubit int
	Index int
}

// Config sets pipeline geometry.
type Config struct {
	PGUs       int   // parallel pulse generation units (paper: 8)
	PGULatency int64 // cycles per pulse (paper: 1000)
	UseSLT     bool  // false = ablation: always generate
	// QSpaceLatency is the extra stage-2 stall (cycles) when an SLT miss
	// consults QSpace over datapath ❸ — a DRAM-class access (Figure 7
	// steps ❷–❸). Evictions add the same cost again for the write-back.
	QSpaceLatency int64
	Timing        circuit.Timing
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{PGUs: 8, PGULatency: 1000, UseSLT: true, QSpaceLatency: 100, Timing: circuit.DefaultTiming()}
}

// Result reports one pipeline run.
type Result struct {
	Cycles       int64 // total cycles from first fetch to last writeback
	Processed    int   // entries examined
	Generated    int   // pulses actually synthesized (SLT misses)
	Skipped      int   // entries resolved without generation
	StallCycles  int64 // cycles stages 1–2 were stalled on busy PGUs
	QSpaceCycles int64 // stage-2 stalls on QSpace accesses (datapath ❸)
	Writebacks   int   // pulse cache writes
}

// Pipeline binds the hardware resources the four stages touch.
type Pipeline struct {
	cfg   Config
	cache *qcc.Cache
	bank  *slt.Bank
	pgu   *pulse.PGU

	// Per-run scratch (PGU states and the stage-3/4 request vectors),
	// recycled across Run calls so the per-cycle loop does not allocate.
	pguScratch  []pguState
	boolScratch []bool

	cProcessed, cGenerated, cSkipped *metrics.Counter
	cStall, cQSpaceStall, cCycles    *metrics.Counter
	gPGUBusy                         *metrics.Gauge
}

// Instrument attaches the pipeline to a metrics registry under the
// "pulse" component: processed/generated/skipped entry counts, stall
// cycles, total pipeline cycles, and a PGU-occupancy gauge whose
// high-water mark is the peak number of simultaneously busy PGUs. It
// also instruments the SLT bank the pipeline queries. Nil registry
// detaches.
func (p *Pipeline) Instrument(reg *metrics.Registry) {
	p.cProcessed = reg.Counter("pulse.processed")
	p.cGenerated = reg.Counter("pulse.generated")
	p.cSkipped = reg.Counter("pulse.skipped")
	p.cStall = reg.Counter("pulse.stall_cycles")
	p.cQSpaceStall = reg.Counter("pulse.qspace_stall_cycles")
	p.cCycles = reg.Counter("pulse.cycles")
	p.gPGUBusy = reg.Gauge("pulse.pgu_busy")
	p.bank.Instrument(reg)
}

// New builds a pipeline over the controller cache and SLT bank.
func New(cfg Config, cache *qcc.Cache, bank *slt.Bank) (*Pipeline, error) {
	if cfg.PGUs <= 0 || cfg.PGULatency <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive PGU geometry %+v", cfg)
	}
	if cache.Config().NQubits != bank.NQubits() {
		return nil, fmt.Errorf("pipeline: cache has %d qubits, SLT bank %d", cache.Config().NQubits, bank.NQubits())
	}
	p := &Pipeline{cfg: cfg, cache: cache, bank: bank, pgu: pulse.NewPGU()}
	p.pgu.LatencyCycle = cfg.PGULatency
	return p, nil
}

// job is the payload flowing from stage 2 to a PGU.
type job struct {
	qubit int
	index int // program entry index (for status writeback)
	kind  circuit.Kind
	data  uint32 // quantized angle after regfile resolution
	qaddr uint32 // pulse slot
}

type pguState struct {
	busy    bool
	remain  int64
	current job
	done    bool
}

// Run processes the work items in order and returns cycle-accurate
// results. It mutates the cache: program entries get their QAddr/Status
// fields updated and generated pulses land in the .pulse segment.
func (p *Pipeline) Run(items []WorkItem) (Result, error) {
	var res Result
	if len(items) == 0 {
		return res, nil
	}

	if cap(p.pguScratch) < p.cfg.PGUs {
		p.pguScratch = make([]pguState, p.cfg.PGUs)
		p.boolScratch = make([]bool, 2*p.cfg.PGUs)
	}
	pgus := p.pguScratch[:p.cfg.PGUs]
	for i := range pgus {
		pgus[i] = pguState{}
	}
	// reqs/free are the stage-4 and stage-3 per-cycle request vectors;
	// splitting one scratch array keeps the cycle loop allocation-free.
	reqs := p.boolScratch[:p.cfg.PGUs]
	free := p.boolScratch[p.cfg.PGUs : 2*p.cfg.PGUs]
	// A fresh arbiter per run keeps the round-robin grant rotation (and
	// therefore cycle-exact timing) independent of prior runs.
	arb := hw.NewArbiter(p.cfg.PGUs)
	next := 0 // next item to fetch (stage 1 pointer)

	// Stage latches (value + valid flag, so latching never allocates).
	var s2 WorkItem // fetched, awaiting decode
	var s2v bool
	var s3 job // decoded, awaiting PGU dispatch
	var s3v bool
	var s2stall int64 // stage-2 QSpace stall countdown

	inflight := func() bool {
		if s2v || s3v || s2stall > 0 {
			return true
		}
		for _, g := range pgus {
			if g.busy || g.done {
				return true
			}
		}
		return false
	}

	var cycles int64
	for next < len(items) || inflight() {
		cycles++
		if cycles > int64(len(items))*p.cfg.PGULatency*2+10000 {
			return res, fmt.Errorf("pipeline: livelock after %d cycles", cycles)
		}

		// Stage 4: arbitrate one completed PGU and write back its pulse.
		for i := range pgus {
			reqs[i] = pgus[i].done
		}
		if g := arb.Grant(reqs); g >= 0 {
			j := pgus[g].current
			if err := p.writePulse(j); err != nil {
				return res, err
			}
			if err := p.setStatus(j, qcc.StatusValid); err != nil {
				return res, err
			}
			pgus[g] = pguState{}
			res.Writebacks++
		}

		// Stage 3 bookkeeping: tick running PGUs.
		for i := range pgus {
			if pgus[i].busy {
				pgus[i].remain--
				if pgus[i].remain <= 0 {
					pgus[i].busy = false
					pgus[i].done = true
				}
			}
		}

		// Stage 3 dispatch: priority-encode a free PGU for the s3 job.
		stalled := false
		if s3v {
			for i := range pgus {
				free[i] = !pgus[i].busy && !pgus[i].done
			}
			if g := hw.PriorityEncoder(free); g >= 0 {
				pgus[g] = pguState{busy: true, remain: p.cfg.PGULatency, current: s3}
				s3v = false
				busy := int64(0)
				for i := range pgus {
					if pgus[i].busy {
						busy++
					}
				}
				p.gPGUBusy.Set(busy)
			} else {
				stalled = true // all PGUs occupied: stall stages 1–2
				res.StallCycles++
			}
		}

		// Stage 2: decode + SLT, stalling on QSpace traffic.
		if s2stall > 0 {
			s2stall--
			res.QSpaceCycles++
		} else if !stalled && s2v && !s3v {
			j, generate, extra, err := p.decode(s2)
			if err != nil {
				return res, err
			}
			res.Processed++
			s2stall = extra
			if generate {
				s3, s3v = j, true
			} else {
				res.Skipped++
			}
			s2v = false
		}

		// Stage 1: fetch.
		if !stalled && s2stall == 0 && !s2v && next < len(items) {
			s2, s2v = items[next], true
			next++
		}
	}
	res.Cycles = cycles
	res.Generated = res.Writebacks
	p.cProcessed.Add(int64(res.Processed))
	p.cGenerated.Add(int64(res.Generated))
	p.cSkipped.Add(int64(res.Skipped))
	p.cStall.Add(res.StallCycles)
	p.cQSpaceStall.Add(res.QSpaceCycles)
	p.cCycles.Add(res.Cycles)
	return res, nil
}

// decode performs the stage-2 work for one entry. It reports whether a
// pulse must be generated and how many extra cycles stage 2 stalls on
// QSpace traffic (datapath ❸).
func (p *Pipeline) decode(it WorkItem) (job, bool, int64, error) {
	e, err := p.cache.ReadProgram(it.Qubit, it.Index, qcc.HardwareAccess)
	if err != nil {
		return job{}, false, 0, err
	}
	data := e.Data
	if e.RegFlag {
		v, err := p.cache.ReadReg(int(e.Data), qcc.HardwareAccess)
		if err != nil {
			return job{}, false, 0, err
		}
		data = v & qcc.MaxEntryData
	}
	j := job{qubit: it.Qubit, index: it.Index, kind: circuit.Kind(e.Type), data: data}

	if e.Status == qcc.StatusValid && !e.RegFlag {
		// QAddress already valid and the parameter cannot have changed:
		// nothing to do.
		return j, false, 0, nil
	}

	if !p.cfg.UseSLT {
		// Ablation: always allocate a fresh slot and generate.
		slot := p.bank.Qubit(it.Qubit).AllocateAlways()
		j.qaddr = slot
		e.QAddr = slot & qcc.MaxEntryQAddr
		e.Status = qcc.StatusPending
		if err := p.cache.WriteProgram(it.Qubit, it.Index, e, qcc.HardwareAccess); err != nil {
			return j, false, 0, err
		}
		return j, true, 0, nil
	}

	res := p.bank.Qubit(it.Qubit).Lookup(e.Type, data)
	j.qaddr = res.QAddr
	e.QAddr = res.QAddr & qcc.MaxEntryQAddr
	// SLT hits resolve in the pipeline cycle. A QSpace HIT must wait for
	// the DRAM read (the stored QAddress is needed before linking), so it
	// pays the datapath-❸ latency. Allocation proceeds speculatively and
	// eviction write-backs are posted, so neither stalls stage 2.
	var extra int64
	if res.Outcome == slt.HitQSpace {
		extra += p.cfg.QSpaceLatency
	}
	if res.Outcome == slt.Allocated {
		e.Status = qcc.StatusPending
		if err := p.cache.WriteProgram(it.Qubit, it.Index, e, qcc.HardwareAccess); err != nil {
			return j, false, 0, err
		}
		return j, true, extra, nil
	}
	// Hit (SLT or QSpace): pulse exists; just link the address.
	e.Status = qcc.StatusValid
	if err := p.cache.WriteProgram(it.Qubit, it.Index, e, qcc.HardwareAccess); err != nil {
		return j, false, 0, err
	}
	return j, false, extra, nil
}

// writePulse synthesizes the job's pulse and stores its first entry at
// the allocated slot.
func (p *Pipeline) writePulse(j job) error {
	durNs := p.cfg.Timing.GateDuration(j.kind).Nanoseconds()
	entries := p.pgu.Generate(j.kind, qcc.DequantizeAngle(j.data), durNs)
	cfg := p.cache.Config()
	for i, e := range entries {
		idx := (int(j.qaddr) + i) % cfg.PulseEntries
		if err := p.cache.WritePulse(j.qubit, idx, e, qcc.HardwareAccess); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pipeline) setStatus(j job, status uint8) error {
	e, err := p.cache.ReadProgram(j.qubit, j.index, qcc.HardwareAccess)
	if err != nil {
		return err
	}
	e.Status = status
	return p.cache.WriteProgram(j.qubit, j.index, e, qcc.HardwareAccess)
}
