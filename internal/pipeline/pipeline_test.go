package pipeline

import (
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qcc"
	"qtenon/internal/slt"
)

// rig builds a small cache + SLT bank + pipeline.
func rig(t *testing.T, nqubits int, cfg Config) (*Pipeline, *qcc.Cache, *slt.Bank) {
	t.Helper()
	cacheCfg := qcc.DefaultConfig(nqubits)
	cache, err := qcc.NewCache(cacheCfg)
	if err != nil {
		t.Fatal(err)
	}
	bank := slt.NewBank(nqubits, cacheCfg.PulseEntries)
	p, err := New(cfg, cache, bank)
	if err != nil {
		t.Fatal(err)
	}
	return p, cache, bank
}

// loadGate writes one program entry describing a gate.
func loadGate(t *testing.T, cache *qcc.Cache, q, idx int, kind circuit.Kind, theta float64) {
	t.Helper()
	e := qcc.ProgramEntry{
		Type:   uint8(kind),
		Data:   qcc.QuantizeAngle(theta),
		Status: qcc.StatusInvalid,
	}
	if err := cache.WriteProgram(q, idx, e, qcc.HostAccess); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRun(t *testing.T) {
	p, _, _ := rig(t, 2, DefaultConfig())
	res, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.Processed != 0 {
		t.Errorf("empty run = %+v", res)
	}
}

func TestSingleGateLatency(t *testing.T) {
	cfg := DefaultConfig()
	p, cache, _ := rig(t, 2, cfg)
	loadGate(t, cache, 0, 0, circuit.RX, 1.25)
	res, err := p.Run([]WorkItem{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 1 || res.Processed != 1 {
		t.Fatalf("res = %+v", res)
	}
	// One gate: ~2 cycles of front end + 1000 PGU cycles + writeback.
	if res.Cycles < cfg.PGULatency || res.Cycles > cfg.PGULatency+10 {
		t.Errorf("cycles = %d, want ≈%d", res.Cycles, cfg.PGULatency)
	}
	// Program entry got a valid QAddr.
	e, _ := cache.ReadProgram(0, 0, qcc.HostAccess)
	if e.Status != qcc.StatusValid {
		t.Errorf("status = %d, want valid", e.Status)
	}
}

func TestSLTSkipsRepeatedParameters(t *testing.T) {
	p, cache, bank := rig(t, 1, DefaultConfig())
	// Same angle 10 times on one qubit.
	items := make([]WorkItem, 10)
	for i := range items {
		loadGate(t, cache, 0, i, circuit.RX, 0.5)
		items[i] = WorkItem{0, i}
	}
	res, err := p.Run(items)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 1 {
		t.Errorf("generated = %d, want 1 (SLT skips repeats)", res.Generated)
	}
	if res.Skipped != 9 {
		t.Errorf("skipped = %d, want 9", res.Skipped)
	}
	// All entries share one pulse address.
	first, _ := cache.ReadProgram(0, 0, qcc.HostAccess)
	for i := 1; i < 10; i++ {
		e, _ := cache.ReadProgram(0, i, qcc.HostAccess)
		if e.QAddr != first.QAddr {
			t.Errorf("entry %d QAddr %d != %d", i, e.QAddr, first.QAddr)
		}
	}
	if hr := bank.TotalStats().HitRate(); hr < 0.89 {
		t.Errorf("hit rate = %v", hr)
	}
}

func TestDistinctAnglesAllGenerate(t *testing.T) {
	p, cache, _ := rig(t, 1, DefaultConfig())
	items := make([]WorkItem, 8)
	for i := range items {
		loadGate(t, cache, 0, i, circuit.RX, 0.1*float64(i+1))
		items[i] = WorkItem{0, i}
	}
	res, err := p.Run(items)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 8 {
		t.Errorf("generated = %d, want 8", res.Generated)
	}
}

func TestPGUParallelism(t *testing.T) {
	// 8 distinct gates with 8 PGUs: total time ≈ one PGU latency, not 8×.
	cfg := DefaultConfig()
	p, cache, _ := rig(t, 8, cfg)
	var items []WorkItem
	for q := 0; q < 8; q++ {
		loadGate(t, cache, q, 0, circuit.RX, 0.1*float64(q+1))
		items = append(items, WorkItem{q, 0})
	}
	res, err := p.Run(items)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 8 {
		t.Fatalf("generated = %d", res.Generated)
	}
	if res.Cycles > cfg.PGULatency+50 {
		t.Errorf("8 gates on 8 PGUs took %d cycles; want ≈%d (parallel)", res.Cycles, cfg.PGULatency)
	}
}

func TestPGUStallWhenOversubscribed(t *testing.T) {
	// 2 PGUs, 6 distinct gates: at least 3 serial PGU rounds, with stalls.
	cfg := DefaultConfig()
	cfg.PGUs = 2
	p, cache, _ := rig(t, 1, cfg)
	var items []WorkItem
	for i := 0; i < 6; i++ {
		loadGate(t, cache, 0, i, circuit.RY, 0.2*float64(i+1))
		items = append(items, WorkItem{0, i})
	}
	res, err := p.Run(items)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles == 0 {
		t.Error("no stalls with 6 jobs on 2 PGUs")
	}
	if res.Cycles < 3*cfg.PGULatency {
		t.Errorf("cycles = %d, want ≥ %d (3 serial rounds)", res.Cycles, 3*cfg.PGULatency)
	}
}

func TestRegfileIndirection(t *testing.T) {
	p, cache, _ := rig(t, 1, DefaultConfig())
	// Entry with reg_flag: data = regfile index 7.
	e := qcc.ProgramEntry{Type: uint8(circuit.RZ), RegFlag: true, Data: 7, Status: qcc.StatusInvalid}
	if err := cache.WriteProgram(0, 0, e, qcc.HostAccess); err != nil {
		t.Fatal(err)
	}
	if err := cache.WriteReg(7, qcc.QuantizeAngle(1.5), qcc.HostAccess); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run([]WorkItem{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 1 {
		t.Fatalf("generated = %d", res.Generated)
	}
	// Update the register (q_update) and rerun: angle changed, so the SLT
	// misses and a new pulse is generated.
	if err := cache.WriteReg(7, qcc.QuantizeAngle(2.5), qcc.HostAccess); err != nil {
		t.Fatal(err)
	}
	res2, err := p.Run([]WorkItem{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Generated != 1 {
		t.Errorf("after q_update: generated = %d, want 1", res2.Generated)
	}
	// Reverting to the original angle hits the SLT: zero generation.
	if err := cache.WriteReg(7, qcc.QuantizeAngle(1.5), qcc.HostAccess); err != nil {
		t.Fatal(err)
	}
	res3, err := p.Run([]WorkItem{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Generated != 0 || res3.Skipped != 1 {
		t.Errorf("revert: %+v, want pure SLT hit", res3)
	}
}

func TestValidStatusFixedGateSkipsEntirely(t *testing.T) {
	p, cache, bank := rig(t, 1, DefaultConfig())
	loadGate(t, cache, 0, 0, circuit.RX, 0.7)
	if _, err := p.Run([]WorkItem{{0, 0}}); err != nil {
		t.Fatal(err)
	}
	before := bank.TotalStats().Lookups
	// Second q_gen over the same (non-reg) entry: status is valid, no SLT
	// lookup is even needed.
	res, err := p.Run([]WorkItem{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 0 {
		t.Errorf("regenerated a valid entry")
	}
	if bank.TotalStats().Lookups != before {
		t.Errorf("valid fixed entry still queried the SLT")
	}
}

func TestNoSLTAblationAlwaysGenerates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseSLT = false
	p, cache, _ := rig(t, 1, cfg)
	items := make([]WorkItem, 5)
	for i := range items {
		loadGate(t, cache, 0, i, circuit.RX, 0.5) // identical parameters
		items[i] = WorkItem{0, i}
	}
	res, err := p.Run(items)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 5 {
		t.Errorf("no-SLT generated = %d, want 5", res.Generated)
	}
}

func TestPulseWrittenToCache(t *testing.T) {
	p, cache, _ := rig(t, 1, DefaultConfig())
	loadGate(t, cache, 0, 0, circuit.RX, circuit.Pi/2)
	if _, err := p.Run([]WorkItem{{0, 0}}); err != nil {
		t.Fatal(err)
	}
	e, _ := cache.ReadProgram(0, 0, qcc.HostAccess)
	pe, err := cache.ReadPulse(0, int(e.QAddr), qcc.HardwareAccess)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for _, w := range pe {
		if w != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("pulse entry is all zeros; synthesis did not land")
	}
}

func TestNewValidation(t *testing.T) {
	cacheCfg := qcc.DefaultConfig(2)
	cache, _ := qcc.NewCache(cacheCfg)
	bank := slt.NewBank(4, cacheCfg.PulseEntries) // mismatched qubit count
	if _, err := New(DefaultConfig(), cache, bank); err == nil {
		t.Error("New accepted mismatched geometry")
	}
	bad := DefaultConfig()
	bad.PGUs = 0
	if _, err := New(bad, cache, slt.NewBank(2, 1024)); err == nil {
		t.Error("New accepted zero PGUs")
	}
}

func TestThroughputScalesWithPGUs(t *testing.T) {
	// 32 distinct gates: 8 PGUs should be ≈4× faster than 1 PGU.
	mkRun := func(pgus int) int64 {
		cfg := DefaultConfig()
		cfg.PGUs = pgus
		p, cache, _ := rig(t, 1, cfg)
		var items []WorkItem
		for i := 0; i < 32; i++ {
			loadGate(t, cache, 0, i, circuit.RX, 0.01*float64(i+1))
			items = append(items, WorkItem{0, i})
		}
		res, err := p.Run(items)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	one := mkRun(1)
	eight := mkRun(8)
	speedup := float64(one) / float64(eight)
	if speedup < 6 || speedup > 9 {
		t.Errorf("PGU speedup 1→8 = %.2f, want ≈8", speedup)
	}
}
