package opt

import "math"

// Adam minimizes eval with the Adam update rule over parameter-shift
// gradients — an extension beyond the paper's GD/SPSA pair, included
// because it is the optimizer most VQA software stacks reach for. Its
// evaluation pattern matches GD (2P+1 per iteration), so its
// architecture traffic is GD-shaped; only the host-side update differs.
func Adam(eval Evaluator, initial []float64, o Options) (Result, error) {
	if err := o.validate(len(initial)); err != nil {
		return Result{}, err
	}
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	params := append([]float64(nil), initial...)
	m := make([]float64, len(params))
	v := make([]float64, len(params))
	grad := make([]float64, len(params))
	var res Result
	var scr gradScratch
	for iter := 1; iter <= o.Iterations; iter++ {
		n, err := shiftGradient(eval, params, o.ShiftScale, o.Parallelism, grad, &scr)
		res.Evaluations += n
		if err != nil {
			return res, err
		}
		b1t := 1 - math.Pow(beta1, float64(iter))
		b2t := 1 - math.Pow(beta2, float64(iter))
		for i := range params {
			m[i] = beta1*m[i] + (1-beta1)*grad[i]
			v[i] = beta2*v[i] + (1-beta2)*grad[i]*grad[i]
			mh := m[i] / b1t
			vh := v[i] / b2t
			params[i] -= o.LearningRate * mh / (math.Sqrt(vh) + eps)
		}
		cost, err := eval(params)
		if err != nil {
			return res, err
		}
		res.Evaluations++
		res.History = append(res.History, cost)
	}
	res.Params = params
	return res, nil
}
