package opt

import (
	"fmt"
	"math"
	"testing"
)

// batchTestCost is a deterministic non-trivial objective: a coupled
// transcendental bowl whose gradient varies across iterations, so any
// ordering or numeric divergence between the serial and batched drivers
// shows up in the history.
func batchTestCost(p []float64) (float64, error) {
	s := 0.0
	for i, x := range p {
		s += math.Sin(x+0.3*float64(i)) + 0.5*x*x
		if i > 0 {
			s += 0.25 * math.Cos(x*p[i-1])
		}
	}
	return s, nil
}

func batchTestOptions(iters int) Options {
	o := DefaultOptions()
	o.Iterations = iters
	return o
}

// The batched gradient-descent driver over the serial reference adapter
// must be bit-identical to the serial driver: same history, same final
// parameters, same evaluation count.
func TestGradientDescentBatchMatchesSerial(t *testing.T) {
	initial := []float64{0.4, -1.2, 2.0, 0.05}
	o := batchTestOptions(8)
	want, err := GradientDescent(batchTestCost, initial, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GradientDescentBatch(Batch(batchTestCost), initial, o)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, got, want)
}

// Same contract for Adam.
func TestAdamBatchMatchesSerial(t *testing.T) {
	initial := []float64{0.4, -1.2, 2.0, 0.05, 1.7}
	o := batchTestOptions(8)
	want, err := Adam(batchTestCost, initial, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AdamBatch(Batch(batchTestCost), initial, o)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, got, want)
}

func compareResults(t *testing.T, got, want Result) {
	t.Helper()
	if got.Evaluations != want.Evaluations {
		t.Errorf("evaluations = %d, want %d", got.Evaluations, want.Evaluations)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("history length = %d, want %d", len(got.History), len(want.History))
	}
	for i := range want.History {
		if got.History[i] != want.History[i] {
			t.Errorf("history[%d] = %.17g, want %.17g", i, got.History[i], want.History[i])
		}
	}
	for i := range want.Params {
		if got.Params[i] != want.Params[i] {
			t.Errorf("params[%d] = %.17g, want %.17g", i, got.Params[i], want.Params[i])
		}
	}
}

// The batch a BatchEvaluator sees per iteration is [+0, −0, +1, −1, …]
// followed by one single-point batch at the updated parameters — the
// serial shiftGradient's exact evaluation sequence (DESIGN.md §11.4).
func TestBatchOrderIsSerialShiftOrder(t *testing.T) {
	initial := []float64{1.0, 2.0}
	o := batchTestOptions(1)
	var batches [][]int // lengths seen
	var firstBatch [][]float64
	eval := func(sets [][]float64, out []float64) error {
		batches = append(batches, []int{len(sets)})
		if firstBatch == nil {
			for _, s := range sets {
				firstBatch = append(firstBatch, append([]float64(nil), s...))
			}
		}
		for k := range sets {
			v, err := batchTestCost(sets[k])
			if err != nil {
				return err
			}
			out[k] = v
		}
		return nil
	}
	if _, err := GradientDescentBatch(eval, initial, o); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 || batches[0][0] != 4 || batches[1][0] != 1 {
		t.Fatalf("batch sizes = %v, want [[4] [1]]", batches)
	}
	s := o.ShiftScale
	want := [][]float64{
		{1 + s, 2}, {1 - s, 2},
		{1, 2 + s}, {1, 2 - s},
	}
	for k := range want {
		for i := range want[k] {
			if firstBatch[k][i] != want[k][i] {
				t.Fatalf("batch[%d] = %v, want %v", k, firstBatch[k], want[k])
			}
		}
	}
}

// Errors from the evaluator surface with the evaluations counted so far.
func TestBatchErrorPropagation(t *testing.T) {
	boom := fmt.Errorf("boom")
	eval := func(sets [][]float64, out []float64) error { return boom }
	if _, err := GradientDescentBatch(eval, []float64{1}, batchTestOptions(2)); err != boom {
		t.Errorf("GradientDescentBatch error = %v, want boom", err)
	}
	if _, err := AdamBatch(eval, []float64{1}, batchTestOptions(2)); err != boom {
		t.Errorf("AdamBatch error = %v, want boom", err)
	}
}

// The convenience router prefers the batch path and falls back serially.
func TestGradientDescentEvaluatorRouting(t *testing.T) {
	initial := []float64{0.3, -0.7}
	o := batchTestOptions(3)
	want, err := GradientDescent(batchTestCost, initial, o)
	if err != nil {
		t.Fatal(err)
	}
	viaBatch, err := GradientDescentEvaluator(nil, Batch(batchTestCost), initial, o)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, viaBatch, want)
	viaSerial, err := GradientDescentEvaluator(batchTestCost, nil, initial, o)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, viaSerial, want)
	if _, err := GradientDescentEvaluator(nil, nil, initial, o); err == nil {
		t.Error("router accepted two nil evaluators")
	}
}
