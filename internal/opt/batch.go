package opt

import (
	"fmt"
	"math"
)

// BatchEvaluator estimates the cost at every parameter vector in sets,
// writing out[k] for sets[k]. Implementations may share work across the
// batch — one fused-gate plan, one scratch arena, one statevector for
// all 2·P shifted circuits of a parameter-shift gradient — but must
// evaluate the points with the same numerics and, for stateful
// accounting evaluators, the same per-call sequence a serial Evaluator
// would use: optimizers driven through a batch evaluator are required to
// produce identical histories to their serial counterparts.
//
// len(out) == len(sets) is the caller's responsibility; the vectors in
// sets may alias the evaluator's own scratch between calls but are
// read-only during one call.
type BatchEvaluator func(sets [][]float64, out []float64) error

// Batch adapts a plain Evaluator to the batch interface by evaluating
// serially in batch order — the reference semantics every specialized
// BatchEvaluator must match.
func Batch(eval Evaluator) BatchEvaluator {
	return func(sets [][]float64, out []float64) error {
		for k, p := range sets {
			v, err := eval(p)
			if err != nil {
				return err
			}
			out[k] = v
		}
		return nil
	}
}

// batchScratch is the reusable working memory of batched parameter-shift
// runs: the 2P shifted vectors (views into one flat backing array), the
// batch-order value array, and the single-point batch used for the
// post-update cost.
type batchScratch struct {
	flat    []float64
	sets    [][]float64
	vals    []float64
	oneSet  [][]float64
	oneVal  []float64
	oneData []float64
}

func (s *batchScratch) ensure(p int) {
	n := 2 * p
	// oneVal==nil catches the p==0 first call: the gradient batch is
	// empty, but the post-update cost still needs its single-point batch.
	if s.oneVal == nil || cap(s.flat) < n*p {
		s.flat = make([]float64, n*p)
		s.sets = make([][]float64, n)
		for k := 0; k < n; k++ {
			s.sets[k] = s.flat[k*p : (k+1)*p]
		}
		s.vals = make([]float64, n)
		s.oneData = make([]float64, p)
		s.oneSet = [][]float64{s.oneData}
		s.oneVal = make([]float64, 1)
	}
	s.sets = s.sets[:n]
	s.vals = s.vals[:n]
}

// shiftGradientBatch fills grad with the parameter-shift estimate at
// params using one BatchEvaluator call for all 2P shifted points. The
// batch is ordered [+0, −0, +1, −1, …] — exactly the sequence the serial
// shiftGradient evaluates — so a Batch-adapted Evaluator reproduces the
// serial path's evaluation order and results bit for bit.
//
//qtenon:hotpath
func shiftGradientBatch(eval BatchEvaluator, params []float64, shift float64, grad []float64, scr *batchScratch) (int, error) {
	p := len(params)
	scr.ensure(p)
	for i := 0; i < p; i++ {
		plus, minus := scr.sets[2*i], scr.sets[2*i+1]
		copy(plus, params)
		copy(minus, params)
		plus[i] = params[i] + shift
		minus[i] = params[i] - shift
	}
	if err := eval(scr.sets, scr.vals); err != nil {
		return 0, err
	}
	for i := 0; i < p; i++ {
		grad[i] = (scr.vals[2*i] - scr.vals[2*i+1]) / 2
	}
	return 2 * p, nil
}

// GradientDescentBatch is GradientDescent driven through a
// BatchEvaluator: each iteration issues one batch of the 2P shifted
// points followed by one single-point batch for the post-update cost.
// The evaluation points, order and counts are identical to
// GradientDescent's serial path, so GradientDescentBatch(Batch(eval), …)
// returns bit-identical results to GradientDescent(eval, …) with
// Parallelism ≤ 1.
func GradientDescentBatch(eval BatchEvaluator, initial []float64, o Options) (Result, error) {
	if err := o.validate(len(initial)); err != nil {
		return Result{}, err
	}
	params := append([]float64(nil), initial...)
	var res Result
	grad := make([]float64, len(params))
	var scr batchScratch
	for iter := 0; iter < o.Iterations; iter++ {
		n, err := shiftGradientBatch(eval, params, o.ShiftScale, grad, &scr)
		res.Evaluations += n
		if err != nil {
			return res, err
		}
		for i := range params {
			params[i] -= o.LearningRate * grad[i]
		}
		copy(scr.oneData, params)
		if err := eval(scr.oneSet, scr.oneVal); err != nil {
			return res, err
		}
		res.Evaluations++
		res.History = append(res.History, scr.oneVal[0])
	}
	res.Params = params
	return res, nil
}

// AdamBatch is Adam driven through a BatchEvaluator, with the same
// equivalence contract as GradientDescentBatch.
func AdamBatch(eval BatchEvaluator, initial []float64, o Options) (Result, error) {
	if err := o.validate(len(initial)); err != nil {
		return Result{}, err
	}
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	params := append([]float64(nil), initial...)
	m := make([]float64, len(params))
	v := make([]float64, len(params))
	grad := make([]float64, len(params))
	var res Result
	var scr batchScratch
	for iter := 1; iter <= o.Iterations; iter++ {
		n, err := shiftGradientBatch(eval, params, o.ShiftScale, grad, &scr)
		res.Evaluations += n
		if err != nil {
			return res, err
		}
		b1t := 1 - math.Pow(beta1, float64(iter))
		b2t := 1 - math.Pow(beta2, float64(iter))
		for i := range params {
			m[i] = beta1*m[i] + (1-beta1)*grad[i]
			v[i] = beta2*v[i] + (1-beta2)*grad[i]*grad[i]
			mh := m[i] / b1t
			vh := v[i] / b2t
			params[i] -= o.LearningRate * mh / (math.Sqrt(vh) + eps)
		}
		copy(scr.oneData, params)
		if err := eval(scr.oneSet, scr.oneVal); err != nil {
			return res, err
		}
		res.Evaluations++
		res.History = append(res.History, scr.oneVal[0])
	}
	res.Params = params
	return res, nil
}

// GradientDescentEvaluator exists so callers can pass either form
// without two code paths: it routes to GradientDescentBatch when batch
// is non-nil and otherwise to GradientDescent.
func GradientDescentEvaluator(eval Evaluator, batch BatchEvaluator, initial []float64, o Options) (Result, error) {
	if batch != nil {
		return GradientDescentBatch(batch, initial, o)
	}
	if eval == nil {
		return Result{}, fmt.Errorf("opt: no evaluator provided")
	}
	return GradientDescent(eval, initial, o)
}
