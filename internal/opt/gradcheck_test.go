package opt

import (
	"math"
	"testing"

	"qtenon/internal/qsim"
	"qtenon/internal/vqa"
)

// QAOA shares each layer parameter across many gates, which makes the
// single-shift π/2 rule a BIASED gradient estimator (the exact rule
// would sum per-gate shifts). What gradient descent actually needs is
// descent: following the estimator must still reduce the exact cost.
func TestParameterShiftDescendsOnQAOA(t *testing.T) {
	w, err := vqa.NewQAOA(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	cost := func(p []float64) (float64, error) {
		st, err := qsim.Run(w.Circuit.Bind(p))
		if err != nil {
			return 0, err
		}
		return w.Hamiltonian.Expectation(st), nil
	}
	start, err := cost(w.InitialParams)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Iterations = 12
	o.LearningRate = 0.08
	res, err := GradientDescent(cost, w.InitialParams, o)
	if err != nil {
		t.Fatal(err)
	}
	best := res.History[0]
	for _, c := range res.History {
		if c < best {
			best = c
		}
	}
	if best >= start-0.3 {
		t.Errorf("parameter-shift GD made no progress on QAOA: start %v, best %v", start, best)
	}
}

// For NON-shared parameters (one gate per parameter) the rule is exact:
// build a VQE-style ansatz where each RY has its own parameter.
func TestParameterShiftExactOnIndependentParams(t *testing.T) {
	w, err := vqa.NewVQE(4, 2) // 8 independent RY parameters
	if err != nil {
		t.Fatal(err)
	}
	cost := func(p []float64) float64 {
		st, err := qsim.Run(w.Circuit.Bind(p))
		if err != nil {
			t.Fatal(err)
		}
		return w.Hamiltonian.Expectation(st)
	}
	params := append([]float64(nil), w.InitialParams...)
	for i := range params {
		plus, minus := append([]float64(nil), params...), append([]float64(nil), params...)
		plus[i] += math.Pi / 2
		minus[i] -= math.Pi / 2
		shiftGrad := (cost(plus) - cost(minus)) / 2

		const h = 1e-6
		fp, fm := append([]float64(nil), params...), append([]float64(nil), params...)
		fp[i] += h
		fm[i] -= h
		fdGrad := (cost(fp) - cost(fm)) / (2 * h)

		if math.Abs(shiftGrad-fdGrad) > 1e-4 {
			t.Errorf("param %d: shift grad %v != FD grad %v (must be exact)", i, shiftGrad, fdGrad)
		}
	}
}
