package opt

import (
	"math"
	"testing"
)

func TestAdamConvergesOnQuadratic(t *testing.T) {
	target := []float64{1.0, -0.7}
	o := DefaultOptions()
	o.Iterations = 200
	o.LearningRate = 0.1
	o.ShiftScale = 0.5
	res, err := Adam(quadratic(target), []float64{0, 0}, o)
	if err != nil {
		t.Fatal(err)
	}
	final := res.History[len(res.History)-1]
	if final > 1e-3 {
		t.Errorf("Adam final cost = %v", final)
	}
	for i := range target {
		if math.Abs(res.Params[i]-target[i]) > 0.05 {
			t.Errorf("param %d = %v, want %v", i, res.Params[i], target[i])
		}
	}
}

func TestAdamOnSinusoid(t *testing.T) {
	o := DefaultOptions()
	o.Iterations = 120
	o.LearningRate = 0.15
	n := 3
	res, err := Adam(sinusoidal(n), make([]float64, n), o)
	if err != nil {
		t.Fatal(err)
	}
	final := res.History[len(res.History)-1]
	if final > -float64(n)+0.1 {
		t.Errorf("final = %v, want ≈%v", final, -float64(n))
	}
}

func TestAdamEvaluationPatternMatchesGD(t *testing.T) {
	n, iters := 4, 6
	o := DefaultOptions()
	o.Iterations = iters
	calls := 0
	eval := func(p []float64) (float64, error) { calls++; return 0, nil }
	res, err := Adam(eval, make([]float64, n), o)
	if err != nil {
		t.Fatal(err)
	}
	want := GDEvaluationsPerRun(n, iters)
	if calls != want || res.Evaluations != want {
		t.Errorf("Adam calls = %d, want GD-shaped %d", calls, want)
	}
}

func TestAdamValidates(t *testing.T) {
	o := DefaultOptions()
	o.Iterations = 0
	if _, err := Adam(quadratic([]float64{0}), []float64{0}, o); err == nil {
		t.Error("Adam accepted zero iterations")
	}
}
