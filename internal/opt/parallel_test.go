package opt

import (
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

// sphere is a pure, goroutine-safe evaluator with a known minimum.
func sphere(params []float64) (float64, error) {
	var c float64
	for i, p := range params {
		d := p - 0.3*float64(i+1)
		c += d * d
	}
	return c, nil
}

// Parallel evaluation must reproduce the serial run exactly: same
// evaluation points assembled by index means bit-identical gradients,
// parameters, history and counts.
func TestParallelMatchesSerial(t *testing.T) {
	initial := []float64{0.9, -0.4, 1.7, 0.2, -1.1}
	base := DefaultOptions()
	base.Iterations = 6

	type runner func(Evaluator, []float64, Options) (Result, error)
	for name, run := range map[string]runner{"GD": GradientDescent, "SPSA": SPSA, "Adam": Adam} {
		serialOpts := base
		serialOpts.Parallelism = 1
		serial, err := run(sphere, initial, serialOpts)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		parallelOpts := base
		parallelOpts.Parallelism = 8
		parallel, err := run(sphere, initial, parallelOpts)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: parallel result differs from serial:\n serial  %+v\n parallel %+v", name, serial, parallel)
		}
	}
}

// The fan-out must actually overlap evaluations when allowed to.
func TestParallelismEngagesConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	eval := func(params []float64) (float64, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		// Hold the slot long enough for siblings to arrive.
		var s float64
		for i := 0; i < 20000; i++ {
			s += math.Sqrt(float64(i))
		}
		_ = s
		inFlight.Add(-1)
		return sphere(params)
	}
	o := DefaultOptions()
	o.Iterations = 4
	o.Parallelism = 4
	if _, err := GradientDescent(eval, []float64{1, 2, 3, 4, 5, 6}, o); err != nil {
		t.Fatal(err)
	}
	// On a single hardware thread goroutines may still serialize; only
	// require that the machinery admits > 1 when the scheduler allows.
	if peak.Load() < 1 {
		t.Fatalf("no evaluations observed")
	}
	t.Logf("peak concurrent evaluations: %d", peak.Load())
}

// Errors from any parallel evaluation must surface.
func TestParallelErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	eval := func(params []float64) (float64, error) {
		if calls.Add(1) == 3 {
			return 0, boom
		}
		return sphere(params)
	}
	o := DefaultOptions()
	o.Iterations = 2
	o.Parallelism = 4
	if _, err := GradientDescent(eval, []float64{1, 2, 3}, o); !errors.Is(err, boom) {
		t.Fatalf("GD error = %v, want %v", err, boom)
	}
	calls.Store(0)
	if _, err := SPSA(eval, []float64{1, 2, 3}, o); !errors.Is(err, boom) {
		t.Fatalf("SPSA error = %v, want %v", err, boom)
	}
	calls.Store(0)
	if _, err := Adam(eval, []float64{1, 2, 3}, o); !errors.Is(err, boom) {
		t.Fatalf("Adam error = %v, want %v", err, boom)
	}
}
