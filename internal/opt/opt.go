// Package opt implements the two parameter-optimization algorithms the
// paper evaluates (§7.1):
//
//   - Gradient Descent using the parameter-shift rule: each iteration
//     evaluates the cost at θ ± π/2 per parameter (2P evaluations), so
//     it needs many communication rounds but each round's classical work
//     is small — one parameter changes per evaluation.
//   - SPSA: each iteration evaluates two simultaneous random
//     perturbations regardless of P, so communication rounds are few but
//     every evaluation updates all parameters.
//
// Optimizers drive an Evaluator callback; the system models implement
// Evaluator with full timing accounting, so the optimizer's evaluation
// pattern is the communication pattern.
package opt

import (
	"fmt"
	"math"

	"qtenon/internal/rng"
	"sync"

	"qtenon/internal/par"
)

// Evaluator estimates the cost at a parameter vector.
//
// When Options.Parallelism > 1 the optimizers call the Evaluator from
// multiple goroutines at once, so it must be safe for concurrent use —
// pure functions and per-call simulator runs qualify; the stateful
// system models (internal/system, internal/baseline) accumulate timing
// per call and must stay on the serial default.
type Evaluator func(params []float64) (float64, error)

// Options configures an optimization run.
type Options struct {
	Iterations   int
	LearningRate float64 // GD step size
	ShiftScale   float64 // parameter-shift step (π/2 canonical)
	SPSAa        float64 // SPSA step-size numerator
	SPSAc        float64 // SPSA perturbation magnitude
	Seed         int64
	// Parallelism caps how many Evaluator calls run concurrently inside
	// one gradient (GD/Adam's 2P parameter-shift pairs) or perturbation
	// step (SPSA's two evals). Values ≤ 1 keep the serial evaluation
	// order; > 1 requires a goroutine-safe Evaluator. The evaluation
	// points, counts and resulting updates are identical either way.
	Parallelism int
}

// DefaultOptions matches the paper's setup: 10 iterations.
func DefaultOptions() Options {
	return Options{
		Iterations:   10,
		LearningRate: 0.1,
		ShiftScale:   math.Pi / 2,
		SPSAa:        0.2,
		SPSAc:        0.15,
		Seed:         1,
	}
}

// Result reports an optimization run.
type Result struct {
	Params      []float64
	History     []float64 // cost after each iteration
	Evaluations int       // total Evaluator calls
}

// validate checks run options. A zero-length parameter vector is
// allowed: gradient loops degrade to one plain evaluation per iteration
// (0-parameter workloads — e.g. the Clifford stabilizer family — have
// nothing to optimize but still exercise the full evaluation pipeline).
func (o Options) validate(nparams int) error {
	if o.Iterations <= 0 {
		return fmt.Errorf("opt: non-positive iteration count %d", o.Iterations)
	}
	if nparams < 0 {
		return fmt.Errorf("opt: negative parameter count %d", nparams)
	}
	return nil
}

// gradScratch is the reusable working memory of one optimization run's
// parameter-shift gradients: per-worker shifted parameter vectors plus
// the value/error assembly arrays. The optimizer allocates it once and
// every iteration's 2P evaluations reuse it — the gradient loop itself
// is allocation-free in steady state.
type gradScratch struct {
	shifted [][]float64
	vals    []float64
	errs    []error
}

// ensure sizes the scratch for p parameters and `slots` concurrent
// workers, growing lazily and keeping prior capacity.
func (s *gradScratch) ensure(p, slots int) {
	for len(s.shifted) < slots {
		s.shifted = append(s.shifted, nil)
	}
	for i := 0; i < slots; i++ {
		if cap(s.shifted[i]) < p {
			s.shifted[i] = make([]float64, p)
		}
		s.shifted[i] = s.shifted[i][:p]
	}
	if cap(s.vals) < 2*p {
		s.vals = make([]float64, 2*p)
		s.errs = make([]error, 2*p)
	}
	s.vals = s.vals[:2*p]
	s.errs = s.errs[:2*p]
}

// shiftGradient fills grad with the parameter-shift estimate at params:
// grad[i] = (E(θ+s·e_i) − E(θ−s·e_i)) / 2. The 2P evaluations run
// serially in the historical order when parallelism ≤ 1, or fan out
// across up to `parallelism` worker slots otherwise (par.DoScratch, so
// each concurrent evaluation owns a reused shifted-vector buffer); the
// gradient is assembled by index, so both paths produce identical
// values. It returns the number of evaluations performed (2P on
// success).
func shiftGradient(eval Evaluator, params []float64, shift float64, parallelism int, grad []float64, scr *gradScratch) (int, error) {
	p := len(params)
	if parallelism <= 1 {
		scr.ensure(p, 1)
		shifted := scr.shifted[0]
		for i := range params {
			copy(shifted, params)
			shifted[i] = params[i] + shift
			plus, err := eval(shifted)
			if err != nil {
				return 2 * i, err
			}
			shifted[i] = params[i] - shift
			minus, err := eval(shifted)
			if err != nil {
				return 2*i + 1, err
			}
			grad[i] = (plus - minus) / 2
		}
		return 2 * p, nil
	}
	scr.ensure(p, parallelism)
	vals, errs := scr.vals, scr.errs
	for k := range errs {
		errs[k] = nil
	}
	par.DoScratch(2*p, parallelism, func(slot, k int) {
		shifted := scr.shifted[slot]
		copy(shifted, params)
		i := k / 2
		if k%2 == 0 {
			shifted[i] = params[i] + shift
		} else {
			shifted[i] = params[i] - shift
		}
		vals[k], errs[k] = eval(shifted)
	})
	for _, err := range errs {
		if err != nil {
			return 2 * p, err
		}
	}
	for i := 0; i < p; i++ {
		grad[i] = (vals[2*i] - vals[2*i+1]) / 2
	}
	return 2 * p, nil
}

// evalPair evaluates two parameter vectors, concurrently when
// parallelism > 1 — SPSA's plus/minus perturbation pair.
func evalPair(eval Evaluator, a, b []float64, parallelism int) (va, vb float64, err error) {
	if parallelism <= 1 {
		if va, err = eval(a); err != nil {
			return va, vb, err
		}
		vb, err = eval(b)
		return va, vb, err
	}
	// Slot-partitioned results: the goroutine owns index 0, this frame
	// owns index 1, so neither writer touches shared state (the same
	// discipline parsafety enforces on par closures).
	var vals [2]float64
	var errs [2]error
	var wg sync.WaitGroup
	wg.Add(1)
	go func(slot int) {
		defer wg.Done()
		vals[slot], errs[slot] = eval(a)
	}(0)
	vals[1], errs[1] = eval(b)
	// Exactly one Done balances the Add(1) above and the spawned closure
	// runs one finite evaluation, so the join is structurally bounded.
	//lint:ignore ctxflow bounded join — the single spawned evaluation Dones unconditionally via defer (DESIGN.md §15.4)
	wg.Wait()
	va, vb = vals[0], vals[1]
	if errs[0] != nil {
		return va, vb, errs[0]
	}
	return va, vb, errs[1]
}

// GradientDescent minimizes eval with the parameter-shift rule.
func GradientDescent(eval Evaluator, initial []float64, o Options) (Result, error) {
	if err := o.validate(len(initial)); err != nil {
		return Result{}, err
	}
	params := append([]float64(nil), initial...)
	var res Result
	grad := make([]float64, len(params))
	var scr gradScratch
	for iter := 0; iter < o.Iterations; iter++ {
		n, err := shiftGradient(eval, params, o.ShiftScale, o.Parallelism, grad, &scr)
		res.Evaluations += n
		if err != nil {
			return res, err
		}
		for i := range params {
			params[i] -= o.LearningRate * grad[i]
		}
		cost, err := eval(params)
		if err != nil {
			return res, err
		}
		res.Evaluations++
		res.History = append(res.History, cost)
	}
	res.Params = params
	return res, nil
}

// SPSA minimizes eval with simultaneous perturbation stochastic
// approximation using Rademacher perturbations and the standard decaying
// gain sequences.
func SPSA(eval Evaluator, initial []float64, o Options) (Result, error) {
	if err := o.validate(len(initial)); err != nil {
		return Result{}, err
	}
	rng := rng.New(o.Seed)
	params := append([]float64(nil), initial...)
	var res Result
	plusP := make([]float64, len(params))
	minusP := make([]float64, len(params))
	delta := make([]float64, len(params))
	const (
		alpha = 0.602
		gamma = 0.101
		A     = 2.0
	)
	for iter := 0; iter < o.Iterations; iter++ {
		ak := o.SPSAa / math.Pow(float64(iter)+1+A, alpha)
		ck := o.SPSAc / math.Pow(float64(iter)+1, gamma)
		for i := range delta {
			if rng.Intn(2) == 0 {
				delta[i] = 1
			} else {
				delta[i] = -1
			}
			plusP[i] = params[i] + ck*delta[i]
			minusP[i] = params[i] - ck*delta[i]
		}
		plus, minus, err := evalPair(eval, plusP, minusP, o.Parallelism)
		if err != nil {
			return res, err
		}
		res.Evaluations += 2
		g := (plus - minus) / (2 * ck)
		for i := range params {
			params[i] -= ak * g * delta[i]
		}
		cost, err := eval(params)
		if err != nil {
			return res, err
		}
		res.Evaluations++
		res.History = append(res.History, cost)
	}
	res.Params = params
	return res, nil
}

// GDEvaluationsPerRun predicts the Evaluator call count of
// GradientDescent: (2·P + 1) per iteration.
func GDEvaluationsPerRun(nparams, iterations int) int {
	return (2*nparams + 1) * iterations
}

// SPSAEvaluationsPerRun predicts SPSA's call count: 3 per iteration,
// independent of the parameter count — the property §7.2 leans on.
func SPSAEvaluationsPerRun(iterations int) int { return 3 * iterations }
