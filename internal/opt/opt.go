// Package opt implements the two parameter-optimization algorithms the
// paper evaluates (§7.1):
//
//   - Gradient Descent using the parameter-shift rule: each iteration
//     evaluates the cost at θ ± π/2 per parameter (2P evaluations), so
//     it needs many communication rounds but each round's classical work
//     is small — one parameter changes per evaluation.
//   - SPSA: each iteration evaluates two simultaneous random
//     perturbations regardless of P, so communication rounds are few but
//     every evaluation updates all parameters.
//
// Optimizers drive an Evaluator callback; the system models implement
// Evaluator with full timing accounting, so the optimizer's evaluation
// pattern is the communication pattern.
package opt

import (
	"fmt"
	"math"
	"math/rand"
)

// Evaluator estimates the cost at a parameter vector.
type Evaluator func(params []float64) (float64, error)

// Options configures an optimization run.
type Options struct {
	Iterations   int
	LearningRate float64 // GD step size
	ShiftScale   float64 // parameter-shift step (π/2 canonical)
	SPSAa        float64 // SPSA step-size numerator
	SPSAc        float64 // SPSA perturbation magnitude
	Seed         int64
}

// DefaultOptions matches the paper's setup: 10 iterations.
func DefaultOptions() Options {
	return Options{
		Iterations:   10,
		LearningRate: 0.1,
		ShiftScale:   math.Pi / 2,
		SPSAa:        0.2,
		SPSAc:        0.15,
		Seed:         1,
	}
}

// Result reports an optimization run.
type Result struct {
	Params      []float64
	History     []float64 // cost after each iteration
	Evaluations int       // total Evaluator calls
}

func (o Options) validate(nparams int) error {
	if o.Iterations <= 0 {
		return fmt.Errorf("opt: non-positive iteration count %d", o.Iterations)
	}
	if nparams == 0 {
		return fmt.Errorf("opt: empty parameter vector")
	}
	return nil
}

// GradientDescent minimizes eval with the parameter-shift rule.
func GradientDescent(eval Evaluator, initial []float64, o Options) (Result, error) {
	if err := o.validate(len(initial)); err != nil {
		return Result{}, err
	}
	params := append([]float64(nil), initial...)
	var res Result
	shifted := make([]float64, len(params))
	grad := make([]float64, len(params))
	for iter := 0; iter < o.Iterations; iter++ {
		for i := range params {
			copy(shifted, params)
			shifted[i] = params[i] + o.ShiftScale
			plus, err := eval(shifted)
			if err != nil {
				return res, err
			}
			shifted[i] = params[i] - o.ShiftScale
			minus, err := eval(shifted)
			if err != nil {
				return res, err
			}
			res.Evaluations += 2
			grad[i] = (plus - minus) / 2
		}
		for i := range params {
			params[i] -= o.LearningRate * grad[i]
		}
		cost, err := eval(params)
		if err != nil {
			return res, err
		}
		res.Evaluations++
		res.History = append(res.History, cost)
	}
	res.Params = params
	return res, nil
}

// SPSA minimizes eval with simultaneous perturbation stochastic
// approximation using Rademacher perturbations and the standard decaying
// gain sequences.
func SPSA(eval Evaluator, initial []float64, o Options) (Result, error) {
	if err := o.validate(len(initial)); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	params := append([]float64(nil), initial...)
	var res Result
	plusP := make([]float64, len(params))
	minusP := make([]float64, len(params))
	delta := make([]float64, len(params))
	const (
		alpha = 0.602
		gamma = 0.101
		A     = 2.0
	)
	for iter := 0; iter < o.Iterations; iter++ {
		ak := o.SPSAa / math.Pow(float64(iter)+1+A, alpha)
		ck := o.SPSAc / math.Pow(float64(iter)+1, gamma)
		for i := range delta {
			if rng.Intn(2) == 0 {
				delta[i] = 1
			} else {
				delta[i] = -1
			}
			plusP[i] = params[i] + ck*delta[i]
			minusP[i] = params[i] - ck*delta[i]
		}
		plus, err := eval(plusP)
		if err != nil {
			return res, err
		}
		minus, err := eval(minusP)
		if err != nil {
			return res, err
		}
		res.Evaluations += 2
		g := (plus - minus) / (2 * ck)
		for i := range params {
			params[i] -= ak * g * delta[i]
		}
		cost, err := eval(params)
		if err != nil {
			return res, err
		}
		res.Evaluations++
		res.History = append(res.History, cost)
	}
	res.Params = params
	return res, nil
}

// GDEvaluationsPerRun predicts the Evaluator call count of
// GradientDescent: (2·P + 1) per iteration.
func GDEvaluationsPerRun(nparams, iterations int) int {
	return (2*nparams + 1) * iterations
}

// SPSAEvaluationsPerRun predicts SPSA's call count: 3 per iteration,
// independent of the parameter count — the property §7.2 leans on.
func SPSAEvaluationsPerRun(iterations int) int { return 3 * iterations }
