package opt

import (
	"math"
	"testing"
)

// quadratic is a deterministic strictly convex objective with minimum at
// the target vector.
func quadratic(target []float64) Evaluator {
	return func(p []float64) (float64, error) {
		var s float64
		for i := range p {
			d := p[i] - target[i]
			s += d * d
		}
		return s, nil
	}
}

// sinusoidal mimics a VQA landscape: sum of cos terms, so the
// parameter-shift rule is exact. Offsets avoid stationary starting
// points.
func sinusoidal(n int) Evaluator {
	return func(p []float64) (float64, error) {
		var s float64
		for i := 0; i < n; i++ {
			s += math.Cos(p[i] - 0.5*float64(i) - 0.2)
		}
		return s, nil
	}
}

func TestGDConvergesOnQuadratic(t *testing.T) {
	target := []float64{1.5, -0.5, 2.0}
	o := DefaultOptions()
	o.Iterations = 60
	o.LearningRate = 0.5
	// On a quadratic the shift rule estimates gradient·shift; shift 0.5
	// with lr 0.5 gives a contraction of 1/2 per iteration.
	o.ShiftScale = 0.5
	res, err := GradientDescent(quadratic(target), []float64{0, 0, 0}, o)
	if err != nil {
		t.Fatal(err)
	}
	final := res.History[len(res.History)-1]
	if final > 1e-3 {
		t.Errorf("final cost = %v, want ≈0", final)
	}
	for i := range target {
		if math.Abs(res.Params[i]-target[i]) > 0.05 {
			t.Errorf("param %d = %v, want %v", i, res.Params[i], target[i])
		}
	}
}

func TestGDParameterShiftOnSinusoid(t *testing.T) {
	// π/2 shift is the exact gradient rule for cos landscapes.
	o := DefaultOptions()
	o.Iterations = 40
	o.LearningRate = 0.3
	n := 4
	res, err := GradientDescent(sinusoidal(n), make([]float64, n), o)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum of Σ cos(...) is -n.
	final := res.History[len(res.History)-1]
	if final > -float64(n)+0.05 {
		t.Errorf("final cost = %v, want ≈ %v", final, -float64(n))
	}
}

func TestGDEvaluationCount(t *testing.T) {
	n, iters := 5, 10
	o := DefaultOptions()
	o.Iterations = iters
	calls := 0
	eval := func(p []float64) (float64, error) { calls++; return 0, nil }
	res, err := GradientDescent(eval, make([]float64, n), o)
	if err != nil {
		t.Fatal(err)
	}
	want := GDEvaluationsPerRun(n, iters)
	if calls != want || res.Evaluations != want {
		t.Errorf("calls = %d, res = %d, want %d", calls, res.Evaluations, want)
	}
	if want != (2*n+1)*iters {
		t.Errorf("GDEvaluationsPerRun formula broken: %d", want)
	}
}

func TestSPSAEvaluationCount(t *testing.T) {
	o := DefaultOptions()
	o.Iterations = 10
	calls := 0
	eval := func(p []float64) (float64, error) { calls++; return 0, nil }
	res, err := SPSA(eval, make([]float64, 100), o)
	if err != nil {
		t.Fatal(err)
	}
	want := SPSAEvaluationsPerRun(10)
	if calls != want || res.Evaluations != want {
		t.Errorf("calls = %d, want %d", calls, want)
	}
	// SPSA call count is independent of the parameter count.
	calls = 0
	if _, err := SPSA(eval, make([]float64, 3), o); err != nil {
		t.Fatal(err)
	}
	if calls != want {
		t.Errorf("SPSA calls changed with param count: %d vs %d", calls, want)
	}
}

func TestSPSAImprovesQuadratic(t *testing.T) {
	target := []float64{0.8, -0.3, 0.5, 1.1}
	o := DefaultOptions()
	o.Iterations = 120
	o.SPSAa = 0.4
	eval := quadratic(target)
	start, _ := eval([]float64{0, 0, 0, 0})
	res, err := SPSA(eval, []float64{0, 0, 0, 0}, o)
	if err != nil {
		t.Fatal(err)
	}
	final := res.History[len(res.History)-1]
	if final > start/4 {
		t.Errorf("SPSA final %v vs start %v: insufficient progress", final, start)
	}
}

func TestSPSADeterministicWithSeed(t *testing.T) {
	o := DefaultOptions()
	o.Iterations = 5
	run := func() []float64 {
		res, err := SPSA(quadratic([]float64{1, 1}), []float64{0, 0}, o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Params
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SPSA not deterministic for fixed seed")
		}
	}
}

func TestOptionValidation(t *testing.T) {
	o := DefaultOptions()
	o.Iterations = 0
	if _, err := GradientDescent(quadratic([]float64{0}), []float64{0}, o); err == nil {
		t.Error("GD accepted 0 iterations")
	}
	// Zero-parameter vectors are legal: gradient loops degrade to one
	// plain evaluation per iteration (0-param Clifford workloads).
	res, err := SPSA(quadratic(nil), nil, DefaultOptions())
	if err != nil {
		t.Errorf("SPSA rejected empty params: %v", err)
	} else if len(res.History) != DefaultOptions().Iterations {
		t.Errorf("0-param SPSA history = %d, want %d", len(res.History), DefaultOptions().Iterations)
	}
	gres, err := GradientDescent(quadratic(nil), nil, DefaultOptions())
	if err != nil {
		t.Errorf("GD rejected empty params: %v", err)
	} else if gres.Evaluations != DefaultOptions().Iterations {
		t.Errorf("0-param GD evaluations = %d, want %d (one per iteration)", gres.Evaluations, DefaultOptions().Iterations)
	}
}

func TestHistoryLength(t *testing.T) {
	o := DefaultOptions()
	o.Iterations = 7
	res, err := GradientDescent(quadratic([]float64{1}), []float64{0}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 7 {
		t.Errorf("history = %d entries, want 7", len(res.History))
	}
}
