package tilelink

import (
	"fmt"

	"qtenon/internal/hw"
	"qtenon/internal/metrics"
)

// RBQ is the Reorder Buffer Queue of Figure 5: one small queue per tag
// plus a tag-order queue recording issue order. Responses enqueue into
// their tag's queue as they arrive (out of order); Pop dequeues data in
// the original issue order by following the tag-order queue.
type RBQ struct {
	perTag []*hw.Queue[uint64]
	order  *hw.Queue[int]

	gPending *metrics.Gauge
}

// Instrument attaches the RBQ to a metrics registry: the
// "tilelink.rbq_pending" gauge tracks issued-but-unpopped requests
// (high-water = peak reorder pressure). Nil registry detaches.
func (r *RBQ) Instrument(reg *metrics.Registry) {
	r.gPending = reg.Gauge("tilelink.rbq_pending")
}

// NewRBQ builds an RBQ for `tags` tag values with per-tag queue depth
// `depth` and an order queue of capacity `orderDepth`.
func NewRBQ(tags, depth, orderDepth int) *RBQ {
	r := &RBQ{
		perTag: make([]*hw.Queue[uint64], tags),
		order:  hw.NewQueue[int](orderDepth),
	}
	for i := range r.perTag {
		r.perTag[i] = hw.NewQueue[uint64](depth)
	}
	return r
}

// PushOrder records that a request with the given tag was issued; call at
// issue time. It reports false when the order queue is full (the issuer
// must stall).
func (r *RBQ) PushOrder(tag int) bool {
	ok := r.order.Push(tag)
	if ok {
		r.gPending.Set(int64(r.order.Len()))
	}
	return ok
}

// Deliver enqueues an arrived response. It errors on unknown tags or
// per-tag overflow, both protocol violations.
func (r *RBQ) Deliver(tag int, data uint64) error {
	if tag < 0 || tag >= len(r.perTag) {
		return fmt.Errorf("tilelink: RBQ delivery with invalid tag %d", tag)
	}
	if !r.perTag[tag].Push(data) {
		return fmt.Errorf("tilelink: RBQ per-tag queue %d overflow", tag)
	}
	return nil
}

// Pop returns the next response in issue order, if its data has arrived.
func (r *RBQ) Pop() (data uint64, ok bool) {
	tag, ok := r.order.Peek()
	if !ok {
		return 0, false
	}
	data, ok = r.perTag[tag].Pop()
	if !ok {
		return 0, false // head-of-line response not yet delivered
	}
	r.order.Pop()
	return data, true
}

// Pending reports how many issued requests have not been popped.
func (r *RBQ) Pending() int { return r.order.Len() }

// WBQ is the Write Buffer Queue of Figure 5: eight parallel 32-bit
// queues adapting wide bus beats to the 32-bit write port of the public
// quantum controller cache. A 256-bit beat is split into eight 32-bit
// words, one per lane; shorter writes occupy only the lanes their length
// requires, selected by the SIndex starting lane.
type WBQ struct {
	lanes []*hw.Queue[uint32]

	gOccupancy *metrics.Gauge
}

// Instrument attaches the WBQ to a metrics registry: the
// "tilelink.wbq_occupancy" gauge tracks buffered words (high-water =
// peak width-adaptation backlog). Nil registry detaches.
func (w *WBQ) Instrument(reg *metrics.Registry) {
	w.gOccupancy = reg.Gauge("tilelink.wbq_occupancy")
}

// WBQLanes is the paper's lane count.
const WBQLanes = 8

// NewWBQ builds a WBQ with `lanes` lanes of the given depth.
func NewWBQ(lanes, depth int) *WBQ {
	w := &WBQ{lanes: make([]*hw.Queue[uint32], lanes)}
	for i := range w.lanes {
		w.lanes[i] = hw.NewQueue[uint32](depth)
	}
	return w
}

// Enqueue distributes a beat's words across lanes starting at lane
// sindex, wrapping. It reports false (and enqueues nothing) if any needed
// lane lacks space — hardware backpressure is all-or-nothing per beat.
func (w *WBQ) Enqueue(sindex int, words []uint32) bool {
	if len(words) > len(w.lanes) {
		return false
	}
	for i := range words {
		if w.lanes[(sindex+i)%len(w.lanes)].Full() {
			return false
		}
	}
	for i, v := range words {
		w.lanes[(sindex+i)%len(w.lanes)].Push(v)
	}
	w.gOccupancy.Set(int64(w.Occupancy()))
	return true
}

// DrainLane pops one word from a lane (one 32-bit write port transaction).
func (w *WBQ) DrainLane(lane int) (uint32, bool) {
	if lane < 0 || lane >= len(w.lanes) {
		return 0, false
	}
	return w.lanes[lane].Pop()
}

// Occupancy reports total buffered words.
func (w *WBQ) Occupancy() int {
	n := 0
	for _, l := range w.lanes {
		n += l.Len()
	}
	return n
}

// Barrier is the soft memory barrier of §6.2: it tracks which host
// addresses have had their PUT requests issued to the system bus, so the
// host can query readiness non-blockingly over RoCC (single-cycle) rather
// than executing a FENCE.
type Barrier struct {
	synced map[uint64]bool
	// Queries counts barrier queries (each costs one RoCC cycle).
	Queries int64

	cQueries *metrics.Counter
}

// Instrument attaches the barrier to a metrics registry: every Query
// counts into "tilelink.barrier_queries". Nil registry detaches.
func (b *Barrier) Instrument(reg *metrics.Registry) {
	b.cQueries = reg.Counter("tilelink.barrier_queries")
}

// NewBarrier returns an empty barrier.
func NewBarrier() *Barrier { return &Barrier{synced: make(map[uint64]bool)} }

// MarkSynced records that the write covering addr has been sent through
// the system bus.
func (b *Barrier) MarkSynced(addr uint64) { b.synced[addr] = true }

// MarkRange marks a contiguous range [addr, addr+n*stride) at the given
// stride.
func (b *Barrier) MarkRange(addr uint64, n int, stride uint64) {
	for i := 0; i < n; i++ {
		b.synced[addr+uint64(i)*stride] = true
	}
}

// Query reports whether addr is synchronized. Non-blocking; counts one
// query transaction.
func (b *Barrier) Query(addr uint64) bool {
	b.Queries++
	b.cQueries.Inc()
	return b.synced[addr]
}

// Reset clears all synchronization state (new iteration).
func (b *Barrier) Reset() { b.synced = make(map[uint64]bool) }
