package tilelink

import (
	"fmt"

	"qtenon/internal/san"
)

// TransferResult reports a completed multi-beat transfer.
type TransferResult struct {
	Cycles int64 // total bus cycles from first issue to last in-order pop
	Beats  int   // beats moved
	Data   []uint64
	// StallCycles counts cycles where issue was blocked on tags or the
	// order queue.
	StallCycles int64
}

// Transfer moves `beats` beats starting at addr through the bus with RBQ
// realignment, cycle-accurately, and returns the elapsed cycles. It is
// the timing core of q_set and q_acquire on datapath ❷: issue one beat
// per cycle while tags are available, deliver out-of-order completions
// into the RBQ, and retire strictly in order.
//
// For writes, data[i] supplies beat i's payload; for reads data may be
// nil and the returned Data holds the beats in order.
func Transfer(bus *Bus, rbq *RBQ, addr uint64, beats int, write bool, data []uint64) (TransferResult, error) {
	return TransferReuse(bus, rbq, addr, beats, write, data, nil)
}

// TransferReuse is Transfer with caller-recycled result storage: the
// returned TransferResult.Data is built by appending to dataBuf (pass a
// prior result's Data[:0] to run repeated transfers without allocating).
// The caller must not retain aliases of dataBuf across calls.
func TransferReuse(bus *Bus, rbq *RBQ, addr uint64, beats int, write bool, data, dataBuf []uint64) (TransferResult, error) {
	if beats <= 0 {
		return TransferResult{}, fmt.Errorf("tilelink: non-positive beat count %d", beats)
	}
	if write && len(data) < beats {
		return TransferResult{}, fmt.Errorf("tilelink: %d payload beats for %d-beat write", len(data), beats)
	}
	if san.Enabled {
		san.Verify("tilelink.TransferReuse", dataBuf)
	}
	start := bus.Now()
	var res TransferResult
	res.Beats = beats
	res.Data = dataBuf
	issued, retired := 0, 0
	// Track tag→issue so RBQ delivery uses the bus response tag.
	for retired < beats {
		// Issue phase: one beat per cycle when resources allow.
		if issued < beats {
			var payload uint64
			if write {
				payload = data[issued]
			}
			req := Request{Addr: addr + uint64(issued*bus.cfg.BeatBytes), Write: write, Data: payload}
			if tag, ok := bus.TrySubmit(req); ok {
				if !rbq.PushOrder(tag) {
					// Order queue full: roll back is impossible in hardware,
					// so geometry must make this unreachable; treat as bug.
					return res, fmt.Errorf("tilelink: RBQ order queue overflow at beat %d", issued)
				}
				issued++
			} else {
				res.StallCycles++
			}
		}
		bus.Tick()
		// Deliver any completions.
		for {
			r, ok := bus.PopResponse()
			if !ok {
				break
			}
			if err := rbq.Deliver(r.Tag, r.Data); err != nil {
				return res, err
			}
		}
		// Retire in order.
		for {
			d, ok := rbq.Pop()
			if !ok {
				break
			}
			res.Data = append(res.Data, d)
			retired++
		}
	}
	res.Cycles = bus.Now() - start
	if san.Enabled {
		san.Plant("tilelink.TransferReuse", res.Data)
	}
	return res, nil
}

// StreamCycles estimates the steady-state cycles to move `beats` beats:
// max(beats, latency) plus pipeline fill. It exists as a closed-form
// cross-check of Transfer used by tests and by coarse planning in the
// scheduler; timing results always come from Transfer itself.
func StreamCycles(cfg Config, beats int) int64 {
	if beats <= 0 {
		return 0
	}
	avgLat := int64(cfg.MinLatency+cfg.MaxLatency) / 2
	issue := int64(beats) // one beat per cycle
	if int64(cfg.Tags) >= avgLat {
		return issue + avgLat // fully pipelined: drain latency once
	}
	// Tag-limited: each window of Tags beats costs ~latency cycles.
	windows := (int64(beats) + int64(cfg.Tags) - 1) / int64(cfg.Tags)
	return windows * avgLat
}
