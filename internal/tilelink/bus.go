// Package tilelink models the quantum controller cache interface of
// Figure 5: a TileLink-style split-transaction system bus with 5-bit
// source tags and out-of-order responses, the Reorder Buffer Queue (RBQ)
// that realigns them, the Write Buffer Queue (WBQ) that adapts 256-bit
// bus beats to 32-bit public-cache writes, and the soft memory barrier
// that provides fine-grained quantum-host synchronization (§6.2).
//
// The model is cycle-stepped: callers drive Tick once per bus cycle.
// Response latency is deterministic pseudo-random within a configured
// window, so experiments are reproducible while still exercising
// out-of-order delivery.
package tilelink

import (
	"fmt"
	"math/rand"

	"qtenon/internal/rng"

	"qtenon/internal/hw"
	"qtenon/internal/metrics"
)

// Config sets bus geometry and latency.
type Config struct {
	Tags       int // outstanding-request tags (paper: 32, 5-bit)
	BeatBytes  int // bytes moved per beat (paper: 256-bit bus → 32)
	MinLatency int // response latency lower bound, cycles
	MaxLatency int // response latency upper bound, cycles
	Seed       int64
}

// DefaultConfig returns the paper's geometry: 32 tags, 256-bit beats, and
// an L2-class latency window.
func DefaultConfig() Config {
	return Config{Tags: 32, BeatBytes: 32, MinLatency: 12, MaxLatency: 28, Seed: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Tags <= 0 || c.Tags > 32:
		return fmt.Errorf("tilelink: tag count %d outside (0,32]", c.Tags)
	case c.BeatBytes <= 0:
		return fmt.Errorf("tilelink: non-positive beat size")
	case c.MinLatency <= 0 || c.MaxLatency < c.MinLatency:
		return fmt.Errorf("tilelink: bad latency window [%d,%d]", c.MinLatency, c.MaxLatency)
	}
	return nil
}

// Request is one bus transaction (a GET or PUT of one beat).
type Request struct {
	Addr  uint64
	Write bool
	Data  uint64 // payload for writes; token for reads
}

// Response pairs a completed request with its tag.
type Response struct {
	Tag  int
	Req  Request
	Data uint64
}

type inflight struct {
	resp    Response
	readyAt int64
}

// Bus is the split-transaction system bus. Requests acquire a tag and
// complete after a pseudo-random latency; completions are delivered in
// ready order, which is generally NOT issue order.
type Bus struct {
	cfg  Config
	tags *hw.TagPool
	rng  *rand.Rand
	now  int64
	fly  []inflight
	// ready is a FIFO of completed responses; readyHead indexes the next
	// one to deliver, and the storage is recycled whenever the queue
	// drains (every Tick/Pop cycle reuses the same backing arrays).
	ready     []Response
	readyHead int
	// doneScratch collects each Tick's completions before the delivery
	// shuffle.
	doneScratch []Response
	// Stats
	Issued, Completed int64
	BusyCycles        int64

	cIssued, cCompleted, cBusy *metrics.Counter
	gOutstanding               *metrics.Gauge
}

// Instrument attaches the bus to a metrics registry: beats issued and
// completed, cycles with in-flight traffic, and the outstanding-request
// gauge (high-water = peak tag pressure). Nil registry detaches.
func (b *Bus) Instrument(reg *metrics.Registry) {
	b.cIssued = reg.Counter("tilelink.beats_issued")
	b.cCompleted = reg.Counter("tilelink.beats_completed")
	b.cBusy = reg.Counter("tilelink.busy_cycles")
	b.gOutstanding = reg.Gauge("tilelink.outstanding")
}

// NewBus returns a bus with the given configuration.
func NewBus(cfg Config) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bus{
		cfg:  cfg,
		tags: hw.NewTagPool(cfg.Tags),
		rng:  rng.New(cfg.Seed),
	}, nil
}

// Now reports the bus cycle counter.
func (b *Bus) Now() int64 { return b.now }

// Outstanding reports in-flight request count.
func (b *Bus) Outstanding() int { return len(b.fly) }

// TrySubmit issues a request if a tag is free, returning the assigned tag.
// At most one request issues per cycle (one A-channel beat).
func (b *Bus) TrySubmit(req Request) (tag int, ok bool) {
	tag, ok = b.tags.Acquire()
	if !ok {
		return 0, false
	}
	lat := b.cfg.MinLatency
	if span := b.cfg.MaxLatency - b.cfg.MinLatency; span > 0 {
		lat += b.rng.Intn(span + 1)
	}
	data := req.Data
	if !req.Write {
		// Model memory contents as a hash of the address so reads return
		// stable, checkable data.
		data = req.Addr*0x9e3779b97f4a7c15 + 0x12345
	}
	b.fly = append(b.fly, inflight{
		resp:    Response{Tag: tag, Req: req, Data: data},
		readyAt: b.now + int64(lat),
	})
	b.Issued++
	b.cIssued.Inc()
	b.gOutstanding.Set(int64(len(b.fly)))
	return tag, true
}

// Tick advances one cycle and moves newly completed requests to the ready
// list (out of order: among simultaneously ready requests the delivery
// order is randomized).
func (b *Bus) Tick() {
	b.now++
	if len(b.fly) > 0 {
		b.BusyCycles++
		b.cBusy.Inc()
	}
	// Partition in place: the keep-cursor never passes the read cursor,
	// so compacting into b.fly[:0] while iterating is safe and Tick does
	// not allocate in steady state.
	done := b.doneScratch[:0]
	rest := b.fly[:0]
	for _, f := range b.fly {
		if f.readyAt <= b.now {
			done = append(done, f.resp)
		} else {
			rest = append(rest, f)
		}
	}
	b.fly = rest
	b.doneScratch = done
	b.rng.Shuffle(len(done), func(i, j int) { done[i], done[j] = done[j], done[i] })
	b.ready = append(b.ready, done...)
}

// PopResponse delivers one completed response (completion order) and
// releases its tag.
func (b *Bus) PopResponse() (Response, bool) {
	if b.readyHead >= len(b.ready) {
		return Response{}, false
	}
	r := b.ready[b.readyHead]
	b.readyHead++
	if b.readyHead == len(b.ready) {
		b.ready = b.ready[:0]
		b.readyHead = 0
	}
	b.tags.Release(r.Tag)
	b.Completed++
	b.cCompleted.Inc()
	return r, true
}
