package tilelink

import (
	"math/rand"
	"testing"
)

// Property: under random enqueue/drain traffic the WBQ preserves
// per-lane FIFO order and never loses or duplicates a word — the
// width-adaptation correctness the q_set path depends on.
func TestWBQRandomTrafficProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 50; trial++ {
		lanes := 2 + rng.Intn(7)
		depth := 1 + rng.Intn(6)
		w := NewWBQ(lanes, depth)
		ref := make([][]uint32, lanes) // per-lane expected FIFO contents
		next := uint32(1)
		for step := 0; step < 500; step++ {
			if rng.Intn(2) == 0 {
				// Enqueue a random-width beat at a random start lane.
				width := 1 + rng.Intn(lanes)
				sindex := rng.Intn(lanes)
				words := make([]uint32, width)
				for i := range words {
					words[i] = next
					next++
				}
				fits := true
				for i := range words {
					if len(ref[(sindex+i)%lanes]) >= depth {
						fits = false
					}
				}
				got := w.Enqueue(sindex, words)
				if got != fits {
					t.Fatalf("trial %d step %d: Enqueue = %v, want %v", trial, step, got, fits)
				}
				if got {
					for i, v := range words {
						l := (sindex + i) % lanes
						ref[l] = append(ref[l], v)
					}
				} else {
					next -= uint32(width) // nothing consumed
				}
			} else {
				lane := rng.Intn(lanes)
				v, ok := w.DrainLane(lane)
				if ok != (len(ref[lane]) > 0) {
					t.Fatalf("trial %d step %d: DrainLane ok=%v, want %v", trial, step, ok, len(ref[lane]) > 0)
				}
				if ok {
					if v != ref[lane][0] {
						t.Fatalf("trial %d step %d: lane %d FIFO broken: %d vs %d", trial, step, lane, v, ref[lane][0])
					}
					ref[lane] = ref[lane][1:]
				}
			}
			want := 0
			for _, l := range ref {
				want += len(l)
			}
			if w.Occupancy() != want {
				t.Fatalf("trial %d step %d: occupancy %d, want %d", trial, step, w.Occupancy(), want)
			}
		}
	}
}
