package tilelink

import (
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Tags: 0, BeatBytes: 32, MinLatency: 1, MaxLatency: 2},
		{Tags: 33, BeatBytes: 32, MinLatency: 1, MaxLatency: 2},
		{Tags: 8, BeatBytes: 0, MinLatency: 1, MaxLatency: 2},
		{Tags: 8, BeatBytes: 32, MinLatency: 5, MaxLatency: 2},
		{Tags: 8, BeatBytes: 32, MinLatency: 0, MaxLatency: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestBusTagExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tags = 4
	bus, err := NewBus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, ok := bus.TrySubmit(Request{Addr: uint64(i)}); !ok {
			t.Fatalf("submit %d refused with free tags", i)
		}
	}
	if _, ok := bus.TrySubmit(Request{}); ok {
		t.Error("submit accepted with all tags outstanding")
	}
	// Drain: after enough ticks all four complete and tags free up.
	for c := 0; c < cfg.MaxLatency+1; c++ {
		bus.Tick()
	}
	n := 0
	for {
		if _, ok := bus.PopResponse(); !ok {
			break
		}
		n++
	}
	if n != 4 {
		t.Errorf("completions = %d, want 4", n)
	}
	if _, ok := bus.TrySubmit(Request{}); !ok {
		t.Error("submit refused after tags released")
	}
}

func TestBusLatencyWindow(t *testing.T) {
	cfg := DefaultConfig()
	bus, _ := NewBus(cfg)
	tag, _ := bus.TrySubmit(Request{Addr: 0x100})
	_ = tag
	ticks := 0
	for {
		bus.Tick()
		ticks++
		if r, ok := bus.PopResponse(); ok {
			_ = r
			break
		}
		if ticks > cfg.MaxLatency+1 {
			t.Fatalf("no completion after %d cycles", ticks)
		}
	}
	if ticks < cfg.MinLatency {
		t.Errorf("completed after %d cycles, below MinLatency %d", ticks, cfg.MinLatency)
	}
}

func TestBusReadDataDeterministic(t *testing.T) {
	mk := func() uint64 {
		bus, _ := NewBus(DefaultConfig())
		bus.TrySubmit(Request{Addr: 0xabc})
		for i := 0; i < 40; i++ {
			bus.Tick()
		}
		r, ok := bus.PopResponse()
		if !ok {
			t.Fatal("no response")
		}
		return r.Data
	}
	if mk() != mk() {
		t.Error("read data not deterministic for same address")
	}
}

func TestRBQInOrderRetirement(t *testing.T) {
	r := NewRBQ(4, 4, 16)
	// Issue order: tags 2, 0, 1. Deliver out of order: 1, 2, 0.
	r.PushOrder(2)
	r.PushOrder(0)
	r.PushOrder(1)
	if err := r.Deliver(1, 111); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Pop(); ok {
		t.Error("Pop succeeded before head-of-line data arrived")
	}
	r.Deliver(2, 222)
	r.Deliver(0, 0)
	want := []uint64{222, 0, 111}
	for i, w := range want {
		d, ok := r.Pop()
		if !ok || d != w {
			t.Fatalf("pop %d = %d,%v, want %d", i, d, ok, w)
		}
	}
	if r.Pending() != 0 {
		t.Errorf("Pending = %d", r.Pending())
	}
}

func TestRBQErrors(t *testing.T) {
	r := NewRBQ(2, 1, 4)
	if err := r.Deliver(5, 0); err == nil {
		t.Error("Deliver accepted invalid tag")
	}
	r.Deliver(0, 1)
	if err := r.Deliver(0, 2); err == nil {
		t.Error("Deliver accepted per-tag overflow")
	}
}

// Property: for any random permutation of deliveries, the RBQ pops data
// in exact issue order. Tags are reused after retirement, as on the bus.
func TestRBQReorderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		const tags = 8
		n := 1 + rng.Intn(30)
		r := NewRBQ(tags, 8, 64)
		// Issue with round-robin tags; value = issue index.
		type issue struct {
			tag int
			val uint64
		}
		issues := make([]issue, n)
		for i := range issues {
			issues[i] = issue{tag: i % tags, val: uint64(i)}
			if !r.PushOrder(issues[i].tag) {
				t.Fatal("order queue full")
			}
		}
		// Deliver in random order, but per-tag deliveries must stay in
		// issue order (the bus guarantees per-tag ordering because a tag is
		// not reused until retired; here the per-tag queue preserves it).
		perTag := map[int][]uint64{}
		for _, is := range issues {
			perTag[is.tag] = append(perTag[is.tag], is.val)
		}
		tagsLeft := make([]int, 0, len(perTag))
		for tg := range perTag {
			tagsLeft = append(tagsLeft, tg)
		}
		for len(tagsLeft) > 0 {
			i := rng.Intn(len(tagsLeft))
			tg := tagsLeft[i]
			r.Deliver(tg, perTag[tg][0])
			perTag[tg] = perTag[tg][1:]
			if len(perTag[tg]) == 0 {
				tagsLeft = append(tagsLeft[:i], tagsLeft[i+1:]...)
			}
		}
		for want := uint64(0); want < uint64(n); want++ {
			d, ok := r.Pop()
			if !ok || d != want {
				t.Fatalf("trial %d: pop = %d,%v, want %d", trial, d, ok, want)
			}
		}
	}
}

func TestWBQLaneMapping(t *testing.T) {
	w := NewWBQ(WBQLanes, 4)
	if !w.Enqueue(0, []uint32{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal("full-beat enqueue failed")
	}
	if w.Occupancy() != 8 {
		t.Errorf("occupancy = %d", w.Occupancy())
	}
	for lane := 0; lane < 8; lane++ {
		v, ok := w.DrainLane(lane)
		if !ok || v != uint32(lane+1) {
			t.Fatalf("lane %d = %d,%v", lane, v, ok)
		}
	}
}

func TestWBQPartialAndWrap(t *testing.T) {
	w := NewWBQ(8, 2)
	// 3-word write starting at lane 6 wraps to lane 0.
	if !w.Enqueue(6, []uint32{60, 70, 80}) {
		t.Fatal("wrapping enqueue failed")
	}
	if v, _ := w.DrainLane(6); v != 60 {
		t.Error("lane 6 wrong")
	}
	if v, _ := w.DrainLane(7); v != 70 {
		t.Error("lane 7 wrong")
	}
	if v, _ := w.DrainLane(0); v != 80 {
		t.Error("lane 0 (wrapped) wrong")
	}
}

func TestWBQBackpressureAllOrNothing(t *testing.T) {
	w := NewWBQ(2, 1)
	if !w.Enqueue(0, []uint32{1}) {
		t.Fatal("first enqueue failed")
	}
	// Lane 0 full: a 2-word beat must be refused entirely.
	if w.Enqueue(1, []uint32{2, 3}) {
		t.Error("partial enqueue accepted")
	}
	if w.Occupancy() != 1 {
		t.Errorf("occupancy after refusal = %d", w.Occupancy())
	}
	if w.Enqueue(0, []uint32{9, 9, 9}) {
		t.Error("enqueue wider than lane count accepted")
	}
}

func TestWBQDrainInvalidLane(t *testing.T) {
	w := NewWBQ(2, 1)
	if _, ok := w.DrainLane(5); ok {
		t.Error("DrainLane accepted invalid lane")
	}
}

func TestBarrier(t *testing.T) {
	b := NewBarrier()
	if b.Query(0x1000) {
		t.Error("fresh barrier reports synced")
	}
	b.MarkSynced(0x1000)
	if !b.Query(0x1000) {
		t.Error("marked address not synced")
	}
	b.MarkRange(0x2000, 4, 8)
	for i := 0; i < 4; i++ {
		if !b.Query(0x2000 + uint64(i*8)) {
			t.Errorf("range address %d not synced", i)
		}
	}
	if b.Query(0x2020) {
		t.Error("address beyond range synced")
	}
	if b.Queries != 7 {
		t.Errorf("Queries = %d, want 7", b.Queries)
	}
	b.Reset()
	if b.Query(0x1000) {
		t.Error("Reset did not clear")
	}
}

func TestTransferReadInOrder(t *testing.T) {
	bus, _ := NewBus(DefaultConfig())
	rbq := NewRBQ(32, 8, 4096)
	res, err := Transfer(bus, rbq, 0x8000, 64, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 64 {
		t.Fatalf("data beats = %d", len(res.Data))
	}
	// In-order: beat i's data is the deterministic hash of its address.
	for i, d := range res.Data {
		want := (0x8000+uint64(i*32))*0x9e3779b97f4a7c15 + 0x12345
		if d != want {
			t.Fatalf("beat %d out of order", i)
		}
	}
	if res.Cycles <= 0 {
		t.Error("zero transfer time")
	}
}

func TestTransferWrite(t *testing.T) {
	bus, _ := NewBus(DefaultConfig())
	rbq := NewRBQ(32, 8, 4096)
	data := make([]uint64, 16)
	for i := range data {
		data[i] = uint64(i * 7)
	}
	res, err := Transfer(bus, rbq, 0, 16, true, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Beats != 16 {
		t.Errorf("beats = %d", res.Beats)
	}
	if _, err := Transfer(bus, rbq, 0, 4, true, data[:2]); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := Transfer(bus, rbq, 0, 0, false, nil); err == nil {
		t.Error("zero beats accepted")
	}
}

func TestTransferPipelining(t *testing.T) {
	// With 32 tags and ~20-cycle latency, a long transfer must approach
	// one beat per cycle, far better than beats × latency.
	cfg := DefaultConfig()
	bus, _ := NewBus(cfg)
	rbq := NewRBQ(32, 8, 65536)
	const beats = 1000
	res, err := Transfer(bus, rbq, 0, beats, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > beats*2 {
		t.Errorf("transfer took %d cycles for %d beats; pipelining broken", res.Cycles, beats)
	}
	if res.Cycles < beats {
		t.Errorf("transfer took %d cycles, below issue bound %d", res.Cycles, beats)
	}
	// Closed-form estimate within 2× of simulation.
	est := StreamCycles(cfg, beats)
	ratio := float64(res.Cycles) / float64(est)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("StreamCycles estimate %d vs simulated %d", est, res.Cycles)
	}
}

func TestTransferTagLimited(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tags = 2 // tiny tag pool forces stalls
	bus, _ := NewBus(cfg)
	rbq := NewRBQ(2, 8, 4096)
	res, err := Transfer(bus, rbq, 0, 50, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles == 0 {
		t.Error("no stalls with 2 tags and 20-cycle latency")
	}
	// Roughly latency/2 cycles per beat with 2 tags.
	if res.Cycles < 200 {
		t.Errorf("tag-limited transfer suspiciously fast: %d cycles", res.Cycles)
	}
}

func TestStreamCyclesEdge(t *testing.T) {
	if StreamCycles(DefaultConfig(), 0) != 0 {
		t.Error("zero beats nonzero estimate")
	}
}
