package tilelink

import (
	"math/rand"
	"testing"

	"qtenon/internal/sim"
)

// These tests model §6.2's second data-race class with two concurrent
// actors on the event engine: the quantum controller writing measurement
// results into host memory at random times, and the host reading them.
// With the soft memory barrier the host polls non-blockingly and only
// consumes synchronized addresses; without it the host races ahead and
// observes unwritten data.

type raceWorld struct {
	engine  *sim.Engine
	mem     map[uint64]uint64
	barrier *Barrier
}

// producer schedules n result writes at randomized times, marking the
// barrier as each PUT is issued.
func (w *raceWorld) producer(rng *rand.Rand, base uint64, n int) {
	t := sim.Time(0)
	for i := 0; i < n; i++ {
		addr := base + uint64(i)*8
		t += sim.Time(rng.Intn(900)+100) * sim.Nanosecond
		value := uint64(i) + 1
		w.engine.At(t, func() {
			w.mem[addr] = value
			w.barrier.MarkSynced(addr)
		})
	}
}

func TestBarrierPreventsReadBeforeWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		w := &raceWorld{engine: &sim.Engine{}, mem: map[uint64]uint64{}, barrier: NewBarrier()}
		const n = 50
		const base = 0x9000
		w.producer(rng, base, n)

		// Host: poll each address in order with single-cycle barrier
		// queries; consume only when synchronized.
		var consumed []uint64
		var pollNext func(i int)
		pollNext = func(i int) {
			if i == n {
				return
			}
			addr := base + uint64(i)*8
			if w.barrier.Query(addr) {
				v, ok := w.mem[addr]
				if !ok {
					t.Fatalf("trial %d: barrier said synced but memory unwritten at %#x", trial, addr)
				}
				consumed = append(consumed, v)
				w.engine.Schedule(sim.Nanosecond, func() { pollNext(i + 1) })
			} else {
				w.engine.Schedule(sim.Nanosecond, func() { pollNext(i) })
			}
		}
		w.engine.Schedule(0, func() { pollNext(0) })
		w.engine.Run()

		if len(consumed) != n {
			t.Fatalf("trial %d: consumed %d of %d results", trial, len(consumed), n)
		}
		for i, v := range consumed {
			if v != uint64(i)+1 {
				t.Fatalf("trial %d: consumed[%d] = %d, want %d", trial, i, v, i+1)
			}
		}
	}
}

func TestWithoutBarrierHostRaces(t *testing.T) {
	// The FENCE-less, barrier-less strawman: the host reads on a fixed
	// schedule. With write times up to 1 µs apart and reads every 100 ns,
	// some reads observe unwritten memory — the race the barrier (or a
	// costly FENCE) exists to prevent.
	rng := rand.New(rand.NewSource(33))
	races := 0
	for trial := 0; trial < 30; trial++ {
		w := &raceWorld{engine: &sim.Engine{}, mem: map[uint64]uint64{}, barrier: NewBarrier()}
		const n = 50
		const base = 0x9000
		w.producer(rng, base, n)
		for i := 0; i < n; i++ {
			addr := base + uint64(i)*8
			w.engine.At(sim.Time(i+1)*100*sim.Nanosecond, func() {
				if _, ok := w.mem[addr]; !ok {
					races++
				}
			})
		}
		w.engine.Run()
	}
	if races == 0 {
		t.Error("barrier-less host never raced; the scenario is vacuous")
	}
}

// The barrier query itself must be cheap (single transaction per poll) —
// the §6.2 requirement that consistency checking not stall the pipeline.
func TestBarrierQueryCountBounded(t *testing.T) {
	w := &raceWorld{engine: &sim.Engine{}, mem: map[uint64]uint64{}, barrier: NewBarrier()}
	rng := rand.New(rand.NewSource(35))
	const n = 20
	w.producer(rng, 0x100, n)
	polls := 0
	var pollNext func(i int)
	pollNext = func(i int) {
		if i == n {
			return
		}
		polls++
		addr := uint64(0x100) + uint64(i)*8
		if w.barrier.Query(addr) {
			w.engine.Schedule(sim.Nanosecond, func() { pollNext(i + 1) })
		} else {
			w.engine.Schedule(100*sim.Nanosecond, func() { pollNext(i) })
		}
	}
	w.engine.Schedule(0, func() { pollNext(0) })
	w.engine.Run()
	if int64(polls) != w.barrier.Queries {
		t.Errorf("poll count %d != barrier query count %d", polls, w.barrier.Queries)
	}
	// With 100 ns poll spacing and ≤1 µs inter-write gaps, polls stay
	// within a small constant factor of n.
	if polls > n*15 {
		t.Errorf("polls = %d for %d results; polling pathologically hot", polls, n)
	}
}
