//go:build simsan

package tilelink

import (
	"strings"
	"testing"
)

// TestSimsanTransferAliasReuse drives the scratch canary through
// TransferReuse: retaining res.Data across calls and writing through it
// at full capacity must panic, naming the transfer arena, when the
// buffer is recycled.
func TestSimsanTransferAliasReuse(t *testing.T) {
	bus, err := NewBus(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rbq := NewRBQ(32, 8, 4096)

	const beats = 4
	buf := make([]uint64, 0, beats+1) // one spare slot for the canary
	res, err := TransferReuse(bus, rbq, 0, beats, false, nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	// Honest recycling round-trips cleanly.
	res, err = TransferReuse(bus, rbq, 0, beats, false, nil, res.Data[:0])
	if err != nil {
		t.Fatal(err)
	}

	// The documented contract violation: an alias of dataBuf retained
	// across calls writes into the recycled storage.
	stale := res.Data[:cap(res.Data)]
	stale[len(stale)-1] = 7

	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("expected a simsan panic, got %v", r)
		}
		for _, frag := range []string{"simsan: tilelink.TransferReuse:", "canary", "alias retained"} {
			if !strings.Contains(msg, frag) {
				t.Errorf("panic %q does not contain %q", msg, frag)
			}
		}
	}()
	_, _ = TransferReuse(bus, rbq, 0, beats, false, nil, res.Data[:0])
	t.Fatal("clobbered canary was not detected")
}
