package pauli

import (
	"math/rand"
	"testing"
)

// Property: GroupTerms always produces qubit-wise compatible groups that
// cover every term exactly once, on random Hamiltonians.
func TestGroupTermsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	axes := []Axis{XAxis, YAxis, ZAxis}
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(6)
		h := NewHamiltonian(n)
		terms := 5 + rng.Intn(20)
		for i := 0; i < terms; i++ {
			var fs []Factor
			used := map[int]bool{}
			for k := 0; k < 1+rng.Intn(3); k++ {
				q := rng.Intn(n)
				if used[q] {
					continue
				}
				used[q] = true
				fs = append(fs, Factor{Qubit: q, Axis: axes[rng.Intn(3)]})
			}
			s, err := NewStr(fs...)
			if err != nil {
				t.Fatal(err)
			}
			h.MustAdd(rng.NormFloat64(), s)
		}
		groups := h.GroupTerms()
		covered := make([]bool, len(h.Terms))
		for gi, g := range groups {
			if len(g.Basis) != n {
				t.Fatalf("trial %d: group %d basis width %d", trial, gi, len(g.Basis))
			}
			for _, ti := range g.TermIdx {
				if covered[ti] {
					t.Fatalf("trial %d: term %d in two groups", trial, ti)
				}
				covered[ti] = true
				// Every factor of the term matches the group basis.
				for _, f := range h.Terms[ti].Str.Factors {
					if g.Basis[f.Qubit] != f.Axis {
						t.Fatalf("trial %d: term %d factor %v incompatible with group basis", trial, ti, f)
					}
				}
			}
		}
		for ti, ok := range covered {
			if !ok {
				t.Fatalf("trial %d: term %d uncovered", trial, ti)
			}
		}
	}
}

// Grouping monotonicity: Z-only Hamiltonians always fit one group.
func TestZOnlySingleGroup(t *testing.T) {
	h := NewHamiltonian(10)
	for q := 0; q < 10; q++ {
		h.MustAdd(1, Z(q))
	}
	for q := 0; q+1 < 10; q++ {
		h.MustAdd(0.5, ZZ(q, q+1))
	}
	if groups := h.GroupTerms(); len(groups) != 1 {
		t.Errorf("Z-only Hamiltonian needs %d groups, want 1", len(groups))
	}
}
