// Package pauli implements Pauli-string observables and Hamiltonians —
// the cost operators of the paper's three workloads. QAOA's MaxCut cost
// is a sum of ZZ terms, VQE minimizes a molecular Hamiltonian of general
// Pauli strings, and QNN losses reduce to Z expectations.
//
// The package provides exact expectations against a statevector (used to
// validate at small scale) and shot-based estimation from measurement
// counts, including the basis-change circuits needed to measure X/Y
// factors — the full path a real hybrid stack uses.
package pauli

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
	"qtenon/internal/qsim/tableau"
)

// Axis is a single-qubit Pauli factor.
type Axis uint8

// Pauli factors. IAxis factors are implicit: strings only store
// non-identity factors.
const (
	IAxis Axis = iota
	XAxis
	YAxis
	ZAxis
)

// String returns "I", "X", "Y" or "Z".
func (a Axis) String() string { return [...]string{"I", "X", "Y", "Z"}[a] }

// Factor is one non-identity Pauli factor acting on a qubit.
type Factor struct {
	Qubit int
	Axis  Axis
}

// Str is a Pauli string: a tensor product of non-identity factors on
// distinct qubits, in ascending qubit order.
type Str struct {
	Factors []Factor
}

// NewStr builds a Pauli string from factors, sorting by qubit and
// rejecting duplicates or identity factors.
func NewStr(factors ...Factor) (Str, error) {
	fs := append([]Factor(nil), factors...)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Qubit < fs[j].Qubit })
	for i, f := range fs {
		if f.Axis == IAxis {
			return Str{}, fmt.Errorf("pauli: identity factor on qubit %d", f.Qubit)
		}
		if f.Qubit < 0 {
			return Str{}, fmt.Errorf("pauli: negative qubit %d", f.Qubit)
		}
		if i > 0 && fs[i-1].Qubit == f.Qubit {
			return Str{}, fmt.Errorf("pauli: duplicate qubit %d", f.Qubit)
		}
	}
	return Str{Factors: fs}, nil
}

// MustStr is NewStr for literals in trusted code.
func MustStr(factors ...Factor) Str {
	s, err := NewStr(factors...)
	if err != nil {
		panic(err)
	}
	return s
}

// Z returns the single-qubit Z string on q.
func Z(q int) Str { return MustStr(Factor{q, ZAxis}) }

// ZZ returns the two-qubit Z⊗Z string on a and b.
func ZZ(a, b int) Str { return MustStr(Factor{a, ZAxis}, Factor{b, ZAxis}) }

// String renders e.g. "X0*Z3".
func (s Str) String() string {
	if len(s.Factors) == 0 {
		return "I"
	}
	parts := make([]string, len(s.Factors))
	for i, f := range s.Factors {
		parts[i] = fmt.Sprintf("%s%d", f.Axis, f.Qubit)
	}
	return strings.Join(parts, "*")
}

// MaxQubit reports the highest qubit index used, or -1 for the identity.
func (s Str) MaxQubit() int {
	if len(s.Factors) == 0 {
		return -1
	}
	return s.Factors[len(s.Factors)-1].Qubit
}

// Mask returns the bitmask of qubits the string acts on.
func (s Str) Mask() uint64 {
	var m uint64
	for _, f := range s.Factors {
		m |= 1 << f.Qubit
	}
	return m
}

// ZBasisOnly reports whether every factor is Z (measurable directly in
// the computational basis).
func (s Str) ZBasisOnly() bool {
	for _, f := range s.Factors {
		if f.Axis != ZAxis {
			return false
		}
	}
	return true
}

// BasisChange returns the gates that rotate each X/Y factor of s into the
// Z basis, to be appended before measurement: H for X, S†H (here RX(π/2))
// for Y.
func (s Str) BasisChange() []circuit.Gate {
	var gates []circuit.Gate
	for _, f := range s.Factors {
		switch f.Axis {
		case XAxis:
			gates = append(gates, circuit.Gate{Kind: circuit.H, Qubit: f.Qubit, Param: circuit.NoParam})
		case YAxis:
			// RX(π/2) maps Y eigenbasis onto Z eigenbasis.
			gates = append(gates, circuit.Gate{Kind: circuit.RX, Qubit: f.Qubit, Theta: circuit.Pi / 2, Param: circuit.NoParam})
		}
	}
	return gates
}

// EigenSign returns the ±1 eigenvalue that basis-state outcome (after any
// basis change) contributes: the parity of the measured bits on the
// string's support.
func (s Str) EigenSign(outcome uint64) float64 {
	return maskSign(s.Mask(), outcome)
}

// maskSign is EigenSign with the support mask precomputed — the hot
// loops hoist Mask() out of their per-outcome/per-amplitude iteration.
func maskSign(mask, outcome uint64) float64 {
	if bits.OnesCount64(outcome&mask)&1 == 1 {
		return -1
	}
	return 1
}

// Term is a weighted Pauli string.
type Term struct {
	Coeff float64
	Str   Str
}

// Hamiltonian is a real-coefficient sum of Pauli strings, plus an
// identity offset.
type Hamiltonian struct {
	NQubits int
	Offset  float64
	Terms   []Term
}

// NewHamiltonian returns an empty Hamiltonian over n qubits.
func NewHamiltonian(n int) *Hamiltonian { return &Hamiltonian{NQubits: n} }

// Add appends a term, validating its support.
func (h *Hamiltonian) Add(coeff float64, s Str) error {
	if s.MaxQubit() >= h.NQubits {
		return fmt.Errorf("pauli: term %v exceeds %d qubits", s, h.NQubits)
	}
	if len(s.Factors) == 0 {
		h.Offset += coeff
		return nil
	}
	h.Terms = append(h.Terms, Term{Coeff: coeff, Str: s})
	return nil
}

// MustAdd is Add that panics on error.
func (h *Hamiltonian) MustAdd(coeff float64, s Str) {
	if err := h.Add(coeff, s); err != nil {
		panic(err)
	}
}

// Expectation computes ⟨ψ|H|ψ⟩ exactly against a statevector.
func (h *Hamiltonian) Expectation(st *qsim.State) float64 {
	if st.NQubits() < h.NQubits {
		panic("pauli: state narrower than Hamiltonian")
	}
	e := h.Offset
	for _, t := range h.Terms {
		e += t.Coeff * expectStr(st, t.Str)
	}
	return e
}

// ExpectationTableau computes ⟨ψ|H|ψ⟩ exactly against a stabilizer
// state. Every term must be Z-diagonal and supported on the first 64
// qubits (the tableau's Z-string mask window); term expectations on a
// stabilizer state are exactly −1, 0, or +1, so the result is an exact
// small integer combination of the coefficients.
func (h *Hamiltonian) ExpectationTableau(t *tableau.Tableau) (float64, error) {
	if t.NQubits() < h.NQubits {
		return 0, fmt.Errorf("pauli: tableau narrower than Hamiltonian (%d < %d)", t.NQubits(), h.NQubits)
	}
	e := h.Offset
	for _, term := range h.Terms {
		if !term.Str.ZBasisOnly() {
			return 0, fmt.Errorf("pauli: tableau expectation needs Z-diagonal terms, have %v", term.Str)
		}
		if term.Str.MaxQubit() >= 64 {
			return 0, fmt.Errorf("pauli: term %v outside the 64-qubit mask window", term.Str)
		}
		e += term.Coeff * t.ZExpectationMask(term.Str.Mask())
	}
	return e, nil
}

// expectStr computes ⟨ψ|P|ψ⟩ for one Pauli string by applying the basis
// change to a clone and reading Z-parity expectations. It reads the
// structure-of-arrays amplitudes directly, so no complex128 view is
// materialized.
func expectStr(st *qsim.State, s Str) float64 {
	work := st
	if !s.ZBasisOnly() {
		work = st.Clone()
		for _, g := range s.BasisChange() {
			work.Apply(g)
		}
	}
	mask := s.Mask()
	re, im := work.ReIm()
	var e float64
	for i := range re {
		p := re[i]*re[i] + im[i]*im[i]
		e += p * maskSign(mask, uint64(i))
	}
	return e
}

// EstimateFromCounts estimates ⟨P⟩ from measurement outcomes taken in the
// string's measurement basis. The support mask is computed once, not per
// outcome — this runs once per Hamiltonian term per cost evaluation over
// every shot.
func EstimateFromCounts(s Str, outcomes []uint64) float64 {
	if len(outcomes) == 0 {
		return 0
	}
	mask := s.Mask()
	var sum float64
	for _, o := range outcomes {
		// Branch-free ±1: outcomes are effectively random, so a
		// conditional here mispredicts half the time.
		sum += 1 - 2*float64(bits.OnesCount64(o&mask)&1)
	}
	return sum / float64(len(outcomes))
}

// Group is a set of term indices measurable simultaneously (their strings
// are qubit-wise compatible: on every shared qubit the axes agree).
type Group struct {
	TermIdx []int
	// Basis holds, per qubit, the axis measured (IAxis where unused).
	Basis []Axis
}

// GroupTerms partitions the Hamiltonian's terms into qubit-wise
// commuting measurement groups using a first-fit heuristic. Each group
// costs one circuit execution batch, so fewer groups means fewer
// quantum-host rounds — the quantity the paper's communication model
// depends on.
func (h *Hamiltonian) GroupTerms() []Group {
	var groups []Group
next:
	for i, t := range h.Terms {
		for gi := range groups {
			g := &groups[gi]
			ok := true
			for _, f := range t.Str.Factors {
				if g.Basis[f.Qubit] != IAxis && g.Basis[f.Qubit] != f.Axis {
					ok = false
					break
				}
			}
			if ok {
				for _, f := range t.Str.Factors {
					g.Basis[f.Qubit] = f.Axis
				}
				g.TermIdx = append(g.TermIdx, i)
				continue next
			}
		}
		g := Group{Basis: make([]Axis, h.NQubits)}
		for _, f := range t.Str.Factors {
			g.Basis[f.Qubit] = f.Axis
		}
		g.TermIdx = append(g.TermIdx, i)
		groups = append(groups, g)
	}
	return groups
}

// BasisChange returns the pre-measurement rotation gates for a group.
func (g Group) BasisChange() []circuit.Gate {
	var gates []circuit.Gate
	for q, a := range g.Basis {
		switch a {
		case XAxis:
			gates = append(gates, circuit.Gate{Kind: circuit.H, Qubit: q, Param: circuit.NoParam})
		case YAxis:
			gates = append(gates, circuit.Gate{Kind: circuit.RX, Qubit: q, Theta: circuit.Pi / 2, Param: circuit.NoParam})
		}
	}
	return gates
}

// EstimateFromGroupCounts estimates the full Hamiltonian from per-group
// outcome samples (outcomes[gi] sampled after groups[gi].BasisChange()).
func (h *Hamiltonian) EstimateFromGroupCounts(groups []Group, outcomes [][]uint64) float64 {
	e := h.Offset
	for gi, g := range groups {
		for _, ti := range g.TermIdx {
			e += h.Terms[ti].Coeff * EstimateFromCounts(h.Terms[ti].Str, outcomes[gi])
		}
	}
	return e
}
