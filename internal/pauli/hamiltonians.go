package pauli

// Reference Hamiltonians for the VQE workload. H2 in the STO-3G basis
// under the Jordan-Wigner/parity mapping reduces to a well-known 2-qubit
// operator (O'Malley et al., PRX 2016); its coefficients at the
// equilibrium bond length 0.7414 Å are tabulated below. Larger molecule
// surrogates are generated with a deterministic structure that matches
// the term-count scaling of molecular Hamiltonians, since the timing
// experiments only depend on term grouping and parameter counts.

// H2Equilibrium returns the 2-qubit H2 Hamiltonian (Hartree units) at the
// equilibrium geometry. Its exact ground-state energy is approximately
// -1.851 + nuclear repulsion handled in Offset form here; the raw
// electronic operator below has ground energy ≈ -1.85106 before adding
// the identity coefficient.
func H2Equilibrium() *Hamiltonian {
	h := NewHamiltonian(2)
	h.Offset = -0.4804
	h.MustAdd(0.3435, Z(0))
	h.MustAdd(-0.4347, Z(1))
	h.MustAdd(0.5716, ZZ(0, 1))
	h.MustAdd(0.0910, MustStr(Factor{0, XAxis}, Factor{1, XAxis}))
	h.MustAdd(0.0910, MustStr(Factor{0, YAxis}, Factor{1, YAxis}))
	return h
}

// MolecularSurrogate returns a synthetic molecular-style Hamiltonian over
// n qubits (n = number of spin-orbitals): Z and ZZ "diagonal" terms for
// every site/pair within a banded interaction window, plus XX+YY hopping
// terms between neighbours. Coefficients decay with distance, giving a
// non-trivial optimization landscape; the construction is deterministic
// so results are reproducible.
func MolecularSurrogate(n int) *Hamiltonian {
	h := NewHamiltonian(n)
	h.Offset = -float64(n) * 0.25
	for q := 0; q < n; q++ {
		// Alternating on-site energies, as in a dimerized chain.
		coeff := 0.4
		if q%2 == 1 {
			coeff = -0.3
		}
		h.MustAdd(coeff, Z(q))
	}
	const band = 3
	for a := 0; a < n; a++ {
		for b := a + 1; b < n && b <= a+band; b++ {
			dist := float64(b - a)
			h.MustAdd(0.25/dist, ZZ(a, b))
		}
	}
	for q := 0; q+1 < n; q++ {
		h.MustAdd(0.18, MustStr(Factor{q, XAxis}, Factor{q + 1, XAxis}))
		h.MustAdd(0.18, MustStr(Factor{q, YAxis}, Factor{q + 1, YAxis}))
	}
	return h
}

// MaxCut returns the QAOA MaxCut cost Hamiltonian for the given edge
// list: C = Σ_(a,b) w/2 (Z_a Z_b - 1), whose minimum corresponds to the
// maximum cut. Each edge contributes offset -w/2 and a +w/2 ZZ term.
func MaxCut(n int, edges [][2]int, weight float64) *Hamiltonian {
	h := NewHamiltonian(n)
	for _, e := range edges {
		h.Offset -= weight / 2
		h.MustAdd(weight/2, ZZ(e[0], e[1]))
	}
	return h
}

// CutValue evaluates the cut size of a bitstring assignment for the edge
// list (number of edges crossing the partition).
func CutValue(edges [][2]int, assignment uint64) int {
	cut := 0
	for _, e := range edges {
		if (assignment>>e[0])&1 != (assignment>>e[1])&1 {
			cut++
		}
	}
	return cut
}
