package pauli

import (
	"math"
	"math/rand"
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewStrValidation(t *testing.T) {
	if _, err := NewStr(Factor{0, ZAxis}, Factor{0, XAxis}); err == nil {
		t.Error("accepted duplicate qubit")
	}
	if _, err := NewStr(Factor{1, IAxis}); err == nil {
		t.Error("accepted identity factor")
	}
	if _, err := NewStr(Factor{-1, ZAxis}); err == nil {
		t.Error("accepted negative qubit")
	}
	s, err := NewStr(Factor{3, XAxis}, Factor{1, ZAxis})
	if err != nil {
		t.Fatal(err)
	}
	if s.Factors[0].Qubit != 1 || s.Factors[1].Qubit != 3 {
		t.Errorf("factors not sorted: %v", s.Factors)
	}
	if s.String() != "Z1*X3" {
		t.Errorf("String = %q", s.String())
	}
}

func TestStrBasics(t *testing.T) {
	s := ZZ(0, 2)
	if s.Mask() != 0b101 {
		t.Errorf("Mask = %b", s.Mask())
	}
	if s.MaxQubit() != 2 {
		t.Errorf("MaxQubit = %d", s.MaxQubit())
	}
	if !s.ZBasisOnly() {
		t.Error("ZZ not recognized as Z-basis")
	}
	x := MustStr(Factor{1, XAxis})
	if x.ZBasisOnly() {
		t.Error("X recognized as Z-basis")
	}
	if (Str{}).MaxQubit() != -1 {
		t.Error("identity MaxQubit != -1")
	}
	if (Str{}).String() != "I" {
		t.Error("identity String != I")
	}
}

func TestEigenSign(t *testing.T) {
	s := ZZ(0, 1)
	tests := []struct {
		outcome uint64
		want    float64
	}{
		{0b00, 1}, {0b01, -1}, {0b10, -1}, {0b11, 1}, {0b111, 1}, {0b101, -1},
	}
	for _, tt := range tests {
		if got := s.EigenSign(tt.outcome); got != tt.want {
			t.Errorf("EigenSign(%b) = %v, want %v", tt.outcome, got, tt.want)
		}
	}
}

func TestExpectationAgainstKnownStates(t *testing.T) {
	// |+⟩: ⟨X⟩=1, ⟨Z⟩=0. |1⟩: ⟨Z⟩=-1.
	plus, _ := qsim.Run(circuit.NewBuilder(1).H(0).MustBuild())
	hx := NewHamiltonian(1)
	hx.MustAdd(1, MustStr(Factor{0, XAxis}))
	if e := hx.Expectation(plus); !approx(e, 1, 1e-9) {
		t.Errorf("⟨+|X|+⟩ = %v", e)
	}
	hz := NewHamiltonian(1)
	hz.MustAdd(1, Z(0))
	if e := hz.Expectation(plus); !approx(e, 0, 1e-9) {
		t.Errorf("⟨+|Z|+⟩ = %v", e)
	}
	one, _ := qsim.Run(circuit.NewBuilder(1).X(0).MustBuild())
	if e := hz.Expectation(one); !approx(e, -1, 1e-9) {
		t.Errorf("⟨1|Z|1⟩ = %v", e)
	}
	// Y eigenstate: RX(-π/2)|0⟩ = |+i⟩ with ⟨Y⟩=1.
	plusI, _ := qsim.Run(circuit.NewBuilder(1).RX(0, -math.Pi/2).MustBuild())
	hy := NewHamiltonian(1)
	hy.MustAdd(1, MustStr(Factor{0, YAxis}))
	if e := hy.Expectation(plusI); !approx(e, 1, 1e-9) {
		t.Errorf("⟨+i|Y|+i⟩ = %v", e)
	}
}

func TestH2GroundEnergy(t *testing.T) {
	// Exact diagonalization by scanning the 2-qubit variational family
	// RY(θ0)⊗RY(θ1)·CX is not guaranteed to reach the exact ground state,
	// so check against brute-force eigen decomposition via dense matvec.
	h := H2Equilibrium()
	min := bruteForceGround(h)
	// Published value for this parameterization ≈ -1.851 Hartree.
	if !approx(min, -1.851, 2e-3) {
		t.Errorf("H2 ground energy = %v, want ≈ -1.851", min)
	}
}

// bruteForceGround finds the minimum eigenvalue by power iteration on
// (cI - H) using dense matrices built from the Hamiltonian action.
func bruteForceGround(h *Hamiltonian) float64 {
	n := h.NQubits
	dim := 1 << n
	// Build dense H by applying to basis vectors through qsim states.
	mat := make([][]complex128, dim)
	for col := 0; col < dim; col++ {
		vec := make([]complex128, dim)
		vec[col] = 1
		mat[col] = applyHamiltonian(h, vec)
	}
	// Power iteration on shifted matrix.
	shift := 10.0
	v := make([]complex128, dim)
	for i := range v {
		v[i] = complex(1/math.Sqrt(float64(dim)), 0)
	}
	var lam float64
	for iter := 0; iter < 3000; iter++ {
		w := make([]complex128, dim)
		for col := 0; col < dim; col++ {
			for row := 0; row < dim; row++ {
				w[row] += (complex(shift, 0)*unit(row, col) - mat[col][row]) * v[col]
			}
		}
		var norm float64
		for _, x := range w {
			norm += real(x)*real(x) + imag(x)*imag(x)
		}
		norm = math.Sqrt(norm)
		for i := range w {
			w[i] /= complex(norm, 0)
		}
		v = w
		lam = norm
	}
	return shift - lam
}

func unit(r, c int) complex128 {
	if r == c {
		return 1
	}
	return 0
}

// applyHamiltonian computes H·vec with explicit Pauli action.
func applyHamiltonian(h *Hamiltonian, vec []complex128) []complex128 {
	out := make([]complex128, len(vec))
	for i, a := range vec {
		out[i] += complex(h.Offset, 0) * a
	}
	for _, t := range h.Terms {
		for i, a := range vec {
			if a == 0 {
				continue
			}
			j, phase := i, complex(1, 0)
			for _, f := range t.Str.Factors {
				bit := (j >> f.Qubit) & 1
				switch f.Axis {
				case ZAxis:
					if bit == 1 {
						phase = -phase
					}
				case XAxis:
					j ^= 1 << f.Qubit
				case YAxis:
					if bit == 0 {
						phase *= complex(0, 1)
					} else {
						phase *= complex(0, -1)
					}
					j ^= 1 << f.Qubit
				}
			}
			out[j] += complex(t.Coeff, 0) * phase * a
		}
	}
	return out
}

func TestEstimateFromCountsConvergence(t *testing.T) {
	// Sampled estimate of ⟨ZZ⟩ on a Bell state converges to 1.
	st, _ := qsim.Run(circuit.NewBuilder(2).H(0).CX(0, 1).MustBuild())
	rng := rand.New(rand.NewSource(2))
	outcomes := st.Sample(5000, rng)
	if e := EstimateFromCounts(ZZ(0, 1), outcomes); !approx(e, 1, 1e-9) {
		t.Errorf("sampled ⟨ZZ⟩ = %v", e)
	}
	if e := EstimateFromCounts(Z(0), outcomes); math.Abs(e) > 0.05 {
		t.Errorf("sampled ⟨Z0⟩ = %v, want ≈0", e)
	}
	if e := EstimateFromCounts(Z(0), nil); e != 0 {
		t.Errorf("empty estimate = %v", e)
	}
}

func TestGroupTermsQubitwiseCompatible(t *testing.T) {
	h := H2Equilibrium()
	groups := h.GroupTerms()
	// Z0, Z1, Z0Z1 group together; X0X1 and Y0Y1 each need their own basis.
	if len(groups) != 3 {
		t.Fatalf("H2 groups = %d, want 3", len(groups))
	}
	if len(groups[0].TermIdx) != 3 {
		t.Errorf("Z group has %d terms, want 3", len(groups[0].TermIdx))
	}
	total := 0
	for _, g := range groups {
		total += len(g.TermIdx)
	}
	if total != len(h.Terms) {
		t.Errorf("groups cover %d terms, want %d", total, len(h.Terms))
	}
}

func TestGroupedEstimationMatchesExact(t *testing.T) {
	h := H2Equilibrium()
	ansatz := circuit.NewBuilder(2).RY(0, 0.7).RY(1, -0.4).CX(0, 1).MustBuild()
	st, _ := qsim.Run(ansatz)
	exact := h.Expectation(st)

	rng := rand.New(rand.NewSource(4))
	groups := h.GroupTerms()
	outcomes := make([][]uint64, len(groups))
	for gi, g := range groups {
		c := ansatz.Clone()
		c.Gates = append(c.Gates, g.BasisChange()...)
		gs, err := qsim.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		outcomes[gi] = gs.Sample(40000, rng)
	}
	est := h.EstimateFromGroupCounts(groups, outcomes)
	if !approx(est, exact, 0.02) {
		t.Errorf("grouped estimate %v vs exact %v", est, exact)
	}
}

func TestMaxCutHamiltonian(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}} // triangle: max cut 2
	h := MaxCut(3, edges, 1)
	// Cost of assignment 0b001 (vertex 0 separated): cut = 2 → C = -2.
	st, _ := qsim.Run(circuit.NewBuilder(3).X(0).MustBuild())
	if e := h.Expectation(st); !approx(e, -2, 1e-9) {
		t.Errorf("triangle cost(001) = %v, want -2", e)
	}
	// Uniform assignment cuts nothing.
	st0, _ := qsim.Run(circuit.NewBuilder(3).Z(0).MustBuild()) // still |000⟩
	if e := h.Expectation(st0); !approx(e, 0, 1e-9) {
		t.Errorf("triangle cost(000) = %v, want 0", e)
	}
	if CutValue(edges, 0b001) != 2 {
		t.Errorf("CutValue(001) = %d", CutValue(edges, 0b001))
	}
	if CutValue(edges, 0) != 0 {
		t.Errorf("CutValue(000) = %d", CutValue(edges, 0))
	}
}

func TestMolecularSurrogateStructure(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		h := MolecularSurrogate(n)
		if h.NQubits != n {
			t.Errorf("NQubits = %d", h.NQubits)
		}
		// n Z terms + banded ZZ + 2(n-1) hopping terms.
		zz := 0
		for a := 0; a < n; a++ {
			for b := a + 1; b < n && b <= a+3; b++ {
				zz++
			}
		}
		want := n + zz + 2*(n-1)
		if len(h.Terms) != want {
			t.Errorf("n=%d: %d terms, want %d", n, len(h.Terms), want)
		}
		// Deterministic: same call twice gives identical terms.
		h2 := MolecularSurrogate(n)
		for i := range h.Terms {
			if h.Terms[i].Coeff != h2.Terms[i].Coeff || h.Terms[i].Str.String() != h2.Terms[i].Str.String() {
				t.Fatalf("n=%d: nondeterministic term %d", n, i)
			}
		}
	}
}

func TestHamiltonianAddValidation(t *testing.T) {
	h := NewHamiltonian(2)
	if err := h.Add(1, Z(5)); err == nil {
		t.Error("Add accepted out-of-range term")
	}
	if err := h.Add(2.5, Str{}); err != nil {
		t.Errorf("Add identity: %v", err)
	}
	if h.Offset != 2.5 {
		t.Errorf("identity folded into Offset = %v", h.Offset)
	}
}
