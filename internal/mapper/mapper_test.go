package mapper

import (
	"math"
	"math/rand"
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
)

func TestCouplingConstruction(t *testing.T) {
	if _, err := NewCoupling(0, nil); err == nil {
		t.Error("accepted zero qubits")
	}
	if _, err := NewCoupling(2, [][2]int{{0, 5}}); err == nil {
		t.Error("accepted out-of-range edge")
	}
	if _, err := NewCoupling(2, [][2]int{{1, 1}}); err == nil {
		t.Error("accepted self-loop")
	}
	// Duplicate edges are deduplicated.
	c, err := NewCoupling(2, [][2]int{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.adj[0]) != 1 {
		t.Errorf("duplicate edge not deduped: %v", c.adj[0])
	}
}

func TestLineAndGrid(t *testing.T) {
	l := Line(4)
	if !l.Adjacent(0, 1) || !l.Adjacent(2, 3) || l.Adjacent(0, 2) {
		t.Error("line adjacency wrong")
	}
	g := Grid(2, 3)
	if g.NQubits() != 6 {
		t.Fatalf("grid qubits = %d", g.NQubits())
	}
	if !g.Adjacent(0, 1) || !g.Adjacent(0, 3) || g.Adjacent(0, 4) {
		t.Error("grid adjacency wrong")
	}
}

func TestPath(t *testing.T) {
	l := Line(5)
	p := l.Path(0, 4)
	if len(p) != 5 {
		t.Fatalf("path = %v", p)
	}
	for i, q := range []int{0, 1, 2, 3, 4} {
		if p[i] != q {
			t.Fatalf("path = %v", p)
		}
	}
	if got := l.Path(2, 2); len(got) != 1 || got[0] != 2 {
		t.Errorf("self path = %v", got)
	}
	// Disconnected graph.
	c, _ := NewCoupling(4, [][2]int{{0, 1}, {2, 3}})
	if c.Path(0, 3) != nil {
		t.Error("found path in disconnected graph")
	}
}

func TestRouteAdjacentGatesUntouched(t *testing.T) {
	c := circuit.NewBuilder(3).H(0).CX(0, 1).CZ(1, 2).MustBuild()
	res, err := Route(c, Line(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsInserted != 0 {
		t.Errorf("swaps = %d for already-routed circuit", res.SwapsInserted)
	}
	if len(res.Circuit.Gates) != 3 {
		t.Errorf("gates = %d", len(res.Circuit.Gates))
	}
}

func TestRouteInsertsSwaps(t *testing.T) {
	// CX(0,3) on a 4-qubit line needs 2 swaps (6 CX) + the gate.
	c := circuit.NewBuilder(4).CX(0, 3).MustBuild()
	res, err := Route(c, Line(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsInserted != 2 {
		t.Errorf("swaps = %d, want 2", res.SwapsInserted)
	}
	if err := Validate(res.Circuit, Line(4)); err != nil {
		t.Errorf("routed circuit invalid: %v", err)
	}
	// Logical 0 moved: layout must reflect it.
	if res.Layout[0] == 0 {
		t.Error("layout unchanged despite swaps")
	}
}

func TestRouteErrors(t *testing.T) {
	tooWide := circuit.NewBuilder(5).H(0).MustBuild()
	if _, err := Route(tooWide, Line(3)); err == nil {
		t.Error("accepted circuit wider than device")
	}
	disc, _ := NewCoupling(4, [][2]int{{0, 1}, {2, 3}})
	c := circuit.NewBuilder(4).CX(0, 3).MustBuild()
	if _, err := Route(c, disc); err == nil {
		t.Error("routed across disconnected components")
	}
}

// The semantic core: routing preserves the circuit's output distribution
// once measurement is read through the final layout.
func TestRouteSemanticEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(3)
		b := circuit.NewBuilder(n)
		for i := 0; i < 12; i++ {
			switch rng.Intn(4) {
			case 0:
				b.RY(rng.Intn(n), rng.NormFloat64())
			case 1:
				b.H(rng.Intn(n))
			case 2:
				q := rng.Intn(n)
				b.CX(q, (q+1+rng.Intn(n-1))%n)
			case 3:
				q := rng.Intn(n)
				b.RZZ(q, (q+1+rng.Intn(n-1))%n, rng.NormFloat64())
			}
		}
		logical := b.MustBuild()
		cm := Line(n)
		res, err := Route(logical, cm)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(res.Circuit, cm); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Compare ⟨Z⟩ of every logical qubit: on the routed circuit it
		// lives at physical Layout[q].
		orig, err := qsim.Run(logical)
		if err != nil {
			t.Fatal(err)
		}
		routed, err := qsim.Run(res.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < n; q++ {
			want := orig.ExpectationZ(q)
			got := routed.ExpectationZ(res.Layout[q])
			if math.Abs(want-got) > 1e-9 {
				t.Fatalf("trial %d: logical q%d ⟨Z⟩ = %v routed %v (layout %v)",
					trial, q, want, got, res.Layout)
			}
		}
	}
}

// Routed ZZ correlations also survive (two-qubit observables, catching
// layout-permutation bugs single-qubit checks miss).
func TestRouteZZEquivalence(t *testing.T) {
	c := circuit.NewBuilder(4).H(0).CX(0, 3).RY(1, 0.8).CX(1, 3).MustBuild()
	res, err := Route(c, Line(4))
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := qsim.Run(c)
	routed, _ := qsim.Run(res.Circuit)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			want := orig.ExpectationZZ(a, b)
			got := routed.ExpectationZZ(res.Layout[a], res.Layout[b])
			if math.Abs(want-got) > 1e-9 {
				t.Errorf("ZZ(%d,%d): %v vs %v", a, b, want, got)
			}
		}
	}
}

// Routing on a grid needs fewer swaps than on a line for cross gates.
func TestGridBeatsLine(t *testing.T) {
	c := circuit.NewBuilder(6).CX(0, 5).CX(1, 4).MustBuild()
	lineRes, err := Route(c, Line(6))
	if err != nil {
		t.Fatal(err)
	}
	gridRes, err := Route(c, Grid(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if gridRes.SwapsInserted >= lineRes.SwapsInserted {
		t.Errorf("grid swaps %d not below line swaps %d", gridRes.SwapsInserted, lineRes.SwapsInserted)
	}
}
