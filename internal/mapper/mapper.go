// Package mapper implements qubit mapping and routing: transforming a
// circuit that assumes all-to-all connectivity into one whose two-qubit
// gates all act on neighbouring physical qubits of a coupling map, by
// inserting SWAP gates. This is the "transpile the quantum circuit based
// on the quantum hardware" step of the baseline flow (§2.2) and of any
// real superconducting stack — the paper's devices couple only adjacent
// transmons.
//
// The router is a greedy nearest-path algorithm: gates are processed in
// order; when a two-qubit gate spans non-adjacent physical qubits, SWAPs
// move one operand along a shortest path until they meet. It favours
// simplicity and determinism over optimality, which suits a reproduction
// whose evaluation depends on gate counts, not routing research.
package mapper

import (
	"fmt"
	"strings"

	"qtenon/internal/circuit"
)

// Coupling is an undirected connectivity graph over physical qubits.
type Coupling struct {
	n   int
	adj [][]int
}

// NewCoupling builds a coupling map from an edge list.
func NewCoupling(n int, edges [][2]int) (*Coupling, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mapper: non-positive qubit count %d", n)
	}
	c := &Coupling{n: n, adj: make([][]int, n)}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n || a == b {
			return nil, fmt.Errorf("mapper: invalid edge %v", e)
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		c.adj[a] = append(c.adj[a], b)
		c.adj[b] = append(c.adj[b], a)
	}
	return c, nil
}

// Line returns a 1-D chain coupling map (the classic transmon ladder).
func Line(n int) *Coupling {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	c, err := NewCoupling(n, edges)
	if err != nil {
		panic(err)
	}
	return c
}

// Grid returns a rows×cols lattice coupling map.
func Grid(rows, cols int) *Coupling {
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	cm, err := NewCoupling(rows*cols, edges)
	if err != nil {
		panic(err)
	}
	return cm
}

// NQubits reports the physical qubit count.
func (c *Coupling) NQubits() int { return c.n }

// Fingerprint renders the coupling graph as a content string (qubit
// count plus edge list in adjacency order). Caches key on it instead of
// the *Coupling pointer, so two maps with identical structure hit the
// same entry regardless of identity.
func (c *Coupling) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d:", c.n)
	for q, nbrs := range c.adj {
		for _, r := range nbrs {
			if q < r {
				fmt.Fprintf(&b, "%d-%d,", q, r)
			}
		}
	}
	return b.String()
}

// Adjacent reports whether two physical qubits are coupled.
func (c *Coupling) Adjacent(a, b int) bool {
	for _, x := range c.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

// Path returns a shortest path between two physical qubits (inclusive),
// or nil if disconnected. BFS; deterministic given adjacency order.
func (c *Coupling) Path(from, to int) []int {
	if from == to {
		return []int{from}
	}
	prev := make([]int, c.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[from] = from
	queue := []int{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range c.adj[cur] {
			if prev[nb] != -1 {
				continue
			}
			prev[nb] = cur
			if nb == to {
				var path []int
				for x := to; x != from; x = prev[x] {
					path = append(path, x)
				}
				path = append(path, from)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// Result is a routed circuit plus the layout bookkeeping needed to
// interpret its measurements.
type Result struct {
	Circuit *circuit.Circuit
	// Layout maps logical qubit → physical qubit at circuit END (SWAPs
	// permute it; measurement of logical q reads physical Layout[q]).
	Layout []int
	// SwapsInserted counts routing overhead.
	SwapsInserted int
}

// Route maps a logical circuit onto the coupling map with the trivial
// initial layout (logical i on physical i) and greedy SWAP insertion.
// SWAP gates are decomposed into three CX gates, the native realization.
func Route(c *circuit.Circuit, cm *Coupling) (*Result, error) {
	if c.NQubits > cm.NQubits() {
		return nil, fmt.Errorf("mapper: circuit needs %d qubits, device has %d", c.NQubits, cm.NQubits())
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := circuit.New(cm.NQubits())
	out.NumParams = c.NumParams
	layout := make([]int, c.NQubits) // logical → physical
	for i := range layout {
		layout[i] = i
	}
	phys2log := make([]int, cm.NQubits()) // physical → logical (-1 free)
	for i := range phys2log {
		phys2log[i] = -1
	}
	for l, p := range layout {
		phys2log[p] = l
	}
	res := &Result{}

	swap := func(a, b int) {
		// SWAP(a,b) = CX(a,b)·CX(b,a)·CX(a,b) on physical qubits.
		out.Gates = append(out.Gates,
			circuit.Gate{Kind: circuit.CX, Qubit: a, Qubit2: b, Param: circuit.NoParam},
			circuit.Gate{Kind: circuit.CX, Qubit: b, Qubit2: a, Param: circuit.NoParam},
			circuit.Gate{Kind: circuit.CX, Qubit: a, Qubit2: b, Param: circuit.NoParam},
		)
		la, lb := phys2log[a], phys2log[b]
		phys2log[a], phys2log[b] = lb, la
		if la >= 0 {
			layout[la] = b
		}
		if lb >= 0 {
			layout[lb] = a
		}
		res.SwapsInserted++
	}

	for _, g := range c.Gates {
		ng := g
		ng.Qubit = layout[g.Qubit]
		if g.Kind.Arity() == 2 {
			ng.Qubit2 = layout[g.Qubit2]
			if !cm.Adjacent(ng.Qubit, ng.Qubit2) {
				path := cm.Path(ng.Qubit, ng.Qubit2)
				if path == nil {
					return nil, fmt.Errorf("mapper: qubits %d and %d disconnected", ng.Qubit, ng.Qubit2)
				}
				// Walk the first operand toward the second, stopping one
				// hop short.
				for i := 0; i+2 < len(path); i++ {
					swap(path[i], path[i+1])
				}
				ng.Qubit = layout[g.Qubit]
				ng.Qubit2 = layout[g.Qubit2]
				if !cm.Adjacent(ng.Qubit, ng.Qubit2) {
					return nil, fmt.Errorf("mapper: internal error: %d-%d still distant after routing", ng.Qubit, ng.Qubit2)
				}
			}
		}
		out.Gates = append(out.Gates, ng)
	}
	res.Circuit = out
	res.Layout = layout
	return res, nil
}

// RemapOutcomes converts measurement words from physical to logical bit
// order: logical qubit q's bit is read from physical position layout[q].
// Only the first 64 physical positions are representable in a packed
// word, matching the measurement-word convention elsewhere.
func RemapOutcomes(outcomes []uint64, layout []int) []uint64 {
	out := make([]uint64, len(outcomes))
	for i, o := range outcomes {
		var v uint64
		for q, p := range layout {
			if q >= 64 || p >= 64 {
				continue
			}
			v |= (o >> p & 1) << q
		}
		out[i] = v
	}
	return out
}

// Validate checks that every two-qubit gate of a circuit respects the
// coupling map (the post-condition of Route).
func Validate(c *circuit.Circuit, cm *Coupling) error {
	for i, g := range c.Gates {
		if g.Kind.Arity() == 2 && !cm.Adjacent(g.Qubit, g.Qubit2) {
			return fmt.Errorf("mapper: gate %d (%v) spans non-adjacent qubits", i, g)
		}
	}
	return nil
}
