package trace

import (
	"strings"
	"testing"

	"qtenon/internal/sim"
)

func ns(n int64) sim.Time { return sim.Time(n) * sim.Nanosecond }

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Add("x", "y", 0, ns(10)) // must not panic
	if r.Len() != 0 || r.Spans() != nil || r.Busy("x") != 0 || r.Resources() != nil {
		t.Error("nil recorder not inert")
	}
}

func TestAddAndSpans(t *testing.T) {
	var r Recorder
	r.Add("host", "compile", ns(0), ns(10))
	r.Add("quantum", "shots", ns(10), ns(110))
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	s := r.Spans()[1]
	if s.Resource != "quantum" || s.Duration() != ns(100) {
		t.Errorf("span = %+v", s)
	}
	// Reversed bounds are normalized.
	r.Add("host", "oops", ns(50), ns(40))
	last := r.Spans()[2]
	if last.Start != ns(40) || last.End != ns(50) {
		t.Errorf("reversed span not normalized: %+v", last)
	}
}

func TestBusyMergesOverlaps(t *testing.T) {
	var r Recorder
	r.Add("bus", "a", ns(0), ns(10))
	r.Add("bus", "b", ns(5), ns(20))  // overlaps a
	r.Add("bus", "c", ns(30), ns(40)) // disjoint
	r.Add("other", "x", ns(0), ns(100))
	if got := r.Busy("bus"); got != ns(30) {
		t.Errorf("Busy = %v, want 30ns", got)
	}
	if got := r.Busy("missing"); got != 0 {
		t.Errorf("Busy(missing) = %v", got)
	}
}

func TestResourcesOrder(t *testing.T) {
	var r Recorder
	r.Add("b", "", 0, 1)
	r.Add("a", "", 0, 1)
	r.Add("b", "", 2, 3)
	res := r.Resources()
	if len(res) != 2 || res[0] != "b" || res[1] != "a" {
		t.Errorf("Resources = %v", res)
	}
}

func TestRender(t *testing.T) {
	var r Recorder
	r.Add("host", "prep", ns(0), ns(25))
	r.Add("quantum", "run", ns(25), ns(100))
	out := r.Render(40)
	if !strings.Contains(out, "host") || !strings.Contains(out, "quantum") {
		t.Fatalf("missing lanes:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Host lane is filled early, quantum late.
	hostLane := lines[1][strings.Index(lines[1], "|")+1:]
	quantumLane := lines[2][strings.Index(lines[2], "|")+1:]
	if hostLane[0] != '#' {
		t.Errorf("host lane not filled at start: %q", hostLane)
	}
	if quantumLane[0] == '#' {
		t.Errorf("quantum lane filled at start: %q", quantumLane)
	}
	if !strings.Contains(quantumLane, "#") {
		t.Errorf("quantum lane empty: %q", quantumLane)
	}
}

func TestRenderEmpty(t *testing.T) {
	var r Recorder
	if out := r.Render(40); !strings.Contains(out, "no spans") {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderZeroDurationTimeline(t *testing.T) {
	var r Recorder
	r.Add("x", "", ns(5), ns(5))
	out := r.Render(5) // also exercises the width clamp
	if !strings.Contains(out, "x") {
		t.Errorf("render = %q", out)
	}
}
