// Package trace records spans of simulated time per hardware resource
// and renders them as a text timeline — the observability layer for the
// system model. A span is (resource, label, start, end); the renderer
// draws one lane per resource, which makes overlap (or its absence,
// under FENCE) directly visible, the way Figure 9 draws it.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"qtenon/internal/sim"
)

// Span is one timed activity on a resource lane.
type Span struct {
	Resource string
	Label    string
	Start    sim.Time
	End      sim.Time
}

// Duration reports the span length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Recorder accumulates spans. The zero Recorder is ready; a nil
// *Recorder is a valid no-op sink, so instrumented code never needs nil
// checks.
type Recorder struct {
	spans []Span
}

// Add records a span. Calling on a nil recorder is a no-op.
func (r *Recorder) Add(resource, label string, start, end sim.Time) {
	if r == nil {
		return
	}
	if end < start {
		start, end = end, start
	}
	r.spans = append(r.spans, Span{Resource: resource, Label: label, Start: start, End: end})
}

// Spans returns recorded spans in insertion order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Len reports the span count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Busy sums the time a resource was occupied (overlapping spans on the
// same resource are merged first).
func (r *Recorder) Busy(resource string) sim.Time {
	if r == nil {
		return 0
	}
	var ivals []Span
	for _, s := range r.spans {
		if s.Resource == resource {
			ivals = append(ivals, s)
		}
	}
	sort.Slice(ivals, func(i, j int) bool { return ivals[i].Start < ivals[j].Start })
	var busy sim.Time
	var curEnd sim.Time = -1
	var curStart sim.Time
	for _, s := range ivals {
		if curEnd < 0 || s.Start > curEnd {
			if curEnd >= 0 {
				busy += curEnd - curStart
			}
			curStart, curEnd = s.Start, s.End
		} else if s.End > curEnd {
			curEnd = s.End
		}
	}
	if curEnd >= 0 {
		busy += curEnd - curStart
	}
	return busy
}

// Resources lists resources in first-seen order.
func (r *Recorder) Resources() []string {
	if r == nil {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	for _, s := range r.spans {
		if !seen[s.Resource] {
			seen[s.Resource] = true
			out = append(out, s.Resource)
		}
	}
	return out
}

// Render draws a fixed-width timeline, one lane per resource:
//
//	host    |██░░░░░░██          | 2 spans, busy 40ns
//	quantum |    ████████████    | 1 span, busy 120ns
//
// width is the number of timeline columns (≥ 10).
func (r *Recorder) Render(width int) string {
	if r.Len() == 0 {
		return "(no spans recorded)\n"
	}
	if width < 10 {
		width = 10
	}
	var tmin, tmax sim.Time
	first := true
	for _, s := range r.spans {
		if first || s.Start < tmin {
			tmin = s.Start
		}
		if first || s.End > tmax {
			tmax = s.End
		}
		first = false
	}
	span := tmax - tmin
	if span <= 0 {
		span = 1
	}
	col := func(t sim.Time) int {
		c := int(int64(t-tmin) * int64(width) / int64(span))
		if c >= width {
			c = width - 1
		}
		return c
	}
	resources := r.Resources()
	nameW := 0
	for _, res := range resources {
		if len(res) > nameW {
			nameW = len(res)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline %v .. %v (%v)\n", tmin, tmax, tmax-tmin)
	for _, res := range resources {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = ' '
		}
		count := 0
		for _, s := range r.spans {
			if s.Resource != res {
				continue
			}
			count++
			for c := col(s.Start); c <= col(s.End); c++ {
				lane[c] = '#'
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s| %d span(s), busy %v\n", nameW, res, lane, count, r.Busy(res))
	}
	return sb.String()
}
