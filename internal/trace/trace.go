// Package trace records spans of simulated time per hardware resource
// and renders them as a text timeline — the observability layer for the
// system model. A span is (resource, label, start, end); the renderer
// draws one lane per resource, which makes overlap (or its absence,
// under FENCE) directly visible, the way Figure 9 draws it.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"qtenon/internal/sim"
)

// Span is one timed activity on a resource lane.
type Span struct {
	Resource string
	Label    string
	Start    sim.Time
	End      sim.Time
}

// Duration reports the span length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Recorder accumulates spans. The zero Recorder is ready; a nil
// *Recorder is a valid no-op sink, so instrumented code never needs nil
// checks.
//
// Spans are indexed per resource as they arrive, and per-resource busy
// time is memoized, so Busy and Render stay cheap on multi-thousand-span
// traces instead of re-scanning and re-sorting the full span list on
// every call.
type Recorder struct {
	spans []Span
	// byResource holds each resource's span indices in insertion order;
	// order lists resources in first-seen order.
	byResource map[string][]int
	order      []string
	// busy memoizes Busy per resource; an entry is valid while its n
	// still matches the resource's span count.
	busy map[string]busyEntry
}

type busyEntry struct {
	n    int
	busy sim.Time
}

// Add records a span. Calling on a nil recorder is a no-op.
func (r *Recorder) Add(resource, label string, start, end sim.Time) {
	if r == nil {
		return
	}
	if end < start {
		start, end = end, start
	}
	if r.byResource == nil {
		r.byResource = make(map[string][]int)
	}
	if _, seen := r.byResource[resource]; !seen {
		r.order = append(r.order, resource)
	}
	r.byResource[resource] = append(r.byResource[resource], len(r.spans))
	r.spans = append(r.spans, Span{Resource: resource, Label: label, Start: start, End: end})
}

// Spans returns recorded spans in insertion order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Len reports the span count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Busy sums the time a resource was occupied (overlapping spans on the
// same resource are merged first). The result is memoized per resource
// and recomputed only after new spans land on that resource, so repeated
// queries — the Render pattern — are O(1).
func (r *Recorder) Busy(resource string) sim.Time {
	if r == nil {
		return 0
	}
	idxs := r.byResource[resource]
	if e, ok := r.busy[resource]; ok && e.n == len(idxs) {
		return e.busy
	}
	starts := make([]sim.Time, len(idxs))
	ends := make([]sim.Time, len(idxs))
	for i, k := range idxs {
		starts[i], ends[i] = r.spans[k].Start, r.spans[k].End
	}
	sort.Sort(&intervalsByStart{starts, ends})
	var busy sim.Time
	var curEnd sim.Time = -1
	var curStart sim.Time
	for i := range starts {
		if curEnd < 0 || starts[i] > curEnd {
			if curEnd >= 0 {
				busy += curEnd - curStart
			}
			curStart, curEnd = starts[i], ends[i]
		} else if ends[i] > curEnd {
			curEnd = ends[i]
		}
	}
	if curEnd >= 0 {
		busy += curEnd - curStart
	}
	if r.busy == nil {
		r.busy = make(map[string]busyEntry)
	}
	r.busy[resource] = busyEntry{n: len(idxs), busy: busy}
	return busy
}

// intervalsByStart sorts parallel (start, end) slices by start time.
type intervalsByStart struct {
	starts []sim.Time
	ends   []sim.Time
}

func (v *intervalsByStart) Len() int           { return len(v.starts) }
func (v *intervalsByStart) Less(i, j int) bool { return v.starts[i] < v.starts[j] }
func (v *intervalsByStart) Swap(i, j int) {
	v.starts[i], v.starts[j] = v.starts[j], v.starts[i]
	v.ends[i], v.ends[j] = v.ends[j], v.ends[i]
}

// Resources lists resources in first-seen order.
func (r *Recorder) Resources() []string {
	if r == nil || len(r.order) == 0 {
		return nil
	}
	return append([]string(nil), r.order...)
}

// Render draws a fixed-width timeline, one lane per resource:
//
//	host    |██░░░░░░██          | 2 spans, busy 40ns
//	quantum |    ████████████    | 1 span, busy 120ns
//
// width is the number of timeline columns (≥ 10).
func (r *Recorder) Render(width int) string {
	if r.Len() == 0 {
		return "(no spans recorded)\n"
	}
	if width < 10 {
		width = 10
	}
	var tmin, tmax sim.Time
	first := true
	for _, s := range r.spans {
		if first || s.Start < tmin {
			tmin = s.Start
		}
		if first || s.End > tmax {
			tmax = s.End
		}
		first = false
	}
	span := tmax - tmin
	if span <= 0 {
		span = 1
	}
	col := func(t sim.Time) int {
		c := int(int64(t-tmin) * int64(width) / int64(span))
		if c >= width {
			c = width - 1
		}
		return c
	}
	resources := r.Resources()
	nameW := 0
	for _, res := range resources {
		if len(res) > nameW {
			nameW = len(res)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline %v .. %v (%v)\n", tmin, tmax, tmax-tmin)
	for _, res := range resources {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = ' '
		}
		idxs := r.byResource[res]
		for _, k := range idxs {
			s := r.spans[k]
			for c := col(s.Start); c <= col(s.End); c++ {
				lane[c] = '#'
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s| %d span(s), busy %v\n", nameW, res, lane, len(idxs), r.Busy(res))
	}
	return sb.String()
}
