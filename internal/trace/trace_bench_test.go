package trace

import (
	"fmt"
	"sort"
	"testing"

	"qtenon/internal/sim"
)

// naiveBusy reimplements the pre-index Busy algorithm — filter every
// span by resource, sort, merge — as the benchmark reference.
func naiveBusy(r *Recorder, resource string) sim.Time {
	var filtered []Span
	for _, s := range r.Spans() {
		if s.Resource == resource {
			filtered = append(filtered, s)
		}
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Start < filtered[j].Start })
	var busy sim.Time
	var curEnd sim.Time = -1
	var curStart sim.Time
	for _, s := range filtered {
		if curEnd < 0 || s.Start > curEnd {
			if curEnd >= 0 {
				busy += curEnd - curStart
			}
			curStart, curEnd = s.Start, s.End
		} else if s.End > curEnd {
			curEnd = s.End
		}
	}
	if curEnd >= 0 {
		busy += curEnd - curStart
	}
	return busy
}

func buildTrace(spans, resources int) *Recorder {
	r := &Recorder{}
	for i := 0; i < spans; i++ {
		res := fmt.Sprintf("res%d", i%resources)
		// Deterministic pseudo-scatter: overlapping, out-of-order starts.
		start := sim.Time((i * 7919) % (spans * 10))
		r.Add(res, "op", start, start+25)
	}
	return r
}

// The optimized Busy must agree with the naive reference on a large,
// overlapping, out-of-order trace — and stay correct across interleaved
// Add calls that invalidate the memo.
func TestBusyMatchesNaiveOnLargeTrace(t *testing.T) {
	r := buildTrace(5000, 8)
	for i := 0; i < 8; i++ {
		res := fmt.Sprintf("res%d", i)
		if got, want := r.Busy(res), naiveBusy(r, res); got != want {
			t.Errorf("Busy(%s) = %v, want %v", res, got, want)
		}
	}
	// Invalidate one resource's memo and re-check all lanes.
	r.Add("res3", "late", 0, sim.Time(5000*10+100))
	for i := 0; i < 8; i++ {
		res := fmt.Sprintf("res%d", i)
		if got, want := r.Busy(res), naiveBusy(r, res); got != want {
			t.Errorf("after Add: Busy(%s) = %v, want %v", res, got, want)
		}
	}
}

// BenchmarkBusy queries every lane of a 5000-span trace repeatedly —
// the Render access pattern. The indexed/memoized implementation pays
// one sort per lane and then serves from cache.
func BenchmarkBusy(b *testing.B) {
	r := buildTrace(5000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 8; k++ {
			_ = r.Busy(fmt.Sprintf("res%d", k))
		}
	}
}

// BenchmarkBusyNaive is the pre-index algorithm on the same trace and
// access pattern, for comparison.
func BenchmarkBusyNaive(b *testing.B) {
	r := buildTrace(5000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 8; k++ {
			_ = naiveBusy(r, fmt.Sprintf("res%d", k))
		}
	}
}

// BenchmarkBusyInterleaved alternates Add and Busy, the worst case for
// the memo (every query recomputes one lane) — still bounded by the
// per-resource index instead of the full span list.
func BenchmarkBusyInterleaved(b *testing.B) {
	r := buildTrace(5000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := fmt.Sprintf("res%d", i%8)
		r.Add(res, "op", sim.Time(i), sim.Time(i+10))
		_ = r.Busy(res)
	}
}
