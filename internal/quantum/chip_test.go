package quantum

import (
	"math"
	"math/rand"
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
	"qtenon/internal/route"
	"qtenon/internal/sim"
)

func TestBackendSelection(t *testing.T) {
	nonClifford := circuit.NewBuilder(2).H(0).RY(1, 0.3).MeasureAll().MustBuild()
	clifford := circuit.NewBuilder(2).H(0).CX(0, 1).MeasureAll().MustBuild()

	small, err := NewChip(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := small.Method(); got != route.Auto {
		t.Errorf("fresh chip Method = %v, want auto", got)
	}
	if _, err := small.Execute(nonClifford, 10); err != nil {
		t.Fatal(err)
	}
	if got := small.Method(); got != route.Dense {
		t.Errorf("8-qubit chip routed %v for a generic circuit, want dense", got)
	}
	if _, err := small.Execute(clifford, 10); err != nil {
		t.Fatal(err)
	}
	if got := small.Method(); got != route.Clifford {
		t.Errorf("8-qubit chip routed %v for a Clifford circuit, want clifford", got)
	}

	big, err := NewChip(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.Execute(nonClifford, 10); err != nil {
		t.Fatal(err)
	}
	if got := big.Method(); got != route.Product {
		t.Errorf("64-qubit chip routed %v for a generic circuit, want product", got)
	}
	if _, err := NewChip(0, 1); err == nil {
		t.Error("NewChip accepted 0 qubits")
	}
}

func TestForceMethod(t *testing.T) {
	clifford := circuit.NewBuilder(2).H(0).CX(0, 1).MeasureAll().MustBuild()
	chip, _ := NewChip(2, 1)
	chip.ForceMethod(route.Dense)
	if _, err := chip.Execute(clifford, 10); err != nil {
		t.Fatal(err)
	}
	if got := chip.Method(); got != route.Dense {
		t.Errorf("forced dense, routed %v", got)
	}
	nonClifford := circuit.NewBuilder(2).RY(0, 0.3).MeasureAll().MustBuild()
	chip.ForceMethod(route.Clifford)
	if _, err := chip.Execute(nonClifford, 10); err == nil {
		t.Error("clifford forced on a non-Clifford circuit did not fail")
	}
	if !ForceMethodOn(chip, route.Auto) {
		t.Error("ForceMethodOn did not recognize the chip")
	}
	if _, err := chip.Execute(nonClifford, 10); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteValidation(t *testing.T) {
	chip, _ := NewChip(2, 1)
	tooWide := circuit.NewBuilder(3).H(0).MustBuild()
	if _, err := chip.Execute(tooWide, 10); err == nil {
		t.Error("accepted circuit wider than chip")
	}
	unbound := circuit.NewBuilder(2).RXP(0, 0).MustBuild()
	if _, err := chip.Execute(unbound, 10); err == nil {
		t.Error("accepted unbound circuit")
	}
	ok := circuit.NewBuilder(2).H(0).MustBuild()
	if _, err := chip.Execute(ok, 0); err == nil {
		t.Error("accepted zero shots")
	}
}

func TestExecuteTiming(t *testing.T) {
	chip, _ := NewChip(2, 1)
	c := circuit.NewBuilder(2).H(0).CX(0, 1).MeasureAll().MustBuild()
	ex, err := chip.Execute(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Critical path: H (20) + CX (40) + measure (600) = 660 ns.
	if ex.ShotTime != 660*sim.Nanosecond {
		t.Errorf("ShotTime = %v, want 660ns", ex.ShotTime)
	}
	if ex.TotalTime() != 100*660*sim.Nanosecond {
		t.Errorf("TotalTime = %v", ex.TotalTime())
	}
	if len(ex.Outcomes) != 100 {
		t.Errorf("outcomes = %d", len(ex.Outcomes))
	}
}

func TestExactBellCorrelations(t *testing.T) {
	chip, _ := NewChip(2, 7)
	c := circuit.NewBuilder(2).H(0).CX(0, 1).MeasureAll().MustBuild()
	ex, err := chip.Execute(c, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ex.Outcomes {
		if o == 1 || o == 2 {
			t.Fatalf("Bell produced uncorrelated outcome %b", o)
		}
	}
}

// The surrogate is EXACT for circuits without two-qubit gates: validate
// its per-qubit populations against the statevector simulator.
func TestSurrogateMatchesExactFor1QCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		b := circuit.NewBuilder(4)
		for i := 0; i < 15; i++ {
			q := rng.Intn(4)
			switch rng.Intn(4) {
			case 0:
				b.RX(q, rng.NormFloat64())
			case 1:
				b.RY(q, rng.NormFloat64())
			case 2:
				b.RZ(q, rng.NormFloat64())
			case 3:
				b.H(q)
			}
		}
		c := b.MustBuild()
		st, err := qsim.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		ps := NewProductState(4)
		for _, g := range c.Gates {
			ps.Apply(g)
		}
		for q := 0; q < 4; q++ {
			exact := (1 - st.ExpectationZ(q)) / 2
			if math.Abs(ps.P1(q)-exact) > 1e-9 {
				t.Fatalf("trial %d qubit %d: surrogate P1=%v exact=%v", trial, q, ps.P1(q), exact)
			}
		}
	}
}

func TestSurrogateParameterSensitivity(t *testing.T) {
	// The QAOA pattern RZZ→RX must respond to the RZZ angle in the
	// surrogate (mean-field coupling), otherwise large-scale optimizer
	// sweeps would see a flat landscape.
	cost := func(gamma float64) float64 {
		ps := NewProductState(2)
		ps.Apply(circuit.Gate{Kind: circuit.H, Qubit: 0, Param: circuit.NoParam})
		ps.Apply(circuit.Gate{Kind: circuit.RY, Qubit: 1, Theta: 0.7, Param: circuit.NoParam})
		ps.Apply(circuit.Gate{Kind: circuit.RZZ, Qubit: 0, Qubit2: 1, Theta: gamma, Param: circuit.NoParam})
		ps.Apply(circuit.Gate{Kind: circuit.RX, Qubit: 0, Theta: 0.9, Param: circuit.NoParam})
		ps.Apply(circuit.Gate{Kind: circuit.RX, Qubit: 1, Theta: 0.9, Param: circuit.NoParam})
		return ps.ZExp(0) + ps.ZExp(1)
	}
	if math.Abs(cost(0.3)-cost(1.5)) < 1e-6 {
		t.Error("surrogate insensitive to RZZ angle")
	}
}

func TestSurrogateCXMixesTarget(t *testing.T) {
	ps := NewProductState(2)
	ps.Apply(circuit.Gate{Kind: circuit.X, Qubit: 0, Param: circuit.NoParam}) // control = |1⟩
	ps.Apply(circuit.Gate{Kind: circuit.CX, Qubit: 0, Qubit2: 1, Param: circuit.NoParam})
	if math.Abs(ps.P1(1)-1) > 1e-9 {
		t.Errorf("CX with control=1: target P1 = %v, want 1", ps.P1(1))
	}
	ps2 := NewProductState(2)
	ps2.Apply(circuit.Gate{Kind: circuit.CX, Qubit: 0, Qubit2: 1, Param: circuit.NoParam})
	if ps2.P1(1) > 1e-9 {
		t.Errorf("CX with control=0 flipped target: %v", ps2.P1(1))
	}
}

func TestSurrogateSampleDistribution(t *testing.T) {
	ps := NewProductState(1)
	ps.Apply(circuit.Gate{Kind: circuit.RY, Qubit: 0, Theta: math.Pi / 3, Param: circuit.NoParam})
	// P1 = sin²(π/6) = 0.25.
	rng := rand.New(rand.NewSource(5))
	samples := ps.Sample(40000, rng)
	ones := 0
	for _, s := range samples {
		ones += int(s & 1)
	}
	frac := float64(ones) / 40000
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("sampled P1 = %v, want 0.25", frac)
	}
}

func TestLargeChipExecutes(t *testing.T) {
	chip, _ := NewChip(64, 9)
	b := circuit.NewBuilder(64)
	for q := 0; q < 64; q++ {
		b.RY(q, 0.1*float64(q))
	}
	for q := 0; q+1 < 64; q += 2 {
		b.CZ(q, q+1)
	}
	b.MeasureAll()
	c := b.MustBuild()
	ex, err := chip.Execute(c, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Outcomes) != 50 {
		t.Fatalf("outcomes = %d", len(ex.Outcomes))
	}
	if ex.ShotTime <= 600*sim.Nanosecond {
		t.Errorf("ShotTime = %v, must exceed the measurement window", ex.ShotTime)
	}
}

func TestADIDefaults(t *testing.T) {
	adi := DefaultADI()
	if adi.LatencyIn != 100*sim.Nanosecond || adi.LatencyOut != 100*sim.Nanosecond {
		t.Errorf("ADI = %+v, want 100ns each direction", adi)
	}
	if adi.RoundTrip() != 200*sim.Nanosecond {
		t.Errorf("RoundTrip = %v", adi.RoundTrip())
	}
}

func TestChipDeterminism(t *testing.T) {
	run := func() []uint64 {
		chip, _ := NewChip(4, 42)
		c := circuit.NewBuilder(4).H(0).CX(0, 1).RY(2, 0.5).MeasureAll().MustBuild()
		ex, err := chip.Execute(c, 20)
		if err != nil {
			t.Fatal(err)
		}
		return ex.Outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("chip not deterministic for fixed seed")
		}
	}
}
