// Package quantum models the quantum chip and its analog-digital
// interface. Execution backends share the engine.Simulator interface
// and are chosen per circuit by the method router (internal/route):
//
//   - dense: the statevector simulator (internal/qsim), used up to
//     ExactLimit qubits — this is the paper's "simulator data obtained
//     from Qiskit" role.
//   - clifford: the CHP stabilizer tableau (internal/qsim/tableau),
//     exact for Clifford-only circuits at any width the paper sweeps.
//   - product: a mean-field product-state model for large generic
//     registers (the paper's 64–320-qubit sweeps), exact for
//     single-qubit gates and mean-field for entanglers. It produces
//     parameter-sensitive measurement statistics at O(n) cost,
//     preserving the optimizer traffic patterns that the architecture
//     experiments measure, which depend on shot counts and parameter
//     counts, not on entanglement fidelity. The substitution is
//     documented in DESIGN.md.
//
// Timing is analytic in all backends, exactly as in the paper (§7.1):
// gates take 20/40 ns, measurement 600 ns, and a shot's duration is the
// ASAP critical path of its circuit.
package quantum

import (
	"fmt"
	"math/rand"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim/engine"
	"qtenon/internal/qsim/product"
	"qtenon/internal/rng"
	"qtenon/internal/route"
	"qtenon/internal/sim"
)

// ExactLimit is the largest register simulated dense-exactly for
// generic (non-Clifford) circuits — the router's DenseLimit.
const ExactLimit = 16

// Executor abstracts a quantum execution backend: the ideal Chip or a
// NoisyChip. System models depend on this interface so the error model
// is a configuration choice.
type Executor interface {
	NQubits() int
	Execute(c *circuit.Circuit, shots int) (Execution, error)
}

// Execution reports one q_run-style batch.
type Execution struct {
	Outcomes []uint64 // one basis-state index per shot (qubit 0 = bit 0)
	ShotTime sim.Time // critical-path duration of one shot
}

// TotalTime is shots × per-shot duration.
func (e Execution) TotalTime() sim.Time { return sim.Time(len(e.Outcomes)) * e.ShotTime }

// ProductState is the mean-field surrogate, promoted to
// internal/qsim/product; the alias keeps the original API importable
// from quantum.
type ProductState = product.State

// NewProductState returns |0…0⟩ — see product.New.
func NewProductState(n int) *ProductState { return product.New(n) }

// Chip executes bound circuits and samples measurements. Each Execute
// routes its circuit to a simulation method; the per-method simulator
// arenas are recycled across Execute calls so the optimizer's thousands
// of evaluations do not each allocate a fresh state. Execution.Outcomes,
// by contrast, is always freshly allocated — callers hold several
// Executions' outcomes at once (e.g. readout mitigation pairs).
type Chip struct {
	nqubits int
	timing  circuit.Timing
	rng     *rand.Rand
	router  route.Router
	method  route.Method // last method Execute resolved (Auto before any run)
	sims    [route.NumMethods]engine.Simulator
}

// NewChip returns a chip over n qubits with the paper's gate timing and
// the default router (dense ≤ ExactLimit, tableau for Clifford circuits,
// product beyond).
func NewChip(n int, seed int64) (*Chip, error) {
	if n <= 0 {
		return nil, fmt.Errorf("quantum: non-positive qubit count %d", n)
	}
	return &Chip{
		nqubits: n,
		timing:  circuit.DefaultTiming(),
		rng:     rng.New(seed),
		router:  route.Router{DenseLimit: ExactLimit},
	}, nil
}

// NQubits reports the register width.
func (c *Chip) NQubits() int { return c.nqubits }

// Timing exposes the gate-duration model.
func (c *Chip) Timing() circuit.Timing { return c.timing }

// Method reports the simulation method the most recent Execute resolved
// to, or route.Auto before the first execution.
func (c *Chip) Method() route.Method { return c.method }

// ForceMethod pins every subsequent Execute to one simulation method;
// route.Auto (the default) restores automatic selection. Execute fails
// when the forced method cannot run the circuit.
func (c *Chip) ForceMethod(m route.Method) { c.router.Force = m }

// Execute runs `shots` repetitions of the bound circuit.
func (c *Chip) Execute(ct *circuit.Circuit, shots int) (Execution, error) {
	if ct.NQubits > c.nqubits {
		return Execution{}, fmt.Errorf("quantum: circuit needs %d qubits, chip has %d", ct.NQubits, c.nqubits)
	}
	if ct.NumParams != 0 {
		return Execution{}, fmt.Errorf("quantum: circuit has unbound parameters")
	}
	if shots <= 0 {
		return Execution{}, fmt.Errorf("quantum: non-positive shot count %d", shots)
	}
	shot := circuit.Duration(ct, c.timing)
	m, _, err := c.router.SelectWidth(ct, c.nqubits)
	if err != nil {
		return Execution{}, err
	}
	sim := c.sims[m]
	if sim == nil || sim.NQubits() != ct.NQubits {
		sim, err = route.NewSimulator(m, ct.NQubits)
		if err != nil {
			return Execution{}, err
		}
		c.sims[m] = sim
	}
	if err := sim.Run(ct); err != nil {
		return Execution{}, err
	}
	c.method = m
	outcomes := sim.Sample(shots, c.rng)
	return Execution{Outcomes: outcomes, ShotTime: shot}, nil
}

// methodReporter is any executor that reports its routed method.
type methodReporter interface{ Method() route.Method }

// methodForcer is any executor whose router accepts a pinned method.
type methodForcer interface{ ForceMethod(route.Method) }

// MethodOf reports the last method an executor routed to, when the
// executor exposes one (Chip and NoisyChip do; ok is false otherwise).
func MethodOf(e Executor) (route.Method, bool) {
	if r, ok := e.(methodReporter); ok {
		return r.Method(), true
	}
	return route.Auto, false
}

// ForceMethodOn pins the executor's method when it supports forcing;
// it reports whether the executor did.
func ForceMethodOn(e Executor, m route.Method) bool {
	if f, ok := e.(methodForcer); ok {
		f.ForceMethod(m)
		return true
	}
	return false
}

// ADI is the analog-digital interface between controller and chip: fixed
// latency each direction (paper baseline: 100 ns) and the per-qubit
// bandwidth contract checked in internal/pulse.
type ADI struct {
	LatencyIn  sim.Time // controller → chip (drive)
	LatencyOut sim.Time // chip → controller (readout)
}

// DefaultADI returns the paper's 100 ns per direction.
func DefaultADI() ADI {
	return ADI{LatencyIn: 100 * sim.Nanosecond, LatencyOut: 100 * sim.Nanosecond}
}

// RoundTrip is the total in+out latency added to every shot.
func (a ADI) RoundTrip() sim.Time { return a.LatencyIn + a.LatencyOut }
