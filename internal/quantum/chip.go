// Package quantum models the quantum chip and its analog-digital
// interface. Two execution backends share one interface:
//
//   - Exact: the statevector simulator (internal/qsim), used up to
//     ExactLimit qubits — this is the paper's "simulator data obtained
//     from Qiskit" role.
//   - Surrogate: a mean-field product-state model for large registers
//     (the paper's 64–320-qubit sweeps), exact for single-qubit gates and
//     mean-field for entanglers. It produces parameter-sensitive
//     measurement statistics at O(n) cost, preserving the optimizer
//     traffic patterns that the architecture experiments measure, which
//     depend on shot counts and parameter counts, not on entanglement
//     fidelity. The substitution is documented in DESIGN.md.
//
// Timing is analytic in both backends, exactly as in the paper (§7.1):
// gates take 20/40 ns, measurement 600 ns, and a shot's duration is the
// ASAP critical path of its circuit.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"qtenon/internal/rng"

	"qtenon/internal/circuit"
	"qtenon/internal/qsim"
	"qtenon/internal/sim"
)

// ExactLimit is the largest register simulated exactly.
const ExactLimit = 16

// Executor abstracts a quantum execution backend: the ideal Chip or a
// NoisyChip. System models depend on this interface so the error model
// is a configuration choice.
type Executor interface {
	NQubits() int
	Execute(c *circuit.Circuit, shots int) (Execution, error)
}

// Execution reports one q_run-style batch.
type Execution struct {
	Outcomes []uint64 // one basis-state index per shot (qubit 0 = bit 0)
	ShotTime sim.Time // critical-path duration of one shot
}

// TotalTime is shots × per-shot duration.
func (e Execution) TotalTime() sim.Time { return sim.Time(len(e.Outcomes)) * e.ShotTime }

// Chip executes bound circuits and samples measurements.
type Chip struct {
	nqubits int
	timing  circuit.Timing
	rng     *rand.Rand
	exact   bool
	// st and ps are the execution arenas: one statevector (exact) or one
	// product state (surrogate) recycled across Execute calls, so the
	// optimizer's thousands of evaluations do not each allocate a fresh
	// 2^n amplitude array. Execution.Outcomes, by contrast, is always
	// freshly allocated — callers hold several Executions' outcomes at
	// once (e.g. readout mitigation pairs).
	st *qsim.State
	ps *ProductState
}

// NewChip returns a chip over n qubits with the paper's gate timing,
// selecting the exact backend when n ≤ ExactLimit.
func NewChip(n int, seed int64) (*Chip, error) {
	if n <= 0 {
		return nil, fmt.Errorf("quantum: non-positive qubit count %d", n)
	}
	return &Chip{
		nqubits: n,
		timing:  circuit.DefaultTiming(),
		rng:     rng.New(seed),
		exact:   n <= ExactLimit,
	}, nil
}

// NQubits reports the register width.
func (c *Chip) NQubits() int { return c.nqubits }

// Exact reports whether the statevector backend is active.
func (c *Chip) Exact() bool { return c.exact }

// Timing exposes the gate-duration model.
func (c *Chip) Timing() circuit.Timing { return c.timing }

// Execute runs `shots` repetitions of the bound circuit.
func (c *Chip) Execute(ct *circuit.Circuit, shots int) (Execution, error) {
	if ct.NQubits > c.nqubits {
		return Execution{}, fmt.Errorf("quantum: circuit needs %d qubits, chip has %d", ct.NQubits, c.nqubits)
	}
	if ct.NumParams != 0 {
		return Execution{}, fmt.Errorf("quantum: circuit has unbound parameters")
	}
	if shots <= 0 {
		return Execution{}, fmt.Errorf("quantum: non-positive shot count %d", shots)
	}
	shot := circuit.Duration(ct, c.timing)
	var outcomes []uint64
	if c.exact {
		st, err := qsim.RunReuse(c.st, ct)
		if err != nil {
			return Execution{}, err
		}
		c.st = st
		outcomes = st.Sample(shots, c.rng)
	} else {
		ps := c.ps
		if ps == nil || len(ps.a) != ct.NQubits {
			ps = NewProductState(ct.NQubits)
			c.ps = ps
		} else {
			ps.Reset()
		}
		for _, g := range ct.Gates {
			ps.Apply(g)
		}
		outcomes = ps.Sample(shots, c.rng)
	}
	return Execution{Outcomes: outcomes, ShotTime: shot}, nil
}

// ProductState is the mean-field surrogate: each qubit holds an exact
// 2-component state; two-qubit gates couple qubits through their partner's
// Z expectation (a mean-field decoupling of the interaction).
type ProductState struct {
	a, b []complex128 // per-qubit amplitudes of |0⟩ and |1⟩
	p1   []float64    // Sample's per-qubit probability scratch
}

// NewProductState returns |0…0⟩.
func NewProductState(n int) *ProductState {
	ps := &ProductState{a: make([]complex128, n), b: make([]complex128, n)}
	for i := range ps.a {
		ps.a[i] = 1
	}
	return ps
}

// Reset returns the product state to |0…0⟩ in place, keeping its
// storage — the surrogate counterpart of qsim's State.Reset.
func (ps *ProductState) Reset() {
	for i := range ps.a {
		ps.a[i] = 1
		ps.b[i] = 0
	}
}

// P1 returns qubit q's |1⟩ probability.
func (ps *ProductState) P1(q int) float64 {
	return real(ps.b[q])*real(ps.b[q]) + imag(ps.b[q])*imag(ps.b[q])
}

// ZExp returns ⟨Z_q⟩ = 1 − 2·P1.
func (ps *ProductState) ZExp(q int) float64 { return 1 - 2*ps.P1(q) }

func (ps *ProductState) apply1Q(q int, u00, u01, u10, u11 complex128) {
	a, b := ps.a[q], ps.b[q]
	ps.a[q] = u00*a + u01*b
	ps.b[q] = u10*a + u11*b
}

func (ps *ProductState) rz(q int, theta float64) {
	ps.apply1Q(q, cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2)))
}

func (ps *ProductState) rx(q int, theta float64) {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	ps.apply1Q(q, complex(c, 0), complex(0, -s), complex(0, -s), complex(c, 0))
}

// Apply executes one gate under the mean-field rules.
func (ps *ProductState) Apply(g circuit.Gate) {
	invSqrt2 := complex(1/math.Sqrt2, 0)
	switch g.Kind {
	case circuit.I, circuit.Measure:
	case circuit.X:
		ps.apply1Q(g.Qubit, 0, 1, 1, 0)
	case circuit.Y:
		ps.apply1Q(g.Qubit, 0, complex(0, -1), complex(0, 1), 0)
	case circuit.Z:
		ps.apply1Q(g.Qubit, 1, 0, 0, -1)
	case circuit.H:
		ps.apply1Q(g.Qubit, invSqrt2, invSqrt2, invSqrt2, -invSqrt2)
	case circuit.S:
		ps.apply1Q(g.Qubit, 1, 0, 0, complex(0, 1))
	case circuit.T:
		ps.apply1Q(g.Qubit, 1, 0, 0, cmplx.Exp(complex(0, math.Pi/4)))
	case circuit.RX:
		ps.rx(g.Qubit, g.Theta)
	case circuit.RY:
		c, s := math.Cos(g.Theta/2), math.Sin(g.Theta/2)
		ps.apply1Q(g.Qubit, complex(c, 0), complex(-s, 0), complex(s, 0), complex(c, 0))
	case circuit.RZ:
		ps.rz(g.Qubit, g.Theta)
	case circuit.RZZ:
		// Mean-field: e^{-iθ/2 Z⊗Z} → RZ(θ·⟨Z_b⟩) on a and RZ(θ·⟨Z_a⟩) on b.
		za, zb := ps.ZExp(g.Qubit), ps.ZExp(g.Qubit2)
		ps.rz(g.Qubit, g.Theta*zb)
		ps.rz(g.Qubit2, g.Theta*za)
	case circuit.CZ:
		// CZ = e^{iπ/4(Z⊗Z − Z⊗I − I⊗Z + I)}: mean-field phase kick scaled
		// by the partner's |1⟩ population.
		pa, pb := ps.P1(g.Qubit), ps.P1(g.Qubit2)
		ps.rz(g.Qubit, math.Pi*pb)
		ps.rz(g.Qubit2, math.Pi*pa)
	case circuit.CX:
		// Mean-field CNOT: rotate the target by π weighted by the
		// control's |1⟩ population.
		ps.rx(g.Qubit2, math.Pi*ps.P1(g.Qubit))
	default:
		panic(fmt.Sprintf("quantum: unsupported gate %v in surrogate", g.Kind))
	}
}

// Sample draws independent per-qubit outcomes. Outcome words carry the
// first 64 qubits; wider registers sample all qubits (the RNG stream
// advances identically) but report the 64-qubit cost window — see
// DESIGN.md on >64-qubit cost evaluation.
func (ps *ProductState) Sample(shots int, rng *rand.Rand) []uint64 {
	n := len(ps.a)
	p1 := ps.p1
	if cap(p1) < n {
		p1 = make([]float64, n)
	}
	p1 = p1[:n]
	ps.p1 = p1
	for q := range p1 {
		p1[q] = ps.P1(q)
	}
	out := make([]uint64, shots)
	for s := range out {
		var v uint64
		for q := 0; q < n; q++ {
			if rng.Float64() < p1[q] && q < 64 {
				v |= 1 << q
			}
		}
		out[s] = v
	}
	return out
}

// ADI is the analog-digital interface between controller and chip: fixed
// latency each direction (paper baseline: 100 ns) and the per-qubit
// bandwidth contract checked in internal/pulse.
type ADI struct {
	LatencyIn  sim.Time // controller → chip (drive)
	LatencyOut sim.Time // chip → controller (readout)
}

// DefaultADI returns the paper's 100 ns per direction.
func DefaultADI() ADI {
	return ADI{LatencyIn: 100 * sim.Nanosecond, LatencyOut: 100 * sim.Nanosecond}
}

// RoundTrip is the total in+out latency added to every shot.
func (a ADI) RoundTrip() sim.Time { return a.LatencyIn + a.LatencyOut }
