package quantum

import (
	"fmt"
	"math/rand"
	"qtenon/internal/rng"

	"qtenon/internal/circuit"
)

// Noise configures the NISQ error model applied during execution:
// depolarizing errors after each gate and symmetric readout bit flips.
// The zero value is noiseless. The architecture results do not depend on
// noise (the paper evaluates timing), but the workloads run on NISQ
// devices by definition (§2.1), and shot statistics under noise exercise
// the same post-processing paths with degraded signal — useful for
// validating optimizer robustness.
type Noise struct {
	// Depolar1Q and Depolar2Q are per-gate depolarizing probabilities.
	Depolar1Q float64
	Depolar2Q float64
	// Readout is the per-qubit measurement bit-flip probability.
	Readout float64
}

// Validate checks probability ranges.
func (n Noise) Validate() error {
	for _, p := range []float64{n.Depolar1Q, n.Depolar2Q, n.Readout} {
		if p < 0 || p > 1 {
			return fmt.Errorf("quantum: noise probability %v outside [0,1]", p)
		}
	}
	return nil
}

// Enabled reports whether any channel is active.
func (n Noise) Enabled() bool { return n.Depolar1Q > 0 || n.Depolar2Q > 0 || n.Readout > 0 }

// TypicalNISQ returns error rates representative of current
// superconducting hardware: 0.1% single-qubit, 1% two-qubit, 2% readout.
func TypicalNISQ() Noise {
	return Noise{Depolar1Q: 0.001, Depolar2Q: 0.01, Readout: 0.02}
}

// NoisyChip wraps a Chip with the stochastic error model. Errors are
// realized per shot-batch as randomly injected Pauli operators
// (trajectory method), so the exact backend stays a pure statevector.
type NoisyChip struct {
	*Chip
	noise Noise
	rng   *rand.Rand
}

// NewNoisyChip builds a chip with the given error model.
func NewNoisyChip(n int, seed int64, noise Noise) (*NoisyChip, error) {
	if err := noise.Validate(); err != nil {
		return nil, err
	}
	chip, err := NewChip(n, seed)
	if err != nil {
		return nil, err
	}
	return &NoisyChip{Chip: chip, noise: noise, rng: rng.New(rng.Derive(seed, 0x5eed))}, nil
}

// Noise reports the configured error model.
func (c *NoisyChip) Noise() Noise { return c.noise }

// Execute runs shots under the error model. Each shot batch samples one
// Pauli-error trajectory (adequate for expectation-level statistics at
// NISQ error rates) and readout errors are applied per shot, per qubit.
func (c *NoisyChip) Execute(ct *circuit.Circuit, shots int) (Execution, error) {
	if !c.noise.Enabled() {
		return c.Chip.Execute(ct, shots)
	}
	noisy := c.injectTrajectory(ct)
	ex, err := c.Chip.Execute(noisy, shots)
	if err != nil {
		return Execution{}, err
	}
	// Recompute the shot time from the clean circuit: injected error
	// gates are instantaneous physical processes, not scheduled pulses.
	ex.ShotTime = circuit.Duration(ct, c.Chip.Timing())
	if c.noise.Readout > 0 {
		n := min(ct.NQubits, 64)
		for i := range ex.Outcomes {
			for q := 0; q < n; q++ {
				if c.rng.Float64() < c.noise.Readout {
					ex.Outcomes[i] ^= 1 << q
				}
			}
		}
	}
	return ex, nil
}

// injectTrajectory returns a copy of ct with sampled Pauli errors
// appended after faulty gates.
func (c *NoisyChip) injectTrajectory(ct *circuit.Circuit) *circuit.Circuit {
	out := &circuit.Circuit{NQubits: ct.NQubits, NumParams: ct.NumParams}
	paulis := []circuit.Kind{circuit.X, circuit.Y, circuit.Z}
	inject := func(q int) {
		k := paulis[c.rng.Intn(len(paulis))]
		out.Gates = append(out.Gates, circuit.Gate{Kind: k, Qubit: q, Param: circuit.NoParam})
	}
	for _, g := range ct.Gates {
		out.Gates = append(out.Gates, g)
		switch {
		case g.Kind == circuit.Measure:
		case g.Kind.Arity() == 2:
			if c.rng.Float64() < c.noise.Depolar2Q {
				inject(g.Qubit)
			}
			if c.rng.Float64() < c.noise.Depolar2Q {
				inject(g.Qubit2)
			}
		default:
			if c.rng.Float64() < c.noise.Depolar1Q {
				inject(g.Qubit)
			}
		}
	}
	return out
}
