package quantum

import (
	"math"
	"testing"

	"qtenon/internal/circuit"
)

func TestNoiseValidate(t *testing.T) {
	if err := (Noise{}).Validate(); err != nil {
		t.Errorf("zero noise invalid: %v", err)
	}
	if err := TypicalNISQ().Validate(); err != nil {
		t.Errorf("typical NISQ invalid: %v", err)
	}
	bad := []Noise{{Depolar1Q: -0.1}, {Depolar2Q: 1.5}, {Readout: 2}}
	for _, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", n)
		}
	}
	if (Noise{}).Enabled() {
		t.Error("zero noise reports enabled")
	}
	if !TypicalNISQ().Enabled() {
		t.Error("typical NISQ reports disabled")
	}
	if _, err := NewNoisyChip(2, 1, Noise{Readout: -1}); err == nil {
		t.Error("NewNoisyChip accepted invalid noise")
	}
}

func TestNoiselessPassthrough(t *testing.T) {
	clean, _ := NewChip(2, 9)
	noisy, err := NewNoisyChip(2, 9, Noise{})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.NewBuilder(2).H(0).CX(0, 1).MeasureAll().MustBuild()
	a, err := clean.Execute(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := noisy.Execute(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatal("zero-noise chip diverges from clean chip")
		}
	}
}

func TestReadoutErrorRate(t *testing.T) {
	// |0⟩ measured under 10% readout error flips ≈10% of shots.
	noisy, err := NewNoisyChip(1, 3, Noise{Readout: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.NewBuilder(1).Measure(0).MustBuild()
	ex, err := noisy.Execute(c, 20000)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for _, o := range ex.Outcomes {
		flips += int(o & 1)
	}
	rate := float64(flips) / 20000
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("readout flip rate = %v, want ≈0.1", rate)
	}
}

func TestDepolarizingDegradesBell(t *testing.T) {
	// Heavy two-qubit noise must break perfect Bell correlations;
	// noiseless execution keeps them exact.
	c := circuit.NewBuilder(2).H(0).CX(0, 1).MeasureAll().MustBuild()
	mismatch := func(noise Noise) float64 {
		chip, err := NewNoisyChip(2, 11, noise)
		if err != nil {
			t.Fatal(err)
		}
		bad := 0
		const trials, shots = 200, 20
		for i := 0; i < trials; i++ {
			ex, err := chip.Execute(c, shots)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range ex.Outcomes {
				if o == 1 || o == 2 {
					bad++
				}
			}
		}
		return float64(bad) / float64(trials*shots)
	}
	if m := mismatch(Noise{}); m != 0 {
		t.Errorf("noiseless Bell mismatch = %v", m)
	}
	if m := mismatch(Noise{Depolar2Q: 0.5}); m < 0.05 {
		t.Errorf("heavy depolarizing mismatch = %v, want substantial", m)
	}
}

func TestNoiseKeepsShotTime(t *testing.T) {
	// Injected error operators are not scheduled pulses: timing must
	// match the clean circuit.
	c := circuit.NewBuilder(2).H(0).CX(0, 1).MeasureAll().MustBuild()
	clean, _ := NewChip(2, 5)
	noisy, _ := NewNoisyChip(2, 5, Noise{Depolar1Q: 0.5, Depolar2Q: 0.5})
	a, _ := clean.Execute(c, 10)
	b, err := noisy.Execute(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.ShotTime != b.ShotTime {
		t.Errorf("noisy ShotTime %v != clean %v", b.ShotTime, a.ShotTime)
	}
}

func TestTypicalNISQStillUseful(t *testing.T) {
	// At realistic error rates a Bell pair keeps most of its correlation.
	chip, err := NewNoisyChip(2, 13, TypicalNISQ())
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.NewBuilder(2).H(0).CX(0, 1).MeasureAll().MustBuild()
	good := 0
	const trials, shots = 100, 40
	for i := 0; i < trials; i++ {
		ex, err := chip.Execute(c, shots)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range ex.Outcomes {
			if o == 0 || o == 3 {
				good++
			}
		}
	}
	frac := float64(good) / float64(trials*shots)
	if frac < 0.9 {
		t.Errorf("correlated fraction = %v under typical NISQ, want > 0.9", frac)
	}
}
