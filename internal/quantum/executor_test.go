package quantum

import (
	"testing"

	"qtenon/internal/circuit"
	"qtenon/internal/sim"
)

// Compile-time interface conformance.
var (
	_ Executor = (*Chip)(nil)
	_ Executor = (*NoisyChip)(nil)
)

func TestExecutionTotalTime(t *testing.T) {
	e := Execution{Outcomes: make([]uint64, 7), ShotTime: 3 * sim.Microsecond}
	if e.TotalTime() != 21*sim.Microsecond {
		t.Errorf("TotalTime = %v", e.TotalTime())
	}
	if (Execution{}).TotalTime() != 0 {
		t.Error("empty execution nonzero total")
	}
}

func TestSurrogateDeterministicAcrossRuns(t *testing.T) {
	// Identical circuits on identically seeded chips: identical outcomes
	// even for >64-qubit registers (RNG stream includes windowed qubits).
	mk := func() []uint64 {
		chip, err := NewChip(80, 123)
		if err != nil {
			t.Fatal(err)
		}
		b := circuit.NewBuilder(80)
		for q := 0; q < 80; q++ {
			b.RY(q, 0.2+0.01*float64(q))
		}
		b.MeasureAll()
		ex, err := chip.Execute(b.MustBuild(), 20)
		if err != nil {
			t.Fatal(err)
		}
		return ex.Outcomes
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("wide surrogate not deterministic")
		}
	}
}

func TestWideOutcomesFitWindow(t *testing.T) {
	chip, _ := NewChip(80, 5)
	b := circuit.NewBuilder(80)
	for q := 0; q < 80; q++ {
		b.X(q) // all qubits |1⟩
	}
	b.MeasureAll()
	ex, err := chip.Execute(b.MustBuild(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ex.Outcomes {
		if o != ^uint64(0) {
			t.Errorf("outcome = %#x, want all window bits set", o)
		}
	}
}
