// Package baseline models the decoupled quantum system Qtenon is compared
// against (§7.1): an i9-14900K host connected to an FPGA quantum
// controller over a 100-gigabit UDP link (switches omitted, as in the
// paper), with Qiskit-style just-in-time compilation every evaluation,
// fixed 1000 ns-per-pulse FPGA pulse generation, and strictly sequential
// execution — no overlap between quantum execution, transmission, and
// host processing.
package baseline

import (
	"fmt"

	"qtenon/internal/backend"
	"qtenon/internal/circuit"
	"qtenon/internal/host"
	"qtenon/internal/isa"
	"qtenon/internal/metrics"
	"qtenon/internal/quantum"
	"qtenon/internal/report"
	"qtenon/internal/route"
	"qtenon/internal/sim"
	"qtenon/internal/vqa"
)

// Link models the host↔FPGA network: a fixed per-message overhead
// (kernel UDP stack + NIC) plus payload time at line rate.
type Link struct {
	PerMessage sim.Time
	BitsPerNs  float64 // line rate; 100 Gb/s = 100 bits/ns
}

// DefaultLink returns the calibrated 100 GbE UDP model.
func DefaultLink() Link {
	return Link{PerMessage: 8 * sim.Microsecond, BitsPerNs: 100}
}

// MessageTime is the latency of one message carrying `bytes` of payload.
func (l Link) MessageTime(bytes int) sim.Time {
	payload := sim.FromNanoseconds(float64(bytes*8) / l.BitsPerNs)
	return l.PerMessage + payload
}

// Config assembles a baseline system.
type Config struct {
	Core  host.Core
	Costs host.Costs
	Link  Link
	// PulsePerGate is the FPGA's fixed pulse-generation latency (paper:
	// 1000 ns per pulse, sequential).
	PulsePerGate sim.Time
	ADI          quantum.ADI
	Shots        int
	Seed         int64
	// Noise selects the chip error model; the zero value is ideal.
	Noise quantum.Noise
	// BatchResults ships all shot results in one message instead of one
	// message per shot (an ablation; the default decoupled stack streams
	// per shot).
	BatchResults bool
	// Method pins the chip's simulation method; route.Auto (zero value)
	// keeps automatic routing.
	Method route.Method
}

// DefaultConfig returns the paper's baseline setup.
func DefaultConfig() Config {
	return Config{
		Core:         host.I9(),
		Costs:        host.DefaultCosts(),
		Link:         DefaultLink(),
		PulsePerGate: 1000 * sim.Nanosecond,
		ADI:          quantum.DefaultADI(),
		Shots:        500,
		Seed:         1,
	}
}

// System is a decoupled machine bound to one workload.
type System struct {
	cfg      Config
	workload *vqa.Workload
	chip     quantum.Executor
	shape    isa.WorkloadShape
	pulses   int // drive pulses per circuit execution (2q gates → 2)
	// programLen is the quantum-dedicated instruction count of one
	// compiled circuit, measured by actually generating eQASM-style code
	// for the workload (isa.GenerateEQASM) rather than estimated.
	programLen int

	// boundScratch is the reusable bound-circuit shadow handed to the
	// chip each evaluation (Execute consumes it synchronously).
	boundScratch *circuit.Circuit

	// Accumulated accounting.
	breakdown report.Breakdown
	evals     int
	instrs    int
	// method is the simulation method the chip's router resolved on the
	// most recent evaluation (route.Auto before the first one).
	method route.Method

	reg *metrics.Registry
	m   instruments
}

// instruments are the registry handles the decoupled machine updates:
// the baseline has no controller-side hardware to report, so its
// components are the host (JIT compiles, network messages), the quantum
// chip, and the run loop.
type instruments struct {
	evaluations  *metrics.Counter
	jitCompiles  *metrics.Counter
	messages     *metrics.Counter
	instructions *metrics.Counter
	shots        *metrics.Counter
	shotTime     *metrics.Timer
	pulses       *metrics.Counter
	// methods counts evaluations per routed simulation method, indexed
	// by route.Method ("quantum.method.dense" etc.; Auto never fires).
	methods [route.NumMethods]*metrics.Counter
}

// New binds a baseline system to a workload.
func New(cfg Config, w *vqa.Workload) (*System, error) {
	if cfg.Shots <= 0 {
		return nil, fmt.Errorf("baseline: non-positive shot count")
	}
	if err := cfg.Costs.Validate(); err != nil {
		return nil, err
	}
	var chip quantum.Executor
	var err error
	if cfg.Noise.Enabled() {
		chip, err = quantum.NewNoisyChip(w.NQubits(), cfg.Seed, cfg.Noise)
	} else {
		chip, err = quantum.NewChip(w.NQubits(), cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	quantum.ForceMethodOn(chip, cfg.Method)
	ct := w.Circuit.Count()
	// Generate the actual quantum-dedicated program once to size the
	// per-evaluation upload; the structure is parameter-independent.
	gen, err := isa.GenerateEQASM(w.Circuit.Bind(w.InitialParams), circuit.DefaultTiming())
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	var methods [route.NumMethods]*metrics.Counter
	for m := route.Method(0); m < route.NumMethods; m++ {
		methods[m] = reg.Counter("quantum.method." + m.String())
	}
	return &System{
		cfg:      cfg,
		workload: w,
		chip:     chip,
		shape: isa.WorkloadShape{
			Gates:      ct.OneQubit + ct.TwoQubit,
			TwoQubit:   ct.TwoQubit,
			Measures:   ct.Measure,
			Params:     w.NumParams(),
			Iterations: 1,
		},
		pulses:     ct.OneQubit + 2*ct.TwoQubit,
		programLen: gen.Len(),
		reg:        reg,
		m: instruments{
			evaluations:  reg.Counter("system.evaluations"),
			jitCompiles:  reg.Counter("host.jit_compiles"),
			messages:     reg.Counter("host.messages"),
			instructions: reg.Counter("controller.instructions"),
			shots:        reg.Counter("quantum.shots"),
			shotTime:     reg.Timer("quantum.shot_time_ps"),
			pulses:       reg.Counter("pulse.generated"),
			methods:      methods,
		},
	}, nil
}

// Metrics exposes the instance's metrics registry.
func (s *System) Metrics() *metrics.Registry { return s.reg }

// EvaluateBatch evaluates every parameter vector in batch order —
// backend.Batcher. Like the Qtenon machine, baseline evaluations are
// serial accounting events, so the batch is the serial sequence with
// identical results; see system.EvaluateBatch.
func (s *System) EvaluateBatch(sets [][]float64, out []float64) error {
	for k, p := range sets {
		v, err := s.Evaluate(p)
		if err != nil {
			return err
		}
		out[k] = v
	}
	return nil
}

// Evaluate runs one cost evaluation with full baseline accounting. It is
// an opt.Evaluator.
func (s *System) Evaluate(params []float64) (float64, error) {
	s.evals++
	s.m.evaluations.Inc()
	var b report.Breakdown

	// 1. JIT recompilation on the host — every evaluation, from scratch.
	b.HostComp += s.cfg.Core.Time(s.cfg.Costs.JITCompile(s.shape.Gates))
	s.m.jitCompiles.Inc()

	// 2. Ship the compiled program to the FPGA. The binary carries one
	//    word per quantum-dedicated instruction of the generated code.
	programBytes := s.programLen * 4
	b.Comm += s.cfg.Link.MessageTime(programBytes)
	b.HostComp += s.cfg.Core.Time(s.cfg.Costs.DriverPerMessage)
	s.instrs += s.programLen
	s.m.instructions.Add(int64(s.programLen))
	s.m.messages.Inc()

	// 3. FPGA pulse generation: fixed latency per pulse, sequential, no
	//    reuse across evaluations.
	b.PulseGen += sim.Time(s.pulses) * s.cfg.PulsePerGate
	s.m.pulses.Add(int64(s.pulses))

	// 4. Quantum execution.
	bound := s.workload.Circuit.BindInto(s.boundScratch, params)
	s.boundScratch = bound
	ex, err := s.chip.Execute(bound, s.cfg.Shots)
	if err != nil {
		return 0, err
	}
	b.Quantum += sim.Time(s.cfg.Shots) * (ex.ShotTime + s.cfg.ADI.RoundTrip())
	s.m.shots.Add(int64(s.cfg.Shots))
	s.m.shotTime.Observe(int64(ex.ShotTime))
	if m, ok := quantum.MethodOf(s.chip); ok {
		s.method = m
		s.m.methods[m].Inc()
	}

	// 5. Results return over UDP.
	resultBytes := (s.workload.NQubits() + 7) / 8
	if s.cfg.BatchResults {
		b.Comm += s.cfg.Link.MessageTime(resultBytes * s.cfg.Shots)
		b.HostComp += s.cfg.Core.Time(s.cfg.Costs.DriverPerMessage)
		s.m.messages.Inc()
	} else {
		b.Comm += sim.Time(s.cfg.Shots) * s.cfg.Link.MessageTime(resultBytes)
		b.HostComp += sim.Time(s.cfg.Shots) * s.cfg.Core.Time(s.cfg.Costs.DriverPerMessage)
		s.m.messages.Add(int64(s.cfg.Shots))
	}

	// 6. Host post-processing and optimizer arithmetic.
	b.HostComp += s.cfg.Core.Time(s.cfg.Costs.PostProcess(s.cfg.Shots, s.workload.NQubits()))
	b.HostComp += s.cfg.Core.Time(s.cfg.Costs.ParamUpdate(s.workload.NumParams()))

	s.breakdown.Add(b)
	return s.workload.Cost(ex.Outcomes), nil
}

// Result reports everything accumulated so far as one report.RunResult —
// the Backend accounting surface. The decoupled stack has no overlap,
// so host and communication activity equal their exposed breakdown
// shares. History is the optimizer's to fill (backend.RunOn overwrites
// it).
func (s *System) Result() report.RunResult {
	var method string
	if s.evals > 0 {
		method = s.method.String()
	}
	return report.RunResult{
		Breakdown:        s.breakdown,
		Evaluations:      s.evals,
		InstructionCount: s.instrs,
		HostActivity:     s.breakdown.HostComp,
		CommActivity:     s.breakdown.Comm,
		PulsesGenerated:  int64(s.pulses) * int64(s.evals),
		Method:           method,
	}
}

// Factory mints independent baseline systems from one configuration —
// the backend.Factory for the decoupled machine.
type Factory struct {
	Cfg Config
}

// New implements backend.Factory.
func (f Factory) New(w *vqa.Workload) (backend.Backend, error) { return New(f.Cfg, w) }

// Interface conformance.
var (
	_ backend.Backend      = (*System)(nil)
	_ backend.Instrumented = (*System)(nil)
	_ backend.Factory      = Factory{}
)
