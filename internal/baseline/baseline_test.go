package baseline

import (
	"testing"

	"qtenon/internal/backend"
	"qtenon/internal/opt"
	"qtenon/internal/sim"
	"qtenon/internal/vqa"
)

func smallQAOA(t *testing.T) *vqa.Workload {
	t.Helper()
	w, err := vqa.NewQAOA(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLinkMessageTime(t *testing.T) {
	l := DefaultLink()
	small := l.MessageTime(8)
	big := l.MessageTime(1 << 20)
	if small <= l.PerMessage {
		t.Errorf("small message %v not above fixed overhead", small)
	}
	if big <= small {
		t.Error("payload time not growing")
	}
	// 1 MiB at 100 Gb/s ≈ 84 µs of payload.
	payload := big - l.PerMessage
	if payload < 80*sim.Microsecond || payload > 90*sim.Microsecond {
		t.Errorf("1 MiB payload time = %v, want ≈84µs", payload)
	}
	// Decoupled round-trip latency lands in Table 1's ms-class window for
	// kilobyte messages (overhead-dominated).
	if rt := 2 * l.MessageTime(1024); rt < 10*sim.Microsecond {
		t.Errorf("round trip %v implausibly fast for a decoupled system", rt)
	}
}

func TestNewValidation(t *testing.T) {
	w := smallQAOA(t)
	cfg := DefaultConfig()
	cfg.Shots = 0
	if _, err := New(cfg, w); err == nil {
		t.Error("accepted zero shots")
	}
	cfg = DefaultConfig()
	cfg.Costs.JITPerGate = 0
	if _, err := New(cfg, w); err == nil {
		t.Error("accepted invalid costs")
	}
}

func TestEvaluateAccounting(t *testing.T) {
	w := smallQAOA(t)
	cfg := DefaultConfig()
	cfg.Shots = 100
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := s.Evaluate(w.InitialParams)
	if err != nil {
		t.Fatal(err)
	}
	if cost > 0 {
		t.Errorf("MaxCut cost = %v, want ≤ 0", cost)
	}
	res := s.Result()
	b := res.Breakdown
	if b.Quantum <= 0 || b.Comm <= 0 || b.PulseGen <= 0 || b.HostComp <= 0 {
		t.Errorf("breakdown has empty category: %+v", b)
	}
	// Sequential system: per-shot result messages dominate communication.
	perShotComm := sim.Time(cfg.Shots) * cfg.Link.MessageTime(1)
	if b.Comm < perShotComm {
		t.Errorf("comm %v below the per-shot floor %v", b.Comm, perShotComm)
	}
	if res.Evaluations != 1 {
		t.Errorf("evals = %d", res.Evaluations)
	}
}

func TestBatchResultsReducesComm(t *testing.T) {
	w := smallQAOA(t)
	run := func(batch bool) sim.Time {
		cfg := DefaultConfig()
		cfg.Shots = 200
		cfg.BatchResults = batch
		s, err := New(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Evaluate(w.InitialParams); err != nil {
			t.Fatal(err)
		}
		return s.Result().Breakdown.Comm
	}
	if run(true) >= run(false) {
		t.Error("batched results not cheaper than per-shot")
	}
}

func TestRunGDAndSPSA(t *testing.T) {
	w := smallQAOA(t)
	cfg := DefaultConfig()
	cfg.Shots = 50
	o := opt.DefaultOptions()
	o.Iterations = 2

	gd, err := backend.Run(Factory{Cfg: cfg}, w, backend.GD, o)
	if err != nil {
		t.Fatal(err)
	}
	if gd.Evaluations != opt.GDEvaluationsPerRun(w.NumParams(), 2) {
		t.Errorf("GD evals = %d", gd.Evaluations)
	}
	sp, err := backend.Run(Factory{Cfg: cfg}, w, backend.SPSA, o)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Evaluations != opt.SPSAEvaluationsPerRun(2) {
		t.Errorf("SPSA evals = %d", sp.Evaluations)
	}
	// GD runs more evaluations than SPSA here, so every category grows.
	if gd.Breakdown.Total() <= sp.Breakdown.Total() {
		t.Error("GD total not above SPSA total despite more evaluations")
	}
	if gd.InstructionCount <= sp.InstructionCount {
		t.Error("instruction counts not tracking evaluations")
	}
	if len(gd.History) != 2 {
		t.Errorf("history = %d", len(gd.History))
	}
}

func TestCommunicationDominatesAt64Qubits(t *testing.T) {
	// The motivation result (Figure 1): on the decoupled baseline at 64
	// qubits, quantum execution is a small fraction and communication the
	// largest classical component.
	w, err := vqa.New(vqa.VQE, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(w.InitialParams); err != nil {
		t.Fatal(err)
	}
	b := s.Result().Breakdown
	p := b.Percent()
	if p[0] > 30 {
		t.Errorf("quantum share = %.1f%%, want small on the baseline", p[0])
	}
	if b.Comm < b.PulseGen || b.Comm < b.HostComp {
		t.Errorf("communication not dominant: %v", b)
	}
}
