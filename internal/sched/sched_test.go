package sched

import (
	"testing"
	"testing/quick"

	"qtenon/internal/sim"
)

func TestBatchInterval(t *testing.T) {
	// The paper's setup: 256-bit bus, 64 qubits → K = 4 shots/transfer.
	if k := BatchInterval(256, 64); k != 4 {
		t.Errorf("K(256,64) = %d, want 4", k)
	}
	if k := BatchInterval(256, 8); k != 32 {
		t.Errorf("K(256,8) = %d, want 32", k)
	}
	// More qubits than bus bits: clamp to 1.
	if k := BatchInterval(256, 320); k != 1 {
		t.Errorf("K(256,320) = %d, want 1", k)
	}
}

func TestPlanBatches(t *testing.T) {
	got := PlanBatches(10, 4)
	want := []int{4, 4, 2}
	if len(got) != len(want) {
		t.Fatalf("batches = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batches = %v, want %v", got, want)
		}
	}
	if PlanBatches(0, 4) != nil {
		t.Error("zero shots produced batches")
	}
	if got := PlanBatches(3, 10); len(got) != 1 || got[0] != 3 {
		t.Errorf("remainder-only plan = %v", got)
	}
}

// Property: every shot is transmitted exactly once, no batch exceeds K.
func TestPlanBatchesCompleteProperty(t *testing.T) {
	f := func(shots, k uint8) bool {
		s, kk := int(shots%200)+1, int(k%16)+1
		plan := PlanBatches(s, kk)
		total := 0
		for _, b := range plan {
			if b <= 0 || b > kk {
				return false
			}
			total += b
		}
		// All full batches except possibly the last.
		for i := 0; i < len(plan)-1; i++ {
			if plan[i] != kk {
				return false
			}
		}
		return total == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func baseInput(mode SyncMode) TimelineInput {
	return TimelineInput{
		Mode:             mode,
		HostPrep:         2 * sim.Microsecond,
		CommPrep:         100 * sim.Nanosecond,
		PulsePrep:        5 * sim.Microsecond,
		ShotTime:         sim.Microsecond,
		Batches:          PlanBatches(100, 4),
		TransferPerBatch: 30 * sim.Nanosecond,
		HostPerShot:      100 * sim.Nanosecond,
		HostPerBatch:     200 * sim.Nanosecond,
		HostTail:         3 * sim.Microsecond,
	}
}

func TestComputeQuantumTime(t *testing.T) {
	for _, mode := range []SyncMode{FENCE, FineGrained} {
		tl := Compute(baseInput(mode))
		if tl.Quantum != 100*sim.Microsecond {
			t.Errorf("%v: quantum = %v, want 100µs", mode, tl.Quantum)
		}
		if tl.Total < tl.Quantum {
			t.Errorf("%v: total %v < quantum %v", mode, tl.Total, tl.Quantum)
		}
	}
}

func TestFineGrainedBeatsFENCE(t *testing.T) {
	fence := Compute(baseInput(FENCE))
	fine := Compute(baseInput(FineGrained))
	if fine.Total >= fence.Total {
		t.Errorf("fine-grained total %v not below FENCE %v", fine.Total, fence.Total)
	}
	if fine.Exposed() >= fence.Exposed() {
		t.Errorf("fine-grained exposed %v not below FENCE %v", fine.Exposed(), fence.Exposed())
	}
}

func TestFENCESerializesEverything(t *testing.T) {
	in := baseInput(FENCE)
	tl := Compute(in)
	// FENCE: total = prep + quantum + all transfers + all host work + tail.
	batches := sim.Time(len(in.Batches))
	want := in.HostPrep + in.CommPrep + in.PulsePrep +
		tl.Quantum +
		batches*in.TransferPerBatch +
		100*in.HostPerShot + batches*in.HostPerBatch +
		in.HostTail
	if tl.Total != want {
		t.Errorf("FENCE total = %v, want %v", tl.Total, want)
	}
}

func TestFineGrainedHidesHostWorkUnderQuantum(t *testing.T) {
	// Host batch work far smaller than shot time: everything except the
	// last batch's processing hides under the quantum shadow.
	in := baseInput(FineGrained)
	tl := Compute(in)
	lastBatch := in.Batches[len(in.Batches)-1]
	expectedTail := in.TransferPerBatch + sim.Time(lastBatch)*in.HostPerShot + in.HostPerBatch + in.HostTail
	wantTotal := in.HostPrep + in.CommPrep + in.PulsePrep + tl.Quantum + expectedTail
	if tl.Total != wantTotal {
		t.Errorf("fine-grained total = %v, want %v", tl.Total, wantTotal)
	}
}

func TestExposedDecomposition(t *testing.T) {
	for _, mode := range []SyncMode{FENCE, FineGrained} {
		tl := Compute(baseInput(mode))
		if got := tl.Quantum + tl.Exposed(); got != tl.Total {
			t.Errorf("%v: quantum+exposed = %v, total = %v", mode, got, tl.Total)
		}
	}
}

func TestCommActivityCountsAllBatches(t *testing.T) {
	in := baseInput(FineGrained)
	tl := Compute(in)
	want := in.CommPrep + sim.Time(len(in.Batches))*in.TransferPerBatch
	if tl.CommActivity != want {
		t.Errorf("CommActivity = %v, want %v", tl.CommActivity, want)
	}
}

func TestSlowHostBleedsPastQuantum(t *testing.T) {
	// Host per-shot cost exceeding shot time cannot hide: exposed host
	// grows with shot count even under fine-grained sync.
	in := baseInput(FineGrained)
	in.HostPerShot = 3 * sim.Microsecond
	tl := Compute(in)
	if tl.ExposedHost < 100*sim.Microsecond {
		t.Errorf("slow host exposed = %v, want > 100µs", tl.ExposedHost)
	}
}

// Property: fine-grained total ≤ FENCE total for any workload shape, and
// both are ≥ prep + quantum.
func TestModeOrderingProperty(t *testing.T) {
	f := func(shotsU, kU, shotNsU, hostNsU, xferNsU uint16) bool {
		shots := int(shotsU%300) + 1
		k := int(kU%8) + 1
		in := TimelineInput{
			HostPrep:         sim.Time(hostNsU%1000) * sim.Nanosecond,
			CommPrep:         sim.Time(xferNsU%100) * sim.Nanosecond,
			PulsePrep:        sim.Time(kU%50) * sim.Nanosecond,
			ShotTime:         sim.Time(shotNsU%2000+1) * sim.Nanosecond,
			Batches:          PlanBatches(shots, k),
			TransferPerBatch: sim.Time(xferNsU%200) * sim.Nanosecond,
			HostPerShot:      sim.Time(hostNsU%300) * sim.Nanosecond,
			HostPerBatch:     sim.Time(hostNsU%150) * sim.Nanosecond,
			HostTail:         sim.Time(shotNsU%500) * sim.Nanosecond,
		}
		in.Mode = FENCE
		fence := Compute(in)
		in.Mode = FineGrained
		fine := Compute(in)
		floor := in.HostPrep + in.CommPrep + in.PulsePrep + fine.Quantum
		return fine.Total <= fence.Total &&
			fine.Total >= floor && fence.Total >= floor &&
			fine.Quantum == fence.Quantum &&
			fine.Quantum+fine.Exposed() == fine.Total &&
			fence.Quantum+fence.Exposed() == fence.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestBatchingReducesPerBatchOverheadTotal(t *testing.T) {
	// Figure 16(b): batched transmission vs per-shot transmission. The
	// per-delivery handling cost dominates when every shot ships alone.
	batched := baseInput(FineGrained)
	unbatched := baseInput(FineGrained)
	unbatched.Batches = PlanBatches(100, 1)
	// Make host work the bottleneck so the difference is visible.
	batched.HostPerBatch = 2 * sim.Microsecond
	unbatched.HostPerBatch = 2 * sim.Microsecond
	b := Compute(batched)
	u := Compute(unbatched)
	if b.ExposedHost >= u.ExposedHost {
		t.Errorf("batched exposed host %v not below unbatched %v", b.ExposedHost, u.ExposedHost)
	}
}
